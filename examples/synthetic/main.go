// Synthetic workloads: generate an inconsistent KB with TGDs and CDDs per
// §6 of the paper and watch the strategies converge — a miniature of the
// Figure 4(b) experiment, where the chase interleaves new conflicts with
// resolutions.
//
// Run with: go run ./examples/synthetic
package main

import (
	"fmt"
	"log"
	"strings"

	"kbrepair"
)

func main() {
	kb, info, err := kbrepair.GenerateSynthetic(kbrepair.SynthParams{
		Seed:               5,
		NumFacts:           150,
		InconsistencyRatio: 0.25,
		NumCDDs:            10,
		NumTGDs:            6,
		Depth:              2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated KB: %d facts, %d TGDs, %d CDDs\n", info.Facts, info.NumTGDs, info.NumCDDs)
	fmt.Printf("conflicts: %d total, %d naive (the rest appear only through the chase)\n\n",
		info.TotalConflicts, info.NaiveConflicts)

	// Save/reload round trip through the text format.
	text := kbrepair.FormatKB(kb)
	if _, err := kbrepair.ParseKB(text); err != nil {
		log.Fatalf("round trip failed: %v", err)
	}
	fmt.Printf("text format round-trips (%d bytes)\n\n", len(text))

	for _, name := range []string{"random", "opti-mcd"} {
		strat, _ := kbrepair.StrategyByName(name)
		clone := kb.Clone()
		engine := kbrepair.NewEngine(clone, strat, kbrepair.NewSimulatedUser(9), 9,
			kbrepair.EngineOptions{TrackConflictSeries: true})
		res, err := engine.Run()
		if err != nil {
			log.Fatal(err)
		}
		var series []string
		series = append(series, fmt.Sprintf("%d", res.InitialTotal))
		for _, n := range res.ConflictSeries() {
			series = append(series, fmt.Sprintf("%d", n))
		}
		fmt.Printf("%-9s converged in %d questions; conflicts per step: %s\n",
			name, res.Questions, strings.Join(series, " "))
	}
}
