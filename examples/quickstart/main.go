// Quickstart: build the paper's Figure 1(a) knowledge base, see why it is
// inconsistent, and repair it interactively with a simulated user.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kbrepair"
)

func main() {
	// A hospital KB: Aspirin is prescribed to John — who is allergic to it.
	kb, err := kbrepair.ParseKB(`
		prescribed(Aspirin, John).
		hasAllergy(John, Aspirin).
		hasAllergy(Mike, Penicillin).

		# Prescribing a drug to a person allergic to it is a contradiction.
		[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
	`)
	if err != nil {
		log.Fatal(err)
	}

	consistent, err := kb.IsConsistent()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistent before repair: %v\n", consistent)

	for _, c := range kbrepair.NaiveConflicts(kb) {
		fmt.Printf("conflict: %s witnessed by %s\n", c.CDD, c.Hom)
	}

	// Repair through an inquiry: the engine asks sound questions (any
	// answer keeps the KB repairable); here a simulated user answers
	// uniformly at random, as in the paper's experiments.
	engine := kbrepair.NewEngine(kb, kbrepair.OptiJoin(), kbrepair.NewSimulatedUser(7), 7, kbrepair.EngineOptions{})
	res, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrepaired with %d question(s); applied fixes: %s\n", res.Questions, res.AppliedFixes)
	fmt.Println("facts after repair:")
	fmt.Print(kb.Facts)

	consistent, _ = kb.IsConsistent()
	fmt.Printf("consistent after repair: %v\n", consistent)
}
