// Deletion vs. update: the paper's §1 motivation made executable. On the
// Figure 1(a) KB, deletion-based repairing (Example 1.2) must discard a
// whole fact — losing values that were never wrong — while update-based
// repairing (Example 1.3) rewrites a single position, optionally to a
// labeled null that still records "John has *some* allergy". The example
// also shows consistent query answering over sampled u-repairs: answers
// that survive every repair are trustworthy despite the inconsistency.
//
// Run with: go run ./examples/deletionvsupdate
package main

import (
	"fmt"
	"log"

	"kbrepair"
)

func main() {
	kb, err := kbrepair.ParseKB(`
		prescribed(Aspirin, John).
		hasAllergy(John, Aspirin).
		hasAllergy(Mike, Penicillin).
		[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Example 1.2: the minimal deletion repairs F1 and F2.
	repairs, err := kbrepair.MinimalDeletionRepairs(kb, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deletion-based repairing offers %d incomparable repairs:\n", len(repairs))
	for i, r := range repairs {
		fmt.Printf("  F%d removes:", i+1)
		for _, id := range r.Removed {
			fmt.Printf(" %s", kb.Facts.FactRef(id))
		}
		fmt.Printf("  (loses %d values)\n", r.InformationLoss(kb.Facts))
	}

	// Example 1.3: an update repair keeps the fact, anonymizing one value.
	cautious := kbrepair.NewCautiousUser(1, 7) // always answers "unknown"
	clone := kb.Clone()
	engine := kbrepair.NewEngine(clone, kbrepair.OptiJoin(), cautious, 7, kbrepair.EngineOptions{})
	res, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupdate-based repairing changed %d value(s): %s\n", len(res.AppliedFixes), res.AppliedFixes)
	fmt.Println("facts after the update repair (F3 of Example 1.3):")
	fmt.Print(clone.Facts)

	cmp, err := kbrepair.CompareRepairs(kb, res.AppliedFixes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninformation loss: deletion %d positions vs update %d (of which %d kept as nulls)\n",
		cmp.DeletionLostPositions, cmp.UpdateChangedValues, cmp.UpdateIntroducedNulls)

	// Consistent query answering: who certainly has an allergy, whatever
	// the repair turns out to be?
	q := kbrepair.Query{
		Body: []kbrepair.Atom{kbrepair.NewAtom("hasAllergy", kbrepair.Var("P"), kbrepair.Var("D"))},
		Answ: []kbrepair.Term{kbrepair.Var("P")},
	}
	qres, err := kbrepair.SampledConsistentAnswers(kb, q, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\"who has an allergy?\" over %d sampled u-repairs:\n", qres.Samples)
	fmt.Printf("  cautious (in every repair): %v\n", qres.Cautious)
	fmt.Printf("  brave (in some repair):     %v\n", qres.Brave)
}
