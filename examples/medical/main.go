// Medical prescriptions: the paper's full Figure 1(b) scenario, where TGDs
// and CDDs interact — the contradiction between Aspirin and Nsaids only
// appears after the chase derives that John must be prescribed Nsaids for
// his migraine. The example then replays the §4.1 oracle dialogue: an
// expert who has a specific repair in mind answers the questions, and the
// inquiry reconstructs exactly that repair.
//
// Run with: go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"kbrepair"
)

const medicalKB = `
prescribed(Aspirin, John).
hasAllergy(John, Aspirin).
hasAllergy(Mike, Penicillin).
hasPain(John, Migraine).
isPainKillerFor(Nsaids, Migraine).
incompatible(Aspirin, Nsaids).

# A painkiller for a condition is prescribed to whoever has the condition.
[tgd] isPainKillerFor(X, Y), hasPain(Z, Y) -> prescribed(X, Z).

# Never prescribe a drug to someone allergic to it.
[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
# Never prescribe incompatible drugs to the same person.
[cdd] prescribed(X, Z), prescribed(Y, Z), incompatible(X, Y) -> !.
`

func main() {
	kb, err := kbrepair.ParseKB(medicalKB)
	if err != nil {
		log.Fatal(err)
	}

	// The chase derives prescribed(Nsaids, John) — Example 2.1.
	chased, err := kb.Chase()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived by the chase:")
	for _, id := range chased.Derived() {
		fmt.Printf("  %s\n", chased.Store.FactRef(id))
	}

	// Example 2.4: two conflicts, one only visible through the chase.
	conflicts, res, err := kbrepair.AllConflicts(kb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconflicts: %d total, %d visible without the chase\n",
		len(conflicts), len(kbrepair.NaiveConflicts(kb)))
	for _, c := range conflicts {
		fmt.Printf("  %s\n  base support:\n", c.CDD)
		for _, f := range c.BaseFacts {
			fmt.Printf("    %s\n", res.Store.FactRef(f))
		}
	}

	// The oracle has this repair in mind: the allergy record actually
	// belongs to Mike, and the drug incompatibility's first entry is an
	// unknown drug (a data-entry error).
	target := kb.Facts.Clone()
	target.MustSetValue(kbrepair.Position{Fact: 1, Arg: 0}, kbrepair.Const("Mike"))
	target.MustSetValue(kbrepair.Position{Fact: 5, Arg: 0}, target.FreshNull())

	oracle := kbrepair.NewOracle(target, 1)
	engine := kbrepair.NewEngine(kb, kbrepair.RandomStrategy(), oracle, 1, kbrepair.EngineOptions{})
	result, err := engine.RunBasic()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noracle dialogue: %d questions\n", result.Questions)
	fmt.Println("facts after repair:")
	fmt.Print(kb.Facts)

	// Proposition 4.8 in action: the result IS the oracle's repair.
	fmt.Printf("result equals the oracle's repair (up to null renaming): %v\n",
		kb.Facts.EqualUpToNullRenaming(target))
}
