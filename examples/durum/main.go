// Durum Wheat: repair the real-world-style agronomy knowledge base of the
// paper's experiments, comparing all four questioning strategies. This is
// a miniature of the Figure 2 experiment: the opti-mcd strategy exploits
// the heavy overlap between conflicts and needs the fewest questions.
//
// Run with: go run ./examples/durum
package main

import (
	"fmt"
	"log"

	"kbrepair"
)

func main() {
	_, info, err := kbrepair.BuildDurumWheat(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Durum Wheat v1 characteristics:")
	fmt.Printf("  facts %d, chase %d, TGDs %d, CDDs %d\n",
		info.Facts, info.ChaseSize, info.NumTGDs, info.NumCDDs)
	fmt.Printf("  conflicts %d (%.1f%% of atoms inconsistent), avg scope %.1f\n\n",
		info.TotalConflicts, info.InconsistencyRatio*100, info.AvgScope)

	for _, name := range []string{"random", "opti-join", "opti-prop", "opti-mcd"} {
		strat, err := kbrepair.StrategyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		// Fresh KB per strategy: the engine repairs in place.
		kb, _, err := kbrepair.BuildDurumWheat(1)
		if err != nil {
			log.Fatal(err)
		}
		engine := kbrepair.NewEngine(kb, strat, kbrepair.NewSimulatedUser(42), 42, kbrepair.EngineOptions{})
		res, err := engine.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %3d questions, %.1f conflicts resolved per question, avg delay %s\n",
			name, res.Questions,
			float64(res.InitialTotal)/float64(res.Questions),
			res.AvgDelay().Round(1000))
	}
}
