package kbrepair

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const medicalKB = `
prescribed(Aspirin, John).
hasAllergy(John, Aspirin).
hasAllergy(Mike, Penicillin).
hasPain(John, Migraine).
isPainKillerFor(Nsaids, Migraine).
incompatible(Aspirin, Nsaids).

[tgd] isPainKillerFor(X, Y), hasPain(Z, Y) -> prescribed(X, Z).
[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
[cdd] prescribed(X, Z), prescribed(Y, Z), incompatible(X, Y) -> !.
`

func TestParseAndRepairEndToEnd(t *testing.T) {
	kb, err := ParseKB(medicalKB)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := kb.IsConsistent()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("running-example KB should be inconsistent")
	}
	conflicts, _, err := AllConflicts(kb)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 2 {
		t.Fatalf("conflicts = %d, want 2 (Example 2.4)", len(conflicts))
	}
	engine := NewEngine(kb, OptiMCD(), NewSimulatedUser(1), 1, EngineOptions{})
	res, err := engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("engine left KB inconsistent")
	}
	if res.Questions == 0 {
		t.Error("no questions asked")
	}
}

func TestFacadeConstructors(t *testing.T) {
	if !Const("a").IsConst() || !Var("X").IsVar() || !NullTerm("n").IsNull() {
		t.Error("term constructors wrong")
	}
	atom := NewAtom("p", Const("a"), Var("X"))
	if atom.Arity() != 2 {
		t.Error("atom arity")
	}
	tgd, err := NewTGD([]Atom{NewAtom("p", Var("X"))}, []Atom{NewAtom("q", Var("X"))})
	if err != nil {
		t.Fatal(err)
	}
	if !IsWeaklyAcyclic([]*TGD{tgd}) {
		t.Error("acyclic TGD flagged")
	}
	cdd, err := NewCDD([]Atom{NewAtom("p", Var("X"), Var("X"))})
	if err != nil {
		t.Fatal(err)
	}
	st, err := StoreFromAtoms([]Atom{NewAtom("p", Const("a"), Const("a"))})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := NewKB(st, []*TGD{tgd}, []*CDD{cdd})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := kb.IsConsistent(); ok {
		t.Error("p(a,a) should violate the CDD")
	}
}

func TestFixRoundTripViaFacade(t *testing.T) {
	kb, err := ParseKB(`p(a, b). q(b, c). [cdd] p(X, Y), q(Y, Z) -> !.`)
	if err != nil {
		t.Fatal(err)
	}
	fs := FixSet{{Pos: Position{Fact: 0, Arg: 1}, Value: Const("z")}}
	updated, err := Apply(kb.Facts, fs)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := Diff(kb.Facts, updated)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 1 || diff[0] != fs[0] {
		t.Errorf("diff = %v", diff)
	}
	if ok, _ := IsCFix(kb, fs); !ok {
		t.Error("fix should be a c-fix")
	}
	if ok, _ := IsRFix(kb, fs); !ok {
		t.Error("fix should be an r-fix")
	}
	if ok, _ := PiRepairable(kb, NewPi(Position{Fact: 0, Arg: 1}, Position{Fact: 1, Arg: 0})); ok {
		t.Error("pinned join should be unrepairable")
	}
}

func TestSaveLoadKB(t *testing.T) {
	kb, err := ParseKB(medicalKB)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "medical.kb")
	if err := SaveKB(kb, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKB(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Facts.EqualAsSet(kb.Facts) {
		t.Error("round trip changed facts")
	}
	if len(loaded.TGDs) != 1 || len(loaded.CDDs) != 2 {
		t.Error("round trip changed rules")
	}
	if _, err := LoadKB(filepath.Join(dir, "missing.kb")); err == nil {
		t.Error("missing file loaded")
	}
	if err := os.WriteFile(path, []byte("p(a"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKB(path); err == nil || !strings.Contains(err.Error(), "medical.kb") {
		t.Errorf("parse error not annotated with path: %v", err)
	}
}

func TestOracleViaFacade(t *testing.T) {
	kb, err := ParseKB(`
prescribed(Aspirin, John).
hasAllergy(John, Aspirin).
[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.`)
	if err != nil {
		t.Fatal(err)
	}
	target := kb.Facts.Clone()
	target.MustSetValue(Position{Fact: 1, Arg: 1}, target.FreshNull())
	engine := NewEngine(kb, RandomStrategy(), NewOracle(target, 1), 1, EngineOptions{})
	res, err := engine.RunBasic()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent || !kb.Facts.EqualUpToNullRenaming(target) {
		t.Error("oracle inquiry did not reproduce the target repair")
	}
}

func TestGenerateSyntheticAndDurumViaFacade(t *testing.T) {
	kb, info, err := GenerateSynthetic(SynthParams{Seed: 1, NumFacts: 60, InconsistencyRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Facts != 60 || kb.Facts.Len() != 60 {
		t.Errorf("synthetic info = %+v", info)
	}
	if _, _, err := BuildDurumWheat(1); err != nil {
		t.Errorf("durum v1: %v", err)
	}
	if _, _, err := BuildDurumWheat(7); err == nil {
		t.Error("bad durum version accepted")
	}
	described, err := DescribeKB(kb)
	if err != nil {
		t.Fatal(err)
	}
	if described.Facts != info.Facts {
		t.Error("DescribeKB disagrees with generator info")
	}
}

func TestStrategyByNameFacade(t *testing.T) {
	for _, n := range []string{"random", "opti-join", "opti-prop", "opti-mcd"} {
		s, err := StrategyByName(n)
		if err != nil || s.Name() != n {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := StrategyByName("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestFormatKBIsParseable(t *testing.T) {
	kb, err := ParseKB(medicalKB)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseKB(FormatKB(kb))
	if err != nil {
		t.Fatalf("FormatKB output unparseable: %v", err)
	}
	if !again.Facts.EqualAsSet(kb.Facts) {
		t.Error("format/parse changed facts")
	}
}

// TestFullPipeline drives the complete product flow end-to-end: generate a
// synthetic KB, persist it, reload it, diagnose it, repair it with a
// recorded session, replay the session, and verify both repairs agree.
func TestFullPipeline(t *testing.T) {
	dir := t.TempDir()

	// Generate and persist.
	kb, info, err := GenerateSynthetic(SynthParams{
		Seed: 77, NumFacts: 120, InconsistencyRatio: 0.2, NumCDDs: 8, NumTGDs: 4, Depth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalConflicts == 0 {
		t.Fatal("generator produced a consistent KB")
	}
	path := filepath.Join(dir, "generated.kb")
	if err := SaveKB(kb, path); err != nil {
		t.Fatal(err)
	}

	// Reload and diagnose.
	loaded, err := LoadKB(path)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := loaded.IsConsistent(); ok {
		t.Fatal("reloaded KB lost its inconsistency")
	}
	reloadedInfo, err := DescribeKB(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if reloadedInfo.TotalConflicts != info.TotalConflicts {
		t.Errorf("conflicts changed across save/load: %d vs %d",
			reloadedInfo.TotalConflicts, info.TotalConflicts)
	}

	// Repair with a recorded session.
	rec := NewRecordingUser(NewSimulatedUser(7), "opti-mcd")
	engine := NewEngine(loaded, OptiMCD(), rec, 7, EngineOptions{})
	res, err := engine.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("repair failed")
	}
	journalPath := filepath.Join(dir, "session.json")
	if err := SaveJournal(rec.Journal(), journalPath); err != nil {
		t.Fatal(err)
	}

	// Replay on a fresh load: identical repair up to null labels.
	again, err := LoadKB(path)
	if err != nil {
		t.Fatal(err)
	}
	j, err := LoadJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	engine2 := NewEngine(again, OptiMCD(), NewReplayUser(j), 7, EngineOptions{})
	res2, err := engine2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Consistent || res2.Questions != res.Questions {
		t.Fatalf("replay diverged: consistent=%v questions=%d vs %d",
			res2.Consistent, res2.Questions, res.Questions)
	}
	if !again.Facts.EqualUpToNullRenaming(loaded.Facts) {
		t.Error("replayed repair differs from the recorded one")
	}

	// The repaired KB round-trips and stays consistent.
	fixedPath := filepath.Join(dir, "fixed.kb")
	if err := SaveKB(loaded, fixedPath); err != nil {
		t.Fatal(err)
	}
	final, err := LoadKB(fixedPath)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := final.IsConsistent(); !ok {
		t.Error("persisted repair inconsistent")
	}
}
