module kbrepair

go 1.22
