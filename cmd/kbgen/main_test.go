package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "synth.kb")
	err := run(60, 0.2, 6, 0, 0, 0.3, 8, 3, 0, out, true)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "[cdd]") {
		t.Error("generated file has no CDDs")
	}
}

func TestRunWithTGDs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mixed.kb")
	if err := run(50, 0.2, 5, 4, 2, 0.3, 8, 3, 0, out, true); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "[tgd]") {
		t.Error("generated file has no TGDs")
	}
}

func TestRunDurum(t *testing.T) {
	out := filepath.Join(t.TempDir(), "durum.kb")
	if err := run(0, 0, 0, 0, 0, 0, 0, 0, 1, out, true); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty durum output")
	}
}

func TestRunInvalidParams(t *testing.T) {
	if err := run(50, 2.5, 5, 0, 0, 0.3, 8, 3, 0, "", true); err == nil {
		t.Error("invalid ratio accepted")
	}
	if err := run(0, 0, 0, 0, 0, 0, 0, 0, 9, "", true); err == nil {
		t.Error("invalid durum version accepted")
	}
}
