package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "synth.kb")
	err := run(io.Discard, 60, 0.2, 6, 0, 0, 0.3, 8, 3, 0, out, true)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "[cdd]") {
		t.Error("generated file has no CDDs")
	}
}

func TestRunWithTGDs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mixed.kb")
	if err := run(io.Discard, 50, 0.2, 5, 4, 2, 0.3, 8, 3, 0, out, true); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "[tgd]") {
		t.Error("generated file has no TGDs")
	}
}

func TestRunDurum(t *testing.T) {
	out := filepath.Join(t.TempDir(), "durum.kb")
	if err := run(io.Discard, 0, 0, 0, 0, 0, 0, 0, 0, 1, out, true); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty durum output")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestRunUnwritableOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "no", "such", "dir", "synth.kb")
	if err := run(io.Discard, 60, 0.2, 6, 0, 0, 0.3, 8, 3, 0, out, true); err == nil {
		t.Error("unwritable -out path accepted")
	}
}

func TestRunFailingStdout(t *testing.T) {
	if err := run(failWriter{}, 60, 0.2, 6, 0, 0, 0.3, 8, 3, 0, "", true); err == nil {
		t.Error("failing stdout writer accepted")
	}
}

func TestRunInvalidParams(t *testing.T) {
	if err := run(io.Discard, 50, 2.5, 5, 0, 0, 0.3, 8, 3, 0, "", true); err == nil {
		t.Error("invalid ratio accepted")
	}
	if err := run(io.Discard, 0, 0, 0, 0, 0, 0, 0, 0, 9, "", true); err == nil {
		t.Error("invalid durum version accepted")
	}
}
