// Command kbgen generates knowledge bases in the kbrepair text format:
// synthetic KBs per §6 of the paper, or the Durum Wheat substitute.
//
// Usage:
//
//	kbgen -facts 1005 -ratio 0.2 -cdds 15 -out synth.kb
//	kbgen -facts 800 -ratio 0.25 -cdds 50 -tgds 25 -out mixed.kb
//	kbgen -durum 1 -out durum_v1.kb
//	kbgen -facts 100000 -metrics m.json -out big.kb   # with observability
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"kbrepair"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/par"
)

func main() {
	defer flight.HandlePanic()
	var (
		facts    = flag.Int("facts", 200, "target number of facts")
		ratio    = flag.Float64("ratio", 0.1, "inconsistency ratio (fraction of atoms in conflicts)")
		cdds     = flag.Int("cdds", 10, "number of CDDs")
		tgds     = flag.Int("tgds", 0, "number of TGDs (0 = CDD-only KB)")
		depth    = flag.Int("depth", 0, "TGD chain depth d_K (0 = default)")
		joinVar  = flag.Float64("joinvar", 0.3, "join-variable ratio in CDD bodies")
		preds    = flag.Int("preds", 12, "vocabulary size (predicates)")
		seed     = flag.Int64("seed", 1, "random seed")
		durumVer = flag.Int("durum", 0, "build the Durum Wheat KB instead (1 or 2)")
		outPath  = flag.String("out", "", "output file (default: stdout)")
		quiet    = flag.Bool("quiet", false, "suppress the characteristics report")
	)
	obsCfg := obs.AddFlags(flag.CommandLine)
	flightCfg := flight.AddFlags(flag.CommandLine)
	schedCfg := sched.AddFlags(flag.CommandLine)
	workersFlag := par.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := obs.ValidateFlags(flag.CommandLine, "workers"); err != nil {
		fmt.Fprintln(os.Stderr, "kbgen:", err)
		os.Exit(2)
	}
	par.Configure(workersFlag)
	flush, err := obs.SetupCLI(*obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbgen:", err)
		os.Exit(1)
	}
	finish := flight.Setup("kbgen", *flightCfg)
	schedFlush, err := sched.SetupCLI(*schedCfg, *obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbgen:", err)
		os.Exit(1)
	}
	runErr := run(os.Stdout, *facts, *ratio, *cdds, *tgds, *depth, *joinVar, *preds, *seed, *durumVer, *outPath, *quiet)
	if err := finish(); err != nil && runErr == nil {
		runErr = err
	}
	if err := schedFlush(); err != nil && runErr == nil {
		runErr = err
	}
	if err := flush(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "kbgen:", runErr)
		os.Exit(1)
	}
}

// run generates the KB and writes it to outPath, or to w when outPath is
// empty. Write errors (closed pipe, full disk, unwritable path) are
// returned so main exits non-zero.
func run(w io.Writer, facts int, ratio float64, cdds, tgds, depth int, joinVar float64, preds int, seed int64, durumVer int, outPath string, quiet bool) error {
	var (
		kb   *kbrepair.KB
		info kbrepair.SynthInfo
		err  error
	)
	if durumVer != 0 {
		kb, info, err = kbrepair.BuildDurumWheat(durumVer)
	} else {
		kb, info, err = kbrepair.GenerateSynthetic(kbrepair.SynthParams{
			Seed:               seed,
			NumFacts:           facts,
			InconsistencyRatio: ratio,
			NumCDDs:            cdds,
			NumTGDs:            tgds,
			Depth:              depth,
			JoinVarRatio:       joinVar,
			NumPredicates:      preds,
		})
	}
	if err != nil {
		return err
	}
	text := kbrepair.FormatKB(kb)
	if outPath == "" {
		if _, err := io.WriteString(w, text); err != nil {
			return fmt.Errorf("writing output: %w", err)
		}
	} else if err := os.WriteFile(outPath, []byte(text), 0o644); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "facts=%d chase=%d tgds=%d cdds=%d conflicts=%d (naive %d) inconsistency=%.1f%% scope=%.1f\n",
			info.Facts, info.ChaseSize, info.NumTGDs, info.NumCDDs,
			info.TotalConflicts, info.NaiveConflicts, info.InconsistencyRatio*100, info.AvgScope)
	}
	return nil
}
