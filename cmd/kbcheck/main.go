// Command kbcheck validates and diagnoses a knowledge-base file: rule
// well-formedness, weak acyclicity, TGD/CDD compatibility, consistency,
// and the conflict report (with base supports).
//
// Usage:
//
//	kbcheck -kb medical.kb
//	kbcheck -kb medical.kb -conflicts     # list every conflict
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kbrepair"
	"kbrepair/internal/exp"
)

func main() {
	var (
		kbPath        = flag.String("kb", "", "knowledge-base file (required)")
		listConflicts = flag.Bool("conflicts", false, "list every conflict with its base support")
		explain       = flag.Bool("explain", false, "with -conflicts: print derivation trees for chase-discovered violations")
	)
	flag.Parse()
	if *kbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*kbPath, *listConflicts, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "kbcheck:", err)
		os.Exit(1)
	}
}

func run(kbPath string, listConflicts, explain bool) error {
	kb, err := kbrepair.LoadKB(kbPath)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d facts, %d TGDs, %d CDDs\n", kbPath, kb.Facts.Len(), len(kb.TGDs), len(kb.CDDs))
	fmt.Printf("TGDs weakly acyclic: %v\n", kbrepair.IsWeaklyAcyclic(kb.TGDs))
	compatible, err := kb.RulesCompatible()
	if err != nil {
		return err
	}
	fmt.Printf("TGDs compatible with CDDs: %v\n", compatible)

	info, err := kbrepair.DescribeKB(kb)
	if err != nil {
		return err
	}
	exp.WriteInfoTable(os.Stdout, kbPath, info)

	ok, err := kb.IsConsistent()
	if err != nil {
		return err
	}
	if ok {
		fmt.Println("consistent: yes")
		return nil
	}
	fmt.Println("consistent: NO")
	if listConflicts {
		conflicts, res, err := kb.AllConflicts()
		if err != nil {
			return err
		}
		for i, c := range conflicts {
			fmt.Printf("conflict %d: %s with %s\n", i+1, c.CDD, c.Hom)
			for _, f := range c.BaseFacts {
				marker := " "
				if !c.Direct {
					marker = "*" // conflict discovered through the chase
				}
				fmt.Printf("  %s %s\n", marker, res.Store.FactRef(f))
			}
			if explain && !c.Direct {
				fmt.Println("  derivations of the violating atoms:")
				for _, f := range c.Facts {
					for _, line := range strings.Split(strings.TrimRight(res.Explain(f), "\n"), "\n") {
						fmt.Printf("    %s\n", line)
					}
				}
			}
		}
		fmt.Println("(* = conflict involves chase-derived facts; listed atoms are the base support)")
	}
	return nil
}
