// Command kbcheck validates and diagnoses a knowledge-base file: rule
// well-formedness, weak acyclicity, TGD/CDD compatibility, consistency,
// and the conflict report (with base supports).
//
// Usage:
//
//	kbcheck -kb medical.kb
//	kbcheck -kb medical.kb -conflicts     # list every conflict
//	kbcheck -kb huge.kb -metrics m.json -pprof localhost:6060
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kbrepair"
	"kbrepair/internal/core"
	"kbrepair/internal/exp"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/par"
)

func main() {
	defer flight.HandlePanic()
	var (
		kbPath        = flag.String("kb", "", "knowledge-base file (required)")
		listConflicts = flag.Bool("conflicts", false, "list every conflict with its base support")
		explain       = flag.Bool("explain", false, "with -conflicts: print derivation trees for chase-discovered violations")
	)
	obsCfg := obs.AddFlags(flag.CommandLine)
	flightCfg := flight.AddFlags(flag.CommandLine)
	schedCfg := sched.AddFlags(flag.CommandLine)
	workersFlag := par.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := obs.ValidateFlags(flag.CommandLine, "workers"); err != nil {
		fmt.Fprintln(os.Stderr, "kbcheck:", err)
		os.Exit(2)
	}
	par.Configure(workersFlag)
	if *kbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	flush, err := obs.SetupCLI(*obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbcheck:", err)
		os.Exit(1)
	}
	finish := flight.Setup("kbcheck", *flightCfg)
	schedFlush, err := sched.SetupCLI(*schedCfg, *obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbcheck:", err)
		os.Exit(1)
	}
	attr.SetEnabled(obsCfg.Enabled())
	out := bufio.NewWriter(os.Stdout)
	runErr := run(out, *kbPath, *listConflicts, *explain, *flightCfg)
	if err := out.Flush(); err != nil && runErr == nil {
		runErr = fmt.Errorf("writing output: %w", err)
	}
	if err := finish(); err != nil && runErr == nil {
		runErr = err
	}
	if err := schedFlush(); err != nil && runErr == nil {
		runErr = err
	}
	if err := flush(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "kbcheck:", runErr)
		os.Exit(1)
	}
}

func run(w io.Writer, kbPath string, listConflicts, explain bool, fcfg flight.Config) error {
	kb, err := kbrepair.LoadKB(kbPath)
	if err != nil {
		return err
	}
	digest := core.DigestKB(kb)
	flight.SetDigestProvider(func() any { return digest })
	fcfg.Autosize(kb.Facts.Len())
	fmt.Fprintf(w, "%s: %d facts, %d TGDs, %d CDDs\n", kbPath, kb.Facts.Len(), len(kb.TGDs), len(kb.CDDs))
	fmt.Fprintf(w, "TGDs weakly acyclic: %v\n", kbrepair.IsWeaklyAcyclic(kb.TGDs))
	compatible, err := kb.RulesCompatible()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "TGDs compatible with CDDs: %v\n", compatible)

	info, err := kbrepair.DescribeKB(kb)
	if err != nil {
		return err
	}
	exp.WriteInfoTable(w, kbPath, info)

	ok, err := kb.IsConsistent()
	if err != nil {
		return err
	}
	if ok {
		fmt.Fprintln(w, "consistent: yes")
		return nil
	}
	fmt.Fprintln(w, "consistent: NO")
	if listConflicts {
		conflicts, res, err := kb.AllConflicts()
		if err != nil {
			return err
		}
		for i, c := range conflicts {
			fmt.Fprintf(w, "conflict %d: %s with %s\n", i+1, c.CDD, c.Hom)
			for _, f := range c.BaseFacts {
				marker := " "
				if !c.Direct {
					marker = "*" // conflict discovered through the chase
				}
				fmt.Fprintf(w, "  %s %s\n", marker, res.Store.FactRef(f))
			}
			if explain && !c.Direct {
				fmt.Fprintln(w, "  derivations of the violating atoms:")
				for _, f := range c.Facts {
					for _, line := range strings.Split(strings.TrimRight(res.Explain(f), "\n"), "\n") {
						fmt.Fprintf(w, "    %s\n", line)
					}
				}
			}
		}
		fmt.Fprintln(w, "(* = conflict involves chase-derived facts; listed atoms are the base support)")
	}
	return nil
}
