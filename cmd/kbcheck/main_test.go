package main

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"kbrepair/internal/obs/flight"
)

func writeKB(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.kb")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunInconsistentKB(t *testing.T) {
	path := writeKB(t, `
prescribed(Aspirin, John).
hasAllergy(John, Aspirin).
[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
`)
	if err := run(io.Discard, path, true, true, flight.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConsistentKB(t *testing.T) {
	path := writeKB(t, `
prescribed(Aspirin, John).
[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
`)
	if err := run(io.Discard, path, false, false, flight.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithChaseConflicts(t *testing.T) {
	path := writeKB(t, `
p(a).
r(a).
[tgd] p(X) -> q(X).
[cdd] q(X), r(X) -> !.
`)
	if err := run(io.Discard, path, true, true, flight.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(io.Discard, filepath.Join(t.TempDir(), "nope.kb"), false, false, flight.Config{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunBadSyntax(t *testing.T) {
	path := writeKB(t, "p(a")
	if err := run(io.Discard, path, false, false, flight.Config{}); err == nil {
		t.Error("bad syntax accepted")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// Output write failures surface through the buffered writer's Flush in
// main; run itself must complete its analysis regardless.
func TestFailingOutputSurfacesAtFlush(t *testing.T) {
	path := writeKB(t, `
prescribed(Aspirin, John).
hasAllergy(John, Aspirin).
[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
`)
	out := bufio.NewWriterSize(failWriter{}, 16)
	if err := run(out, path, true, false, flight.Config{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := out.Flush(); err == nil {
		t.Error("flush on failing writer reported no error")
	}
}
