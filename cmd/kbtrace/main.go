// Command kbtrace analyzes the JSONL execution traces written by the
// kbrepair CLIs (-trace): it reconstructs the causal span forest and
// renders per-question latency waterfalls, a per-span-name time table, the
// critical path of a run, and a Chrome trace_event export loadable in
// Perfetto or chrome://tracing.
//
// Usage:
//
//	kbtrace run.trace                    # summary + top span names
//	kbtrace -waterfall run.trace         # per-question latency waterfalls
//	kbtrace -waterfall -top 5 run.trace  # only the 5 slowest questions
//	kbtrace -critical-path run.trace     # the run's critical path
//	kbtrace -chrome out.json run.trace   # export for Perfetto
//	kbtrace -sched sched.json run.trace  # + worker-lane efficiency report
//	kbrepair ... -trace /dev/stdout | kbtrace -waterfall -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"kbrepair/internal/exp"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/obs/traceview"
)

func main() {
	var (
		waterfall = flag.Bool("waterfall", false, "print per-question latency waterfalls (fails when the trace has no question spans)")
		top       = flag.Int("top", 0, "with -waterfall: only the N slowest questions (0 = all, in run order); elsewhere: rows in the span-name table (0 = all)")
		critical  = flag.Bool("critical-path", false, "print the critical path of the run")
		chrome    = flag.String("chrome", "", "write a Chrome trace_event JSON export to this file (use chrome://tracing or ui.perfetto.dev)")
		schedPath = flag.String("sched", "", "also load a scheduling snapshot (written by the CLIs' -sched flag): prints the worker-lane efficiency report and adds per-lane rows to -chrome")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kbtrace [flags] <trace.jsonl | ->\n\nAnalyze a JSONL trace produced with -trace on the kbrepair CLIs.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	out := bufio.NewWriter(os.Stdout)
	runErr := run(out, flag.Arg(0), *waterfall, *top, *critical, *chrome, *schedPath)
	if err := out.Flush(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "kbtrace:", runErr)
		os.Exit(1)
	}
}

// run parses the trace and renders the requested views. It is the testable
// core: main only wires flags and exit codes around it.
func run(out io.Writer, path string, waterfall bool, top int, critical bool, chromePath, schedPath string) error {
	f, err := parseTrace(path)
	if err != nil {
		return err
	}
	if f.Spans() == 0 && len(f.Events) == 0 {
		return fmt.Errorf("%s: empty trace", path)
	}
	var snap *sched.Snapshot
	if schedPath != "" {
		snap, err = sched.ReadSnapshotFile(schedPath)
		if err != nil {
			return err
		}
	}

	anyView := false
	if snap != nil {
		anyView = true
		printSched(out, f, snap)
	}
	if waterfall {
		anyView = true
		if err := printWaterfalls(out, f, top); err != nil {
			return err
		}
	}
	if critical {
		anyView = true
		printCriticalPath(out, f)
	}
	if chromePath != "" {
		anyView = true
		var lanes []sched.Interval
		if snap != nil {
			lanes = snap.Intervals
		}
		if err := exportChrome(f, chromePath, lanes); err != nil {
			return err
		}
		fmt.Fprintf(out, "chrome trace_event export written to %s\n", chromePath)
	}
	if !anyView || (snap != nil && !waterfall && !critical && chromePath == "") {
		printSummary(out, f, top)
	}
	return nil
}

// printSched renders the worker-lane efficiency report of a -sched
// snapshot against the trace's wall clock: the run window observed in the
// span forest bounds the Amdahl decomposition (queue-wait share needs the
// metrics snapshot and is only in kbbench's BENCH.json report).
func printSched(out io.Writer, f *traceview.Forest, snap *sched.Snapshot) {
	var loUS, hiUS int64
	first := true
	f.Walk(func(s *traceview.Span) {
		if first || s.StartUS < loUS {
			loUS = s.StartUS
		}
		if end := s.StartUS + s.DurUS; first || end > hiUS {
			hiUS = end
		}
		first = false
	})
	wallUS := hiUS - loUS
	workers := 0
	for _, a := range snap.Labels {
		if a.MaxWorkers > workers {
			workers = a.MaxWorkers
		}
	}
	eff := exp.BuildEfficiency(snap, wallUS, 0, workers)
	exp.WriteEfficiency(out, eff)
	fmt.Fprintf(out, "  %d lane intervals retained (%d recorded, %d fanouts)\n",
		snap.IntervalsRetained, snap.IntervalsTotal, snap.FanoutsTotal)
}

func parseTrace(path string) (*traceview.Forest, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		file, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		r = file
	}
	f, err := traceview.Parse(r)
	if err != nil {
		if path != "-" {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return nil, err
	}
	return f, nil
}

// printWaterfalls renders one block per question span. It errors when the
// trace holds no question spans: a trace recorded without the inquiry
// engine (or from an older build without parentage) has no waterfalls to
// show, and make trace-smoke relies on the non-zero exit to catch exactly
// that regression.
func printWaterfalls(out io.Writer, f *traceview.Forest, top int) error {
	ws := f.Waterfalls()
	if len(ws) == 0 {
		return fmt.Errorf("no %s spans in trace (need a trace recorded from a repair run)", traceview.QuestionSpanName)
	}
	if top > 0 {
		ws = f.SlowestQuestions(top)
	}
	for _, w := range ws {
		fmt.Fprintf(out, "question %d (phase %d)  total %s", w.Q, w.Phase, us(w.TotalUS))
		if w.EngineDelayUS >= 0 {
			fmt.Fprintf(out, "  engine delay %s", us(w.EngineDelayUS))
		}
		fmt.Fprintln(out)
		width := 0
		for _, c := range w.Components {
			if len(c.Name) > width {
				width = len(c.Name)
			}
		}
		if len("(unattributed)") > width {
			width = len("(unattributed)")
		}
		for _, c := range w.Components {
			fmt.Fprintf(out, "  %-*s %10s  %s  ×%d\n", width, c.Name, us(c.DurUS), bar(c.DurUS, w.TotalUS), c.Count)
		}
		fmt.Fprintf(out, "  %-*s %10s  %s\n", width, "(unattributed)", us(w.UnattributedUS), bar(w.UnattributedUS, w.TotalUS))
	}
	fmt.Fprintf(out, "%d questions\n", len(ws))
	return nil
}

func printCriticalPath(out io.Writer, f *traceview.Forest) {
	path := f.CriticalPath()
	if len(path) == 0 {
		fmt.Fprintln(out, "critical path: (no spans)")
		return
	}
	fmt.Fprintln(out, "critical path:")
	for depth, s := range path {
		fmt.Fprintf(out, "  %*s%s  total %s  self %s\n",
			2*depth, "", s.Name, us(s.DurUS), us(s.SelfUS))
	}
}

func printSummary(out io.Writer, f *traceview.Forest, top int) {
	ws := f.Waterfalls()
	fmt.Fprintf(out, "%d spans, %d events, %d roots, %d questions\n",
		f.Spans(), len(f.Events), len(f.Roots), len(ws))
	stats := f.Aggregate()
	if top > 0 && len(stats) > top {
		stats = stats[:top]
	}
	width := len("name")
	for _, s := range stats {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	fmt.Fprintf(out, "%-*s %6s %12s %12s %12s\n", width, "name", "count", "total", "self", "max")
	for _, s := range stats {
		fmt.Fprintf(out, "%-*s %6d %12s %12s %12s\n",
			width, s.Name, s.Count, us(s.TotalUS), us(s.SelfUS), us(s.MaxUS))
	}
}

// exportChrome writes the trace_event file and re-reads it through the
// validator, so a reported success means a file the viewers will load.
func exportChrome(f *traceview.Forest, path string, lanes []sched.Interval) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(file)
	if err := traceview.WriteChromeWithLanes(w, f, lanes); err != nil {
		file.Close()
		return fmt.Errorf("chrome export: %w", err)
	}
	if err := w.Flush(); err != nil {
		file.Close()
		return fmt.Errorf("chrome export: %w", err)
	}
	if err := file.Close(); err != nil {
		return fmt.Errorf("chrome export: %w", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chrome export self-check: %w", err)
	}
	if _, err := traceview.ValidateChrome(b); err != nil {
		return fmt.Errorf("chrome export self-check: %w", err)
	}
	return nil
}

// us renders microseconds human-readably while staying deterministic (no
// float formatting surprises: integer math only).
func us(v int64) string {
	switch {
	case v >= 1_000_000 || v <= -1_000_000:
		return fmt.Sprintf("%d.%03ds", v/1_000_000, abs(v)%1_000_000/1_000)
	case v >= 1_000 || v <= -1_000:
		return fmt.Sprintf("%d.%03dms", v/1_000, abs(v)%1_000)
	default:
		return fmt.Sprintf("%dµs", v)
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// bar renders a 20-cell proportion bar of part within total.
func bar(part, total int64) string {
	const cells = 20
	filled := 0
	if total > 0 && part > 0 {
		filled = int(part * cells / total)
		if filled > cells {
			filled = cells
		}
	}
	b := make([]rune, cells)
	for i := range b {
		if i < filled {
			b[i] = '█'
		} else {
			b[i] = '·'
		}
	}
	return string(b)
}
