package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kbrepair/internal/inquiry"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/synth"
)

const fixturePath = "testdata/fixture.trace"

// fixedClock steps 1ms per reading from a fixed epoch — the same injected
// clock the obs and inquiry determinism tests use, so the fixture trace is
// byte-identical every time it is regenerated.
func fixedClock() func() time.Time {
	t := time.UnixMicro(1_700_000_000_000_000).UTC()
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

// TestRegenerateFixture rewrites testdata/fixture.trace by running the real
// pipeline (fixed-seed synthetic KB, simulated user, injected clock) with a
// JSONL sink on the default tracer — the exact wiring kbrepair -trace uses.
// It only runs when asked:
//
//	KBTRACE_REGEN=1 go test ./cmd/kbtrace/
//	KBTRACE_UPDATE_GOLDEN=1 go test ./cmd/kbtrace/   # then refresh goldens
func TestRegenerateFixture(t *testing.T) {
	if os.Getenv("KBTRACE_REGEN") == "" {
		t.Skip("set KBTRACE_REGEN=1 to regenerate the fixture trace")
	}
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	obs.SetTraceSink(sink)
	obs.DefaultTracer().SetNow(fixedClock())
	defer func() {
		obs.SetTraceSink(nil)
		obs.DefaultTracer().SetNow(nil)
	}()

	g, err := synth.Generate(synth.Params{
		Seed:               9,
		NumFacts:           120,
		InconsistencyRatio: 0.25,
		NumCDDs:            8,
		NumTGDs:            4,
		JoinVarRatio:       0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := inquiry.New(g.KB, inquiry.OptiMCD{}, inquiry.NewSimulatedUser(17), 17, inquiry.Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("fixture repair did not converge")
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := os.WriteFile(fixturePath, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write fixture: %v", err)
	}
	t.Logf("wrote %s (%d bytes, %d questions)", fixturePath, buf.Len(), res.Questions)
}

// goldenTest renders one view of the committed fixture trace and compares it
// byte-for-byte against testdata/<name>.golden (refresh with
// KBTRACE_UPDATE_GOLDEN=1).
func goldenTest(t *testing.T, name string, waterfall bool, top int, critical bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, fixturePath, waterfall, top, critical, "", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	golden := filepath.Join("testdata", name+".golden")
	if os.Getenv("KBTRACE_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s output does not match golden file.\n--- got ---\n%s\n--- want ---\n%s", name, buf.Bytes(), want)
	}
}

func TestWaterfallGolden(t *testing.T)    { goldenTest(t, "waterfall", true, 0, false) }
func TestCriticalPathGolden(t *testing.T) { goldenTest(t, "critical-path", false, 0, true) }
func TestSummaryGolden(t *testing.T)      { goldenTest(t, "summary", false, 0, false) }

// TestWaterfallTop checks the -top selection: fewer blocks, slowest first.
func TestWaterfallTop(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, fixturePath, true, 1, false, "", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if got := strings.Count(out, "(phase "); got != 1 {
		t.Errorf("blocks = %d, want 1:\n%s", got, out)
	}
	if !strings.Contains(out, "1 questions") {
		t.Errorf("missing question count:\n%s", out)
	}
}

// TestChromeExportFixture runs the -chrome path end to end; exportChrome
// re-reads and validates its own output, so success means a loadable file.
func TestChromeExportFixture(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run(&buf, fixturePath, false, 0, false, out, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read export: %v", err)
	}
	if !bytes.Contains(b, []byte(`"traceEvents"`)) || !bytes.Contains(b, []byte(`"inquiry.run"`)) {
		t.Errorf("export missing expected content (%d bytes)", len(b))
	}
}

// TestEmptyTraceErrors pins the non-zero exit make trace-smoke relies on.
func TestEmptyTraceErrors(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.trace")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, empty, false, 0, false, "", ""); err == nil || !strings.Contains(err.Error(), "empty trace") {
		t.Errorf("err = %v, want empty-trace error", err)
	}
}

// TestNoQuestionsWaterfallErrors: a trace without question spans has no
// waterfalls; -waterfall must fail rather than print nothing.
func TestNoQuestionsWaterfallErrors(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bare.trace")
	line := `{"type":"span","name":"chase.run","span":1,"start_us":1000,"dur_us":500}` + "\n"
	if err := os.WriteFile(p, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, p, true, 0, false, "", ""); err == nil || !strings.Contains(err.Error(), "no inquiry.question spans") {
		t.Errorf("err = %v, want no-question-spans error", err)
	}
}

// TestSchedSnapshotReport feeds a -sched snapshot alongside the fixture
// trace: the efficiency report renders against the trace's wall window,
// and -chrome picks up the lane intervals as per-lane rows.
func TestSchedSnapshotReport(t *testing.T) {
	snap := &sched.Snapshot{
		Enabled:           true,
		FanoutsTotal:      2,
		IntervalsTotal:    3,
		IntervalsRetained: 3,
		Labels: []sched.LabelAgg{
			{Label: "conflict.scan", Fanouts: 2, Tasks: 3, WallUS: 400, TopWallUS: 400,
				BusyUS: 600, WorkerUS: 800, MaxWorkers: 2},
		},
		Intervals: []sched.Interval{
			{Fanout: 1, Label: "conflict.scan", Lane: 0, Task: 0, StartUS: 1000, EndUS: 1100},
			{Fanout: 1, Label: "conflict.scan", Lane: 1, Task: 1, StartUS: 1000, EndUS: 1200},
			{Fanout: 2, Label: "conflict.scan", Lane: 0, Task: 2, StartUS: 1300, EndUS: 1400},
		},
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(t.TempDir(), "sched.json")
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(&buf, fixturePath, false, 0, false, "", snapPath); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Parallel efficiency (workers=2)",
		"conflict.scan",
		"75.0% utilization",
		"3 lane intervals retained",
		"spans, ", // -sched alone still prints the summary table
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	chromePath := filepath.Join(t.TempDir(), "trace.chrome.json")
	buf.Reset()
	if err := run(&buf, fixturePath, false, 0, false, chromePath, snapPath); err != nil {
		t.Fatalf("run with -chrome -sched: %v", err)
	}
	exported, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"tid": 100`, `"tid": 101`, `"worker lane 1"`} {
		if !strings.Contains(string(exported), want) {
			t.Errorf("chrome export missing %s", want)
		}
	}
}

func TestSchedSnapshotMissingFile(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, fixturePath, false, 0, false, "", filepath.Join(t.TempDir(), "nope.json"))
	if err == nil || !strings.Contains(err.Error(), "sched snapshot") {
		t.Fatalf("missing snapshot not reported: %v", err)
	}
}
