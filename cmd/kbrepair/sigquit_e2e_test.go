//go:build unix

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"kbrepair/internal/obs/flight"
)

// buildKBRepair compiles the kbrepair binary into a temp dir. The e2e tests
// below exercise process-level behaviour (signals, exit codes) that cannot
// be observed in-process.
func buildKBRepair(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "kbrepair")
	cmd := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// syncBuffer lets the stdout-copier goroutine and the polling test share a
// buffer without racing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSIGQUITLeavesParseableBundle starts an interactive repair session,
// waits until it is blocked on a question, sends SIGQUIT and verifies the
// process exits with status 2 leaving a bundle that kbdump/ReadBundle can
// parse — the "operator hits ctrl-\ on a hung session" acceptance path.
func TestSIGQUITLeavesParseableBundle(t *testing.T) {
	bin := buildKBRepair(t)
	kbPath := writeKB(t, inconsistentKB)
	bundleDir := filepath.Join(t.TempDir(), "bundle")

	cmd := exec.Command(bin, "-kb", kbPath, "-debug-bundle", bundleDir)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer stdin.Close()
	var out syncBuffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the session to block on the first question prompt.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "choose a fix") {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no question prompt within deadline; output:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit error, got %v; output:\n%s", err, out.String())
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("expected exit status 2, got %d; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "goroutine ") {
		t.Errorf("SIGQUIT should print goroutine stacks to stderr; output:\n%s", out.String())
	}

	b, err := flight.ReadBundle(bundleDir)
	if err != nil {
		t.Fatalf("bundle left by SIGQUIT is not parseable: %v", err)
	}
	if b.Reason != "signal:quit" {
		t.Errorf("bundle reason = %q, want %q", b.Reason, "signal:quit")
	}
	kinds := make(map[string]bool)
	for _, raw := range b.Events {
		var m struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("unparseable event %s: %v", raw, err)
		}
		kinds[m.Kind] = true
	}
	for _, want := range []string{"inquiry.session_start", "inquiry.question", "flight.bundle_dump"} {
		if !kinds[want] {
			t.Errorf("bundle missing %q event; kinds present: %v", want, kinds)
		}
	}
	if len(b.KBDigest) == 0 {
		t.Error("bundle missing the KB digest section")
	}
	if b.Goroutines == "" {
		t.Error("bundle missing goroutine stacks")
	}
}

// TestFlagValidationExitCode verifies the process-level contract of satellite
// flag validation: explicit nonsense values are rejected with a one-line
// stderr message and exit status 2, before any work starts.
func TestFlagValidationExitCode(t *testing.T) {
	bin := buildKBRepair(t)
	kbPath := writeKB(t, inconsistentKB)

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"workers zero", []string{"-kb", kbPath, "-auto", "-workers", "0"}, "-workers must be positive"},
		{"workers negative", []string{"-kb", kbPath, "-auto", "-workers", "-3"}, "-workers must be positive"},
		{"sample interval zero", []string{"-kb", kbPath, "-auto", "-timeseries", os.DevNull, "-sample-interval", "0s"}, "-sample-interval must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected exit error, got %v; output:\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("expected exit status 2, got %d; output:\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, out)
			}
		})
	}
}
