// Command kbrepair runs a user-guided repair session over a knowledge-base
// file. By default the questions are answered interactively on the
// terminal; -auto answers them with the paper's simulated random user, and
// -oracle answers them from a target repair file.
//
// Usage:
//
//	kbrepair -kb medical.kb                      # interactive session
//	kbrepair -kb medical.kb -auto -seed 7        # simulated user
//	kbrepair -kb medical.kb -oracle repaired.kb  # oracle user (§4.1)
//	kbrepair -kb medical.kb -auto -out fixed.kb  # write the repair
//	kbrepair -kb medical.kb -auto -metrics m.json -trace t.jsonl
//	kbrepair -kb medical.kb -auto -timeseries ts.jsonl -pprof localhost:6060
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kbrepair"
	"kbrepair/internal/core"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/par"
)

func main() {
	defer flight.HandlePanic()
	var (
		kbPath    = flag.String("kb", "", "knowledge-base file (required)")
		stratName = flag.String("strategy", "opti-mcd", "questioning strategy: random | opti-join | opti-prop | opti-mcd")
		auto      = flag.Bool("auto", false, "answer questions with the simulated random user")
		oracleKB  = flag.String("oracle", "", "answer questions from this target-repair file (same fact order as -kb)")
		seed      = flag.Int64("seed", 1, "random seed for strategy tie-breaks and the simulated user")
		outPath   = flag.String("out", "", "write the repaired KB to this file")
		basic     = flag.Bool("basic", false, "use the basic inquiry (Algorithm 3) instead of the two-phase strategy inquiry")
		maxValues = flag.Int("max-values", 0, "cap candidate values per position (0 = unlimited)")
		journal   = flag.String("journal", "", "record the session (questions and answers) to this JSON file")
		replay    = flag.String("replay", "", "answer questions by replaying a recorded session file")
	)
	obsCfg := obs.AddFlags(flag.CommandLine)
	flightCfg := flight.AddFlags(flag.CommandLine)
	schedCfg := sched.AddFlags(flag.CommandLine)
	workersFlag := par.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := obs.ValidateFlags(flag.CommandLine, "workers"); err != nil {
		fmt.Fprintln(os.Stderr, "kbrepair:", err)
		os.Exit(2)
	}
	par.Configure(workersFlag)
	if *kbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	flush, err := obs.SetupCLI(*obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbrepair:", err)
		os.Exit(1)
	}
	finish := flight.Setup("kbrepair", *flightCfg)
	schedFlush, err := sched.SetupCLI(*schedCfg, *obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbrepair:", err)
		os.Exit(1)
	}
	// Per-rule attribution rides along with the observability outputs: any
	// -metrics/-trace/-pprof/-timeseries run gets a /profilez-able profile.
	attr.SetEnabled(obsCfg.Enabled())
	runErr := run(*kbPath, *stratName, *auto, *oracleKB, *seed, *outPath, *basic, *maxValues, *journal, *replay, *flightCfg)
	if err := finish(); err != nil && runErr == nil {
		runErr = err
	}
	if err := schedFlush(); err != nil && runErr == nil {
		runErr = err
	}
	if err := flush(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "kbrepair:", runErr)
		os.Exit(1)
	}
}

func run(kbPath, stratName string, auto bool, oraclePath string, seed int64, outPath string, basic bool, maxValues int, journalPath, replayPath string, fcfg flight.Config) error {
	kb, err := kbrepair.LoadKB(kbPath)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d facts, %d TGDs, %d CDDs\n",
		kbPath, kb.Facts.Len(), len(kb.TGDs), len(kb.CDDs))
	// Stamp debug bundles with the loaded KB's shape. The digest is computed
	// once, here, so the provider hands the signal handler an immutable value
	// describing the *input* KB, not a racy view of the store mid-repair.
	digest := core.DigestKB(kb)
	flight.SetDigestProvider(func() any { return digest })
	// Now that the KB size is known, grow the flight ring to match (no-op
	// when -flight-events was set explicitly).
	fcfg.Autosize(kb.Facts.Len())

	ok, err := kb.IsConsistent()
	if err != nil {
		return err
	}
	if ok {
		fmt.Println("knowledge base is already consistent; nothing to repair")
		return maybeSave(kb, outPath)
	}
	conflicts, _, err := kb.AllConflicts()
	if err != nil {
		return err
	}
	fmt.Printf("inconsistent: %d conflicts (%d visible without the chase)\n",
		len(conflicts), len(kb.NaiveConflicts()))

	strat, err := kbrepair.StrategyByName(stratName)
	if err != nil {
		return err
	}
	var user kbrepair.User
	switch {
	case replayPath != "":
		j, err := inquiry.LoadJournal(replayPath)
		if err != nil {
			return err
		}
		checked, err := j.CheckKB(kb)
		if err != nil {
			return fmt.Errorf("replaying %s: %w", replayPath, err)
		}
		if !checked {
			fmt.Fprintf(os.Stderr, "kbrepair: warning: %s has no KB digest (recorded by an older build); cannot verify it matches %s\n",
				replayPath, kbPath)
		}
		// The header pins the session: a different strategy or seed would
		// ask different questions and abort on the first mismatch, so the
		// recorded values win over the flags. Headerless journals (Seed 0)
		// keep the flag values, as before the header existed.
		if j.Strategy != "" && j.Strategy != stratName {
			fmt.Printf("replaying with recorded strategy %s (flag said %s)\n", j.Strategy, stratName)
			if strat, err = kbrepair.StrategyByName(j.Strategy); err != nil {
				return err
			}
		}
		if j.Seed != 0 && j.Seed != seed {
			fmt.Printf("replaying with recorded seed %d (flag said %d)\n", j.Seed, seed)
			seed = j.Seed
		}
		user = inquiry.NewReplayUser(j)
		fmt.Printf("replaying %d recorded answers from %s\n", len(j.Entries), replayPath)
	case oraclePath != "":
		target, err := kbrepair.LoadKB(oraclePath)
		if err != nil {
			return err
		}
		if target.Facts.Len() != kb.Facts.Len() {
			return fmt.Errorf("oracle KB has %d facts, input has %d — fact order must match",
				target.Facts.Len(), kb.Facts.Len())
		}
		user = kbrepair.NewOracle(target.Facts, seed)
		fmt.Println("answering with the oracle user")
	case auto:
		user = kbrepair.NewSimulatedUser(seed)
		fmt.Println("answering with the simulated random user")
	default:
		user = terminalUser{in: bufio.NewReader(os.Stdin)}
	}

	var recorder *inquiry.RecordingUser
	if journalPath != "" {
		recorder = inquiry.NewRecordingSession(user, stratName, seed, kb)
		user = recorder
		// Debug bundles of a recording session include the journal-so-far;
		// Snapshot is safe against the session appending concurrently. The
		// provider stays installed past run() so the at-exit bundle carries
		// the finished journal too.
		flight.SetJournalProvider(func() any { return recorder.Snapshot() })
	}
	engine := kbrepair.NewEngine(kb, strat, user, seed, kbrepair.EngineOptions{MaxValuesPerPosition: maxValues})
	var res *kbrepair.InquiryResult
	if basic {
		res, err = engine.RunBasic()
	} else {
		res, err = engine.Run()
	}
	if err != nil {
		return err
	}
	if recorder != nil {
		if err := inquiry.SaveJournal(recorder.Journal(), journalPath); err != nil {
			return err
		}
		fmt.Printf("recorded %d answers to %s\n", len(recorder.Journal().Entries), journalPath)
	}
	fmt.Printf("\nrepair complete: %d questions, consistent=%v, avg delay %s\n",
		res.Questions, res.Consistent, res.AvgDelay())
	fmt.Printf("applied fixes: %s\n", res.AppliedFixes)
	return maybeSave(kb, outPath)
}

func maybeSave(kb *kbrepair.KB, outPath string) error {
	if outPath == "" {
		return nil
	}
	if err := kbrepair.SaveKB(kb, outPath); err != nil {
		return err
	}
	fmt.Printf("wrote repaired KB to %s\n", outPath)
	return nil
}

// terminalUser prints each question and reads the chosen fix number from
// standard input.
type terminalUser struct {
	in *bufio.Reader
}

func (u terminalUser) Choose(kb *core.KB, q inquiry.Question) (core.Fix, error) {
	fmt.Println()
	if q.Conflict != nil {
		fmt.Printf("conflict on %s:\n", q.Conflict.CDD)
		for _, f := range q.Conflict.BaseFacts {
			fmt.Printf("  %s\n", kb.Facts.FactRef(f))
		}
	}
	fmt.Print(q.Describe(kb))
	for {
		fmt.Printf("choose a fix [1-%d]: ", len(q.Fixes))
		line, err := u.in.ReadString('\n')
		if err != nil {
			return core.Fix{}, fmt.Errorf("reading answer: %w", err)
		}
		n, err := strconv.Atoi(strings.TrimSpace(line))
		if err != nil || n < 1 || n > len(q.Fixes) {
			fmt.Println("invalid choice")
			continue
		}
		return q.Fixes[n-1], nil
	}
}
