package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kbrepair"
	"kbrepair/internal/core"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/logic"
	"kbrepair/internal/obs/flight"
)

const inconsistentKB = `
prescribed(Aspirin, John).
hasAllergy(John, Aspirin).
hasAllergy(Mike, Penicillin).
[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
`

func writeKB(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.kb")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAuto(t *testing.T) {
	in := writeKB(t, inconsistentKB)
	out := filepath.Join(t.TempDir(), "fixed.kb")
	if err := run(in, "opti-mcd", true, "", 3, out, false, 0, "", "", flight.Config{}); err != nil {
		t.Fatal(err)
	}
	fixed, err := kbrepair.LoadKB(out)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := fixed.IsConsistent(); !ok {
		t.Error("saved repair not consistent")
	}
}

func TestRunBasicMode(t *testing.T) {
	in := writeKB(t, inconsistentKB)
	if err := run(in, "random", true, "", 1, "", true, 0, "", "", flight.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAlreadyConsistent(t *testing.T) {
	in := writeKB(t, `p(a). [cdd] p(X), q(X) -> !.`)
	if err := run(in, "opti-mcd", true, "", 1, "", false, 0, "", "", flight.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithOracle(t *testing.T) {
	in := writeKB(t, inconsistentKB)
	// Oracle target: allergy belongs to Mike.
	oracle := writeKB(t, `
prescribed(Aspirin, John).
hasAllergy(Mike, Aspirin).
hasAllergy(Mike, Penicillin).
[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
`)
	out := filepath.Join(t.TempDir(), "fixed.kb")
	if err := run(in, "random", false, oracle, 1, out, true, 0, "", "", flight.Config{}); err != nil {
		t.Fatal(err)
	}
	fixed, err := kbrepair.LoadKB(out)
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Facts.Contains(kbrepair.NewAtom("hasAllergy", kbrepair.Const("Mike"), kbrepair.Const("Aspirin"))) {
		t.Errorf("oracle repair not applied:\n%s", fixed.Facts)
	}
}

func TestRunOracleSizeMismatch(t *testing.T) {
	in := writeKB(t, inconsistentKB)
	oracle := writeKB(t, `p(a).`)
	if err := run(in, "random", false, oracle, 1, "", true, 0, "", "", flight.Config{}); err == nil {
		t.Error("mismatched oracle accepted")
	}
}

func TestRunUnwritableOut(t *testing.T) {
	in := writeKB(t, inconsistentKB)
	out := filepath.Join(t.TempDir(), "no", "such", "dir", "fixed.kb")
	if err := run(in, "opti-mcd", true, "", 3, out, false, 0, "", "", flight.Config{}); err == nil {
		t.Error("unwritable -out path accepted")
	}
}

func TestRunUnwritableJournal(t *testing.T) {
	in := writeKB(t, inconsistentKB)
	journal := filepath.Join(t.TempDir(), "no", "such", "dir", "session.json")
	if err := run(in, "opti-mcd", true, "", 3, "", false, 0, journal, "", flight.Config{}); err == nil {
		t.Error("unwritable -journal path accepted")
	}
}

func TestRunUnknownStrategy(t *testing.T) {
	in := writeKB(t, inconsistentKB)
	if err := run(in, "nope", true, "", 1, "", false, 0, "", "", flight.Config{}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestTerminalUser(t *testing.T) {
	kb, err := kbrepair.ParseKB(inconsistentKB)
	if err != nil {
		t.Fatal(err)
	}
	fixes := core.FixSet{
		{Pos: core.Position{Fact: 0, Arg: 0}, Value: logic.N("n1")},
		{Pos: core.Position{Fact: 1, Arg: 0}, Value: logic.C("Mike")},
	}
	q := inquiry.Question{Fixes: fixes}
	// Invalid input, then a valid pick of option 2.
	u := terminalUser{in: bufio.NewReader(strings.NewReader("zzz\n9\n2\n"))}
	f, err := u.Choose(kb, q)
	if err != nil {
		t.Fatal(err)
	}
	if f != fixes[1] {
		t.Errorf("chose %v", f)
	}
	// EOF without a valid answer errors.
	u = terminalUser{in: bufio.NewReader(strings.NewReader(""))}
	if _, err := u.Choose(kb, q); err == nil {
		t.Error("EOF accepted")
	}
}

func TestRunJournalAndReplay(t *testing.T) {
	in := writeKB(t, inconsistentKB)
	dir := t.TempDir()
	journal := filepath.Join(dir, "session.json")
	out1 := filepath.Join(dir, "fixed1.kb")
	if err := run(in, "opti-join", true, "", 5, out1, false, 0, journal, "", flight.Config{}); err != nil {
		t.Fatal(err)
	}
	// Replay the session on the same input: same repair (up to nulls).
	out2 := filepath.Join(dir, "fixed2.kb")
	if err := run(in, "opti-join", false, "", 5, out2, false, 0, "", journal, flight.Config{}); err != nil {
		t.Fatal(err)
	}
	a, err := kbrepair.LoadKB(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kbrepair.LoadKB(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Facts.EqualUpToNullRenaming(b.Facts) {
		t.Errorf("replay produced a different repair:\n%s\nvs\n%s", a.Facts, b.Facts)
	}
	if err := run(in, "opti-join", false, "", 5, "", false, 0, "", filepath.Join(dir, "missing.json"), flight.Config{}); err == nil {
		t.Error("missing replay file accepted")
	}
}
