package main

import (
	"bufio"
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
)

func TestNormalizeDebugURL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"localhost:6060", "http://localhost:6060/debugz"},
		{"http://localhost:6060", "http://localhost:6060/debugz"},
		{"http://localhost:6060/", "http://localhost:6060/debugz"},
		{"http://localhost:6060/debugz", "http://localhost:6060/debugz"},
		{"http://localhost:6060/metrics", "http://localhost:6060/debugz"},
	}
	for _, tc := range cases {
		if got := normalizeDebugURL(tc.in); got != tc.want {
			t.Errorf("normalizeDebugURL(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestRunFollow polls a live debug mux twice: events recorded before the
// first poll print once, events recorded between polls print on the second,
// and anomalies carry the '!' marker.
func TestRunFollow(t *testing.T) {
	t.Cleanup(flight.Disable)
	flight.Enable(64)
	flight.Record(flight.KindChaseRoundStart, 1, 10, 0, 0)
	flight.RecordNote(flight.KindAnomaly, 42, 10, 0, "test_anomaly")

	srv := httptest.NewServer(obs.DebugMux())
	defer srv.Close()

	// Record one more event after the first poll completes; a second poll
	// must pick up exactly the new event. The race is benign: the recorder
	// is appended to between polls, just as in a live process.
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		flight.Record(flight.KindChaseRoundEnd, 1, 5, 0, 2)
		close(done)
	}()

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := runFollow(w, srv.URL, 50*time.Millisecond, 2); err != nil {
		t.Fatalf("runFollow: %v", err)
	}
	<-done
	out := buf.String()
	for _, want := range []string{
		"-- following",
		"chase.round_start",
		"! #",             // anomaly marker
		"test_anomaly",    // anomaly name in the payload
		"chase.round_end", // recorded between polls
	} {
		if !strings.Contains(out, want) {
			t.Errorf("follow output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "chase.round_start"); n != 1 {
		t.Errorf("event printed %d times, want once:\n%s", n, out)
	}
}

func TestRunFollowUnreachable(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	err := runFollow(w, "127.0.0.1:1", time.Millisecond, 1)
	if err == nil || !strings.Contains(err.Error(), "following") {
		t.Fatalf("expected a first-poll fetch error, got %v", err)
	}
}

// TestProfileReport runs the -profile report against a bundle captured with
// attribution on: the table must surface the interned body with its counts.
func TestProfileReport(t *testing.T) {
	t.Cleanup(flight.Disable)
	flight.Enable(16)
	prev := attr.Enabled()
	attr.SetEnabled(true)
	t.Cleanup(func() {
		attr.SetEnabled(prev)
		attr.Reset()
	})
	id := attr.Intern("emp(X, D), dept(D)")
	attr.NewCounterVec(attr.FamSearches).Add(id, 4)
	attr.NewCounterVec(attr.FamNodes).Add(id, 123)

	dir := filepath.Join(t.TempDir(), "bundle")
	if err := flight.Capture("profile-test").WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, dir, false, 0, false, false, true, 10); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"== Profile ==", "emp(X, D), dept(D)", "123"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}

// TestProfileReportNoAttr: a bundle without an attribution snapshot says so
// instead of printing an empty table.
func TestProfileReportNoAttr(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, filepath.Join("testdata", "fixture-bundle"), false, 0, false, false, true, 10); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "no attribution snapshot") {
		t.Errorf("missing no-attr notice:\n%s", buf.String())
	}
}
