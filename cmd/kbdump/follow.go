package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"kbrepair/internal/obs/flight"
)

// normalizeDebugURL turns what the user passed — host:port, http://host:port,
// or a full URL — into the /debugz endpoint to poll. A path other than
// /debugz (say the user pasted the /metrics address) is replaced.
func normalizeDebugURL(target string) string {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	if i := strings.Index(strings.TrimPrefix(target, "http://"), "/"); i >= 0 {
		target = target[:len("http://")+i]
	}
	return strings.TrimRight(target, "/") + "/debugz"
}

// runFollow tails the flight recorder of a live process over its /debugz
// endpoint: poll, print the events whose sequence numbers are new since the
// last poll, repeat. Anomaly events are marked so a watchdog firing stands
// out of the stream. polls == 0 follows until the process goes away (a
// fetch error after the first successful poll ends the loop).
func runFollow(w *bufio.Writer, target string, interval time.Duration, polls int) error {
	url := normalizeDebugURL(target)
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := &http.Client{Timeout: interval + 10*time.Second}
	var lastSeq uint64
	for n := 0; ; n++ {
		if n > 0 {
			time.Sleep(interval)
		}
		b, err := fetchBundle(client, url)
		if err != nil {
			if n == 0 {
				return fmt.Errorf("following %s: %w", url, err)
			}
			fmt.Fprintf(w, "-- %s unreachable (%v), stopping\n", url, err)
			return w.Flush()
		}
		events, err := parseEvents(b)
		if err != nil {
			return fmt.Errorf("%s: %w", url, err)
		}
		if n == 0 {
			fmt.Fprintf(w, "-- following %s (cmd %s, pid %d), %d events so far, every %s\n",
				url, b.Cmd, b.Env.PID, b.EventsTotal, interval)
			if evicted := b.EventsTotal - uint64(len(events)); evicted > 0 {
				fmt.Fprintf(w, "-- %d earlier events already evicted by the ring\n", evicted)
			}
		}
		for _, e := range events {
			if e.Seq <= lastSeq {
				continue
			}
			lastSeq = e.Seq
			marker := " "
			if e.Kind == "anomaly" {
				marker = "!"
			}
			fmt.Fprintf(w, "%s #%-6d t=%-12s %-24s %s\n", marker, e.Seq, fmtT(e.TUS), e.Kind, e.payload())
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if polls > 0 && n+1 >= polls {
			return nil
		}
	}
}

// fetchBundle grabs one /debugz capture. The reason query tags the bundle
// dump event the capture itself records, so a later post-mortem shows the
// follower's polls in the timeline.
func fetchBundle(client *http.Client, url string) (*flight.Bundle, error) {
	resp, err := client.Get(url + "?reason=follow")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var b flight.Bundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		return nil, fmt.Errorf("decoding bundle: %w", err)
	}
	return &b, nil
}
