// Command kbdump inspects post-mortem debug bundles written by the kbrepair
// CLIs (-debug-bundle, SIGQUIT/SIGUSR1, panic handler, /debugz). It accepts
// either bundle form — a section directory or a single /debugz JSON
// document — and pretty-prints the manifest, the flight-event timeline, the
// anomaly summary, the KB digest, the journal summary and the metrics
// snapshot.
//
// Usage:
//
//	kbdump bundle-dir/                  # full report
//	kbdump -timeline=false bundle-dir/  # skip the event timeline
//	kbdump -metrics debugz.json         # include the metrics snapshot
//	kbdump -diff old-bundle/ new-bundle/
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"kbrepair/internal/core"
	"kbrepair/internal/exp"
	"kbrepair/internal/homo"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
)

func main() {
	var (
		timeline    = flag.Bool("timeline", true, "print the flight-event timeline")
		tail        = flag.Int("tail", 0, "print only the last N timeline events (0 = all)")
		withMetrics = flag.Bool("metrics", false, "print the bundle's metrics snapshot")
		goroutines  = flag.Bool("goroutines", false, "print the goroutine stacks")
		profile     = flag.Bool("profile", false, "print the per-rule plan-quality profile from the bundle's attribution snapshot")
		top         = flag.Int("top", 10, "with -profile: rows to print (0 = all)")
		diff        = flag.Bool("diff", false, "compare two bundles (usage: kbdump -diff old new)")
		follow      = flag.Bool("follow", false, "poll a live /debugz endpoint, streaming new flight events (usage: kbdump -follow host:port)")
		interval    = flag.Duration("interval", 2*time.Second, "with -follow: polling interval")
		polls       = flag.Int("polls", 0, "with -follow: stop after N polls (0 = until the process goes away)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kbdump [flags] <bundle>\n       kbdump -diff <old-bundle> <new-bundle>\n       kbdump -follow <host:port | url>\n\nA bundle is a -debug-bundle directory or a /debugz JSON file.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)
	var runErr error
	switch {
	case *diff:
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		runErr = runDiff(out, flag.Arg(0), flag.Arg(1))
	case *follow:
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		runErr = runFollow(out, flag.Arg(0), *interval, *polls)
	case flag.NArg() == 1:
		runErr = run(out, flag.Arg(0), *timeline, *tail, *withMetrics, *goroutines, *profile, *top)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := out.Flush(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "kbdump:", runErr)
		os.Exit(1)
	}
}

// event is the parsed form of one flight-event JSONL line. Field names vary
// per kind, so everything beyond the fixed trio lands in Extra.
type event struct {
	Seq   uint64
	TUS   int64
	Kind  string
	Extra []kv // remaining fields, in a stable order
}

type kv struct {
	K string
	V any
}

func parseEvent(raw json.RawMessage) (event, error) {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return event{}, err
	}
	e := event{}
	if v, ok := m["seq"].(float64); ok {
		e.Seq = uint64(v)
	}
	if v, ok := m["t_us"].(float64); ok {
		e.TUS = int64(v)
	}
	e.Kind, _ = m["kind"].(string)
	delete(m, "seq")
	delete(m, "t_us")
	delete(m, "kind")
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.Extra = append(e.Extra, kv{K: k, V: m[k]})
	}
	return e, nil
}

func (e event) payload() string {
	parts := make([]string, 0, len(e.Extra))
	for _, f := range e.Extra {
		switch v := f.V.(type) {
		case float64:
			parts = append(parts, fmt.Sprintf("%s=%d", f.K, int64(v)))
		default:
			parts = append(parts, fmt.Sprintf("%s=%v", f.K, v))
		}
	}
	return strings.Join(parts, " ")
}

func parseEvents(b *flight.Bundle) ([]event, error) {
	out := make([]event, 0, len(b.Events))
	for i, raw := range b.Events {
		e, err := parseEvent(raw)
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		out = append(out, e)
	}
	return out, nil
}

func run(w io.Writer, path string, timeline bool, tail int, withMetrics, goroutines, profile bool, top int) error {
	b, err := flight.ReadBundle(path)
	if err != nil {
		return err
	}
	events, err := parseEvents(b)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	writeManifest(w, b)
	writeDigest(w, b)
	writeJournal(w, b)
	writeTrace(w, b)
	writeSched(w, b)
	writeRuntime(w, b)
	writeAnomalies(w, events)
	if profile {
		writeProfile(w, b, top)
	}
	if timeline {
		writeTimeline(w, events, tail)
	}
	if withMetrics {
		exp.WriteMetrics(w, b.Metrics)
	}
	if goroutines {
		fmt.Fprintln(w, "== Goroutines ==")
		fmt.Fprintln(w, strings.TrimRight(b.Goroutines, "\n"))
	}
	return nil
}

func writeManifest(w io.Writer, b *flight.Bundle) {
	fmt.Fprintln(w, "== Bundle ==")
	fmt.Fprintf(w, "  schema v%d, reason %q", b.SchemaVersion, b.Reason)
	if b.Cmd != "" {
		fmt.Fprintf(w, ", cmd %s", b.Cmd)
	}
	fmt.Fprintln(w)
	if len(b.Args) > 0 {
		fmt.Fprintf(w, "  args: %s\n", strings.Join(b.Args, " "))
	}
	fmt.Fprintf(w, "  env: %s %s/%s cpus=%d gomaxprocs=%d pid=%d",
		b.Env.GoVersion, b.Env.GOOS, b.Env.GOARCH, b.Env.NumCPU, b.Env.GOMAXPROCS, b.Env.PID)
	if b.Env.VCSRevision != "" {
		rev := b.Env.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(w, " rev=%s", rev)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  events: %d retained of %d recorded", b.EventsRetained, b.EventsTotal)
	if evicted := b.EventsTotal - uint64(b.EventsRetained); b.EventsTotal > 0 && evicted > 0 {
		fmt.Fprintf(w, " (%d evicted by the ring)", evicted)
	}
	fmt.Fprintln(w)
	if b.HeapProfile != "" || b.MutexProfile != "" || b.BlockProfile != "" {
		fmt.Fprintf(w, "  profiles: heap %dB, mutex %dB, block %dB\n",
			len(b.HeapProfile), len(b.MutexProfile), len(b.BlockProfile))
	}
	fmt.Fprintln(w)
}

// writeSched renders the bundle's worker-lane section: per-phase
// utilization aggregates from the sched recorder. Absent when lane
// recording was off at capture time.
func writeSched(w io.Writer, b *flight.Bundle) {
	if b.Sched == nil {
		return
	}
	s := b.Sched
	fmt.Fprintln(w, "== Scheduler lanes ==")
	fmt.Fprintf(w, "  %d fanouts, %d intervals retained of %d recorded",
		s.FanoutsTotal, s.IntervalsRetained, s.IntervalsTotal)
	if s.OpenFanouts != 0 || s.AbortedFanouts != 0 {
		fmt.Fprintf(w, "  UNBALANCED: %d open, %d aborted", s.OpenFanouts, s.AbortedFanouts)
	}
	fmt.Fprintln(w)
	for _, a := range s.Labels {
		util := 0.0
		if a.WorkerUS > 0 {
			util = float64(a.BusyUS) / float64(a.WorkerUS) * 100
			if util > 100 {
				util = 100
			}
		}
		fmt.Fprintf(w, "  %-18s %5.1f%% utilization  %6d tasks  %5d fanouts  workers<=%d\n",
			a.Label, util, a.Tasks, a.Fanouts, a.MaxWorkers)
	}
	fmt.Fprintln(w)
}

// writeRuntime renders the runtime/metrics reading taken at capture time.
func writeRuntime(w io.Writer, b *flight.Bundle) {
	if b.Runtime == nil {
		return
	}
	r := b.Runtime
	fmt.Fprintln(w, "== Runtime ==")
	fmt.Fprintf(w, "  goroutines=%d gomaxprocs=%d heap_live=%dMB heap_goal=%dMB gc_cycles=%d\n",
		r.Goroutines, r.GOMAXPROCS, r.HeapLiveBytes>>20, r.HeapGoalBytes>>20, r.GCCycles)
	fmt.Fprintf(w, "  gc pauses: %d samples, p50=%.3gms p99=%.3gms max=%.3gms\n",
		r.GCPauses.Count, r.GCPauses.P50*1e3, r.GCPauses.P99*1e3, r.GCPauses.Max*1e3)
	fmt.Fprintf(w, "  sched latency: %d samples, p50=%.3gms p99=%.3gms max=%.3gms\n",
		r.SchedLatencies.Count, r.SchedLatencies.P50*1e3, r.SchedLatencies.P99*1e3, r.SchedLatencies.Max*1e3)
	fmt.Fprintln(w)
}

func writeDigest(w io.Writer, b *flight.Bundle) {
	if len(b.KBDigest) == 0 {
		return
	}
	var d core.Digest
	if err := json.Unmarshal(b.KBDigest, &d); err != nil {
		fmt.Fprintf(w, "== KB digest == (unreadable: %v)\n\n", err)
		return
	}
	fmt.Fprintln(w, "== KB digest ==")
	fmt.Fprintf(w, "  facts=%d tgds=%d cdds=%d naive_conflicts=%d\n", d.Facts, d.TGDs, d.CDDs, d.NaiveConflicts)
	preds := make([]string, 0, len(d.Predicates))
	for p := range d.Predicates {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, p := range preds {
		fmt.Fprintf(w, "  %-24s %6d facts\n", p, d.Predicates[p])
	}
	fmt.Fprintln(w)
}

func writeJournal(w io.Writer, b *flight.Bundle) {
	if len(b.Journal) == 0 {
		return
	}
	j, err := inquiry.UnmarshalJournal(b.Journal)
	if err != nil {
		fmt.Fprintf(w, "== Journal == (unreadable: %v)\n\n", err)
		return
	}
	fmt.Fprintln(w, "== Journal ==")
	phase2 := 0
	for _, e := range j.Entries {
		if e.Phase == 2 {
			phase2++
		}
	}
	fmt.Fprintf(w, "  strategy=%s seed=%d answers=%d (phase2=%d)", j.Strategy, j.Seed, len(j.Entries), phase2)
	if j.Digest == nil {
		fmt.Fprint(w, " [no KB digest header]")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
}

// writeTrace renders the bundle's trace digest: the slowest recent
// questions with their latency decomposition, the post-mortem answer to
// "what was the dialogue waiting on?". Absent when the process ran without
// tracing.
func writeTrace(w io.Writer, b *flight.Bundle) {
	if b.Trace == nil {
		return
	}
	d := b.Trace
	fmt.Fprintln(w, "== Trace ==")
	fmt.Fprintf(w, "  spans: %d retained of %d records, questions=%d\n",
		d.SpansRetained, d.RecordsTotal, d.Questions)
	for _, q := range d.Slowest {
		fmt.Fprintf(w, "  question %d (phase %d) total=%s", q.Q, q.Phase, fmtT(q.TotalUS))
		if q.EngineDelayUS >= 0 {
			fmt.Fprintf(w, " delay=%s", fmtT(q.EngineDelayUS))
		}
		fmt.Fprintln(w)
		for _, c := range q.Components {
			fmt.Fprintf(w, "    %-24s %10s  x%d\n", c.Name, fmtT(c.DurUS), c.Count)
		}
		fmt.Fprintf(w, "    %-24s %10s\n", "(unattributed)", fmtT(q.UnattributedUS))
	}
	fmt.Fprintln(w)
}

func writeAnomalies(w io.Writer, events []event) {
	var lines []string
	for _, e := range events {
		if e.Kind != "anomaly" {
			continue
		}
		lines = append(lines, fmt.Sprintf("  t=%s %s", fmtT(e.TUS), e.payload()))
	}
	fmt.Fprintln(w, "== Anomalies ==")
	if len(lines) == 0 {
		fmt.Fprintln(w, "  none")
	}
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	fmt.Fprintln(w)
}

// writeProfile renders the per-rule plan-quality table from the bundle's
// attribution snapshot: the most expensive bodies first, so "which rule is
// slow?" is the first line. When the bundle carries a plans.json section,
// each row is joined to its compiled-plan annotation — the kernel mode and
// the compile-time join order the body actually ran with. The join uses the
// bundle, not the live registry: a bundle describes the process that wrote
// it, not this one.
func writeProfile(w io.Writer, b *flight.Bundle, top int) {
	fmt.Fprintln(w, "== Profile ==")
	if b.Attr == nil {
		fmt.Fprintln(w, "  no attribution snapshot in this bundle (the process ran without per-rule attribution)")
		fmt.Fprintln(w)
		return
	}
	all := attr.Rows(b.Attr)
	rows := all
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "  no homomorphism searches recorded")
		fmt.Fprintln(w)
		return
	}
	plans := bundlePlans(b)
	fmt.Fprintf(w, "  %-40s %-8s %9s %12s %10s %12s %9s %9s %6s  %s\n",
		"body", "mode", "searches", "nodes", "med.nodes", "probes", "matches", "seconds", "share", "order")
	for _, r := range rows {
		body := r.Body
		if len(body) > 40 {
			body = body[:37] + "..."
		}
		mode, order := "-", ""
		if pi, ok := plans[r.Body]; ok {
			mode, order = pi.Mode, pi.OrderString()
		}
		fmt.Fprintf(w, "  %-40s %-8s %9d %12d %10.0f %12d %9d %9.3f %5.1f%%  %s\n",
			body, mode, r.Searches, r.Nodes, r.MedianNodes, r.Probes, r.Matches, r.Seconds, r.TimeShare*100, order)
	}
	if len(all) > len(rows) {
		fmt.Fprintf(w, "  ... %d more bodies elided (-top)\n", len(all)-len(rows))
	}
	fmt.Fprintln(w)
}

// bundlePlans decodes the bundle's plans.json section into a body-keyed map.
// A missing or unreadable section yields an empty map: the profile degrades
// to unannotated rows instead of failing the whole report.
func bundlePlans(b *flight.Bundle) map[string]homo.PlanInfo {
	plans := map[string]homo.PlanInfo{}
	if len(b.Plans) == 0 {
		return plans
	}
	var infos []homo.PlanInfo
	if err := json.Unmarshal(b.Plans, &infos); err != nil {
		return plans
	}
	for _, pi := range infos {
		plans[pi.Body] = pi
	}
	return plans
}

func writeTimeline(w io.Writer, events []event, tail int) {
	fmt.Fprintln(w, "== Timeline ==")
	start := 0
	if tail > 0 && len(events) > tail {
		start = len(events) - tail
		fmt.Fprintf(w, "  ... %d earlier events elided (-tail)\n", start)
	}
	for _, e := range events[start:] {
		fmt.Fprintf(w, "  #%-6d t=%-12s %-24s %s\n", e.Seq, fmtT(e.TUS), e.Kind, e.payload())
	}
	if len(events) == 0 {
		fmt.Fprintln(w, "  (no events — the recorder was disabled or nothing ran)")
	}
	fmt.Fprintln(w)
}

// fmtT renders microseconds-since-enable in a human unit.
func fmtT(us int64) string {
	switch {
	case us >= 10_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 10_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dus", us)
	}
}

// runDiff compares two bundles: manifest provenance, event-kind counts,
// anomaly counts, KB digests and the counter deltas — the "what changed
// between the run that worked and the run that didn't" view.
func runDiff(w io.Writer, oldPath, newPath string) error {
	ob, err := flight.ReadBundle(oldPath)
	if err != nil {
		return err
	}
	nb, err := flight.ReadBundle(newPath)
	if err != nil {
		return err
	}
	oldEvents, err := parseEvents(ob)
	if err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	newEvents, err := parseEvents(nb)
	if err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}

	fmt.Fprintf(w, "== Diff: %s -> %s ==\n", oldPath, newPath)
	if ob.Cmd != nb.Cmd {
		fmt.Fprintf(w, "  cmd: %s -> %s\n", ob.Cmd, nb.Cmd)
	}
	if ob.Env.GoVersion != nb.Env.GoVersion {
		fmt.Fprintf(w, "  go: %s -> %s\n", ob.Env.GoVersion, nb.Env.GoVersion)
	}
	if ob.Env.VCSRevision != nb.Env.VCSRevision {
		fmt.Fprintf(w, "  revision: %s -> %s\n", ob.Env.VCSRevision, nb.Env.VCSRevision)
	}
	fmt.Fprintf(w, "  events recorded: %d -> %d\n", ob.EventsTotal, nb.EventsTotal)
	fmt.Fprintln(w)

	diffDigests(w, ob, nb)

	fmt.Fprintln(w, "== Event kinds ==")
	writeCountDiff(w, kindCounts(oldEvents), kindCounts(newEvents), "")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "== Anomalies ==")
	writeCountDiff(w, anomalyCounts(oldEvents), anomalyCounts(newEvents), "none in either bundle")
	fmt.Fprintln(w)

	fmt.Fprintln(w, "== Counters ==")
	counters := func(s map[string]int64) map[string]int64 { return s }
	writeCountDiff(w, counters(ob.Metrics.Counters), counters(nb.Metrics.Counters), "")
	return nil
}

func diffDigests(w io.Writer, ob, nb *flight.Bundle) {
	if len(ob.KBDigest) == 0 && len(nb.KBDigest) == 0 {
		return
	}
	var od, nd core.Digest
	oOK := json.Unmarshal(ob.KBDigest, &od) == nil && len(ob.KBDigest) > 0
	nOK := json.Unmarshal(nb.KBDigest, &nd) == nil && len(nb.KBDigest) > 0
	fmt.Fprintln(w, "== KB digest ==")
	switch {
	case oOK && nOK:
		if d := od.Diff(nd); d != "" {
			fmt.Fprintf(w, "  %s\n", d)
		} else {
			fmt.Fprintln(w, "  identical")
		}
	case oOK:
		fmt.Fprintln(w, "  only the old bundle has a digest")
	case nOK:
		fmt.Fprintln(w, "  only the new bundle has a digest")
	}
	fmt.Fprintln(w)
}

func kindCounts(events []event) map[string]int64 {
	out := make(map[string]int64)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

func anomalyCounts(events []event) map[string]int64 {
	out := make(map[string]int64)
	for _, e := range events {
		if e.Kind != "anomaly" {
			continue
		}
		name := "unknown"
		for _, f := range e.Extra {
			if f.K == "anomaly" {
				name, _ = f.V.(string)
			}
		}
		out[name]++
	}
	return out
}

// writeCountDiff prints old -> new per key (union of both maps, sorted),
// marking changed rows, or empty when both sides are empty.
func writeCountDiff(w io.Writer, old, new map[string]int64, emptyNote string) {
	keys := make(map[string]bool, len(old)+len(new))
	for k := range old {
		keys[k] = true
	}
	for k := range new {
		keys[k] = true
	}
	if len(keys) == 0 {
		if emptyNote != "" {
			fmt.Fprintf(w, "  %s\n", emptyNote)
		}
		return
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		marker := " "
		if old[k] != new[k] {
			marker = "*"
		}
		fmt.Fprintf(w, "  %s %-36s %12d -> %-12d\n", marker, k, old[k], new[k])
	}
}
