package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kbrepair/internal/obs/flight"
	"kbrepair/internal/obs/sched"
)

// TestFixtureBundleGolden renders the committed fixture bundle and compares
// the report byte-for-byte against the golden file. The fixture is
// hand-authored (fixed timestamps, env stamp, seqs) so the output is fully
// deterministic. Regenerate with:
//
//	KBDUMP_UPDATE_GOLDEN=1 go test ./cmd/kbdump/
func TestFixtureBundleGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, filepath.Join("testdata", "fixture-bundle"), true, 0, true, false, false, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	golden := filepath.Join("testdata", "fixture.golden")
	if os.Getenv("KBDUMP_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		t.Logf("wrote %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report does not match golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestFixtureBundleTail exercises the -tail elision path on the same fixture.
func TestFixtureBundleTail(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, filepath.Join("testdata", "fixture-bundle"), true, 2, false, false, false, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"6 earlier events elided (-tail)",
		"inquiry.answer",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("tail output missing %q:\n%s", want, out)
		}
	}
	if bytes.Contains([]byte(out), []byte("chase.round_start")) {
		t.Errorf("tail output should have elided early chase events:\n%s", out)
	}
}

// TestFixtureBundleDiffSelf diffs the fixture against itself: provenance
// identical, every count row unchanged (no '*' markers).
func TestFixtureBundleDiffSelf(t *testing.T) {
	p := filepath.Join("testdata", "fixture-bundle")
	var buf bytes.Buffer
	if err := runDiff(&buf, p, p); err != nil {
		t.Fatalf("runDiff: %v", err)
	}
	out := buf.String()
	if !bytes.Contains([]byte(out), []byte("identical")) {
		t.Errorf("self-diff should report identical KB digests:\n%s", out)
	}
	if bytes.Contains([]byte(out), []byte("* ")) {
		t.Errorf("self-diff should have no changed rows:\n%s", out)
	}
}

// TestLiveBundleSchedSections captures a bundle with lane recording on and
// checks the report's scheduler-lane, runtime and profile-size sections.
func TestLiveBundleSchedSections(t *testing.T) {
	flight.Enable(32)
	defer flight.Disable()
	sched.Enable(0)
	defer sched.Disable()
	fo := sched.Begin("chase.spec", 3, 2)
	for i := 0; i < 3; i++ {
		t0 := fo.Start()
		fo.Task(i%2, i, t0)
	}
	fo.End()
	dir := filepath.Join(t.TempDir(), "bundle")
	if err := flight.Capture("kbdump-test").WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, dir, false, 0, false, false, false, 0); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"== Scheduler lanes ==",
		"chase.spec",
		"== Runtime ==",
		"goroutines=",
		"profiles: heap ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "UNBALANCED") {
		t.Errorf("balanced run reported as unbalanced:\n%s", out)
	}
}
