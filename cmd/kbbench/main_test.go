package main

import (
	"errors"
	"io"
	"testing"
)

func TestScaleInt(t *testing.T) {
	if scaleInt(1000, 0.5) != 500 {
		t.Error("scale half")
	}
	if scaleInt(1000, 0.001) != 10 {
		t.Error("scale floor")
	}
}

func TestPickReps(t *testing.T) {
	if pickReps(5, 0) != 5 || pickReps(5, 2) != 2 {
		t.Error("pickReps")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, "nope", 1, 1, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// failWriter simulates an unwritable output stream (e.g. a closed pipe or a
// full disk); run must surface the experiment's work regardless, and main
// surfaces the flush error.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestRunSurvivesFailingWriter(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// The experiment itself must not panic or deadlock when every write
	// fails; errors are reported by the buffered writer's Flush in main.
	if err := run(failWriter{}, "fig4a", 0.02, 1, 1); err != nil {
		t.Errorf("run with failing writer: %v", err)
	}
}

// TestRunTinyExperiments smoke-runs every experiment at minimal scale.
func TestRunTinyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, exp := range []string{"fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig5c", "usermodel"} {
		if err := run(io.Discard, exp, 0.02, 1, 1); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}
