package main

import "testing"

func TestScaleInt(t *testing.T) {
	if scaleInt(1000, 0.5) != 500 {
		t.Error("scale half")
	}
	if scaleInt(1000, 0.001) != 10 {
		t.Error("scale floor")
	}
}

func TestPickReps(t *testing.T) {
	if pickReps(5, 0) != 5 || pickReps(5, 2) != 2 {
		t.Error("pickReps")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 1, 1, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunTinyExperiments smoke-runs every experiment at minimal scale.
func TestRunTinyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, exp := range []string{"fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig5c", "usermodel"} {
		if err := run(exp, 0.02, 1, 1); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}
