package main

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kbrepair/internal/exp"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/par"
)

func TestScaleInt(t *testing.T) {
	if scaleInt(1000, 0.5) != 500 {
		t.Error("scale half")
	}
	if scaleInt(1000, 0.001) != 10 {
		t.Error("scale floor")
	}
}

func TestPickReps(t *testing.T) {
	if pickReps(5, 0) != 5 || pickReps(5, 2) != 2 {
		t.Error("pickReps")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(io.Discard, "nope", 1, 1, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// failWriter simulates an unwritable output stream (e.g. a closed pipe or a
// full disk); run must surface the experiment's work regardless, and main
// surfaces the flush error.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestRunSurvivesFailingWriter(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// The experiment itself must not panic or deadlock when every write
	// fails; errors are reported by the buffered writer's Flush in main.
	if err := run(failWriter{}, "fig4a", 0.02, 1, 1); err != nil {
		t.Errorf("run with failing writer: %v", err)
	}
}

// reportWithMean builds a BenchReport whose single latency histogram has
// the given mean in seconds.
func reportWithMean(mean float64) exp.BenchReport {
	return exp.NewBenchReport("test", obs.Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Histograms: map[string]obs.HistogramSnapshot{
			"chase.run_seconds": {
				Count:  50,
				Sum:    mean * 50,
				Min:    mean / 2,
				Max:    mean * 2,
				Bounds: []float64{mean * 10},
				Counts: []int64{50, 0},
			},
		},
	})
}

// TestBenchBaselineFlagsRegression is the acceptance check: a synthetic 2x
// latency regression against the baseline must produce an error (main
// turns it into a non-zero exit), while an identical run passes.
func TestBenchBaselineFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "BENCH.json")
	var out strings.Builder
	// First run: write the baseline; no comparison requested.
	if err := benchBaseline(&out, reportWithMean(0.010), baselinePath, "", 1.25, false); err != nil {
		t.Fatalf("writing baseline: %v", err)
	}

	// Identical run compared against it: passes.
	out.Reset()
	if err := benchBaseline(&out, reportWithMean(0.010), "", baselinePath, 1.25, false); err != nil {
		t.Fatalf("identical run regressed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("comparison section missing verdict:\n%s", out.String())
	}

	// 2x slower: non-zero exit (error) naming the regressed metric.
	out.Reset()
	err := benchBaseline(&out, reportWithMean(0.020), "", baselinePath, 1.25, false)
	if err == nil {
		t.Fatalf("2x regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED chase.run_seconds") {
		t.Errorf("regressed metric not listed:\n%s", out.String())
	}

	// Report-only mode: same regression, but exit zero.
	out.Reset()
	if err := benchBaseline(&out, reportWithMean(0.020), "", baselinePath, 1.25, true); err != nil {
		t.Fatalf("report-only mode still failed: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("report-only mode hid the regression:\n%s", out.String())
	}
}

// TestBenchBaselineMissingFile checks a bad baseline path is a clear error.
func TestBenchBaselineMissingFile(t *testing.T) {
	var out strings.Builder
	if err := benchBaseline(&out, reportWithMean(0.01), "", "/nonexistent/BENCH.json", 1.25, false); err == nil {
		t.Fatal("missing baseline accepted")
	}
}

// TestRunTinyExperiments smoke-runs every experiment at minimal scale.
func TestRunTinyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, exp := range []string{"fig3", "fig4a", "fig4b", "fig5a", "fig5b", "fig5c", "usermodel"} {
		if err := run(io.Discard, exp, 0.02, 1, 1); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
	}
}

// TestEfficiencyEndToEnd mirrors the -json -efficiency-check assembly in
// main: run a scaled-down experiment under a live lane recorder, build the
// efficiency section exactly the way the CLI does, and require it to pass
// its own validation — balanced lanes, consistent wall-time split.
func TestEfficiencyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	sched.Enable(0)
	defer sched.Disable()
	wallStart := time.Now()
	if err := run(io.Discard, "fig3", 0.02, 1, 1); err != nil {
		t.Fatal(err)
	}
	wallUS := time.Since(wallStart).Microseconds()
	snap := obs.Default().Snapshot()
	var queueWait float64
	if h, ok := snap.Histograms["par.queue_wait_seconds"]; ok {
		queueWait = h.Sum
	}
	eff := exp.BuildEfficiency(sched.Capture(), wallUS, queueWait, par.Workers())
	if eff == nil {
		t.Fatal("no efficiency report from an enabled recorder")
	}
	if err := eff.Validate(); err != nil {
		t.Fatalf("efficiency validation after a real benchmark run: %v\nreport: %+v", err, eff)
	}
	if len(eff.Phases) == 0 {
		t.Fatal("no phases recorded; fig3 should fan out through par")
	}
	var buf bytes.Buffer
	exp.WriteEfficiency(&buf, eff)
	if !strings.Contains(buf.String(), "Parallel efficiency") {
		t.Errorf("rendering missing header:\n%s", buf.String())
	}
}
