// Command kbbench regenerates every table and figure of the paper's
// experimental study (§6), printing the same rows/series the paper
// reports. By default it runs at the paper's scale; -scale shrinks every
// workload proportionally for quick smoke runs.
//
// Usage:
//
//	kbbench -exp all                 # every experiment, paper scale
//	kbbench -exp fig2                # Figure 2 (a)-(d), Durum Wheat v1+v2
//	kbbench -exp fig5c -scale 0.25   # quarter-scale Figure 5(c)
//	kbbench -exp fig3 -metrics m.json -trace t.jsonl   # with observability
//	kbbench -exp fig3 -scale 0.1 -json BENCH.json      # machine-readable baseline
//	kbbench -exp fig3 -scale 0.1 -baseline BENCH.json  # regression gate
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"kbrepair/internal/durum"
	"kbrepair/internal/exp"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/par"
)

func main() {
	defer flight.HandlePanic()
	var (
		which     = flag.String("exp", "all", "experiment: fig2 | fig3 | fig4a | fig4b | fig5a | fig5b | fig5c | usermodel | ablation | all")
		scale     = flag.Float64("scale", 1.0, "workload scale factor (sizes multiplied by this)")
		reps      = flag.Int("reps", 0, "override repetition count (0 = paper value)")
		seed      = flag.Int64("seed", 1, "base random seed")
		benchJSON = flag.String("json", "", "write a machine-readable benchmark report (BENCH.json) to this file")
		baseline  = flag.String("baseline", "", "compare this run against a prior -json report; exit non-zero on regression")
		threshold = flag.Float64("threshold", 1.25, "regression threshold for -baseline: fail when new mean > old mean x this")
		regressOK = flag.Bool("regress-ok", false, "with -baseline: report regressions but exit zero (CI report-only mode)")
		effCheck  = flag.Bool("efficiency-check", false, "with -json/-baseline: fail unless the efficiency section exists, its numbers are internally consistent and lane events balanced (the sched-smoke gate)")
		plnCheck  = flag.Bool("plans-check", false, "with -json/-baseline: fail unless every profiled body carries a compiled-plan annotation and none silently fell back to the adaptive kernel (the bench-plans-smoke gate)")
	)
	obsCfg := obs.AddFlags(flag.CommandLine)
	flightCfg := flight.AddFlags(flag.CommandLine)
	schedCfg := sched.AddFlags(flag.CommandLine)
	workersFlag := par.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := obs.ValidateFlags(flag.CommandLine, "workers"); err != nil {
		fmt.Fprintln(os.Stderr, "kbbench:", err)
		os.Exit(2)
	}
	par.Configure(workersFlag)
	flush, err := obs.SetupCLI(*obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbbench:", err)
		os.Exit(1)
	}
	finish := flight.Setup("kbbench", *flightCfg)
	schedFlush, err := sched.SetupCLI(*schedCfg, *obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbbench:", err)
		os.Exit(1)
	}
	benching := *benchJSON != "" || *baseline != ""
	var benchRing *obs.RingSink
	if benching {
		// The report's latency summaries need the opt-in timers on, and its
		// trace section a span stream of the benchmarked runs — a large ring
		// teed onto whatever sink -trace may have installed. The efficiency
		// section needs the lane recorder, which SetupCLI only arms when
		// -sched or -pprof was given.
		obs.SetEnabled(true)
		benchRing = obs.NewRingSink(1 << 17)
		obs.AddTraceSink(benchRing)
		if !sched.Enabled() {
			sched.Enable(0)
		}
	}
	// The report's profile section and the observability outputs both want
	// per-rule attribution; plain table runs skip its memory cost.
	attr.SetEnabled(benching || obsCfg.Enabled())

	out := bufio.NewWriter(os.Stdout)
	wallStart := time.Now()
	runErr := run(out, *which, *scale, *reps, *seed)
	wallUS := time.Since(wallStart).Microseconds()
	if runErr == nil && obsCfg.Enabled() {
		exp.WriteMetrics(out, obs.Default().Snapshot())
	}
	if runErr == nil && benching {
		label := fmt.Sprintf("exp=%s scale=%g reps=%d seed=%d workers=%d", *which, *scale, *reps, *seed, par.Workers())
		snap := obs.Default().Snapshot()
		rep := exp.NewBenchReport(label, snap)
		rep.Profile = exp.BuildProfile(attr.Capture(), snap)
		exp.WriteProfile(out, rep.Profile)
		rep.Trace = exp.BuildTraceSummary(benchRing.Records(), benchRing.Total())
		var queueWait float64
		if h, ok := snap.Histograms["par.queue_wait_seconds"]; ok {
			queueWait = h.Sum
		}
		rep.Efficiency = exp.BuildEfficiency(sched.Capture(), wallUS, queueWait, par.Workers())
		exp.WriteEfficiency(out, rep.Efficiency)
		if *effCheck {
			if err := rep.Efficiency.Validate(); err != nil {
				runErr = err
			}
		}
		if runErr == nil && *plnCheck {
			runErr = exp.CheckPlans(rep.Profile)
		}
		if runErr == nil {
			runErr = benchBaseline(out, rep, *benchJSON, *baseline, *threshold, *regressOK)
		}
	} else if *effCheck && runErr == nil {
		runErr = fmt.Errorf("-efficiency-check requires -json or -baseline")
	} else if *plnCheck && runErr == nil {
		runErr = fmt.Errorf("-plans-check requires -json or -baseline")
	}
	if err := out.Flush(); err != nil && runErr == nil {
		runErr = fmt.Errorf("writing output: %w", err)
	}
	if err := finish(); err != nil && runErr == nil {
		runErr = err
	}
	if err := schedFlush(); err != nil && runErr == nil {
		runErr = err
	}
	if err := flush(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "kbbench:", runErr)
		os.Exit(1)
	}
}

// benchBaseline writes the machine-readable report and, when a baseline is
// given, compares against it. A regression beyond the threshold is an
// error (non-zero exit) unless reportOnly is set.
func benchBaseline(w io.Writer, rep exp.BenchReport, jsonPath, baselinePath string, threshold float64, reportOnly bool) error {
	if jsonPath != "" {
		if err := exp.WriteBenchReportFile(rep, jsonPath); err != nil {
			return err
		}
	}
	if baselinePath == "" {
		return nil
	}
	old, err := exp.ReadBenchReportFile(baselinePath)
	if err != nil {
		return err
	}
	regs := exp.CompareBenchReports(old, rep, threshold)
	exp.WriteBenchComparison(w, old, regs, threshold)
	if len(regs) > 0 && !reportOnly {
		return fmt.Errorf("%d metric(s) regressed beyond %.2fx of %s", len(regs), threshold, baselinePath)
	}
	return nil
}

func scaleInt(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 10 {
		v = 10
	}
	return v
}

func pickReps(def, override int) int {
	if override > 0 {
		return override
	}
	return def
}

func run(out io.Writer, which string, scale float64, reps int, seed int64) error {
	runAll := which == "all"
	ran := false

	if runAll || which == "fig2" {
		ran = true
		for _, v := range []durum.Version{durum.V1, durum.V2} {
			res, err := exp.RunFig2(v, pickReps(10, reps), seed)
			if err != nil {
				return err
			}
			exp.WriteFig2(out, res)
		}
	}
	if runAll || which == "fig3" {
		ran = true
		p := exp.DefaultFig3()
		p.NumFacts = scaleInt(p.NumFacts, scale)
		p.Reps = pickReps(p.Reps, reps)
		p.Seed = seed
		rows, err := exp.RunFig3(p)
		if err != nil {
			return err
		}
		exp.WriteFig3(out, rows)
	}
	if runAll || which == "fig4a" {
		ran = true
		p := exp.DefaultFig4a()
		p.NumFacts = scaleInt(p.NumFacts, scale)
		p.Seed = seed + 4
		series, info, err := exp.RunFig4(p)
		if err != nil {
			return err
		}
		exp.WriteConvergence(out, fmt.Sprintf("%d atoms, 25%%, CDDs only", p.NumFacts), series, info)
	}
	if runAll || which == "fig4b" {
		ran = true
		p := exp.DefaultFig4b()
		p.NumFacts = scaleInt(p.NumFacts, scale)
		p.Seed = seed + 5
		series, info, err := exp.RunFig4(p)
		if err != nil {
			return err
		}
		exp.WriteConvergence(out, fmt.Sprintf("%d atoms, 25%%, 50 CDDs + 25 TGDs", p.NumFacts), series, info)
	}
	if runAll || which == "fig5a" {
		ran = true
		p := exp.DefaultFig5a()
		p.NumFacts = scaleInt(p.NumFacts, scale)
		p.Reps = pickReps(p.Reps, reps)
		p.Seed = seed + 6
		points, err := exp.RunFig5a(p)
		if err != nil {
			return err
		}
		exp.WriteDelays(out, "(a) delay vs. inconsistency ratio", points)
	}
	if runAll || which == "fig5b" {
		ran = true
		p := exp.DefaultFig5b()
		p.BaseFacts = scaleInt(p.BaseFacts, scale)
		p.Reps = pickReps(p.Reps, reps)
		p.Seed = seed + 7
		points, err := exp.RunFig5b(p)
		if err != nil {
			return err
		}
		exp.WriteDelays(out, "(b) delay vs. KB size", points)
	}
	if runAll || which == "fig5c" {
		ran = true
		p := exp.DefaultFig5c()
		p.NumFacts = scaleInt(p.NumFacts, scale)
		p.NumCDDs = scaleInt(p.NumCDDs, scale)
		p.TGDsPerStep = scaleInt(p.TGDsPerStep, scale)
		p.Reps = pickReps(p.Reps, reps)
		p.Seed = seed + 8
		points, err := exp.RunFig5c(p)
		if err != nil {
			return err
		}
		exp.WriteDelays(out, "(c) delay vs. dependency depth", points)
	}
	if runAll || which == "usermodel" {
		ran = true
		p := exp.DefaultUserModel()
		p.NumFacts = scaleInt(p.NumFacts, scale)
		p.Reps = pickReps(p.Reps, reps)
		p.Seed = seed + 11
		points, err := exp.RunUserModel(p)
		if err != nil {
			return err
		}
		exp.WriteUserModel(out, points)
	}
	if runAll || which == "ablation" {
		ran = true
		pi, err := exp.RunAblationPiRep(seed + 9)
		if err != nil {
			return err
		}
		exp.WriteAblation(out, pi)
		inc, err := exp.RunAblationIncremental(seed + 9)
		if err != nil {
			return err
		}
		exp.WriteAblation(out, inc)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
