GO ?= go

.PHONY: build test verify verify2 bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verify: the gate every change must pass.
verify: build test

# Tier-2 verify: static analysis plus race-enabled tests. Slower; run
# before merging anything that touches shared state or internal/obs.
verify2:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
