GO ?= go

# The benchmark workload behind make bench / bench-check: fixed experiment,
# scale and seed so successive runs are comparable.
BENCH_ARGS ?= -exp fig3 -scale 0.25 -reps 3 -seed 1
BENCH_THRESHOLD ?= 1.25

.PHONY: build test verify verify2 bench bench-check bench-check-report bench-go bench-smoke bench-workers bench-workers-smoke bench-plans-smoke bundle-smoke trace-smoke sched-smoke ci

build:
	$(GO) build ./...

# Failing test binaries leave post-mortem debug bundles here (one directory
# per test binary, via flight.DumpOnTestFailure); CI uploads the tree.
TEST_BUNDLE_DIR ?= test-failure-bundles

test:
	rm -rf $(TEST_BUNDLE_DIR)
	KBREPAIR_TEST_BUNDLE=$(abspath $(TEST_BUNDLE_DIR)) $(GO) test ./...

# Tier-1 verify: the gate every change must pass.
verify: build test

# Tier-2 verify: static analysis plus race-enabled tests. Slower; run
# before merging anything that touches shared state or internal/obs.
verify2:
	$(GO) vet ./...
	$(GO) test -race ./...

# bench writes the machine-readable perf baseline (environment stamp,
# metrics snapshot, five-number latency summaries) to BENCH.json.
bench:
	$(GO) run ./cmd/kbbench $(BENCH_ARGS) -json BENCH.json

BENCH.json:
	$(MAKE) bench

# bench-check re-runs the same workload and fails (non-zero exit) if any
# latency metric's mean — or any rule body's total backtrack-node count
# (the paper's tree-size cost model, from the report's profile section) —
# regressed beyond BENCH_THRESHOLD x the baseline.
bench-check: BENCH.json
	$(GO) run ./cmd/kbbench $(BENCH_ARGS) -json BENCH_new.json -baseline BENCH.json -threshold $(BENCH_THRESHOLD)

# bench-check-report is the CI-friendly report-only variant: prints the
# comparison but always exits zero (machines differ across runners).
bench-check-report: BENCH.json
	$(GO) run ./cmd/kbbench $(BENCH_ARGS) -json BENCH_new.json -baseline BENCH.json -threshold $(BENCH_THRESHOLD) -regress-ok

# bench-go runs the Go micro-benchmarks (allocation guards and hot-path
# timings) — complementary to the kbbench workload baseline.
bench-go:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs each homo/flight/attr benchmark exactly
# once — a fast CI check that the benchmark suite (the allocation guards
# included) still builds and executes, without timing anything.
bench-smoke:
	$(GO) test -bench 'Homo|Flight|Attr|Sched' -benchtime=1x ./internal/...

# bench-workers runs the same workload at -workers 1 and -workers 4 and
# compares the two reports: the parallel-speedup evidence for the README
# table (regenerates results/bench_workers{1,4}.json). Since the chase now
# fans out speculative firing as well as trigger collection, both chase and
# conflict metrics respond to -workers. The -baseline leg uses -regress-ok
# because the point is the printed comparison, not a gate.
bench-workers:
	$(GO) run ./cmd/kbbench $(BENCH_ARGS) -workers 1 -json results/bench_workers1.json
	$(GO) run ./cmd/kbbench $(BENCH_ARGS) -workers 4 -json results/bench_workers4.json \
		-baseline results/bench_workers1.json -threshold 1.0 -regress-ok

# bench-workers-smoke is the CI variant: a scaled-down workload at both
# worker counts, discarding the reports — it proves the multi-worker bench
# path (parallel collection + speculative firing + the report comparison)
# still runs end to end, without pretending a shared runner can time it.
bench-workers-smoke:
	$(GO) run ./cmd/kbbench -exp fig3 -scale 0.1 -reps 1 -seed 1 -workers 1 -json results/bench_workers_smoke1.json
	$(GO) run ./cmd/kbbench -exp fig3 -scale 0.1 -reps 1 -seed 1 -workers 4 -json results/bench_workers_smoke4.json \
		-baseline results/bench_workers_smoke1.json -threshold 1.0 -regress-ok
	rm -f results/bench_workers_smoke1.json results/bench_workers_smoke4.json

# bench-plans-smoke is the plan-quality gate: -plans-check makes kbbench
# fail when any profiled body ran without a compiled-plan annotation or
# silently fell back to the legacy adaptive kernel (adaptive is only legal
# when a caller forces it, e.g. the comparison benchmarks). The grep then
# asserts the mode annotations actually reached the report.
bench-plans-smoke:
	rm -rf smoke-plans && mkdir -p smoke-plans
	$(GO) run ./cmd/kbbench -exp fig3 -scale 0.1 -reps 1 -seed 1 \
		-json smoke-plans/bench.json -plans-check
	grep -q '"mode"' smoke-plans/bench.json

# bundle-smoke exercises the post-mortem pipeline end to end: generate a
# KB, repair it with an exit debug bundle and a recorded journal, then
# validate that the bundle parses and renders with kbdump (including the
# journal header and KB digest sections).
bundle-smoke:
	rm -rf smoke-bundle && mkdir -p smoke-bundle
	$(GO) run ./cmd/kbgen -facts 120 -ratio 0.2 -cdds 5 -seed 1 -quiet -out smoke-bundle/smoke.kb
	$(GO) run ./cmd/kbrepair -kb smoke-bundle/smoke.kb -auto -seed 1 \
		-journal smoke-bundle/journal.json -debug-bundle smoke-bundle/bundle
	$(GO) run ./cmd/kbdump -metrics smoke-bundle/bundle

# trace-smoke exercises the causal-tracing pipeline end to end: generate a
# KB, repair it with -trace, then require kbtrace to produce a non-empty
# waterfall (it exits non-zero when the trace has no question spans) and a
# self-validated Chrome trace_event export.
trace-smoke:
	rm -rf smoke-trace && mkdir -p smoke-trace
	$(GO) run ./cmd/kbgen -facts 120 -ratio 0.2 -cdds 5 -seed 1 -quiet -out smoke-trace/smoke.kb
	$(GO) run ./cmd/kbrepair -kb smoke-trace/smoke.kb -auto -seed 1 -trace smoke-trace/run.trace
	$(GO) run ./cmd/kbtrace -waterfall smoke-trace/run.trace
	$(GO) run ./cmd/kbtrace -critical-path -chrome smoke-trace/chrome.json smoke-trace/run.trace

# sched-smoke exercises the parallel-efficiency pipeline end to end at two
# worker counts: -efficiency-check makes kbbench fail unless the lane books
# balance (no open/aborted fan-outs), every utilization and fraction lands
# in [0,1] and parallel + serial time sums back to the measured wall time;
# the grep then asserts the efficiency section actually reached BENCH.json.
# A -sched snapshot from kbrepair is fed back through kbtrace to cover the
# snapshot-file path too.
sched-smoke:
	rm -rf smoke-sched && mkdir -p smoke-sched
	$(GO) run ./cmd/kbbench -exp fig3 -scale 0.1 -reps 1 -seed 1 -workers 1 \
		-json smoke-sched/bench1.json -efficiency-check
	$(GO) run ./cmd/kbbench -exp fig3 -scale 0.1 -reps 1 -seed 1 -workers 4 \
		-json smoke-sched/bench4.json -efficiency-check
	grep -q '"efficiency"' smoke-sched/bench1.json
	grep -q '"efficiency"' smoke-sched/bench4.json
	$(GO) run ./cmd/kbgen -facts 120 -ratio 0.2 -cdds 5 -seed 1 -quiet -out smoke-sched/smoke.kb
	$(GO) run ./cmd/kbrepair -kb smoke-sched/smoke.kb -auto -seed 1 -workers 4 \
		-trace smoke-sched/run.trace -sched smoke-sched/sched.json
	$(GO) run ./cmd/kbtrace -sched smoke-sched/sched.json -chrome smoke-sched/chrome.json smoke-sched/run.trace

# ci is the whole gate in one target, mirroring .github/workflows/ci.yml
# for environments without Actions.
ci: verify verify2 bench-smoke bench-check-report bench-plans-smoke bundle-smoke trace-smoke sched-smoke
