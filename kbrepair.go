// Package kbrepair is a user-guided, update-based repairing framework for
// knowledge bases equipped with tuple-generating dependencies (TGDs) and
// contradiction-detecting dependencies (CDDs), implementing Arioua &
// Bonifati, "User-guided Repairing of Inconsistent Knowledge Bases"
// (EDBT 2018).
//
// A knowledge base K = (F, ΣT, ΣC) is a set of facts with TGDs and CDDs.
// When K is inconsistent — some CDD body is entailed by the chase of F —
// the framework repairs it by updating values at *positions* (fact,
// argument) rather than deleting whole facts, driving the choice of
// positions and values through an interactive inquiry with a user:
//
//	kb, _ := kbrepair.ParseKB(src)
//	engine := kbrepair.NewEngine(kb, kbrepair.OptiMCD(), kbrepair.NewSimulatedUser(1), 1, kbrepair.EngineOptions{})
//	result, _ := engine.Run()       // kb is now consistent
//
// Questions are guaranteed sound (any answer keeps the KB repairable),
// the dialogue always terminates in a consistent KB, the delay between
// questions is polynomial, and with an oracle user the dialogue reproduces
// the oracle's repair exactly. Four questioning strategies trade question
// count against computation: random, opti-join, opti-prop and opti-mcd.
//
// The packages under internal/ hold the substrates: the indexed fact
// store, homomorphism search, the restricted chase for weakly-acyclic
// TGDs, conflict detection and maintenance, the repair core, the inquiry
// engine, synthetic and Durum-Wheat workload generators, and the
// experiment harness that regenerates every figure of the paper (see
// DESIGN.md and EXPERIMENTS.md).
package kbrepair

import (
	"fmt"
	"os"

	"kbrepair/internal/chase"
	"kbrepair/internal/conflict"
	"kbrepair/internal/core"
	"kbrepair/internal/cqa"
	"kbrepair/internal/deletion"
	"kbrepair/internal/durum"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/logic"
	"kbrepair/internal/parser"
	"kbrepair/internal/store"
	"kbrepair/internal/synth"
)

// Core vocabulary.
type (
	// Term is a constant, rule variable or labeled null.
	Term = logic.Term
	// Atom is a predicate applied to terms.
	Atom = logic.Atom
	// Subst is a substitution (variable bindings).
	Subst = logic.Subst
	// TGD is a tuple-generating dependency B → ∃z H.
	TGD = logic.TGD
	// CDD is a contradiction-detecting dependency B → ⊥.
	CDD = logic.CDD
	// Store is an indexed set of facts with stable fact identities.
	Store = store.Store
	// FactID identifies a fact within a Store.
	FactID = store.FactID
	// Position is one argument slot of one fact — the unit of repair.
	Position = store.Position
	// KB is a knowledge base (F, ΣT, ΣC).
	KB = core.KB
	// Fix is a position fix (position, new value).
	Fix = core.Fix
	// FixSet is a set of fixes.
	FixSet = core.FixSet
	// Pi is a set of immutable positions.
	Pi = core.Pi
	// Conflict is one CDD violation with its witnessing homomorphism.
	Conflict = conflict.Conflict
	// ChaseResult is a chase run with provenance.
	ChaseResult = chase.Result
	// ChaseOptions bound chase runs.
	ChaseOptions = chase.Options
	// Engine drives an inquiry dialogue.
	Engine = inquiry.Engine
	// EngineOptions tune an inquiry run.
	EngineOptions = inquiry.Options
	// InquiryResult summarizes a finished inquiry.
	InquiryResult = inquiry.Result
	// Question is a sound question (a set of fixes).
	Question = inquiry.Question
	// Strategy is a questioning strategy.
	Strategy = inquiry.Strategy
	// User answers questions.
	User = inquiry.User
	// Oracle is the user model that has a repair in mind.
	Oracle = inquiry.Oracle
	// SimulatedUser answers uniformly at random.
	SimulatedUser = inquiry.SimulatedUser
	// FuncUser adapts a function to the User interface.
	FuncUser = inquiry.FuncUser
	// SynthParams configure the synthetic KB generator.
	SynthParams = synth.Params
	// SynthInfo describes a generated KB's structure.
	SynthInfo = synth.Info
)

// Const returns the constant with the given name.
func Const(name string) Term { return logic.C(name) }

// Var returns the rule variable with the given name.
func Var(name string) Term { return logic.V(name) }

// NullTerm returns the labeled null with the given label.
func NullTerm(label string) Term { return logic.N(label) }

// NewAtom builds an atom.
func NewAtom(pred string, args ...Term) Atom { return logic.NewAtom(pred, args...) }

// NewTGD builds and validates a TGD.
func NewTGD(body, head []Atom) (*TGD, error) { return logic.NewTGD(body, head) }

// NewCDD builds and validates a CDD.
func NewCDD(body []Atom) (*CDD, error) { return logic.NewCDD(body) }

// NewStore returns an empty fact store.
func NewStore() *Store { return store.New() }

// StoreFromAtoms builds a store from ground atoms.
func StoreFromAtoms(atoms []Atom) (*Store, error) { return store.FromAtoms(atoms) }

// NewKB assembles and validates a knowledge base (rules well-formed,
// TGDs weakly acyclic, no degenerate CDDs).
func NewKB(facts *Store, tgds []*TGD, cdds []*CDD) (*KB, error) {
	return core.NewKB(facts, tgds, cdds)
}

// ParseKB parses the text format (see internal/parser) into a KB.
func ParseKB(src string) (*KB, error) {
	doc, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	st, err := doc.Store()
	if err != nil {
		return nil, err
	}
	return core.NewKB(st, doc.TGDs, doc.CDDs)
}

// LoadKB reads and parses a knowledge-base file.
func LoadKB(path string) (*KB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	kb, err := ParseKB(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return kb, nil
}

// FormatKB renders a KB in the text format; ParseKB recovers it.
func FormatKB(kb *KB) string {
	return parser.Serialize(&parser.Document{
		Facts: kb.Facts.Atoms(),
		TGDs:  kb.TGDs,
		CDDs:  kb.CDDs,
	})
}

// SaveKB writes a KB to a file in the text format.
func SaveKB(kb *KB, path string) error {
	return os.WriteFile(path, []byte(FormatKB(kb)), 0o644)
}

// Apply computes apply(F, P) on a copy of the store.
func Apply(s *Store, fs FixSet) (*Store, error) { return core.Apply(s, fs) }

// Diff reconstructs the fix set between a store and its update.
func Diff(f, fp *Store) (FixSet, error) { return core.Diff(f, fp) }

// IsCFix reports whether the fix set yields a consistent update.
func IsCFix(kb *KB, fs FixSet) (bool, error) { return core.IsCFix(kb, fs) }

// IsRFix reports whether the fix set is a repair fix (minimal c-fix).
func IsRFix(kb *KB, fs FixSet) (bool, error) { return core.IsRFix(kb, fs) }

// PiRepairable implements Algorithm 1: whether the KB can be repaired
// without touching the positions in pi.
func PiRepairable(kb *KB, pi Pi) (bool, error) { return core.PiRepairable(kb, pi) }

// NewPi builds a Π set from positions.
func NewPi(ps ...Position) Pi { return core.NewPi(ps...) }

// AllConflicts computes the conflicts of the (chased) KB.
func AllConflicts(kb *KB) ([]*Conflict, *ChaseResult, error) { return kb.AllConflicts() }

// NaiveConflicts computes the conflicts visible without chasing.
func NaiveConflicts(kb *KB) []*Conflict { return kb.NaiveConflicts() }

// NewEngine builds an inquiry engine over the KB (which it will mutate).
func NewEngine(kb *KB, strat Strategy, user User, seed int64, opts EngineOptions) *Engine {
	return inquiry.New(kb, strat, user, seed, opts)
}

// NewOracle builds the §4.1 oracle user for a target repair.
func NewOracle(target *Store, seed int64) *Oracle { return inquiry.NewOracle(target, seed) }

// NewSimulatedUser builds the random-choice user of the paper's
// experimental setup.
func NewSimulatedUser(seed int64) *SimulatedUser { return inquiry.NewSimulatedUser(seed) }

// RandomStrategy returns the baseline questioning strategy.
func RandomStrategy() Strategy { return inquiry.Random{} }

// OptiJoin returns the join-position strategy.
func OptiJoin() Strategy { return inquiry.OptiJoin{} }

// OptiProp returns the join-position strategy with propagation.
func OptiProp() Strategy { return inquiry.OptiProp{} }

// OptiMCD returns the maximally-contained-position strategy.
func OptiMCD() Strategy { return inquiry.OptiMCD{} }

// StrategyByName resolves a strategy by its paper name
// (random, opti-join, opti-prop, opti-mcd).
func StrategyByName(name string) (Strategy, error) { return inquiry.ByName(name) }

// GenerateSynthetic builds a synthetic KB per §6 of the paper.
func GenerateSynthetic(p SynthParams) (*KB, SynthInfo, error) {
	g, err := synth.Generate(p)
	if err != nil {
		return nil, SynthInfo{}, err
	}
	return g.KB, g.Info, nil
}

// BuildDurumWheat builds the Durum Wheat KB substitute (version 1 or 2).
func BuildDurumWheat(version int) (*KB, SynthInfo, error) {
	return durum.Build(durum.Version(version))
}

// DescribeKB computes the structural indicators the paper reports for a KB
// (conflicts, inconsistency ratio, overlap structure, chase size).
func DescribeKB(kb *KB) (SynthInfo, error) { return synth.Describe(kb) }

// IsWeaklyAcyclic checks chase termination for a TGD set.
func IsWeaklyAcyclic(tgds []*TGD) bool { return chase.IsWeaklyAcyclic(tgds).Acyclic }

// ---- Extensions beyond the paper's core (documented in DESIGN.md) ----

// User-model extensions (§7 future work: user classes and learning).
type (
	// NoisyOracle is an oracle that errs with a configurable probability.
	NoisyOracle = inquiry.NoisyOracle
	// CautiousUser prefers "unknown" (fresh nulls) with a configurable bias.
	CautiousUser = inquiry.CautiousUser
	// AdaptiveStrategy learns per-predicate error weights from the user's
	// choices and steers questions toward them.
	AdaptiveStrategy = inquiry.AdaptiveStrategy
)

// NewNoisyOracle wraps an oracle with an error rate in [0, 1].
func NewNoisyOracle(oracle *Oracle, errorRate float64, seed int64) *NoisyOracle {
	return inquiry.NewNoisyOracle(oracle, errorRate, seed)
}

// NewCautiousUser builds a user choosing fresh nulls with the given bias.
func NewCautiousUser(nullBias float64, seed int64) *CautiousUser {
	return inquiry.NewCautiousUser(nullBias, seed)
}

// NewAdaptiveStrategy builds the learning strategy.
func NewAdaptiveStrategy() *AdaptiveStrategy { return inquiry.NewAdaptiveStrategy() }

// Deletion-based repairing baseline (the §1 comparison).
type (
	// DeletionRepair is a repair obtained by removing whole facts.
	DeletionRepair = deletion.Repair
	// RepairComparison contrasts deletion- and update-based information loss.
	RepairComparison = deletion.Comparison
)

// GreedyDeletionRepair computes a deletion repair via the greedy
// hitting-set heuristic over the conflict hypergraph.
func GreedyDeletionRepair(kb *KB) (*DeletionRepair, error) { return deletion.GreedyRepair(kb) }

// MinimalDeletionRepairs enumerates all subset-minimal deletion repairs
// (exponential; refuses more than maxCandidates conflicting facts).
func MinimalDeletionRepairs(kb *KB, maxCandidates int) ([]*DeletionRepair, error) {
	return deletion.MinimalRepairs(kb, maxCandidates)
}

// CompareRepairs contrasts a greedy deletion repair with an update repair's
// fix set on the same KB.
func CompareRepairs(kb *KB, fixes FixSet) (*RepairComparison, error) {
	return deletion.Compare(kb, fixes)
}

// Session journaling: record an inquiry and replay it verbatim.
type (
	// Journal is a recorded inquiry session (JSON-serializable).
	Journal = inquiry.Journal
	// RecordingUser wraps a user and records every exchange.
	RecordingUser = inquiry.RecordingUser
	// ReplayUser answers questions from a recorded journal.
	ReplayUser = inquiry.ReplayUser
)

// NewRecordingUser wraps a user with a fresh journal.
func NewRecordingUser(u User, strategy string) *RecordingUser {
	return inquiry.NewRecordingUser(u, strategy)
}

// NewRecordingSession wraps a user with a fresh journal carrying the
// session header (strategy, seed, KB digest); replays of such journals
// verify the KB before applying any fix.
func NewRecordingSession(u User, strategy string, seed int64, kb *KB) *RecordingUser {
	return inquiry.NewRecordingSession(u, strategy, seed, kb)
}

// NewReplayUser replays a recorded journal.
func NewReplayUser(j *Journal) *ReplayUser { return inquiry.NewReplayUser(j) }

// SaveJournal writes a journal to a JSON file.
func SaveJournal(j *Journal, path string) error { return inquiry.SaveJournal(j, path) }

// LoadJournal reads a journal from a JSON file.
func LoadJournal(path string) (*Journal, error) { return inquiry.LoadJournal(path) }

// Query answering (the [28]-style consistent-answer semantics).
type (
	// Query is a conjunctive query with distinguished answer variables.
	Query = cqa.Query
	// AnswerTuple is one query answer.
	AnswerTuple = cqa.Tuple
	// QueryResult aggregates answers over sampled u-repairs.
	QueryResult = cqa.Result
)

// CertainAnswers computes Q(F, ΣT) over the KB's chase.
func CertainAnswers(kb *KB, q Query) ([]AnswerTuple, error) { return cqa.CertainAnswers(kb, q) }

// SampledConsistentAnswers approximates consistent (cautious) and possible
// (brave) answers by sampling u-repairs through simulated inquiries.
func SampledConsistentAnswers(kb *KB, q Query, samples int, seed int64) (*QueryResult, error) {
	return cqa.SampledAnswers(kb, q, samples, seed)
}
