// Benchmarks regenerating every table and figure of the paper's §6 (at
// reduced scale so `go test -bench=.` completes in minutes; cmd/kbbench
// runs the same experiments at paper scale). Domain metrics — average
// question counts, conflicts resolved per question, mean delay — are
// published through b.ReportMetric next to the usual ns/op.
package kbrepair

import (
	"fmt"
	"testing"

	"kbrepair/internal/chase"
	"kbrepair/internal/conflict"
	"kbrepair/internal/core"
	"kbrepair/internal/durum"
	"kbrepair/internal/exp"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/synth"
)

// reportStrategyMetrics publishes the per-strategy averages of a Figure
// 2/3-style run.
func reportStrategyMetrics(b *testing.B, rows []exp.StrategyAvg) {
	b.Helper()
	for _, r := range rows {
		b.ReportMetric(r.AvgQuestions, r.Strategy+"_questions")
		b.ReportMetric(r.AvgConflictsPerQuestion, r.Strategy+"_confl/q")
	}
}

// BenchmarkFig2Questions regenerates Figure 2 (a)+(c): average questions
// and conflicts-per-question for every strategy on Durum Wheat v1.
func BenchmarkFig2Questions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig2(durum.V1, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportStrategyMetrics(b, res.Rows)
		}
	}
}

// BenchmarkFig2Conflicts regenerates Figure 2 (b)+(d) on Durum Wheat v2.
func BenchmarkFig2Conflicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig2(durum.V2, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportStrategyMetrics(b, res.Rows)
		}
	}
}

// BenchmarkFig3 regenerates Figure 3 (a)+(b): synthetic CDD-only KBs with
// increasing inconsistency ratio (reduced to 300 atoms, 2 ratios, 2 reps).
func BenchmarkFig3(b *testing.B) {
	p := exp.Fig3Params{NumFacts: 300, Ratios: []float64{0.1, 0.2}, Reps: 2, Seed: 1}
	for i := 0; i < b.N; i++ {
		rows, err := exp.RunFig3(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportStrategyMetrics(b, rows[len(rows)-1].Rows)
		}
	}
}

// BenchmarkFig4a regenerates Figure 4(a): convergence on a CDD-only KB
// (reduced from 3004 to 600 atoms).
func BenchmarkFig4a(b *testing.B) {
	p := exp.Fig4Params{NumFacts: 600, Ratio: 0.25, NumCDDs: 12, Seed: 4}
	for i := 0; i < b.N; i++ {
		series, _, err := exp.RunFig4(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.ReportMetric(float64(len(s.Conflicts)-1), s.Strategy+"_questions")
			}
		}
	}
}

// BenchmarkFig4b regenerates Figure 4(b): convergence with CDDs and TGDs
// interleaving through the chase (reduced from 800 to 300 atoms).
func BenchmarkFig4b(b *testing.B) {
	p := exp.Fig4Params{NumFacts: 300, Ratio: 0.25, NumCDDs: 20, NumTGDs: 10, Seed: 5}
	for i := 0; i < b.N; i++ {
		series, _, err := exp.RunFig4(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.ReportMetric(float64(len(s.Conflicts)-1), s.Strategy+"_questions")
			}
		}
	}
}

// BenchmarkFig5a regenerates Figure 5(a): delay time vs. inconsistency
// ratio (reduced from 3000 to 500 atoms).
func BenchmarkFig5a(b *testing.B) {
	p := exp.Fig5aParams{NumFacts: 500, Ratios: []float64{0.2, 0.4, 0.6, 0.8}, Reps: 1, Seed: 6}
	for i := 0; i < b.N; i++ {
		points, err := exp.RunFig5a(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pt := range points {
				b.ReportMetric(pt.Summary.Mean*1000, "delay_ms_"+pt.Label)
			}
		}
	}
}

// BenchmarkFig5b regenerates Figure 5(b): delay time vs. KB size (reduced
// base size 400).
func BenchmarkFig5b(b *testing.B) {
	p := exp.Fig5bParams{BaseFacts: 400, Growths: []float64{0, 0.2, 0.4, 0.6}, Reps: 1, Seed: 7}
	for i := 0; i < b.N; i++ {
		points, err := exp.RunFig5b(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pt := range points {
				b.ReportMetric(pt.Summary.Mean*1000, "delay_ms_"+pt.Label)
			}
		}
	}
}

// BenchmarkFig5c regenerates Figure 5(c): delay time vs. dependency depth
// on a fully inconsistent KB (reduced from 400 to 150 atoms, 30 CDDs,
// 10·d TGDs).
func BenchmarkFig5c(b *testing.B) {
	p := exp.Fig5cParams{NumFacts: 150, NumCDDs: 30, Depths: []int{1, 2, 3, 4}, TGDsPerStep: 10, Reps: 1, Seed: 8}
	for i := 0; i < b.N; i++ {
		points, err := exp.RunFig5c(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pt := range points {
				b.ReportMetric(pt.Summary.Mean*1000, "delay_ms_"+pt.Label)
			}
		}
	}
}

// BenchmarkUserModel measures the §7-extension robustness study: dialogue
// length and residual distance vs. oracle error rate.
func BenchmarkUserModel(b *testing.B) {
	p := exp.UserModelParams{NumFacts: 120, Ratio: 0.2, ErrorRates: []float64{0, 0.5}, Reps: 2, Seed: 11}
	for i := 0; i < b.N; i++ {
		points, err := exp.RunUserModel(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, pt := range points {
				b.ReportMetric(pt.AvgResidualDiff, fmt.Sprintf("residual_e%.1f", pt.ErrorRate))
			}
		}
	}
}

// BenchmarkAblationPiRep compares the Π-RepOpt fast path against full
// Algorithm 1 checks (motivated by §5).
func BenchmarkAblationPiRep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunAblationPiRep(9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Speedup, "speedup_x")
		}
	}
}

// BenchmarkAblationUpdateConflicts compares incremental conflict
// maintenance against from-scratch recomputation (§5).
func BenchmarkAblationUpdateConflicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunAblationIncremental(9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Speedup, "speedup_x")
		}
	}
}

// ---- Micro-benchmarks on the substrates ----

func synthKB(b *testing.B, tgds int) *core.KB {
	b.Helper()
	g, err := synth.Generate(synth.Params{
		Seed: 3, NumFacts: 400, InconsistencyRatio: 0.2, NumCDDs: 15, NumTGDs: tgds, Depth: max(1, tgds/5),
	})
	if err != nil {
		b.Fatal(err)
	}
	return g.KB
}

// BenchmarkChase measures the restricted chase on the Durum Wheat KB
// (567 → ~1170 atoms, 269 TGDs).
func BenchmarkChase(b *testing.B) {
	kb, _, err := durum.Build(durum.V1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chase.Run(kb.Facts, kb.TGDs, kb.ChaseOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConsistencyOpt measures CheckConsistency-Opt on Durum Wheat.
func BenchmarkConsistencyOpt(b *testing.B) {
	kb, _, err := durum.Build(durum.V1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kb.IsConsistent(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConflictDetection measures allconflicts(K) on a synthetic KB
// with TGDs.
func BenchmarkConflictDetection(b *testing.B) {
	kb := synthKB(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := conflict.All(kb.Facts, kb.TGDs, kb.CDDs, kb.ChaseOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateConflicts measures the incremental tracker against one
// position update.
func BenchmarkUpdateConflicts(b *testing.B) {
	kb := synthKB(b, 0)
	tr := conflict.NewTracker(kb.Facts, kb.CDDs)
	pos := core.Position{Fact: 0, Arg: 0}
	vals := kb.Facts.ActiveDomain(kb.Facts.FactRef(0).Pred, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kb.Facts.MustSetValue(pos, vals[i%len(vals)])
		tr.Update(0)
	}
}

// BenchmarkPiRepairable measures one full Algorithm 1 check on Durum Wheat.
func BenchmarkPiRepairable(b *testing.B) {
	kb, _, err := durum.Build(durum.V1)
	if err != nil {
		b.Fatal(err)
	}
	pi := core.NewPi(core.Position{Fact: 0, Arg: 0})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PiRepairable(kb, pi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoundQuestion measures Algorithm 2 on a conflict of the Durum
// Wheat KB with all optimizations on.
func BenchmarkSoundQuestion(b *testing.B) {
	kb, _, err := durum.Build(durum.V1)
	if err != nil {
		b.Fatal(err)
	}
	cs := conflict.AllNaive(kb.Facts, kb.CDDs)
	if len(cs) == 0 {
		b.Fatal("no conflicts")
	}
	pc := core.NewPiChecker(kb)
	pi := core.NewPi()
	positions := cs[0].Positions(kb.Facts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := inquiry.SoundQuestion(kb, pc, pi, positions, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(q) == 0 {
			b.Fatal("empty question")
		}
	}
}
