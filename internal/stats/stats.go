// Package stats provides the summary statistics used by the experiment
// harness: means, quantiles and five-number boxplot summaries (the paper
// reports delay times as boxplots with means marked).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary is a five-number summary plus mean and outliers, matching the
// boxplots of Figure 5 (whiskers at 1.5×IQR).
type Summary struct {
	N            int
	Min, Max     float64
	Q1, Median   float64
	Q3           float64
	Mean, StdDev float64
	// WhiskerLo and WhiskerHi are the most extreme data points within
	// 1.5×IQR of the quartiles.
	WhiskerLo, WhiskerHi float64
	// Outliers are the points beyond the whiskers.
	Outliers []float64
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the data using linear
// interpolation between order statistics. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summarize computes the boxplot summary of the data.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Mean:   Mean(sorted),
		StdDev: StdDev(sorted),
	}
	iqr := s.Q3 - s.Q1
	loFence := s.Q1 - 1.5*iqr
	hiFence := s.Q3 + 1.5*iqr
	s.WhiskerLo, s.WhiskerHi = s.Max, s.Min
	for _, x := range sorted {
		if x >= loFence && x < s.WhiskerLo {
			s.WhiskerLo = x
		}
		if x <= hiFence && x > s.WhiskerHi {
			s.WhiskerHi = x
		}
		if x < loFence || x > hiFence {
			s.Outliers = append(s.Outliers, x)
		}
	}
	return s
}

// SummarizeDurations converts durations to seconds and summarizes them.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// String renders the summary on one line, in seconds-style precision
// appropriate for delay times.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f med=%.4f q1=%.4f q3=%.4f min=%.4f max=%.4f outliers=%d",
		s.N, s.Mean, s.Median, s.Q1, s.Q3, s.Min, s.Max, len(s.Outliers))
}
