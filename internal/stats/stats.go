// Package stats provides the summary statistics used by the experiment
// harness: means, quantiles and five-number boxplot summaries (the paper
// reports delay times as boxplots with means marked).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary is a five-number summary plus mean and outliers, matching the
// boxplots of Figure 5 (whiskers at 1.5×IQR).
// The JSON tags are the machine-readable benchmark report schema
// (exp.BenchReport); changing them is a schema break.
type Summary struct {
	N      int     `json:"n"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Q1     float64 `json:"q1"`
	Median float64 `json:"median"`
	Q3     float64 `json:"q3"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	// WhiskerLo and WhiskerHi are the most extreme data points within
	// 1.5×IQR of the quartiles.
	WhiskerLo float64 `json:"whisker_lo"`
	WhiskerHi float64 `json:"whisker_hi"`
	// Outliers are the points beyond the whiskers.
	Outliers []float64 `json:"outliers,omitempty"`
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the data using linear
// interpolation between order statistics. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summarize computes the boxplot summary of the data.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Mean:   Mean(sorted),
		StdDev: StdDev(sorted),
	}
	iqr := s.Q3 - s.Q1
	loFence := s.Q1 - 1.5*iqr
	hiFence := s.Q3 + 1.5*iqr
	s.WhiskerLo, s.WhiskerHi = s.Max, s.Min
	for _, x := range sorted {
		if x >= loFence && x < s.WhiskerLo {
			s.WhiskerLo = x
		}
		if x <= hiFence && x > s.WhiskerHi {
			s.WhiskerHi = x
		}
		if x < loFence || x > hiFence {
			s.Outliers = append(s.Outliers, x)
		}
	}
	return s
}

// FromHistogram reconstructs an approximate Summary from fixed-bucket
// histogram state (the bridge between internal/obs histograms and the
// paper's boxplot summaries). bounds are the upper bucket edges; counts has
// one extra overflow entry; sum, min and max are exact aggregates of the
// underlying samples.
//
// Accuracy contract: N, Min, Max are exact and Mean is exact up to float
// rounding. Quantiles are estimated by assuming samples are uniformly
// spread inside each bucket (the first and last occupied buckets are
// clipped to [min, max]), so each quantile is off from the raw-sample
// value by at most about one bucket width around it — the property test in
// stats_test.go pins this down. StdDev is not recoverable from buckets and
// is reported as 0; whiskers are derived from the estimated quartiles and
// outliers are not enumerated.
func FromHistogram(bounds []float64, counts []int64, sum, min, max float64) Summary {
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return Summary{}
	}
	s := Summary{
		N:    int(n),
		Min:  min,
		Max:  max,
		Mean: sum / float64(n),
	}
	q := func(p float64) float64 { return histQuantile(bounds, counts, n, min, max, p) }
	s.Q1, s.Median, s.Q3 = q(0.25), q(0.5), q(0.75)
	iqr := s.Q3 - s.Q1
	s.WhiskerLo = math.Max(min, s.Q1-1.5*iqr)
	s.WhiskerHi = math.Min(max, s.Q3+1.5*iqr)
	return s
}

// histQuantile estimates the p-quantile with the same convention as
// Quantile: linear interpolation between the order statistics flanking
// rank p·(n−1), each estimated from its bucket by histRank. Since every
// per-rank estimate stays inside the (clipped) bucket that truly contains
// that order statistic, the quantile is off by at most the width of the
// wider of the two buckets involved.
func histQuantile(bounds []float64, counts []int64, n int64, min, max, p float64) float64 {
	pos := p * float64(n-1)
	lo := int64(math.Floor(pos))
	hi := int64(math.Ceil(pos))
	vlo := histRank(bounds, counts, min, max, lo)
	if hi == lo {
		return vlo
	}
	vhi := histRank(bounds, counts, min, max, hi)
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac
}

// histRank estimates the value of the zero-based r-th order statistic: the
// bucket holding rank r is located by cumulative count, and the c samples
// inside it are assumed evenly spread over its value range (upper-edge
// bounds, clipped to the exact [min, max]).
func histRank(bounds []float64, counts []int64, min, max float64, r int64) float64 {
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if r < cum+c {
			blo := min
			if i > 0 && bounds[i-1] > blo {
				blo = bounds[i-1]
			}
			bhi := max
			if i < len(bounds) && bounds[i] < bhi {
				bhi = bounds[i]
			}
			if bhi <= blo {
				return clamp(blo, min, max)
			}
			frac := (float64(r-cum) + 0.5) / float64(c)
			return clamp(blo+frac*(bhi-blo), min, max)
		}
		cum += c
	}
	return max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SummarizeDurations converts durations to seconds and summarizes them.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// String renders the summary on one line, in seconds-style precision
// appropriate for delay times.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f med=%.4f q1=%.4f q3=%.4f min=%.4f max=%.4f outliers=%d",
		s.N, s.Mean, s.Median, s.Q1, s.Q3, s.Min, s.Max, len(s.Outliers))
}
