package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev single")
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7.0)) {
		t.Errorf("StdDev = %f", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if !almost(Quantile(xs, 0), 1) || !almost(Quantile(xs, 1), 4) {
		t.Error("extremes wrong")
	}
	if !almost(Quantile(xs, 0.5), 2.5) {
		t.Errorf("median = %f", Quantile(xs, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100})
	if s.N != 10 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if len(s.Outliers) != 1 || s.Outliers[0] != 100 {
		t.Errorf("outliers = %v", s.Outliers)
	}
	if s.WhiskerHi != 9 {
		t.Errorf("whisker hi = %f", s.WhiskerHi)
	}
	if s.WhiskerLo != 1 {
		t.Errorf("whisker lo = %f", s.WhiskerLo)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary N != 0")
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if !almost(s.Mean, 2.0) {
		t.Errorf("duration mean = %f", s.Mean)
	}
}

// Property: quartiles are ordered and bounded by min/max.
func TestSummaryInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n)%50+1)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		s := Summarize(xs)
		ordered := s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
		bounded := s.Mean >= s.Min && s.Mean <= s.Max
		whiskers := s.WhiskerLo >= s.Min && s.WhiskerHi <= s.Max && s.WhiskerLo <= s.WhiskerHi
		return ordered && bounded && whiskers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
