package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev single")
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7.0)) {
		t.Errorf("StdDev = %f", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if !almost(Quantile(xs, 0), 1) || !almost(Quantile(xs, 1), 4) {
		t.Error("extremes wrong")
	}
	if !almost(Quantile(xs, 0.5), 2.5) {
		t.Errorf("median = %f", Quantile(xs, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 3 {
		t.Error("Quantile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100})
	if s.N != 10 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if len(s.Outliers) != 1 || s.Outliers[0] != 100 {
		t.Errorf("outliers = %v", s.Outliers)
	}
	if s.WhiskerHi != 9 {
		t.Errorf("whisker hi = %f", s.WhiskerHi)
	}
	if s.WhiskerLo != 1 {
		t.Errorf("whisker lo = %f", s.WhiskerLo)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary N != 0")
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if !almost(s.Mean, 2.0) {
		t.Errorf("duration mean = %f", s.Mean)
	}
}

// Property: quartiles are ordered and bounded by min/max.
func TestSummaryInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n)%50+1)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		s := Summarize(xs)
		ordered := s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
		bounded := s.Mean >= s.Min && s.Mean <= s.Max
		whiskers := s.WhiskerLo >= s.Min && s.WhiskerHi <= s.Max && s.WhiskerLo <= s.WhiskerHi
		return ordered && bounded && whiskers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// histState buckets samples the way an obs histogram would.
func histState(bounds []float64, xs []float64) (counts []int64, sum, min, max float64) {
	counts = make([]int64, len(bounds)+1)
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		i := 0
		for i < len(bounds) && v > bounds[i] {
			i++
		}
		counts[i]++
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return counts, sum, min, max
}

// Property: FromHistogram reconciles with Summarize on the raw samples —
// count, min, max and mean exactly, each quartile to within one bucket
// width on either side of the raw value (the documented accuracy of the
// uniform-within-bucket interpolation).
func TestFromHistogramReconcilesWithSummarize(t *testing.T) {
	const width = 0.05
	var bounds []float64
	for b := width; b < 1.0-1e-9; b += width {
		bounds = append(bounds, b)
	}
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n)%400+1)
		for i := range xs {
			xs[i] = r.Float64()
		}
		counts, sum, min, max := histState(bounds, xs)
		got := FromHistogram(bounds, counts, sum, min, max)
		want := Summarize(xs)
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Logf("seed %d: N/min/max mismatch: got %+v want %+v", seed, got, want)
			return false
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9 {
			t.Logf("seed %d: mean %v vs %v", seed, got.Mean, want.Mean)
			return false
		}
		const tol = width + 1e-9
		for _, q := range [][2]float64{{got.Q1, want.Q1}, {got.Median, want.Median}, {got.Q3, want.Q3}} {
			if math.Abs(q[0]-q[1]) > tol {
				t.Logf("seed %d n=%d: quantile %v vs %v", seed, len(xs), q[0], q[1])
				return false
			}
		}
		ordered := got.Min <= got.Q1 && got.Q1 <= got.Median && got.Median <= got.Q3 && got.Q3 <= got.Max
		if !ordered {
			t.Logf("seed %d: quartiles out of order: %+v", seed, got)
		}
		return ordered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFromHistogramEmpty(t *testing.T) {
	if s := FromHistogram([]float64{1}, []int64{0, 0}, 0, 0, 0); s.N != 0 {
		t.Errorf("empty histogram summary: %+v", s)
	}
}

// A single sample lands every statistic on that sample.
func TestFromHistogramSingleSample(t *testing.T) {
	bounds := []float64{1, 2, 3}
	counts, sum, min, max := histState(bounds, []float64{2.5})
	s := FromHistogram(bounds, counts, sum, min, max)
	if s.N != 1 || s.Min != 2.5 || s.Max != 2.5 || s.Mean != 2.5 {
		t.Errorf("single-sample summary: %+v", s)
	}
	if s.Q1 != 2.5 || s.Median != 2.5 || s.Q3 != 2.5 {
		t.Errorf("single-sample quartiles: %+v", s)
	}
}
