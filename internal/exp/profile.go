package exp

import (
	"fmt"
	"io"

	"kbrepair/internal/homo"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
)

// ProfileTopK bounds the profile rows embedded in a BenchReport. Fifty
// bodies cover every rule of the paper's workloads several times over; a
// truncated profile says so via the Truncated field instead of silently.
const ProfileTopK = 50

// Profile is the plan-quality section of a BenchReport: per-body search
// cost attribution plus the plan-cache health figures. It is derived
// entirely from deterministic quantities when obs timing is off, so two
// runs of the same workload at any worker counts marshal byte-identically.
type Profile struct {
	// PlanCompiles / PlanCacheHits are the global plan-cache counters;
	// CacheHitRate is hits/(hits+compiles), 0 when neither moved.
	PlanCompiles  int64   `json:"plan_compiles"`
	PlanCacheHits int64   `json:"plan_cache_hits"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	// Bodies is the number of distinct bodies with at least one search,
	// before the top-K truncation; Truncated is how many rows were dropped.
	Bodies    int `json:"bodies"`
	Truncated int `json:"truncated,omitempty"`
	// Rows are the most expensive bodies, sorted by self-time then
	// backtrack nodes (see attr.Rows).
	Rows []attr.Row `json:"rows"`
}

// BuildProfile assembles the profile from an attribution snapshot and the
// global metrics snapshot. A nil attribution snapshot (attribution was
// disabled) yields a nil profile, so the BenchReport section is omitted
// rather than empty.
func BuildProfile(s *attr.Snapshot, m obs.Snapshot) *Profile {
	if s == nil {
		return nil
	}
	rows := attr.Rows(s)
	p := &Profile{
		PlanCompiles:  m.Counters["homo.plan_compiles"],
		PlanCacheHits: m.Counters["homo.plan_cache_hits"],
		Bodies:        len(rows),
	}
	if total := p.PlanCompiles + p.PlanCacheHits; total > 0 {
		p.CacheHitRate = float64(p.PlanCacheHits) / float64(total)
	}
	if len(rows) > ProfileTopK {
		p.Truncated = len(rows) - ProfileTopK
		rows = rows[:ProfileTopK]
	}
	// Join each row to its compiled-plan annotation: the kernel mode and the
	// compile-time order the body actually ran with. attr keys rows by the
	// body's canonical string — the same key homo records plans under.
	for i := range rows {
		if info, ok := homo.PlanInfoFor(rows[i].Body); ok {
			rows[i].Mode = info.Mode
			rows[i].Order = info.OrderString()
		}
	}
	p.Rows = rows
	return p
}

// WriteProfile renders the plan-quality section kbbench prints alongside
// its tables: plan-cache health, then the most expensive bodies with the
// kernel mode and compile-time join order each one ran with.
func WriteProfile(w io.Writer, p *Profile) {
	if p == nil {
		return
	}
	fmt.Fprintf(w, "== Plan quality (%d bodies, cache hit rate %.1f%%: %d compiles, %d hits) ==\n",
		p.Bodies, p.CacheHitRate*100, p.PlanCompiles, p.PlanCacheHits)
	fmt.Fprintf(w, "  %-40s %-8s %9s %12s %9s  %s\n",
		"body", "mode", "searches", "nodes", "matches", "order")
	for _, r := range p.Rows {
		body := r.Body
		if len(body) > 40 {
			body = body[:37] + "..."
		}
		mode := r.Mode
		if mode == "" {
			mode = "-"
		}
		fmt.Fprintf(w, "  %-40s %-8s %9d %12d %9d  %s\n",
			body, mode, r.Searches, r.Nodes, r.Matches, r.Order)
	}
	if p.Truncated > 0 {
		fmt.Fprintf(w, "  ... %d more bodies elided\n", p.Truncated)
	}
	fmt.Fprintln(w)
}

// CheckPlans is the gate behind kbbench -plans-check (make
// bench-plans-smoke): every profiled body must carry a compiled-plan
// annotation, and none may run the legacy adaptive kernel unless a caller
// forced it explicitly. It consults the live plan registry, so it only
// makes sense in the process that ran the searches.
func CheckPlans(p *Profile) error {
	if p == nil {
		return fmt.Errorf("plans: profile missing (attribution was off)")
	}
	for _, r := range p.Rows {
		if r.Mode == "" {
			return fmt.Errorf("plans: body %q ran without a compiled-plan annotation", r.Body)
		}
		info, ok := homo.PlanInfoFor(r.Body)
		if !ok {
			return fmt.Errorf("plans: body %q missing from the plan registry", r.Body)
		}
		if info.Mode == homo.ModeAdaptive.String() && !info.Forced {
			return fmt.Errorf("plans: body %q silently fell back to the adaptive kernel", r.Body)
		}
	}
	return nil
}
