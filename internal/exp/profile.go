package exp

import (
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
)

// ProfileTopK bounds the profile rows embedded in a BenchReport. Fifty
// bodies cover every rule of the paper's workloads several times over; a
// truncated profile says so via the Truncated field instead of silently.
const ProfileTopK = 50

// Profile is the plan-quality section of a BenchReport: per-body search
// cost attribution plus the plan-cache health figures. It is derived
// entirely from deterministic quantities when obs timing is off, so two
// runs of the same workload at any worker counts marshal byte-identically.
type Profile struct {
	// PlanCompiles / PlanCacheHits are the global plan-cache counters;
	// CacheHitRate is hits/(hits+compiles), 0 when neither moved.
	PlanCompiles  int64   `json:"plan_compiles"`
	PlanCacheHits int64   `json:"plan_cache_hits"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	// Bodies is the number of distinct bodies with at least one search,
	// before the top-K truncation; Truncated is how many rows were dropped.
	Bodies    int `json:"bodies"`
	Truncated int `json:"truncated,omitempty"`
	// Rows are the most expensive bodies, sorted by self-time then
	// backtrack nodes (see attr.Rows).
	Rows []attr.Row `json:"rows"`
}

// BuildProfile assembles the profile from an attribution snapshot and the
// global metrics snapshot. A nil attribution snapshot (attribution was
// disabled) yields a nil profile, so the BenchReport section is omitted
// rather than empty.
func BuildProfile(s *attr.Snapshot, m obs.Snapshot) *Profile {
	if s == nil {
		return nil
	}
	rows := attr.Rows(s)
	p := &Profile{
		PlanCompiles:  m.Counters["homo.plan_compiles"],
		PlanCacheHits: m.Counters["homo.plan_cache_hits"],
		Bodies:        len(rows),
	}
	if total := p.PlanCompiles + p.PlanCacheHits; total > 0 {
		p.CacheHitRate = float64(p.PlanCacheHits) / float64(total)
	}
	if len(rows) > ProfileTopK {
		p.Truncated = len(rows) - ProfileTopK
		rows = rows[:ProfileTopK]
	}
	p.Rows = rows
	return p
}
