package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"kbrepair/internal/obs"
	"kbrepair/internal/obs/traceview"
	"kbrepair/internal/stats"
)

// BenchSchemaVersion identifies the BENCH.json layout; bump on breaking
// changes so baseline comparisons can refuse incompatible files. Version 2
// added the plan-quality profile section and generalized the regression
// record beyond latency metrics. Version 3 annotates profile rows with the
// compiled join plan (kernel mode and compile-time order) and re-baselines
// the per-body node totals on the compile-time-ordered kernels — v2 node
// counts measured the adaptive engine's trees and are not comparable.
const BenchSchemaVersion = 3

// BenchEnv stamps the environment a benchmark ran in, so a baseline
// comparison can warn when the machines differ.
type BenchEnv struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Hostname  string `json:"hostname,omitempty"`
}

// CurrentBenchEnv captures the running process's environment.
func CurrentBenchEnv() BenchEnv {
	host, _ := os.Hostname()
	return BenchEnv{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Hostname:  host,
	}
}

// BenchReport is the machine-readable benchmark baseline: what kbbench
// -json writes and -baseline compares against. Summaries holds one
// five-number summary per latency histogram, estimated from the buckets
// (stats.FromHistogram's accuracy contract applies).
type BenchReport struct {
	SchemaVersion int                      `json:"schema_version"`
	CreatedUnix   int64                    `json:"created_unix"`
	Label         string                   `json:"label,omitempty"`
	Env           BenchEnv                 `json:"env"`
	Metrics       obs.Snapshot             `json:"metrics"`
	Summaries     map[string]stats.Summary `json:"summaries"`
	// Profile is the plan-quality section (schema v2): per-body search
	// costs from the attribution families, nil when attribution was off.
	Profile *Profile `json:"profile,omitempty"`
	// Trace is the question-latency decomposition of the benchmarked runs,
	// built from the span stream (additive section: absent in older files
	// and when no spans were collected).
	Trace *TraceSummary `json:"trace,omitempty"`
	// Efficiency is the parallel-efficiency report built from the sched
	// lane recorder: per-phase worker utilization, the serial fraction and
	// the Amdahl-implied speedup ceiling (additive section: absent in older
	// files and when lane recording was off).
	Efficiency *Efficiency `json:"efficiency,omitempty"`
}

// TraceComponent is one named slice of aggregate question latency: means
// and maxima are per question, Share is the component's fraction of all
// question time.
type TraceComponent struct {
	Name   string  `json:"name"`
	MeanUS int64   `json:"mean_us"`
	MaxUS  int64   `json:"max_us"`
	Share  float64 `json:"share"`
}

// TraceSummary aggregates the per-question waterfalls of a benchmark run:
// where question latency went, averaged over every question the span
// stream retained. Components are sorted by share descending (ties by
// name) and include the "(unattributed)" remainder, so shares sum to 1.
type TraceSummary struct {
	Questions     int              `json:"questions"`
	MeanTotalUS   int64            `json:"mean_total_us"`
	MaxTotalUS    int64            `json:"max_total_us"`
	Components    []TraceComponent `json:"components,omitempty"`
	SpansRetained int              `json:"spans_retained"`
	RecordsTotal  uint64           `json:"records_total"`
}

// unattributedComponent names the waterfall remainder in summaries.
const unattributedComponent = "(unattributed)"

// BuildTraceSummary digests a span record stream (typically a ring kbbench
// installed for the benchmarked runs) into the report's trace section. It
// returns nil when the stream holds no question spans.
func BuildTraceSummary(recs []obs.Record, total uint64) *TraceSummary {
	f := traceview.ParseRecords(recs)
	ws := f.Waterfalls()
	if len(ws) == 0 {
		return nil
	}
	s := &TraceSummary{
		Questions:     len(ws),
		SpansRetained: f.Spans(),
		RecordsTotal:  total,
	}
	type agg struct {
		sum, max int64
	}
	sums := make(map[string]*agg)
	var grand int64
	for _, w := range ws {
		s.MeanTotalUS += w.TotalUS
		if w.TotalUS > s.MaxTotalUS {
			s.MaxTotalUS = w.TotalUS
		}
		grand += w.TotalUS
		add := func(name string, dur int64) {
			a := sums[name]
			if a == nil {
				a = &agg{}
				sums[name] = a
			}
			a.sum += dur
			if dur > a.max {
				a.max = dur
			}
		}
		for _, c := range w.Components {
			add(c.Name, c.DurUS)
		}
		add(unattributedComponent, w.UnattributedUS)
	}
	s.MeanTotalUS /= int64(len(ws))
	for name, a := range sums {
		c := TraceComponent{Name: name, MeanUS: a.sum / int64(len(ws)), MaxUS: a.max}
		if grand > 0 {
			c.Share = float64(a.sum) / float64(grand)
		}
		s.Components = append(s.Components, c)
	}
	sort.Slice(s.Components, func(i, j int) bool {
		if s.Components[i].Share != s.Components[j].Share {
			return s.Components[i].Share > s.Components[j].Share
		}
		return s.Components[i].Name < s.Components[j].Name
	})
	return s
}

// NewBenchReport assembles a report from a metrics snapshot, stamping the
// current environment and time.
func NewBenchReport(label string, snap obs.Snapshot) BenchReport {
	r := BenchReport{
		SchemaVersion: BenchSchemaVersion,
		CreatedUnix:   time.Now().Unix(),
		Label:         label,
		Env:           CurrentBenchEnv(),
		Metrics:       snap,
		Summaries:     make(map[string]stats.Summary, len(snap.Histograms)),
	}
	for name, h := range snap.Histograms {
		r.Summaries[name] = h.Summary()
	}
	return r
}

// Write emits the report as indented JSON.
func (r BenchReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteBenchReportFile writes the report to path.
func WriteBenchReportFile(r BenchReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("bench report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	return nil
}

// ReadBenchReportFile loads a report written by WriteBenchReportFile and
// validates its schema version.
func ReadBenchReportFile(path string) (BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchReport{}, fmt.Errorf("bench baseline: %w", err)
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return BenchReport{}, fmt.Errorf("bench baseline %s: %w", path, err)
	}
	if r.SchemaVersion != BenchSchemaVersion {
		return BenchReport{}, fmt.Errorf("bench baseline %s: schema version %d, this binary reads %d",
			path, r.SchemaVersion, BenchSchemaVersion)
	}
	return r, nil
}

// benchNoiseFloorSeconds is the mean latency below which a histogram is
// ignored by the regression check: sub-microsecond means are dominated by
// timer granularity and scheduling noise, and a 2× swing there says
// nothing about the code.
const benchNoiseFloorSeconds = 1e-6

// treeNoiseFloorNodes is the per-body backtrack-node total below which the
// tree-size check is skipped: tiny bodies expand a handful of nodes, and a
// threshold-crossing swing there is one extra fact in a fixture, not a plan
// regression. Unlike latency, node counts are exact and deterministic, so
// the floor guards against triviality, not noise.
const treeNoiseFloorNodes = 1000

// Regression kinds: what quantity regressed.
const (
	// RegressionLatency is a latency-histogram mean regression (Old/New in
	// seconds).
	RegressionLatency = "latency"
	// RegressionTree is a per-body backtrack-node total regression (Old/New
	// in nodes) — the search tree grew, independent of machine speed.
	RegressionTree = "tree"
)

// Regression is one metric that got worse than the baseline allows. Kind
// says what Old/New measure: seconds for latency, nodes for tree.
type Regression struct {
	Metric string  `json:"metric"`
	Kind   string  `json:"kind"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Ratio  float64 `json:"ratio"`
}

func (r Regression) String() string {
	if r.Kind == RegressionTree {
		return fmt.Sprintf("%s: backtrack nodes %.0f -> %.0f (%.2fx)", r.Metric, r.Old, r.New, r.Ratio)
	}
	return fmt.Sprintf("%s: mean %.3gs -> %.3gs (%.2fx)", r.Metric, r.Old, r.New, r.Ratio)
}

// CompareBenchReports checks every latency histogram present in both
// reports — a metric regresses when its new mean exceeds the old mean by
// more than the threshold factor (e.g. 1.25 allows 25% slack) — and, when
// both reports carry a profile, every body's backtrack-node total: node
// counts are deterministic, so a threshold-crossing growth is a genuine
// plan-quality regression even on a machine with different speed. Metrics
// with no observations on either side, or under the noise floors, are
// skipped. Results are sorted worst-first.
func CompareBenchReports(old, new BenchReport, threshold float64) []Regression {
	var out []Regression
	for name, oh := range old.Metrics.Histograms {
		nh, ok := new.Metrics.Histograms[name]
		if !ok || oh.Count == 0 || nh.Count == 0 {
			continue
		}
		oldMean := oh.Sum / float64(oh.Count)
		newMean := nh.Sum / float64(nh.Count)
		if oldMean < benchNoiseFloorSeconds && newMean < benchNoiseFloorSeconds {
			continue
		}
		if oldMean <= 0 {
			continue
		}
		ratio := newMean / oldMean
		if ratio > threshold {
			out = append(out, Regression{Metric: name, Kind: RegressionLatency, Old: oldMean, New: newMean, Ratio: ratio})
		}
	}
	if old.Profile != nil && new.Profile != nil {
		oldNodes := make(map[string]int64, len(old.Profile.Rows))
		for _, r := range old.Profile.Rows {
			oldNodes[r.Body] = r.Nodes
		}
		for _, nr := range new.Profile.Rows {
			on, ok := oldNodes[nr.Body]
			if !ok || on < treeNoiseFloorNodes {
				continue
			}
			ratio := float64(nr.Nodes) / float64(on)
			if ratio > threshold {
				out = append(out, Regression{
					Metric: "tree:" + nr.Body,
					Kind:   RegressionTree,
					Old:    float64(on),
					New:    float64(nr.Nodes),
					Ratio:  ratio,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio > out[j].Ratio })
	return out
}

// WriteBenchComparison renders a human-readable comparison section: the
// regressions (if any) and a one-line verdict.
func WriteBenchComparison(w io.Writer, old BenchReport, regs []Regression, threshold float64) {
	fmt.Fprintf(w, "== Baseline comparison (threshold %.2fx, baseline %s) ==\n",
		threshold, time.Unix(old.CreatedUnix, 0).UTC().Format(time.RFC3339))
	if env := CurrentBenchEnv(); env.GoVersion != old.Env.GoVersion || env.NumCPU != old.Env.NumCPU ||
		env.GOOS != old.Env.GOOS || env.GOARCH != old.Env.GOARCH {
		fmt.Fprintf(w, "  note: environment differs from baseline (%s %s/%s %d cpus vs %s %s/%s %d cpus)\n",
			env.GoVersion, env.GOOS, env.GOARCH, env.NumCPU,
			old.Env.GoVersion, old.Env.GOOS, old.Env.GOARCH, old.Env.NumCPU)
	}
	if len(regs) == 0 {
		fmt.Fprintln(w, "  no regressions")
		return
	}
	for _, r := range regs {
		fmt.Fprintf(w, "  REGRESSED %s\n", r)
	}
}
