package exp

import (
	"fmt"
	"time"

	"kbrepair/internal/core"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/synth"
)

// AblationResult compares an optimization turned on vs. off on the same
// workload (motivated by the §5 optimizations; not a paper figure).
type AblationResult struct {
	Name          string
	OptimizedTime time.Duration
	DisabledTime  time.Duration
	// Speedup is DisabledTime / OptimizedTime.
	Speedup float64
	// FastHits/FullChecks report the Π-RepOpt split in the optimized run.
	FastHits, FullChecks int
}

func ablationKB(seed int64) (*core.KB, error) {
	g, err := synth.Generate(synth.Params{
		Seed:               seed,
		NumFacts:           300,
		InconsistencyRatio: 0.2,
		NumCDDs:            15,
		NumTGDs:            10,
		Depth:              2,
	})
	if err != nil {
		return nil, err
	}
	return g.KB, nil
}

func timeRun(kb *core.KB, seed int64, opts inquiry.Options) (time.Duration, *inquiry.Result, error) {
	start := time.Now()
	res, err := runOne(kb, inquiry.OptiJoin{}, seed, opts)
	if err != nil {
		return 0, nil, err
	}
	if !res.Consistent {
		return 0, nil, fmt.Errorf("ablation run ended inconsistent")
	}
	return time.Since(start), res, nil
}

// RunAblationPiRep measures the effect of the Π-RepOpt fast path.
func RunAblationPiRep(seed int64) (*AblationResult, error) {
	kb, err := ablationKB(seed)
	if err != nil {
		return nil, err
	}
	opt, res, err := timeRun(kb, seed, inquiry.Options{})
	if err != nil {
		return nil, err
	}
	dis, _, err := timeRun(kb, seed, inquiry.Options{DisablePiRepOpt: true})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:          "pi-rep-opt",
		OptimizedTime: opt,
		DisabledTime:  dis,
		Speedup:       float64(dis) / float64(opt),
		FastHits:      res.FastHits,
		FullChecks:    res.FullChecks,
	}, nil
}

// RunAblationIncremental measures the effect of incremental conflict
// maintenance (UpdateConflicts) vs. from-scratch recomputation.
func RunAblationIncremental(seed int64) (*AblationResult, error) {
	kb, err := ablationKB(seed)
	if err != nil {
		return nil, err
	}
	opt, res, err := timeRun(kb, seed, inquiry.Options{})
	if err != nil {
		return nil, err
	}
	dis, _, err := timeRun(kb, seed, inquiry.Options{DisableIncremental: true})
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		Name:          "update-conflicts",
		OptimizedTime: opt,
		DisabledTime:  dis,
		Speedup:       float64(dis) / float64(opt),
		FastHits:      res.FastHits,
		FullChecks:    res.FullChecks,
	}, nil
}
