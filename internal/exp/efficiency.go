package exp

import (
	"fmt"
	"io"
	"sort"

	"kbrepair/internal/obs/sched"
)

// PhaseEfficiency is one row of the efficiency report: every fan-out
// that ran under one sched label ("chase.spec", "conflict.scan", …),
// with Utilization = BusyUS / WorkerUS — the fraction of the phase's
// worker capacity that ran tasks. TopWallUS excludes nested fan-outs
// (a chase fanning out inside a Π-check worker), which overlap their
// parent's window and would double-count against total wall time.
type PhaseEfficiency struct {
	Label       string  `json:"label"`
	Fanouts     int64   `json:"fanouts"`
	Tasks       int64   `json:"tasks"`
	Workers     int     `json:"workers"`
	WallUS      int64   `json:"wall_us"`
	TopWallUS   int64   `json:"top_wall_us"`
	BusyUS      int64   `json:"busy_us"`
	WorkerUS    int64   `json:"worker_us"`
	Utilization float64 `json:"utilization"`
}

// Efficiency is the Amdahl decomposition of a benchmarked run, built
// from the sched lane recorder: how much of the wall time ran inside
// parallel fan-outs, how much was serial (the chase commit phase,
// question generation, everything between fan-outs), and the speedup
// ceiling the serial fraction implies. The invariant ParallelUS +
// SerialUS == WallUS holds by construction and is what Validate (and
// the property tests behind make sched-smoke) check.
type Efficiency struct {
	Workers          int               `json:"workers"`
	WallUS           int64             `json:"wall_us"`
	ParallelUS       int64             `json:"parallel_us"`
	SerialUS         int64             `json:"serial_us"`
	SerialFraction   float64           `json:"serial_fraction"`
	QueueWaitUS      int64             `json:"queue_wait_us"`
	QueueWaitShare   float64           `json:"queue_wait_share"`
	AmdahlMaxSpeedup float64           `json:"amdahl_max_speedup"`
	OpenFanouts      int64             `json:"open_fanouts"`
	AbortedFanouts   int64             `json:"aborted_fanouts"`
	Phases           []PhaseEfficiency `json:"phases"`
}

// BuildEfficiency assembles the report from a sched snapshot, the
// measured wall time of the benchmarked work, the par.queue_wait_seconds
// histogram sum and the configured worker count. Returns nil when lane
// recording was off (nil snapshot) — the additive-section contract.
//
// ParallelUS sums only top-level fan-out windows and is clamped to
// WallUS (clock granularity can push the sum a hair past the outer
// measurement), so SerialUS = WallUS − ParallelUS is never negative and
// the two always sum back to WallUS exactly. AmdahlMaxSpeedup is
// WallUS/SerialUS — the speedup ceiling if all fan-out time went to
// zero; 0 means no serial time was measured (no ceiling observed).
func BuildEfficiency(s *sched.Snapshot, wallUS int64, queueWaitSeconds float64, workers int) *Efficiency {
	if s == nil {
		return nil
	}
	e := &Efficiency{
		Workers:        workers,
		WallUS:         wallUS,
		QueueWaitUS:    int64(queueWaitSeconds * 1e6),
		OpenFanouts:    s.OpenFanouts,
		AbortedFanouts: s.AbortedFanouts,
		Phases:         make([]PhaseEfficiency, 0, len(s.Labels)),
	}
	var workerUSTotal int64
	for _, a := range s.Labels {
		p := PhaseEfficiency{
			Label:     a.Label,
			Fanouts:   a.Fanouts,
			Tasks:     a.Tasks,
			Workers:   a.MaxWorkers,
			WallUS:    a.WallUS,
			TopWallUS: a.TopWallUS,
			BusyUS:    a.BusyUS,
			WorkerUS:  a.WorkerUS,
		}
		if a.WorkerUS > 0 {
			p.Utilization = float64(a.BusyUS) / float64(a.WorkerUS)
			if p.Utilization > 1 {
				p.Utilization = 1 // clock-granularity slop, not spare capacity
			}
			if p.Utilization < 0 {
				p.Utilization = 0
			}
		}
		e.ParallelUS += a.TopWallUS
		workerUSTotal += a.WorkerUS
		e.Phases = append(e.Phases, p)
	}
	sort.Slice(e.Phases, func(i, j int) bool { return e.Phases[i].Label < e.Phases[j].Label })
	if e.ParallelUS > e.WallUS {
		e.ParallelUS = e.WallUS
	}
	if e.ParallelUS < 0 {
		e.ParallelUS = 0
	}
	e.SerialUS = e.WallUS - e.ParallelUS
	if e.WallUS > 0 {
		e.SerialFraction = float64(e.SerialUS) / float64(e.WallUS)
	}
	if e.SerialUS > 0 {
		e.AmdahlMaxSpeedup = float64(e.WallUS) / float64(e.SerialUS)
	}
	if workerUSTotal > 0 {
		e.QueueWaitShare = float64(e.QueueWaitUS) / float64(workerUSTotal)
		if e.QueueWaitShare > 1 {
			e.QueueWaitShare = 1
		}
		if e.QueueWaitShare < 0 {
			e.QueueWaitShare = 0
		}
	}
	return e
}

// Validate checks the report's internal consistency — the assertions
// behind kbbench -efficiency-check and make sched-smoke: utilizations
// and fractions in [0,1], the parallel/serial split summing back to the
// wall time, and the lane books balanced (no fan-out left open, none
// aborted by a panic).
func (e *Efficiency) Validate() error {
	if e == nil {
		return fmt.Errorf("efficiency: report missing")
	}
	if e.WallUS <= 0 {
		return fmt.Errorf("efficiency: non-positive wall time %dus", e.WallUS)
	}
	if e.OpenFanouts != 0 {
		return fmt.Errorf("efficiency: %d fan-out(s) still open — lane events unbalanced", e.OpenFanouts)
	}
	if e.AbortedFanouts != 0 {
		return fmt.Errorf("efficiency: %d fan-out(s) aborted — lane events unbalanced", e.AbortedFanouts)
	}
	if e.ParallelUS < 0 || e.SerialUS < 0 {
		return fmt.Errorf("efficiency: negative split parallel=%dus serial=%dus", e.ParallelUS, e.SerialUS)
	}
	if e.ParallelUS+e.SerialUS != e.WallUS {
		return fmt.Errorf("efficiency: parallel %dus + serial %dus != wall %dus",
			e.ParallelUS, e.SerialUS, e.WallUS)
	}
	if e.SerialFraction < 0 || e.SerialFraction > 1 {
		return fmt.Errorf("efficiency: serial fraction %g outside [0,1]", e.SerialFraction)
	}
	if e.QueueWaitShare < 0 || e.QueueWaitShare > 1 {
		return fmt.Errorf("efficiency: queue-wait share %g outside [0,1]", e.QueueWaitShare)
	}
	for _, p := range e.Phases {
		if p.Utilization < 0 || p.Utilization > 1 {
			return fmt.Errorf("efficiency: phase %s utilization %g outside [0,1]", p.Label, p.Utilization)
		}
		if p.TopWallUS > p.WallUS {
			return fmt.Errorf("efficiency: phase %s top wall %dus exceeds wall %dus", p.Label, p.TopWallUS, p.WallUS)
		}
	}
	return nil
}

// WriteEfficiency renders the report as the human-readable section
// kbbench prints alongside its tables (kbdump and kbtrace reuse it for
// bundles and -sched snapshots).
func WriteEfficiency(w io.Writer, e *Efficiency) {
	if e == nil {
		return
	}
	fmt.Fprintf(w, "== Parallel efficiency (workers=%d) ==\n", e.Workers)
	fmt.Fprintf(w, "  wall %.3fms = parallel %.3fms + serial %.3fms (serial fraction %.1f%%, Amdahl max speedup %.2fx)\n",
		float64(e.WallUS)/1e3, float64(e.ParallelUS)/1e3, float64(e.SerialUS)/1e3,
		e.SerialFraction*100, e.AmdahlMaxSpeedup)
	fmt.Fprintf(w, "  queue wait %.3fms (%.1f%% of worker capacity)\n",
		float64(e.QueueWaitUS)/1e3, e.QueueWaitShare*100)
	if e.OpenFanouts != 0 || e.AbortedFanouts != 0 {
		fmt.Fprintf(w, "  WARNING: unbalanced lanes — %d open, %d aborted fan-out(s)\n",
			e.OpenFanouts, e.AbortedFanouts)
	}
	for _, p := range e.Phases {
		fmt.Fprintf(w, "  %-18s %5.1f%% utilization  %6d tasks  %5d fanouts  busy %8.3fms / capacity %8.3fms\n",
			p.Label, p.Utilization*100, p.Tasks, p.Fanouts,
			float64(p.BusyUS)/1e3, float64(p.WorkerUS)/1e3)
	}
}
