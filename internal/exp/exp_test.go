package exp

import (
	"bytes"
	"strings"
	"testing"

	"kbrepair/internal/durum"
)

// Small-scale parameter sets keep the test suite fast; paper-scale runs
// live in cmd/kbbench and bench_test.go.

func smallFig3() Fig3Params {
	return Fig3Params{NumFacts: 80, Ratios: []float64{0.1, 0.2}, Reps: 2, Seed: 1}
}

func TestRunFig2Small(t *testing.T) {
	res, err := RunFig2(durum.V1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]StrategyAvg{}
	for _, r := range res.Rows {
		if r.AvgQuestions <= 0 {
			t.Errorf("%s: no questions", r.Strategy)
		}
		if r.AvgConflictsPerQuestion <= 0 {
			t.Errorf("%s: no conflicts per question", r.Strategy)
		}
		byName[r.Strategy] = r
	}
	// The paper's headline: opti-mcd needs the fewest questions on Durum
	// Wheat (overlapping conflicts). Allow slack but require it to beat
	// the random baseline.
	if byName["opti-mcd"].AvgQuestions >= byName["random"].AvgQuestions {
		t.Errorf("opti-mcd (%.1f) not better than random (%.1f)",
			byName["opti-mcd"].AvgQuestions, byName["random"].AvgQuestions)
	}
	var buf bytes.Buffer
	WriteFig2(&buf, res)
	if !strings.Contains(buf.String(), "opti-mcd") {
		t.Error("report missing strategy rows")
	}
}

func TestRunFig3Small(t *testing.T) {
	rows, err := RunFig3(smallFig3())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Questions grow with inconsistency in aggregate. (Per-strategy
	// monotonicity is a large-scale trend, not a guarantee: on tiny KBs a
	// higher ratio can increase conflict overlap enough that opti-mcd
	// resolves more per question.)
	sum := func(i int) float64 {
		total := 0.0
		for _, r := range rows[i].Rows {
			total += r.AvgQuestions
		}
		return total
	}
	if sum(1) < sum(0) {
		t.Errorf("aggregate questions decreased with inconsistency (%.1f -> %.1f)", sum(0), sum(1))
	}
	var buf bytes.Buffer
	WriteFig3(&buf, rows)
	if !strings.Contains(buf.String(), "inconsistency 10%") {
		t.Errorf("report missing ratio header:\n%s", buf.String())
	}
}

func TestRunFig4Small(t *testing.T) {
	series, info, err := RunFig4(Fig4Params{NumFacts: 60, Ratio: 0.2, NumCDDs: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Conflicts) < 2 {
			t.Fatalf("%s: series too short: %v", s.Strategy, s.Conflicts)
		}
		if s.Conflicts[0] != info.TotalConflicts {
			t.Errorf("%s: series starts at %d, want %d", s.Strategy, s.Conflicts[0], info.TotalConflicts)
		}
		if s.Conflicts[len(s.Conflicts)-1] != 0 {
			t.Errorf("%s: series does not reach 0: %v", s.Strategy, s.Conflicts)
		}
	}
	var buf bytes.Buffer
	WriteConvergence(&buf, "test", series, info)
	if buf.Len() == 0 {
		t.Error("empty convergence report")
	}
}

func TestRunFig4WithTGDs(t *testing.T) {
	series, info, err := RunFig4(Fig4Params{NumFacts: 70, Ratio: 0.25, NumCDDs: 8, NumTGDs: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if info.TotalConflicts <= info.NaiveConflicts {
		t.Skip("generated KB has no chase-only conflicts under this seed")
	}
	for _, s := range series {
		if s.Conflicts[len(s.Conflicts)-1] != 0 {
			t.Errorf("%s: did not converge", s.Strategy)
		}
	}
}

func TestRunFig5Small(t *testing.T) {
	a, err := RunFig5a(Fig5aParams{NumFacts: 60, Ratios: []float64{0.2, 0.4}, Reps: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || a[0].Summary.N == 0 {
		t.Fatalf("fig5a = %+v", a)
	}
	b, err := RunFig5b(Fig5bParams{BaseFacts: 50, Growths: []float64{0, 0.4}, Reps: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 {
		t.Fatalf("fig5b = %+v", b)
	}
	c, err := RunFig5c(Fig5cParams{NumFacts: 40, NumCDDs: 6, Depths: []int{1, 2}, TGDsPerStep: 3, Reps: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 2 {
		t.Fatalf("fig5c = %+v", c)
	}
	var buf bytes.Buffer
	WriteDelays(&buf, "a", a)
	WriteDelays(&buf, "b", b)
	WriteDelays(&buf, "c", c)
	if !strings.Contains(buf.String(), "mean(s)") {
		t.Error("delay report malformed")
	}
}

func TestAblations(t *testing.T) {
	pi, err := RunAblationPiRep(9)
	if err != nil {
		t.Fatal(err)
	}
	if pi.OptimizedTime <= 0 || pi.DisabledTime <= 0 {
		t.Errorf("ablation times: %+v", pi)
	}
	if pi.FastHits == 0 {
		t.Error("optimized run never used the fast path")
	}
	inc, err := RunAblationIncremental(9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteAblation(&buf, pi)
	WriteAblation(&buf, inc)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("ablation report malformed")
	}
}

func TestRunUserModel(t *testing.T) {
	points, err := RunUserModel(UserModelParams{
		NumFacts: 60, Ratio: 0.2, ErrorRates: []float64{0, 1}, Reps: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// A perfect oracle leaves no residual difference.
	if points[0].AvgResidualDiff != 0 {
		t.Errorf("zero-noise residual = %.1f", points[0].AvgResidualDiff)
	}
	if points[0].AvgMistakes != 0 {
		t.Errorf("zero-noise mistakes = %.1f", points[0].AvgMistakes)
	}
	// A fully random user drifts from the intended repair.
	if points[1].AvgResidualDiff <= points[0].AvgResidualDiff {
		t.Errorf("noise did not increase residual: %.1f vs %.1f",
			points[1].AvgResidualDiff, points[0].AvgResidualDiff)
	}
	var buf bytes.Buffer
	WriteUserModel(&buf, points)
	if !strings.Contains(buf.String(), "error rate") {
		t.Error("report malformed")
	}
}
