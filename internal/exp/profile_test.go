package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"kbrepair/internal/inquiry"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/par"
	"kbrepair/internal/synth"
)

// profileWorkload runs one small fixed workload — fresh KB and rules each
// call, so the plan cache compiles anew and the counters cover the whole
// run — and returns the resulting profile.
func profileWorkload(t *testing.T) *Profile {
	t.Helper()
	attr.Reset()
	obs.Default().Reset()
	g, err := synth.Generate(synth.Params{
		Seed: 7, NumFacts: 300, InconsistencyRatio: 0.10, NumCDDs: 10,
		JoinVarRatio: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStrategies(g.KB, 1, 7, inquiry.Options{}); err != nil {
		t.Fatal(err)
	}
	p := BuildProfile(attr.Capture(), obs.Default().Snapshot())
	if p == nil {
		t.Fatal("BuildProfile returned nil with attribution enabled")
	}
	return p
}

// TestProfileDeterministicAcrossWorkers is the profile's core guarantee:
// with attribution on and obs timing off, the marshaled profile section is
// byte-identical at -workers 1, 2 and 8. Node and probe counts are exact,
// interning is content-addressed, snapshots sort by key, and the plan
// cache compiles each key exactly once — nothing scheduling-dependent is
// left.
func TestProfileDeterministicAcrossWorkers(t *testing.T) {
	prevAttr := attr.Enabled()
	attr.SetEnabled(true)
	obs.SetEnabled(false) // timing off: Seconds/TimeShare must be exactly 0
	t.Cleanup(func() {
		attr.SetEnabled(prevAttr)
		par.SetWorkers(0)
		attr.Reset()
		obs.Default().Reset()
	})

	var baseline []byte
	for _, w := range []int{1, 2, 8} {
		par.SetWorkers(w)
		p := profileWorkload(t)
		if p.Bodies == 0 || len(p.Rows) == 0 {
			t.Fatalf("workers=%d: empty profile (bodies=%d)", w, p.Bodies)
		}
		for _, r := range p.Rows {
			if r.Seconds != 0 || r.TimeShare != 0 {
				t.Fatalf("workers=%d: timing leaked into profile row %q with obs timing off", w, r.Body)
			}
		}
		got, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if !bytes.Equal(baseline, got) {
			t.Fatalf("profile differs between -workers 1 and -workers %d:\n%s\nvs\n%s", w, baseline, got)
		}
	}
}

// TestBuildProfileNilSnapshot: attribution off means no profile section.
func TestBuildProfileNilSnapshot(t *testing.T) {
	if p := BuildProfile(nil, obs.Snapshot{}); p != nil {
		t.Fatal("nil snapshot must yield nil profile")
	}
}

// TestCompareBenchReportsTreeGate is the acceptance check for tree-size
// gating: perturb a baseline profile so one body's backtrack-node total is
// half the new run's (a synthetic 2× growth) and the comparison must flag
// it as a tree regression; bodies under the noise floor must not fire.
func TestCompareBenchReportsTreeGate(t *testing.T) {
	mk := func(nodes, tiny int64) BenchReport {
		r := NewBenchReport("gate", obs.Snapshot{})
		r.Profile = &Profile{
			Bodies: 2,
			Rows: []attr.Row{
				{Body: "p(X), q(X)", Searches: 10, Nodes: nodes},
				{Body: "tiny(X)", Searches: 1, Nodes: tiny},
			},
		}
		return r
	}
	old := mk(50_000, 10)
	new := mk(100_000, 400) // big body 2x, tiny body 40x but under the floor

	regs := CompareBenchReports(old, new, 1.25)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.Kind != RegressionTree || r.Metric != "tree:p(X), q(X)" {
		t.Fatalf("unexpected regression %+v", r)
	}
	if r.Ratio < 1.9 || r.Ratio > 2.1 {
		t.Fatalf("ratio = %v, want ~2", r.Ratio)
	}

	// Within threshold: no regression.
	if regs := CompareBenchReports(old, mk(55_000, 10), 1.25); len(regs) != 0 {
		t.Fatalf("within-threshold growth flagged: %v", regs)
	}
	// Baseline without a profile (e.g. older run re-written at v2): skip.
	noProf := mk(50_000, 10)
	noProf.Profile = nil
	if regs := CompareBenchReports(noProf, new, 1.25); len(regs) != 0 {
		t.Fatalf("profile-less baseline produced tree regressions: %v", regs)
	}
}
