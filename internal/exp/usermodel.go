package exp

import (
	"fmt"
	"io"

	"kbrepair/internal/core"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/store"
	"kbrepair/internal/synth"
)

// UserModelPoint is one row of the user-model robustness study (an
// extension of the paper motivated by its §7 future work): how the inquiry
// degrades as the answering user gets noisier.
type UserModelPoint struct {
	// ErrorRate is the oracle's probability of answering randomly.
	ErrorRate float64
	// AvgQuestions is the mean dialogue length.
	AvgQuestions float64
	// AvgResidualDiff is the mean number of positions where the final
	// (consistent) KB still differs from the oracle's intended repair.
	AvgResidualDiff float64
	// AvgMistakes is the mean number of noisy answers actually given.
	AvgMistakes float64
	Repetitions int
}

// UserModelParams scale the study.
type UserModelParams struct {
	NumFacts   int
	Ratio      float64
	ErrorRates []float64
	Reps       int
	Seed       int64
}

// DefaultUserModel returns the default study parameters.
func DefaultUserModel() UserModelParams {
	return UserModelParams{
		NumFacts:   300,
		Ratio:      0.2,
		ErrorRates: []float64{0, 0.1, 0.25, 0.5, 1.0},
		Reps:       5,
		Seed:       11,
	}
}

// RunUserModel measures dialogue length and distance-to-intended-repair as
// a function of the oracle's error rate. The intended repair is obtained
// by first running a clean simulated inquiry (its applied fixes form a
// valid target by construction); each noisy run then tries to reach it.
func RunUserModel(p UserModelParams) ([]UserModelPoint, error) {
	g, err := synth.Generate(synth.Params{
		Seed:               p.Seed,
		NumFacts:           p.NumFacts,
		InconsistencyRatio: p.Ratio,
		NumCDDs:            12,
	})
	if err != nil {
		return nil, err
	}
	// Build the oracle's intended repair from one clean inquiry, then
	// minimize its fix set: Prop. 4.8 expects the oracle's diff to be an
	// r-fix, and inquiry fix sets are sound but not necessarily minimal.
	targetKB := g.KB.Clone()
	te := inquiry.New(targetKB, inquiry.OptiJoin{}, inquiry.NewSimulatedUser(p.Seed), p.Seed, inquiry.Options{})
	teRes, err := te.Run()
	if err != nil {
		return nil, err
	}
	minimal, err := core.MinimizeCFix(g.KB.Clone(), teRes.AppliedFixes)
	if err != nil {
		return nil, err
	}
	targetStore, err := core.Apply(g.KB.Facts, minimal)
	if err != nil {
		return nil, err
	}
	target := targetStore

	var out []UserModelPoint
	for _, rate := range p.ErrorRates {
		var totalQ, totalDiff, totalMistakes int
		for r := 0; r < p.Reps; r++ {
			kb := g.KB.Clone()
			oracle := inquiry.NewOracle(target, p.Seed+int64(r))
			noisy := inquiry.NewNoisyOracle(oracle, rate, p.Seed+int64(r)*7)
			e := inquiry.New(kb, inquiry.Random{}, noisy, p.Seed+int64(r), inquiry.Options{})
			res, err := e.RunBasic()
			if err != nil {
				return nil, fmt.Errorf("rate %.2f rep %d: %w", rate, r, err)
			}
			if !res.Consistent {
				return nil, fmt.Errorf("rate %.2f rep %d: inconsistent outcome", rate, r)
			}
			totalQ += res.Questions
			totalDiff += residualDiff(kb, target)
			totalMistakes += noisy.Mistakes
		}
		out = append(out, UserModelPoint{
			ErrorRate:       rate,
			AvgQuestions:    float64(totalQ) / float64(p.Reps),
			AvgResidualDiff: float64(totalDiff) / float64(p.Reps),
			AvgMistakes:     float64(totalMistakes) / float64(p.Reps),
			Repetitions:     p.Reps,
		})
	}
	return out, nil
}

// residualDiff counts positions where the repaired KB differs from the
// target, treating null-for-null as agreement.
func residualDiff(kb *core.KB, target *store.Store) int {
	n := 0
	for _, id := range kb.Facts.IDs() {
		for i := 0; i < kb.Facts.Arity(id); i++ {
			pos := core.Position{Fact: id, Arg: i}
			cur, want := kb.Facts.Value(pos), target.Value(pos)
			if cur == want || (cur.IsNull() && want.IsNull()) {
				continue
			}
			n++
		}
	}
	return n
}

// WriteUserModel renders the study as a table.
func WriteUserModel(w io.Writer, points []UserModelPoint) {
	fmt.Fprintln(w, "== Extension — inquiry robustness vs. oracle error rate ==")
	fmt.Fprintf(w, "  %-10s %12s %14s %12s\n", "error rate", "avg questions", "avg resid. diff", "avg mistakes")
	for _, p := range points {
		fmt.Fprintf(w, "  %-10.2f %12.1f %14.1f %12.1f\n",
			p.ErrorRate, p.AvgQuestions, p.AvgResidualDiff, p.AvgMistakes)
	}
	fmt.Fprintln(w)
}
