package exp

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"kbrepair/internal/obs"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/par"
)

func TestBuildEfficiencyNilSnapshot(t *testing.T) {
	if e := BuildEfficiency(nil, 1000, 0, 4); e != nil {
		t.Fatalf("BuildEfficiency(nil snapshot) = %+v, want nil (additive-section contract)", e)
	}
}

// TestBuildEfficiencyProperties is the property test behind make
// sched-smoke: over randomized synthetic snapshots, the report must always
// satisfy ParallelUS + SerialUS == WallUS exactly, keep every fraction and
// utilization inside [0,1], and pass its own Validate.
func TestBuildEfficiencyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		wall := rng.Int63n(10_000_000) + 1
		nLabels := rng.Intn(6)
		s := &sched.Snapshot{Enabled: true}
		for l := 0; l < nLabels; l++ {
			workers := rng.Intn(8) + 1
			labelWall := rng.Int63n(wall + 1)
			top := rng.Int63n(labelWall + 1)
			workerUS := int64(workers) * labelWall
			busy := rng.Int63n(workerUS + 1)
			s.Labels = append(s.Labels, sched.LabelAgg{
				Label:      string(rune('a'+l)) + ".phase",
				Fanouts:    rng.Int63n(100) + 1,
				Tasks:      rng.Int63n(10_000),
				WallUS:     labelWall,
				TopWallUS:  top,
				BusyUS:     busy,
				WorkerUS:   workerUS,
				MaxWorkers: workers,
			})
		}
		queueWait := rng.Float64() * 10 // seconds, may exceed capacity — share must clamp
		e := BuildEfficiency(s, wall, queueWait, 4)
		if e == nil {
			t.Fatal("BuildEfficiency returned nil for a non-nil snapshot")
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("trial %d: Validate: %v\nreport: %+v", trial, err, e)
		}
		if e.ParallelUS+e.SerialUS != e.WallUS {
			t.Fatalf("trial %d: parallel %d + serial %d != wall %d", trial, e.ParallelUS, e.SerialUS, e.WallUS)
		}
		if e.SerialUS > 0 {
			want := float64(e.WallUS) / float64(e.SerialUS)
			if e.AmdahlMaxSpeedup != want {
				t.Fatalf("trial %d: Amdahl %g, want %g", trial, e.AmdahlMaxSpeedup, want)
			}
		} else if e.AmdahlMaxSpeedup != 0 {
			t.Fatalf("trial %d: Amdahl %g with zero serial time, want 0", trial, e.AmdahlMaxSpeedup)
		}
	}
}

func TestBuildEfficiencyClampsOvershoot(t *testing.T) {
	// Clock granularity can make the top-level window sum exceed the outer
	// wall measurement; the split must clamp rather than go negative.
	s := &sched.Snapshot{Enabled: true, Labels: []sched.LabelAgg{
		{Label: "a", WallUS: 900, TopWallUS: 900, BusyUS: 900, WorkerUS: 900, MaxWorkers: 1},
		{Label: "b", WallUS: 400, TopWallUS: 400, BusyUS: 400, WorkerUS: 400, MaxWorkers: 1},
	}}
	e := BuildEfficiency(s, 1000, 0, 1)
	if e.ParallelUS != 1000 || e.SerialUS != 0 {
		t.Fatalf("split = parallel %d serial %d, want 1000/0 (clamped)", e.ParallelUS, e.SerialUS)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencyValidateRejects(t *testing.T) {
	base := func() *Efficiency {
		return BuildEfficiency(&sched.Snapshot{Enabled: true, Labels: []sched.LabelAgg{
			{Label: "a", WallUS: 500, TopWallUS: 500, BusyUS: 500, WorkerUS: 500, MaxWorkers: 1},
		}}, 1000, 0, 1)
	}
	var nilE *Efficiency
	if err := nilE.Validate(); err == nil {
		t.Error("nil report validated")
	}
	e := base()
	e.OpenFanouts = 1
	if err := e.Validate(); err == nil || !strings.Contains(err.Error(), "open") {
		t.Errorf("open fan-out accepted: %v", err)
	}
	e = base()
	e.AbortedFanouts = 2
	if err := e.Validate(); err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Errorf("aborted fan-out accepted: %v", err)
	}
	e = base()
	e.WallUS = 0
	if err := e.Validate(); err == nil {
		t.Error("zero wall time accepted")
	}
	e = base()
	e.SerialUS++ // break the sum
	if err := e.Validate(); err == nil {
		t.Error("parallel+serial != wall accepted")
	}
	e = base()
	e.Phases[0].Utilization = 1.5
	if err := e.Validate(); err == nil {
		t.Error("utilization > 1 accepted")
	}
	e = base()
	e.Phases[0].TopWallUS = e.Phases[0].WallUS + 1
	if err := e.Validate(); err == nil {
		t.Error("phase top wall > wall accepted")
	}
}

// TestBuildEfficiencyFromRealRun drives real par fan-outs under a live
// recorder and checks the report a CLI would assemble: the snapshot's
// aggregates and the measured wall time stay mutually consistent.
func TestBuildEfficiencyFromRealRun(t *testing.T) {
	sched.Enable(0)
	defer sched.Disable()
	prev := par.SetWorkers(2)
	defer par.SetWorkers(prev)
	wallStart := time.Now()
	for round := 0; round < 3; round++ {
		par.MapNamed("test.chase", 8, func(i int) int {
			sink := 0
			for j := 0; j < 1000; j++ {
				sink += i * j
			}
			return sink
		})
		par.DoNamed("test.scan", 4, func(int) {})
	}
	wallUS := time.Since(wallStart).Microseconds()
	if wallUS <= 0 {
		wallUS = 1
	}
	e := BuildEfficiency(sched.Capture(), wallUS, 0.000123, par.Workers())
	if e == nil {
		t.Fatal("nil report from a live recorder")
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate on a real run: %v\nreport: %+v", err, e)
	}
	if len(e.Phases) != 2 {
		t.Fatalf("phases = %+v, want test.chase and test.scan", e.Phases)
	}
	if e.Phases[0].Label != "test.chase" || e.Phases[1].Label != "test.scan" {
		t.Fatalf("phase order = %q, %q", e.Phases[0].Label, e.Phases[1].Label)
	}
	if e.Phases[0].Tasks != 24 || e.Phases[1].Tasks != 12 {
		t.Fatalf("task counts = %d, %d, want 24, 12", e.Phases[0].Tasks, e.Phases[1].Tasks)
	}
	if e.QueueWaitUS != 123 {
		t.Fatalf("QueueWaitUS = %d, want 123", e.QueueWaitUS)
	}
}

func TestWriteEfficiencyRendering(t *testing.T) {
	var sb strings.Builder
	WriteEfficiency(&sb, nil) // nil report renders nothing
	if sb.Len() != 0 {
		t.Fatalf("nil report rendered %q", sb.String())
	}
	e := BuildEfficiency(&sched.Snapshot{Enabled: true, Labels: []sched.LabelAgg{
		{Label: "chase.spec", Fanouts: 3, Tasks: 30, WallUS: 600, TopWallUS: 600,
			BusyUS: 900, WorkerUS: 1200, MaxWorkers: 2},
	}}, 1000, 0.0001, 2)
	WriteEfficiency(&sb, e)
	out := sb.String()
	for _, want := range []string{
		"Parallel efficiency (workers=2)",
		"chase.spec",
		"75.0% utilization",
		"serial fraction 40.0%",
		"queue wait",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestBenchReportEfficiencyRoundtrip(t *testing.T) {
	e := BuildEfficiency(&sched.Snapshot{Enabled: true, Labels: []sched.LabelAgg{
		{Label: "a", WallUS: 10, TopWallUS: 10, BusyUS: 10, WorkerUS: 10, MaxWorkers: 1},
	}}, 100, 0, 1)
	r := NewBenchReport("efficiency-test", obs.Snapshot{})
	r.Efficiency = e
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"efficiency"`) {
		t.Fatal("efficiency section missing from report JSON")
	}
	if !strings.Contains(sb.String(), `"amdahl_max_speedup"`) {
		t.Fatal("amdahl_max_speedup missing from report JSON")
	}
}
