package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"kbrepair/internal/obs"
)

// snapWithMean builds a snapshot holding one latency histogram whose mean
// is exactly mean seconds (n observations).
func snapWithMean(name string, n int64, mean float64) obs.Snapshot {
	return obs.Snapshot{
		Counters: map[string]int64{"work.items": n},
		Gauges:   map[string]int64{},
		Histograms: map[string]obs.HistogramSnapshot{
			name: {
				Count:  n,
				Sum:    mean * float64(n),
				Min:    mean / 2,
				Max:    mean * 2,
				Bounds: []float64{mean * 10},
				Counts: []int64{n, 0},
			},
		},
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := NewBenchReport("test", snapWithMean("x.seconds", 10, 0.01))
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := WriteBenchReportFile(rep, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != BenchSchemaVersion || got.Label != "test" {
		t.Errorf("round-trip header mismatch: %+v", got)
	}
	if got.Env.GoVersion == "" || got.Env.NumCPU < 1 {
		t.Errorf("environment stamp missing: %+v", got.Env)
	}
	if got.Metrics.Counters["work.items"] != 10 {
		t.Errorf("metrics snapshot lost: %+v", got.Metrics)
	}
	s, ok := got.Summaries["x.seconds"]
	if !ok {
		t.Fatalf("no summary for x.seconds: %+v", got.Summaries)
	}
	if s.N != 10 || s.Mean != 0.01 {
		t.Errorf("summary = %+v, want n=10 mean=0.01", s)
	}
}

func TestReadBenchReportFileRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	rep := NewBenchReport("", snapWithMean("x.seconds", 1, 0.01))
	rep.SchemaVersion = BenchSchemaVersion + 1
	if err := WriteBenchReportFile(rep, path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchReportFile(path); err == nil {
		t.Fatal("future schema version accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchReportFile(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestCompareBenchReportsFlagsRegression(t *testing.T) {
	old := NewBenchReport("", snapWithMean("chase.run_seconds", 100, 0.010))
	slow := NewBenchReport("", snapWithMean("chase.run_seconds", 100, 0.020))
	regs := CompareBenchReports(old, slow, 1.25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly one", regs)
	}
	if regs[0].Metric != "chase.run_seconds" || regs[0].Ratio < 1.9 || regs[0].Ratio > 2.1 {
		t.Errorf("regression = %+v, want ~2x on chase.run_seconds", regs[0])
	}
}

func TestCompareBenchReportsIdenticalPasses(t *testing.T) {
	rep := NewBenchReport("", snapWithMean("chase.run_seconds", 100, 0.010))
	if regs := CompareBenchReports(rep, rep, 1.25); len(regs) != 0 {
		t.Errorf("identical runs regressed: %+v", regs)
	}
}

func TestCompareBenchReportsSkipsNoiseFloor(t *testing.T) {
	// 2x swing on a 100ns-mean metric must be ignored.
	old := NewBenchReport("", snapWithMean("tiny.seconds", 100, 1e-7))
	slow := NewBenchReport("", snapWithMean("tiny.seconds", 100, 2e-7))
	if regs := CompareBenchReports(old, slow, 1.25); len(regs) != 0 {
		t.Errorf("noise-floor metric regressed: %+v", regs)
	}
	// Metrics absent from one side are skipped, not crashed on.
	other := NewBenchReport("", snapWithMean("other.seconds", 10, 0.5))
	if regs := CompareBenchReports(old, other, 1.25); len(regs) != 0 {
		t.Errorf("disjoint metric sets regressed: %+v", regs)
	}
}

func TestWriteBenchComparisonRendersVerdict(t *testing.T) {
	old := NewBenchReport("", snapWithMean("a.seconds", 10, 0.01))
	var buf bytes.Buffer
	WriteBenchComparison(&buf, old, nil, 1.25)
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("clean comparison missing verdict:\n%s", buf.String())
	}
	buf.Reset()
	WriteBenchComparison(&buf, old, []Regression{{Metric: "a.seconds", Old: 0.01, New: 0.02, Ratio: 2}}, 1.25)
	if !strings.Contains(buf.String(), "REGRESSED a.seconds") {
		t.Errorf("regression not rendered:\n%s", buf.String())
	}
}

// TestBenchReportJSONShape pins the top-level schema keys a CI consumer
// greps for.
func TestBenchReportJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := NewBenchReport("l", snapWithMean("x.seconds", 1, 0.01)).Write(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema_version", "created_unix", "env", "metrics", "summaries"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report JSON missing %q:\n%s", key, buf.String())
		}
	}
}

// TestBuildTraceSummary checks the aggregate question decomposition: means
// over all questions, shares (including the unattributed remainder) summing
// to one, components sorted by share.
func TestBuildTraceSummary(t *testing.T) {
	ring := obs.NewRingSink(64)
	tr := obs.NewTracer(ring)
	clock := time.UnixMicro(1_700_000_000_000_000).UTC()
	tr.SetNow(func() time.Time { clock = clock.Add(time.Millisecond); return clock })
	root := tr.StartSpan("inquiry.run")
	for i := 1; i <= 3; i++ {
		q := root.Child("inquiry.question", obs.Int("q", i), obs.Int("phase", 1))
		q.Child("inquiry.sound_question").End()
		q.End()
	}
	root.End()

	s := BuildTraceSummary(ring.Records(), ring.Total())
	if s == nil || s.Questions != 3 {
		t.Fatalf("summary = %+v, want 3 questions", s)
	}
	if s.RecordsTotal != ring.Total() || s.SpansRetained != 7 {
		t.Errorf("counts = %d/%d, want %d/7", s.RecordsTotal, s.SpansRetained, ring.Total())
	}
	if s.MeanTotalUS <= 0 || s.MaxTotalUS < s.MeanTotalUS {
		t.Errorf("totals = mean %d max %d", s.MeanTotalUS, s.MaxTotalUS)
	}
	var share float64
	seen := make(map[string]bool)
	for _, c := range s.Components {
		share += c.Share
		seen[c.Name] = true
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("shares sum to %f, want 1", share)
	}
	if !seen["inquiry.sound_question"] || !seen["(unattributed)"] {
		t.Errorf("components = %+v", s.Components)
	}
	for i := 1; i < len(s.Components); i++ {
		if s.Components[i].Share > s.Components[i-1].Share {
			t.Errorf("components not sorted by share: %+v", s.Components)
		}
	}
}

// TestBuildTraceSummaryEmpty: no question spans means no section at all.
func TestBuildTraceSummaryEmpty(t *testing.T) {
	if s := BuildTraceSummary(nil, 0); s != nil {
		t.Fatalf("summary over empty stream = %+v, want nil", s)
	}
}
