// Package exp implements the experiment harness reproducing §6 of the
// paper: one runner per table/figure, each returning structured results
// that cmd/kbbench renders as the same rows/series the paper reports and
// bench_test.go wraps as Go benchmarks.
package exp

import (
	"fmt"
	"time"

	"kbrepair/internal/core"
	"kbrepair/internal/durum"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/stats"
	"kbrepair/internal/synth"
)

// StrategyAvg aggregates one strategy's effectiveness over repetitions —
// the bars of Figures 2 and 3.
type StrategyAvg struct {
	Strategy string
	// AvgQuestions is the mean number of questions to full consistency.
	AvgQuestions float64
	// AvgConflictsPerQuestion is total conflicts / total questions, the
	// paper's Figures 2(c,d) and 3(b) metric.
	AvgConflictsPerQuestion float64
	// AvgDelaySeconds is the mean question-generation delay.
	AvgDelaySeconds float64
	Repetitions     int
}

// runOne executes one inquiry on a clone of the KB and returns the result.
func runOne(kb *core.KB, strat inquiry.Strategy, seed int64, opts inquiry.Options) (*inquiry.Result, error) {
	clone := kb.Clone()
	e := inquiry.New(clone, strat, inquiry.NewSimulatedUser(seed), seed, opts)
	return e.Run()
}

// RunStrategies measures every strategy on the KB over the given number of
// repetitions with a simulated random user, as in the paper's setup.
func RunStrategies(kb *core.KB, reps int, seed int64, opts inquiry.Options) ([]StrategyAvg, error) {
	var out []StrategyAvg
	for _, strat := range inquiry.AllStrategies() {
		var totalQ, totalConf int
		var delays []time.Duration
		for r := 0; r < reps; r++ {
			res, err := runOne(kb, strat, seed+int64(r)*1000+int64(len(out)), opts)
			if err != nil {
				return nil, fmt.Errorf("%s rep %d: %w", strat.Name(), r, err)
			}
			if !res.Consistent {
				return nil, fmt.Errorf("%s rep %d: inquiry ended inconsistent", strat.Name(), r)
			}
			totalQ += res.Questions
			totalConf += res.InitialTotal
			delays = append(delays, res.Delays()...)
		}
		avg := StrategyAvg{
			Strategy:     strat.Name(),
			Repetitions:  reps,
			AvgQuestions: float64(totalQ) / float64(reps),
		}
		if totalQ > 0 {
			avg.AvgConflictsPerQuestion = float64(totalConf) / float64(totalQ)
		}
		avg.AvgDelaySeconds = stats.SummarizeDurations(delays).Mean
		out = append(out, avg)
	}
	return out, nil
}

// Fig2Result is one Durum Wheat panel of Figure 2: the KB characteristics
// table plus per-strategy averages (questions and conflicts/question).
type Fig2Result struct {
	Version string
	Info    synth.Info
	Rows    []StrategyAvg
}

// RunFig2 reproduces Figure 2 (a)–(d) for one Durum Wheat version.
func RunFig2(v durum.Version, reps int, seed int64) (*Fig2Result, error) {
	kb, info, err := durum.Build(v)
	if err != nil {
		return nil, err
	}
	rows, err := RunStrategies(kb, reps, seed, inquiry.Options{})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		Version: fmt.Sprintf("Durum Wheat v%d", int(v)),
		Info:    info,
		Rows:    rows,
	}, nil
}

// Fig3Row is one inconsistency-ratio column of Figure 3 with its KB
// characteristics (the figure's companion table).
type Fig3Row struct {
	Ratio float64
	Info  synth.Info
	Rows  []StrategyAvg
}

// Fig3Params scale the Figure 3 experiment (paper: 1005 atoms, ratios
// 5–30%, 6 repetitions, CDDs only).
type Fig3Params struct {
	NumFacts int
	Ratios   []float64
	Reps     int
	Seed     int64
}

// DefaultFig3 returns the paper-scale parameters.
func DefaultFig3() Fig3Params {
	return Fig3Params{
		NumFacts: 1005,
		Ratios:   []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30},
		Reps:     6,
		Seed:     1,
	}
}

// RunFig3 reproduces Figure 3 (a), (b) and its table: synthetic CDD-only
// KBs of fixed size with increasing inconsistency ratio.
func RunFig3(p Fig3Params) ([]Fig3Row, error) {
	var out []Fig3Row
	for i, ratio := range p.Ratios {
		g, err := synth.Generate(synth.Params{
			Seed:               p.Seed + int64(i),
			NumFacts:           p.NumFacts,
			InconsistencyRatio: ratio,
			NumCDDs:            15,
			JoinVarRatio:       0.25,
		})
		if err != nil {
			return nil, err
		}
		rows, err := RunStrategies(g.KB, p.Reps, p.Seed+int64(i)*100, inquiry.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig3Row{Ratio: ratio, Info: g.Info, Rows: rows})
	}
	return out, nil
}

// ConvergenceSeries is one line of Figure 4: remaining conflicts after
// each question, per strategy. Index 0 is the state before any question.
type ConvergenceSeries struct {
	Strategy  string
	Conflicts []int
}

// Fig4Params scale the convergence experiments. Figure 4(a): 3004 atoms,
// 25% ratio, CDDs only. Figure 4(b): 800 atoms, 25% ratio, 50 CDDs, 25
// TGDs.
type Fig4Params struct {
	NumFacts int
	Ratio    float64
	NumCDDs  int
	NumTGDs  int
	Seed     int64
}

// DefaultFig4a returns the paper-scale Figure 4(a) parameters.
func DefaultFig4a() Fig4Params {
	return Fig4Params{NumFacts: 3004, Ratio: 0.25, NumCDDs: 20, Seed: 4}
}

// DefaultFig4b returns the paper-scale Figure 4(b) parameters.
func DefaultFig4b() Fig4Params {
	return Fig4Params{NumFacts: 800, Ratio: 0.25, NumCDDs: 50, NumTGDs: 25, Seed: 5}
}

// RunFig4 reproduces a Figure 4 panel: the per-question conflict series of
// every strategy on one fixed KB.
func RunFig4(p Fig4Params) ([]ConvergenceSeries, synth.Info, error) {
	g, err := synth.Generate(synth.Params{
		Seed:               p.Seed,
		NumFacts:           p.NumFacts,
		InconsistencyRatio: p.Ratio,
		NumCDDs:            p.NumCDDs,
		NumTGDs:            p.NumTGDs,
	})
	if err != nil {
		return nil, synth.Info{}, err
	}
	var out []ConvergenceSeries
	for _, strat := range inquiry.AllStrategies() {
		res, err := runOne(g.KB, strat, p.Seed, inquiry.Options{TrackConflictSeries: true})
		if err != nil {
			return nil, g.Info, fmt.Errorf("%s: %w", strat.Name(), err)
		}
		series := append([]int{res.InitialTotal}, res.ConflictSeries()...)
		out = append(out, ConvergenceSeries{Strategy: strat.Name(), Conflicts: series})
	}
	return out, g.Info, nil
}

// DelayPoint is one box of a Figure 5 boxplot: the per-question delay
// distribution for one x-axis label.
type DelayPoint struct {
	Label   string
	Summary stats.Summary
	Info    synth.Info
}

// Fig5aParams scale Figure 5(a): fixed size, increasing inconsistency,
// opti-mcd (paper: 3000 atoms, 20–80%, 5 repetitions).
type Fig5aParams struct {
	NumFacts int
	Ratios   []float64
	Reps     int
	Seed     int64
}

// DefaultFig5a returns the paper-scale parameters.
func DefaultFig5a() Fig5aParams {
	return Fig5aParams{
		NumFacts: 3000,
		Ratios:   []float64{0.20, 0.40, 0.60, 0.80},
		Reps:     5,
		Seed:     6,
	}
}

// RunFig5a reproduces Figure 5(a): delay-time boxplots vs. inconsistency
// ratio with the opti-mcd strategy.
func RunFig5a(p Fig5aParams) ([]DelayPoint, error) {
	var out []DelayPoint
	for i, ratio := range p.Ratios {
		g, err := synth.Generate(synth.Params{
			Seed:               p.Seed + int64(i),
			NumFacts:           p.NumFacts,
			InconsistencyRatio: ratio,
			NumCDDs:            20,
		})
		if err != nil {
			return nil, err
		}
		var delays []time.Duration
		for r := 0; r < p.Reps; r++ {
			res, err := runOne(g.KB, inquiry.OptiMCD{}, p.Seed+int64(i*100+r), inquiry.Options{})
			if err != nil {
				return nil, err
			}
			delays = append(delays, res.Delays()...)
		}
		out = append(out, DelayPoint{
			Label:   fmt.Sprintf("%d%%", int(ratio*100)),
			Summary: stats.SummarizeDurations(delays),
			Info:    g.Info,
		})
	}
	return out, nil
}

// Fig5bParams scale Figure 5(b): increasing KB size, fixed 30% ratio
// (paper: 3000 atoms grown by up to 20/40/60%).
type Fig5bParams struct {
	BaseFacts int
	Growths   []float64
	Reps      int
	Seed      int64
}

// DefaultFig5b returns the paper-scale parameters.
func DefaultFig5b() Fig5bParams {
	return Fig5bParams{
		BaseFacts: 3000,
		Growths:   []float64{0, 0.20, 0.40, 0.60},
		Reps:      5,
		Seed:      7,
	}
}

// RunFig5b reproduces Figure 5(b): delay-time boxplots vs. KB size.
func RunFig5b(p Fig5bParams) ([]DelayPoint, error) {
	var out []DelayPoint
	for i, growth := range p.Growths {
		size := int(float64(p.BaseFacts) * (1 + growth))
		g, err := synth.Generate(synth.Params{
			Seed:               p.Seed + int64(i),
			NumFacts:           size,
			InconsistencyRatio: 0.30,
			NumCDDs:            20,
		})
		if err != nil {
			return nil, err
		}
		var delays []time.Duration
		for r := 0; r < p.Reps; r++ {
			res, err := runOne(g.KB, inquiry.OptiMCD{}, p.Seed+int64(i*100+r), inquiry.Options{})
			if err != nil {
				return nil, err
			}
			delays = append(delays, res.Delays()...)
		}
		out = append(out, DelayPoint{
			Label:   fmt.Sprintf("+%d%%", int(growth*100)),
			Summary: stats.SummarizeDurations(delays),
			Info:    g.Info,
		})
	}
	return out, nil
}

// Fig5cParams scale Figure 5(c): fully inconsistent KB with increasing
// dependency depth (paper: 400 atoms, ratio 100%, 150 CDDs, depth d with
// 50·d TGDs).
type Fig5cParams struct {
	NumFacts    int
	NumCDDs     int
	Depths      []int
	TGDsPerStep int
	Reps        int
	Seed        int64
}

// DefaultFig5c returns the paper-scale parameters.
func DefaultFig5c() Fig5cParams {
	return Fig5cParams{
		NumFacts:    400,
		NumCDDs:     150,
		Depths:      []int{1, 2, 3, 4},
		TGDsPerStep: 50,
		Reps:        5,
		Seed:        8,
	}
}

// RunFig5c reproduces Figure 5(c): delay-time boxplots vs. dependency
// depth on a fully inconsistent KB, opti-mcd strategy.
func RunFig5c(p Fig5cParams) ([]DelayPoint, error) {
	var out []DelayPoint
	for i, depth := range p.Depths {
		g, err := synth.Generate(synth.Params{
			Seed:                  p.Seed + int64(i),
			NumFacts:              p.NumFacts,
			InconsistencyRatio:    1.0,
			NumCDDs:               p.NumCDDs,
			NumTGDs:               p.TGDsPerStep * depth,
			Depth:                 depth,
			ChaseConflictFraction: 0.5,
		})
		if err != nil {
			return nil, err
		}
		var delays []time.Duration
		for r := 0; r < p.Reps; r++ {
			res, err := runOne(g.KB, inquiry.OptiMCD{}, p.Seed+int64(i*100+r), inquiry.Options{})
			if err != nil {
				return nil, err
			}
			delays = append(delays, res.Delays()...)
		}
		out = append(out, DelayPoint{
			Label:   fmt.Sprintf("d%d", depth),
			Summary: stats.SummarizeDurations(delays),
			Info:    g.Info,
		})
	}
	return out, nil
}
