package exp

import (
	"testing"
	"time"

	"kbrepair/internal/inquiry"
	"kbrepair/internal/synth"
)

// TestFig3WorkloadShape pins the generator to the paper's Figure 3
// companion table: at 1005 atoms the conflict count must stay in the same
// range the paper reports (56 at 5% … 496 at 30%) and the conflicts must
// overlap (avg scope ≈ 10–35). A regression here usually means accidental
// joins crept back into violation planting.
func TestFig3WorkloadShape(t *testing.T) {
	cases := []struct {
		ratio      float64
		minC, maxC int
		minScope   float64
	}{
		{0.05, 20, 150, 1},
		{0.20, 120, 700, 5},
		{0.30, 180, 1000, 5},
	}
	for _, c := range cases {
		g, err := synth.Generate(synth.Params{
			Seed: 1, NumFacts: 1005, InconsistencyRatio: c.ratio, NumCDDs: 15,
			JoinVarRatio: 0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		if g.Info.TotalConflicts < c.minC || g.Info.TotalConflicts > c.maxC {
			t.Errorf("ratio %.2f: conflicts = %d, want [%d, %d]",
				c.ratio, g.Info.TotalConflicts, c.minC, c.maxC)
		}
		if g.Info.AvgScope < c.minScope {
			t.Errorf("ratio %.2f: scope = %.1f, want ≥ %.1f",
				c.ratio, g.Info.AvgScope, c.minScope)
		}
	}
}

// TestFig3CellPerformance is a perf canary: one full Figure 3 cell (all
// four strategies at 1005 atoms, 5% ratio) must finish in single-digit
// seconds; the experiment harness becomes unusable otherwise.
func TestFig3CellPerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("perf canary")
	}
	g, err := synth.Generate(synth.Params{
		Seed: 1, NumFacts: 1005, InconsistencyRatio: 0.05, NumCDDs: 15, JoinVarRatio: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for _, strat := range inquiry.AllStrategies() {
		clone := g.KB.Clone()
		e := inquiry.New(clone, strat, inquiry.NewSimulatedUser(5), 5, inquiry.Options{})
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if !res.Consistent || res.Questions == 0 {
			t.Fatalf("%s: bad run", strat.Name())
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("fig3 cell took %s; expected seconds", elapsed)
	}
}
