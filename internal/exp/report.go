package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"kbrepair/internal/obs"
	"kbrepair/internal/synth"
)

// WriteInfoTable renders the KB characteristics table the paper attaches
// to each experiment.
func WriteInfoTable(w io.Writer, label string, info synth.Info) {
	fmt.Fprintf(w, "KB: %s\n", label)
	fmt.Fprintf(w, "  size (#atoms)        %d\n", info.Facts)
	fmt.Fprintf(w, "  chase size (#atoms)  %d\n", info.ChaseSize)
	fmt.Fprintf(w, "  #TGDs                %d\n", info.NumTGDs)
	fmt.Fprintf(w, "  #CDDs                %d\n", info.NumCDDs)
	fmt.Fprintf(w, "  conflicts            %d (naive %d)\n", info.TotalConflicts, info.NaiveConflicts)
	fmt.Fprintf(w, "  inconsistency ratio  %.1f%% (%d atoms)\n", info.InconsistencyRatio*100, info.AtomsInConflicts)
	fmt.Fprintf(w, "  avg #atoms/conflict  %.2f\n", info.AvgAtomsPerConflict)
	fmt.Fprintf(w, "  avg #atoms/overlap   %.2f\n", info.AvgAtomsPerOverlap)
	fmt.Fprintf(w, "  avg scope            %.2f\n", info.AvgScope)
	fmt.Fprintf(w, "  join positions       %.0f%%\n", info.JoinPositionPct*100)
}

// WriteStrategyTable renders the per-strategy averages (Figures 2/3).
func WriteStrategyTable(w io.Writer, rows []StrategyAvg) {
	fmt.Fprintf(w, "  %-10s %14s %20s %14s\n", "strategy", "avg #questions", "avg conflicts/quest.", "avg delay (s)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %14.2f %20.2f %14.4f\n",
			r.Strategy, r.AvgQuestions, r.AvgConflictsPerQuestion, r.AvgDelaySeconds)
	}
}

// WriteFig2 renders a whole Figure 2 panel.
func WriteFig2(w io.Writer, res *Fig2Result) {
	fmt.Fprintf(w, "== Figure 2 — %s ==\n", res.Version)
	WriteInfoTable(w, res.Version, res.Info)
	WriteStrategyTable(w, res.Rows)
	fmt.Fprintln(w)
}

// WriteFig3 renders the Figure 3 series and companion table.
func WriteFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "== Figure 3 — synthetic KBs, CDDs only, increasing inconsistency ==")
	for _, row := range rows {
		fmt.Fprintf(w, "-- inconsistency %.0f%% --\n", row.Ratio*100)
		WriteInfoTable(w, fmt.Sprintf("synthetic %.0f%%", row.Ratio*100), row.Info)
		WriteStrategyTable(w, row.Rows)
	}
	fmt.Fprintln(w)
}

// WriteConvergence renders a Figure 4 panel as one series per strategy.
func WriteConvergence(w io.Writer, label string, series []ConvergenceSeries, info synth.Info) {
	fmt.Fprintf(w, "== Figure 4 — convergence (%s) ==\n", label)
	WriteInfoTable(w, label, info)
	for _, s := range series {
		fmt.Fprintf(w, "  %-10s (%d questions): ", s.Strategy, len(s.Conflicts)-1)
		parts := make([]string, 0, len(s.Conflicts))
		for i, c := range s.Conflicts {
			// Thin long series for readability: print every step for short
			// runs, every 5th point for long ones, always first and last.
			if len(s.Conflicts) > 40 && i%5 != 0 && i != len(s.Conflicts)-1 {
				continue
			}
			parts = append(parts, fmt.Sprintf("%d", c))
		}
		fmt.Fprintln(w, strings.Join(parts, " "))
	}
	fmt.Fprintln(w)
}

// WriteDelays renders a Figure 5 panel as one boxplot summary per label.
func WriteDelays(w io.Writer, label string, points []DelayPoint) {
	fmt.Fprintf(w, "== Figure 5 — delay time (%s) ==\n", label)
	fmt.Fprintf(w, "  %-6s %10s %10s %10s %10s %10s %10s %9s\n",
		"x", "mean(s)", "median", "q1", "q3", "min", "max", "outliers")
	for _, p := range points {
		s := p.Summary
		fmt.Fprintf(w, "  %-6s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %9d\n",
			p.Label, s.Mean, s.Median, s.Q1, s.Q3, s.Min, s.Max, len(s.Outliers))
	}
	fmt.Fprintln(w)
}

// WriteMetrics renders an observability snapshot as a report section:
// counters and gauges sorted by name, histograms as five-number summaries
// estimated from the buckets (stats.FromHistogram).
func WriteMetrics(w io.Writer, snap obs.Snapshot) {
	fmt.Fprintln(w, "== Metrics snapshot ==")
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %-36s %12d\n", n, snap.Counters[n])
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "  %-36s %12d (gauge)\n", n, snap.Gauges[n])
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		s := h.Summary()
		fmt.Fprintf(w, "  %-36s n=%d mean=%.3gs median=%.3gs q1=%.3gs q3=%.3gs min=%.3gs max=%.3gs\n",
			n, s.N, s.Mean, s.Median, s.Q1, s.Q3, s.Min, s.Max)
	}
	fmt.Fprintln(w)
}

// WriteAblation renders an ablation comparison.
func WriteAblation(w io.Writer, res *AblationResult) {
	fmt.Fprintf(w, "== Ablation — %s ==\n", res.Name)
	fmt.Fprintf(w, "  optimized  %12s (fast-path hits %d, full checks %d)\n",
		res.OptimizedTime.Round(10e3), res.FastHits, res.FullChecks)
	fmt.Fprintf(w, "  disabled   %12s\n", res.DisabledTime.Round(10e3))
	fmt.Fprintf(w, "  speedup    %12.2fx\n\n", res.Speedup)
}
