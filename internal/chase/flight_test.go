package chase

import (
	"errors"
	"testing"

	"kbrepair/internal/obs/flight"
	"kbrepair/internal/par"
)

// roundEvents extracts the chase round start/end events from a recorder and
// returns the counts plus the final end event.
func roundEvents(t *testing.T, rec *flight.Recorder) (starts, ends int, last flight.Event) {
	t.Helper()
	for _, e := range rec.Events() {
		switch e.Kind {
		case flight.KindChaseRoundStart:
			starts++
		case flight.KindChaseRoundEnd:
			ends++
			last = e
		}
	}
	return starts, ends, last
}

// TestChaseRoundEventsBalanced asserts the flight-recorder invariant that
// every KindChaseRoundStart is balanced by exactly one KindChaseRoundEnd on
// *every* exit path — normal completion, round-budget exceeded, derivation
// budget exceeded, and ⊥-abort — with the early exits carrying their status
// marker. The budget paths used to leak the round-start event.
func TestChaseRoundEventsBalanced(t *testing.T) {
	s, tgds := deepChainKB(t, 6, 2)

	t.Run("normal", func(t *testing.T) {
		rec := flight.Enable(256)
		defer flight.Disable()
		if _, err := Run(s, tgds, Options{}); err != nil {
			t.Fatal(err)
		}
		starts, ends, last := roundEvents(t, rec)
		if starts == 0 || starts != ends {
			t.Fatalf("round events unbalanced: %d starts, %d ends", starts, ends)
		}
		if last.Note != "" {
			t.Errorf("normal completion carries status %q, want none", last.Note)
		}
	})

	t.Run("rounds-exceeded", func(t *testing.T) {
		rec := flight.Enable(256)
		defer flight.Disable()
		_, err := Run(s, tgds, Options{MaxRounds: 2})
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("err = %v, want ErrBudget", err)
		}
		starts, ends, last := roundEvents(t, rec)
		if starts != 3 || ends != 3 {
			t.Fatalf("round events unbalanced: %d starts, %d ends (want 3 each)", starts, ends)
		}
		if last.Note != flight.RoundStatusBudget {
			t.Errorf("final round-end status = %q, want %q", last.Note, flight.RoundStatusBudget)
		}
	})

	t.Run("derived-budget", func(t *testing.T) {
		rec := flight.Enable(256)
		defer flight.Disable()
		_, err := Run(s, tgds, Options{MaxDerived: 1})
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("err = %v, want ErrBudget", err)
		}
		starts, ends, last := roundEvents(t, rec)
		if starts == 0 || starts != ends {
			t.Fatalf("round events unbalanced: %d starts, %d ends", starts, ends)
		}
		if last.Note != flight.RoundStatusBudget {
			t.Errorf("final round-end status = %q, want %q", last.Note, flight.RoundStatusBudget)
		}
	})

	t.Run("aborted", func(t *testing.T) {
		rec := flight.Enable(256)
		defer flight.Disable()
		res, err := run(s, tgds, Options{}, "p3")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Store.ByPredicate("p3")) == 0 {
			t.Fatal("abort predicate never derived; workload too weak")
		}
		starts, ends, last := roundEvents(t, rec)
		if starts == 0 || starts != ends {
			t.Fatalf("round events unbalanced: %d starts, %d ends", starts, ends)
		}
		if last.Note != flight.RoundStatusAborted {
			t.Errorf("final round-end status = %q, want %q", last.Note, flight.RoundStatusAborted)
		}
	})
}

// TestChaseParallelFiringDispatch asserts the speculative-firing phase
// actually fans out over the worker pool: with more than one worker and
// more than one trigger per round, the chase emits par.dispatch events for
// both the collection and the firing fan-outs.
func TestChaseParallelFiringDispatch(t *testing.T) {
	withWorkers(t, 4)
	rec := flight.Enable(256)
	defer flight.Disable()
	s, tgds := deepChainKB(t, 3, 4)
	if _, err := Run(s, tgds, Options{}); err != nil {
		t.Fatal(err)
	}
	var dispatches int
	for _, e := range rec.Events() {
		if e.Kind == flight.KindParDispatch {
			dispatches++
		}
	}
	// Round 1 alone fans out twice: once over the 3 rules for collection,
	// once over the 4 triggers for speculative firing.
	if dispatches < 2 {
		t.Fatalf("par.dispatch events = %d, want >= 2 (collection + firing fan-outs)", dispatches)
	}
	par.SetWorkers(1)
	rec = flight.Enable(256)
	if _, err := Run(s, tgds, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, e := range rec.Events() {
		if e.Kind == flight.KindParDispatch {
			t.Fatal("workers=1 must run inline, but a par.dispatch event was recorded")
		}
	}
}
