package chase

import (
	"fmt"

	"kbrepair/internal/logic"
)

// depPos is a node of the dependency graph: one argument position of one
// predicate.
type depPos struct {
	pred string
	arg  int
}

func (p depPos) String() string { return fmt.Sprintf("%s[%d]", p.pred, p.arg) }

type depEdge struct {
	to      depPos
	special bool
}

// WeakAcyclicityReport describes the outcome of the weak-acyclicity test.
type WeakAcyclicityReport struct {
	// Acyclic is true when the rule set is weakly acyclic.
	Acyclic bool
	// Cycle, when Acyclic is false, is a position cycle through at least
	// one special edge, rendered for diagnostics.
	Cycle []string
}

// IsWeaklyAcyclic checks the TGD set against the classical dependency-graph
// criterion of Fagin, Kolaitis, Miller and Popa (2005): nodes are predicate
// positions; every body occurrence of a variable x that also occurs in the
// head yields (i) a normal edge to each head position of x and (ii) a
// special edge to each head position of each existentially quantified
// variable. The set is weakly acyclic iff no cycle goes through a special
// edge, which guarantees chase termination.
func IsWeaklyAcyclic(tgds []*logic.TGD) WeakAcyclicityReport {
	adj := make(map[depPos][]depEdge)
	for _, r := range tgds {
		frontier := make(map[logic.Term]bool)
		for _, v := range r.FrontierVars() {
			frontier[v] = true
		}
		existential := make(map[logic.Term]bool)
		for _, z := range r.ExistentialVars() {
			existential[z] = true
		}
		// Head positions of each frontier variable, and of each
		// existential variable.
		headPos := make(map[logic.Term][]depPos)
		var existPos []depPos
		for _, h := range r.Head {
			for j, t := range h.Args {
				if !t.IsVar() {
					continue
				}
				p := depPos{h.Pred, j}
				if existential[t] {
					existPos = append(existPos, p)
				} else {
					headPos[t] = append(headPos[t], p)
				}
			}
		}
		for _, b := range r.Body {
			for i, t := range b.Args {
				if !t.IsVar() || !frontier[t] {
					continue
				}
				from := depPos{b.Pred, i}
				for _, to := range headPos[t] {
					adj[from] = append(adj[from], depEdge{to: to})
				}
				for _, to := range existPos {
					adj[from] = append(adj[from], depEdge{to: to, special: true})
				}
			}
		}
	}

	// A cycle through a special edge exists iff some special edge u→v has v
	// reaching u. Detect with a DFS per special edge source set; the graphs
	// here are small (positions ≤ predicates × max arity).
	reach := func(from, target depPos) []string {
		type frame struct {
			node depPos
			path []string
		}
		seen := map[depPos]bool{from: true}
		stack := []frame{{from, []string{from.String()}}}
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.node == target {
				return f.path
			}
			for _, e := range adj[f.node] {
				if !seen[e.to] {
					seen[e.to] = true
					stack = append(stack, frame{e.to, append(append([]string(nil), f.path...), e.to.String())})
				}
			}
		}
		return nil
	}
	for from, edges := range adj {
		for _, e := range edges {
			if !e.special {
				continue
			}
			if path := reach(e.to, from); path != nil {
				cycle := append([]string{from.String() + " ~special~> " + e.to.String()}, path[1:]...)
				return WeakAcyclicityReport{Acyclic: false, Cycle: cycle}
			}
		}
	}
	return WeakAcyclicityReport{Acyclic: true}
}
