package chase

import (
	"testing"

	"kbrepair/internal/logic"
)

func TestWeaklyAcyclicPositive(t *testing.T) {
	// The Figure 1(b) TGD is trivially weakly acyclic (no existentials).
	tg := logic.MustTGD(
		[]logic.Atom{
			logic.NewAtom("isPainKillerFor", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasPain", logic.V("Z"), logic.V("Y")),
		},
		[]logic.Atom{logic.NewAtom("prescribed", logic.V("X"), logic.V("Z"))},
	)
	if rep := IsWeaklyAcyclic([]*logic.TGD{tg}); !rep.Acyclic {
		t.Errorf("full rule wrongly cyclic: %v", rep.Cycle)
	}
}

func TestWeaklyAcyclicWithExistentialNoCycle(t *testing.T) {
	// p(X) -> q(X, Z): special edge p[0] -> q[1], no path back.
	tg := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
		[]logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Z"))},
	)
	if rep := IsWeaklyAcyclic([]*logic.TGD{tg}); !rep.Acyclic {
		t.Errorf("wrongly cyclic: %v", rep.Cycle)
	}
}

func TestWeaklyAcyclicNegativeSelfLoop(t *testing.T) {
	// p(X,Y) -> p(Y,Z): special edge into p[1] and normal edge p[1] -> p[0],
	// p[0] -> ... ; classic non-terminating example.
	tg := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("p", logic.V("X"), logic.V("Y"))},
		[]logic.Atom{logic.NewAtom("p", logic.V("Y"), logic.V("Z"))},
	)
	rep := IsWeaklyAcyclic([]*logic.TGD{tg})
	if rep.Acyclic {
		t.Fatal("non-terminating rule reported weakly acyclic")
	}
	if len(rep.Cycle) == 0 {
		t.Error("no cycle evidence returned")
	}
}

func TestWeaklyAcyclicNegativeTwoRules(t *testing.T) {
	// r1: p(X) -> q(X, Z) (special into q[1])
	// r2: q(X, Y) -> p(Y)  (normal q[1] -> p[0])
	// Cycle p[0] ~special~> q[1] -> p[0].
	r1 := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
		[]logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Z"))},
	)
	r2 := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Y"))},
		[]logic.Atom{logic.NewAtom("p", logic.V("Y"))},
	)
	rep := IsWeaklyAcyclic([]*logic.TGD{r1, r2})
	if rep.Acyclic {
		t.Fatal("cyclic pair reported weakly acyclic")
	}
}

func TestWeaklyAcyclicNormalCycleOK(t *testing.T) {
	// Mutual recursion without existentials is weakly acyclic (datalog).
	r1 := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
		[]logic.Atom{logic.NewAtom("q", logic.V("X"))},
	)
	r2 := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("q", logic.V("X"))},
		[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
	)
	if rep := IsWeaklyAcyclic([]*logic.TGD{r1, r2}); !rep.Acyclic {
		t.Errorf("datalog recursion wrongly cyclic: %v", rep.Cycle)
	}
}

func TestWeaklyAcyclicEmpty(t *testing.T) {
	if rep := IsWeaklyAcyclic(nil); !rep.Acyclic {
		t.Error("empty rule set must be weakly acyclic")
	}
}
