package chase

import (
	"fmt"

	"kbrepair/internal/homo"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// RunSequentialReference computes the restricted chase with the
// pre-parallel engine: triggers collected rule by rule, firing strictly
// sequential in (rule, enumeration) order, invented nulls drawn from the
// store's global FreshNull counter. It is retained — like
// homo.ReferenceForEachSeeded — as the semantics baseline for the
// speculative-fire/commit engine behind Run: differential tests require
// Run's output to match this one fact-for-fact at the same ids, with the
// same provenance and round structure, modulo a bijective renaming of
// invented nulls (store.EqualUpToNullRenaming). Unlike Run it is
// uninstrumented: no metrics, spans, flight events or worker fan-out.
func RunSequentialReference(base *store.Store, tgds []*logic.TGD, opts Options) (*Result, error) {
	res := &Result{
		Store:   base.Clone(),
		BaseLen: base.Len(),
		Prov:    make(map[store.FactID]Derivation),
	}
	if len(tgds) == 0 {
		return res, nil
	}
	s := res.Store
	delta := s.IDs()
	budget := opts.maxDerived()
	for len(delta) > 0 {
		res.Rounds++
		if res.Rounds > opts.maxRounds() {
			return res, fmt.Errorf("%w: more than %d rounds", ErrBudget, opts.maxRounds())
		}
		deltaSet := make(map[store.FactID]bool, len(delta))
		for _, id := range delta {
			deltaSet[id] = true
		}
		all := res.Rounds == 1
		// All triggers are collected against the round-start snapshot,
		// before any firing — the same discipline as the parallel engine.
		perRule := make([][]homo.Match, len(tgds))
		for i, rule := range tgds {
			plan := homo.CachedPlanWith(homo.CacheKey{Owner: rule, Tag: homo.TagBody}, rule.Body,
				homo.CompileOpts{Stats: s})
			perRule[i] = collectTriggers(s, plan, all, deltaSet)
		}
		var newDelta []store.FactID
		for ri, rule := range tgds {
			frontVars := rule.FrontierVars()
			existential := rule.ExistentialVars()
			headPlan := homo.CachedPlanWith(homo.CacheKey{Owner: rule, Tag: homo.TagHead}, rule.Head,
				homo.CompileOpts{Stats: s, Prebound: frontVars})
			for _, m := range perRule[ri] {
				frontier := m.Subst.Restrict(frontVars)
				// The restricted-chase applicability check against the
				// store as it stands mid-round: firings earlier in the
				// sequential order suppress later triggers whose head
				// they satisfied.
				if headPlan.ExistsSeeded(s, frontier) {
					continue
				}
				if budget-len(res.Prov) < len(rule.Head) {
					return res, ErrBudget
				}
				inst := frontier.Clone()
				for _, z := range existential {
					inst[z] = s.FreshNull()
				}
				for i, h := range rule.Head {
					id, err := s.Add(inst.Apply(h))
					if err != nil {
						return res, fmt.Errorf("chase: firing %s: %w", rule, err)
					}
					res.Prov[id] = Derivation{Rule: rule, Parents: m.Facts, HeadIdx: i}
					newDelta = append(newDelta, id)
				}
			}
		}
		delta = newDelta
	}
	return res, nil
}
