// Differential equivalence suite for the speculative-fire/commit engine:
// over the synthetic KB table, the parallel engine must produce
// byte-identical transcripts at every worker count, and must match the
// retained sequential reference engine fact-for-fact modulo a bijective
// renaming of invented nulls. External test package because synth depends
// on chase.
package chase_test

import (
	"fmt"
	"reflect"
	"regexp"
	"testing"

	"kbrepair/internal/chase"
	"kbrepair/internal/logic"
	"kbrepair/internal/par"
	"kbrepair/internal/store"
	"kbrepair/internal/synth"
)

// synthCases is the same spread the homo differential suite uses: sizes,
// inconsistency ratios and join shapes varied enough to exercise multi-round
// chases, multi-atom CDD bodies and null-inventing TGDs.
var synthCases = []synth.Params{
	{Seed: 1, NumFacts: 40, InconsistencyRatio: 0.2, NumCDDs: 5},
	{Seed: 2, NumFacts: 120, InconsistencyRatio: 0.25, NumCDDs: 8, NumTGDs: 4, JoinVarRatio: 0.3},
	{Seed: 3, NumFacts: 300, InconsistencyRatio: 0.1, NumCDDs: 10, NumTGDs: 6, JoinVarRatio: 0.5},
	{Seed: 4, NumFacts: 80, InconsistencyRatio: 0.4, NumCDDs: 12, NumTGDs: 2, JoinVarRatio: 0.2},
}

// synthKB generates one table case and returns its store plus the chase
// rule set: the KB's TGDs followed by the CDDs compiled to ⊥-rules, so the
// chase also exercises zero-arity heads and rules that share body plans
// with conflict detection.
func synthKB(t *testing.T, p synth.Params) (*store.Store, []*logic.TGD) {
	t.Helper()
	g, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rules := append(append([]*logic.TGD(nil), g.KB.TGDs...), chase.CompileBottom(g.KB.CDDs)...)
	return g.KB.Facts, rules
}

// transcript canonicalizes a chase result byte-for-byte: round count, every
// fact in id order (null labels included), and every derivation edge.
func transcript(res *chase.Result) string {
	out := fmt.Sprintf("rounds=%d\n%s", res.Rounds, res.Store.String())
	for _, id := range res.Derived() {
		d := res.Prov[id]
		out += fmt.Sprintf("%d<=%s%v@%d\n", id, d.Rule.Label, d.Parents, d.HeadIdx)
	}
	return out
}

func setWorkers(t *testing.T, n int) {
	t.Helper()
	par.SetWorkers(n)
	t.Cleanup(func() { par.SetWorkers(0) })
}

// TestChaseEquivalenceAcrossWorkersSynth chases every synthetic table case
// at workers 1, 2 and 8 and requires byte-identical transcripts: same facts
// at the same ids with the same null labels, same provenance, same rounds.
func TestChaseEquivalenceAcrossWorkersSynth(t *testing.T) {
	for _, p := range synthCases {
		t.Run(fmt.Sprintf("seed%d", p.Seed), func(t *testing.T) {
			setWorkers(t, 1)
			s, rules := synthKB(t, p)
			base, err := chase.Run(s, rules, chase.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := transcript(base)
			for _, w := range []int{2, 8} {
				par.SetWorkers(w)
				res, err := chase.Run(s, rules, chase.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if got := transcript(res); got != want {
					t.Errorf("workers=%d: transcript differs from workers=1\n--- workers=1\n%s\n--- workers=%d\n%s", w, want, w, got)
				}
			}
		})
	}
}

// TestChaseMatchesSequentialReference is the isomorphism differential: the
// parallel engine's output must equal the retained pre-parallel engine's
// output fact-for-fact at the same ids — identical rounds, provenance and
// derivation order — with invented nulls related by a bijective renaming
// (the engines name nulls differently by design: coordinate labels vs the
// global counter).
func TestChaseMatchesSequentialReference(t *testing.T) {
	setWorkers(t, 8)
	for _, p := range synthCases {
		t.Run(fmt.Sprintf("seed%d", p.Seed), func(t *testing.T) {
			s, rules := synthKB(t, p)
			res, err := chase.Run(s, rules, chase.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := chase.RunSequentialReference(s, rules, chase.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds != ref.Rounds || res.BaseLen != ref.BaseLen {
				t.Fatalf("rounds/base = %d/%d, reference %d/%d", res.Rounds, res.BaseLen, ref.Rounds, ref.BaseLen)
			}
			if len(res.Prov) != len(ref.Prov) {
				t.Fatalf("derived %d facts, reference %d", len(res.Prov), len(ref.Prov))
			}
			if !res.Store.EqualUpToNullRenaming(ref.Store) {
				t.Fatalf("stores not isomorphic modulo null renaming\n--- parallel\n%s\n--- reference\n%s", res.Store, ref.Store)
			}
			// Null labels aside, provenance must agree id-for-id: same rule,
			// same parents, same head index.
			for id, d := range res.Prov {
				rd, ok := ref.Prov[id]
				if !ok {
					t.Fatalf("fact %d has no reference derivation", id)
				}
				if d.Rule != rd.Rule || d.HeadIdx != rd.HeadIdx || !reflect.DeepEqual(d.Parents, rd.Parents) {
					t.Fatalf("fact %d derivation %v@%d from %v, reference %v@%d from %v",
						id, d.Rule, d.HeadIdx, d.Parents, rd.Rule, rd.HeadIdx, rd.Parents)
				}
			}
		})
	}
}

// TestChaseNullCoordinateLabels pins the invented-null naming scheme: a
// fired existential gets the label n<round>r<rule>t<trigger>x<var>, derived
// purely from the firing coordinate.
func TestChaseNullCoordinateLabels(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("p", logic.C("b")),
	})
	rule := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
		[]logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Z"))})
	res, err := chase.Run(s, []*logic.TGD{rule}, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord := regexp.MustCompile(`^n\d+r\d+t\d+x\d+$`)
	derived := res.Derived()
	if len(derived) != 2 {
		t.Fatalf("derived %d facts, want 2", len(derived))
	}
	wantLabels := []string{"n1r0t0x0", "n1r0t1x0"}
	for i, id := range derived {
		null := res.Store.FactRef(id).Args[1]
		if !null.IsNull() {
			t.Fatalf("fact %d arg = %v, want a null", id, null)
		}
		if !coord.MatchString(null.Name) {
			t.Errorf("null label %q does not match the coordinate scheme", null.Name)
		}
		if null.Name != wantLabels[i] {
			t.Errorf("fact %d null = %q, want %q", id, null.Name, wantLabels[i])
		}
	}
}
