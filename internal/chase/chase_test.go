package chase

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"kbrepair/internal/homo"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// fig1b builds the paper's Figure 1(b) knowledge base.
func fig1b(t testing.TB) (*store.Store, []*logic.TGD, []*logic.CDD) {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")),
		logic.NewAtom("hasPain", logic.C("John"), logic.C("Migraine")),
		logic.NewAtom("isPainKillerFor", logic.C("Nsaids"), logic.C("Migraine")),
		logic.NewAtom("incompatible", logic.C("Aspirin"), logic.C("Nsaids")),
	})
	tgds := []*logic.TGD{logic.MustTGD(
		[]logic.Atom{
			logic.NewAtom("isPainKillerFor", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasPain", logic.V("Z"), logic.V("Y")),
		},
		[]logic.Atom{logic.NewAtom("prescribed", logic.V("X"), logic.V("Z"))},
	)}
	cdds := []*logic.CDD{
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
		}),
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("prescribed", logic.V("X"), logic.V("Z")),
			logic.NewAtom("prescribed", logic.V("Y"), logic.V("Z")),
			logic.NewAtom("incompatible", logic.V("X"), logic.V("Y")),
		}),
	}
	return s, tgds, cdds
}

func TestChaseExample21(t *testing.T) {
	s, tgds, _ := fig1b(t)
	res, err := Run(s, tgds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Example 2.1: Cl(F') = F' ∪ {prescribed(Nsaids, John)}.
	if res.Store.Len() != s.Len()+1 {
		t.Fatalf("chase size = %d, want %d", res.Store.Len(), s.Len()+1)
	}
	want := logic.NewAtom("prescribed", logic.C("Nsaids"), logic.C("John"))
	if !res.Store.Contains(want) {
		t.Errorf("chase missing %v", want)
	}
	// Base store untouched.
	if s.Len() != 6 {
		t.Error("chase mutated base store")
	}
	// Provenance of the derived fact points at the two body facts.
	d := res.Derived()
	if len(d) != 1 {
		t.Fatalf("derived = %v", d)
	}
	prov := res.Prov[d[0]]
	if prov.Rule != tgds[0] || len(prov.Parents) != 2 {
		t.Errorf("prov = %+v", prov)
	}
	support := res.BaseSupport(d[0])
	if !reflect.DeepEqual(support, []store.FactID{3, 4}) {
		t.Errorf("BaseSupport = %v, want [3 4]", support)
	}
	// Base facts are their own support.
	if got := res.BaseSupport(0); !reflect.DeepEqual(got, []store.FactID{0}) {
		t.Errorf("BaseSupport(base) = %v", got)
	}
}

func TestRestrictedChaseDoesNotRefire(t *testing.T) {
	// p(a) with rule p(X) -> q(X, Z) must derive exactly one q-atom with a
	// fresh null, and a second run over the result must derive nothing.
	s := store.MustFromAtoms([]logic.Atom{logic.NewAtom("p", logic.C("a"))})
	r := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
		[]logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Z"))},
	)
	res, err := Run(s, []*logic.TGD{r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Derived()) != 1 {
		t.Fatalf("derived %d facts, want 1", len(res.Derived()))
	}
	q := res.Store.FactRef(res.Derived()[0])
	if q.Pred != "q" || q.Args[0] != logic.C("a") || !q.Args[1].IsNull() {
		t.Errorf("derived %v", q)
	}
	res2, err := Run(res.Store, []*logic.TGD{r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Derived()) != 0 {
		t.Errorf("restricted chase re-fired: %v", res2.Derived())
	}
}

func TestChaseHeadAlreadySatisfied(t *testing.T) {
	// Head satisfied by existing fact: no firing at all.
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("q", logic.C("a"), logic.C("b")),
	})
	r := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
		[]logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Z"))},
	)
	res, err := Run(s, []*logic.TGD{r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Derived()) != 0 {
		t.Errorf("fired although satisfied: %v", res.Derived())
	}
}

func TestChaseMultiRound(t *testing.T) {
	// Chain: p -> q -> r, requires two rounds.
	s := store.MustFromAtoms([]logic.Atom{logic.NewAtom("p", logic.C("a"))})
	rules := []*logic.TGD{
		logic.MustTGD(
			[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
			[]logic.Atom{logic.NewAtom("q", logic.V("X"))},
		),
		logic.MustTGD(
			[]logic.Atom{logic.NewAtom("q", logic.V("X"))},
			[]logic.Atom{logic.NewAtom("r", logic.V("X"))},
		),
	}
	res, err := Run(s, rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Store.Contains(logic.NewAtom("r", logic.C("a"))) {
		t.Error("transitive derivation missing")
	}
	// Transitive support reaches the base fact.
	var rid store.FactID = -1
	for _, id := range res.Derived() {
		if res.Store.FactRef(id).Pred == "r" {
			rid = id
		}
	}
	if got := res.BaseSupport(rid); !reflect.DeepEqual(got, []store.FactID{0}) {
		t.Errorf("transitive support = %v", got)
	}
}

func TestChaseMultiAtomHead(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("isCultivatedOn", logic.C("wheat1"), logic.C("soil2")),
		logic.NewAtom("durum_wheat", logic.C("wheat1")),
		logic.NewAtom("soil", logic.C("soil2")),
	})
	r := logic.MustTGD(
		[]logic.Atom{
			logic.NewAtom("isCultivatedOn", logic.V("X1"), logic.V("X2")),
			logic.NewAtom("durum_wheat", logic.V("X1")),
			logic.NewAtom("soil", logic.V("X2")),
		},
		[]logic.Atom{
			logic.NewAtom("hasPrecedent", logic.V("X2"), logic.V("X3")),
			logic.NewAtom("soybean", logic.V("X3")),
		},
	)
	res, err := Run(s, []*logic.TGD{r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Derived()) != 2 {
		t.Fatalf("derived %d, want 2", len(res.Derived()))
	}
	// Both head atoms share the same fresh null.
	var hp, sb logic.Atom
	for _, id := range res.Derived() {
		a := res.Store.FactRef(id)
		switch a.Pred {
		case "hasPrecedent":
			hp = a
		case "soybean":
			sb = a
		}
	}
	if hp.Args[1] != sb.Args[0] || !hp.Args[1].IsNull() {
		t.Errorf("existential sharing broken: %v vs %v", hp, sb)
	}
}

func TestChaseBudget(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{logic.NewAtom("p", logic.C("a"), logic.C("b"))})
	// Non-terminating rule (not weakly acyclic): p(X,Y) -> p(Y,Z).
	r := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("p", logic.V("X"), logic.V("Y"))},
		[]logic.Atom{logic.NewAtom("p", logic.V("Y"), logic.V("Z"))},
	)
	_, err := Run(s, []*logic.TGD{r}, Options{MaxDerived: 50})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want budget error", err)
	}
}

func TestIsConsistent(t *testing.T) {
	s, tgds, cdds := fig1b(t)
	for name, check := range map[string]func(*store.Store, []*logic.TGD, []*logic.CDD, Options) (bool, error){
		"naive": IsConsistentNaive,
		"opt":   IsConsistentOpt,
	} {
		ok, err := check(s, tgds, cdds, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ok {
			t.Errorf("%s: inconsistent KB reported consistent", name)
		}
	}
	// A consistent variant: fix both conflicts.
	s2 := s.Clone()
	s2.MustSetValue(store.Position{Fact: 1, Arg: 0}, logic.C("Mike")) // hasAllergy(Mike, Aspirin)
	s2.MustSetValue(store.Position{Fact: 3, Arg: 0}, logic.C("Mary")) // hasPain(Mary, Migraine): TGD now prescribes Nsaids to Mary — no incompatibility with John's Aspirin
	for name, check := range map[string]func(*store.Store, []*logic.TGD, []*logic.CDD, Options) (bool, error){
		"naive": IsConsistentNaive,
		"opt":   IsConsistentOpt,
	} {
		ok, err := check(s2, tgds, cdds, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !ok {
			t.Errorf("%s: consistent KB reported inconsistent", name)
		}
	}
}

func TestConsistencyChecksAgreeOnChaseOnlyConflict(t *testing.T) {
	// KB consistent at base level but inconsistent after the chase: the
	// second CDD of Figure 1(b) with no direct violation.
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),
		logic.NewAtom("hasPain", logic.C("John"), logic.C("Migraine")),
		logic.NewAtom("isPainKillerFor", logic.C("Nsaids"), logic.C("Migraine")),
		logic.NewAtom("incompatible", logic.C("Aspirin"), logic.C("Nsaids")),
	})
	tgds := []*logic.TGD{logic.MustTGD(
		[]logic.Atom{
			logic.NewAtom("isPainKillerFor", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasPain", logic.V("Z"), logic.V("Y")),
		},
		[]logic.Atom{logic.NewAtom("prescribed", logic.V("X"), logic.V("Z"))},
	)}
	cdds := []*logic.CDD{logic.MustCDD([]logic.Atom{
		logic.NewAtom("prescribed", logic.V("X"), logic.V("Z")),
		logic.NewAtom("prescribed", logic.V("Y"), logic.V("Z")),
		logic.NewAtom("incompatible", logic.V("X"), logic.V("Y")),
	})}
	okN, err := IsConsistentNaive(s, tgds, cdds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	okO, err := IsConsistentOpt(s, tgds, cdds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if okN || okO {
		t.Errorf("naive=%v opt=%v, want both false", okN, okO)
	}
}

func TestCompileBottom(t *testing.T) {
	cdds := []*logic.CDD{logic.MustCDD([]logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("X")),
	})}
	rules := CompileBottom(cdds)
	if len(rules) != 1 || rules[0].Head[0].Pred != BottomPred {
		t.Fatalf("CompileBottom = %v", rules)
	}
	if err := rules[0].Validate(); err != nil {
		t.Errorf("compiled rule invalid: %v", err)
	}
}

func TestAnswers(t *testing.T) {
	s, tgds, _ := fig1b(t)
	// Q(W) :- prescribed(W, John): certain answers must include the derived
	// Nsaids prescription.
	body := []logic.Atom{logic.NewAtom("prescribed", logic.V("W"), logic.C("John"))}
	ans, err := Answers(s, tgds, body, []logic.Term{logic.V("W")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, tuple := range ans {
		got[tuple[0].Name] = true
	}
	if !got["Aspirin"] || !got["Nsaids"] || len(got) != 2 {
		t.Errorf("answers = %v", got)
	}
}

func TestAnswersFilterNulls(t *testing.T) {
	// Rule introduces a null; the certain-answer filter must drop it.
	s := store.MustFromAtoms([]logic.Atom{logic.NewAtom("p", logic.C("a"))})
	tg := logic.MustTGD(
		[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
		[]logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Z"))},
	)
	ans, err := Answers(s, []*logic.TGD{tg},
		[]logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Y"))},
		[]logic.Term{logic.V("Y")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Errorf("null answers leaked: %v", ans)
	}
}

func TestChaseDeterministicOnCopies(t *testing.T) {
	s, tgds, _ := fig1b(t)
	r1, err := Run(s, tgds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(s.Clone(), tgds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Store.Len() != r2.Store.Len() {
		t.Errorf("chase sizes differ: %d vs %d", r1.Store.Len(), r2.Store.Len())
	}
}

func TestBottomOptimizationStopsEarly(t *testing.T) {
	// A KB where the first derived fact already triggers ⊥ but many more
	// TGD firings would be possible: the optimized check must derive far
	// fewer facts than the naive full chase.
	atoms := []logic.Atom{
		logic.NewAtom("seed", logic.C("a0")),
		logic.NewAtom("bad", logic.C("a0")),
	}
	s := store.MustFromAtoms(atoms)
	var tgds []*logic.TGD
	// A chain seed -> s1 -> s2 -> ... -> s30 of unary derivations.
	prev := "seed"
	for i := 1; i <= 30; i++ {
		cur := "s" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		tgds = append(tgds, logic.MustTGD(
			[]logic.Atom{logic.NewAtom(prev, logic.V("X"))},
			[]logic.Atom{logic.NewAtom(cur, logic.V("X"))},
		))
		prev = cur
	}
	cdds := []*logic.CDD{logic.MustCDD([]logic.Atom{
		logic.NewAtom("seed", logic.V("X")),
		logic.NewAtom("bad", logic.V("X")),
	})}
	ok, err := IsConsistentOpt(s, tgds, cdds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("optimized check missed base-level violation")
	}
}

func TestExistsSeededViaChaseHeads(t *testing.T) {
	// Regression companion for fire(): seeded existence must respect the
	// frontier bindings (not just any head match).
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("q", logic.C("b"), logic.C("z")),
	})
	head := []logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Z"))}
	if homo.ExistsSeeded(s, head, logic.Subst{logic.V("X"): logic.C("a")}) {
		t.Error("seeded existence ignored binding")
	}
	if !homo.ExistsSeeded(s, head, logic.Subst{logic.V("X"): logic.C("b")}) {
		t.Error("seeded existence missed match")
	}
}

func TestExplain(t *testing.T) {
	// Chain p -> q -> r: explaining r shows the full derivation.
	s := store.MustFromAtoms([]logic.Atom{logic.NewAtom("p", logic.C("a"))})
	rules := []*logic.TGD{
		{Label: "step1",
			Body: []logic.Atom{logic.NewAtom("p", logic.V("X"))},
			Head: []logic.Atom{logic.NewAtom("q", logic.V("X"))}},
		{Label: "step2",
			Body: []logic.Atom{logic.NewAtom("q", logic.V("X"))},
			Head: []logic.Atom{logic.NewAtom("r", logic.V("X"))}},
	}
	res, err := Run(s, rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rid store.FactID = -1
	for _, id := range res.Derived() {
		if res.Store.FactRef(id).Pred == "r" {
			rid = id
		}
	}
	out := res.Explain(rid)
	for _, want := range []string{"r(a)", "step2", "q(a)", "step1", "p(a)", "base fact"} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
	// Base facts explain as themselves.
	if !strings.Contains(res.Explain(0), "base fact #0") {
		t.Error("base explanation wrong")
	}
	// Unlabeled rules fall back to the rule text.
	rules[0].Label = ""
	res2, err := Run(s, rules, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var qid store.FactID = -1
	for _, id := range res2.Derived() {
		if res2.Store.FactRef(id).Pred == "q" {
			qid = id
		}
	}
	if !strings.Contains(res2.Explain(qid), "[tgd]") {
		t.Error("unlabeled rule not rendered")
	}
}
