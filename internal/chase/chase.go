// Package chase implements the restricted (standard) chase for
// weakly-acyclic TGDs, with per-fact provenance, plus the two consistency
// checks of the paper: the naive one (full chase, then evaluate every CDD
// body) and CheckConsistency-Opt (§5), which compiles CDDs into ⊥-headed
// rules and aborts the chase the moment ⊥ is derived.
package chase

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"kbrepair/internal/homo"
	"kbrepair/internal/logic"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/par"
	"kbrepair/internal/store"
)

// Pipeline instrumentation (see README "Observability" for the inventory).
// Counters are always-on atomic adds; the run-latency histogram only costs
// a clock read when obs timing is enabled.
var (
	mRuns     = obs.NewCounter("chase.runs")
	mRounds   = obs.NewCounter("chase.rounds")
	mTriggers = obs.NewCounter("chase.trigger_checks")
	mFirings  = obs.NewCounter("chase.rule_firings")
	mDerived  = obs.NewCounter("chase.facts_derived")
	mNulls    = obs.NewCounter("chase.nulls_invented")
	// mDeferred counts triggers that crossed a round boundary: every trigger
	// collected in round ≥ 2 involves a fact derived the round before, i.e.
	// it existed conceptually the moment that fact was added but — by the
	// round-start snapshot discipline that keeps parallel collection
	// deterministic — was deferred to the next round's scan. This quantifies
	// the cost of the snapshot discipline (ROADMAP open item).
	mDeferred = obs.NewCounter("chase.triggers_deferred")
	// Speculative-fire/commit protocol counters. spec_firings counts
	// triggers that passed the applicability check against the round-start
	// snapshot (speculative phase, parallel); spec_revalidations counts the
	// commit-time re-checks of survivors whose head predicates gained facts
	// earlier in the same round; spec_rejected counts survivors those
	// re-checks killed. All three are deterministic across worker counts —
	// they depend only on round-start state and commit order.
	mSpecFirings  = obs.NewCounter("chase.spec_firings")
	mSpecReval    = obs.NewCounter("chase.spec_revalidations")
	mSpecRejected = obs.NewCounter("chase.spec_rejected")
	mRunTime      = obs.NewHistogram("chase.run_seconds", obs.LatencyBuckets)
	// gRound is the live-progress gauge read back by /statusz: the round
	// the chase currently in flight is on, reset to 0 when the run ends so
	// an idle process never reports the previous run's round forever.
	// Within one run only the round loop's goroutine writes it — the
	// parallel trigger-collection and speculative-firing fan-outs happen
	// strictly inside a round and never touch the gauge — so there is no
	// in-run write race; concurrent *runs* overwrite each other
	// last-writer-wins, which is fine for a dashboard.
	gRound = obs.NewGauge(obs.StatusChaseRound)
)

// Per-TGD attribution families: which rule is checking, firing and deriving
// (see internal/obs/attr). IDs are content-addressed by the rule's
// canonical string and cached by rule pointer.
var (
	attrTriggers = attr.NewCounterVec(attr.FamTriggerChecks)
	attrFirings  = attr.NewCounterVec(attr.FamRuleFirings)
	attrDerived  = attr.NewCounterVec(attr.FamFactsDerived)
)

// ruleAttrID resolves (and caches) the attribution ID of a rule. Cold path:
// called once per rule per round, only when attribution is enabled.
func ruleAttrID(r *logic.TGD) attr.ID {
	if id, ok := attr.OwnerID(r); ok {
		return id
	}
	return attr.BindOwner(r, r.String())
}

// ErrBudget is returned when the chase exceeds its safety budget. On a
// weakly-acyclic rule set this indicates a budget set too low; on arbitrary
// rules it is the guard against non-termination.
var ErrBudget = errors.New("chase: derivation budget exceeded")

// Derivation records how a derived fact came to be: the rule that fired,
// the base-store facts its body mapped onto (ids in the chase result store),
// and which head atom of the rule produced it.
type Derivation struct {
	Rule    *logic.TGD
	Parents []store.FactID
	HeadIdx int
}

// Result is the outcome of a chase run.
type Result struct {
	// Store contains the base facts (same ids as the input store) followed
	// by all derived facts.
	Store *store.Store
	// BaseLen is the number of base facts; ids < BaseLen are base facts.
	BaseLen int
	// Prov maps each derived fact id to its derivation.
	Prov map[store.FactID]Derivation
	// Rounds is the number of saturation rounds performed.
	Rounds int

	// supportMu guards supportMemo. Provenance is immutable once the run
	// returns, so the memo only ever grows; the lock makes the cache safe
	// for the concurrent per-CDD scans of conflict.All.
	supportMu sync.Mutex
	// supportMemo caches BaseSupport per fact: conflict materialization
	// walks the same shared provenance DAG once per chase-level conflict
	// fact, and without the memo each walk restarts from scratch.
	supportMemo map[store.FactID][]store.FactID
}

// Derived returns the ids of all derived (non-base) facts in ascending order.
func (r *Result) Derived() []store.FactID {
	out := make([]store.FactID, 0, r.Store.Len()-r.BaseLen)
	for id := store.FactID(r.BaseLen); int(id) < r.Store.Len(); id++ {
		out = append(out, id)
	}
	return out
}

// IsBase reports whether id denotes a base fact.
func (r *Result) IsBase(id store.FactID) bool { return int(id) < r.BaseLen }

// BaseSupport returns the set of base facts that (transitively) support the
// given fact: the fact itself if it is base, otherwise the union of the
// supports of its derivation parents. The result is sorted and duplicate
// free. Support sets are memoized per fact (provenance never changes after
// the run), so repeated queries over a shared derivation DAG — one per
// chase-level conflict fact in conflict materialization — each cost one
// map lookup instead of a full DAG walk.
func (r *Result) BaseSupport(id store.FactID) []store.FactID {
	r.supportMu.Lock()
	defer r.supportMu.Unlock()
	s := r.baseSupportLocked(id)
	// Callers own their result; the memo keeps the canonical copy.
	return append([]store.FactID(nil), s...)
}

// baseSupportLocked computes (and caches) the support set of id, memoizing
// every intermediate fact of the DAG walk. supportMu must be held.
func (r *Result) baseSupportLocked(id store.FactID) []store.FactID {
	if s, ok := r.supportMemo[id]; ok {
		return s
	}
	var out []store.FactID
	if r.IsBase(id) {
		out = []store.FactID{id}
	} else {
		seen := make(map[store.FactID]bool)
		for _, p := range r.Prov[id].Parents {
			for _, b := range r.baseSupportLocked(p) {
				if !seen[b] {
					seen[b] = true
					out = append(out, b)
				}
			}
		}
		sortIDs(out)
	}
	if r.supportMemo == nil {
		r.supportMemo = make(map[store.FactID][]store.FactID)
	}
	r.supportMemo[id] = out
	return out
}

// BaseSupportAll returns the union of base supports of several facts.
func (r *Result) BaseSupportAll(ids []store.FactID) []store.FactID {
	r.supportMu.Lock()
	defer r.supportMu.Unlock()
	seen := make(map[store.FactID]bool)
	var out []store.FactID
	for _, id := range ids {
		for _, b := range r.baseSupportLocked(id) {
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
			}
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []store.FactID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Options configure a chase run.
type Options struct {
	// MaxDerived caps the number of derived facts (0 means the default of
	// 1_000_000). The chase returns ErrBudget when exceeded.
	MaxDerived int
	// MaxRounds caps saturation rounds (0 means the default of 10_000).
	MaxRounds int
	// TraceParent is the span id the chase.run trace span is parented
	// under (0 for a root span) — how callers attribute chase time to the
	// question or scan that triggered it.
	TraceParent uint64
	// TraceQuiet suppresses the run's trace spans entirely. The Π-check
	// worker pool sets it: spans emitted from concurrent workers would
	// interleave nondeterministically in the trace, so those chases stay
	// silent and their time is attributed at the batch level instead.
	TraceQuiet bool
}

func (o Options) maxDerived() int {
	if o.MaxDerived <= 0 {
		return 1_000_000
	}
	return o.MaxDerived
}

func (o Options) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 10_000
	}
	return o.MaxRounds
}

// PrecompilePlans warms the process-wide homomorphism plan cache for every
// conjunction the pipeline derives from the rules — TGD bodies, TGD heads
// (seed-specialized on the frontier variables, which every head check binds),
// CDD bodies and the memoized ⊥-rules — against a representative store.
//
// The join order of a plan binds at its first compile, so this must run at a
// deterministic sequential point before any parallel fan-out can compile as
// a side effect: the Π-check worker pool chases clone stores that differ by
// the fix under test, and letting the first compile race there would tie the
// chosen order (and the resulting node counts) to worker scheduling.
func PrecompilePlans(base *store.Store, tgds []*logic.TGD, cdds []*logic.CDD) {
	rules := tgds
	if len(cdds) > 0 {
		rules = append(append([]*logic.TGD(nil), tgds...), CompileBottom(cdds)...)
	}
	for _, r := range rules {
		homo.CachedPlanWith(homo.CacheKey{Owner: r, Tag: homo.TagBody}, r.Body,
			homo.CompileOpts{Stats: base})
		homo.CachedPlanWith(homo.CacheKey{Owner: r, Tag: homo.TagHead}, r.Head,
			homo.CompileOpts{Stats: base, Prebound: r.FrontierVars()})
	}
	for _, c := range cdds {
		homo.CachedPlanWith(homo.CacheKey{Owner: c, Tag: homo.TagBody}, c.Body,
			homo.CompileOpts{Stats: base})
	}
}

// Run computes the restricted chase of the base store under the given TGDs.
// The base store is not modified; the result store is a clone extended with
// derived facts. A trigger (rule, body homomorphism) fires only if the head
// is not already satisfied by an extension of the frontier bindings — the
// standard-chase applicability condition that guarantees termination on
// weakly-acyclic rule sets.
func Run(base *store.Store, tgds []*logic.TGD, opts Options) (*Result, error) {
	return run(base, tgds, opts, "")
}

// run is the shared engine. If abortPred is non-empty, the chase stops as
// soon as a fact with that predicate is derived (used by the ⊥ optimization).
func run(base *store.Store, tgds []*logic.TGD, opts Options, abortPred string) (*Result, error) {
	mRuns.Inc()
	tm := obs.StartTimer()
	defer mRunTime.Since(tm)
	if obs.Tracing() && !opts.TraceQuiet {
		sp := obs.StartSpanUnder(opts.TraceParent, "chase.run",
			obs.Int("base_facts", base.Len()), obs.Int("tgds", len(tgds)))
		res, err := chaseLoop(base, tgds, opts, abortPred, sp)
		if res != nil {
			sp.End(obs.Int("rounds", res.Rounds), obs.Int("derived", len(res.Prov)))
		} else {
			sp.End()
		}
		return res, err
	}
	return chaseLoop(base, tgds, opts, abortPred, obs.Span{})
}

// chaseLoop is the saturation engine. Each round has three phases:
//
//  1. Trigger collection — one read-only homomorphism search per TGD
//     against the store as it stood at the start of the round, fanned out
//     over the par worker pool and merged in rule order. A trigger that
//     only exists because of a fact derived *within* the current round is
//     picked up next round through the delta (its newest fact is in this
//     round's delta), so nothing is lost by collecting against the round
//     snapshot.
//  2. Speculative firing — the applicability check and head instantiation
//     for every trigger, against the same round-start snapshot, fanned out
//     over the worker pool. Triggers share nothing: the check only reads
//     the snapshot, and invented nulls are named by firing coordinate
//     (round, rule, trigger, existential index — store.NullForCoord)
//     instead of being drawn from a shared counter, so one trigger's
//     result never depends on another's. Output is therefore
//     byte-identical at every worker count.
//  3. Commit — strictly sequential, in (rule, trigger) order. A surviving
//     speculative firing is re-validated against the live store only when
//     a predicate of its head gained facts earlier in the same round; the
//     applicability check reads nothing but head-predicate indexes, so
//     without such an overlap the snapshot answer still stands. This makes
//     the committed facts, their ids and their provenance identical to
//     those of a fully sequential run (see RunSequentialReference).
//
// The round gauge is written only here, between phases, never from the
// workers.
//
// sp is the enclosing chase.run trace span (inert when tracing is off):
// each round emits a chase.round child, so a slow chase decomposes
// round-by-round in the waterfall. Round spans, like all pipeline spans,
// are opened and closed on this goroutine only — the collection workers
// never touch the tracer — which keeps the trace byte-identical across
// worker counts.
func chaseLoop(base *store.Store, tgds []*logic.TGD, opts Options, abortPred string, sp obs.Span) (*Result, error) {
	res := &Result{
		Store:   base.Clone(),
		BaseLen: base.Len(),
		Prov:    make(map[store.FactID]Derivation),
	}
	if len(tgds) == 0 {
		return res, nil
	}
	// The chase-round gauge tracks the run in flight; once the run is over
	// the process is idle again and /statusz must not keep reporting the
	// last round forever.
	defer gRound.Set(0)
	s := res.Store

	// Round 0 works on all facts; later rounds only consider triggers that
	// involve at least one fact from the previous round's delta.
	delta := s.IDs()
	budget := opts.maxDerived()

	// Per-rule invariants hoisted out of the round loop: FrontierVars and
	// ExistentialVars compute fresh slices on every call, the deduped
	// head-predicate list drives the commit-phase revalidation test, and the
	// body/head plans are resolved once per run so the per-trigger hot path
	// never rebuilds a cache key. Head plans are seed-specialized on the
	// frontier variables — every applicability check binds exactly those.
	front := make([][]logic.Term, len(tgds))
	exist := make([][]logic.Term, len(tgds))
	headPreds := make([][]string, len(tgds))
	bodyPlans := make([]*homo.Plan, len(tgds))
	headPlans := make([]*homo.Plan, len(tgds))
	for i, r := range tgds {
		front[i] = r.FrontierVars()
		exist[i] = r.ExistentialVars()
		seen := make(map[string]bool, len(r.Head))
		for _, h := range r.Head {
			if !seen[h.Pred] {
				seen[h.Pred] = true
				headPreds[i] = append(headPreds[i], h.Pred)
			}
		}
		bodyPlans[i] = homo.CachedPlanWith(homo.CacheKey{Owner: r, Tag: homo.TagBody}, r.Body,
			homo.CompileOpts{Stats: s})
		headPlans[i] = homo.CachedPlanWith(homo.CacheKey{Owner: r, Tag: homo.TagHead}, r.Head,
			homo.CompileOpts{Stats: s, Prebound: front[i]})
	}

	for len(delta) > 0 {
		res.Rounds++
		mRounds.Inc()
		gRound.Set(int64(res.Rounds))
		flight.Record(flight.KindChaseRoundStart, int64(res.Rounds), int64(len(delta)), 0, 0)
		flight.ObserveChaseRound(res.Rounds, opts.maxRounds())
		rsp := sp.Child("chase.round")
		if res.Rounds > opts.maxRounds() {
			// Balance the just-emitted round-start event: every exit path
			// owes a round-end, marked with why the round ended early.
			flight.RecordNote4(flight.KindChaseRoundEnd, int64(res.Rounds), 0, 0, 0, flight.RoundStatusBudget)
			rsp.End()
			return res, fmt.Errorf("%w: more than %d rounds", ErrBudget, opts.maxRounds())
		}
		deltaSet := make(map[store.FactID]bool, len(delta))
		for _, id := range delta {
			deltaSet[id] = true
		}
		all := res.Rounds == 1
		perRule := par.MapNamed("chase.collect", len(tgds), func(i int) []homo.Match {
			return collectTriggers(s, bodyPlans[i], all, deltaSet)
		})
		// Every trigger surviving the delta filter in round ≥ 2 involves a
		// fact from the previous round's delta: it was deferred across the
		// round-start snapshot boundary.
		var deferred int64
		if !all {
			for _, ms := range perRule {
				deferred += int64(len(ms))
			}
			mDeferred.Add(deferred)
		}
		// Phase 2 — speculative firing against the round-start snapshot,
		// fanned out over the worker pool in flattened (rule, trigger)
		// order. Attribution IDs are resolved up front (the resolve may
		// intern, which takes a lock) so workers only do atomic adds.
		var flatRule, flatTrig []int
		for ri := range tgds {
			for ti := range perRule[ri] {
				flatRule = append(flatRule, ri)
				flatTrig = append(flatTrig, ti)
			}
		}
		rids := make([]attr.ID, len(tgds))
		if attr.Enabled() {
			for ri, rule := range tgds {
				if len(perRule[ri]) > 0 {
					rids[ri] = ruleAttrID(rule)
				}
			}
		}
		specs := par.MapNamed("chase.spec", len(flatRule), func(k int) specFiring {
			ri, ti := flatRule[k], flatTrig[k]
			return speculate(s, tgds[ri], headPlans[ri], rids[ri], perRule[ri][ti], res.Rounds, ri, ti, front[ri], exist[ri])
		})

		// Phase 3 — sequential commit in the same (rule, trigger) order the
		// old engine fired in. roundPreds tracks which predicates gained
		// facts this round; only a head overlapping it needs re-validation
		// against the live store.
		var newDelta []store.FactID
		var firings int64
		roundPreds := make(map[string]bool)
		for k, f := range specs {
			if !f.ok {
				continue
			}
			ri := flatRule[k]
			rule := tgds[ri]
			overlap := false
			for _, p := range headPreds[ri] {
				if roundPreds[p] {
					overlap = true
					break
				}
			}
			if overlap {
				mSpecReval.Inc()
				if headPlans[ri].ExistsSeeded(s, f.frontier) {
					mSpecRejected.Inc()
					continue
				}
			}
			if budget-len(res.Prov) < len(rule.Head) {
				flight.RecordNote4(flight.KindChaseRoundEnd, int64(res.Rounds), int64(len(newDelta)), deferred, firings, flight.RoundStatusBudget)
				rsp.End()
				return res, ErrBudget
			}
			mFirings.Inc()
			attrFirings.Add(rids[ri], 1)
			mNulls.Add(int64(f.nulls))
			ids, err := s.AddBatch(f.atoms)
			if err != nil {
				flight.RecordNote4(flight.KindChaseRoundEnd, int64(res.Rounds), int64(len(newDelta)), deferred, firings, flight.RoundStatusError)
				rsp.End()
				return res, fmt.Errorf("chase: firing %s: %w", rule, err)
			}
			firings++
			mDerived.Add(int64(len(ids)))
			attrDerived.Add(rids[ri], int64(len(ids)))
			parents := perRule[ri][flatTrig[k]].Facts
			for i, id := range ids {
				res.Prov[id] = Derivation{Rule: rule, Parents: parents, HeadIdx: i}
				newDelta = append(newDelta, id)
				roundPreds[f.atoms[i].Pred] = true
				if abortPred != "" && f.atoms[i].Pred == abortPred {
					flight.RecordNote4(flight.KindChaseRoundEnd, int64(res.Rounds), int64(len(newDelta)), deferred, firings, flight.RoundStatusAborted)
					if rsp.Live() {
						rsp.End(obs.Int("round", res.Rounds),
							obs.Int("derived", len(newDelta)),
							obs.Int64("firings", firings),
							obs.Bool("aborted", true))
					}
					return res, nil
				}
			}
		}
		flight.Record(flight.KindChaseRoundEnd, int64(res.Rounds), int64(len(newDelta)), deferred, firings)
		if rsp.Live() {
			rsp.End(obs.Int("round", res.Rounds),
				obs.Int("derived", len(newDelta)),
				obs.Int64("firings", firings))
		}
		delta = newDelta
	}
	return res, nil
}

// collectTriggers gathers body homomorphisms for the rule. In the first
// round all homomorphisms are collected; in later rounds only those mapping
// at least one body atom onto a delta fact. It only reads the store, so the
// per-rule calls of one round may run concurrently. Matches are cloned
// because the store is mutated later, while firing.
func collectTriggers(s *store.Store, plan *homo.Plan, all bool, deltaSet map[store.FactID]bool) []homo.Match {
	var out []homo.Match
	plan.ForEach(s, func(m homo.Match) bool {
		if !all {
			hit := false
			for _, f := range m.Facts {
				if deltaSet[f] {
					hit = true
					break
				}
			}
			if !hit {
				return true
			}
		}
		out = append(out, m.Clone())
		return true
	})
	return out
}

// specFiring is the speculative phase's verdict on one trigger: either a
// skip (head already satisfied at the round-start snapshot) or a fully
// instantiated head — safe(H) with coordinate-named nulls — ready to commit.
type specFiring struct {
	ok       bool
	frontier logic.Subst
	atoms    []logic.Atom
	nulls    int
}

// speculate runs the restricted-chase applicability check and the head
// instantiation for one trigger against the round-start snapshot. It only
// reads the store and shares nothing mutable with other triggers, so the
// per-trigger calls of one round may run concurrently (head plans keep
// per-search state in a pool). Invented nulls are named by the firing
// coordinate via store.NullForCoord, so their labels do not depend on which
// other triggers fire, or in what order.
func speculate(s *store.Store, rule *logic.TGD, headPlan *homo.Plan, rid attr.ID, m homo.Match, round, ri, ti int, front, exist []logic.Term) specFiring {
	mTriggers.Inc()
	attrTriggers.Add(rid, 1)
	frontier := m.Subst.Restrict(front)
	if headPlan.ExistsSeeded(s, frontier) {
		return specFiring{}
	}
	mSpecFirings.Inc()
	inst := frontier
	if len(exist) > 0 {
		inst = frontier.Clone()
		for x, z := range exist {
			inst[z] = s.NullForCoord(round, ri, ti, x)
		}
	}
	atoms := make([]logic.Atom, len(rule.Head))
	for i, h := range rule.Head {
		atoms[i] = inst.Apply(h)
	}
	return specFiring{ok: true, frontier: frontier, atoms: atoms, nulls: len(exist)}
}

// IsConsistentNaive runs the full chase and then evaluates every CDD body on
// the chased store — the paper's CheckConsistency. It returns whether the KB
// is consistent.
func IsConsistentNaive(base *store.Store, tgds []*logic.TGD, cdds []*logic.CDD, opts Options) (bool, error) {
	res, err := Run(base, tgds, opts)
	if err != nil {
		return false, err
	}
	for _, c := range cdds {
		if homo.CachedPlanWith(homo.CacheKey{Owner: c, Tag: homo.TagBody}, c.Body,
			homo.CompileOpts{Stats: res.Store}).Exists(res.Store) {
			return false, nil
		}
	}
	return true, nil
}

// BottomPred is the reserved predicate used by the ⊥ optimization. It cannot
// clash with user predicates because the parser rejects "!" as an
// identifier.
const BottomPred = "⊥"

// bottomRules memoizes the ⊥-rule compiled from each CDD. Stable rule
// pointers matter beyond saving the allocation: the homomorphism plan cache
// is keyed by rule identity, and IsConsistentOpt runs once per Π-check —
// fresh TGD pointers on every call would compile (and leak) a new plan per
// consistency check instead of reusing one per CDD per session.
var bottomRules sync.Map // *logic.CDD -> *logic.TGD

// CompileBottom turns CDDs into TGDs with head ⊥() so that the chase itself
// detects inconsistency (CheckConsistency-Opt, §5). The returned rules are
// memoized per CDD: repeated calls yield pointer-identical TGDs.
func CompileBottom(cdds []*logic.CDD) []*logic.TGD {
	out := make([]*logic.TGD, len(cdds))
	for i, c := range cdds {
		if v, ok := bottomRules.Load(c); ok {
			out[i] = v.(*logic.TGD)
			continue
		}
		t := &logic.TGD{
			Label: "⊥:" + c.Label,
			Body:  append([]logic.Atom(nil), c.Body...),
			Head:  []logic.Atom{logic.NewAtom(BottomPred)},
		}
		v, _ := bottomRules.LoadOrStore(c, t)
		out[i] = v.(*logic.TGD)
	}
	return out
}

// RelevantTGDs returns the TGDs that can (transitively) contribute to a
// CDD violation: starting from the predicates in CDD bodies, a TGD is
// relevant if its head mentions a relevant predicate, and then its body
// predicates become relevant too. Facts derived by irrelevant TGDs can
// never appear in — or feed a derivation that appears in — a CDD-body
// homomorphism, so consistency checking and conflict detection may safely
// chase only the relevant rules. The result preserves input order.
func RelevantTGDs(tgds []*logic.TGD, cdds []*logic.CDD) []*logic.TGD {
	relevant := make(map[string]bool)
	for _, c := range cdds {
		for _, a := range c.Body {
			relevant[a.Pred] = true
		}
	}
	selected := make([]bool, len(tgds))
	for changed := true; changed; {
		changed = false
		for i, t := range tgds {
			if selected[i] {
				continue
			}
			hit := false
			for _, h := range t.Head {
				if relevant[h.Pred] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			selected[i] = true
			changed = true
			for _, b := range t.Body {
				if !relevant[b.Pred] {
					relevant[b.Pred] = true
				}
			}
		}
	}
	out := make([]*logic.TGD, 0, len(tgds))
	for i, t := range tgds {
		if selected[i] {
			out = append(out, t)
		}
	}
	return out
}

// IsConsistentOpt is CheckConsistency-Opt: it chases with CDDs compiled to
// ⊥-rules — restricted to the TGDs relevant to the CDDs — and stops as
// early as possible. It returns whether the KB is consistent.
func IsConsistentOpt(base *store.Store, tgds []*logic.TGD, cdds []*logic.CDD, opts Options) (bool, error) {
	// Fast path: a CDD already violated by the base facts needs no chase.
	for _, c := range cdds {
		if homo.CachedPlanWith(homo.CacheKey{Owner: c, Tag: homo.TagBody}, c.Body,
			homo.CompileOpts{Stats: base}).Exists(base) {
			return false, nil
		}
	}
	tgds = RelevantTGDs(tgds, cdds)
	if len(tgds) == 0 {
		return true, nil
	}
	rules := append(append([]*logic.TGD(nil), tgds...), CompileBottom(cdds)...)
	res, err := run(base, rules, opts, BottomPred)
	if err != nil {
		return false, err
	}
	return len(res.Store.ByPredicate(BottomPred)) == 0, nil
}

// Answers computes the certain answers of a conjunctive query (body with
// distinguished variables answVars) over the KB (F, ΣT): it chases F and
// evaluates the query on the result, keeping only the all-constant tuples —
// the paper's Q(F, ΣT).
func Answers(base *store.Store, tgds []*logic.TGD, body []logic.Atom, answVars []logic.Term, opts Options) ([][]logic.Term, error) {
	res, err := Run(base, tgds, opts)
	if err != nil {
		return nil, err
	}
	all := homo.Answers(res.Store, body, answVars)
	out := all[:0]
	for _, tuple := range all {
		ok := true
		for _, t := range tuple {
			if !t.IsConst() {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, tuple)
		}
	}
	return out, nil
}
