package chase

import (
	"fmt"
	"testing"

	"kbrepair/internal/logic"
	"kbrepair/internal/par"
	"kbrepair/internal/store"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	par.SetWorkers(n)
	t.Cleanup(func() { par.SetWorkers(0) })
}

// diamondResult builds a diamond-shaped derivation:
//
//	base a(x) ── b(x) ──┐
//	        └── c(x) ──┴─ d(x)
//
// d is derived from b and c, which are both derived from the single base
// fact a — so d's support walk visits a twice through shared provenance.
func diamondResult(t *testing.T) *Result {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("a", logic.C("x")),
	})
	tgds := []*logic.TGD{
		logic.MustTGD(
			[]logic.Atom{logic.NewAtom("a", logic.V("X"))},
			[]logic.Atom{logic.NewAtom("b", logic.V("X"))}),
		logic.MustTGD(
			[]logic.Atom{logic.NewAtom("a", logic.V("X"))},
			[]logic.Atom{logic.NewAtom("c", logic.V("X"))}),
		logic.MustTGD(
			[]logic.Atom{logic.NewAtom("b", logic.V("X")), logic.NewAtom("c", logic.V("X"))},
			[]logic.Atom{logic.NewAtom("d", logic.V("X"))}),
	}
	res, err := Run(s, tgds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBaseSupportDiamondMemoized checks both the correctness of support
// sets over a diamond-shaped derivation and that the memo actually kicks
// in: after one BaseSupport call, every fact of the DAG must be cached, and
// repeated queries return equal, independently-owned slices.
func TestBaseSupportDiamondMemoized(t *testing.T) {
	res := diamondResult(t)
	ds := res.Store.ByPredicate("d")
	if len(ds) != 1 {
		t.Fatalf("d derived %d times, want 1", len(ds))
	}
	d := ds[0]
	sup := res.BaseSupport(d)
	if len(sup) != 1 || sup[0] != 0 {
		t.Fatalf("BaseSupport(d) = %v, want [0] (the single base fact, once)", sup)
	}
	// The walk memoizes every intermediate node of the DAG.
	res.supportMu.Lock()
	cached := len(res.supportMemo)
	res.supportMu.Unlock()
	if want := res.Store.Len(); cached != want {
		t.Errorf("memo holds %d entries after one query, want %d (whole DAG)", cached, want)
	}
	// Cached results must not alias caller-visible slices.
	sup2 := res.BaseSupport(d)
	sup2[0] = 99
	if sup3 := res.BaseSupport(d); sup3[0] != 0 {
		t.Error("BaseSupport returned an aliased slice; caller mutation corrupted the memo")
	}
	// Union over several facts agrees with the per-fact sets.
	all := res.BaseSupportAll(append(res.Derived(), 0))
	if len(all) != 1 || all[0] != 0 {
		t.Errorf("BaseSupportAll = %v, want [0]", all)
	}
}

// deepChainKB builds a linear TGD chain p0 → p1 → … → pDepth over several
// seed facts, giving the chase multiple rounds and multiple rules per
// round to collect triggers for.
func deepChainKB(t testing.TB, depth, seeds int) (*store.Store, []*logic.TGD) {
	t.Helper()
	s := store.New()
	for i := 0; i < seeds; i++ {
		s.MustAdd(logic.NewAtom("p0", logic.C(fmt.Sprintf("v%d", i)), logic.C(fmt.Sprintf("w%d", i))))
	}
	var tgds []*logic.TGD
	for d := 0; d < depth; d++ {
		tgds = append(tgds, logic.MustTGD(
			[]logic.Atom{logic.NewAtom(fmt.Sprintf("p%d", d), logic.V("X"), logic.V("Y"))},
			[]logic.Atom{logic.NewAtom(fmt.Sprintf("p%d", d+1), logic.V("Y"), logic.V("Z"))}))
	}
	return s, tgds
}

// chaseTranscript canonicalizes a chase result: every fact in id order
// plus every derivation edge.
func chaseTranscript(res *Result) string {
	out := res.Store.String()
	for _, id := range res.Derived() {
		d := res.Prov[id]
		out += fmt.Sprintf("%d<=%s%v@%d\n", id, d.Rule.Label, d.Parents, d.HeadIdx)
	}
	return fmt.Sprintf("rounds=%d\n%s", res.Rounds, out)
}

// TestChaseDeterministicAcrossWorkers runs a multi-round, multi-rule,
// null-inventing chase at several worker counts and requires byte-identical
// results: same facts, same ids, same null labels, same provenance, same
// round count. The sequential commit order pins ids and provenance, and
// coordinate-based null naming (store.NullForCoord) pins the labels — so
// both trigger collection and speculative firing may fan out freely.
func TestChaseDeterministicAcrossWorkers(t *testing.T) {
	withWorkers(t, 1)
	s, tgds := deepChainKB(t, 5, 4)
	base, err := Run(s, tgds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Prov) == 0 || base.Rounds < 2 {
		t.Fatalf("weak workload: %d derived in %d rounds", len(base.Prov), base.Rounds)
	}
	want := chaseTranscript(base)
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		res, err := Run(s, tgds, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := chaseTranscript(res); got != want {
			t.Errorf("workers=%d: chase transcript differs\n--- workers=1\n%s\n--- workers=%d\n%s", w, want, w, got)
		}
	}
}

// TestChaseRoundGaugeResets asserts the /statusz chase-round gauge is
// reset when a run completes — a finished process must read as idle, not
// stuck on the last run's final round.
func TestChaseRoundGaugeResets(t *testing.T) {
	s, tgds := deepChainKB(t, 3, 2)
	res, err := Run(s, tgds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, want >= 2 so the gauge was set mid-run", res.Rounds)
	}
	if got := gRound.Value(); got != 0 {
		t.Errorf("chase.round gauge = %d after run completion, want 0", got)
	}
}
