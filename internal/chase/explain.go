package chase

import (
	"fmt"
	"strings"

	"kbrepair/internal/store"
)

// Explain renders the derivation tree of a fact as an indented,
// human-readable proof: base facts print as themselves, derived facts show
// the rule that fired and, recursively, the facts its body matched. Used
// by kbcheck to justify chase-discovered conflicts to the user.
func (r *Result) Explain(id store.FactID) string {
	var sb strings.Builder
	r.explain(&sb, id, 0, make(map[store.FactID]bool))
	return sb.String()
}

func (r *Result) explain(sb *strings.Builder, id store.FactID, depth int, onPath map[store.FactID]bool) {
	indent := strings.Repeat("  ", depth)
	atom := r.Store.FactRef(id)
	if r.IsBase(id) {
		fmt.Fprintf(sb, "%s%s  (base fact #%d)\n", indent, atom, id)
		return
	}
	if onPath[id] {
		fmt.Fprintf(sb, "%s%s  (already shown)\n", indent, atom)
		return
	}
	onPath[id] = true
	d := r.Prov[id]
	label := d.Rule.Label
	if label == "" {
		label = d.Rule.String()
	}
	fmt.Fprintf(sb, "%s%s  (derived by %s)\n", indent, atom, label)
	for _, p := range d.Parents {
		r.explain(sb, p, depth+1, onPath)
	}
	delete(onPath, id)
}
