//go:build !race

package conflict

const raceEnabled = false
