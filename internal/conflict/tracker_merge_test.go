package conflict

import (
	"fmt"
	"sort"
	"testing"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// mergeFixture builds a store with n independent direct conflicts under one
// two-atom CDD: p(a_i, b_i) joined by q(b_i, a_i). Each fact participates in
// exactly one conflict, so tracker updates churn single hyperedges.
func mergeFixture(tb testing.TB, n int) (*store.Store, []*logic.CDD) {
	tb.Helper()
	s := store.New()
	for i := 0; i < n; i++ {
		s.MustAdd(logic.NewAtom("p", logic.C(fmt.Sprintf("a%d", i)), logic.C(fmt.Sprintf("b%d", i))))
		s.MustAdd(logic.NewAtom("q", logic.C(fmt.Sprintf("b%d", i)), logic.C(fmt.Sprintf("a%d", i))))
	}
	cdds := []*logic.CDD{logic.MustCDD([]logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		logic.NewAtom("q", logic.V("Y"), logic.V("X")),
	})}
	return s, cdds
}

// TestTrackerOrderedInvariant churns the tracker through removals and
// re-additions and checks the incrementally maintained order stays exactly
// the sorted-by-key view of the conflict map after every step.
func TestTrackerOrderedInvariant(t *testing.T) {
	s, cdds := mergeFixture(t, 40)
	tr := NewTracker(s, cdds)
	if tr.Len() != 40 {
		t.Fatalf("initial conflicts = %d, want 40", tr.Len())
	}
	check := func(step string) {
		t.Helper()
		wantKeys := make([]string, 0, len(tr.conflicts))
		for k := range tr.conflicts {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		cs := tr.Conflicts()
		if len(cs) != len(wantKeys) {
			t.Fatalf("%s: Conflicts() len %d, map len %d", step, len(cs), len(wantKeys))
		}
		for i, c := range cs {
			if c.Key() != wantKeys[i] {
				t.Fatalf("%s: ordered[%d] = %s, want %s", step, i, c.Key(), wantKeys[i])
			}
			if tr.orderedKeys[i] != wantKeys[i] {
				t.Fatalf("%s: orderedKeys[%d] = %s, want %s", step, i, tr.orderedKeys[i], wantKeys[i])
			}
		}
	}
	check("initial")
	// Break conflicts by retargeting p facts (even ids), then restore them.
	for i := 0; i < 40; i += 3 {
		id := store.FactID(2 * i)
		old := s.MustSetValue(store.Position{Fact: id, Arg: 1}, logic.C("nowhere"))
		tr.Update(id)
		check(fmt.Sprintf("break %d", i))
		s.MustSetValue(store.Position{Fact: id, Arg: 1}, old)
		tr.Update(id)
		check(fmt.Sprintf("restore %d", i))
	}
	if tr.Len() != 40 {
		t.Fatalf("after churn conflicts = %d, want 40", tr.Len())
	}
}

// TestTrackerConflictsAllocGuard pins the keyed merge's point: reading the
// conflict set costs one copy, not a re-sort — a single allocation per call
// regardless of how much the tracker has churned.
func TestTrackerConflictsAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	s, cdds := mergeFixture(t, 100)
	tr := NewTracker(s, cdds)
	for i := 0; i < 100; i += 7 {
		id := store.FactID(2 * i)
		old := s.MustSetValue(store.Position{Fact: id, Arg: 1}, logic.C("nowhere"))
		tr.Update(id)
		s.MustSetValue(store.Position{Fact: id, Arg: 1}, old)
		tr.Update(id)
	}
	if n := testing.AllocsPerRun(100, func() { tr.Conflicts() }); n > 1 {
		t.Errorf("Conflicts() allocates %v allocs/op, want <= 1 (single copy, no re-sort)", n)
	}
}

// BenchmarkTrackerMerge is the satellite's time/allocation guard for the
// keyed hyperedge merge: one full update cycle — break a conflict, restore
// it, read the ordered set — on a tracker holding n live conflicts. The
// pre-keyed-merge implementation re-sorted all n conflicts inside every
// Conflicts() call, which showed up here as O(n log n) time and n-sized
// allocations per op.
func BenchmarkTrackerMerge(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("conflicts%d", n), func(b *testing.B) {
			s, cdds := mergeFixture(b, n)
			tr := NewTracker(s, cdds)
			pos := store.Position{Fact: 0, Arg: 1}
			orig := s.Value(pos)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.MustSetValue(pos, logic.C("nowhere"))
				tr.Update(0)
				s.MustSetValue(pos, orig)
				tr.Update(0)
				if cs := tr.Conflicts(); len(cs) != n {
					b.Fatalf("conflicts = %d, want %d", len(cs), n)
				}
			}
		})
	}
}
