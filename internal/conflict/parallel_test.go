package conflict

import (
	"fmt"
	"math/rand"
	"testing"

	"kbrepair/internal/chase"
	"kbrepair/internal/logic"
	"kbrepair/internal/par"
	"kbrepair/internal/store"
)

// randomConflictKB builds a synthetic store plus CDD set with plenty of
// overlapping violations, so parallel detection has real fan-out.
func randomConflictKB(t testing.TB, seed int64, facts, cdds int) (*store.Store, []*logic.CDD) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	consts := make([]logic.Term, 6)
	for i := range consts {
		consts[i] = logic.C(fmt.Sprintf("c%d", i))
	}
	s := store.New()
	for i := 0; i < facts; i++ {
		pred := fmt.Sprintf("p%d", r.Intn(4))
		s.MustAdd(logic.NewAtom(pred, consts[r.Intn(6)], consts[r.Intn(6)]))
	}
	var out []*logic.CDD
	for i := 0; i < cdds; i++ {
		a := fmt.Sprintf("p%d", r.Intn(4))
		b := fmt.Sprintf("p%d", r.Intn(4))
		out = append(out, logic.MustCDD([]logic.Atom{
			logic.NewAtom(a, logic.V("X"), logic.V("Y")),
			logic.NewAtom(b, logic.V("Y"), logic.V("Z")),
		}))
	}
	return s, out
}

// conflictKeys canonicalizes a conflict slice, preserving order.
func conflictKeys(cs []*Conflict) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = fmt.Sprintf("%s|%v|%v|%v", c.Key(), c.Facts, c.BaseFacts, c.Direct)
	}
	return out
}

func withWorkers(t *testing.T, n int) {
	t.Helper()
	par.SetWorkers(n)
	t.Cleanup(func() { par.SetWorkers(0) })
}

// TestAllNaiveDeterministicAcrossWorkers asserts the core merge contract
// of parallel detection: the conflict list — contents *and* order — is
// identical for every worker count.
func TestAllNaiveDeterministicAcrossWorkers(t *testing.T) {
	s, cdds := randomConflictKB(t, 7, 60, 12)
	withWorkers(t, 1)
	want := conflictKeys(AllNaive(s, cdds))
	if len(want) == 0 {
		t.Fatal("workload has no conflicts; test would be vacuous")
	}
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		got := conflictKeys(AllNaive(s, cdds))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d conflicts, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: conflict %d = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

// TestAllDeterministicAcrossWorkers does the same for chase-level
// detection, where the parallel scans additionally share the chase
// result's memoized base-support cache.
func TestAllDeterministicAcrossWorkers(t *testing.T) {
	s, tgds, cdds := fig1bKB(t)
	withWorkers(t, 1)
	base, _, err := All(s, tgds, cdds, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := conflictKeys(base)
	if len(want) == 0 {
		t.Fatal("no chase-level conflicts; test would be vacuous")
	}
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		cs, _, err := All(s, tgds, cdds, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := conflictKeys(cs)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d conflicts, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: conflict %d = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

// TestTrackerUpdateDeterministicAcrossWorkers drives the incremental
// tracker through a sequence of store updates at different worker counts
// and asserts the maintained conflict set stays identical.
func TestTrackerUpdateDeterministicAcrossWorkers(t *testing.T) {
	run := func(w int) []string {
		par.SetWorkers(w)
		s, cdds := randomConflictKB(t, 11, 40, 8)
		tr := NewTracker(s, cdds)
		r := rand.New(rand.NewSource(3))
		consts := []logic.Term{logic.C("c0"), logic.C("c1"), logic.C("u")}
		for i := 0; i < 10; i++ {
			id := store.FactID(r.Intn(s.Len()))
			s.MustSetValue(store.Position{Fact: id, Arg: r.Intn(2)}, consts[r.Intn(3)])
			tr.Update(id)
		}
		return conflictKeys(tr.Conflicts())
	}
	withWorkers(t, 1)
	want := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d conflicts, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: conflict %d = %q, want %q", w, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkTrackerConflicts pins the sortStrings → sort.Strings fix: the
// deterministic ordering of Tracker.Conflicts runs on every question via
// PositionRanks, and the previous hand-rolled insertion sort made it
// quadratic in the conflict count.
func BenchmarkTrackerConflicts(b *testing.B) {
	s, cdds := randomConflictKB(b, 5, 400, 16)
	tr := NewTracker(s, cdds)
	if tr.Len() < 100 {
		b.Fatalf("only %d conflicts; benchmark needs a large set", tr.Len())
	}
	b.ReportMetric(float64(tr.Len()), "conflicts")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cs := tr.Conflicts(); len(cs) != tr.Len() {
			b.Fatal("wrong length")
		}
	}
}

// BenchmarkAllNaive measures one full detection scan — the unit the
// worker pool fans out per CDD.
func BenchmarkAllNaive(b *testing.B) {
	s, cdds := randomConflictKB(b, 5, 400, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cs := AllNaive(s, cdds); len(cs) == 0 {
			b.Fatal("no conflicts")
		}
	}
}
