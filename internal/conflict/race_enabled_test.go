//go:build race

package conflict

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (the detector's shadow
// state allocates).
const raceEnabled = true
