package conflict

import (
	"sort"

	"kbrepair/internal/homo"
	"kbrepair/internal/logic"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/par"
	"kbrepair/internal/store"
)

// Tracker maintains the set of naive conflicts of a mutable store under
// position updates — the UpdateConflicts optimization of §5. Instead of
// re-evaluating every CDD after each fix, it removes the conflicts touching
// the updated fact and re-evaluates only the CDDs whose bodies can map an
// atom onto the updated fact.
type Tracker struct {
	base      *store.Store
	cdds      []*logic.CDD
	conflicts map[string]*Conflict
	byFact    map[store.FactID]map[string]bool
	// ordered/orderedKeys hold the live conflicts sorted by key, maintained
	// incrementally by binary-search insertion and removal — the keyed merge
	// that replaced re-sorting the whole set on every Conflicts call. Keys
	// are computed once at insertion (Conflict.Key formats a string) and
	// kept parallel to the conflicts.
	ordered     []*Conflict
	orderedKeys []string
	// byPred maps a predicate name to the indexes of CDDs mentioning it in
	// their body (the Σ_C^A of §5, at predicate granularity).
	byPred map[string][]int
	// pinPlans[ci][ai] is the compiled body-minus-atom-ai conjunction of
	// CDD ci, precomputed so Update's hot path never touches the plan
	// cache. Plans are seed-specialized: the pinned atom's variables are
	// pre-bound slots, so the orderer costs the rest-conjunction under the
	// bindings every pinned search actually starts with.
	pinPlans [][]*homo.Plan
}

// NewTracker computes the initial naive conflicts of the store and prepares
// the incremental indexes. The tracker observes — but does not own — the
// store: callers mutate it through store.SetValue and then call Update with
// the affected fact.
func NewTracker(base *store.Store, cdds []*logic.CDD) *Tracker {
	return NewTrackerUnder(0, base, cdds)
}

// NewTrackerUnder is NewTracker with the initial conflict scan's trace span
// parented under the given span id (0 for a root).
func NewTrackerUnder(parent uint64, base *store.Store, cdds []*logic.CDD) *Tracker {
	t := &Tracker{
		base:      base,
		cdds:      cdds,
		conflicts: make(map[string]*Conflict),
		byFact:    make(map[store.FactID]map[string]bool),
		byPred:    make(map[string][]int),
	}
	t.pinPlans = make([][]*homo.Plan, len(cdds))
	for i, c := range cdds {
		seen := make(map[string]bool)
		for _, a := range c.Body {
			if !seen[a.Pred] {
				seen[a.Pred] = true
				t.byPred[a.Pred] = append(t.byPred[a.Pred], i)
			}
		}
		// Pinned plans are pure functions of (cdd, atom index, prebound
		// set), so they go through the process-wide cache and are shared
		// across trackers.
		t.pinPlans[i] = make([]*homo.Plan, len(c.Body))
		for ai := range c.Body {
			rest := make([]logic.Atom, 0, len(c.Body)-1)
			for j, a := range c.Body {
				if j != ai {
					rest = append(rest, a)
				}
			}
			var pre []logic.Term
			for _, arg := range c.Body[ai].Args {
				if arg.IsVar() && !containsTerm(pre, arg) {
					pre = append(pre, arg)
				}
			}
			t.pinPlans[i][ai] = homo.CachedPlanWith(
				homo.CacheKey{Owner: c, Tag: homo.TagPinned + ai}, rest,
				homo.CompileOpts{Stats: base, Prebound: pre})
		}
	}
	for _, c := range AllNaiveUnder(parent, base, cdds) {
		t.add(c)
	}
	return t
}

func containsTerm(ts []logic.Term, t logic.Term) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

func (t *Tracker) add(c *Conflict) {
	k := c.Key()
	if _, dup := t.conflicts[k]; dup {
		return
	}
	mEdgeAdd.Inc()
	t.conflicts[k] = c
	i := sort.SearchStrings(t.orderedKeys, k)
	t.orderedKeys = append(t.orderedKeys, "")
	copy(t.orderedKeys[i+1:], t.orderedKeys[i:])
	t.orderedKeys[i] = k
	t.ordered = append(t.ordered, nil)
	copy(t.ordered[i+1:], t.ordered[i:])
	t.ordered[i] = c
	for _, f := range c.BaseFacts {
		m := t.byFact[f]
		if m == nil {
			m = make(map[string]bool)
			t.byFact[f] = m
		}
		m[k] = true
	}
}

func (t *Tracker) remove(key string) {
	c, ok := t.conflicts[key]
	if !ok {
		return
	}
	mEdgeDel.Inc()
	delete(t.conflicts, key)
	if i := sort.SearchStrings(t.orderedKeys, key); i < len(t.orderedKeys) && t.orderedKeys[i] == key {
		t.orderedKeys = append(t.orderedKeys[:i], t.orderedKeys[i+1:]...)
		t.ordered = append(t.ordered[:i], t.ordered[i+1:]...)
	}
	for _, f := range c.BaseFacts {
		if m := t.byFact[f]; m != nil {
			delete(m, key)
			if len(m) == 0 {
				delete(t.byFact, f)
			}
		}
	}
}

// pinTask is one re-evaluation unit of Update: CDD ci with body atom ai
// pinned onto the updated fact through the seed substitution.
type pinTask struct {
	ci   int
	ai   int
	seed logic.Subst
	plan *homo.Plan // compiled body-minus-pinned-atom conjunction
}

// Update re-synchronizes the conflict set after the fact with the given id
// has been modified in the underlying store. Per §5: conflicts related to
// the fact are dropped, then every CDD related to the fact's (new) atom is
// re-evaluated with one body atom pinned onto the fact.
//
// The pinned-seed searches are independent read-only scans of the store,
// so they fan out over the par worker pool; the tracker's own indexes are
// only mutated afterwards, on the calling goroutine, in task order — the
// conflict set ends up identical for any worker count.
func (t *Tracker) Update(id store.FactID) {
	t.UpdateUnder(0, id)
}

// UpdateUnder is Update with the trace span parented under the given span
// id — the inquiry engine attributes each incremental re-sync to the
// question whose answer caused it. The span is emitted on this goroutine;
// the pinned-seed workers never touch the tracer.
func (t *Tracker) UpdateUnder(parent uint64, id store.FactID) {
	mUpdates.Inc()
	tm := obs.StartTimer()
	defer mUpdateTime.Since(tm)
	var sp obs.Span
	if obs.Tracing() {
		sp = obs.StartSpanUnder(parent, "conflict.tracker_update", obs.Int("fact", int(id)))
	}
	removed := int64(len(t.byFact[id]))
	for k := range t.byFact[id] {
		t.remove(k)
	}
	atom := t.base.FactRef(id)
	var tasks []pinTask
	for _, ci := range t.byPred[atom.Pred] {
		cdd := t.cdds[ci]
		for ai, ba := range cdd.Body {
			if ba.Pred != atom.Pred || len(ba.Args) != len(atom.Args) {
				continue
			}
			// Pin body atom ai onto the updated fact: bind its variables
			// against the fact, then search the remaining atoms.
			seed, ok := bindAtom(ba, atom)
			if !ok {
				continue
			}
			tasks = append(tasks, pinTask{ci: ci, ai: ai, seed: seed, plan: t.pinPlans[ci][ai]})
		}
	}
	perTask := par.MapNamed("conflict.tracker", len(tasks), func(i int) []*Conflict {
		return t.scanPinned(id, atom, tasks[i])
	})
	var added int64
	for _, cs := range perTask {
		for _, c := range cs {
			t.add(c)
			added++
		}
	}
	flight.Record(flight.KindTrackerUpdate, int64(id), removed, added, 0)
	if sp.Live() {
		sp.End(obs.Int64("removed", removed), obs.Int64("added", added))
	}
}

// scanPinned runs one pinned-seed homomorphism search and returns the
// conflicts it witnesses. It reads the store and the (immutable) CDDs but
// never touches the tracker's mutable indexes.
func (t *Tracker) scanPinned(id store.FactID, atom logic.Atom, task pinTask) []*Conflict {
	cdd := t.cdds[task.ci]
	if attr.Enabled() {
		attrPinned.Add(AttrID(cdd), 1)
	}
	var out []*Conflict
	task.plan.ForEachSeeded(t.base, task.seed, func(m homo.Match) bool {
		facts := make([]store.FactID, 0, len(cdd.Body))
		ri := 0
		for j := range cdd.Body {
			if j == task.ai {
				facts = append(facts, id)
			} else {
				facts = append(facts, m.Facts[ri])
				ri++
			}
		}
		full := m.Subst.Clone()
		for v, val := range task.seed {
			full[v] = val
		}
		out = append(out, &Conflict{
			CDD:       cdd,
			CDDIdx:    task.ci,
			Hom:       full,
			Facts:     facts,
			BaseFacts: dedupIDs(facts),
			Direct:    true,
		})
		return true
	})
	return out
}

// bindAtom unifies a body atom pattern against a ground fact, returning the
// induced variable bindings, or false if they are incompatible.
func bindAtom(pattern, fact logic.Atom) (logic.Subst, bool) {
	sub := logic.NewSubst()
	for i, pt := range pattern.Args {
		ft := fact.Args[i]
		if pt.IsVar() {
			if cur, ok := sub[pt]; ok {
				if cur != ft {
					return nil, false
				}
				continue
			}
			sub[pt] = ft
			continue
		}
		if pt != ft {
			return nil, false
		}
	}
	return sub, true
}

// Len returns the current number of conflicts.
func (t *Tracker) Len() int { return len(t.conflicts) }

// Conflicts returns the current conflicts in a deterministic order (sorted
// by key). The order is maintained incrementally, so each call is a copy,
// not a re-sort: strategies call this after every answer, and on large
// hypergraphs the repeated O(n log n) sort used to dominate update time.
func (t *Tracker) Conflicts() []*Conflict {
	return append([]*Conflict(nil), t.ordered...)
}

// ConflictsOfFact returns the conflicts involving the given base fact.
func (t *Tracker) ConflictsOfFact(id store.FactID) []*Conflict {
	keys := make([]string, 0, len(t.byFact[id]))
	for k := range t.byFact[id] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Conflict, len(keys))
	for i, k := range keys {
		out[i] = t.conflicts[k]
	}
	return out
}

// PositionRanks returns, for every position of every fact involved in a
// conflict, the number of conflicts containing it — the vertex degrees of
// the conflict hypergraph used by opti-mcd.
func (t *Tracker) PositionRanks() map[store.Position]int {
	return PositionRanks(t.Conflicts(), t.base)
}

// positionRanksChunk is the fan-out granularity of PositionRanks: small
// conflict sets rank inline (a fan-out would cost more than the loop),
// larger ones split into chunks of this many conflicts.
const positionRanksChunk = 64

// PositionRanks computes per-position conflict membership counts for an
// arbitrary conflict set. Opti-mcd is an improvement over opti-join (§5),
// so for direct conflicts only the join positions are ranked — changing a
// non-join position can never resolve the conflict, and ranking it would
// steer the strategy toward wasted questions. Chase-level conflicts fall
// back to all base-support positions, as in GenerateQuestion-Chase.
//
// Ranking only reads the conflicts and the store, and per-position counts
// add commutatively, so big sets fan out chunk-wise over the par worker
// pool and merge additively — the result map is identical at any worker
// count.
func PositionRanks(conflicts []*Conflict, s *store.Store) map[store.Position]int {
	if len(conflicts) <= positionRanksChunk {
		return positionRanksSeq(conflicts, s)
	}
	chunks := (len(conflicts) + positionRanksChunk - 1) / positionRanksChunk
	parts := par.MapNamed("conflict.ranks", chunks, func(g int) map[store.Position]int {
		lo := g * positionRanksChunk
		hi := lo + positionRanksChunk
		if hi > len(conflicts) {
			hi = len(conflicts)
		}
		return positionRanksSeq(conflicts[lo:hi], s)
	})
	ranks := make(map[store.Position]int)
	for _, part := range parts {
		for p, n := range part {
			ranks[p] += n
		}
	}
	return ranks
}

func positionRanksSeq(conflicts []*Conflict, s *store.Store) map[store.Position]int {
	ranks := make(map[store.Position]int)
	for _, c := range conflicts {
		ps := c.JoinPositions(s)
		if len(ps) == 0 {
			ps = c.Positions(s)
		}
		for _, p := range ps {
			ranks[p]++
		}
	}
	return ranks
}
