// Package conflict implements conflict detection and maintenance for
// knowledge bases with CDDs and TGDs.
//
// A conflict (Def. 2.3) is a pair X = (N, h) of a CDD N and a homomorphism
// h from body(N) into the chase Cl_ΣT(F). A *naive* conflict (§5) is the
// same with h mapping into F directly, without chasing. The package also
// provides the conflict hypergraph with per-position degrees (for the
// opti-mcd strategy), the incremental UpdateConflicts maintenance of §5,
// and the KB-structure indicators reported in the paper's experiment tables
// (average atoms per overlap, average scope).
package conflict

import (
	"fmt"
	"sort"
	"strings"

	"kbrepair/internal/chase"
	"kbrepair/internal/homo"
	"kbrepair/internal/logic"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/par"
	"kbrepair/internal/store"
)

// Detection and hypergraph-maintenance instrumentation.
var (
	mScans      = obs.NewCounter("conflict.scans")
	mFound      = obs.NewCounter("conflict.conflicts_found")
	mDetectTime = obs.NewHistogram("conflict.detect_seconds", obs.LatencyBuckets)
	mEdgeAdd    = obs.NewCounter("conflict.hyperedges_added")
	mEdgeDel    = obs.NewCounter("conflict.hyperedges_removed")
	mUpdates    = obs.NewCounter("conflict.tracker_updates")
	mUpdateTime = obs.NewHistogram("conflict.update_seconds", obs.LatencyBuckets)
)

// Per-CDD attribution families (see internal/obs/attr).
var (
	attrFound  = attr.NewCounterVec(attr.FamConflictsFound)
	attrPinned = attr.NewCounterVec(attr.FamPinnedScans)
)

// AttrID resolves (and caches) the attribution ID of a CDD, keyed by its
// canonical string. Exported because the inquiry engine attributes
// questions and Π-checks to the CDD whose conflict caused them.
func AttrID(c *logic.CDD) attr.ID {
	if id, ok := attr.OwnerID(c); ok {
		return id
	}
	return attr.BindOwner(c, c.String())
}

// Conflict is one violation of one CDD.
type Conflict struct {
	// CDD is the violated dependency; CDDIdx its index in the KB's rule
	// set (used for stable identity).
	CDD    *logic.CDD
	CDDIdx int
	// Hom is the witnessing homomorphism from body(CDD).
	Hom logic.Subst
	// Facts are the facts the body atoms map onto, in body order. For
	// naive conflicts they are base-store ids; for chase conflicts they
	// are ids in the chase result store.
	Facts []store.FactID
	// BaseFacts is the base support of the conflict: for naive conflicts
	// the (deduplicated) Facts themselves, for chase conflicts the base
	// facts transitively supporting the violation. Questions are always
	// generated from BaseFacts, since only base facts can be fixed.
	BaseFacts []store.FactID
	// Direct is true when Facts are base-store ids aligned one-to-one with
	// the CDD's body atoms (naive conflicts, or chase conflicts whose body
	// atoms all map onto base facts). Join-position retrieval (opti-join)
	// is only defined for direct conflicts.
	Direct bool
}

// JoinPositions returns, for a direct conflict, the base positions holding
// a join variable or a constant of the CDD body — exactly the positions
// whose modification can break the witnessing homomorphism (§5, opti-join).
// For non-direct conflicts it returns nil; callers fall back to Positions.
func (c *Conflict) JoinPositions(s *store.Store) []store.Position {
	if !c.Direct {
		return nil
	}
	joinArgs := c.CDD.JoinPositions()
	var out []store.Position
	seen := make(map[store.Position]bool)
	add := func(p store.Position) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for i, a := range c.CDD.Body {
		for _, j := range joinArgs[i] {
			add(store.Position{Fact: c.Facts[i], Arg: j})
		}
		// Constant-matched positions also pin the homomorphism.
		for j, t := range a.Args {
			if t.IsConst() {
				add(store.Position{Fact: c.Facts[i], Arg: j})
			}
		}
	}
	return out
}

// Key identifies the conflict up to the paper's (N, h) identity.
func (c *Conflict) Key() string {
	return fmt.Sprintf("%d|%s", c.CDDIdx, c.Hom.Key())
}

// InvolvesFact reports whether the given base fact takes part in the
// conflict.
func (c *Conflict) InvolvesFact(id store.FactID) bool {
	for _, f := range c.BaseFacts {
		if f == id {
			return true
		}
	}
	return false
}

// Positions returns every position of every base fact of the conflict —
// the paper's Π′ = {(A, i) | A ∈ h(body(N))} of Algorithm 2, restricted to
// base facts.
func (c *Conflict) Positions(s *store.Store) []store.Position {
	var out []store.Position
	for _, f := range c.BaseFacts {
		for i := 0; i < s.Arity(f); i++ {
			out = append(out, store.Position{Fact: f, Arg: i})
		}
	}
	return out
}

// String renders the conflict for diagnostics.
func (c *Conflict) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "conflict cdd#%d %s facts=%v", c.CDDIdx, c.Hom, c.BaseFacts)
	return sb.String()
}

func dedupIDs(ids []store.FactID) []store.FactID {
	seen := make(map[store.FactID]bool, len(ids))
	var out []store.FactID
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllNaive computes allconflicts_naive(K): every homomorphism from every
// CDD body into the base store, deduplicated by (CDD, homomorphism).
//
// Detection fans out one task per CDD over the par worker pool — each CDD's
// homomorphism search is independent and only reads the store (the
// concurrent-read contract of internal/store). Per-CDD results are merged
// in CDD-index order, and each search enumerates deterministically, so the
// output is byte-identical to a sequential scan regardless of -workers.
func AllNaive(base *store.Store, cdds []*logic.CDD) []*Conflict {
	return AllNaiveUnder(0, base, cdds)
}

// AllNaiveUnder is AllNaive with the scan's trace span parented under the
// given span id (0 for a root) — the inquiry engine uses it to attribute
// detection time to the run or question that triggered the scan. The span
// is emitted from this goroutine only; the per-CDD workers stay silent.
func AllNaiveUnder(parent uint64, base *store.Store, cdds []*logic.CDD) []*Conflict {
	mScans.Inc()
	tm := obs.StartTimer()
	defer mDetectTime.Since(tm)
	var sp obs.Span
	if obs.Tracing() {
		sp = obs.StartSpanUnder(parent, "conflict.scan",
			obs.Int("cdds", len(cdds)), obs.Bool("naive", true))
	}
	// Resolve every CDD's plan before the fan-out: first compiles bind the
	// join order from store statistics, and binding must happen at this
	// sequential point, not under whichever worker misses the cache first.
	plans := make([]*homo.Plan, len(cdds))
	for i, c := range cdds {
		plans[i] = homo.CachedPlanWith(homo.CacheKey{Owner: c, Tag: homo.TagBody}, c.Body,
			homo.CompileOpts{Stats: base})
	}
	perCDD := par.MapNamed("conflict.scan", len(cdds), func(i int) []*Conflict {
		return scanCDD(base, plans[i], cdds[i], i, nil)
	})
	var out []*Conflict
	for _, cs := range perCDD {
		out = append(out, cs...)
	}
	mFound.Add(int64(len(out)))
	flight.Record(flight.KindConflictScan, int64(len(cdds)), int64(len(out)), 0, 0)
	if sp.Live() {
		sp.End(obs.Int("conflicts", len(out)))
	}
	return out
}

// scanCDD enumerates the conflicts of one CDD against s, deduplicated by
// (CDD, homomorphism) — dedup never crosses CDDs because the conflict key
// starts with the CDD index. When res is non-nil the scan is a chase-level
// one: base supports come from provenance and Direct only holds when every
// violating atom is a base fact.
func scanCDD(s *store.Store, plan *homo.Plan, cdd *logic.CDD, idx int, res *chase.Result) []*Conflict {
	var out []*Conflict
	seen := make(map[string]bool)
	plan.ForEach(s, func(m homo.Match) bool {
		direct := true
		baseFacts := m.Facts
		if res != nil {
			for _, f := range m.Facts {
				if !res.IsBase(f) {
					direct = false
					break
				}
			}
			baseFacts = res.BaseSupportAll(m.Facts)
		}
		cf := &Conflict{
			CDD:       cdd,
			CDDIdx:    idx,
			Hom:       m.Subst.Clone(),
			Facts:     append([]store.FactID(nil), m.Facts...),
			BaseFacts: dedupIDs(baseFacts),
			Direct:    direct,
		}
		if k := cf.Key(); !seen[k] {
			seen[k] = true
			out = append(out, cf)
		}
		return true
	})
	if attr.Enabled() && len(out) > 0 {
		attrFound.Add(AttrID(cdd), int64(len(out)))
	}
	return out
}

// All computes allconflicts(K): the chase of the base store is evaluated
// against every CDD body, and each conflict is annotated with its base
// support via chase provenance. Only the TGDs relevant to the CDDs are
// chased (derivations from other rules can never take part in a CDD-body
// homomorphism). It returns the conflicts together with the chase result
// they were evaluated on.
func All(base *store.Store, tgds []*logic.TGD, cdds []*logic.CDD, opts chase.Options) ([]*Conflict, *chase.Result, error) {
	mScans.Inc()
	tm := obs.StartTimer()
	defer mDetectTime.Since(tm)
	// The scan span is parented wherever the caller pointed the chase
	// options (e.g. the inquiry.question span); the chase run underneath is
	// then re-parented under the scan, so the waterfall shows
	// question → conflict.scan → chase.run → chase.round.
	var sp obs.Span
	if obs.Tracing() && !opts.TraceQuiet {
		sp = obs.StartSpanUnder(opts.TraceParent, "conflict.scan",
			obs.Int("cdds", len(cdds)), obs.Bool("naive", false))
		opts.TraceParent = sp.ID()
	}
	tgds = chase.RelevantTGDs(tgds, cdds)
	res, err := chase.Run(base, tgds, opts)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	// Same fan-out shape as AllNaive: one read-only task per CDD over the
	// chased store, merged in CDD-index order. Concurrent tasks share the
	// chase result's memoized base-support cache, which is goroutine-safe.
	// Plans resolve sequentially first so order binding never races.
	plans := make([]*homo.Plan, len(cdds))
	for i, c := range cdds {
		plans[i] = homo.CachedPlanWith(homo.CacheKey{Owner: c, Tag: homo.TagBody}, c.Body,
			homo.CompileOpts{Stats: res.Store})
	}
	perCDD := par.MapNamed("conflict.scan", len(cdds), func(i int) []*Conflict {
		return scanCDD(res.Store, plans[i], cdds[i], i, res)
	})
	var out []*Conflict
	for _, cs := range perCDD {
		out = append(out, cs...)
	}
	mFound.Add(int64(len(out)))
	flight.Record(flight.KindConflictScan, int64(len(cdds)), int64(len(out)), 1, 0)
	if sp.Live() {
		sp.End(obs.Int("conflicts", len(out)))
	}
	return out, res, nil
}

// Stats reports the KB-structure indicators the paper attaches to each
// experiment table.
type Stats struct {
	// NumConflicts is the number of conflicts.
	NumConflicts int
	// AtomsInConflicts is the number of distinct base facts involved in at
	// least one conflict (used for the inconsistency ratio).
	AtomsInConflicts int
	// AvgAtomsPerConflict is the mean number of base facts per conflict.
	AvgAtomsPerConflict float64
	// AvgAtomsPerOverlap is the mean size (in atoms) of the pairwise
	// intersections between overlapping conflicts ("Avg # atoms per
	// overlap").
	AvgAtomsPerOverlap float64
	// AvgScope is, averaged over conflicts, the number of other conflicts
	// sharing at least one atom with it ("Avg scope").
	AvgScope float64
}

// ComputeStats derives the indicator values from a set of conflicts.
func ComputeStats(conflicts []*Conflict) Stats {
	st := Stats{NumConflicts: len(conflicts)}
	if len(conflicts) == 0 {
		return st
	}
	inConflict := make(map[store.FactID]bool)
	totalAtoms := 0
	for _, c := range conflicts {
		totalAtoms += len(c.BaseFacts)
		for _, f := range c.BaseFacts {
			inConflict[f] = true
		}
	}
	st.AtomsInConflicts = len(inConflict)
	st.AvgAtomsPerConflict = float64(totalAtoms) / float64(len(conflicts))

	// Pairwise overlaps. Conflict sets are small; index conflicts by fact
	// to avoid the full quadratic scan on big instances.
	byFact := make(map[store.FactID][]int)
	for i, c := range conflicts {
		for _, f := range c.BaseFacts {
			byFact[f] = append(byFact[f], i)
		}
	}
	overlapSize := make(map[[2]int]int)
	for _, members := range byFact {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a > b {
					a, b = b, a
				}
				overlapSize[[2]int{a, b}]++
			}
		}
	}
	if len(overlapSize) > 0 {
		total := 0
		for _, n := range overlapSize {
			total += n
		}
		st.AvgAtomsPerOverlap = float64(total) / float64(len(overlapSize))
	}
	scope := make([]map[int]bool, len(conflicts))
	for pair := range overlapSize {
		a, b := pair[0], pair[1]
		if scope[a] == nil {
			scope[a] = make(map[int]bool)
		}
		if scope[b] == nil {
			scope[b] = make(map[int]bool)
		}
		scope[a][b] = true
		scope[b][a] = true
	}
	totalScope := 0
	for _, m := range scope {
		totalScope += len(m)
	}
	st.AvgScope = float64(totalScope) / float64(len(conflicts))
	return st
}
