package conflict

import (
	"math"
	"testing"

	"kbrepair/internal/chase"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

func fig1bKB(t testing.TB) (*store.Store, []*logic.TGD, []*logic.CDD) {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),         // 0
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),         // 1
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")),      // 2
		logic.NewAtom("hasPain", logic.C("John"), logic.C("Migraine")),           // 3
		logic.NewAtom("isPainKillerFor", logic.C("Nsaids"), logic.C("Migraine")), // 4
		logic.NewAtom("incompatible", logic.C("Aspirin"), logic.C("Nsaids")),     // 5
	})
	tgds := []*logic.TGD{logic.MustTGD(
		[]logic.Atom{
			logic.NewAtom("isPainKillerFor", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasPain", logic.V("Z"), logic.V("Y")),
		},
		[]logic.Atom{logic.NewAtom("prescribed", logic.V("X"), logic.V("Z"))},
	)}
	cdds := []*logic.CDD{
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
		}),
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("prescribed", logic.V("X"), logic.V("Z")),
			logic.NewAtom("prescribed", logic.V("Y"), logic.V("Z")),
			logic.NewAtom("incompatible", logic.V("X"), logic.V("Y")),
		}),
	}
	return s, tgds, cdds
}

func TestAllNaive(t *testing.T) {
	s, _, cdds := fig1bKB(t)
	cs := AllNaive(s, cdds)
	// Only the allergy CDD is violated at base level (Example 2.4's X1).
	if len(cs) != 1 {
		t.Fatalf("naive conflicts = %d, want 1", len(cs))
	}
	c := cs[0]
	if c.CDDIdx != 0 {
		t.Errorf("conflict on cdd %d", c.CDDIdx)
	}
	if c.Hom.Lookup(logic.V("X")) != logic.C("Aspirin") || c.Hom.Lookup(logic.V("Y")) != logic.C("John") {
		t.Errorf("hom = %v", c.Hom)
	}
	if len(c.BaseFacts) != 2 || c.BaseFacts[0] != 0 || c.BaseFacts[1] != 1 {
		t.Errorf("BaseFacts = %v", c.BaseFacts)
	}
	if !c.InvolvesFact(0) || c.InvolvesFact(2) {
		t.Error("InvolvesFact wrong")
	}
	if len(c.Positions(s)) != 4 {
		t.Errorf("Positions = %v", c.Positions(s))
	}
}

func TestAllWithChase(t *testing.T) {
	s, tgds, cdds := fig1bKB(t)
	cs, res, err := All(s, tgds, cdds, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Example 2.4: exactly two conflicts, X1 (allergy) and X2 (incompatible).
	if len(cs) != 2 {
		t.Fatalf("conflicts = %d, want 2: %v", len(cs), cs)
	}
	var incompat *Conflict
	for _, c := range cs {
		if c.CDDIdx == 1 {
			incompat = c
		}
	}
	if incompat == nil {
		t.Fatal("incompatibility conflict not found")
	}
	// Its base support must include the prescribed(Aspirin,John) fact and
	// the TGD's body facts (hasPain, isPainKillerFor) plus incompatible.
	wantSupport := map[store.FactID]bool{0: true, 3: true, 4: true, 5: true}
	if len(incompat.BaseFacts) != len(wantSupport) {
		t.Fatalf("base support = %v", incompat.BaseFacts)
	}
	for _, f := range incompat.BaseFacts {
		if !wantSupport[f] {
			t.Errorf("unexpected support fact %d", f)
		}
	}
	if res.Store.Len() != s.Len()+1 {
		t.Errorf("chase result size = %d", res.Store.Len())
	}
}

func TestAllDeduplicatesSymmetricHoms(t *testing.T) {
	// A symmetric CDD can generate (X=a,Y=b) and (X=b,Y=a): both are
	// distinct homs and both must be kept; identical homs must be merged.
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a"), logic.C("b")),
		logic.NewAtom("p", logic.C("b"), logic.C("a")),
	})
	cdds := []*logic.CDD{logic.MustCDD([]logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		logic.NewAtom("p", logic.V("Y"), logic.V("X")),
	})}
	cs := AllNaive(s, cdds)
	if len(cs) != 2 {
		t.Errorf("conflicts = %d, want 2 (one per hom)", len(cs))
	}
}

func TestTrackerInitialAndUpdate(t *testing.T) {
	s, _, cdds := fig1bKB(t)
	tr := NewTracker(s, cdds)
	if tr.Len() != 1 {
		t.Fatalf("initial conflicts = %d, want 1", tr.Len())
	}
	// Fix the allergy to a fresh null: conflict disappears.
	p := store.Position{Fact: 1, Arg: 1}
	s.MustSetValue(p, s.FreshNull())
	tr.Update(1)
	if tr.Len() != 0 {
		t.Errorf("conflicts after repair = %d, want 0", tr.Len())
	}
	// Introduce a new violation: hasAllergy(Mike, Penicillin) →
	// hasAllergy(John, Aspirin) again via two updates.
	s.MustSetValue(store.Position{Fact: 2, Arg: 0}, logic.C("John"))
	tr.Update(2)
	if tr.Len() != 0 {
		t.Errorf("half-updated fact should not conflict yet: %d", tr.Len())
	}
	s.MustSetValue(store.Position{Fact: 2, Arg: 1}, logic.C("Aspirin"))
	tr.Update(2)
	if tr.Len() != 1 {
		t.Fatalf("conflicts after reintroduction = %d, want 1", tr.Len())
	}
	c := tr.Conflicts()[0]
	if !c.InvolvesFact(2) || !c.InvolvesFact(0) {
		t.Errorf("conflict facts = %v", c.BaseFacts)
	}
	if got := tr.ConflictsOfFact(2); len(got) != 1 {
		t.Errorf("ConflictsOfFact = %v", got)
	}
	if got := tr.ConflictsOfFact(1); len(got) != 0 {
		t.Errorf("repaired fact still in conflicts: %v", got)
	}
}

// TestTrackerMatchesRecompute drives random mutations and checks the
// incremental tracker against a from-scratch recomputation.
func TestTrackerMatchesRecompute(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a"), logic.C("b")),
		logic.NewAtom("p", logic.C("b"), logic.C("c")),
		logic.NewAtom("q", logic.C("b"), logic.C("a")),
		logic.NewAtom("q", logic.C("c"), logic.C("b")),
		logic.NewAtom("r", logic.C("a")),
	})
	cdds := []*logic.CDD{
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("p", logic.V("X"), logic.V("Y")),
			logic.NewAtom("q", logic.V("Y"), logic.V("X")),
		}),
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("p", logic.V("X"), logic.V("X")),
		}),
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("r", logic.V("X")),
			logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		}),
	}
	tr := NewTracker(s, cdds)
	check := func(step string) {
		t.Helper()
		want := AllNaive(s, cdds)
		if tr.Len() != len(want) {
			t.Fatalf("%s: tracker=%d recompute=%d", step, tr.Len(), len(want))
		}
		wantKeys := make(map[string]bool)
		for _, c := range want {
			wantKeys[c.Key()] = true
		}
		for _, c := range tr.Conflicts() {
			if !wantKeys[c.Key()] {
				t.Fatalf("%s: tracker has extra conflict %s", step, c.Key())
			}
		}
	}
	check("initial")
	muts := []struct {
		p store.Position
		v logic.Term
	}{
		{store.Position{Fact: 0, Arg: 1}, logic.C("a")}, // p(a,a): violates CDD2 and maybe others
		{store.Position{Fact: 2, Arg: 0}, logic.C("a")},
		{store.Position{Fact: 0, Arg: 0}, logic.C("c")},
		{store.Position{Fact: 4, Arg: 0}, logic.C("c")},
		{store.Position{Fact: 1, Arg: 0}, logic.C("c")},
		{store.Position{Fact: 3, Arg: 1}, logic.C("c")},
	}
	for i, m := range muts {
		s.MustSetValue(m.p, m.v)
		tr.Update(m.p.Fact)
		check(string(rune('a' + i)))
	}
}

func TestComputeStats(t *testing.T) {
	if st := ComputeStats(nil); st.NumConflicts != 0 {
		t.Error("empty stats wrong")
	}
	// Three conflicts: {0,1}, {1,2}, {5,6}. Overlaps: (c0,c1) share fact 1.
	mk := func(idx int, facts ...store.FactID) *Conflict {
		return &Conflict{CDDIdx: idx, Hom: logic.NewSubst(), BaseFacts: facts}
	}
	cs := []*Conflict{
		mk(0, 0, 1),
		mk(1, 1, 2),
		mk(2, 5, 6),
	}
	st := ComputeStats(cs)
	if st.NumConflicts != 3 {
		t.Errorf("NumConflicts = %d", st.NumConflicts)
	}
	if st.AtomsInConflicts != 5 {
		t.Errorf("AtomsInConflicts = %d", st.AtomsInConflicts)
	}
	if math.Abs(st.AvgAtomsPerConflict-2.0) > 1e-9 {
		t.Errorf("AvgAtomsPerConflict = %f", st.AvgAtomsPerConflict)
	}
	if math.Abs(st.AvgAtomsPerOverlap-1.0) > 1e-9 {
		t.Errorf("AvgAtomsPerOverlap = %f", st.AvgAtomsPerOverlap)
	}
	// Scopes: c0 overlaps c1, c1 overlaps c0, c2 overlaps none → (1+1+0)/3.
	if math.Abs(st.AvgScope-2.0/3.0) > 1e-9 {
		t.Errorf("AvgScope = %f", st.AvgScope)
	}
}

func TestPositionRanks(t *testing.T) {
	s, _, cdds := fig1bKB(t)
	tr := NewTracker(s, cdds)
	ranks := tr.PositionRanks()
	// The single naive conflict involves facts 0 and 1 → 4 ranked positions.
	if len(ranks) != 4 {
		t.Fatalf("ranks = %v", ranks)
	}
	for p, r := range ranks {
		if r != 1 {
			t.Errorf("rank of %v = %d, want 1", p, r)
		}
	}
}
