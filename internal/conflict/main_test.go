package conflict

import (
	"os"
	"testing"

	"kbrepair/internal/obs/flight"
)

// TestMain routes a red run through flight.DumpOnTestFailure so the repo's
// make test (which sets KBREPAIR_TEST_BUNDLE) leaves a post-mortem debug
// bundle for CI to upload. Plain local runs are unaffected.
func TestMain(m *testing.M) {
	code := m.Run()
	flight.DumpOnTestFailure(code)
	os.Exit(code)
}
