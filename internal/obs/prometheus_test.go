package obs

import (
	"bufio"
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition line: name, optional le label, value.
type promSample struct {
	le  string
	val float64
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// parsePrometheus is a minimal text-format parser for tests: it returns
// samples grouped by metric name and the declared TYPE per family, and
// fails the test on any malformed line.
func parsePrometheus(t *testing.T, text string) (map[string][]promSample, map[string]string) {
	t.Helper()
	samples := make(map[string][]promSample)
	types := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		id, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name, le := id, ""
		if i := strings.IndexByte(id, '{'); i >= 0 {
			name = id[:i]
			labels := strings.TrimSuffix(id[i+1:], "}")
			const pre = `le="`
			if !strings.HasPrefix(labels, pre) || !strings.HasSuffix(labels, `"`) {
				t.Fatalf("unexpected labels in %q", line)
			}
			le = strings.TrimSuffix(strings.TrimPrefix(labels, pre), `"`)
		}
		if !promNameRe.MatchString(name) {
			t.Fatalf("invalid metric name %q", name)
		}
		samples[name] = append(samples[name], promSample{le: le, val: val})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

func TestWritePrometheusParsesBack(t *testing.T) {
	r := NewRegistry()
	r.Counter("chase.runs").Add(7)
	r.Gauge("inquiry.phase").Set(2)
	h := r.Histogram("chase.run_seconds", []float64{0.001, 0.1, 1})
	for _, v := range []float64{0.0005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples, types := parsePrometheus(t, buf.String())

	if got := samples["kbrepair_chase_runs_total"]; len(got) != 1 || got[0].val != 7 {
		t.Errorf("counter samples = %+v, want one sample of 7", got)
	}
	if types["kbrepair_chase_runs_total"] != "counter" {
		t.Errorf("counter TYPE = %q", types["kbrepair_chase_runs_total"])
	}
	if got := samples["kbrepair_inquiry_phase"]; len(got) != 1 || got[0].val != 2 {
		t.Errorf("gauge samples = %+v, want one sample of 2", got)
	}
	if types["kbrepair_inquiry_phase"] != "gauge" {
		t.Errorf("gauge TYPE = %q", types["kbrepair_inquiry_phase"])
	}

	const hn = "kbrepair_chase_run_seconds"
	if types[hn] != "histogram" {
		t.Errorf("histogram TYPE = %q", types[hn])
	}
	buckets := samples[hn+"_bucket"]
	if len(buckets) != 4 {
		t.Fatalf("bucket count = %d, want 4 (%+v)", len(buckets), buckets)
	}
	// Buckets must be cumulative and end with le="+Inf" == count.
	prev := -1.0
	for _, b := range buckets {
		if b.val < prev {
			t.Errorf("buckets not cumulative: %+v", buckets)
		}
		prev = b.val
	}
	if last := buckets[len(buckets)-1]; last.le != "+Inf" || last.val != 4 {
		t.Errorf("last bucket = %+v, want le=+Inf val=4", last)
	}
	if got := samples[hn+"_count"]; len(got) != 1 || got[0].val != 4 {
		t.Errorf("_count = %+v, want 4", got)
	}
	if got := samples[hn+"_sum"]; len(got) != 1 || math.Abs(got[0].val-5.5505) > 1e-9 {
		t.Errorf("_sum = %+v, want 5.5505", got)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"chase.run_seconds": "kbrepair_chase_run_seconds",
		"weird-name.x/y":    "kbrepair_weird_name_x_y",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if !promNameRe.MatchString(PromName(in)) {
			t.Errorf("PromName(%q) not a valid metric name", in)
		}
	}
}

// TestWritePrometheusEmptyHistogram checks a registered-but-never-observed
// histogram still exposes a well-formed family (all-zero buckets).
func TestWritePrometheusEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle.seconds", []float64{1})
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	samples, _ := parsePrometheus(t, buf.String())
	if got := samples["kbrepair_idle_seconds_count"]; len(got) != 1 || got[0].val != 0 {
		t.Errorf("_count = %+v, want 0", got)
	}
	for _, b := range samples["kbrepair_idle_seconds_bucket"] {
		if b.val != 0 {
			t.Errorf("empty histogram has non-zero bucket: %+v", b)
		}
	}
}
