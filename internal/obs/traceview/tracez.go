package traceview

import (
	"encoding/json"
	"net/http"
	"strconv"

	"kbrepair/internal/obs"
)

// DefaultTracezQuestions is how many slowest questions /tracez shows when
// no ?n= parameter is given.
const DefaultTracezQuestions = 10

// Tracez is the /tracez document: ring occupancy plus the K slowest recent
// question waterfalls, slowest first.
type Tracez struct {
	// Enabled is false when no trace ring is installed (run with -trace to
	// get one); the other fields are zero then.
	Enabled       bool                `json:"enabled"`
	RecordsTotal  uint64              `json:"records_total"`
	SpansRetained int                 `json:"spans_retained"`
	Questions     int                 `json:"questions"`
	Slowest       []QuestionWaterfall `json:"slowest,omitempty"`
}

// ReadTracez assembles the /tracez document from the process-wide trace
// ring, showing the k slowest retained questions.
func ReadTracez(k int) Tracez {
	ring := obs.TraceRing()
	if ring == nil {
		return Tracez{}
	}
	f := ParseRecords(ring.Records())
	ws := f.SlowestQuestions(-1)
	t := Tracez{
		Enabled:       true,
		RecordsTotal:  ring.Total(),
		SpansRetained: f.Spans(),
		Questions:     len(ws),
	}
	if k >= 0 && len(ws) > k {
		ws = ws[:k]
	}
	t.Slowest = ws
	return t
}

// TracezHandler serves the K slowest recent questions with their latency
// breakdowns as JSON (?n= overrides K, default DefaultTracezQuestions).
func TracezHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		k := DefaultTracezQuestions
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "tracez: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			k = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Past the first byte an encode error cannot be reported over HTTP;
		// the handler serves an in-memory document, so none is expected.
		_ = enc.Encode(ReadTracez(k))
	})
}

// The handler registers itself on the debug mux (like flight's /debugz):
// any binary linking traceview serves /tracez alongside /metrics and
// /statusz.
func init() {
	obs.RegisterDebugHandler("/tracez", TracezHandler())
}
