package traceview

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace_event format ("JSON Array
// Format" with an object wrapper), as consumed by Perfetto and
// chrome://tracing: complete spans are ph "X" with ts/dur in microseconds,
// instants are ph "i" with thread scope.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the forest as Chrome trace_event JSON. All spans go
// on one pid/tid: the pipeline emits from a single goroutine per run, so
// the viewer reconstructs nesting from time containment, which matches the
// causal tree exactly. Output is deterministic: spans in depth-first
// pre-order over the (start-time-sorted) forest, then events in stream
// order.
func WriteChrome(w io.Writer, f *Forest) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	f.Walk(func(s *Span) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    s.StartUS,
			Dur:   s.DurUS,
			PID:   1,
			TID:   1,
			Args:  s.Attrs,
		})
	})
	for _, e := range f.Events {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  e.Name,
			Phase: "i",
			TS:    e.StartUS,
			PID:   1,
			TID:   1,
			Scope: "t",
			Args:  e.Attrs,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ValidateChrome checks that b parses as trace_event JSON with the fields
// the viewers require — the self-check kbtrace runs on its own -chrome
// output and the assertion behind make trace-smoke.
func ValidateChrome(b []byte) (events int, err error) {
	var t chromeTrace
	if err := json.Unmarshal(b, &t); err != nil {
		return 0, err
	}
	for i, e := range t.TraceEvents {
		if e.Name == "" || (e.Phase != "X" && e.Phase != "i") {
			return 0, fmt.Errorf("trace_event entry %d: missing name or unsupported ph %q", i, e.Phase)
		}
	}
	return len(t.TraceEvents), nil
}
