package traceview

import (
	"encoding/json"
	"fmt"
	"io"

	"kbrepair/internal/obs/sched"
)

// chromeEvent is one entry of the Chrome trace_event format ("JSON Array
// Format" with an object wrapper), as consumed by Perfetto and
// chrome://tracing: complete spans are ph "X" with ts/dur in microseconds,
// instants are ph "i" with thread scope.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// laneTIDBase offsets worker-lane rows from the span row (tid 1): lane 0
// renders as tid 100, lane 1 as tid 101, and so on, so the viewer shows
// one timeline row per worker slot under the span timeline.
const laneTIDBase = 100

// WriteChrome exports the forest as Chrome trace_event JSON. All spans go
// on one pid/tid: the pipeline emits from a single goroutine per run, so
// the viewer reconstructs nesting from time containment, which matches the
// causal tree exactly. Output is deterministic: spans in depth-first
// pre-order over the (start-time-sorted) forest, then events in stream
// order.
func WriteChrome(w io.Writer, f *Forest) error { return WriteChromeWithLanes(w, f, nil) }

// WriteChromeWithLanes is WriteChrome plus worker-lane rows: each sched
// lane interval becomes a complete-span event on tid laneTIDBase+lane, so
// the per-worker busy/idle timeline renders directly under the causal
// span tree (lane timestamps come from the same tracer clock as spans).
// Lane rows are named by their fan-out label with the fan-out id and task
// index as args, and each lane tid gets a thread_name metadata record.
func WriteChromeWithLanes(w io.Writer, f *Forest, lanes []sched.Interval) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	seenLanes := map[int]bool{}
	for _, iv := range lanes {
		if !seenLanes[iv.Lane] {
			seenLanes[iv.Lane] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name:  "thread_name",
				Phase: "M",
				PID:   1,
				TID:   laneTIDBase + iv.Lane,
				Args:  map[string]any{"name": fmt.Sprintf("worker lane %d", iv.Lane)},
			})
		}
	}
	f.Walk(func(s *Span) {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    s.StartUS,
			Dur:   s.DurUS,
			PID:   1,
			TID:   1,
			Args:  s.Attrs,
		})
	})
	for _, e := range f.Events {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  e.Name,
			Phase: "i",
			TS:    e.StartUS,
			PID:   1,
			TID:   1,
			Scope: "t",
			Args:  e.Attrs,
		})
	}
	for _, iv := range lanes {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name:  iv.Label,
			Phase: "X",
			TS:    iv.StartUS,
			Dur:   iv.EndUS - iv.StartUS,
			PID:   1,
			TID:   laneTIDBase + iv.Lane,
			Args:  map[string]any{"fanout": iv.Fanout, "task": iv.Task},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ValidateChrome checks that b parses as trace_event JSON with the fields
// the viewers require — the self-check kbtrace runs on its own -chrome
// output and the assertion behind make trace-smoke.
func ValidateChrome(b []byte) (events int, err error) {
	var t chromeTrace
	if err := json.Unmarshal(b, &t); err != nil {
		return 0, err
	}
	for i, e := range t.TraceEvents {
		if e.Name == "" || (e.Phase != "X" && e.Phase != "i" && e.Phase != "M") {
			return 0, fmt.Errorf("trace_event entry %d: missing name or unsupported ph %q", i, e.Phase)
		}
	}
	return len(t.TraceEvents), nil
}
