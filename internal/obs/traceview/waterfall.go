package traceview

import (
	"sort"

	"kbrepair/internal/obs"
)

// QuestionSpanName is the span each waterfall decomposes; RunSpanName is
// the per-run root above it.
const (
	QuestionSpanName = "inquiry.question"
	RunSpanName      = "inquiry.run"
)

// Component is one named slice of a question's latency: the direct child
// spans of the question aggregated by name, in first-occurrence order.
type Component struct {
	Name  string `json:"name"`
	DurUS int64  `json:"dur_us"`
	Count int    `json:"count"`
}

// QuestionWaterfall decomposes one question span. Components plus the
// unattributed remainder sum to TotalUS exactly: components are the direct
// children (each child's own subtree time is inside its duration), and the
// remainder is engine time not covered by any child span.
type QuestionWaterfall struct {
	// Q is the 1-based question index within its run (the span's q attr;
	// 0 when absent).
	Q int `json:"q"`
	// Phase is the inquiry phase (1 or 2; 0 when absent).
	Phase int `json:"phase"`
	// StartUS / TotalUS are the question span's bounds.
	StartUS int64 `json:"start_us"`
	TotalUS int64 `json:"total_us"`
	// EngineDelayUS is the engine's own delay metric (the delay_us attr:
	// question computation excluding user-answer time; -1 when absent).
	EngineDelayUS int64 `json:"engine_delay_us"`
	// Components break TotalUS down; UnattributedUS is the remainder.
	Components     []Component `json:"components"`
	UnattributedUS int64       `json:"unattributed_us"`
}

// waterfallOf decomposes one question span.
func waterfallOf(q *Span) QuestionWaterfall {
	w := QuestionWaterfall{StartUS: q.StartUS, TotalUS: q.DurUS, EngineDelayUS: -1}
	if v, ok := q.AttrInt("q"); ok {
		w.Q = int(v)
	}
	if v, ok := q.AttrInt("phase"); ok {
		w.Phase = int(v)
	}
	if v, ok := q.AttrInt("delay_us"); ok {
		w.EngineDelayUS = v
	}
	idx := make(map[string]int)
	var attributed int64
	for _, c := range q.Child {
		attributed += c.DurUS
		if i, ok := idx[c.Name]; ok {
			w.Components[i].DurUS += c.DurUS
			w.Components[i].Count++
			continue
		}
		idx[c.Name] = len(w.Components)
		w.Components = append(w.Components, Component{Name: c.Name, DurUS: c.DurUS, Count: 1})
	}
	w.UnattributedUS = w.TotalUS - attributed
	return w
}

// Waterfalls returns the per-question decomposition of every question span
// in the forest, in span order (i.e. completion order within a run).
func (f *Forest) Waterfalls() []QuestionWaterfall {
	var out []QuestionWaterfall
	f.Walk(func(s *Span) {
		if s.Name == QuestionSpanName {
			out = append(out, waterfallOf(s))
		}
	})
	return out
}

// NameStat aggregates all spans sharing a name.
type NameStat struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalUS int64  `json:"total_us"`
	SelfUS  int64  `json:"self_us"`
	MaxUS   int64  `json:"max_us"`
}

// Aggregate computes per-name count/total/self/max over the whole forest,
// sorted by self time descending (ties by name) — the "where does the time
// actually go" table.
func (f *Forest) Aggregate() []NameStat {
	idx := make(map[string]int)
	var out []NameStat
	f.Walk(func(s *Span) {
		i, ok := idx[s.Name]
		if !ok {
			i = len(out)
			idx[s.Name] = i
			out = append(out, NameStat{Name: s.Name})
		}
		out[i].Count++
		out[i].TotalUS += s.DurUS
		out[i].SelfUS += s.SelfUS()
		if s.DurUS > out[i].MaxUS {
			out[i].MaxUS = s.DurUS
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfUS != out[j].SelfUS {
			return out[i].SelfUS > out[j].SelfUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PathStep is one hop of a critical path.
type PathStep struct {
	Name   string `json:"name"`
	Span   uint64 `json:"span"`
	DurUS  int64  `json:"dur_us"`
	SelfUS int64  `json:"self_us"`
}

// CriticalPathFrom descends from root along the most expensive child at
// each level (ties: earlier start, then lower id) — the chain of spans
// that bounds the run's latency from below.
func CriticalPathFrom(root *Span) []PathStep {
	var out []PathStep
	for s := root; s != nil; {
		out = append(out, PathStep{Name: s.Name, Span: s.ID, DurUS: s.DurUS, SelfUS: s.SelfUS()})
		var next *Span
		for _, c := range s.Child {
			if next == nil || c.DurUS > next.DurUS {
				next = c
			}
		}
		s = next
	}
	return out
}

// CriticalPath picks the forest's longest root (prefer an inquiry.run span
// if any; ties by duration then start order) and returns its critical
// path. Nil when the forest has no spans.
func (f *Forest) CriticalPath() []PathStep {
	var root *Span
	better := func(a, b *Span) bool { // is a better than b
		if b == nil {
			return true
		}
		ar, br := a.Name == RunSpanName, b.Name == RunSpanName
		if ar != br {
			return ar
		}
		return a.DurUS > b.DurUS
	}
	for _, r := range f.Roots {
		if better(r, root) {
			root = r
		}
	}
	if root == nil {
		return nil
	}
	return CriticalPathFrom(root)
}

// Digest is the compact trace section embedded in debug bundles: ring
// occupancy plus the slowest recent question waterfalls.
type Digest struct {
	// RecordsTotal counts every record the ring ever saw; SpansRetained is
	// how many span records survived in the ring at capture time.
	RecordsTotal  uint64 `json:"records_total"`
	SpansRetained int    `json:"spans_retained"`
	// Questions is the number of question spans retained.
	Questions int `json:"questions"`
	// Slowest holds the K slowest retained questions, slowest first.
	Slowest []QuestionWaterfall `json:"slowest,omitempty"`
}

// SlowestQuestions returns the k slowest question waterfalls, slowest
// first (ties: earlier start first).
func (f *Forest) SlowestQuestions(k int) []QuestionWaterfall {
	ws := f.Waterfalls()
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].TotalUS > ws[j].TotalUS })
	if k >= 0 && len(ws) > k {
		ws = ws[:k]
	}
	return ws
}

// BuildDigest summarizes a record stream (typically obs.TraceRing contents)
// for embedding: counts plus the k slowest questions.
func BuildDigest(recs []obs.Record, total uint64, k int) *Digest {
	f := ParseRecords(recs)
	d := &Digest{RecordsTotal: total, SpansRetained: f.Spans()}
	ws := f.SlowestQuestions(-1)
	d.Questions = len(ws)
	if len(ws) > k {
		ws = ws[:k]
	}
	d.Slowest = ws
	return d
}
