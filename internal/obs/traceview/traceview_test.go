package traceview

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"kbrepair/internal/obs"
	"kbrepair/internal/obs/sched"
)

// fixture is a hand-built two-question trace in JSONL form (completion
// order: children end before parents), exercising parentage, orphan
// handling and attr decoding through the same path the CLI uses.
const fixture = `
{"type":"span","name":"conflict.scan","span":3,"parent":2,"start_us":1000,"dur_us":200,"attrs":{"conflicts":4,"naive":true}}
{"type":"span","name":"inquiry.init","span":2,"parent":1,"start_us":1000,"dur_us":400}
{"type":"event","name":"note","start_us":1500,"attrs":{"k":"v"}}
{"type":"span","name":"core.pi_batch","span":6,"parent":5,"start_us":1600,"dur_us":300,"attrs":{"batch":7}}
{"type":"span","name":"inquiry.sound_question","span":5,"parent":4,"start_us":1500,"dur_us":500}
{"type":"span","name":"inquiry.user_answer","span":7,"parent":4,"start_us":2000,"dur_us":100}
{"type":"span","name":"inquiry.question","span":4,"parent":1,"start_us":1450,"dur_us":750,"attrs":{"q":1,"phase":1,"delay_us":550,"conflicts":4,"fixes":3}}
{"type":"span","name":"inquiry.sound_question","span":9,"parent":8,"start_us":2300,"dur_us":200}
{"type":"span","name":"inquiry.question","span":8,"parent":1,"start_us":2250,"dur_us":400,"attrs":{"q":2,"phase":2,"delay_us":220}}
{"type":"span","name":"inquiry.run","span":1,"start_us":900,"dur_us":2000,"attrs":{"strategy":"opti-mcd"}}
{"type":"span","name":"orphan.child","span":99,"parent":50,"start_us":3200,"dur_us":10}
`

func parseFixture(t *testing.T) *Forest {
	t.Helper()
	f, err := Parse(strings.NewReader(fixture))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseForestShape(t *testing.T) {
	f := parseFixture(t)
	if got := f.Spans(); got != 10 {
		t.Fatalf("Spans = %d, want 10", got)
	}
	// The orphan (parent 50 never completed) must surface as a root, not
	// vanish.
	if len(f.Roots) != 2 {
		t.Fatalf("roots = %d, want 2 (run + orphan)", len(f.Roots))
	}
	run := f.Roots[0]
	if run.Name != "inquiry.run" {
		t.Fatalf("first root = %s, want inquiry.run", run.Name)
	}
	if f.Roots[1].Name != "orphan.child" {
		t.Errorf("second root = %s, want orphan.child", f.Roots[1].Name)
	}
	var names []string
	for _, c := range run.Child {
		names = append(names, c.Name)
	}
	want := "inquiry.init,inquiry.question,inquiry.question"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("run children = %s, want %s", got, want)
	}
	if len(f.Events) != 1 || f.Events[0].Name != "note" {
		t.Errorf("events = %v", f.Events)
	}
}

func TestWaterfallSumsToTotal(t *testing.T) {
	f := parseFixture(t)
	ws := f.Waterfalls()
	if len(ws) != 2 {
		t.Fatalf("waterfalls = %d, want 2", len(ws))
	}
	w := ws[0]
	if w.Q != 1 || w.Phase != 1 || w.TotalUS != 750 || w.EngineDelayUS != 550 {
		t.Errorf("waterfall[0] header = %+v", w)
	}
	var sum int64
	for _, c := range w.Components {
		sum += c.DurUS
	}
	// The acceptance invariant: components + unattributed == total.
	if sum+w.UnattributedUS != w.TotalUS {
		t.Errorf("components %d + unattributed %d != total %d", sum, w.UnattributedUS, w.TotalUS)
	}
	if w.UnattributedUS != 750-500-100 {
		t.Errorf("unattributed = %d, want 150", w.UnattributedUS)
	}
	if len(w.Components) != 2 ||
		w.Components[0].Name != "inquiry.sound_question" ||
		w.Components[1].Name != "inquiry.user_answer" {
		t.Errorf("components = %+v", w.Components)
	}
}

func TestAggregateSelfTime(t *testing.T) {
	f := parseFixture(t)
	stats := f.Aggregate()
	byName := make(map[string]NameStat)
	for _, s := range stats {
		byName[s.Name] = s
	}
	// sound_question: totals 500+200, self excludes the 300us pi_batch.
	sq := byName["inquiry.sound_question"]
	if sq.Count != 2 || sq.TotalUS != 700 || sq.SelfUS != 400 || sq.MaxUS != 500 {
		t.Errorf("sound_question stat = %+v", sq)
	}
	run := byName["inquiry.run"]
	if run.SelfUS != 2000-400-750-400 {
		t.Errorf("run self = %d, want 450", run.SelfUS)
	}
}

func TestCriticalPath(t *testing.T) {
	f := parseFixture(t)
	var names []string
	for _, s := range f.CriticalPath() {
		names = append(names, s.Name)
	}
	want := "inquiry.run,inquiry.question,inquiry.sound_question,core.pi_batch"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("critical path = %s, want %s", got, want)
	}
}

func TestSlowestQuestions(t *testing.T) {
	f := parseFixture(t)
	ws := f.SlowestQuestions(1)
	if len(ws) != 1 || ws[0].Q != 1 {
		t.Fatalf("slowest = %+v, want question 1 (750us)", ws)
	}
}

func TestWriteChromeValidates(t *testing.T) {
	f := parseFixture(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, f); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
	if n != 11 { // 10 spans + 1 event
		t.Errorf("events = %d, want 11", n)
	}
}

func TestParseMalformedLine(t *testing.T) {
	_, err := Parse(strings.NewReader("{\"type\":\"span\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

func TestRingRoundTrip(t *testing.T) {
	// Records straight from a RingSink carry int64 attrs (no JSON round
	// trip); the waterfall reader must decode them identically.
	ring := obs.NewRingSink(64)
	tr := obs.NewTracer(ring)
	root := tr.StartSpan("inquiry.run")
	q := root.Child("inquiry.question", obs.Int("q", 1), obs.Int("phase", 2))
	c := q.Child("conflict.scan")
	c.End()
	q.End()
	root.End()
	f := ParseRecords(ring.Records())
	ws := f.Waterfalls()
	if len(ws) != 1 || ws[0].Q != 1 || ws[0].Phase != 2 {
		t.Fatalf("waterfalls = %+v", ws)
	}
	if len(ws[0].Components) != 1 || ws[0].Components[0].Name != "conflict.scan" {
		t.Errorf("components = %+v", ws[0].Components)
	}
}

func TestTracezHandler(t *testing.T) {
	// Without a ring the endpoint reports disabled rather than erroring.
	obs.SetTraceRing(nil)
	rec := httptest.NewRecorder()
	TracezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"enabled": false`) {
		t.Fatalf("disabled tracez: code=%d body=%s", rec.Code, rec.Body.String())
	}

	ring := obs.NewRingSink(64)
	tr := obs.NewTracer(ring)
	root := tr.StartSpan("inquiry.run")
	for i := 1; i <= 3; i++ {
		q := root.Child("inquiry.question", obs.Int("q", i))
		q.End()
	}
	root.End()
	obs.SetTraceRing(ring)
	defer obs.SetTraceRing(nil)

	rec = httptest.NewRecorder()
	TracezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?n=2", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"questions": 3`) {
		t.Errorf("missing question count: %s", body)
	}
	if got := strings.Count(body, `"total_us"`); got != 2 {
		t.Errorf("slowest entries = %d, want 2 (n=2): %s", got, body)
	}

	rec = httptest.NewRecorder()
	TracezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?n=-1", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: code = %d, want 400", rec.Code)
	}
}

func TestWriteChromeWithLanes(t *testing.T) {
	f := parseFixture(t)
	lanes := []sched.Interval{
		{Fanout: 1, Label: "conflict.scan", Lane: 0, Task: 0, StartUS: 1000, EndUS: 1100},
		{Fanout: 1, Label: "conflict.scan", Lane: 1, Task: 1, StartUS: 1005, EndUS: 1150},
		{Fanout: 2, Label: "chase.spec", Lane: 0, Task: 0, StartUS: 1600, EndUS: 1700},
	}
	var buf bytes.Buffer
	if err := WriteChromeWithLanes(&buf, f, lanes); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("lane-extended chrome output fails validation: %v", err)
	}
	// 10 spans + 1 event + 3 lane intervals + 2 thread_name metadata records.
	if n != 16 {
		t.Fatalf("ValidateChrome counted %d events, want 16", n)
	}
	out := buf.String()
	for _, want := range []string{
		`"tid": 100`, `"tid": 101`, // lane rows offset by laneTIDBase
		`"worker lane 0"`, `"worker lane 1"`, // thread_name metadata
		`"fanout": 2`, `"ph": "M"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome output missing %s", want)
		}
	}
	// Without lanes, WriteChrome output is unchanged by the extension.
	var plain bytes.Buffer
	if err := WriteChrome(&plain, f); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), `"ph": "M"`) {
		t.Error("plain WriteChrome emits lane metadata")
	}
}

func TestValidateChromeAcceptsMetadataPhase(t *testing.T) {
	ok := `{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":100}]}`
	if n, err := ValidateChrome([]byte(ok)); err != nil || n != 1 {
		t.Fatalf("metadata record rejected: n=%d err=%v", n, err)
	}
	bad := `{"traceEvents":[{"name":"x","ph":"Q","pid":1,"tid":1}]}`
	if _, err := ValidateChrome([]byte(bad)); err == nil {
		t.Fatal("unsupported phase accepted")
	}
}
