// Package traceview turns the flat JSONL span stream written by
// internal/obs into causal structure: a span forest, per-question latency
// waterfalls, self/total-time aggregation, critical paths, and Chrome
// trace_event export. It is the analysis layer behind cmd/kbtrace, the
// /tracez debug handler, the kbbench report's trace section, and the trace
// section of debug bundles.
package traceview

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"kbrepair/internal/obs"
)

// Span is one completed span with its children attached. Children are the
// spans whose parent id is this span's id, ordered by start time (ties by
// id), which on the engine's single emitting goroutine is execution order.
type Span struct {
	ID      uint64         `json:"span"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Child   []*Span        `json:"children,omitempty"`
}

// EndUS returns the span's end timestamp.
func (s *Span) EndUS() int64 { return s.StartUS + s.DurUS }

// SelfUS returns the span's self time: its duration minus the duration of
// its direct children. Spans are emitted from a single goroutine per run,
// so children never overlap and self time is well defined (it can still go
// negative on a malformed trace; callers render it as-is).
func (s *Span) SelfUS() int64 {
	self := s.DurUS
	for _, c := range s.Child {
		self -= c.DurUS
	}
	return self
}

// AttrInt reads an integer attribute. Values arrive as int64 from the live
// ring sink but as float64 after a JSON round trip, so both are accepted.
func (s *Span) AttrInt(key string) (int64, bool) {
	return attrInt(s.Attrs, key)
}

func attrInt(attrs map[string]any, key string) (int64, bool) {
	switch v := attrs[key].(type) {
	case int64:
		return v, true
	case int:
		return int64(v), true
	case float64:
		return int64(v), true
	default:
		return 0, false
	}
}

// Event is a point event from the trace.
type Event struct {
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Forest is a parsed trace: the span trees plus the loose events.
type Forest struct {
	// Roots are the parentless spans (plus orphans whose parent never
	// completed, e.g. a run cut off mid-flight), ordered by start time.
	Roots []*Span
	// ByID indexes every span.
	ByID map[uint64]*Span
	// Events holds the point events in stream order.
	Events []Event
}

// ParseRecords builds the span forest from already-decoded records — the
// path used on the live ring sink. Records from a ring may be truncated at
// the front; spans whose parent is missing become roots.
func ParseRecords(recs []obs.Record) *Forest {
	f := &Forest{ByID: make(map[uint64]*Span)}
	var spans []*Span
	for _, r := range recs {
		switch r.Type {
		case "span":
			s := &Span{
				ID:      r.Span,
				Parent:  r.Parent,
				Name:    r.Name,
				StartUS: r.StartUS,
				DurUS:   r.DurUS,
				Attrs:   r.Attrs,
			}
			spans = append(spans, s)
			f.ByID[s.ID] = s
		case "event":
			f.Events = append(f.Events, Event{Name: r.Name, StartUS: r.StartUS, Attrs: r.Attrs})
		}
	}
	for _, s := range spans {
		if s.Parent != 0 {
			if p, ok := f.ByID[s.Parent]; ok {
				p.Child = append(p.Child, s)
				continue
			}
		}
		f.Roots = append(f.Roots, s)
	}
	byStart := func(ss []*Span) {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].StartUS != ss[j].StartUS {
				return ss[i].StartUS < ss[j].StartUS
			}
			return ss[i].ID < ss[j].ID
		})
	}
	byStart(f.Roots)
	for _, s := range spans {
		byStart(s.Child)
	}
	return f
}

// Parse reads a JSONL trace (the -trace file format) into a forest. Blank
// lines are skipped; a malformed line is an error naming its line number.
func Parse(r io.Reader) (*Forest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var recs []obs.Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec obs.Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ParseRecords(recs), nil
}

// Walk visits every span of the forest in depth-first pre-order.
func (f *Forest) Walk(visit func(*Span)) {
	var rec func(*Span)
	rec = func(s *Span) {
		visit(s)
		for _, c := range s.Child {
			rec(c)
		}
	}
	for _, r := range f.Roots {
		rec(r)
	}
}

// Spans returns the number of spans in the forest.
func (f *Forest) Spans() int { return len(f.ByID) }
