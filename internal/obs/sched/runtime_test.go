package sched

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"kbrepair/internal/obs"
)

func TestReadRuntimePopulatesStats(t *testing.T) {
	runtime.GC() // guarantee at least one GC cycle and pause sample
	st := ReadRuntime()
	if st.Goroutines < 1 {
		t.Errorf("Goroutines = %d, want >= 1", st.Goroutines)
	}
	if st.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d, want >= 1", st.GOMAXPROCS)
	}
	if st.HeapLiveBytes == 0 {
		t.Error("HeapLiveBytes = 0")
	}
	if st.HeapGoalBytes == 0 {
		t.Error("HeapGoalBytes = 0")
	}
	if st.GCCycles == 0 {
		t.Error("GCCycles = 0 after an explicit runtime.GC()")
	}
	if st.GCPauses.Count == 0 {
		t.Error("GCPauses.Count = 0 after an explicit runtime.GC()")
	}
	if st.GCPauses.P50 > st.GCPauses.P99 || st.GCPauses.P99 > st.GCPauses.Max {
		t.Errorf("GC pause quantiles not monotone: %+v", st.GCPauses)
	}
}

func TestReadRuntimeRefreshesGauges(t *testing.T) {
	st := ReadRuntime()
	snap := obs.Default().Snapshot()
	g, ok := snap.Gauges["runtime.goroutines"]
	if !ok {
		t.Fatal("runtime.goroutines gauge not registered after ReadRuntime")
	}
	if g == 0 {
		t.Error("runtime.goroutines gauge = 0")
	}
	if hl := snap.Gauges["runtime.heap_live_bytes"]; hl <= 0 {
		t.Errorf("runtime.heap_live_bytes gauge = %d", hl)
	}
	_ = st
}

func TestRuntimePollerStartStop(t *testing.T) {
	p := StartRuntimePoller(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	p.Stop() // must not hang or panic
	var nilP *RuntimePoller
	nilP.Stop() // nil-safe
}

func TestWriteRuntimeProm(t *testing.T) {
	runtime.GC()
	var sb strings.Builder
	if err := writeRuntimeProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE kbrepair_runtime_gc_pauses_seconds histogram",
		"kbrepair_runtime_gc_pauses_seconds_count",
		"kbrepair_runtime_gc_pauses_seconds_sum",
		"_bucket{le=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}
