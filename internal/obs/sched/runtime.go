package sched

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"kbrepair/internal/obs"
)

// Runtime metric names read per poll. Histogram-kinded samples get a
// HistSummary; the rest become registry gauges so they flow through the
// JSONL time-series sampler, /metrics and debug bundles for free.
const (
	mGoroutines = "/sched/goroutines:goroutines"
	mHeapLive   = "/gc/heap/live:bytes"
	mHeapGoal   = "/gc/heap/goal:bytes"
	mGCCycles   = "/gc/cycles/total:gc-cycles"
	mGCPauses   = "/gc/pauses:seconds"
	mSchedLat   = "/sched/latencies:seconds"
	mGOMAXPROCS = "/sched/gomaxprocs:threads"
)

// HistSummary condenses a runtime/metrics float histogram into the
// quantiles a human (or /schedz poller) actually reads. Quantiles are
// bucket upper bounds, so they overestimate by at most one bucket width.
type HistSummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// RuntimeStats is one reading of the Go runtime's own telemetry: the
// bundle runtime.json section and part of the /schedz payload.
type RuntimeStats struct {
	Goroutines     int64       `json:"goroutines"`
	GOMAXPROCS     int64       `json:"gomaxprocs"`
	HeapLiveBytes  uint64      `json:"heap_live_bytes"`
	HeapGoalBytes  uint64      `json:"heap_goal_bytes"`
	GCCycles       uint64      `json:"gc_cycles"`
	GCPauses       HistSummary `json:"gc_pauses_seconds"`
	SchedLatencies HistSummary `json:"sched_latencies_seconds"`
}

// Runtime gauges are registered lazily on the first ReadRuntime call, so
// processes that never poll (plain CLI runs, the bench gate) keep their
// metrics snapshots free of machine-noise series.
var (
	runtimeGaugesOnce sync.Once
	gGoroutines       *obs.Gauge
	gHeapLive         *obs.Gauge
	gHeapGoal         *obs.Gauge
	gGCCycles         *obs.Gauge
	gGCPauseP99US     *obs.Gauge
	gSchedLatP99US    *obs.Gauge
)

func runtimeGauges() {
	runtimeGaugesOnce.Do(func() {
		gGoroutines = obs.NewGauge("runtime.goroutines")
		gHeapLive = obs.NewGauge("runtime.heap_live_bytes")
		gHeapGoal = obs.NewGauge("runtime.heap_goal_bytes")
		gGCCycles = obs.NewGauge("runtime.gc_cycles")
		gGCPauseP99US = obs.NewGauge("runtime.gc_pause_p99_us")
		gSchedLatP99US = obs.NewGauge("runtime.sched_latency_p99_us")
	})
}

func readSamples() []metrics.Sample {
	// A fresh slice per read: ReadRuntime is called concurrently by the
	// poller, /schedz and bundle capture, and metrics.Read writes in place.
	return []metrics.Sample{
		{Name: mGoroutines},
		{Name: mHeapLive},
		{Name: mHeapGoal},
		{Name: mGCCycles},
		{Name: mGCPauses},
		{Name: mSchedLat},
		{Name: mGOMAXPROCS},
	}
}

func sampleUint(s metrics.Sample) uint64 {
	if s.Value.Kind() == metrics.KindUint64 {
		return s.Value.Uint64()
	}
	return 0
}

// summarizeHist reduces a runtime float histogram to count + quantiles.
func summarizeHist(s metrics.Sample) HistSummary {
	var out HistSummary
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return out
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return out
	}
	for _, c := range h.Counts {
		out.Count += c
	}
	if out.Count == 0 {
		return out
	}
	// Upper bound of bucket i is Buckets[i+1]; the last bucket's bound may
	// be +Inf, in which case its lower bound is the honest answer.
	bound := func(i int) float64 {
		hi := h.Buckets[i+1]
		if math.IsInf(hi, 1) {
			return h.Buckets[i]
		}
		return hi
	}
	quantile := func(q float64) float64 {
		target := uint64(math.Ceil(q * float64(out.Count)))
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			if cum >= target {
				return bound(i)
			}
		}
		return bound(len(h.Counts) - 1)
	}
	out.P50 = quantile(0.50)
	out.P90 = quantile(0.90)
	out.P99 = quantile(0.99)
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > 0 {
			out.Max = bound(i)
			break
		}
	}
	return out
}

// ReadRuntime polls runtime/metrics once, refreshes the runtime.* gauges
// on the default registry (registering them on first use) and returns
// the reading. Cheap enough (a handful of atomic reads inside the
// runtime) to call from /schedz, bundle capture and a 250ms poller.
func ReadRuntime() *RuntimeStats {
	runtimeGauges()
	samples := readSamples()
	metrics.Read(samples)
	st := &RuntimeStats{}
	for _, s := range samples {
		switch s.Name {
		case mGoroutines:
			st.Goroutines = int64(sampleUint(s))
		case mGOMAXPROCS:
			st.GOMAXPROCS = int64(sampleUint(s))
		case mHeapLive:
			st.HeapLiveBytes = sampleUint(s)
		case mHeapGoal:
			st.HeapGoalBytes = sampleUint(s)
		case mGCCycles:
			st.GCCycles = sampleUint(s)
		case mGCPauses:
			st.GCPauses = summarizeHist(s)
		case mSchedLat:
			st.SchedLatencies = summarizeHist(s)
		}
	}
	gGoroutines.Set(st.Goroutines)
	gHeapLive.Set(int64(st.HeapLiveBytes))
	gHeapGoal.Set(int64(st.HeapGoalBytes))
	gGCCycles.Set(int64(st.GCCycles))
	gGCPauseP99US.Set(int64(st.GCPauses.P99 * 1e6))
	gSchedLatP99US.Set(int64(st.SchedLatencies.P99 * 1e6))
	return st
}

// RuntimePoller periodically refreshes the runtime.* gauges so the JSONL
// time-series sampler and Prometheus scrapes see live values.
type RuntimePoller struct {
	stop chan struct{}
	done chan struct{}
}

// StartRuntimePoller begins polling every interval (<= 0 uses
// obs.DefaultSampleEvery). Stop it with Stop.
func StartRuntimePoller(every time.Duration) *RuntimePoller {
	if every <= 0 {
		every = obs.DefaultSampleEvery
	}
	p := &RuntimePoller{stop: make(chan struct{}), done: make(chan struct{})}
	ReadRuntime()
	go func() {
		defer close(p.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				ReadRuntime()
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// Stop halts the poller and waits for its goroutine to exit.
func (p *RuntimePoller) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	<-p.done
}

// writeRuntimeProm renders the two runtime histograms (GC pauses, sched
// latencies) in Prometheus exposition format, straight from a fresh
// runtime/metrics read — the full distributions, not just the gauge
// quantiles. Zero-count bucket runs are collapsed to keep scrapes small;
// a cumulative histogram stays valid under bucket elision.
func writeRuntimeProm(w io.Writer) error {
	samples := readSamples()
	metrics.Read(samples)
	for _, s := range samples {
		var pn string
		switch s.Name {
		case mGCPauses:
			pn = obs.PromName("runtime.gc_pauses_seconds")
		case mSchedLat:
			pn = obs.PromName("runtime.sched_latencies_seconds")
		default:
			continue
		}
		if s.Value.Kind() != metrics.KindFloat64Histogram {
			continue
		}
		h := s.Value.Float64Histogram()
		if h == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum, total uint64
		var sum float64
		for i, c := range h.Counts {
			total += c
			if c > 0 {
				mid := h.Buckets[i]
				if !math.IsInf(h.Buckets[i+1], 1) && !math.IsInf(h.Buckets[i], -1) {
					mid = (h.Buckets[i] + h.Buckets[i+1]) / 2
				}
				sum += mid * float64(c)
			}
		}
		for i, c := range h.Counts {
			cum += c
			if c == 0 && cum != total {
				continue // collapse empty runs; keep the final cumulative point
			}
			le := "+Inf"
			if !math.IsInf(h.Buckets[i+1], 1) {
				le = fmt.Sprintf("%g", h.Buckets[i+1])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
				return err
			}
			if cum == total {
				break
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, sum, pn, total); err != nil {
			return err
		}
	}
	return nil
}
