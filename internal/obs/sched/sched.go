// Package sched is the parallel-efficiency layer of the observability
// stack: worker-lane timelines for every par fan-out, a runtime/metrics
// poller, and the /schedz debug endpoint. It answers the question the
// span tracer and counters cannot — where do the cores idle — by
// recording, per fan-out, which lane (worker goroutine slot) ran which
// task over which microsecond interval.
//
// Lane data is observability-only. It is kept in its own ring, never in
// the trace stream, so the pipeline's byte-identical-output-across-worker-
// counts invariant is untouched: enabling sched recording changes no
// repair output and no trace byte. Timestamps are read from the
// injectable tracer clock (obs.Now) so exported lanes line up with span
// rows in Chrome trace output.
//
// Like the flight recorder and attr families, the disabled path is one
// atomic load and zero allocations: Begin returns a nil *Fanout, and all
// methods are nil-receiver no-ops, so par.Do pays nothing until a CLI
// opts in (-sched, -pprof, or a kbbench report run).
package sched

import (
	"sort"
	"sync"
	"sync/atomic"

	"kbrepair/internal/obs"
)

// DefaultCapacity is the interval-ring size Enable uses when given 0:
// 16Ki intervals cover hundreds of recent fan-outs at the pipeline's
// task granularity (one homomorphism search or rule firing per task).
const DefaultCapacity = 1 << 14

// Interval is one completed task execution on a lane: the record behind
// per-lane rows in Chrome trace exports and the /schedz timeline.
type Interval struct {
	Fanout  uint64 `json:"fanout"`
	Label   string `json:"label"`
	Lane    int    `json:"lane"`
	Task    int    `json:"task"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
}

// LabelAgg aggregates every fan-out that ran under one label (one call
// site: "chase.spec", "conflict.scan", …). WorkerUS is the capacity —
// workers × window — so BusyUS/WorkerUS is the label's utilization.
// TopWallUS counts only non-nested fan-outs: nested ones (a chase fanning
// out inside a Π-check worker) overlap their parent's window and must not
// be double-counted against total wall time.
type LabelAgg struct {
	Label          string `json:"label"`
	Fanouts        int64  `json:"fanouts"`
	NestedFanouts  int64  `json:"nested_fanouts,omitempty"`
	AbortedFanouts int64  `json:"aborted_fanouts,omitempty"`
	Tasks          int64  `json:"tasks"`
	WallUS         int64  `json:"wall_us"`
	TopWallUS      int64  `json:"top_wall_us"`
	BusyUS         int64  `json:"busy_us"`
	WorkerUS       int64  `json:"worker_us"`
	MaxWorkers     int    `json:"max_workers"`
}

// Snapshot is the recorder's exported state: what /schedz serves, what a
// debug bundle's sched.json holds, and what -sched writes at exit.
type Snapshot struct {
	Enabled           bool       `json:"enabled"`
	FanoutsTotal      uint64     `json:"fanouts_total"`
	OpenFanouts       int64      `json:"open_fanouts"`
	AbortedFanouts    int64      `json:"aborted_fanouts"`
	IntervalsTotal    uint64     `json:"intervals_total"`
	IntervalsRetained int        `json:"intervals_retained"`
	Labels            []LabelAgg `json:"labels,omitempty"`
	Intervals         []Interval `json:"intervals,omitempty"`
}

// Recorder holds the interval ring and per-label aggregates. All methods
// are safe for concurrent use; the hot path (one append per task) takes
// one short mutex hold, matching the flight recorder's design point —
// tasks here are coarse (whole homomorphism searches), so a contended
// ring append is noise.
type Recorder struct {
	fanouts   atomic.Uint64 // fan-out id source
	active    atomic.Int64  // fan-outs begun and not yet ended (nesting detector)
	open      atomic.Int64  // same, but only decremented by End — balance check
	mu        sync.Mutex
	intervals []Interval // ring storage
	next      int
	wrapped   bool
	total     uint64
	aborted   int64
	labels    map[string]*LabelAgg
}

// NewRecorder builds a recorder with the given ring capacity (0 means
// DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		intervals: make([]Interval, capacity),
		labels:    make(map[string]*LabelAgg),
	}
}

// current is the process-wide recorder; nil means disabled, making the
// disabled path of Begin a single atomic load.
var current atomic.Pointer[Recorder]

// Enabled reports whether lane recording is on.
func Enabled() bool { return current.Load() != nil }

// Enable installs a fresh process-wide recorder with the given ring
// capacity (0 = DefaultCapacity) and returns it. Any previous recorder
// and its data are dropped.
func Enable(capacity int) *Recorder {
	r := NewRecorder(capacity)
	current.Store(r)
	return r
}

// Disable turns lane recording off and drops the recorder.
func Disable() { current.Store(nil) }

// Current returns the process-wide recorder, or nil when disabled.
func Current() *Recorder { return current.Load() }

// Fanout is one in-flight par.Do dispatch. A nil *Fanout (recording
// disabled) is valid: every method is a no-op.
type Fanout struct {
	r       *Recorder
	id      uint64
	label   string
	tasks   int
	workers int
	nested  bool
	startUS int64
	done    atomic.Int64
	busyUS  atomic.Int64
}

// nowUS reads the injectable tracer clock in microseconds, so lane
// intervals share a timebase with span records.
func nowUS() int64 { return obs.Now().UnixMicro() }

// Begin opens a fan-out of tasks over workers lanes under label, or
// returns nil when recording is disabled. Pair with End (defer it so
// panic propagation out of the fan-out still balances the books).
func Begin(label string, tasks, workers int) *Fanout {
	r := current.Load()
	if r == nil {
		return nil
	}
	f := &Fanout{r: r, label: label, tasks: tasks, workers: workers}
	f.nested = r.active.Add(1) > 1
	r.open.Add(1)
	f.id = r.fanouts.Add(1)
	f.startUS = nowUS()
	return f
}

// Start stamps the beginning of one task's busy interval. On a nil
// receiver it returns 0 without touching the clock.
func (f *Fanout) Start() int64 {
	if f == nil {
		return 0
	}
	return nowUS()
}

// Task records one completed task: lane is the worker slot (0-based, 0
// on the inline path), task the task index, startUS the matching Start
// stamp. Safe to call from any worker goroutine.
func (f *Fanout) Task(lane, task int, startUS int64) {
	if f == nil {
		return
	}
	end := nowUS()
	f.done.Add(1)
	f.busyUS.Add(end - startUS)
	r := f.r
	r.mu.Lock()
	r.intervals[r.next] = Interval{
		Fanout: f.id, Label: f.label, Lane: lane, Task: task,
		StartUS: startUS, EndUS: end,
	}
	r.next++
	if r.next == len(r.intervals) {
		r.next = 0
		r.wrapped = true
	}
	r.total++
	r.mu.Unlock()
}

// End closes the fan-out and folds it into the per-label aggregates. A
// fan-out whose recorded task count falls short of its planned count
// (a panic on the inline path skips the remaining tasks) is counted as
// aborted rather than left open, so Begin/End stay balanced on every
// exit path.
func (f *Fanout) End() {
	if f == nil {
		return
	}
	end := nowUS()
	r := f.r
	r.active.Add(-1)
	r.open.Add(-1)
	wall := end - f.startUS
	done := f.done.Load()
	r.mu.Lock()
	a := r.labels[f.label]
	if a == nil {
		a = &LabelAgg{Label: f.label}
		r.labels[f.label] = a
	}
	a.Fanouts++
	a.Tasks += done
	a.WallUS += wall
	if f.nested {
		a.NestedFanouts++
	} else {
		a.TopWallUS += wall
	}
	a.BusyUS += f.busyUS.Load()
	a.WorkerUS += int64(f.workers) * wall
	if f.workers > a.MaxWorkers {
		a.MaxWorkers = f.workers
	}
	if done != int64(f.tasks) {
		a.AbortedFanouts++
		r.aborted++
	}
	r.mu.Unlock()
}

// Snapshot copies the recorder's state: aggregates sorted by label,
// intervals oldest-first.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{
		Enabled:      true,
		FanoutsTotal: r.fanouts.Load(),
		OpenFanouts:  r.open.Load(),
	}
	r.mu.Lock()
	s.IntervalsTotal = r.total
	s.AbortedFanouts = r.aborted
	if r.wrapped {
		s.Intervals = make([]Interval, 0, len(r.intervals))
		s.Intervals = append(s.Intervals, r.intervals[r.next:]...)
		s.Intervals = append(s.Intervals, r.intervals[:r.next]...)
	} else {
		s.Intervals = append([]Interval(nil), r.intervals[:r.next]...)
	}
	s.Labels = make([]LabelAgg, 0, len(r.labels))
	for _, a := range r.labels {
		s.Labels = append(s.Labels, *a)
	}
	r.mu.Unlock()
	s.IntervalsRetained = len(s.Intervals)
	sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Label < s.Labels[j].Label })
	return s
}

// Capture snapshots the process-wide recorder, or returns nil when
// recording is disabled — the bundle-section contract (nil section is
// omitted), shared with attr.Capture.
func Capture() *Snapshot {
	r := current.Load()
	if r == nil {
		return nil
	}
	return r.Snapshot()
}
