package sched

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"kbrepair/internal/obs"
)

// schedzPayload is what /schedz serves: the lane snapshot (or just
// {"enabled": false}) plus a fresh runtime/metrics reading.
type schedzPayload struct {
	Enabled bool          `json:"enabled"`
	Sched   *Snapshot     `json:"sched,omitempty"`
	Runtime *RuntimeStats `json:"runtime"`
}

// SchedzHandler serves the live parallel-efficiency view as JSON:
// per-label utilization aggregates, the recent lane intervals (bounded
// by ?intervals=N, default 64) and current runtime telemetry.
func SchedzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		p := schedzPayload{Runtime: ReadRuntime()}
		if s := Capture(); s != nil {
			keep := 64
			if q := req.URL.Query().Get("intervals"); q != "" {
				if n, err := strconv.Atoi(q); err == nil && n >= 0 {
					keep = n
				}
			}
			if len(s.Intervals) > keep {
				s.Intervals = s.Intervals[len(s.Intervals)-keep:]
			}
			p.Enabled = true
			p.Sched = s
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
}

func init() {
	obs.RegisterDebugHandler("/schedz", SchedzHandler())
	obs.RegisterPromAppender(writeRuntimeProm)
}

// Config is the scheduling-observability surface the CLIs expose.
type Config struct {
	// SchedPath, when non-empty, enables lane recording and writes the
	// final Snapshot there as JSON at flush time.
	SchedPath string
}

// AddFlags registers the shared -sched flag on fs, mirroring obs.AddFlags
// so all CLIs expose an identical surface. Pass the result to SetupCLI
// after fs is parsed.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.SchedPath, "sched", "",
		"record worker-lane timelines and write the scheduling snapshot as JSON to this file on exit")
	return c
}

// SetupCLI wires the sched layer for a CLI: lane recording turns on when
// -sched was given or the debug server is up (so /schedz has data), and
// the runtime/metrics poller runs whenever any observability output is
// live. The returned flush stops the poller and writes the -sched
// snapshot; call it once on exit. The output file is created eagerly so
// an unwritable path fails before any work is done.
func SetupCLI(c Config, obsCfg obs.CLIConfig) (flush func() error, err error) {
	var out *os.File
	if c.SchedPath != "" {
		out, err = os.Create(c.SchedPath)
		if err != nil {
			return nil, fmt.Errorf("sched output: %w", err)
		}
	}
	if c.SchedPath != "" || obsCfg.PprofAddr != "" {
		Enable(0)
	}
	var poller *RuntimePoller
	if c.SchedPath != "" || obsCfg.Enabled() {
		every := obsCfg.SampleEvery
		if every <= 0 {
			every = obs.DefaultSampleEvery
		}
		poller = StartRuntimePoller(every)
	}
	return func() error {
		poller.Stop()
		if out == nil {
			return nil
		}
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = fmt.Errorf("sched output: %w", err)
			}
		}
		s := Capture()
		if s == nil {
			s = &Snapshot{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		keep(enc.Encode(s))
		keep(out.Close())
		return first
	}, nil
}

// ReadSnapshotFile loads a Snapshot written by SetupCLI's flush (the
// -sched output) — what kbtrace -sched consumes.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sched snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("sched snapshot %s: %w", path, err)
	}
	return &s, nil
}
