package sched

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"kbrepair/internal/obs"
)

// withRecorder installs a fresh recorder for one test and removes it after.
func withRecorder(t *testing.T, capacity int) *Recorder {
	t.Helper()
	r := Enable(capacity)
	t.Cleanup(Disable)
	return r
}

func TestDisabledBeginReturnsNil(t *testing.T) {
	Disable()
	if f := Begin("x", 4, 2); f != nil {
		t.Fatalf("Begin with recording disabled = %v, want nil", f)
	}
	// All methods must be nil-receiver safe.
	var f *Fanout
	if got := f.Start(); got != 0 {
		t.Errorf("nil Start() = %d, want 0", got)
	}
	f.Task(0, 0, 0)
	f.End()
}

// TestDisabledPathAllocates0 is the AllocsPerRun guard behind the
// zero-cost-when-off contract: the entire Begin/Start/Task/End sequence on
// the disabled path must not allocate.
func TestDisabledPathAllocates0(t *testing.T) {
	Disable()
	allocs := testing.AllocsPerRun(200, func() {
		f := Begin("chase.spec", 8, 4)
		t0 := f.Start()
		f.Task(0, 0, t0)
		f.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled sched path allocates %.1f per fan-out, want 0", allocs)
	}
}

// BenchmarkSchedDisabled measures the disabled fast path par.Do pays on
// every fan-out when no CLI opted in — one atomic load in Begin plus
// nil-receiver no-ops.
func BenchmarkSchedDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := Begin("bench", 8, 4)
		t0 := f.Start()
		f.Task(0, 0, t0)
		f.End()
	}
}

func BenchmarkSchedEnabledTask(b *testing.B) {
	Enable(0)
	defer Disable()
	f := Begin("bench", b.N, 1)
	defer f.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := f.Start()
		f.Task(0, i, t0)
	}
}

func TestFanoutAggregation(t *testing.T) {
	withRecorder(t, 0)
	f := Begin("phase.a", 3, 2)
	if f == nil {
		t.Fatal("Begin returned nil with recording enabled")
	}
	for i := 0; i < 3; i++ {
		t0 := f.Start()
		f.Task(i%2, i, t0)
	}
	f.End()
	s := Capture()
	if s == nil {
		t.Fatal("Capture returned nil with recording enabled")
	}
	if s.FanoutsTotal != 1 || s.OpenFanouts != 0 || s.AbortedFanouts != 0 {
		t.Fatalf("totals = %d open %d aborted %d, want 1/0/0",
			s.FanoutsTotal, s.OpenFanouts, s.AbortedFanouts)
	}
	if s.IntervalsRetained != 3 || s.IntervalsTotal != 3 {
		t.Fatalf("intervals retained %d total %d, want 3/3", s.IntervalsRetained, s.IntervalsTotal)
	}
	if len(s.Labels) != 1 {
		t.Fatalf("labels = %v, want one", s.Labels)
	}
	a := s.Labels[0]
	if a.Label != "phase.a" || a.Fanouts != 1 || a.Tasks != 3 || a.MaxWorkers != 2 {
		t.Fatalf("agg = %+v", a)
	}
	if a.WorkerUS != 2*a.WallUS {
		t.Fatalf("WorkerUS %d != workers*WallUS %d", a.WorkerUS, 2*a.WallUS)
	}
	if a.TopWallUS != a.WallUS {
		t.Fatalf("top-level fan-out: TopWallUS %d != WallUS %d", a.TopWallUS, a.WallUS)
	}
}

func TestNestedFanoutExcludedFromTopWall(t *testing.T) {
	withRecorder(t, 0)
	outer := Begin("outer", 1, 2)
	inner := Begin("inner", 1, 2)
	t0 := inner.Start()
	inner.Task(0, 0, t0)
	inner.End()
	t0 = outer.Start()
	outer.Task(0, 0, t0)
	outer.End()
	s := Capture()
	for _, a := range s.Labels {
		switch a.Label {
		case "outer":
			if a.NestedFanouts != 0 || a.TopWallUS != a.WallUS {
				t.Errorf("outer agg = %+v, want top-level", a)
			}
		case "inner":
			if a.NestedFanouts != 1 || a.TopWallUS != 0 {
				t.Errorf("inner agg = %+v, want nested with zero TopWallUS", a)
			}
		}
	}
}

func TestShortfallCountsAsAborted(t *testing.T) {
	withRecorder(t, 0)
	f := Begin("phase.p", 4, 1)
	t0 := f.Start()
	f.Task(0, 0, t0)
	// Simulates the inline path unwinding on a panic: tasks 1..3 never run,
	// but the deferred End still fires.
	f.End()
	s := Capture()
	if s.OpenFanouts != 0 {
		t.Fatalf("OpenFanouts = %d, want 0 (End ran)", s.OpenFanouts)
	}
	if s.AbortedFanouts != 1 {
		t.Fatalf("AbortedFanouts = %d, want 1 (3 planned tasks never recorded)", s.AbortedFanouts)
	}
	if s.Labels[0].AbortedFanouts != 1 {
		t.Fatalf("label agg aborted = %d, want 1", s.Labels[0].AbortedFanouts)
	}
}

func TestRingWrapKeepsNewestOldestFirst(t *testing.T) {
	withRecorder(t, 4)
	f := Begin("wrap", 10, 1)
	for i := 0; i < 10; i++ {
		t0 := f.Start()
		f.Task(0, i, t0)
	}
	f.End()
	s := Capture()
	if s.IntervalsTotal != 10 || s.IntervalsRetained != 4 {
		t.Fatalf("total %d retained %d, want 10/4", s.IntervalsTotal, s.IntervalsRetained)
	}
	for j, iv := range s.Intervals {
		if want := 6 + j; iv.Task != want {
			t.Fatalf("interval %d has task %d, want %d (newest four, oldest first)", j, iv.Task, want)
		}
	}
}

func TestSnapshotJSONRoundtrip(t *testing.T) {
	withRecorder(t, 0)
	f := Begin("phase.a", 1, 1)
	t0 := f.Start()
	f.Task(0, 0, t0)
	f.End()
	s := Capture()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.FanoutsTotal != s.FanoutsTotal || len(back.Labels) != len(s.Labels) ||
		len(back.Intervals) != len(s.Intervals) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", back, s)
	}
}

func TestSchedzHandler(t *testing.T) {
	Disable()
	h := SchedzHandler()
	req := httptest.NewRequest("GET", "/schedz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var p struct {
		Enabled bool            `json:"enabled"`
		Sched   *Snapshot       `json:"sched"`
		Runtime json.RawMessage `json:"runtime"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("disabled /schedz: %v (%s)", err, rec.Body.String())
	}
	if p.Enabled || p.Sched != nil || len(p.Runtime) == 0 {
		t.Fatalf("disabled /schedz payload = %s", rec.Body.String())
	}

	withRecorder(t, 0)
	f := Begin("phase.z", 100, 1)
	for i := 0; i < 100; i++ {
		t0 := f.Start()
		f.Task(0, i, t0)
	}
	f.End()
	req = httptest.NewRequest("GET", "/schedz?intervals=5", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Enabled || p.Sched == nil {
		t.Fatalf("enabled /schedz payload = %s", rec.Body.String())
	}
	if len(p.Sched.Intervals) != 5 {
		t.Fatalf("?intervals=5 kept %d intervals", len(p.Sched.Intervals))
	}
	if p.Sched.Intervals[4].Task != 99 {
		t.Fatalf("kept intervals should be the newest; last task = %d", p.Sched.Intervals[4].Task)
	}
}

func TestSetupCLIWritesSnapshot(t *testing.T) {
	Disable()
	path := filepath.Join(t.TempDir(), "sched.json")
	flush, err := SetupCLI(Config{SchedPath: path}, obs.CLIConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("-sched did not enable lane recording")
	}
	f := Begin("phase.s", 2, 1)
	for i := 0; i < 2; i++ {
		t0 := f.Start()
		f.Task(0, i, t0)
	}
	f.End()
	if err := flush(); err != nil {
		t.Fatal(err)
	}
	Disable()
	s, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Enabled || s.FanoutsTotal != 1 || len(s.Labels) != 1 || s.Labels[0].Label != "phase.s" {
		t.Fatalf("snapshot file = %+v", s)
	}
}

func TestSetupCLIRejectsUnwritablePath(t *testing.T) {
	Disable()
	defer Disable()
	if _, err := SetupCLI(Config{SchedPath: filepath.Join(t.TempDir(), "no", "such", "dir.json")}, obs.CLIConfig{}); err == nil {
		t.Fatal("SetupCLI accepted an unwritable -sched path")
	}
}

func TestSetupCLINoopWithoutFlags(t *testing.T) {
	Disable()
	flush, err := SetupCLI(Config{}, obs.CLIConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("SetupCLI enabled recording with no flags set")
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSnapshotFileErrors(t *testing.T) {
	if _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(bad); err == nil {
		t.Error("malformed file accepted")
	}
}
