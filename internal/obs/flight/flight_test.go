package flight

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// resetGlobal detaches any process-wide recorder after a test so tests stay
// independent.
func resetGlobal(t *testing.T) {
	t.Helper()
	t.Cleanup(Disable)
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 10; i++ {
		r.record(KindChaseRoundStart, int64(i), 0, 0, 0, "")
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq {
			t.Errorf("event %d: seq = %d, want %d (oldest first)", i, e.Seq, wantSeq)
		}
		if e.N1 != int64(wantSeq) {
			t.Errorf("event %d: N1 = %d, want %d", i, e.N1, wantSeq)
		}
	}
	if events[0].TUS > events[3].TUS {
		t.Errorf("timestamps not monotone: %d then %d", events[0].TUS, events[3].TUS)
	}
}

func TestRecorderPartialRing(t *testing.T) {
	r := NewRecorder(8)
	r.record(KindQuestion, 1, 2, 3, 4, "")
	r.record(KindAnswer, 5, 6, 1, 0, "v")
	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("retained %d events, want 2", len(events))
	}
	if events[0].Kind != KindQuestion || events[1].Kind != KindAnswer {
		t.Fatalf("wrong kinds: %v, %v", events[0].Kind, events[1].Kind)
	}
}

func TestEventJSONFieldNames(t *testing.T) {
	e := Event{Seq: 3, TUS: 150, Kind: KindChaseRoundEnd, N1: 2, N2: 7, N3: 1, N4: 5}
	var m map[string]any
	if err := json.Unmarshal(e.JSON(), &m); err != nil {
		t.Fatalf("event JSON invalid: %v\n%s", err, e.JSON())
	}
	want := map[string]float64{
		"seq": 3, "t_us": 150, "round": 2, "derived": 7, "deferred": 1, "firings": 5,
	}
	for k, v := range want {
		if got, ok := m[k].(float64); !ok || got != v {
			t.Errorf("field %q = %v, want %v", k, m[k], v)
		}
	}
	if m["kind"] != "chase.round_end" {
		t.Errorf("kind = %v, want chase.round_end", m["kind"])
	}
}

// TestRoundEndStatusJSON pins the abnormal-exit rendering of chase round
// ends: all four payload slots plus the status marker — and that a normal
// round end (empty status) omits the field entirely, keeping existing
// timelines byte-stable.
func TestRoundEndStatusJSON(t *testing.T) {
	resetGlobal(t)
	r := Enable(16)
	RecordNote4(KindChaseRoundEnd, 3, 0, 2, 9, RoundStatusBudget)
	events := r.Events()
	if len(events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(events))
	}
	var m map[string]any
	if err := json.Unmarshal(events[0].JSON(), &m); err != nil {
		t.Fatalf("event JSON invalid: %v\n%s", err, events[0].JSON())
	}
	for k, v := range map[string]float64{"round": 3, "derived": 0, "deferred": 2, "firings": 9} {
		if got, ok := m[k].(float64); !ok || got != v {
			t.Errorf("field %q = %v, want %v", k, m[k], v)
		}
	}
	if m["status"] != RoundStatusBudget {
		t.Errorf("status = %v, want %q", m["status"], RoundStatusBudget)
	}
	// Normal end: no status field.
	normal := Event{Kind: KindChaseRoundEnd, N1: 1}
	var n map[string]any
	if err := json.Unmarshal(normal.JSON(), &n); err != nil {
		t.Fatal(err)
	}
	if _, present := n["status"]; present {
		t.Error("empty status rendered on a normal round end")
	}
}

func TestEventJSONNote(t *testing.T) {
	e := Event{Seq: 1, Kind: KindAnswer, N1: 4, N2: 0, N3: 1, Note: `pa"d`}
	var m map[string]any
	if err := json.Unmarshal(e.JSON(), &m); err != nil {
		t.Fatalf("event JSON invalid: %v\n%s", err, e.JSON())
	}
	if m["value"] != `pa"d` {
		t.Errorf("note field value = %v, want the quoted original", m["value"])
	}
	if _, present := m["n4"]; present {
		t.Error("unused slot rendered")
	}
}

func TestGlobalRecordDisabledAndEnabled(t *testing.T) {
	resetGlobal(t)
	Disable()
	Record(KindQuestion, 1, 2, 3, 4) // must not panic with no recorder
	if Active() {
		t.Fatal("Active() true after Disable")
	}
	r := Enable(16)
	Record(KindQuestion, 1, 2, 3, 4)
	RecordNote(KindAnswer, 1, 0, 0, "x")
	if got := r.Total(); got != 2 {
		t.Fatalf("recorded %d events, want 2", got)
	}
	Disable()
	Record(KindQuestion, 9, 9, 9, 9)
	if got := r.Total(); got != 2 {
		t.Fatalf("recorded after Disable: total = %d, want 2", got)
	}
}

// TestRecordDisabledZeroAlloc pins the acceptance criterion directly: with
// no recorder installed, the instrumentation call sites in the chase and
// inquiry hot paths must not allocate.
func TestRecordDisabledZeroAlloc(t *testing.T) {
	resetGlobal(t)
	Disable()
	if n := testing.AllocsPerRun(1000, func() {
		Record(KindChaseRoundStart, 1, 2, 3, 4)
		RecordNote(KindAnomaly, 1, 2, 3, AnomalyNoProgress)
	}); n != 0 {
		t.Fatalf("disabled Record allocates %v allocs/op, want 0", n)
	}
}

// TestRecordEnabledZeroAlloc: the enabled path is a stamped copy into a
// pre-allocated slot — also allocation-free.
func TestRecordEnabledZeroAlloc(t *testing.T) {
	resetGlobal(t)
	Enable(64)
	if n := testing.AllocsPerRun(1000, func() {
		Record(KindChaseRoundStart, 1, 2, 3, 4)
	}); n != 0 {
		t.Fatalf("enabled Record allocates %v allocs/op, want 0", n)
	}
}

// BenchmarkFlightRecordDisabled is the benchmark-guarded form (same pattern
// as obs.BenchmarkSamplerDisabled): run with -benchmem, expect 0 allocs/op.
func BenchmarkFlightRecordDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Record(KindChaseRoundStart, int64(i), 2, 3, 4)
	}
}

func BenchmarkFlightRecordEnabled(b *testing.B) {
	Enable(DefaultCapacity)
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Record(KindChaseRoundStart, int64(i), 2, 3, 4)
	}
}

// TestConcurrentRecordAndCapture hammers the ring from several writer
// goroutines while concurrently capturing bundles — the signal-handler /
// /debugz scenario. Run under -race this is the append-vs-dump race guard;
// it also checks every captured event line is whole (valid JSON, known
// kind).
func TestConcurrentRecordAndCapture(t *testing.T) {
	resetGlobal(t)
	Enable(256)
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				Record(KindParDispatch, int64(g), int64(i), 0, 0)
				RecordNote(KindAnomaly, int64(i), 0, 0, AnomalyLatencySpike)
			}
		}(g)
	}
	var captures int
	var capWG sync.WaitGroup
	capWG.Add(1)
	go func() {
		defer capWG.Done()
		// Capture before checking stop so at least one capture happens even
		// when a single-CPU scheduler runs the writers to completion first.
		for {
			b := Capture("test")
			captures++
			for _, raw := range b.Events {
				var m map[string]any
				if err := json.Unmarshal(raw, &m); err != nil {
					t.Errorf("captured event is torn: %v\n%s", err, raw)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	capWG.Wait()
	if captures == 0 {
		t.Fatal("capture goroutine never ran")
	}
	r := Current()
	// Each Capture also records a KindBundleDump event.
	want := uint64(writers*perWriter*2 + captures)
	if got := r.Total(); got != want {
		t.Fatalf("total events = %d, want %d", got, want)
	}
}

func TestWatchdogNoProgress(t *testing.T) {
	resetGlobal(t)
	r := Enable(128)
	SessionBegin()
	ObserveQuestion(1, 10, time.Millisecond)
	for i := 0; i < NoProgressK; i++ {
		ObserveQuestion(1, 10, time.Millisecond) // never below the minimum
	}
	if !hasAnomaly(r, AnomalyNoProgress) {
		t.Fatal("no-progress anomaly not recorded after a stall")
	}

	// A fresh session with strictly decreasing conflicts must stay clean.
	// Fresh recorder too: the ring still holds the stall's anomaly.
	r = Enable(128)
	SessionBegin()
	for i := 0; i < 3*NoProgressK; i++ {
		ObserveQuestion(1, 100-i, time.Millisecond)
	}
	if hasAnomaly(r, AnomalyNoProgress) {
		t.Fatal("no-progress anomaly on a strictly improving session")
	}
}

func TestWatchdogNoProgressPhaseTransition(t *testing.T) {
	resetGlobal(t)
	r := Enable(128)
	SessionBegin()
	// Phase 1 drives the count to 1; phase 2 legitimately starts higher.
	for i := 0; i < 4; i++ {
		ObserveQuestion(1, 4-i, time.Millisecond)
	}
	for i := 0; i < NoProgressK-1; i++ {
		ObserveQuestion(2, 20-i, time.Millisecond)
	}
	if hasAnomaly(r, AnomalyNoProgress) {
		t.Fatal("phase transition misread as a stall")
	}
}

func TestWatchdogLatencySpike(t *testing.T) {
	resetGlobal(t)
	r := Enable(128)
	SessionBegin()
	for i := 0; i < SpikeMinSamples; i++ {
		ObserveQuestion(1, 100-i, 2*time.Millisecond)
	}
	if hasAnomaly(r, AnomalyLatencySpike) {
		t.Fatal("spike anomaly on uniform delays")
	}
	// One pathological question: far beyond SpikeFactor × median and the
	// floor.
	ObserveQuestion(1, 50, 2*time.Second)
	if !hasAnomaly(r, AnomalyLatencySpike) {
		t.Fatal("latency spike not detected")
	}
}

func TestWatchdogChaseOverrun(t *testing.T) {
	resetGlobal(t)
	r := Enable(128)
	SessionBegin()
	const maxRounds = 10
	for round := 1; round <= 7; round++ {
		ObserveChaseRound(round, maxRounds)
	}
	if hasAnomaly(r, AnomalyChaseOverrun) {
		t.Fatal("overrun flagged below the budget fraction")
	}
	ObserveChaseRound(8, maxRounds) // 80% of 10
	if !hasAnomaly(r, AnomalyChaseOverrun) {
		t.Fatal("overrun not flagged at the budget fraction")
	}
	n := countAnomalies(r, AnomalyChaseOverrun)
	ObserveChaseRound(9, maxRounds)
	if countAnomalies(r, AnomalyChaseOverrun) != n {
		t.Fatal("overrun flagged twice for one run")
	}
	// A new run (round counter restarts) re-arms the detector.
	ObserveChaseRound(1, maxRounds)
	ObserveChaseRound(9, maxRounds)
	if countAnomalies(r, AnomalyChaseOverrun) != n+1 {
		t.Fatal("overrun not re-armed for a new chase run")
	}
}

func hasAnomaly(r *Recorder, name string) bool { return countAnomalies(r, name) > 0 }

func countAnomalies(r *Recorder, name string) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == KindAnomaly && e.Note == name {
			n++
		}
	}
	return n
}

func TestKindStrings(t *testing.T) {
	for k := KindSessionStart; k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestResizePreservesHistory(t *testing.T) {
	resetGlobal(t)
	Enable(8)
	for i := 1; i <= 5; i++ {
		Record(KindChaseRoundStart, int64(i), 0, 0, 0)
	}
	before := Current().Events()
	Resize(64)
	r := Current()
	if r.Capacity() != 64 {
		t.Fatalf("capacity = %d, want 64", r.Capacity())
	}
	if got := r.Total(); got != 5 {
		t.Fatalf("Total() = %d, want 5 (sequence must carry over)", got)
	}
	after := r.Events()
	if len(after) != len(before) {
		t.Fatalf("retained %d events, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("event %d changed across resize: %+v vs %+v", i, before[i], after[i])
		}
	}
	// Sequence numbering continues where it left off.
	Record(KindChaseRoundEnd, 6, 0, 0, 0)
	events := r.Events()
	if last := events[len(events)-1]; last.Seq != 6 {
		t.Fatalf("post-resize seq = %d, want 6", last.Seq)
	}
}

func TestResizeShrinkDropsOldest(t *testing.T) {
	resetGlobal(t)
	Enable(8)
	for i := 1; i <= 8; i++ {
		Record(KindChaseRoundStart, int64(i), 0, 0, 0)
	}
	Resize(3)
	r := Current()
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	for i, e := range events {
		if want := int64(i + 6); e.N1 != want {
			t.Fatalf("event %d: N1 = %d, want %d (newest three)", i, e.N1, want)
		}
	}
	if r.Total() != 8 {
		t.Fatalf("Total() = %d, want 8", r.Total())
	}
	// The shrunk ring is full: the next record evicts the oldest survivor.
	Record(KindChaseRoundStart, 9, 0, 0, 0)
	events = r.Events()
	if len(events) != 3 || events[0].N1 != 7 || events[2].N1 != 9 {
		t.Fatalf("ring after post-shrink record: %+v", events)
	}
}

func TestResizeWithoutRecorderIsNoop(t *testing.T) {
	resetGlobal(t)
	Disable()
	Resize(128)
	if Active() {
		t.Fatal("Resize installed a recorder where none was active")
	}
}

func TestAutosizeCapacityClamps(t *testing.T) {
	cases := []struct{ facts, want int }{
		{0, DefaultCapacity},
		{10, DefaultCapacity},
		{DefaultCapacity, DefaultCapacity * 8},
		{1 << 18, MaxAutosizeCapacity},
		{1 << 30, MaxAutosizeCapacity},
	}
	for _, tc := range cases {
		if got := AutosizeCapacity(tc.facts); got != tc.want {
			t.Errorf("AutosizeCapacity(%d) = %d, want %d", tc.facts, got, tc.want)
		}
	}
}

func TestConfigAutosizeRespectsExplicitCapacity(t *testing.T) {
	resetGlobal(t)
	Enable(DefaultCapacity)
	// Default config (Events == 0): autosize wins.
	Config{}.Autosize(100_000)
	if got, want := Current().Capacity(), AutosizeCapacity(100_000); got != want {
		t.Fatalf("autosized capacity = %d, want %d", got, want)
	}
	// Explicit -flight-events: autosize must not touch the ring.
	Enable(512)
	Config{Events: 512}.Autosize(100_000)
	if got := Current().Capacity(); got != 512 {
		t.Fatalf("explicit capacity overridden: %d", got)
	}
}
