//go:build !unix

package flight

// notifySignals is a no-op on platforms without SIGQUIT/SIGUSR1; the
// /debugz endpoint and the at-exit dump still work.
func notifySignals(dir string) {}
