// Package flight is the post-mortem layer of the observability stack: an
// always-on, fixed-size flight recorder of structured pipeline events, the
// debug-bundle dumper that captures the last moments of a run (events,
// metrics, goroutine stacks, build stamp, KB digest, inquiry journal), and
// the anomaly watchdogs that flag a stalling or pathological repair session
// while it is still running.
//
// Where internal/obs answers "how much, how fast" with counters and
// histograms, flight answers "what just happened": when a long interactive
// repair session stalls, loops or dies, the ring buffer holds the ordered
// tail of chase rounds, conflict scans, questions, answers and
// Π-repairability outcomes that led there.
//
// Design rules, continuing the obs contract:
//
//   - the disabled path is zero-alloc and lock-free: Record with no active
//     recorder is one atomic pointer load (BenchmarkFlightRecordDisabled
//     pins this down, the same guard pattern as BenchmarkSamplerDisabled);
//   - events are fixed-size values — a kind, four int64 payload slots and
//     one (pre-existing) string — so the enabled path allocates nothing
//     either: one short mutex-guarded copy into a pre-allocated slot;
//   - instrumented packages call Record unconditionally; nothing in the
//     pipeline ever formats, allocates or branches on behalf of the
//     recorder beyond that single load.
package flight

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies what a flight event describes. The numeric payload slots
// N1..N4 and the Note string are interpreted per kind; kindSpecs names them
// for the JSONL dump, so bundles are self-describing.
type Kind uint8

const (
	kindInvalid Kind = iota
	// KindSessionStart opens an inquiry session: facts, naive conflicts,
	// total (chase-level) conflicts; Note is the strategy name.
	KindSessionStart
	// KindChaseRoundStart: round number and delta size (facts the round's
	// trigger collection is seeded with).
	KindChaseRoundStart
	// KindChaseRoundEnd: round number, facts derived this round, triggers
	// evaluated this round that were deferred across the round-start
	// snapshot boundary, and rule firings this round. Note is the exit
	// status — empty for a normally completed round, or one of the
	// RoundStatus* markers when the chase left the round early. Every
	// KindChaseRoundStart is balanced by exactly one KindChaseRoundEnd,
	// whatever path the chase exits through; kbdump timelines and
	// traceview waterfalls rely on the pairing.
	KindChaseRoundEnd
	// KindConflictScan summarizes one detection pass: CDDs scanned,
	// conflicts found, and whether the scan was chase-level (1) or naive (0).
	KindConflictScan
	// KindTrackerUpdate: the updated fact id, hyperedges removed, added.
	KindTrackerUpdate
	// KindQuestion: phase, fixes offered, conflicts remaining, and the
	// question-generation delay in microseconds.
	KindQuestion
	// KindAnswer: fact id and argument of the chosen fix, whether the value
	// is a labeled null (1) or a constant (0); Note is the value.
	KindAnswer
	// KindPiBatch summarizes one Π-repairability filtering batch: fast-path
	// hits, full Algorithm 1 checks, and fixes accepted.
	KindPiBatch
	// KindParDispatch: tasks fanned out and the worker-pool size.
	KindParDispatch
	// KindAnomaly is a watchdog detection; Note names the anomaly and
	// N1/N2 carry the observed value and the threshold it crossed.
	KindAnomaly
	// KindBundleDump marks a debug-bundle capture; Note is the reason, so a
	// later bundle shows earlier dumps in its own timeline.
	KindBundleDump
	// KindHomoSearch summarizes one homomorphism search: body atoms,
	// backtrack nodes visited, store index probes, matches enumerated.
	KindHomoSearch

	numKinds
)

// kindSpec names a kind and its payload slots for the JSONL rendering.
// Empty field names mean the slot is unused for that kind and is omitted.
type kindSpec struct {
	name   string
	fields [4]string
	note   string
}

var kindSpecs = [numKinds]kindSpec{
	KindSessionStart:    {"inquiry.session_start", [4]string{"facts", "naive_conflicts", "total_conflicts", ""}, "strategy"},
	KindChaseRoundStart: {"chase.round_start", [4]string{"round", "delta", "", ""}, ""},
	KindChaseRoundEnd:   {"chase.round_end", [4]string{"round", "derived", "deferred", "firings"}, "status"},
	KindConflictScan:    {"conflict.scan", [4]string{"cdds", "found", "chase_level", ""}, ""},
	KindTrackerUpdate:   {"conflict.tracker_update", [4]string{"fact", "removed", "added", ""}, ""},
	KindQuestion:        {"inquiry.question", [4]string{"phase", "fixes", "conflicts", "delay_us"}, ""},
	KindAnswer:          {"inquiry.answer", [4]string{"fact", "arg", "null", ""}, "value"},
	KindPiBatch:         {"core.pi_batch", [4]string{"fast_hits", "full_checks", "accepted", ""}, ""},
	KindParDispatch:     {"par.dispatch", [4]string{"tasks", "workers", "", ""}, ""},
	KindAnomaly:         {"anomaly", [4]string{"value", "threshold", "", ""}, "anomaly"},
	KindBundleDump:      {"flight.bundle_dump", [4]string{"", "", "", ""}, "reason"},
	KindHomoSearch:      {"homo.search", [4]string{"body", "nodes", "probes", "matches"}, ""},
}

// String returns the dotted event name of the kind.
func (k Kind) String() string {
	if k < numKinds && kindSpecs[k].name != "" {
		return kindSpecs[k].name
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one flight-recorder entry: a sequence number (total order over
// the whole run, so a dump shows how much history the ring evicted), a
// monotonic timestamp in microseconds since the recorder was enabled, the
// kind, and the kind-specific payload. The struct is all values — recording
// one is a plain copy.
type Event struct {
	Seq  uint64
	TUS  int64
	Kind Kind
	N1   int64
	N2   int64
	N3   int64
	N4   int64
	Note string
}

// appendJSON renders the event as one self-describing JSON object with the
// kind's field names. Dump-path only; the hot path never formats.
func (e Event) appendJSON(b *bytes.Buffer) {
	spec := kindSpecs[kindInvalid]
	if e.Kind < numKinds {
		spec = kindSpecs[e.Kind]
	}
	name := spec.name
	if name == "" {
		name = fmt.Sprintf("kind(%d)", uint8(e.Kind))
	}
	fmt.Fprintf(b, `{"seq":%d,"t_us":%d,"kind":%q`, e.Seq, e.TUS, name)
	ns := [4]int64{e.N1, e.N2, e.N3, e.N4}
	for i, f := range spec.fields {
		if f != "" {
			fmt.Fprintf(b, `,%q:%d`, f, ns[i])
		}
	}
	if spec.note != "" && e.Note != "" {
		// json.Marshal for the value: KB constants may hold characters
		// strconv.Quote would escape in non-JSON ways.
		v, err := json.Marshal(e.Note)
		if err == nil {
			fmt.Fprintf(b, `,%q:%s`, spec.note, v)
		}
	}
	b.WriteByte('}')
}

// JSON returns the event's JSONL line (without the trailing newline).
func (e Event) JSON() []byte {
	var b bytes.Buffer
	e.appendJSON(&b)
	return b.Bytes()
}

// Recorder is the fixed-size ring buffer. Appends are a short critical
// section — stamp, copy into a pre-allocated slot, advance — guarded by a
// mutex so concurrent writers (the par fan-outs dispatch from whatever
// goroutine drives them) and a concurrent bundle dump always see whole
// events. No allocation happens after construction.
type Recorder struct {
	start time.Time

	mu   sync.Mutex
	buf  []Event
	next int
	full bool
	seq  uint64
}

// DefaultCapacity is the ring size the CLIs enable by default: enough to
// hold the full recent history of a long interactive session (hundreds of
// questions, each a handful of events) at a few hundred KB of memory.
const DefaultCapacity = 8192

// NewRecorder returns a recorder retaining the last capacity events
// (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{start: time.Now(), buf: make([]Event, capacity)}
}

// record stamps and appends one event.
func (r *Recorder) record(k Kind, n1, n2, n3, n4 int64, note string) {
	t := time.Since(r.start).Microseconds()
	r.mu.Lock()
	r.seq++
	r.buf[r.next] = Event{Seq: r.seq, TUS: t, Kind: k, N1: n1, N2: n2, N3: n3, N4: n4, Note: note}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events ever recorded (≥ len(Events()); the
// difference is what the ring evicted).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int { return len(r.buf) }

// active is the process-wide recorder. The disabled path — no recorder —
// is one atomic load and must stay allocation-free: instrumented code calls
// Record unconditionally from hot loops.
var active atomic.Pointer[Recorder]

// Enable installs a fresh process-wide recorder of the given capacity
// (<= 0 uses DefaultCapacity) and returns it.
func Enable(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := NewRecorder(capacity)
	active.Store(r)
	return r
}

// Disable removes the process-wide recorder.
func Disable() { active.Store(nil) }

// MaxAutosizeCapacity bounds what AutosizeCapacity will pick: a ~1M-event
// ring is tens of MB, plenty of tail for the largest KBs the experiments
// load; anything bigger should be an explicit -flight-events choice.
const MaxAutosizeCapacity = 1 << 20

// AutosizeCapacity picks a ring capacity from the KB size: eight events per
// fact covers the event volume of a full repair session over the retained
// window (each question touches a handful of chase, scan and Π events),
// clamped to [DefaultCapacity, MaxAutosizeCapacity].
func AutosizeCapacity(facts int) int {
	c := facts * 8
	if c < DefaultCapacity {
		return DefaultCapacity
	}
	if c > MaxAutosizeCapacity {
		return MaxAutosizeCapacity
	}
	return c
}

// Resize replaces the process-wide recorder with one of the given capacity
// (<= 0 uses DefaultCapacity), carrying over the retained events, sequence
// numbering and time base, so events recorded before the resize — flag
// parsing, KB load — keep their timestamps and stay in the dump. No-op
// when no recorder is installed.
func Resize(capacity int) {
	r := active.Load()
	if r == nil {
		return
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	events := r.Events()
	if drop := len(events) - capacity; drop > 0 {
		events = events[drop:]
	}
	nw := &Recorder{start: r.start, buf: make([]Event, capacity)}
	copy(nw.buf, events)
	nw.next = len(events)
	if nw.next == capacity {
		nw.next = 0
		nw.full = true
	}
	nw.seq = r.Total()
	active.Store(nw)
}

// Active reports whether a process-wide recorder is installed.
func Active() bool { return active.Load() != nil }

// Current returns the process-wide recorder, or nil.
func Current() *Recorder { return active.Load() }

// Record appends a numeric-payload event to the process-wide recorder, if
// one is installed. The disabled path is a single atomic load, no
// allocation; callers pass zeros for unused slots.
func Record(k Kind, n1, n2, n3, n4 int64) {
	if r := active.Load(); r != nil {
		r.record(k, n1, n2, n3, n4, "")
	}
}

// RecordNote is Record with a string payload. Callers must pass an
// already-materialized string (never format one for the call), so the
// disabled path stays allocation-free.
func RecordNote(k Kind, n1, n2, n3 int64, note string) {
	if r := active.Load(); r != nil {
		r.record(k, n1, n2, n3, 0, note)
	}
}

// RecordNote4 is RecordNote with all four numeric slots — for kinds like
// KindChaseRoundEnd whose payload uses every slot alongside the note. The
// same pre-materialized-string rule applies.
func RecordNote4(k Kind, n1, n2, n3, n4 int64, note string) {
	if r := active.Load(); r != nil {
		r.record(k, n1, n2, n3, n4, note)
	}
}

// Exit-status markers for KindChaseRoundEnd's note slot. Constants so the
// chase's record calls never allocate a string.
const (
	// RoundStatusAborted: the ⊥ optimization derived the abort predicate
	// and stopped the chase inside this round — expected early exit.
	RoundStatusAborted = "aborted"
	// RoundStatusBudget: the round or derivation budget was exceeded.
	RoundStatusBudget = "budget"
	// RoundStatusError: a firing failed; the chase returned an error.
	RoundStatusError = "error"
)
