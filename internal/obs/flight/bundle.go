package flight

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/sched"
	"kbrepair/internal/obs/traceview"
)

// BundleSchemaVersion identifies the debug-bundle layout; bump on breaking
// changes so kbdump can refuse files it cannot interpret.
const BundleSchemaVersion = 1

// Env is the build/flag/environment stamp of a bundle: enough to tell
// which binary, on which machine, with which invocation produced it.
type Env struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	PID         int    `json:"pid"`
	Hostname    string `json:"hostname,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
}

// CurrentEnv captures the running process's environment stamp.
func CurrentEnv() Env {
	host, _ := os.Hostname()
	e := Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PID:        os.Getpid(),
		Hostname:   host,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				e.VCSRevision = s.Value
			}
		}
	}
	return e
}

// Manifest is the bundle header: schema, provenance and section inventory.
type Manifest struct {
	SchemaVersion  int      `json:"schema_version"`
	CreatedUnix    int64    `json:"created_unix"`
	Reason         string   `json:"reason"`
	Cmd            string   `json:"cmd,omitempty"`
	Args           []string `json:"args,omitempty"`
	Env            Env      `json:"env"`
	EventsTotal    uint64   `json:"events_total"`
	EventsRetained int      `json:"events_retained"`
	Sections       []string `json:"sections"`
}

// Bundle is a captured post-mortem document. As a directory (WriteDir) each
// section is its own file; over /debugz it is served as this single JSON
// object. Events are kept as raw JSON lines so the two forms round-trip.
type Bundle struct {
	Manifest
	Events     []json.RawMessage `json:"events"`
	Metrics    obs.Snapshot      `json:"metrics"`
	Goroutines string            `json:"goroutines"`
	KBDigest   json.RawMessage   `json:"kb_digest,omitempty"`
	Journal    json.RawMessage   `json:"journal,omitempty"`
	// Attr is the per-rule attribution snapshot; present only when
	// attribution was enabled at capture time (additive section, so the
	// schema version is unchanged).
	Attr *attr.Snapshot `json:"attr,omitempty"`
	// Trace is the question-latency digest of the process-wide trace ring:
	// the slowest recent questions with their waterfall decompositions.
	// Present only when tracing was on at capture time (additive section).
	Trace *traceview.Digest `json:"trace,omitempty"`
	// Sched is the worker-lane snapshot: per-label utilization aggregates
	// and recent lane intervals. Present only when sched recording was on
	// at capture time (additive section).
	Sched *sched.Snapshot `json:"sched,omitempty"`
	// Runtime is a fresh runtime/metrics reading (goroutines, heap
	// live/goal, GC pause and scheduling-latency quantiles) taken at
	// capture time (additive section).
	Runtime *sched.RuntimeStats `json:"runtime,omitempty"`
	// Plans is the join-plan annotation registry (internal/homo.PlanInfos):
	// per body, the kernel mode and the compile-time join order. Present
	// only when at least one plan was compiled (additive section).
	Plans json.RawMessage `json:"plans,omitempty"`
	// HeapProfile, MutexProfile and BlockProfile hold the corresponding
	// runtime/pprof profiles in their debug=1 text form — human-readable
	// next to goroutines.txt, and mutex/block are empty-but-present unless
	// -mutex-profile-fraction / -block-profile-rate enabled sampling
	// (additive sections).
	HeapProfile  string `json:"heap_profile,omitempty"`
	MutexProfile string `json:"mutex_profile,omitempty"`
	BlockProfile string `json:"block_profile,omitempty"`
}

// providers supply the KB-shaped sections the flight package cannot compute
// itself (it must not depend on core/inquiry — they depend on it). The
// returned values are marshaled at capture time, so providers must be safe
// to call from the signal-handler goroutine: return immutable values or an
// internally synchronized snapshot.
var (
	providerMu      sync.Mutex
	digestProvider  func() any
	journalProvider func() any
	plansProvider   func() any
	bundleCmd       string
)

// SetDigestProvider installs the KB-digest section source (nil clears it).
// The CLIs call it once the KB is loaded, with a precomputed digest.
func SetDigestProvider(fn func() any) {
	providerMu.Lock()
	defer providerMu.Unlock()
	digestProvider = fn
}

// SetJournalProvider installs the inquiry-journal section source (nil
// clears it). The provider is invoked concurrently with the session —
// it must return a synchronized snapshot.
func SetJournalProvider(fn func() any) {
	providerMu.Lock()
	defer providerMu.Unlock()
	journalProvider = fn
}

// SetPlansProvider installs the join-plan annotation section source (nil
// clears it). internal/homo registers it at init, so every bundle of a
// process that compiled plans carries their modes and orders; the provider
// must return an immutable snapshot (homo.PlanInfos copies).
func SetPlansProvider(fn func() any) {
	providerMu.Lock()
	defer providerMu.Unlock()
	plansProvider = fn
}

// setCmd stamps the command name used in manifests and fallback dump paths.
func setCmd(name string) {
	providerMu.Lock()
	defer providerMu.Unlock()
	bundleCmd = name
}

func marshalSection(fn func() any) json.RawMessage {
	if fn == nil {
		return nil
	}
	v := fn()
	if v == nil {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		data, _ = json.Marshal(map[string]string{"error": err.Error()})
	}
	return data
}

// Capture assembles a bundle from the current process state: the flight
// ring (empty if the recorder is disabled), a metrics snapshot of the
// default registry, all goroutine stacks, the environment stamp and the
// provider-supplied KB digest and inquiry journal. It also records a
// KindBundleDump event so later bundles show this capture in their
// timeline.
func Capture(reason string) *Bundle {
	RecordNote(KindBundleDump, 0, 0, 0, reason)
	providerMu.Lock()
	digFn, jrnFn, plnFn, cmd := digestProvider, journalProvider, plansProvider, bundleCmd
	providerMu.Unlock()

	b := &Bundle{
		Manifest: Manifest{
			SchemaVersion: BundleSchemaVersion,
			CreatedUnix:   time.Now().Unix(),
			Reason:        reason,
			Cmd:           cmd,
			Args:          os.Args,
			Env:           CurrentEnv(),
		},
		Metrics:      obs.Default().Snapshot(),
		Goroutines:   allStacks(),
		KBDigest:     marshalSection(digFn),
		Journal:      marshalSection(jrnFn),
		Plans:        marshalSection(plnFn),
		Attr:         attr.Capture(),
		Trace:        captureTrace(),
		Sched:        sched.Capture(),
		Runtime:      sched.ReadRuntime(),
		HeapProfile:  profileText("heap"),
		MutexProfile: profileText("mutex"),
		BlockProfile: profileText("block"),
	}
	if r := Current(); r != nil {
		events := r.Events()
		b.EventsTotal = r.Total()
		b.EventsRetained = len(events)
		b.Events = make([]json.RawMessage, len(events))
		for i, e := range events {
			b.Events[i] = json.RawMessage(e.JSON())
		}
	}
	b.Sections = b.sections()
	return b
}

func (b *Bundle) sections() []string {
	s := []string{"events.jsonl", "metrics.json", "goroutines.txt", "manifest.json"}
	if len(b.KBDigest) > 0 {
		s = append(s, "kb_digest.json")
	}
	if len(b.Journal) > 0 {
		s = append(s, "journal.json")
	}
	if len(b.Plans) > 0 {
		s = append(s, "plans.json")
	}
	if b.Attr != nil {
		s = append(s, "attr.json")
	}
	if b.Trace != nil {
		s = append(s, "trace.json")
	}
	if b.Sched != nil {
		s = append(s, "sched.json")
	}
	if b.Runtime != nil {
		s = append(s, "runtime.json")
	}
	if b.HeapProfile != "" {
		s = append(s, "heap.pprof")
	}
	if b.MutexProfile != "" {
		s = append(s, "mutex.pprof")
	}
	if b.BlockProfile != "" {
		s = append(s, "block.pprof")
	}
	return s
}

// profileText renders a runtime/pprof profile in its debug=1 text form,
// or "" when the profile does not exist. Safe from the signal-handler
// goroutine: the pprof package serializes profile collection internally.
func profileText(name string) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	return buf.String()
}

// BundleTraceQuestions is how many slowest question waterfalls a bundle's
// trace section retains.
const BundleTraceQuestions = 10

// captureTrace digests the process-wide trace ring, or returns nil when no
// ring is installed (tracing off). The ring is internally synchronized, so
// this is safe from the signal-handler goroutine like the other sections.
func captureTrace() *traceview.Digest {
	ring := obs.TraceRing()
	if ring == nil {
		return nil
	}
	return traceview.BuildDigest(ring.Records(), ring.Total(), BundleTraceQuestions)
}

// allStacks returns the stacks of every goroutine, growing the buffer until
// the dump fits.
func allStacks() string {
	buf := make([]byte, 1<<18)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, 2*len(buf))
	}
}

// WriteJSON writes the bundle as one JSON document (the /debugz format).
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteDir writes the bundle as a directory of section files:
//
//	manifest.json   schema, reason, cmd/args, env stamp, event counts
//	events.jsonl    the retained flight events, oldest first, one per line
//	metrics.json    obs registry snapshot
//	goroutines.txt  all goroutine stacks
//	kb_digest.json  predicate/rule/conflict digest of the loaded KB (if set)
//	journal.json    the inquiry journal so far (if set)
//	plans.json      join-plan annotations: per-body kernel mode and order
//	sched.json      worker-lane snapshot (if sched recording was on)
//	runtime.json    runtime/metrics reading at capture time
//	heap.pprof      heap profile, debug=1 text form
//	mutex.pprof     mutex contention profile (sampled only when enabled)
//	block.pprof     block profile (sampled only when enabled)
//
// The directory is created if needed. Existing section files are
// overwritten, so repeated dumps to the same directory keep the latest.
func (b *Bundle) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("debug bundle: %w", err)
	}
	var events bytes.Buffer
	for _, e := range b.Events {
		events.Write(e)
		events.WriteByte('\n')
	}
	manifest, err := json.MarshalIndent(b.Manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("debug bundle: %w", err)
	}
	metrics, err := json.MarshalIndent(b.Metrics, "", "  ")
	if err != nil {
		return fmt.Errorf("debug bundle: %w", err)
	}
	files := map[string][]byte{
		"manifest.json":  append(manifest, '\n'),
		"events.jsonl":   events.Bytes(),
		"metrics.json":   append(metrics, '\n'),
		"goroutines.txt": []byte(b.Goroutines),
	}
	if len(b.KBDigest) > 0 {
		files["kb_digest.json"] = append(append([]byte(nil), b.KBDigest...), '\n')
	}
	if len(b.Journal) > 0 {
		files["journal.json"] = append(append([]byte(nil), b.Journal...), '\n')
	}
	if len(b.Plans) > 0 {
		files["plans.json"] = append(append([]byte(nil), b.Plans...), '\n')
	}
	if b.Attr != nil {
		attrData, err := json.MarshalIndent(b.Attr, "", "  ")
		if err != nil {
			return fmt.Errorf("debug bundle: %w", err)
		}
		files["attr.json"] = append(attrData, '\n')
	}
	if b.Trace != nil {
		traceData, err := json.MarshalIndent(b.Trace, "", "  ")
		if err != nil {
			return fmt.Errorf("debug bundle: %w", err)
		}
		files["trace.json"] = append(traceData, '\n')
	}
	if b.Sched != nil {
		schedData, err := json.MarshalIndent(b.Sched, "", "  ")
		if err != nil {
			return fmt.Errorf("debug bundle: %w", err)
		}
		files["sched.json"] = append(schedData, '\n')
	}
	if b.Runtime != nil {
		rtData, err := json.MarshalIndent(b.Runtime, "", "  ")
		if err != nil {
			return fmt.Errorf("debug bundle: %w", err)
		}
		files["runtime.json"] = append(rtData, '\n')
	}
	if b.HeapProfile != "" {
		files["heap.pprof"] = []byte(b.HeapProfile)
	}
	if b.MutexProfile != "" {
		files["mutex.pprof"] = []byte(b.MutexProfile)
	}
	if b.BlockProfile != "" {
		files["block.pprof"] = []byte(b.BlockProfile)
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return fmt.Errorf("debug bundle: %w", err)
		}
	}
	return nil
}

// ReadBundle loads a bundle from a directory written by WriteDir or from a
// single-document JSON file (the /debugz format) — kbdump accepts both.
func ReadBundle(path string) (*Bundle, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("debug bundle: %w", err)
	}
	if !fi.IsDir() {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("debug bundle: %w", err)
		}
		var b Bundle
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("debug bundle %s: %w", path, err)
		}
		if b.SchemaVersion != BundleSchemaVersion {
			return nil, fmt.Errorf("debug bundle %s: schema version %d, this binary reads %d",
				path, b.SchemaVersion, BundleSchemaVersion)
		}
		return &b, nil
	}

	var b Bundle
	manifest, err := os.ReadFile(filepath.Join(path, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("debug bundle %s: %w", path, err)
	}
	if err := json.Unmarshal(manifest, &b.Manifest); err != nil {
		return nil, fmt.Errorf("debug bundle %s: manifest: %w", path, err)
	}
	if b.SchemaVersion != BundleSchemaVersion {
		return nil, fmt.Errorf("debug bundle %s: schema version %d, this binary reads %d",
			path, b.SchemaVersion, BundleSchemaVersion)
	}
	if data, err := os.ReadFile(filepath.Join(path, "events.jsonl")); err == nil {
		for _, line := range bytes.Split(data, []byte("\n")) {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
			if !json.Valid(line) {
				return nil, fmt.Errorf("debug bundle %s: events.jsonl holds an invalid line: %.80s", path, line)
			}
			b.Events = append(b.Events, json.RawMessage(append([]byte(nil), line...)))
		}
	}
	if data, err := os.ReadFile(filepath.Join(path, "metrics.json")); err == nil {
		if err := json.Unmarshal(data, &b.Metrics); err != nil {
			return nil, fmt.Errorf("debug bundle %s: metrics: %w", path, err)
		}
	}
	if data, err := os.ReadFile(filepath.Join(path, "goroutines.txt")); err == nil {
		b.Goroutines = string(data)
	}
	if data, err := os.ReadFile(filepath.Join(path, "kb_digest.json")); err == nil {
		b.KBDigest = json.RawMessage(bytes.TrimSpace(data))
	}
	if data, err := os.ReadFile(filepath.Join(path, "journal.json")); err == nil {
		b.Journal = json.RawMessage(bytes.TrimSpace(data))
	}
	if data, err := os.ReadFile(filepath.Join(path, "plans.json")); err == nil {
		b.Plans = json.RawMessage(bytes.TrimSpace(data))
	}
	if data, err := os.ReadFile(filepath.Join(path, "attr.json")); err == nil {
		var s attr.Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("debug bundle %s: attr: %w", path, err)
		}
		b.Attr = &s
	}
	if data, err := os.ReadFile(filepath.Join(path, "trace.json")); err == nil {
		var d traceview.Digest
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("debug bundle %s: trace: %w", path, err)
		}
		b.Trace = &d
	}
	if data, err := os.ReadFile(filepath.Join(path, "sched.json")); err == nil {
		var s sched.Snapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("debug bundle %s: sched: %w", path, err)
		}
		b.Sched = &s
	}
	if data, err := os.ReadFile(filepath.Join(path, "runtime.json")); err == nil {
		var r sched.RuntimeStats
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("debug bundle %s: runtime: %w", path, err)
		}
		b.Runtime = &r
	}
	if data, err := os.ReadFile(filepath.Join(path, "heap.pprof")); err == nil {
		b.HeapProfile = string(data)
	}
	if data, err := os.ReadFile(filepath.Join(path, "mutex.pprof")); err == nil {
		b.MutexProfile = string(data)
	}
	if data, err := os.ReadFile(filepath.Join(path, "block.pprof")); err == nil {
		b.BlockProfile = string(data)
	}
	return &b, nil
}

// Config is the post-mortem surface the CLIs expose as flags.
type Config struct {
	// BundleDir, when non-empty, receives a debug bundle at exit (and names
	// the target of signal/panic dumps). Empty leaves signal/panic dumps to
	// a per-process fallback under the OS temp directory.
	BundleDir string
	// Events is the flight-recorder capacity; 0 (the default) starts at
	// DefaultCapacity and lets Autosize grow the ring once the KB is
	// loaded, an explicit positive value is used as-is, and < 0 disables
	// the recorder entirely.
	Events int
}

// AddFlags registers the shared post-mortem flags on fs, mirroring
// obs.AddFlags so every CLI exposes an identical surface.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.BundleDir, "debug-bundle", "",
		"write a post-mortem debug bundle to this directory at exit (signal/panic dumps also land here)")
	fs.IntVar(&c.Events, "flight-events", 0,
		"flight recorder capacity in events (omit to autosize from the KB, negative disables)")
	return c
}

// Autosize resizes the process-wide recorder for a KB of the given fact
// count — only when the user left -flight-events at its default (an
// explicit capacity always wins). The CLIs call it right after the KB is
// loaded; events recorded before the call are carried over.
func (c Config) Autosize(facts int) {
	if c.Events != 0 {
		return
	}
	Resize(AutosizeCapacity(facts))
}

// dumpDir resolves where unsolicited (signal, panic) bundles go: the
// configured -debug-bundle directory, or a per-process directory under the
// OS temp dir so a crash always leaves something to inspect.
func (c Config) dumpDir(cmd string) string {
	if c.BundleDir != "" {
		return c.BundleDir
	}
	return filepath.Join(os.TempDir(), fmt.Sprintf("%s-bundle-%d", cmd, os.Getpid()))
}

// Setup wires the post-mortem machinery for a CLI: enables the always-on
// flight recorder (unless c.Events < 0), installs the SIGQUIT/SIGUSR1 dump
// handler, and returns the finish function main calls once on exit — it
// writes the at-exit bundle when -debug-bundle was given, else does
// nothing. Pair it with a deferred HandlePanic() in main.
func Setup(cmd string, c Config) (finish func() error) {
	setCmd(cmd)
	if c.Events >= 0 {
		Enable(c.Events)
	}
	dir := c.dumpDir(cmd)
	panicDir.Store(&dir)
	notifySignals(dir)
	if c.BundleDir == "" {
		return func() error { return nil }
	}
	return func() error {
		if err := Capture("exit").WriteDir(c.BundleDir); err != nil {
			return err
		}
		return nil
	}
}

// panicDir is where HandlePanic and the signal handler write; set by Setup.
var panicDir atomic.Pointer[string]

// HandlePanic is deferred at the top of each CLI's main: on a panic it
// captures a "panic" bundle (with the panic value stamped into the reason)
// and re-panics so the process still crashes loudly with the original
// stack. On the normal path it is a no-op.
func HandlePanic() {
	r := recover()
	if r == nil {
		return
	}
	var dir string
	if p := panicDir.Load(); p != nil {
		dir = *p
	}
	if dir == "" {
		dir = filepath.Join(os.TempDir(), fmt.Sprintf("kbrepair-bundle-%d", os.Getpid()))
	}
	reason := fmt.Sprintf("panic: %v", r)
	if err := Capture(reason).WriteDir(dir); err != nil {
		fmt.Fprintf(os.Stderr, "flight: panic bundle: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "flight: wrote panic debug bundle to %s\n", dir)
	}
	panic(r)
}

// debugzHandler serves the current bundle as a single JSON document — the
// on-demand dump of a live process, mounted at /debugz on obs.DebugMux.
func debugzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		reason := "http"
		if q := strings.TrimSpace(req.URL.Query().Get("reason")); q != "" {
			reason = "http:" + q
		}
		w.Header().Set("Content-Type", "application/json")
		// Render errors past the first byte cannot be reported over HTTP.
		_ = Capture(reason).WriteJSON(w)
	})
}

// TestBundleEnv, when set in the environment, names the directory tree
// test-failure bundles land in (one subdirectory per test binary). The
// repo's make test sets it so a red tier-1 run leaves post-mortem bundles
// for CI to upload.
const TestBundleEnv = "KBREPAIR_TEST_BUNDLE"

// DumpOnTestFailure writes a debug bundle when a test binary failed: call
// it from TestMain after m.Run, passing the exit code, before os.Exit. It
// is a no-op when the run passed or TestBundleEnv is unset, so regular
// local test runs never write anything.
func DumpOnTestFailure(code int) {
	root := os.Getenv(TestBundleEnv)
	if code == 0 || root == "" {
		return
	}
	name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".test")
	dir := filepath.Join(root, name)
	if err := Capture("test-failure").WriteDir(dir); err != nil {
		fmt.Fprintf(os.Stderr, "flight: test-failure bundle: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "flight: wrote test-failure debug bundle to %s\n", dir)
}

func init() {
	obs.RegisterDebugHandler("/debugz", debugzHandler())
}
