//go:build unix

package flight

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// signalOnce guards handler installation: Setup may run more than once in
// tests, and stacking handler goroutines would dump the same bundle twice.
var (
	signalOnce sync.Once
	signalDir  struct {
		sync.Mutex
		dir string
	}
)

// notifySignals installs the post-mortem signal handler:
//
//   - SIGUSR1 dumps a debug bundle and the process continues — the "what is
//     it doing right now" probe for a live session;
//   - SIGQUIT dumps a bundle, prints all goroutine stacks to stderr (what
//     the uncaught signal would have done) and exits with status 2, the
//     same status the runtime uses.
//
// Repeated calls only update the target directory.
func notifySignals(dir string) {
	signalDir.Lock()
	signalDir.dir = dir
	signalDir.Unlock()
	signalOnce.Do(func() {
		ch := make(chan os.Signal, 2)
		signal.Notify(ch, syscall.SIGQUIT, syscall.SIGUSR1)
		go func() {
			for sig := range ch {
				signalDir.Lock()
				target := signalDir.dir
				signalDir.Unlock()
				b := Capture("signal:" + sig.String())
				if err := b.WriteDir(target); err != nil {
					fmt.Fprintf(os.Stderr, "flight: %v bundle: %v\n", sig, err)
				} else {
					fmt.Fprintf(os.Stderr, "flight: wrote debug bundle to %s (%v)\n", target, sig)
				}
				if sig == syscall.SIGQUIT {
					fmt.Fprint(os.Stderr, b.Goroutines)
					os.Exit(2)
				}
			}
		}()
	})
}
