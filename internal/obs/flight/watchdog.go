package flight

import (
	"sort"
	"sync"
	"time"

	"kbrepair/internal/obs"
)

// Anomaly watchdogs: small online detectors fed from the inquiry engine and
// the chase loop that flag a session going wrong while it is still running.
// Each detection emits a KindAnomaly flight event (so the bundle timeline
// shows *when* it happened, between which questions) and bumps a
// kbrepair_anomaly_* gauge (so a dashboard alert fires on it). Gauges hold
// the number of detections in the current session and reset at
// SessionBegin.
//
// Detectors are deliberately cheap — one mutex-guarded update per question
// or chase round, nothing on the per-trigger hot path — so they are always
// on, independent of the recorder.

// Anomaly names, used as the Note of KindAnomaly events and (prefixed,
// dots-to-underscores) as the gauge names: kbrepair_anomaly_no_progress,
// kbrepair_anomaly_chase_round_overrun, kbrepair_anomaly_question_latency_spike.
const (
	AnomalyNoProgress   = "no_progress"
	AnomalyChaseOverrun = "chase_round_overrun"
	AnomalyLatencySpike = "question_latency_spike"
)

var (
	gNoProgress   = obs.NewGauge("anomaly.no_progress")
	gChaseOverrun = obs.NewGauge("anomaly.chase_round_overrun")
	gLatencySpike = obs.NewGauge("anomaly.question_latency_spike")
)

// Watchdog tuning. Package-level so a deployment can adjust them at
// startup; the defaults are deliberately conservative — an anomaly should
// mean "look at this session", not background noise.
var (
	// NoProgressK is how many consecutive questions may pass without the
	// conflicts-remaining count making a new minimum before the no-progress
	// anomaly fires. Per Theorem 4.6 every answered question strictly
	// shrinks the live conflict set or releases propagated pins, so a
	// genuine plateau this long means the session is spinning.
	NoProgressK = 5
	// SpikeFactor is the question-latency threshold: the session's p99
	// delay exceeding SpikeFactor × the session median flags a spike.
	SpikeFactor = 8.0
	// SpikeMinSamples is the minimum questions before the latency detector
	// arms — medians over a handful of samples are noise.
	SpikeMinSamples = 16
	// SpikeFloor is the minimum p99 (seconds) for a spike: sub-millisecond
	// delays are dominated by scheduler jitter regardless of ratio.
	SpikeFloor = 1e-3
	// ChaseOverrunFraction is how much of the round budget a single chase
	// run may consume before the overrun anomaly fires. On a weakly-acyclic
	// rule set round counts are small; approaching the safety budget means
	// the rule set (or the budget) is wrong.
	ChaseOverrunFraction = 0.8
)

// watchdog is the process-wide detector state, reset per inquiry session.
type watchdog struct {
	mu sync.Mutex

	phase        int
	minConflicts int
	stalled      int

	delays []float64 // sorted ascending
	spiked bool

	lastChaseRound int
	chaseFlagged   bool
}

var wd watchdog

// SessionBegin resets the watchdogs and zeroes the anomaly gauges for a
// fresh inquiry session.
func SessionBegin() {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	wd.phase = 0
	wd.minConflicts = -1
	wd.stalled = 0
	wd.delays = wd.delays[:0]
	wd.spiked = false
	wd.lastChaseRound = 0
	wd.chaseFlagged = false
	gNoProgress.Set(0)
	gChaseOverrun.Set(0)
	gLatencySpike.Set(0)
}

// ObserveQuestion feeds the per-question detectors: the conflicts remaining
// when the question was generated and the question-generation delay.
// Called once per question by the inquiry engine.
func ObserveQuestion(phase, conflictsRemaining int, delay time.Duration) {
	wd.mu.Lock()
	defer wd.mu.Unlock()

	// No-progress: the conflicts-remaining series must keep making new
	// minima. The minimum resets on phase transitions — moving from naive
	// to chase-discovered conflicts legitimately grows the set.
	if phase != wd.phase {
		wd.phase = phase
		wd.minConflicts = -1
		wd.stalled = 0
	}
	if wd.minConflicts < 0 || conflictsRemaining < wd.minConflicts {
		wd.minConflicts = conflictsRemaining
		wd.stalled = 0
	} else {
		wd.stalled++
		if wd.stalled >= NoProgressK {
			gNoProgress.Add(1)
			RecordNote(KindAnomaly, int64(conflictsRemaining), int64(wd.minConflicts), int64(wd.stalled), AnomalyNoProgress)
			wd.stalled = 0 // re-arm: a persistent stall fires every K questions
		}
	}

	// Latency spike: session p99 vs session median, edge-triggered so one
	// pathological phase yields one anomaly, not one per question.
	d := delay.Seconds()
	i := sort.SearchFloat64s(wd.delays, d)
	wd.delays = append(wd.delays, 0)
	copy(wd.delays[i+1:], wd.delays[i:])
	wd.delays[i] = d
	if n := len(wd.delays); n >= SpikeMinSamples {
		median := wd.delays[n/2]
		p99 := wd.delays[(n*99)/100]
		if p99 >= SpikeFloor && p99 > SpikeFactor*median {
			if !wd.spiked {
				wd.spiked = true
				gLatencySpike.Add(1)
				RecordNote(KindAnomaly, int64(p99*1e6), int64(SpikeFactor*median*1e6), int64(median*1e6), AnomalyLatencySpike)
			}
		} else {
			wd.spiked = false
		}
	}
}

// ObserveChaseRound feeds the round-budget detector; called once per chase
// round with the current round number and the run's round budget. A round
// number not above the last seen one means a new run started.
func ObserveChaseRound(round, maxRounds int) {
	wd.mu.Lock()
	defer wd.mu.Unlock()
	if round <= wd.lastChaseRound {
		wd.chaseFlagged = false
	}
	wd.lastChaseRound = round
	if wd.chaseFlagged || maxRounds <= 0 {
		return
	}
	if float64(round) >= ChaseOverrunFraction*float64(maxRounds) {
		wd.chaseFlagged = true
		gChaseOverrun.Add(1)
		RecordNote(KindAnomaly, int64(round), int64(maxRounds), 0, AnomalyChaseOverrun)
	}
}
