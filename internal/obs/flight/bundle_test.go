package flight

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kbrepair/internal/obs"
)

func clearProviders(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		SetDigestProvider(nil)
		SetJournalProvider(nil)
	})
}

func TestCaptureSections(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	Record(KindChaseRoundStart, 1, 10, 0, 0)
	SetDigestProvider(func() any { return map[string]int{"facts": 42} })
	SetJournalProvider(func() any { return map[string]string{"strategy": "random"} })

	b := Capture("test-reason")
	if b.SchemaVersion != BundleSchemaVersion {
		t.Errorf("schema = %d, want %d", b.SchemaVersion, BundleSchemaVersion)
	}
	if b.Reason != "test-reason" {
		t.Errorf("reason = %q", b.Reason)
	}
	// The capture itself appends a bundle_dump event after the round event.
	if b.EventsRetained < 2 {
		t.Fatalf("retained %d events, want >= 2", b.EventsRetained)
	}
	last := b.Events[len(b.Events)-1]
	if !bytes.Contains(last, []byte("flight.bundle_dump")) {
		t.Errorf("last event is not the bundle_dump marker: %s", last)
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Error("goroutine stacks missing")
	}
	if !bytes.Contains(b.KBDigest, []byte("42")) {
		t.Errorf("digest section = %s", b.KBDigest)
	}
	if !bytes.Contains(b.Journal, []byte("random")) {
		t.Errorf("journal section = %s", b.Journal)
	}
	if b.Env.GoVersion == "" || b.Env.PID == 0 {
		t.Errorf("env stamp incomplete: %+v", b.Env)
	}
	for _, want := range []string{"events.jsonl", "metrics.json", "goroutines.txt", "manifest.json", "kb_digest.json", "journal.json"} {
		found := false
		for _, s := range b.Sections {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("manifest sections missing %s (have %v)", want, b.Sections)
		}
	}
}

func TestBundleDirRoundtrip(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	Record(KindQuestion, 1, 3, 5, 120)
	SetDigestProvider(func() any { return map[string]int{"facts": 7} })

	dir := filepath.Join(t.TempDir(), "bundle")
	b := Capture("roundtrip")
	if err := b.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "roundtrip" || got.SchemaVersion != BundleSchemaVersion {
		t.Errorf("manifest did not roundtrip: %+v", got.Manifest)
	}
	if len(got.Events) != len(b.Events) {
		t.Errorf("events: %d read, %d written", len(got.Events), len(b.Events))
	}
	if !bytes.Equal(bytes.TrimSpace(got.KBDigest), bytes.TrimSpace(b.KBDigest)) {
		t.Errorf("digest did not roundtrip: %s vs %s", got.KBDigest, b.KBDigest)
	}
	if got.Goroutines != b.Goroutines {
		t.Error("goroutines did not roundtrip")
	}
}

func TestBundleJSONRoundtrip(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	Record(KindAnswer, 2, 0, 1, 0)

	path := filepath.Join(t.TempDir(), "debugz.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	b := Capture("json-roundtrip")
	if err := b.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "json-roundtrip" || len(got.Events) != len(b.Events) {
		t.Errorf("single-file bundle did not roundtrip: %+v", got.Manifest)
	}
}

func TestReadBundleRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	manifest := `{"schema_version": 99, "reason": "future"}`
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(dir); err == nil || !strings.Contains(err.Error(), "schema version 99") {
		t.Fatalf("wrong-schema bundle accepted: %v", err)
	}
}

func TestDebugzEndpoint(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	Record(KindSessionStart, 10, 2, 3, 0)

	srv := httptest.NewServer(obs.DebugMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debugz?reason=unit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var b Bundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatalf("debugz payload is not a bundle: %v", err)
	}
	if b.Reason != "http:unit" {
		t.Errorf("reason = %q, want http:unit", b.Reason)
	}
	if b.SchemaVersion != BundleSchemaVersion || len(b.Events) == 0 {
		t.Errorf("debugz bundle incomplete: schema=%d events=%d", b.SchemaVersion, len(b.Events))
	}
}

func TestSetupDisablesRecorder(t *testing.T) {
	resetGlobal(t)
	finish := Setup("flighttest", Config{Events: -1})
	if Active() {
		t.Fatal("recorder active with Events < 0")
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupExitBundle(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	dir := filepath.Join(t.TempDir(), "exit-bundle")
	finish := Setup("flighttest", Config{BundleDir: dir, Events: 8})
	if !Active() {
		t.Fatal("recorder not enabled by Setup")
	}
	Record(KindQuestion, 1, 1, 1, 1)
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "exit" || b.Cmd != "flighttest" {
		t.Errorf("exit bundle manifest: reason=%q cmd=%q", b.Reason, b.Cmd)
	}
}
