package flight

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/sched"
)

func clearProviders(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		SetDigestProvider(nil)
		SetJournalProvider(nil)
	})
}

func TestCaptureSections(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	Record(KindChaseRoundStart, 1, 10, 0, 0)
	SetDigestProvider(func() any { return map[string]int{"facts": 42} })
	SetJournalProvider(func() any { return map[string]string{"strategy": "random"} })

	b := Capture("test-reason")
	if b.SchemaVersion != BundleSchemaVersion {
		t.Errorf("schema = %d, want %d", b.SchemaVersion, BundleSchemaVersion)
	}
	if b.Reason != "test-reason" {
		t.Errorf("reason = %q", b.Reason)
	}
	// The capture itself appends a bundle_dump event after the round event.
	if b.EventsRetained < 2 {
		t.Fatalf("retained %d events, want >= 2", b.EventsRetained)
	}
	last := b.Events[len(b.Events)-1]
	if !bytes.Contains(last, []byte("flight.bundle_dump")) {
		t.Errorf("last event is not the bundle_dump marker: %s", last)
	}
	if !strings.Contains(b.Goroutines, "goroutine") {
		t.Error("goroutine stacks missing")
	}
	if !bytes.Contains(b.KBDigest, []byte("42")) {
		t.Errorf("digest section = %s", b.KBDigest)
	}
	if !bytes.Contains(b.Journal, []byte("random")) {
		t.Errorf("journal section = %s", b.Journal)
	}
	if b.Env.GoVersion == "" || b.Env.PID == 0 {
		t.Errorf("env stamp incomplete: %+v", b.Env)
	}
	for _, want := range []string{"events.jsonl", "metrics.json", "goroutines.txt", "manifest.json", "kb_digest.json", "journal.json"} {
		found := false
		for _, s := range b.Sections {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("manifest sections missing %s (have %v)", want, b.Sections)
		}
	}
}

func TestBundleDirRoundtrip(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	Record(KindQuestion, 1, 3, 5, 120)
	SetDigestProvider(func() any { return map[string]int{"facts": 7} })

	dir := filepath.Join(t.TempDir(), "bundle")
	b := Capture("roundtrip")
	if err := b.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "roundtrip" || got.SchemaVersion != BundleSchemaVersion {
		t.Errorf("manifest did not roundtrip: %+v", got.Manifest)
	}
	if len(got.Events) != len(b.Events) {
		t.Errorf("events: %d read, %d written", len(got.Events), len(b.Events))
	}
	if !bytes.Equal(bytes.TrimSpace(got.KBDigest), bytes.TrimSpace(b.KBDigest)) {
		t.Errorf("digest did not roundtrip: %s vs %s", got.KBDigest, b.KBDigest)
	}
	if got.Goroutines != b.Goroutines {
		t.Error("goroutines did not roundtrip")
	}
}

func TestBundleJSONRoundtrip(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	Record(KindAnswer, 2, 0, 1, 0)

	path := filepath.Join(t.TempDir(), "debugz.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	b := Capture("json-roundtrip")
	if err := b.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "json-roundtrip" || len(got.Events) != len(b.Events) {
		t.Errorf("single-file bundle did not roundtrip: %+v", got.Manifest)
	}
}

func TestReadBundleRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	manifest := `{"schema_version": 99, "reason": "future"}`
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(dir); err == nil || !strings.Contains(err.Error(), "schema version 99") {
		t.Fatalf("wrong-schema bundle accepted: %v", err)
	}
}

func TestDebugzEndpoint(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	Record(KindSessionStart, 10, 2, 3, 0)

	srv := httptest.NewServer(obs.DebugMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debugz?reason=unit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var b Bundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatalf("debugz payload is not a bundle: %v", err)
	}
	if b.Reason != "http:unit" {
		t.Errorf("reason = %q, want http:unit", b.Reason)
	}
	if b.SchemaVersion != BundleSchemaVersion || len(b.Events) == 0 {
		t.Errorf("debugz bundle incomplete: schema=%d events=%d", b.SchemaVersion, len(b.Events))
	}
}

func TestSetupDisablesRecorder(t *testing.T) {
	resetGlobal(t)
	finish := Setup("flighttest", Config{Events: -1})
	if Active() {
		t.Fatal("recorder active with Events < 0")
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupExitBundle(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	dir := filepath.Join(t.TempDir(), "exit-bundle")
	finish := Setup("flighttest", Config{BundleDir: dir, Events: 8})
	if !Active() {
		t.Fatal("recorder not enabled by Setup")
	}
	Record(KindQuestion, 1, 1, 1, 1)
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "exit" || b.Cmd != "flighttest" {
		t.Errorf("exit bundle manifest: reason=%q cmd=%q", b.Reason, b.Cmd)
	}
}

func TestBundleAttrSectionRoundtrip(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	prev := attr.Enabled()
	attr.SetEnabled(true)
	t.Cleanup(func() {
		attr.SetEnabled(prev)
		attr.Reset()
	})
	vec := attr.NewCounterVec("test.bundle_counter")
	vec.Add(attr.Intern("r(X) -> s(X)"), 9)

	b := Capture("attr-roundtrip")
	if b.Attr == nil {
		t.Fatal("attribution enabled but bundle has no attr section")
	}
	found := false
	for _, s := range b.Sections {
		if s == "attr.json" {
			found = true
		}
	}
	if !found {
		t.Fatalf("manifest sections missing attr.json: %v", b.Sections)
	}

	dir := filepath.Join(t.TempDir(), "bundle")
	if err := b.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attr == nil {
		t.Fatal("attr section lost in dir roundtrip")
	}
	id := -1
	for i, k := range got.Attr.Keys {
		if k == "r(X) -> s(X)" {
			id = i
		}
	}
	if id < 0 {
		t.Fatalf("interned key missing from bundle attr keys: %v", got.Attr.Keys)
	}
	if v := got.Attr.Counter("test.bundle_counter", id); v != 9 {
		t.Fatalf("counter did not roundtrip: got %d, want 9", v)
	}
}

func TestBundleTraceSectionRoundtrip(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	ring := obs.NewRingSink(64)
	tr := obs.NewTracer(ring)
	root := tr.StartSpan("inquiry.run")
	q := root.Child("inquiry.question", obs.Int("q", 1), obs.Int("phase", 2))
	q.Child("inquiry.sound_question").End()
	q.End()
	root.End()
	obs.SetTraceRing(ring)
	t.Cleanup(func() { obs.SetTraceRing(nil) })

	b := Capture("trace-roundtrip")
	if b.Trace == nil || b.Trace.Questions != 1 {
		t.Fatalf("trace digest = %+v, want 1 question", b.Trace)
	}
	found := false
	for _, s := range b.Sections {
		if s == "trace.json" {
			found = true
		}
	}
	if !found {
		t.Fatalf("manifest sections missing trace.json: %v", b.Sections)
	}

	dir := filepath.Join(t.TempDir(), "bundle")
	if err := b.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil || len(got.Trace.Slowest) != 1 {
		t.Fatalf("trace section lost in dir roundtrip: %+v", got.Trace)
	}
	w := got.Trace.Slowest[0]
	if w.Q != 1 || w.Phase != 2 || len(w.Components) != 1 {
		t.Errorf("waterfall did not roundtrip: %+v", w)
	}
}

func TestCaptureOmitsTraceWhenNoRing(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	obs.SetTraceRing(nil)
	b := Capture("no-trace")
	if b.Trace != nil {
		t.Fatal("trace section present without a trace ring")
	}
	for _, s := range b.Sections {
		if s == "trace.json" {
			t.Fatal("manifest lists trace.json without a trace ring")
		}
	}
}

func TestCaptureOmitsAttrWhenDisabled(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	prev := attr.Enabled()
	attr.SetEnabled(false)
	t.Cleanup(func() { attr.SetEnabled(prev) })

	b := Capture("no-attr")
	if b.Attr != nil {
		t.Fatal("attr section present with attribution disabled")
	}
	for _, s := range b.Sections {
		if s == "attr.json" {
			t.Fatal("manifest lists attr.json with attribution disabled")
		}
	}
}

func TestDumpOnTestFailure(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	Record(KindQuestion, 1, 2, 3, 4)
	root := t.TempDir()
	t.Setenv(TestBundleEnv, root)

	// A passing run (code 0) writes nothing.
	DumpOnTestFailure(0)
	if entries, _ := os.ReadDir(root); len(entries) != 0 {
		t.Fatalf("passing run wrote %d entries", len(entries))
	}

	// A failing run writes one bundle dir named after the test binary.
	DumpOnTestFailure(1)
	entries, err := os.ReadDir(root)
	if err != nil || len(entries) != 1 {
		t.Fatalf("failing run wrote %d entries (err %v), want 1", len(entries), err)
	}
	b, err := ReadBundle(filepath.Join(root, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "test-failure" {
		t.Fatalf("bundle reason = %q, want test-failure", b.Reason)
	}

	// Unset env: no-op even on failure.
	t.Setenv(TestBundleEnv, "")
	other := t.TempDir()
	DumpOnTestFailure(1)
	if entries, _ := os.ReadDir(other); len(entries) != 0 {
		t.Fatal("bundle written with TestBundleEnv unset")
	}
}

// TestBundleSchedAndRuntimeSections covers the parallel-efficiency
// additions: a bundle captured with lane recording on carries the sched
// snapshot, a runtime telemetry reading and the heap/mutex/block profiles,
// and all of them survive both persistence forms.
func TestBundleSchedAndRuntimeSections(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	sched.Enable(0)
	t.Cleanup(sched.Disable)
	fo := sched.Begin("test.bundle", 2, 1)
	for i := 0; i < 2; i++ {
		t0 := fo.Start()
		fo.Task(0, i, t0)
	}
	fo.End()

	b := Capture("sched-sections")
	if b.Sched == nil || !b.Sched.Enabled || len(b.Sched.Labels) != 1 {
		t.Fatalf("sched section = %+v, want one-label snapshot", b.Sched)
	}
	if b.Runtime == nil || b.Runtime.Goroutines < 1 {
		t.Fatalf("runtime section = %+v", b.Runtime)
	}
	if b.HeapProfile == "" || b.MutexProfile == "" || b.BlockProfile == "" {
		t.Fatalf("profiles missing: heap %d, mutex %d, block %d bytes",
			len(b.HeapProfile), len(b.MutexProfile), len(b.BlockProfile))
	}
	if !strings.Contains(b.HeapProfile, "heap profile") {
		t.Errorf("heap profile not in debug text form: %.80s", b.HeapProfile)
	}
	for _, want := range []string{"sched.json", "runtime.json", "heap.pprof", "mutex.pprof", "block.pprof"} {
		found := false
		for _, s := range b.Sections {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("manifest sections missing %s (have %v)", want, b.Sections)
		}
	}

	dir := filepath.Join(t.TempDir(), "bundle")
	if err := b.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sched.json", "runtime.json", "heap.pprof", "mutex.pprof", "block.pprof"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("bundle dir missing %s: %v", name, err)
		}
	}
	got, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sched == nil || got.Sched.FanoutsTotal != b.Sched.FanoutsTotal {
		t.Errorf("sched section did not roundtrip: %+v", got.Sched)
	}
	if got.Runtime == nil || got.Runtime.GOMAXPROCS != b.Runtime.GOMAXPROCS {
		t.Errorf("runtime section did not roundtrip: %+v", got.Runtime)
	}
	if got.HeapProfile != b.HeapProfile || got.MutexProfile != b.MutexProfile || got.BlockProfile != b.BlockProfile {
		t.Error("profiles did not roundtrip through the bundle dir")
	}
}

// TestBundleOmitsSchedWhenDisabled pins the additive-section contract:
// with lane recording off the sched section is absent, while runtime
// telemetry and profiles (always available) are still captured.
func TestBundleOmitsSchedWhenDisabled(t *testing.T) {
	resetGlobal(t)
	clearProviders(t)
	Enable(32)
	sched.Disable()
	b := Capture("no-sched")
	if b.Sched != nil {
		t.Errorf("sched section = %+v with recording disabled, want nil", b.Sched)
	}
	for _, s := range b.Sections {
		if s == "sched.json" {
			t.Error("manifest lists sched.json with recording disabled")
		}
	}
	if b.Runtime == nil || b.HeapProfile == "" {
		t.Error("runtime/profile sections should not depend on lane recording")
	}
}
