package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// promPrefix namespaces every exposed metric, per the Prometheus naming
// convention <namespace>_<subsystem>_<name>.
const promPrefix = "kbrepair_"

// PromName converts a registry instrument name ("chase.run_seconds") to a
// valid Prometheus metric name ("kbrepair_chase_run_seconds"): dots become
// underscores and any other character outside [a-zA-Z0-9_] is dropped to
// an underscore as well.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters with the conventional _total suffix,
// gauges verbatim, histograms as cumulative le-labeled buckets plus _sum
// and _count. Output is sorted by name, so it is deterministic for a given
// snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writePromHistogram(w, PromName(n), s.Histograms[n]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatPromFloat(h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, formatPromFloat(h.Sum), pn, h.Count)
	return err
}

// formatPromFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatPromFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promAppenders are extra exposition sections contributed by packages obs
// cannot import (same layering as RegisterDebugHandler): internal/obs/attr
// registers its per-rule series here, so /metrics shows them whenever attr
// is linked, without obs knowing about rule identities.
var (
	promAppendMu  sync.Mutex
	promAppenders []func(io.Writer) error
)

// RegisterPromAppender adds a section writer invoked by WriteFullPrometheus
// (and thus the /metrics handler) after the registry exposition.
func RegisterPromAppender(fn func(io.Writer) error) {
	promAppendMu.Lock()
	defer promAppendMu.Unlock()
	promAppenders = append(promAppenders, fn)
}

// WriteFullPrometheus renders the snapshot plus every registered appender
// section — what the /metrics endpoint serves.
func WriteFullPrometheus(w io.Writer, s Snapshot) error {
	if err := WritePrometheus(w, s); err != nil {
		return err
	}
	promAppendMu.Lock()
	fns := append([]func(io.Writer) error(nil), promAppenders...)
	promAppendMu.Unlock()
	for _, fn := range fns {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}
