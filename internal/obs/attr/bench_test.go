package attr

import (
	"testing"

	"kbrepair/internal/obs"
)

// BenchmarkAttrRecordDisabled measures the cost a non-observed run pays per
// call site: one atomic bool load. Must report 0 allocs/op.
func BenchmarkAttrRecordDisabled(b *testing.B) {
	v := NewCounterVec("bench.disabled_counter")
	id := Intern("bench.disabled/key")
	SetEnabled(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Add(id, 1)
	}
}

// BenchmarkAttrCounterAdd measures the enabled hot path: atomic slice load,
// index, striped atomic add. Must report 0 allocs/op.
func BenchmarkAttrCounterAdd(b *testing.B) {
	v := NewCounterVec("bench.counter_add")
	id := Intern("bench.counter_add/key")
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Add(id, 1)
	}
}

// BenchmarkAttrCounterAddParallel exercises contended recording on one key
// — the parallel conflict-scan shape — which the striped cells absorb.
func BenchmarkAttrCounterAddParallel(b *testing.B) {
	v := NewCounterVec("bench.counter_parallel")
	id := Intern("bench.counter_parallel/key")
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v.Add(id, 1)
		}
	})
}

// BenchmarkAttrHistogramObserve measures the enabled histogram path.
func BenchmarkAttrHistogramObserve(b *testing.B) {
	v := NewHistogramVec("bench.hist_observe", SizeBuckets)
	id := Intern("bench.hist_observe/key")
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Observe(id, float64(i&1023))
	}
}

// BenchmarkAttrSince measures the timing path with obs timing disabled (the
// common production shape: attribution on, clocks off) — the inert timer
// must short-circuit before any clock read.
func BenchmarkAttrSince(b *testing.B) {
	v := NewHistogramVec("bench.hist_since", nil)
	id := Intern("bench.hist_since/key")
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	tm := obs.StartTimer() // inert unless obs timing is enabled
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Since(id, tm)
	}
}
