// Package attr provides per-rule cost attribution: labeled metric families
// (counters and histograms) keyed by an interned rule identity, so the
// pipeline can answer "which TGD/CDD/body is burning the time" where the
// plain obs registry only answers "how much in total".
//
// The design extends the obs contract one level down:
//
//   - keys are interned once, on cold paths (plan compilation, first firing
//     of a rule), into dense int32 IDs; the hot path never touches a map or
//     a string;
//   - every family holds one striped obs.Counter (or obs.Histogram) per
//     key, published through an atomic pointer to a copy-on-write slice, so
//     a recording is: one atomic enabled-load, one atomic slice-load, one
//     index, one striped atomic add — no locks, no allocation
//     (BenchmarkAttrCounterAdd pins this down);
//   - the disabled path is a single atomic bool load and nothing else
//     (BenchmarkAttrRecordDisabled), matching flight.Record's guarantee;
//   - interning is content-addressed (the canonical body/rule string), so
//     IDs attribute identically across reps, KB clones and worker counts,
//     and snapshots sort by key — byte-identical output regardless of the
//     order goroutines first touched a rule.
package attr

import (
	"sort"
	"sync"
	"sync/atomic"

	"kbrepair/internal/obs"
)

// ID is a dense handle for an interned attribution key. IDs are never
// reused within a process.
type ID int32

// None is the null ID: recording against it is a no-op. Call sites that
// resolve their ID only when attribution is enabled use None otherwise.
const None ID = -1

// enabled gates all recording. Unlike obs timing (opt-in because of clock
// reads), attribution is also opt-in because per-key families cost memory
// proportional to the number of distinct rule bodies.
var enabled atomic.Bool

// SetEnabled turns attribution recording on or off.
func SetEnabled(v bool) { enabled.Store(v) }

// Enabled reports whether attribution recording is on. Hot paths may check
// it once to skip computing several record arguments; each family method
// also checks it, so an unguarded call is merely slightly slower, never
// wrong.
func Enabled() bool { return enabled.Load() }

var (
	// mu guards interning and family registration; never held on a
	// recording path.
	mu       sync.Mutex
	index    = map[string]ID{}
	keysPtr  atomic.Pointer[[]string]
	families = map[string]family{}

	// ownerIDs caches owner (rule pointer) -> ID so hot call sites resolve
	// their ID without rebuilding the key string (see OwnerID/BindOwner).
	ownerIDs sync.Map
)

func init() {
	empty := []string{}
	keysPtr.Store(&empty)
}

// family is the registration-side interface of a metric family: grow is
// called under mu whenever a new key is interned, so every family always
// covers every live ID.
type family interface {
	growLocked(n int)
	snapshotInto(s *Snapshot, perm []int)
}

// Intern returns the ID for key, assigning the next dense one on first
// sight. It is safe for concurrent use but takes a lock — call it from
// cold paths (compilation, per-run setup) and cache the result.
func Intern(key string) ID {
	mu.Lock()
	defer mu.Unlock()
	if id, ok := index[key]; ok {
		return id
	}
	old := *keysPtr.Load()
	id := ID(len(old))
	for _, f := range families {
		f.growLocked(int(id) + 1)
	}
	ks := make([]string, len(old)+1)
	copy(ks, old)
	ks[len(old)] = key
	keysPtr.Store(&ks)
	index[key] = id
	return id
}

// OwnerID returns the cached ID bound to owner (a stable comparable
// identity, in practice a *logic.TGD or *logic.CDD pointer). The miss
// branch lets the caller build the key string only when actually needed:
//
//	if id, ok := attr.OwnerID(rule); !ok {
//	    id = attr.BindOwner(rule, rule.String())
//	}
func OwnerID(owner any) (ID, bool) {
	if v, ok := ownerIDs.Load(owner); ok {
		return v.(ID), true
	}
	return None, false
}

// BindOwner interns key and caches the resulting ID under owner. Binding
// the same owner twice keeps the first ID (keys are content-addressed, so
// a consistent caller gets the same ID either way).
func BindOwner(owner any, key string) ID {
	id := Intern(key)
	if v, loaded := ownerIDs.LoadOrStore(owner, id); loaded {
		return v.(ID)
	}
	return id
}

// Keys returns the interned keys, in ID order.
func Keys() []string {
	return append([]string(nil), *keysPtr.Load()...)
}

// CounterVec is a family of per-key counters. Each cell is a striped
// obs.Counter, so concurrent writers on the same key (parallel conflict
// scans of one CDD's plan, chase trigger collection) spread over stripes
// exactly like the global counters do.
type CounterVec struct {
	name  string
	cells atomic.Pointer[[]*obs.Counter]
}

// NewCounterVec registers (or returns) the counter family named name.
func NewCounterVec(name string) *CounterVec {
	mu.Lock()
	defer mu.Unlock()
	if f, ok := families[name]; ok {
		return f.(*CounterVec)
	}
	v := &CounterVec{name: name}
	empty := []*obs.Counter{}
	v.cells.Store(&empty)
	v.growLocked(len(*keysPtr.Load()))
	families[name] = v
	return v
}

// Name returns the family name.
func (v *CounterVec) Name() string { return v.name }

func (v *CounterVec) growLocked(n int) {
	var cur []*obs.Counter
	if p := v.cells.Load(); p != nil {
		cur = *p
	}
	if len(cur) >= n {
		return
	}
	nw := make([]*obs.Counter, n)
	copy(nw, cur)
	for i := len(cur); i < n; i++ {
		nw[i] = new(obs.Counter)
	}
	v.cells.Store(&nw)
}

// Add records n against id. Disabled, None, or an ID the family has not
// grown to yet (impossible for IDs obtained from Intern, which grows every
// family before returning) are no-ops.
func (v *CounterVec) Add(id ID, n int64) {
	if !enabled.Load() || id < 0 {
		return
	}
	cs := *v.cells.Load()
	if int(id) >= len(cs) {
		return
	}
	cs[id].Add(n)
}

// Value returns the current total for id (0 for unknown IDs).
func (v *CounterVec) Value(id ID) int64 {
	if id < 0 {
		return 0
	}
	cs := *v.cells.Load()
	if int(id) >= len(cs) {
		return 0
	}
	return cs[id].Value()
}

func (v *CounterVec) snapshotInto(s *Snapshot, perm []int) {
	cs := *v.cells.Load()
	out := make([]int64, len(perm))
	for i, src := range perm {
		if src < len(cs) {
			out[i] = cs[src].Value()
		}
	}
	s.Counters[v.name] = out
}

// SizeBuckets are the default histogram bounds for per-search tree and
// probe counts: powers of four from 1 to ~1M. The overflow bucket catches
// pathological searches.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// HistogramVec is a family of per-key histograms sharing one set of
// bounds.
type HistogramVec struct {
	name   string
	bounds []float64
	cells  atomic.Pointer[[]*obs.Histogram]
}

// NewHistogramVec registers (or returns) the histogram family named name
// with the given upper bucket bounds (nil means obs.LatencyBuckets; bounds
// of a re-registration are ignored).
func NewHistogramVec(name string, bounds []float64) *HistogramVec {
	mu.Lock()
	defer mu.Unlock()
	if f, ok := families[name]; ok {
		return f.(*HistogramVec)
	}
	if bounds == nil {
		bounds = obs.LatencyBuckets
	}
	v := &HistogramVec{name: name, bounds: append([]float64(nil), bounds...)}
	empty := []*obs.Histogram{}
	v.cells.Store(&empty)
	v.growLocked(len(*keysPtr.Load()))
	families[name] = v
	return v
}

// Name returns the family name.
func (v *HistogramVec) Name() string { return v.name }

func (v *HistogramVec) growLocked(n int) {
	var cur []*obs.Histogram
	if p := v.cells.Load(); p != nil {
		cur = *p
	}
	if len(cur) >= n {
		return
	}
	nw := make([]*obs.Histogram, n)
	copy(nw, cur)
	for i := len(cur); i < n; i++ {
		nw[i] = obs.NewUnregisteredHistogram(v.bounds)
	}
	v.cells.Store(&nw)
}

// Observe records one sample against id.
func (v *HistogramVec) Observe(id ID, x float64) {
	if !enabled.Load() || id < 0 {
		return
	}
	hs := *v.cells.Load()
	if int(id) >= len(hs) {
		return
	}
	hs[id].Observe(x)
}

// Since observes the elapsed seconds of a Timer against id; inert timers
// (obs timing disabled) are ignored, so per-key timing composes with the
// obs.SetEnabled gate the same way the global histograms do.
func (v *HistogramVec) Since(id ID, t obs.Timer) {
	if !enabled.Load() || id < 0 {
		return
	}
	hs := *v.cells.Load()
	if int(id) >= len(hs) {
		return
	}
	hs[id].Since(t)
}

func (v *HistogramVec) snapshotInto(s *Snapshot, perm []int) {
	hs := *v.cells.Load()
	out := make([]obs.HistogramSnapshot, len(perm))
	for i, src := range perm {
		if src < len(hs) {
			out[i] = hs[src].Snapshot()
		}
	}
	s.Histograms[v.name] = out
}

// Snapshot is a point-in-time capture of every family, keys sorted
// lexicographically and every per-family slice aligned with Keys. Sorting
// makes the snapshot independent of interning order, which varies with
// goroutine scheduling — a requirement for the byte-identical profile
// guarantee at any -workers count.
type Snapshot struct {
	Keys       []string                           `json:"keys"`
	Counters   map[string][]int64                 `json:"counters,omitempty"`
	Histograms map[string][]obs.HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the value of family fam at key index i (0 when the
// family is absent).
func (s *Snapshot) Counter(fam string, i int) int64 {
	vs := s.Counters[fam]
	if i < 0 || i >= len(vs) {
		return 0
	}
	return vs[i]
}

// Histogram returns the snapshot of family fam at key index i (zero value
// when absent).
func (s *Snapshot) Histogram(fam string, i int) obs.HistogramSnapshot {
	hs := s.Histograms[fam]
	if i < 0 || i >= len(hs) {
		return obs.HistogramSnapshot{}
	}
	return hs[i]
}

// Capture returns a snapshot of all families, or nil when attribution is
// disabled (the bundle section is omitted rather than empty).
func Capture() *Snapshot {
	if !enabled.Load() {
		return nil
	}
	return SnapshotAll()
}

// SnapshotAll captures all families regardless of the enabled gate — the
// /profilez handler uses it so a scrape of a disabled process still shows
// whatever was recorded before the gate closed.
func SnapshotAll() *Snapshot {
	mu.Lock()
	defer mu.Unlock()
	keys := *keysPtr.Load()
	perm := make([]int, len(keys))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
	s := &Snapshot{
		Keys:       make([]string, len(keys)),
		Counters:   map[string][]int64{},
		Histograms: map[string][]obs.HistogramSnapshot{},
	}
	for i, src := range perm {
		s.Keys[i] = keys[src]
	}
	for _, f := range families {
		f.snapshotInto(s, perm)
	}
	return s
}

// Reset zeroes every cell of every family (for tests and between
// benchmark runs); interned keys, IDs and owner bindings stay valid.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, f := range families {
		switch v := f.(type) {
		case *CounterVec:
			for _, c := range *v.cells.Load() {
				c.Reset()
			}
		case *HistogramVec:
			for _, h := range *v.cells.Load() {
				h.Reset()
			}
		}
	}
}
