package attr

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"kbrepair/internal/obs"
)

// withEnabled runs f with attribution forced on, restoring the prior state.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	SetEnabled(true)
	defer SetEnabled(prev)
	f()
}

func TestInternDenseAndStable(t *testing.T) {
	a := Intern("test.intern/a")
	b := Intern("test.intern/b")
	if a == b {
		t.Fatalf("distinct keys share ID %d", a)
	}
	if got := Intern("test.intern/a"); got != a {
		t.Fatalf("re-intern returned %d, want %d", got, a)
	}
	keys := Keys()
	if keys[a] != "test.intern/a" || keys[b] != "test.intern/b" {
		t.Fatalf("Keys misaligned: %q@%d %q@%d", keys[a], a, keys[b], b)
	}
}

func TestOwnerBinding(t *testing.T) {
	type rule struct{ name string }
	r := &rule{"r1"}
	if id, ok := OwnerID(r); ok {
		t.Fatalf("unbound owner resolved to %d", id)
	}
	id := BindOwner(r, "test.owner/r1")
	if id != Intern("test.owner/r1") {
		t.Fatalf("BindOwner ID %d != Intern ID %d", id, Intern("test.owner/r1"))
	}
	got, ok := OwnerID(r)
	if !ok || got != id {
		t.Fatalf("OwnerID = %d,%v want %d,true", got, ok, id)
	}
	// Second binding keeps the first ID.
	if again := BindOwner(r, "test.owner/other"); again != id {
		t.Fatalf("rebind returned %d, want first ID %d", again, id)
	}
}

func TestCounterVecRecording(t *testing.T) {
	v := NewCounterVec("test.counter_recording")
	id := Intern("test.counter_recording/key")

	SetEnabled(false)
	v.Add(id, 5)
	if got := v.Value(id); got != 0 {
		t.Fatalf("disabled Add recorded %d", got)
	}

	withEnabled(t, func() {
		v.Add(id, 5)
		v.Add(None, 100) // no-op, no panic
		v.Add(id, 2)
	})
	if got := v.Value(id); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

func TestHistogramVecRecording(t *testing.T) {
	v := NewHistogramVec("test.hist_recording", SizeBuckets)
	id := Intern("test.hist_recording/key")
	withEnabled(t, func() {
		v.Observe(id, 3)
		v.Observe(id, 300)
		v.Observe(None, 1) // no-op
	})
	s := SnapshotAll()
	i := sort.SearchStrings(s.Keys, "test.hist_recording/key")
	h := s.Histogram("test.hist_recording", i)
	if h.Count != 2 || h.Sum != 303 {
		t.Fatalf("histogram count=%d sum=%v, want 2/303", h.Count, h.Sum)
	}
}

func TestSnapshotSortedAndAligned(t *testing.T) {
	v := NewCounterVec("test.snapshot_sorted")
	// Intern in an order that is not lexicographic.
	idB := Intern("test.snapshot_sorted/b")
	idA := Intern("test.snapshot_sorted/a")
	withEnabled(t, func() {
		v.Add(idA, 1)
		v.Add(idB, 2)
	})
	s := SnapshotAll()
	if !sort.StringsAreSorted(s.Keys) {
		t.Fatal("snapshot keys not sorted")
	}
	find := func(key string) int {
		i := sort.SearchStrings(s.Keys, key)
		if i == len(s.Keys) || s.Keys[i] != key {
			t.Fatalf("key %q missing from snapshot", key)
		}
		return i
	}
	if got := s.Counter("test.snapshot_sorted", find("test.snapshot_sorted/a")); got != 1 {
		t.Fatalf("a = %d, want 1", got)
	}
	if got := s.Counter("test.snapshot_sorted", find("test.snapshot_sorted/b")); got != 2 {
		t.Fatalf("b = %d, want 2", got)
	}
}

func TestCaptureNilWhenDisabled(t *testing.T) {
	SetEnabled(false)
	if s := Capture(); s != nil {
		t.Fatal("Capture returned a snapshot while disabled")
	}
	withEnabled(t, func() {
		if s := Capture(); s == nil {
			t.Fatal("Capture returned nil while enabled")
		}
	})
}

func TestResetZeroesCellsKeepsIDs(t *testing.T) {
	v := NewCounterVec("test.reset")
	id := Intern("test.reset/key")
	withEnabled(t, func() {
		v.Add(id, 9)
		Reset()
		if got := v.Value(id); got != 0 {
			t.Fatalf("post-Reset value = %d", got)
		}
		v.Add(id, 4)
	})
	if got := v.Value(id); got != 4 {
		t.Fatalf("handle dead after Reset: value = %d, want 4", got)
	}
}

// TestConcurrentAddVsSnapshot races recorders against Intern and
// SnapshotAll; under -race this is the memory-safety proof for the
// copy-on-write slices.
func TestConcurrentAddVsSnapshot(t *testing.T) {
	v := NewCounterVec("test.race_counter")
	h := NewHistogramVec("test.race_hist", SizeBuckets)
	withEnabled(t, func() {
		const (
			writers = 8
			perW    = 500
		)
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perW; i++ {
					id := Intern(fmt.Sprintf("test.race/%d", i%17))
					v.Add(id, 1)
					h.Observe(id, float64(i))
				}
			}(w)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 50; i++ {
				SnapshotAll()
			}
		}()
		wg.Wait()
		<-done

		s := SnapshotAll()
		var total int64
		for i := range s.Keys {
			if strings.HasPrefix(s.Keys[i], "test.race/") {
				total += s.Counter("test.race_counter", i)
			}
		}
		if want := int64(writers * perW); total != want {
			t.Fatalf("lost updates: total = %d, want %d", total, want)
		}
	})
}

// TestRecordAllocs pins the zero-allocation contract of the hot paths, both
// gates of it: disabled recording and enabled recording.
func TestRecordAllocs(t *testing.T) {
	v := NewCounterVec("test.allocs_counter")
	h := NewHistogramVec("test.allocs_hist", SizeBuckets)
	id := Intern("test.allocs/key")

	SetEnabled(false)
	if n := testing.AllocsPerRun(100, func() { v.Add(id, 1) }); n != 0 {
		t.Fatalf("disabled CounterVec.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(id, 1) }); n != 0 {
		t.Fatalf("disabled HistogramVec.Observe allocates %v/op", n)
	}

	withEnabled(t, func() {
		if n := testing.AllocsPerRun(100, func() { v.Add(id, 1) }); n != 0 {
			t.Fatalf("enabled CounterVec.Add allocates %v/op", n)
		}
		if n := testing.AllocsPerRun(100, func() { h.Observe(id, 1) }); n != 0 {
			t.Fatalf("enabled HistogramVec.Observe allocates %v/op", n)
		}
	})
}

func TestRowsOrderingAndShares(t *testing.T) {
	searches := NewCounterVec(FamSearches)
	nodes := NewCounterVec(FamNodes)
	secs := NewHistogramVec(FamSearchSeconds, nil)
	a := Intern("test.rows/a")
	b := Intern("test.rows/b")
	c := Intern("test.rows/c")
	withEnabled(t, func() {
		Reset()
		searches.Add(a, 1)
		nodes.Add(a, 100)
		secs.Observe(a, 0.25)
		searches.Add(b, 1)
		nodes.Add(b, 900)
		secs.Observe(b, 0.75)
		searches.Add(c, 1)
		nodes.Add(c, 50)
		// c has no timing: sorts last even though interned after b.
	})
	var rows []Row
	for _, r := range Rows(SnapshotAll()) {
		if strings.HasPrefix(r.Body, "test.rows/") {
			rows = append(rows, r)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Body != "test.rows/b" || rows[1].Body != "test.rows/a" || rows[2].Body != "test.rows/c" {
		t.Fatalf("order = %q,%q,%q", rows[0].Body, rows[1].Body, rows[2].Body)
	}
	if rows[0].TimeShare <= rows[1].TimeShare {
		t.Fatalf("time shares not ordered: %v vs %v", rows[0].TimeShare, rows[1].TimeShare)
	}
	if got := TopRows(SnapshotAll(), 1); len(got) != 1 {
		t.Fatalf("TopRows(1) returned %d rows", len(got))
	}
}

func TestProfilezHandler(t *testing.T) {
	searches := NewCounterVec(FamSearches)
	nodes := NewCounterVec(FamNodes)
	id := Intern("test.profilez/body")
	withEnabled(t, func() {
		Reset()
		searches.Add(id, 3)
		nodes.Add(id, 42)
	})

	rec := httptest.NewRecorder()
	profilezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/profilez?k=0", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc struct {
		Bodies int   `json:"bodies"`
		Rows   []Row `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	found := false
	for _, r := range doc.Rows {
		if r.Body == "test.profilez/body" && r.Searches == 3 && r.Nodes == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("row missing from /profilez: %+v", doc.Rows)
	}

	rec = httptest.NewRecorder()
	profilezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/profilez?k=junk", nil))
	if rec.Code != 400 {
		t.Fatalf("bad k: status %d, want 400", rec.Code)
	}
}

func TestPromAppender(t *testing.T) {
	searches := NewCounterVec(FamSearches)
	nodes := NewCounterVec(FamNodes)
	id := Intern("test.prom/body")
	withEnabled(t, func() {
		Reset()
		searches.Add(id, 2)
		nodes.Add(id, 7)
	})
	var b strings.Builder
	if err := writeProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `kbrepair_rule_backtrack_nodes_total{rule="test.prom/body"} 7`) {
		t.Fatalf("per-rule series missing:\n%s", out)
	}
	if !strings.Contains(out, "kbrepair_rule_series_truncated") {
		t.Fatalf("truncation gauge missing:\n%s", out)
	}
	// The appender is registered with obs, so the full exposition carries it.
	var full strings.Builder
	if err := obs.WriteFullPrometheus(&full, obs.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full.String(), "kbrepair_rule_searches_total") {
		t.Fatal("WriteFullPrometheus missing attr section")
	}
}
