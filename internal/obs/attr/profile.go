package attr

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"kbrepair/internal/obs"
)

// Well-known family names. The instrumented packages register vecs under
// these names; the profile builder, the /profilez handler and the
// Prometheus appender read them back, so — like the obs.Status* gauges —
// the names are the contract between the recording and reporting layers.
const (
	// FamSearches counts homomorphism plan executions per body.
	FamSearches = "homo.searches"
	// FamNodes counts backtracking nodes expanded per body — the paper's
	// tree-size cost model, and the metric bench-check gates.
	FamNodes = "homo.backtrack_nodes"
	// FamProbes counts index probes per body.
	FamProbes = "homo.index_probes"
	// FamMatches counts matches found per body.
	FamMatches = "homo.matches"
	// FamNodesPerSearch is a SizeBuckets histogram of nodes per search.
	FamNodesPerSearch = "homo.nodes_per_search"
	// FamProbesPerSearch is a SizeBuckets histogram of probes per search.
	FamProbesPerSearch = "homo.probes_per_search"
	// FamSearchSeconds is a latency histogram of search wall time (empty
	// unless obs timing is enabled alongside attribution).
	FamSearchSeconds = "homo.search_seconds"

	// FamTriggerChecks counts chase trigger matches per TGD.
	FamTriggerChecks = "chase.trigger_checks"
	// FamRuleFirings counts chase firings per TGD.
	FamRuleFirings = "chase.rule_firings"
	// FamFactsDerived counts facts added by chase firings per TGD.
	FamFactsDerived = "chase.facts_derived"

	// FamConflictsFound counts conflicts detected per CDD.
	FamConflictsFound = "conflict.conflicts_found"
	// FamPinnedScans counts tracker pinned-plan scans per CDD.
	FamPinnedScans = "conflict.pinned_scans"

	// FamPiFullChecks counts full Π-repairability consistency checks per
	// causing CDD, FamPiFastHits the batch fast-path skips.
	FamPiFullChecks = "core.pi_full_checks"
	// FamPiFastHits counts Π-repairability fast-path hits per causing CDD.
	FamPiFastHits = "core.pi_fast_hits"
	// FamPiCheckSeconds is a latency histogram of Π-check chunk wall time
	// per causing CDD.
	FamPiCheckSeconds = "core.pi_check_seconds"

	// FamQuestions counts user questions per causing CDD.
	FamQuestions = "inquiry.questions"
	// FamQuestionDelay is a latency histogram of question computation delay
	// per causing CDD.
	FamQuestionDelay = "inquiry.question_delay_seconds"
)

// Row is the per-body line of the plan-quality profile: the homo.* family
// values for one interned body key, plus the derived medians and time
// share. Rows marshal into the BenchReport profile section, render as the
// kbdump -profile table, and serve as the /profilez payload.
type Row struct {
	Body string `json:"body"`
	// Mode and Order describe the compiled join plan this body ran with
	// (kernel mode and the chosen atom/variable order). attr cannot import
	// internal/homo, so the fields stay empty here and are joined in by the
	// profile assemblers (exp.BuildProfile, kbdump) from homo.PlanInfoFor.
	Mode         string  `json:"mode,omitempty"`
	Order        string  `json:"order,omitempty"`
	Searches     int64   `json:"searches"`
	Nodes        int64   `json:"backtrack_nodes"`
	MedianNodes  float64 `json:"median_nodes"`
	Probes       int64   `json:"index_probes"`
	MedianProbes float64 `json:"median_probes"`
	Matches      int64   `json:"matches"`
	// Seconds is total search wall time; zero when obs timing was off.
	Seconds float64 `json:"seconds"`
	// TimeShare is Seconds over the sum across all rows (0 when no timing).
	TimeShare float64 `json:"time_share"`
}

// Rows derives one Row per key with at least one recorded search, sorted
// most-expensive-first: Seconds descending, then Nodes descending, then
// Body ascending. With obs timing off every Seconds is zero and the order
// falls through to the deterministic node counts, which is what makes the
// profile byte-identical at any worker count.
func Rows(s *Snapshot) []Row {
	if s == nil {
		return nil
	}
	var rows []Row
	var totalSeconds float64
	for i, key := range s.Keys {
		searches := s.Counter(FamSearches, i)
		if searches == 0 {
			continue
		}
		r := Row{
			Body:     key,
			Searches: searches,
			Nodes:    s.Counter(FamNodes, i),
			Probes:   s.Counter(FamProbes, i),
			Matches:  s.Counter(FamMatches, i),
		}
		if h := s.Histogram(FamNodesPerSearch, i); h.Count > 0 {
			r.MedianNodes = h.Summary().Median
		}
		if h := s.Histogram(FamProbesPerSearch, i); h.Count > 0 {
			r.MedianProbes = h.Summary().Median
		}
		if h := s.Histogram(FamSearchSeconds, i); h.Count > 0 {
			r.Seconds = h.Sum
		}
		totalSeconds += r.Seconds
		rows = append(rows, r)
	}
	if totalSeconds > 0 {
		for i := range rows {
			rows[i].TimeShare = rows[i].Seconds / totalSeconds
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		if ra.Seconds != rb.Seconds {
			return ra.Seconds > rb.Seconds
		}
		if ra.Nodes != rb.Nodes {
			return ra.Nodes > rb.Nodes
		}
		return ra.Body < rb.Body
	})
	return rows
}

// TopRows returns at most k rows of Rows(s); k <= 0 means all.
func TopRows(s *Snapshot, k int) []Row {
	rows := Rows(s)
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	return rows
}

// profilezDefaultK bounds the /profilez response when no ?k= is given.
const profilezDefaultK = 20

// profilezHandler serves the live profile as JSON: the top-K rows by
// self-time plus the row count before truncation. ?k=N overrides K
// (0 = all).
func profilezHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		k := profilezDefaultK
		if q := req.URL.Query().Get("k"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad k: %v", err), http.StatusBadRequest)
				return
			}
			k = n
		}
		rows := Rows(SnapshotAll())
		doc := struct {
			Enabled bool  `json:"enabled"`
			Bodies  int   `json:"bodies"`
			Rows    []Row `json:"rows"`
		}{Enabled: Enabled(), Bodies: len(rows), Rows: rows}
		if k > 0 && len(doc.Rows) > k {
			doc.Rows = doc.Rows[:k]
		}
		if doc.Rows == nil {
			doc.Rows = []Row{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// PromMaxRules caps the per-rule series the Prometheus appender exposes.
// Label cardinality is the classic Prometheus failure mode; fifty bodies
// ranked by cost cover any plausible dashboard, and the truncation is
// announced with an explicit gauge rather than silently.
const PromMaxRules = 50

// writeProm appends the per-rule exposition section to /metrics: for each
// of the top PromMaxRules rows, rule-labeled series for searches, nodes and
// self-time, plus a truncation gauge when the cap bit.
func writeProm(w io.Writer) error {
	rows := Rows(SnapshotAll())
	truncated := 0
	if len(rows) > PromMaxRules {
		truncated = len(rows) - PromMaxRules
		rows = rows[:PromMaxRules]
	}
	if len(rows) == 0 && truncated == 0 {
		return nil
	}
	type series struct {
		name, typ string
		value     func(Row) string
	}
	for _, sr := range []series{
		{"kbrepair_rule_searches_total", "counter", func(r Row) string { return strconv.FormatInt(r.Searches, 10) }},
		{"kbrepair_rule_backtrack_nodes_total", "counter", func(r Row) string { return strconv.FormatInt(r.Nodes, 10) }},
		{"kbrepair_rule_search_seconds_sum", "counter", func(r Row) string { return strconv.FormatFloat(r.Seconds, 'g', -1, 64) }},
	} {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", sr.name, sr.typ); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(w, "%s{rule=%q} %s\n", sr.name, r.Body, sr.value(r)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE kbrepair_rule_series_truncated gauge\nkbrepair_rule_series_truncated %d\n", truncated)
	return err
}

func init() {
	obs.RegisterDebugHandler("/profilez", profilezHandler())
	obs.RegisterPromAppender(writeProm)
}
