package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and tests may wire the debug server more than once.
var publishOnce sync.Once

// PublishExpvar exposes the default registry's snapshot as the expvar
// variable "kbrepair" (visible at /debug/vars on the debug server).
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("kbrepair", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// extraHandlers are debug-server routes contributed by packages obs cannot
// import (layering: they import obs). internal/obs/flight registers /debugz
// here from its init, so any process linking flight serves bundles.
var (
	extraMu       sync.Mutex
	extraHandlers = map[string]http.Handler{}
)

// RegisterDebugHandler mounts a handler on every DebugMux built afterwards.
// Registering the same pattern twice keeps the latest handler.
func RegisterDebugHandler(pattern string, h http.Handler) {
	extraMu.Lock()
	defer extraMu.Unlock()
	extraHandlers[pattern] = h
}

// DebugMux builds the debug server's routing table: pprof handlers
// (/debug/pprof/...), expvar (/debug/vars), the Prometheus exposition of
// the default registry (/metrics), the live run status (/statusz), and any
// registered extra handlers (/debugz when internal/obs/flight is linked).
// It is exported so tests can mount it on an httptest.Server.
func DebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/statusz", StatuszHandler())
	extraMu.Lock()
	for p, h := range extraHandlers {
		mux.Handle(p, h)
	}
	extraMu.Unlock()
	return mux
}

// ServeDebug starts an HTTP server on addr exposing DebugMux. It listens
// synchronously — so an unusable address fails fast — then serves in a
// goroutine, and returns the bound address (useful with ":0": tests and
// scripts scrape the endpoints on an ephemeral port). The server lives for
// the process; if Serve ever fails the error is surfaced on stderr rather
// than silently dropped.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := DebugMux()
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "obs: debug server on %s: %v\n", ln.Addr(), err)
		}
	}()
	return ln.Addr().String(), nil
}
