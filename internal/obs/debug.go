package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and tests may wire the debug server more than once.
var publishOnce sync.Once

// PublishExpvar exposes the default registry's snapshot as the expvar
// variable "kbrepair" (visible at /debug/vars on the debug server).
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("kbrepair", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// ServeDebug starts an HTTP server on addr exposing the pprof handlers
// (/debug/pprof/...) and expvar (/debug/vars, including the metrics
// snapshot via PublishExpvar). It listens synchronously — so an unusable
// address fails fast — then serves in a goroutine, and returns the bound
// address (useful with ":0").
func ServeDebug(addr string) (string, error) {
	PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	go func() {
		// The server lives for the process; Serve only returns on listener
		// close, and the CLIs never close it.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), nil
}
