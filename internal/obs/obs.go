// Package obs is the observability substrate of kbrepair: a lock-cheap
// metrics registry (counters, gauges, fixed-bucket latency histograms), a
// structured span/event tracer with pluggable sinks, and pprof/expvar
// wiring helpers for the CLIs.
//
// The package is built for instrumentation of hot paths (the chase loop,
// the homomorphism search, conflict maintenance), so the design rules are:
//
//   - counters and histograms are always-on and allocation-free: plain
//     atomic adds on striped cells, no locks, no maps on the update path;
//   - anything that needs a clock (latency timers, spans) is gated behind
//     Enabled / Tracing, so the default no-flags path pays one predictable
//     branch and zero allocations;
//   - instruments are registered once, at package init of the instrumented
//     package, and held as package-level handles — the hot path never
//     performs a name lookup.
//
// Everything is standard library only.
package obs

import (
	"sync/atomic"
	"time"
)

// enabled gates the time-based instruments (latency timers). Counter and
// histogram updates are cheap enough to stay always-on; calling time.Now
// twice per homomorphism search is not, so timers are opt-in.
var enabled atomic.Bool

// Enabled reports whether latency timing is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns latency timing on or off (the CLIs enable it when any
// of -metrics / -trace is given).
func SetEnabled(v bool) { enabled.Store(v) }

// Timer is a started latency measurement. The zero Timer (returned by
// StartTimer when timing is disabled) is inert: observing it is a no-op.
type Timer struct{ t time.Time }

// StartTimer begins a latency measurement, or returns the inert zero Timer
// when timing is disabled. It is a value type; no allocation either way.
func StartTimer() Timer {
	if !enabled.Load() {
		return Timer{}
	}
	return Timer{t: time.Now()}
}

// Active reports whether the timer was started while timing was enabled.
func (t Timer) Active() bool { return !t.t.IsZero() }

// defaultRegistry is the process-wide registry used by the package-level
// constructors; the instrumented packages all register here.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// NewCounter registers (or retrieves) a counter on the default registry.
func NewCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// NewGauge registers (or retrieves) a gauge on the default registry.
func NewGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// NewHistogram registers (or retrieves) a histogram on the default
// registry. See Registry.Histogram for the bounds contract.
func NewHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, bounds)
}

// defaultTracer is the process-wide tracer; its sink starts as the no-op
// sink, so tracing is free until a CLI installs a real sink.
var defaultTracer = NewTracer(nil)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// Tracing reports whether the default tracer has a real sink. Hot paths
// must guard span/event calls that pass attributes behind this check: the
// variadic attribute slice is materialized at the call site even when the
// tracer would discard it.
func Tracing() bool { return defaultTracer.Active() }

// StartSpan opens a root span on the default tracer.
func StartSpan(name string, attrs ...Attr) Span {
	return defaultTracer.StartSpan(name, attrs...)
}

// StartSpanUnder opens a span on the default tracer with an explicit parent
// span id (0 for a root) — for call sites that receive causality as a plain
// id across a package boundary rather than as a Span value.
func StartSpanUnder(parent uint64, name string, attrs ...Attr) Span {
	return defaultTracer.StartSpanUnder(parent, name, attrs...)
}

// Now reads the default tracer's clock — time.Now in production, the
// injected clock in deterministic-trace tests. Durations that become span
// attributes (the engine's question delay) must be measured with it.
func Now() time.Time { return defaultTracer.Now() }

// Emit records a point event on the default tracer.
func Emit(name string, attrs ...Attr) { defaultTracer.Event(name, attrs...) }

// SetTraceSink installs a sink on the default tracer (nil restores the
// no-op sink).
func SetTraceSink(s Sink) { defaultTracer.SetSink(s) }

// AddTraceSink tees s onto whatever sink the default tracer already has,
// or installs it alone if tracing was off — how kbbench collects a full
// span stream for its report without requiring -trace. Not safe against
// concurrent SetTraceSink calls; CLIs call both during single-threaded
// setup.
func AddTraceSink(s Sink) {
	if box := defaultTracer.sink.Load(); box != nil {
		defaultTracer.SetSink(MultiSink(box.s, s))
		return
	}
	defaultTracer.SetSink(s)
}
