package obs

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

// fixedClock steps 1ms per reading, giving deterministic timestamps.
func fixedClock() func() time.Time {
	t := time.UnixMicro(1_700_000_000_000_000).UTC()
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

// TestJSONLSinkGolden pins the JSON-lines schema and record ordering: spans
// are emitted at End (completion order), events at call time.
func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewJSONLSink(&buf))
	tr.SetNow(fixedClock())

	sp := tr.StartSpan("chase.run", Int("tgds", 3))                               // clock tick 1
	tr.Event("chase.round", Int("round", 1), Int("delta", 5), Str("kb", "synth")) // tick 2
	inner := tr.StartSpan("homo.search")                                          // tick 3
	inner.End(Int("nodes", 7))                                                    // tick 4
	sp.End(Int("rounds", 2))                                                      // tick 5

	got := buf.String()
	want := strings.Join([]string{
		`{"type":"event","name":"chase.round","start_us":1700000000002000,"attrs":{"delta":5,"kb":"synth","round":1}}`,
		`{"type":"span","name":"homo.search","span":2,"start_us":1700000000003000,"dur_us":1000,"attrs":{"nodes":7}}`,
		`{"type":"span","name":"chase.run","span":1,"start_us":1700000000001000,"dur_us":4000,"attrs":{"rounds":2,"tgds":3}}`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("trace output mismatch:\n got: %s\nwant: %s", got, want)
	}
}

func TestNilSinkIsInert(t *testing.T) {
	tr := NewTracer(nil)
	if tr.Active() {
		t.Fatal("tracer active with nil sink")
	}
	sp := tr.StartSpan("x")
	sp.End()
	tr.Event("y")
	// Inert spans must also be allocation-free when no attrs are passed.
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.StartSpan("hot")
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("inert span allocates: %.1f allocs/op", allocs)
	}
}

func TestRingSinkWrapAround(t *testing.T) {
	s := NewRingSink(3)
	tr := NewTracer(s)
	tr.SetNow(fixedClock())
	for i := 1; i <= 5; i++ {
		tr.Event("e", Int("i", i))
	}
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3", len(recs))
	}
	for i, want := range []int64{3, 4, 5} {
		if got := recs[i].Attrs["i"].(int64); got != want {
			t.Errorf("rec %d: i = %v, want %d", i, got, want)
		}
	}
	if s.Total() != 5 {
		t.Errorf("Total = %d, want 5", s.Total())
	}
}

func TestSinkSwapMidSpan(t *testing.T) {
	ring := NewRingSink(8)
	tr := NewTracer(ring)
	sp := tr.StartSpan("long")
	tr.SetSink(nil)
	sp.End() // sink gone: dropped, no panic
	if got := len(ring.Records()); got != 0 {
		t.Errorf("record written after sink removed: %d", got)
	}
}

func TestServeDebug(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on localhost: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
