package obs

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"
)

// fixedClock steps 1ms per reading, giving deterministic timestamps.
func fixedClock() func() time.Time {
	t := time.UnixMicro(1_700_000_000_000_000).UTC()
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

// TestJSONLSinkGolden pins the JSON-lines schema and record ordering: spans
// are emitted at End (completion order), events at call time. Root spans
// omit the parent field entirely, so traces without causal structure are
// byte-identical to the pre-parent format.
func TestJSONLSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	tr.SetNow(fixedClock())

	sp := tr.StartSpan("chase.run", Int("tgds", 3))                               // clock tick 1
	tr.Event("chase.round", Int("round", 1), Int("delta", 5), Str("kb", "synth")) // tick 2
	inner := tr.StartSpan("homo.search")                                          // tick 3
	inner.End(Int("nodes", 7))                                                    // tick 4
	sp.End(Int("rounds", 2))                                                      // tick 5
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got := buf.String()
	want := strings.Join([]string{
		`{"type":"event","name":"chase.round","start_us":1700000000002000,"attrs":{"delta":5,"kb":"synth","round":1}}`,
		`{"type":"span","name":"homo.search","span":2,"start_us":1700000000003000,"dur_us":1000,"attrs":{"nodes":7}}`,
		`{"type":"span","name":"chase.run","span":1,"start_us":1700000000001000,"dur_us":4000,"attrs":{"rounds":2,"tgds":3}}`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("trace output mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestJSONLSinkParentGolden pins the parent field: children carry the id of
// the span that spawned them, whether opened via Child or an explicit id
// through StartSpanUnder.
func TestJSONLSinkParentGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := NewTracer(sink)
	tr.SetNow(fixedClock())

	root := tr.StartSpan("inquiry.run")             // tick 1, id 1
	q := root.Child("inquiry.question", Int("q", 1)) // tick 2, id 2
	chase := tr.StartSpanUnder(q.ID(), "chase.run") // tick 3, id 3
	chase.End(Int("rounds", 1))                     // tick 4
	q.End()                                         // tick 5
	root.End()                                      // tick 6
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got := buf.String()
	want := strings.Join([]string{
		`{"type":"span","name":"chase.run","span":3,"parent":2,"start_us":1700000000003000,"dur_us":1000,"attrs":{"rounds":1}}`,
		`{"type":"span","name":"inquiry.question","span":2,"parent":1,"start_us":1700000000002000,"dur_us":3000,"attrs":{"q":1}}`,
		`{"type":"span","name":"inquiry.run","span":1,"start_us":1700000000001000,"dur_us":5000}`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("trace output mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestJSONLSinkBuffers verifies writes stay in the buffer until Flush —
// the whole point of the buffered sink — and that Flush drains them.
func TestJSONLSinkBuffers(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	sink.Write(Record{Type: "event", Name: "e"})
	if buf.Len() != 0 {
		t.Errorf("record reached writer before Flush (%d bytes)", buf.Len())
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("Flush left the buffer empty")
	}
}

func TestNilSinkIsInert(t *testing.T) {
	tr := NewTracer(nil)
	if tr.Active() {
		t.Fatal("tracer active with nil sink")
	}
	sp := tr.StartSpan("x")
	sp.End()
	tr.Event("y")
	// Inert spans must also be allocation-free when no attrs are passed —
	// including the parented variants, which sit on the same hot paths.
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.StartSpan("hot")
		c := s.Child("hotter")
		c.End()
		s.End()
		u := tr.StartSpanUnder(42, "hottest")
		u.End()
	})
	if allocs != 0 {
		t.Fatalf("inert span allocates: %.1f allocs/op", allocs)
	}
	if id := tr.StartSpan("x").ID(); id != 0 {
		t.Errorf("inert span ID = %d, want 0", id)
	}
	if tr.StartSpan("x").Live() {
		t.Error("inert span reports Live")
	}
}

// TestClockNoMutex pins the satellite fix: reading the clock is one atomic
// load, so concurrent StartSpan/Event calls never contend on a tracer lock
// (the -race leg of verify2 would catch an unsynchronized replacement).
func TestClockSwapConcurrent(t *testing.T) {
	tr := NewTracer(NewRingSink(64))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.SetNow(fixedClock())
			tr.SetNow(nil)
		}
	}()
	for i := 0; i < 100; i++ {
		sp := tr.StartSpan("s")
		tr.Event("e")
		sp.End()
	}
	<-done
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := NewRingSink(4), NewRingSink(4)
	tr := NewTracer(MultiSink(a, b))
	tr.Event("e")
	if len(a.Records()) != 1 || len(b.Records()) != 1 {
		t.Errorf("records = %d/%d, want 1/1", len(a.Records()), len(b.Records()))
	}
}

func TestRingSinkWrapAround(t *testing.T) {
	s := NewRingSink(3)
	tr := NewTracer(s)
	tr.SetNow(fixedClock())
	for i := 1; i <= 5; i++ {
		tr.Event("e", Int("i", i))
	}
	recs := s.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3", len(recs))
	}
	for i, want := range []int64{3, 4, 5} {
		if got := recs[i].Attrs["i"].(int64); got != want {
			t.Errorf("rec %d: i = %v, want %d", i, got, want)
		}
	}
	if s.Total() != 5 {
		t.Errorf("Total = %d, want 5", s.Total())
	}
}

func TestSinkSwapMidSpan(t *testing.T) {
	ring := NewRingSink(8)
	tr := NewTracer(ring)
	sp := tr.StartSpan("long")
	tr.SetSink(nil)
	sp.End() // sink gone: dropped, no panic
	if got := len(ring.Records()); got != 0 {
		t.Errorf("record written after sink removed: %d", got)
	}
}

func TestServeDebug(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen on localhost: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
