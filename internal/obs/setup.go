package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"
)

// DefaultSampleEvery is the default time-series sampling interval.
const DefaultSampleEvery = 250 * time.Millisecond

// MaxFlightEvents is the largest flight-recorder capacity ValidateFlags
// accepts for -flight-events: 16Mi events is ~1.5GB of ring buffer, far
// past any plausible retention need — a bigger value is a typo.
const MaxFlightEvents = 1 << 24

// TraceRingCapacity is the size of the in-memory trace ring SetupCLI tees
// the -trace stream into for /tracez and debug bundles. 4096 records cover
// hundreds of recent questions at the pipeline's span granularity.
const TraceRingCapacity = 4096

// CLIConfig is the observability surface the CLIs expose as flags.
type CLIConfig struct {
	// MetricsPath, when non-empty, enables latency timing and writes a
	// JSON snapshot of the default registry there at Flush time.
	MetricsPath string
	// TracePath, when non-empty, enables timing and streams a JSON-lines
	// trace of the default tracer there.
	TracePath string
	// PprofAddr, when non-empty, serves the debug handlers (pprof, expvar,
	// /metrics, /statusz) on the address.
	PprofAddr string
	// TimeseriesPath, when non-empty, enables timing and streams periodic
	// registry samples there as JSONL (see Sampler).
	TimeseriesPath string
	// SampleEvery is the periodic sampling interval for TimeseriesPath;
	// <= 0 disables the ticker, leaving only forced marks.
	SampleEvery time.Duration
	// MutexFraction, when > 0, is passed to runtime.SetMutexProfileFraction
	// so the mutex profile (pprof and debug bundles) samples contended
	// lock acquisitions: 1 records every contention event, N one in N.
	MutexFraction int
	// BlockRate, when > 0, is passed to runtime.SetBlockProfileRate: one
	// blocking event per BlockRate nanoseconds blocked is sampled into the
	// block profile.
	BlockRate int
}

// AddFlags registers the shared observability flags on fs and returns the
// CLIConfig they populate — the one wiring all four CLIs use, so flag
// names and help strings stay identical across binaries. Pass the result
// to SetupCLI after fs is parsed.
func AddFlags(fs *flag.FlagSet) *CLIConfig {
	c := &CLIConfig{SampleEvery: DefaultSampleEvery}
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a JSON metrics snapshot to this file on exit")
	fs.StringVar(&c.TracePath, "trace", "", "stream a JSON-lines execution trace to this file")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve pprof/expvar/metrics debug handlers on this address (e.g. localhost:6060)")
	fs.StringVar(&c.TimeseriesPath, "timeseries", "", "stream periodic JSON-lines metric samples to this file")
	fs.DurationVar(&c.SampleEvery, "sample-interval", c.SampleEvery, "sampling interval for -timeseries")
	fs.IntVar(&c.MutexFraction, "mutex-profile-fraction", 0,
		"sample 1/N of mutex contention events into the mutex profile (0 disables; see runtime.SetMutexProfileFraction)")
	fs.IntVar(&c.BlockRate, "block-profile-rate", 0,
		"sample one blocking event per N nanoseconds blocked into the block profile (0 disables; see runtime.SetBlockProfileRate)")
	return c
}

// ValidateFlags checks flag values that parse fine but make no sense, after
// fs has been parsed. It rejects an explicitly passed non-positive
// -sample-interval (the zero default means "ticker off" internally, but a
// user typing -sample-interval 0 almost certainly wanted sampling), an
// explicitly passed negative -mutex-profile-fraction or
// -block-profile-rate (0 is a valid "off"), an
// explicitly passed -flight-events of 0 (the default 0 means "autosize
// from the KB"; a user typing it either wanted the autosize — omit the
// flag — or to disable the recorder, which is any negative value) or above
// MaxFlightEvents, and an explicitly passed non-positive value for each
// flag named in positiveInts (e.g. "workers", whose default 0 means
// GOMAXPROCS — valid as a default, nonsense as input). Only flags the user
// actually set are checked, via fs.Visit. Returns the first offending flag
// as an error; the CLIs print it and exit 2, the flag package's own
// usage-error status.
func ValidateFlags(fs *flag.FlagSet, positiveInts ...string) error {
	positive := make(map[string]bool, len(positiveInts))
	for _, name := range positiveInts {
		positive[name] = true
	}
	var first error
	fs.Visit(func(f *flag.Flag) {
		if first != nil {
			return
		}
		switch {
		case f.Name == "sample-interval":
			if g, ok := f.Value.(flag.Getter); ok {
				if d, ok := g.Get().(time.Duration); ok && d <= 0 {
					first = fmt.Errorf("-sample-interval must be positive, got %v", d)
				}
			}
		case f.Name == "mutex-profile-fraction" || f.Name == "block-profile-rate":
			if g, ok := f.Value.(flag.Getter); ok {
				if n, ok := g.Get().(int); ok && n < 0 {
					first = fmt.Errorf("-%s must be non-negative, got %d", f.Name, n)
				}
			}
		case f.Name == "flight-events":
			if g, ok := f.Value.(flag.Getter); ok {
				if n, ok := g.Get().(int); ok {
					switch {
					case n == 0:
						first = fmt.Errorf("-flight-events 0 is ambiguous: omit the flag to autosize from the KB, or pass a negative value to disable the recorder")
					case n > MaxFlightEvents:
						first = fmt.Errorf("-flight-events must be at most %d, got %d", MaxFlightEvents, n)
					}
				}
			}
		case positive[f.Name]:
			if g, ok := f.Value.(flag.Getter); ok {
				if n, ok := g.Get().(int); ok && n <= 0 {
					first = fmt.Errorf("-%s must be positive, got %d", f.Name, n)
				}
			}
		}
	})
	return first
}

// Enabled reports whether any observability output was requested.
func (c CLIConfig) Enabled() bool {
	return c.MetricsPath != "" || c.TracePath != "" || c.PprofAddr != "" || c.TimeseriesPath != ""
}

// SetupCLI wires the requested observability outputs and returns a flush
// function to be called once on exit. Output files are created eagerly so
// an unwritable path fails before any work is done, with a clear error and
// a non-zero exit in the CLIs. The flush writes the metrics snapshot,
// stops the sampler, tears down the trace sink, and reports any write
// error encountered.
func SetupCLI(c CLIConfig) (flush func() error, err error) {
	var (
		metricsFile *os.File
		traceFile   *os.File
		traceSink   *JSONLSink
		seriesFile  *os.File
		sampler     *Sampler
	)
	fail := func(err error) (func() error, error) {
		if metricsFile != nil {
			metricsFile.Close()
		}
		if traceFile != nil {
			traceFile.Close()
		}
		if seriesFile != nil {
			seriesFile.Close()
		}
		return nil, err
	}

	if c.MetricsPath != "" {
		metricsFile, err = os.Create(c.MetricsPath)
		if err != nil {
			return fail(fmt.Errorf("metrics output: %w", err))
		}
	}
	if c.TracePath != "" {
		traceFile, err = os.Create(c.TracePath)
		if err != nil {
			return fail(fmt.Errorf("trace output: %w", err))
		}
		traceSink = NewJSONLSink(traceFile)
		// Tee the trace into a bounded in-memory ring so /tracez and
		// debug-bundle captures can show the most recent spans live.
		ring := NewRingSink(TraceRingCapacity)
		SetTraceRing(ring)
		SetTraceSink(MultiSink(traceSink, ring))
	}
	if c.TimeseriesPath != "" {
		seriesFile, err = os.Create(c.TimeseriesPath)
		if err != nil {
			return fail(fmt.Errorf("timeseries output: %w", err))
		}
		sampler = StartSampler(Default(), seriesFile, c.SampleEvery)
		SetSampler(sampler)
	}
	if c.PprofAddr != "" {
		if _, err := ServeDebug(c.PprofAddr); err != nil {
			return fail(fmt.Errorf("pprof server: %w", err))
		}
	}
	// Contention capture is opt-in: sampling contended locks costs a
	// little on every contended acquisition, so the rates stay 0 unless
	// the user asks. The profiles land in pprof and debug bundles.
	if c.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(c.MutexFraction)
	}
	if c.BlockRate > 0 {
		runtime.SetBlockProfileRate(c.BlockRate)
	}
	if c.MetricsPath != "" || c.TracePath != "" || c.TimeseriesPath != "" {
		SetEnabled(true)
	}

	return func() error {
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = err
			}
		}
		if sampler != nil {
			SetSampler(nil)
			keep(sampler.Stop())
			if err := seriesFile.Close(); err != nil {
				keep(fmt.Errorf("timeseries output: %w", err))
			}
		}
		if traceSink != nil {
			SetTraceSink(nil)
			SetTraceRing(nil)
			if err := traceSink.Flush(); err != nil {
				keep(fmt.Errorf("trace output: %w", err))
			}
			if err := traceFile.Close(); err != nil {
				keep(fmt.Errorf("trace output: %w", err))
			}
		}
		if metricsFile != nil {
			if err := Default().WriteJSON(metricsFile); err != nil {
				keep(fmt.Errorf("metrics output: %w", err))
			}
			if err := metricsFile.Close(); err != nil {
				keep(fmt.Errorf("metrics output: %w", err))
			}
		}
		return first
	}, nil
}
