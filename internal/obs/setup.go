package obs

import (
	"fmt"
	"os"
)

// CLIConfig is the observability surface the CLIs expose as flags.
type CLIConfig struct {
	// MetricsPath, when non-empty, enables latency timing and writes a
	// JSON snapshot of the default registry there at Flush time.
	MetricsPath string
	// TracePath, when non-empty, enables timing and streams a JSON-lines
	// trace of the default tracer there.
	TracePath string
	// PprofAddr, when non-empty, serves pprof/expvar debug handlers on the
	// address.
	PprofAddr string
}

// Enabled reports whether any observability output was requested.
func (c CLIConfig) Enabled() bool {
	return c.MetricsPath != "" || c.TracePath != "" || c.PprofAddr != ""
}

// SetupCLI wires the requested observability outputs and returns a flush
// function to be called once on exit. Output files are created eagerly so
// an unwritable path fails before any work is done, with a clear error and
// a non-zero exit in the CLIs. The flush writes the metrics snapshot,
// tears down the trace sink, and reports any write error encountered.
func SetupCLI(c CLIConfig) (flush func() error, err error) {
	var (
		metricsFile *os.File
		traceFile   *os.File
		traceSink   *JSONLSink
	)
	fail := func(err error) (func() error, error) {
		if metricsFile != nil {
			metricsFile.Close()
		}
		if traceFile != nil {
			traceFile.Close()
		}
		return nil, err
	}

	if c.MetricsPath != "" {
		metricsFile, err = os.Create(c.MetricsPath)
		if err != nil {
			return fail(fmt.Errorf("metrics output: %w", err))
		}
	}
	if c.TracePath != "" {
		traceFile, err = os.Create(c.TracePath)
		if err != nil {
			return fail(fmt.Errorf("trace output: %w", err))
		}
		traceSink = NewJSONLSink(traceFile)
		SetTraceSink(traceSink)
	}
	if c.PprofAddr != "" {
		if _, err := ServeDebug(c.PprofAddr); err != nil {
			return fail(fmt.Errorf("pprof server: %w", err))
		}
	}
	if c.MetricsPath != "" || c.TracePath != "" {
		SetEnabled(true)
	}

	return func() error {
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = err
			}
		}
		if traceSink != nil {
			SetTraceSink(nil)
			keep(traceSink.Err())
			if err := traceFile.Close(); err != nil {
				keep(fmt.Errorf("trace output: %w", err))
			}
		}
		if metricsFile != nil {
			if err := Default().WriteJSON(metricsFile); err != nil {
				keep(fmt.Errorf("metrics output: %w", err))
			}
			if err := metricsFile.Close(); err != nil {
				keep(fmt.Errorf("metrics output: %w", err))
			}
		}
		return first
	}, nil
}
