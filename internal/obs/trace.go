package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute on a span or event. Values should be
// JSON-encodable scalars (string, int64, float64, bool).
type Attr struct {
	Key string
	Val any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: int64(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Val: v} }

// F64 builds a float attribute.
func F64(k string, v float64) Attr { return Attr{Key: k, Val: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: v} }

// Record is one trace entry as handed to sinks: a completed span (emitted
// at End, with a duration) or a point event. Times are microseconds since
// the Unix epoch; attribute maps serialize with sorted keys, so a JSONL
// trace is deterministic given a deterministic clock.
type Record struct {
	Type    string         `json:"type"` // "span" | "event"
	Name    string         `json:"name"`
	Span    uint64         `json:"span,omitempty"` // span id; 0 for events
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Sink consumes trace records. Implementations must be safe for concurrent
// use.
type Sink interface {
	Write(Record)
}

// Tracer produces spans and events into a sink. A nil sink means tracing
// is off: StartSpan returns the inert zero Span and Event returns
// immediately. The clock is injectable for deterministic tests.
type Tracer struct {
	sink atomic.Pointer[sinkBox]
	seq  atomic.Uint64

	mu  sync.Mutex
	now func() time.Time
}

type sinkBox struct{ s Sink }

// NewTracer returns a tracer writing to sink (nil for off).
func NewTracer(sink Sink) *Tracer {
	t := &Tracer{now: time.Now}
	t.SetSink(sink)
	return t
}

// SetSink swaps the sink; nil turns tracing off.
func (t *Tracer) SetSink(s Sink) {
	if s == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sinkBox{s: s})
}

// SetNow injects a clock (tests); nil restores time.Now.
func (t *Tracer) SetNow(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	t.now = now
}

func (t *Tracer) clock() func() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now
}

// Active reports whether a sink is installed.
func (t *Tracer) Active() bool { return t.sink.Load() != nil }

// Span is an in-progress operation. The zero Span (from a tracer with no
// sink) is inert; End on it is a no-op.
type Span struct {
	tr    *Tracer
	name  string
	id    uint64
	start time.Time
	attrs []Attr
}

// StartSpan opens a span. The record is written when End is called, so a
// sink sees spans in completion order. Callers on hot paths should guard
// attribute-passing calls behind Tracer.Active (or obs.Tracing) — the
// variadic slice is built before the call regardless of the sink.
func (t *Tracer) StartSpan(name string, attrs ...Attr) Span {
	if t.sink.Load() == nil {
		return Span{}
	}
	return Span{
		tr:    t,
		name:  name,
		id:    t.seq.Add(1),
		start: t.clock()(),
		attrs: attrs,
	}
}

// End closes the span, appending any extra attributes, and writes its
// record.
func (s Span) End(extra ...Attr) {
	if s.tr == nil {
		return
	}
	box := s.tr.sink.Load()
	if box == nil {
		return
	}
	end := s.tr.clock()()
	box.s.Write(Record{
		Type:    "span",
		Name:    s.name,
		Span:    s.id,
		StartUS: s.start.UnixMicro(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Attrs:   attrMap(s.attrs, extra),
	})
}

// Event writes a point event.
func (t *Tracer) Event(name string, attrs ...Attr) {
	box := t.sink.Load()
	if box == nil {
		return
	}
	box.s.Write(Record{
		Type:    "event",
		Name:    name,
		StartUS: t.clock()().UnixMicro(),
		Attrs:   attrMap(attrs, nil),
	})
}

func attrMap(a, b []Attr) map[string]any {
	if len(a)+len(b) == 0 {
		return nil
	}
	m := make(map[string]any, len(a)+len(b))
	for _, x := range a {
		m[x.Key] = x.Val
	}
	for _, x := range b {
		m[x.Key] = x.Val
	}
	return m
}

// JSONLSink writes one JSON object per record to an io.Writer (the -trace
// file format). Writes are serialized; the first write error is retained
// and reported by Err, after which further records are dropped.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink encoding records onto w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Write encodes the record as one JSON line.
func (s *JSONLSink) Write(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(r)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// RingSink keeps the last N records in memory — the test sink, and a cheap
// always-on flight recorder.
type RingSink struct {
	mu    sync.Mutex
	buf   []Record
	next  int
	total uint64
}

// NewRingSink returns a ring of the given capacity (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Record, 0, capacity)}
}

// Write appends the record, evicting the oldest once full.
func (s *RingSink) Write(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, r)
		return
	}
	s.buf[s.next] = r
	s.next = (s.next + 1) % cap(s.buf)
}

// Records returns the retained records, oldest first.
func (s *RingSink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Total returns the number of records ever written.
func (s *RingSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
