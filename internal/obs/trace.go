package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute on a span or event. Values should be
// JSON-encodable scalars (string, int64, float64, bool).
type Attr struct {
	Key string
	Val any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Val: int64(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Val: v} }

// F64 builds a float attribute.
func F64(k string, v float64) Attr { return Attr{Key: k, Val: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: v} }

// Record is one trace entry as handed to sinks: a completed span (emitted
// at End, with a duration) or a point event. Times are microseconds since
// the Unix epoch; attribute maps serialize with sorted keys, so a JSONL
// trace is deterministic given a deterministic clock.
//
// Parent is the span id of the causal parent (0 for roots and events): the
// span that was in progress, one level up, when this one started. A trace
// with parents is a forest, and a reader (internal/obs/traceview) can
// reconstruct per-request waterfalls from it. The field is omitted when
// zero, so traces written by older builds parse identically.
type Record struct {
	Type    string         `json:"type"` // "span" | "event"
	Name    string         `json:"name"`
	Span    uint64         `json:"span,omitempty"`   // span id; 0 for events
	Parent  uint64         `json:"parent,omitempty"` // parent span id; 0 for roots
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Sink consumes trace records. Implementations must be safe for concurrent
// use.
type Sink interface {
	Write(Record)
}

// Tracer produces spans and events into a sink. A nil sink means tracing
// is off: StartSpan returns the inert zero Span and Event returns
// immediately. The clock is injectable for deterministic tests; it is held
// behind an atomic pointer so hot traced paths never contend on a lock.
type Tracer struct {
	sink  atomic.Pointer[sinkBox]
	seq   atomic.Uint64
	clock atomic.Pointer[clockBox]
}

type sinkBox struct{ s Sink }

type clockBox struct{ now func() time.Time }

// NewTracer returns a tracer writing to sink (nil for off).
func NewTracer(sink Sink) *Tracer {
	t := &Tracer{}
	t.clock.Store(&clockBox{now: time.Now})
	t.SetSink(sink)
	return t
}

// SetSink swaps the sink; nil turns tracing off.
func (t *Tracer) SetSink(s Sink) {
	if s == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sinkBox{s: s})
}

// SetNow injects a clock (tests); nil restores time.Now.
func (t *Tracer) SetNow(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	t.clock.Store(&clockBox{now: now})
}

func (t *Tracer) now() time.Time {
	return t.clock.Load().now()
}

// Now reads the tracer's clock — time.Now unless a test injected one via
// SetNow. Pipeline code measuring durations that end up as span attributes
// (the engine's question delay) must read this clock, not time.Now, so an
// injected clock makes the whole trace byte-deterministic.
func (t *Tracer) Now() time.Time { return t.now() }

// Active reports whether a sink is installed.
func (t *Tracer) Active() bool { return t.sink.Load() != nil }

// ResetSeq restarts span-id allocation at 1 — only for tests that compare
// whole traces byte-for-byte across repeated runs on the same tracer.
func (t *Tracer) ResetSeq() { t.seq.Store(0) }

// Span is an in-progress operation. The zero Span (from a tracer with no
// sink) is inert; End on it is a no-op.
type Span struct {
	tr     *Tracer
	name   string
	id     uint64
	parent uint64
	start  time.Time
	attrs  []Attr
}

// StartSpan opens a root span. The record is written when End is called, so
// a sink sees spans in completion order. Callers on hot paths should guard
// attribute-passing calls behind Tracer.Active (or obs.Tracing) — the
// variadic slice is built before the call regardless of the sink.
func (t *Tracer) StartSpan(name string, attrs ...Attr) Span {
	return t.StartSpanUnder(0, name, attrs...)
}

// StartSpanUnder opens a span with an explicit parent span id — the way to
// thread causality across a package boundary where only the id (not the
// Span value) travels. Parent 0 makes a root. The disabled path is one
// atomic load and allocation-free.
func (t *Tracer) StartSpanUnder(parent uint64, name string, attrs ...Attr) Span {
	if t.sink.Load() == nil {
		return Span{}
	}
	return Span{
		tr:     t,
		name:   name,
		id:     t.seq.Add(1),
		parent: parent,
		start:  t.now(),
		attrs:  attrs,
	}
}

// Child opens a span whose parent is s. On an inert span it returns the
// inert zero Span without touching the tracer, so a disabled call tree
// stays allocation-free all the way down.
func (s Span) Child(name string, attrs ...Attr) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.tr.StartSpanUnder(s.id, name, attrs...)
}

// ID returns the span id (0 for an inert span) — what callees use as the
// parent of spans they open on this span's behalf.
func (s Span) ID() uint64 { return s.id }

// Live reports whether the span will write a record at End. Guard
// attribute-building End calls with it, mirroring the obs.Tracing
// convention for StartSpan.
func (s Span) Live() bool { return s.tr != nil }

// End closes the span, appending any extra attributes, and writes its
// record.
func (s Span) End(extra ...Attr) {
	if s.tr == nil {
		return
	}
	box := s.tr.sink.Load()
	if box == nil {
		return
	}
	end := s.tr.now()
	box.s.Write(Record{
		Type:    "span",
		Name:    s.name,
		Span:    s.id,
		Parent:  s.parent,
		StartUS: s.start.UnixMicro(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Attrs:   attrMap(s.attrs, extra),
	})
}

// Event writes a point event.
func (t *Tracer) Event(name string, attrs ...Attr) {
	box := t.sink.Load()
	if box == nil {
		return
	}
	box.s.Write(Record{
		Type:    "event",
		Name:    name,
		StartUS: t.now().UnixMicro(),
		Attrs:   attrMap(attrs, nil),
	})
}

func attrMap(a, b []Attr) map[string]any {
	if len(a)+len(b) == 0 {
		return nil
	}
	m := make(map[string]any, len(a)+len(b))
	for _, x := range a {
		m[x.Key] = x.Val
	}
	for _, x := range b {
		m[x.Key] = x.Val
	}
	return m
}

// JSONLSink writes one JSON object per record to an io.Writer (the -trace
// file format). Records are buffered (a busy trace writes thousands of
// sub-100-byte lines; one syscall each would dominate the sink), so owners
// must call Flush before reading or closing the underlying writer — the
// CLIs do so through obs.SetupCLI's flush function. Writes are serialized;
// the first write error is retained and reported by Err, after which
// further records are dropped.
type JSONLSink struct {
	mu  sync.Mutex
	buf *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink encoding records onto w through a buffer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	buf := bufio.NewWriterSize(w, 64<<10)
	return &JSONLSink{buf: buf, enc: json.NewEncoder(buf)}
}

// Write encodes the record as one JSON line.
func (s *JSONLSink) Write(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(r)
}

// Flush forces buffered records onto the underlying writer and returns the
// first error the sink has seen (encoding, buffered writes, or the flush
// itself). Call it before closing the file the sink writes to.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.buf.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MultiSink fans every record out to each sink in order — how the live
// /tracez ring rides along with a -trace file.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) Write(r Record) {
	for _, s := range m {
		s.Write(r)
	}
}

// RingSink keeps the last N records in memory — the test sink, and a cheap
// always-on flight recorder.
type RingSink struct {
	mu    sync.Mutex
	buf   []Record
	next  int
	total uint64
}

// NewRingSink returns a ring of the given capacity (minimum 1).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 1
	}
	return &RingSink{buf: make([]Record, 0, capacity)}
}

// Write appends the record, evicting the oldest once full.
func (s *RingSink) Write(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, r)
		return
	}
	s.buf[s.next] = r
	s.next = (s.next + 1) % cap(s.buf)
}

// Records returns the retained records, oldest first.
func (s *RingSink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Total returns the number of records ever written.
func (s *RingSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// traceRing is the process-wide ring of recent trace records backing the
// /tracez handler and the debug-bundle trace section. SetupCLI installs it
// whenever any observability output is on.
var traceRing atomic.Pointer[RingSink]

// TraceRing returns the live trace ring, or nil when none is installed.
func TraceRing() *RingSink { return traceRing.Load() }

// SetTraceRing installs (or, with nil, removes) the process-wide trace
// ring. The ring must also be wired into the tracer's sink — SetupCLI does
// both; tests installing a ring directly must too.
func SetTraceRing(r *RingSink) {
	if r == nil {
		traceRing.Store(nil)
		return
	}
	traceRing.Store(r)
}
