package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// scrape GETs a URL and returns the body, failing the test on any error.
func scrape(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body), resp
}

// TestDebugMuxMetricsEndpoint scrapes /metrics over real HTTP and parses
// the Prometheus text back — the end-to-end exposition test.
func TestDebugMuxMetricsEndpoint(t *testing.T) {
	NewCounter("debugtest.hits").Add(3)
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	body, resp := scrape(t, srv.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	samples, types := parsePrometheus(t, body)
	got := samples["kbrepair_debugtest_hits_total"]
	if len(got) != 1 || got[0].val < 3 {
		t.Errorf("scraped counter = %+v, want >= 3", got)
	}
	if types["kbrepair_debugtest_hits_total"] != "counter" {
		t.Errorf("TYPE = %q", types["kbrepair_debugtest_hits_total"])
	}
}

// TestDebugMuxStatuszEndpoint scrapes /statusz and checks the promoted
// gauge fields round-trip.
func TestDebugMuxStatuszEndpoint(t *testing.T) {
	NewGauge(StatusPhase).Set(2)
	NewGauge(StatusConflictsRemaining).Set(9)
	NewGauge(StatusQuestionsAsked).Set(4)
	defer func() {
		NewGauge(StatusPhase).Set(0)
		NewGauge(StatusConflictsRemaining).Set(0)
		NewGauge(StatusQuestionsAsked).Set(0)
	}()
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	body, resp := scrape(t, srv.URL+"/statusz")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz is not valid JSON: %v\n%s", err, body)
	}
	if st.Phase != 2 || st.ConflictsRemaining != 9 || st.QuestionsAsked != 4 {
		t.Errorf("status = %+v, want phase 2, conflicts 9, questions 4", st)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v, want > 0", st.UptimeSeconds)
	}
	if st.Gauges[StatusPhase] != 2 {
		t.Errorf("gauge map missing %s: %+v", StatusPhase, st.Gauges)
	}
}

// TestServeDebugBoundAddress checks ServeDebug on an ephemeral port
// returns a usable address (the satellite fix: callers and tests can
// scrape without knowing the port in advance).
func TestServeDebugBoundAddress(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(addr, ":0") {
		t.Fatalf("ServeDebug returned unresolved address %q", addr)
	}
	body, _ := scrape(t, "http://"+addr+"/statusz")
	if !strings.Contains(body, "uptime_seconds") {
		t.Errorf("statusz body missing uptime_seconds:\n%s", body)
	}
	if body, _ := scrape(t, "http://"+addr+"/debug/vars"); !strings.Contains(body, "kbrepair") {
		t.Errorf("expvar missing kbrepair var:\n%s", body)
	}
}

// TestServeDebugBadAddress checks the fail-fast listen contract.
func TestServeDebugBadAddress(t *testing.T) {
	if _, err := ServeDebug("256.0.0.1:99999"); err == nil {
		t.Fatal("ServeDebug on a bogus address succeeded")
	}
}
