package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.count")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	if r.Counter("test.count") != c {
		t.Error("re-registration did not return the same counter")
	}
	r.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset, Value() = %d, want 0", got)
	}
}

// TestRegistryConcurrency hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the registry's data-race
// proof, and the final totals prove no increment is lost.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc.count")
	g := r.Gauge("conc.gauge")
	h := r.Histogram("conc.hist", []float64{0.5})
	const (
		goroutines = 16
		perG       = 2000
	)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2)) // alternate buckets
				if j%100 == 0 {
					_ = r.Snapshot() // concurrent reads
				}
			}
		}(i)
	}
	wg.Wait()
	const want = goroutines * perG
	if got := c.Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	snap := r.Snapshot().Histograms["conc.hist"]
	if snap.Counts[0]+snap.Counts[1] != want {
		t.Errorf("bucket counts = %v, want sum %d", snap.Counts, want)
	}
	if snap.Min != 0 || snap.Max != 1 {
		t.Errorf("min/max = %v/%v, want 0/1", snap.Min, snap.Max)
	}
	if math.Abs(snap.Sum-float64(want)/2) > 1e-6 {
		t.Errorf("sum = %v, want %v", snap.Sum, float64(want)/2)
	}
}

// TestSnapshotDuringUpdates runs Registry.Snapshot in a tight loop while
// writers hammer Counter.Add and Histogram.Observe. Under -race this is
// the reader-side data-race proof; the assertions check snapshot values
// are monotone (a snapshot never travels back in time) and internally
// sane (bucket sums never exceed the observation count seen later).
func TestSnapshotDuringUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("live.count")
	h := r.Histogram("live.hist", []float64{0.5})
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					c.Add(1)
					h.Observe(0.25)
				}
			}
		}()
	}
	var prevCount, prevHist int64
	for i := 0; i < 500; i++ {
		s := r.Snapshot()
		if got := s.Counters["live.count"]; got < prevCount {
			t.Fatalf("counter snapshot went backwards: %d then %d", prevCount, got)
		} else {
			prevCount = got
		}
		hs := s.Histograms["live.hist"]
		if hs.Count < prevHist {
			t.Fatalf("histogram count went backwards: %d then %d", prevHist, hs.Count)
		}
		prevHist = hs.Count
		var buckets int64
		for _, b := range hs.Counts {
			buckets += b
		}
		// Bucket cells and the total are updated by separate atomics, so a
		// snapshot may catch an observation between the two; the skew is
		// bounded by the number of in-flight writers.
		if diff := buckets - hs.Count; diff < -4 || diff > 4 {
			t.Fatalf("bucket total %d vs count %d: skew beyond in-flight writers", buckets, hs.Count)
		}
	}
	close(done)
	wg.Wait()
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	// Bounds are inclusive upper edges: 1 lands in bucket 0, 10 in 1.
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Min != 0.5 || s.Max != 1000 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Count != 6 {
		t.Errorf("count = %d", s.Count)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Gauge("b.level").Set(-7)
	r.Histogram("c.lat", []float64{0.1, 1}).Observe(0.05)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["a.count"] != 3 || snap.Gauges["b.level"] != -7 {
		t.Errorf("round-trip mismatch: %+v", snap)
	}
	h := snap.Histograms["c.lat"]
	if h.Count != 1 || h.Counts[0] != 1 {
		t.Errorf("histogram round-trip mismatch: %+v", h)
	}
}

func TestTimerDisabledIsInert(t *testing.T) {
	SetEnabled(false)
	tm := StartTimer()
	if tm.Active() {
		t.Fatal("timer active while disabled")
	}
	r := NewRegistry()
	h := r.Histogram("t", nil)
	h.Since(tm)
	if h.Count() != 0 {
		t.Fatal("inert timer was observed")
	}
	SetEnabled(true)
	defer SetEnabled(false)
	tm = StartTimer()
	if !tm.Active() {
		t.Fatal("timer inactive while enabled")
	}
	time.Sleep(time.Microsecond)
	h.Since(tm)
	if h.Count() != 1 {
		t.Fatal("active timer not observed")
	}
}

// TestDisabledInstrumentsAllocationFree is the acceptance guard: the
// instrument calls an un-flagged run performs per chase round — counter
// adds, a disabled timer, a histogram observe, the tracing gate — must not
// allocate.
func TestDisabledInstrumentsAllocationFree(t *testing.T) {
	SetEnabled(false)
	r := NewRegistry()
	c := r.Counter("alloc.count")
	h := r.Histogram("alloc.hist", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		tm := StartTimer()
		h.Since(tm)
		h.Observe(0.001)
		if Tracing() {
			t.Fatal("tracing unexpectedly on")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocate: %.1f allocs/op", allocs)
	}
}

// BenchmarkDisabledInstruments measures the per-round overhead of the
// disabled path (report with -benchmem: must stay at 0 allocs/op).
func BenchmarkDisabledInstruments(b *testing.B) {
	SetEnabled(false)
	r := NewRegistry()
	c := r.Counter("bench.count")
	h := r.Histogram("bench.hist", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Since(StartTimer())
	}
}

// BenchmarkCounterParallel exercises the striping under contention.
func BenchmarkCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.parallel")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
