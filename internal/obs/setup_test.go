package obs

import (
	"flag"
	"strings"
	"testing"
)

// newCLIFlagSet mirrors the flag surface the CLIs build: the shared obs
// flags plus a -workers int whose zero default means GOMAXPROCS.
func newCLIFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	AddFlags(fs)
	fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.Int("flight-events", 0, "flight recorder capacity (0 autosizes, negative disables)")
	return fs
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{name: "no flags", args: nil},
		{name: "valid workers", args: []string{"-workers", "4"}},
		{name: "valid interval", args: []string{"-sample-interval", "100ms"}},
		{name: "zero workers", args: []string{"-workers", "0"}, wantErr: "-workers must be positive"},
		{name: "negative workers", args: []string{"-workers", "-3"}, wantErr: "-workers must be positive"},
		{name: "zero interval", args: []string{"-sample-interval", "0s"}, wantErr: "-sample-interval must be positive"},
		{name: "negative interval", args: []string{"-sample-interval", "-1s"}, wantErr: "-sample-interval must be positive"},
		{
			name:    "first offender reported",
			args:    []string{"-sample-interval", "-1s", "-workers", "0"},
			wantErr: "must be positive",
		},
		// The defaults are never rejected: -workers 0 as a *default* means
		// GOMAXPROCS and -sample-interval only matters when set.
		{name: "unset defaults pass", args: []string{"-metrics", "out.json"}},
		// -flight-events: 0 as a default autosizes, but an *explicit* 0 is
		// ambiguous (did the user mean "off"?) and rejected; negative
		// explicitly disables and positive sets the capacity, both fine up
		// to the sanity cap.
		{name: "flight events positive", args: []string{"-flight-events", "4096"}},
		{name: "flight events disable", args: []string{"-flight-events", "-1"}},
		{
			name:    "flight events explicit zero",
			args:    []string{"-flight-events", "0"},
			wantErr: "-flight-events 0 is ambiguous",
		},
		{
			name:    "flight events above cap",
			args:    []string{"-flight-events", "16777217"},
			wantErr: "-flight-events must be at most 16777216",
		},
		// Contention-profiling knobs: 0 (the default) means off, positive
		// sets the sampling rate, negative is nonsense.
		{name: "mutex fraction positive", args: []string{"-mutex-profile-fraction", "5"}},
		{name: "mutex fraction explicit zero", args: []string{"-mutex-profile-fraction", "0"}},
		{
			name:    "mutex fraction negative",
			args:    []string{"-mutex-profile-fraction", "-1"},
			wantErr: "-mutex-profile-fraction must be non-negative",
		},
		{name: "block rate positive", args: []string{"-block-profile-rate", "1000"}},
		{
			name:    "block rate negative",
			args:    []string{"-block-profile-rate", "-5"},
			wantErr: "-block-profile-rate must be non-negative",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := newCLIFlagSet()
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse: %v", err)
			}
			err := ValidateFlags(fs, "workers")
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ValidateFlags(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ValidateFlags(%v) = %v, want error containing %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestValidateFlagsIgnoresUnlistedInts(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	AddFlags(fs)
	fs.Int("reps", 0, "0 = default")
	if err := fs.Parse([]string{"-reps", "0"}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlags(fs, "workers"); err != nil {
		t.Fatalf("unlisted int flag rejected: %v", err)
	}
}
