package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SampleHist is the per-row histogram digest: count and sum are enough to
// plot rates and running means over time; full bucket vectors stay in the
// end-of-run snapshot.
type SampleHist struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
}

// SampleRow is one line of the time-series JSONL produced by a Sampler.
// TMS is milliseconds since the sampler started, so rows from one run
// align without clock arithmetic. Label distinguishes periodic ticks
// ("tick"), forced marks (the SampleNow argument, e.g. "question") and the
// final row written by Stop ("final").
type SampleRow struct {
	TMS        int64                 `json:"t_ms"`
	Label      string                `json:"label"`
	Counters   map[string]int64      `json:"counters"`
	Gauges     map[string]int64      `json:"gauges"`
	Histograms map[string]SampleHist `json:"histograms"`
}

// Sampler snapshots a registry into a JSONL time-series: periodically on
// its own goroutine, and on demand via SampleNow (the inquiry engine marks
// a row after every answered question, giving the per-round progress
// curves of the paper's Figure 4). Writes are serialized; the first write
// error is retained and returned by Stop, after which rows are dropped.
type Sampler struct {
	reg   *Registry
	every time.Duration
	start time.Time

	mu  sync.Mutex
	enc *json.Encoder
	err error

	done chan struct{}
	wg   sync.WaitGroup
}

// StartSampler begins sampling reg onto w. If every > 0 a background
// goroutine writes a row each interval; with every <= 0 only forced marks
// (SampleNow, Stop) produce rows. The first row ("start") is written
// immediately so even an instant run yields a non-empty series.
func StartSampler(reg *Registry, w io.Writer, every time.Duration) *Sampler {
	s := &Sampler{
		reg:   reg,
		every: every,
		start: time.Now(),
		enc:   json.NewEncoder(w),
		done:  make(chan struct{}),
	}
	s.sample("start")
	if every > 0 {
		s.wg.Add(1)
		go s.loop()
	}
	return s
}

func (s *Sampler) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sample("tick")
		case <-s.done:
			return
		}
	}
}

// sample writes one row.
func (s *Sampler) sample(label string) {
	snap := s.reg.Snapshot()
	row := SampleRow{
		TMS:        time.Since(s.start).Milliseconds(),
		Label:      label,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: make(map[string]SampleHist, len(snap.Histograms)),
	}
	for n, h := range snap.Histograms {
		row.Histograms[n] = SampleHist{Count: h.Count, Sum: h.Sum}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(row)
}

// SampleNow writes an extra row labeled with the given marker.
func (s *Sampler) SampleNow(label string) { s.sample(label) }

// Stop halts the periodic goroutine, writes a final row, and returns the
// first write error encountered over the sampler's lifetime.
func (s *Sampler) Stop() error {
	close(s.done)
	s.wg.Wait()
	s.sample("final")
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// activeSampler is the process-wide sampler used by the SampleNow hook.
// Instrumented code calls obs.SampleNow at progress boundaries; with no
// sampler installed the call is one atomic load — zero allocations, no
// locks (BenchmarkSamplerDisabled pins this down).
var activeSampler atomic.Pointer[Sampler]

// SetSampler installs (or, with nil, removes) the process-wide sampler.
func SetSampler(s *Sampler) {
	if s == nil {
		activeSampler.Store(nil)
		return
	}
	activeSampler.Store(s)
}

// SamplerActive reports whether a process-wide sampler is installed.
func SamplerActive() bool { return activeSampler.Load() != nil }

// SampleNow writes a labeled row on the process-wide sampler, if one is
// installed. Call it at natural progress boundaries (end of a question
// round, end of an experiment repetition); the disabled path is free.
func SampleNow(label string) {
	if s := activeSampler.Load(); s != nil {
		s.sample(label)
	}
}
