package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"kbrepair/internal/stats"
)

// stripes is the number of independent cells a counter spreads its updates
// over. Eight cells comfortably cover the core counts this code will meet;
// the per-counter cost is a few cache lines.
const stripes = 8

// cell is a cache-line-padded atomic so that concurrent writers on
// different stripes never false-share.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// stripeHint picks a stripe for the calling goroutine. Goroutine stacks are
// disjoint, so the address of a local variable is a cheap per-goroutine
// value; shifting drops alignment bits. This needs no runtime support, no
// locks and no allocation — the compiler keeps the local on the stack
// because the pointer is converted to uintptr in the same expression.
func stripeHint() uint {
	var b byte
	return uint(uintptr(unsafe.Pointer(&b))>>6) % stripes
}

// Counter is a monotone event count. Updates are striped atomic adds:
// single-writer cost is one uncontended atomic, and parallel writers (the
// future parallel chase) spread over stripes instead of bouncing one cache
// line.
type Counter struct {
	name  string
	cells [stripes]cell
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.cells[stripeHint()].v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Reset zeroes the counter. Registry.Reset uses it; so do the labeled
// families of internal/obs/attr, whose cells are unregistered Counters.
func (c *Counter) Reset() {
	for i := range c.cells {
		c.cells[i].v.Store(0)
	}
}

// Gauge is a last-value instrument (a level, not a count).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// LatencyBuckets are the default histogram bounds for operation latencies,
// in seconds: decade steps from 100ns to 10s. The overflow bucket catches
// anything slower.
var LatencyBuckets = []float64{
	1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
}

// Histogram is a fixed-bucket histogram with atomic cells. Bounds are
// upper bucket edges; an observation lands in the first bucket whose bound
// is >= the value, or in the overflow bucket past the last bound. Exact
// sum, min and max are tracked so snapshots reconcile with
// stats.Summarize on the raw samples (see stats.FromHistogram).
type Histogram struct {
	name   string
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	count  atomic.Int64
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
}

// atomicFloat is a float64 updated by CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (f *atomicFloat) min(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.min(v)
	h.max.max(v)
}

// Since observes the elapsed time of a Timer in seconds; inert timers (from
// a disabled StartTimer) are ignored.
func (h *Histogram) Since(t Timer) {
	if t.t.IsZero() {
		return
	}
	h.Observe(time.Since(t.t).Seconds())
}

// ObserveDuration records a duration sample in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Reset zeroes the histogram; handles stay valid.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.store(0)
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
}

// Snapshot captures a consistent-enough view (individual fields are atomic;
// cross-field skew of in-flight observations is acceptable for reporting).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Sum = h.sum.load()
		s.Min = h.min.load()
		s.Max = h.max.load()
	}
	return s
}

// HistogramSnapshot is the serializable state of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Bounds are the upper bucket edges; Counts has one extra overflow
	// entry for observations beyond the last bound.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Summary bridges the histogram to the paper's boxplot statistics: an
// approximate stats.Summary whose quantiles are interpolated from the
// buckets (see stats.FromHistogram for the accuracy contract).
func (s HistogramSnapshot) Summary() stats.Summary {
	return stats.FromHistogram(s.Bounds, s.Counts, s.Sum, s.Min, s.Max)
}

// Snapshot is a point-in-time capture of a registry, JSON-serializable as
// the -metrics output format.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a named set of instruments. Registration takes a lock;
// instrument updates never do — callers hold on to the returned handles.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter registers a counter under name, or returns the existing one.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge registers a gauge under name, or returns the existing one.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// NewUnregisteredHistogram returns a standalone histogram attached to no
// registry (nil bounds mean LatencyBuckets) — the building block for the
// labeled families of internal/obs/attr, which manage their own key space
// instead of the registry's flat namespace.
func NewUnregisteredHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d", i))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Histogram registers a histogram under name with the given upper bucket
// bounds (must be strictly increasing; nil means LatencyBuckets), or
// returns the existing one (bounds of a re-registration are ignored).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := NewUnregisteredHistogram(bounds)
	h.name = name
	r.histograms[name] = h
	return h
}

// Snapshot captures the current values of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Reset zeroes every instrument (for tests and between benchmark runs);
// handles stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// Names returns all registered instrument names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.histograms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteJSON writes the snapshot as indented JSON (the -metrics file
// format). Map keys are emitted sorted, so output is deterministic for a
// given state.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
