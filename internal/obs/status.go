package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// Well-known gauge names for live run status. The instrumented packages
// (internal/inquiry, internal/chase) register gauges under these names;
// the /statusz handler and the time-series sampler read them back, so the
// names are the contract between the two layers.
const (
	// StatusPhase is the inquiry run phase: 0 idle, 1 resolving naive
	// conflicts, 2 resolving chase-discovered conflicts, 3 done.
	StatusPhase = "inquiry.phase"
	// StatusConflictsRemaining is the size of the conflict set the current
	// inquiry phase is working through.
	StatusConflictsRemaining = "inquiry.conflicts_remaining"
	// StatusQuestionsAsked is the number of questions asked so far in the
	// current inquiry run.
	StatusQuestionsAsked = "inquiry.questions_asked"
	// StatusChaseRound is the round the most recent chase is on.
	StatusChaseRound = "chase.round"
)

// processStart anchors the uptime reported by /statusz.
var processStart = time.Now()

// Status is the /statusz document: the run-progress gauges promoted to
// named fields (zero when the gauge is not registered), plus every gauge
// for completeness.
type Status struct {
	UptimeSeconds      float64          `json:"uptime_seconds"`
	Phase              int64            `json:"phase"`
	ConflictsRemaining int64            `json:"conflicts_remaining"`
	QuestionsAsked     int64            `json:"questions_asked"`
	ChaseRound         int64            `json:"chase_round"`
	Gauges             map[string]int64 `json:"gauges"`
}

// ReadStatus assembles the live status of a registry.
func ReadStatus(r *Registry) Status {
	snap := r.Snapshot()
	return Status{
		UptimeSeconds:      time.Since(processStart).Seconds(),
		Phase:              snap.Gauges[StatusPhase],
		ConflictsRemaining: snap.Gauges[StatusConflictsRemaining],
		QuestionsAsked:     snap.Gauges[StatusQuestionsAsked],
		ChaseRound:         snap.Gauges[StatusChaseRound],
		Gauges:             snap.Gauges,
	}
}

// MetricsHandler serves the default registry in the Prometheus text
// exposition format (the /metrics endpoint of the debug server).
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Render errors past the first byte cannot be reported over HTTP;
		// the client sees a truncated (and thus unparseable) body.
		_ = WriteFullPrometheus(w, Default().Snapshot())
	})
}

// StatuszHandler serves the default registry's live Status as JSON (the
// /statusz endpoint of the debug server).
func StatuszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ReadStatus(Default()))
	})
}
