package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func decodeRows(t *testing.T, buf *bytes.Buffer) []SampleRow {
	t.Helper()
	var rows []SampleRow
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var r SampleRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL row %q: %v", sc.Text(), err)
		}
		rows = append(rows, r)
	}
	return rows
}

func TestSamplerMarksAndFinalRow(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("s.count")
	h := r.Histogram("s.lat", []float64{1})
	var buf bytes.Buffer
	s := StartSampler(r, &buf, 0) // no ticker: marks only

	c.Add(2)
	h.Observe(0.5)
	s.SampleNow("question")
	c.Add(3)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}

	rows := decodeRows(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (start, question, final): %+v", len(rows), rows)
	}
	if rows[0].Label != "start" || rows[1].Label != "question" || rows[2].Label != "final" {
		t.Errorf("labels = %q %q %q", rows[0].Label, rows[1].Label, rows[2].Label)
	}
	if rows[1].Counters["s.count"] != 2 || rows[2].Counters["s.count"] != 5 {
		t.Errorf("counter series = %d, %d; want 2, 5",
			rows[1].Counters["s.count"], rows[2].Counters["s.count"])
	}
	if hs := rows[1].Histograms["s.lat"]; hs.Count != 1 || hs.Sum != 0.5 {
		t.Errorf("histogram digest = %+v, want count 1 sum 0.5", hs)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TMS < rows[i-1].TMS {
			t.Errorf("t_ms not monotone: %+v", rows)
		}
	}
}

func TestSamplerPeriodicTicks(t *testing.T) {
	r := NewRegistry()
	r.Counter("tick.count").Inc()
	var buf bytes.Buffer
	s := StartSampler(r, &buf, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	rows := decodeRows(t, &buf)
	ticks := 0
	for _, row := range rows {
		if row.Label == "tick" {
			ticks++
		}
	}
	if ticks == 0 {
		t.Fatalf("no periodic ticks in %d rows", len(rows))
	}
}

// failAfterWriter errors after the first n writes — the sampler must
// retain the error and stop emitting rather than spinning on a broken file.
type failAfterWriter struct {
	mu sync.Mutex
	n  int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestSamplerRetainsWriteError(t *testing.T) {
	r := NewRegistry()
	s := StartSampler(r, &failAfterWriter{n: 1}, 0)
	s.SampleNow("x") // this write fails
	if err := s.Stop(); err == nil {
		t.Fatal("Stop() = nil, want retained write error")
	}
}

// TestSetSamplerGlobalHook exercises the process-wide SampleNow path.
func TestSetSamplerGlobalHook(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	s := StartSampler(r, &buf, 0)
	SetSampler(s)
	defer SetSampler(nil)
	if !SamplerActive() {
		t.Fatal("SamplerActive() = false after SetSampler")
	}
	SampleNow("mark")
	SetSampler(nil)
	SampleNow("dropped") // no sampler: must be a no-op
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	rows := decodeRows(t, &buf)
	for _, row := range rows {
		if row.Label == "dropped" {
			t.Error("SampleNow wrote a row after SetSampler(nil)")
		}
	}
	found := false
	for _, row := range rows {
		found = found || row.Label == "mark"
	}
	if !found {
		t.Errorf("no 'mark' row in %+v", rows)
	}
}

// TestSampleNowDisabledAllocationFree is the zero-cost contract of the
// disabled path: hot code may call SampleNow unconditionally.
func TestSampleNowDisabledAllocationFree(t *testing.T) {
	SetSampler(nil)
	allocs := testing.AllocsPerRun(1000, func() {
		SampleNow("question")
	})
	if allocs != 0 {
		t.Fatalf("disabled SampleNow allocates: %.1f allocs/op", allocs)
	}
}

// BenchmarkSamplerDisabled measures the sampler-off path (must report
// 0 allocs/op — the guard the acceptance criteria ask for).
func BenchmarkSamplerDisabled(b *testing.B) {
	SetSampler(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SampleNow("question")
	}
}
