package parser

import (
	"strings"

	"kbrepair/internal/logic"
)

// Serialize renders a document back to the text format such that Parse
// recovers it exactly. Rule constants that would read back as variables
// (uppercase-initial) are quoted; identifiers with characters outside the
// identifier alphabet are quoted everywhere.
func Serialize(doc *Document) string {
	var sb strings.Builder
	sb.WriteString("# kbrepair knowledge base\n")
	if len(doc.Facts) > 0 {
		sb.WriteString("\n# facts\n")
		for _, a := range doc.Facts {
			writeAtom(&sb, a, factMode)
			sb.WriteString(".\n")
		}
	}
	if len(doc.TGDs) > 0 {
		sb.WriteString("\n# tuple-generating dependencies\n")
		for _, t := range doc.TGDs {
			sb.WriteString("[tgd] ")
			writeConjunction(&sb, t.Body, ruleMode)
			sb.WriteString(" -> ")
			writeConjunction(&sb, t.Head, ruleMode)
			sb.WriteString(".\n")
		}
	}
	if len(doc.CDDs) > 0 {
		sb.WriteString("\n# contradiction-detecting dependencies\n")
		for _, c := range doc.CDDs {
			sb.WriteString("[cdd] ")
			writeConjunction(&sb, c.Body, ruleMode)
			sb.WriteString(" -> !.\n")
		}
	}
	return sb.String()
}

func writeConjunction(sb *strings.Builder, atoms []logic.Atom, m mode) {
	for i, a := range atoms {
		if i > 0 {
			sb.WriteString(", ")
		}
		writeAtom(sb, a, m)
	}
}

func writeAtom(sb *strings.Builder, a logic.Atom, m mode) {
	sb.WriteString(quoteIfNeeded(a.Pred, false))
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		writeTerm(sb, t, m)
	}
	sb.WriteByte(')')
}

func writeTerm(sb *strings.Builder, t logic.Term, m mode) {
	switch t.Kind {
	case logic.Null:
		sb.WriteString("_:")
		sb.WriteString(t.Name)
	case logic.Var:
		sb.WriteString(t.Name)
	default: // constant
		// In rules, an uppercase-initial bare constant would re-parse as a
		// variable; quote it.
		forceQuote := m == ruleMode && startsUpper(t.Name)
		sb.WriteString(quoteIfNeeded(t.Name, forceQuote))
	}
}

func quoteIfNeeded(s string, force bool) string {
	need := force || s == ""
	if !need {
		for i, r := range s {
			ok := isIdentPartRune(r)
			if i == 0 && !isIdentStartRune(r) {
				ok = false
			}
			if !ok {
				need = true
				break
			}
		}
	}
	if !need {
		return s
	}
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
