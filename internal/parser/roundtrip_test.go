package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// randomDocument builds arbitrary well-formed documents: facts over a
// random vocabulary (including quoted-worthy constants and nulls) plus
// valid TGDs and CDDs.
func randomDocument(r *rand.Rand) *Document {
	doc := &Document{}
	constPool := []string{
		"a", "b", "Aspirin", "John", "12/10/2015", "with space",
		`with"quote`, "UPPER", "x_y-z", "ünïcode",
	}
	randConst := func() logic.Term { return logic.C(constPool[r.Intn(len(constPool))]) }
	preds := []string{"p", "q", "edge", "hasPart"}
	arity := map[string]int{"p": 1, "q": 2, "edge": 2, "hasPart": 3}

	// Facts.
	for i := 0; i < 1+r.Intn(8); i++ {
		pred := preds[r.Intn(len(preds))]
		args := make([]logic.Term, arity[pred])
		for j := range args {
			if r.Intn(5) == 0 {
				args[j] = logic.N("n" + string(rune('0'+r.Intn(10))))
			} else {
				args[j] = randConst()
			}
		}
		doc.Facts = append(doc.Facts, logic.NewAtom(pred, args...))
	}

	// TGDs: q(X, Y) -> edge(Y, Z)-style rules with random constants mixed
	// in (constants may be uppercase, exercising serializer quoting).
	for i := 0; i < r.Intn(3); i++ {
		body := []logic.Atom{logic.NewAtom("q", logic.V("X"), logic.V("Y"))}
		head := []logic.Atom{logic.NewAtom("edge", logic.V("Y"), logic.V("Z"))}
		if r.Intn(2) == 0 {
			body = append(body, logic.NewAtom("p", logic.V("X")))
		}
		if r.Intn(3) == 0 {
			head[0].Args[1] = randConst()
		}
		tgd, err := logic.NewTGD(body, head)
		if err != nil {
			continue
		}
		doc.TGDs = append(doc.TGDs, tgd)
	}

	// CDDs with join variables and occasional constants.
	for i := 0; i < r.Intn(3); i++ {
		body := []logic.Atom{
			logic.NewAtom("q", logic.V("X"), logic.V("Y")),
			logic.NewAtom("edge", logic.V("Y"), logic.V("W")),
		}
		if r.Intn(3) == 0 {
			body[1].Args[1] = randConst()
		}
		cdd, err := logic.NewCDD(body)
		if err != nil {
			continue
		}
		doc.CDDs = append(doc.CDDs, cdd)
	}
	return doc
}

// TestSerializeParseRoundTripProperty: Parse(Serialize(doc)) == doc for
// arbitrary documents.
func TestSerializeParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDocument(r)
		text := Serialize(doc)
		doc2, err := Parse(text)
		if err != nil {
			t.Logf("re-parse failed: %v\n%s", err, text)
			return false
		}
		if len(doc2.Facts) != len(doc.Facts) ||
			len(doc2.TGDs) != len(doc.TGDs) ||
			len(doc2.CDDs) != len(doc.CDDs) {
			return false
		}
		for i := range doc.Facts {
			if !doc.Facts[i].Equal(doc2.Facts[i]) {
				t.Logf("fact %d: %v vs %v", i, doc.Facts[i], doc2.Facts[i])
				return false
			}
		}
		for i := range doc.TGDs {
			if doc.TGDs[i].String() != doc2.TGDs[i].String() {
				return false
			}
		}
		for i := range doc.CDDs {
			if doc.CDDs[i].String() != doc2.CDDs[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics: arbitrary byte soup must produce an error or a
// document, never a panic.
func TestParserNeverPanics(t *testing.T) {
	pieces := []string{
		"p", "(", ")", ",", ".", "->", "!", "[tgd]", "[cdd]", "X", "abc",
		`"str"`, "_:n1", "=", "#c\n", " ", "⊥", `"\q"`, "[", "]", "-",
	}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < int(n); i++ {
			sb.WriteString(pieces[r.Intn(len(pieces))])
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("panic on %q: %v", sb.String(), p)
			}
		}()
		_, _ = Parse(sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestStoreRoundTrip: the Document.Store path preserves facts and the
// serializer renders them back identically.
func TestStoreRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDocument(r)
		st, err := doc.Store()
		if err != nil {
			return false
		}
		if st.Len() != len(doc.Facts) {
			return false
		}
		for i, a := range doc.Facts {
			if !st.FactRef(store.FactID(i)).Equal(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
