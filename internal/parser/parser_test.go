package parser

import (
	"strings"
	"testing"

	"kbrepair/internal/logic"
)

const fig1bText = `
# Figure 1(b) of the paper
prescribed(Aspirin, John).
hasAllergy(John, Aspirin).
hasAllergy(Mike, Penicillin).
hasPain(John, Migraine).
isPainKillerFor(Nsaids, Migraine).
incompatible(Aspirin, Nsaids).

[tgd] isPainKillerFor(X, Y), hasPain(Z, Y) -> prescribed(X, Z).
[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
[cdd] prescribed(X, Z), prescribed(Y, Z), incompatible(X, Y) -> !.
`

func TestParseFig1b(t *testing.T) {
	doc, err := Parse(fig1bText)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Facts) != 6 || len(doc.TGDs) != 1 || len(doc.CDDs) != 2 {
		t.Fatalf("parsed %d facts, %d tgds, %d cdds", len(doc.Facts), len(doc.TGDs), len(doc.CDDs))
	}
	// Facts keep uppercase identifiers as constants.
	if !doc.Facts[0].Equal(logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John"))) {
		t.Errorf("fact 0 = %v", doc.Facts[0])
	}
	// Rules turn uppercase identifiers into variables.
	tgd := doc.TGDs[0]
	if tgd.Body[0].Args[0] != logic.V("X") {
		t.Errorf("tgd body var = %v", tgd.Body[0].Args[0])
	}
	if len(doc.CDDs[1].Body) != 3 {
		t.Errorf("cdd 1 body = %v", doc.CDDs[1].Body)
	}
	s, err := doc.Store()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Errorf("store len = %d", s.Len())
	}
}

func TestParseNulls(t *testing.T) {
	doc, err := Parse(`hasAllergy(John, _:x1).`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Facts[0].Args[1] != logic.N("x1") {
		t.Errorf("null arg = %v", doc.Facts[0].Args[1])
	}
	// Nulls are rejected inside rules.
	if _, err := Parse(`[cdd] p(_:x1) -> !.`); err == nil {
		t.Error("null in rule accepted")
	}
}

func TestParseNullReservation(t *testing.T) {
	doc, err := Parse(`p(_:n7). q(_:other).`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := doc.Store()
	if err != nil {
		t.Fatal(err)
	}
	// Fresh nulls must not collide with the parsed _:n7.
	n := s.FreshNull()
	if n == logic.N("n7") {
		t.Error("fresh null collided with parsed null")
	}
}

// TestParseNullReservationOverflow: a parsed numeric null label beyond
// MaxInt used to wrap the reservation parse. Such labels are unreachable
// for FreshNull, so they must be ignored — without disturbing reservation
// of the sane labels next to them.
func TestParseNullReservationOverflow(t *testing.T) {
	doc, err := Parse(`p(_:n9999999999999999999999). q(_:n3).`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := doc.Store()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NullSeq(); got != 3 {
		t.Errorf("NullSeq = %d, want 3 (overflowing label ignored, n3 reserved)", got)
	}
	if n := s.FreshNull(); n != logic.N("n4") {
		t.Errorf("FreshNull = %v, want n4", n)
	}
}

func TestParseQuotedConstants(t *testing.T) {
	doc, err := Parse(`isDeferredTo(Mike, "12/10/2015").
[cdd] isUrgent(X, Y, Z), isDeferredTo(X, W) -> !.
[cdd] p(X, "John") -> !.`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Facts[0].Args[1] != logic.C("12/10/2015") {
		t.Errorf("quoted constant = %v", doc.Facts[0].Args[1])
	}
	// Quoted uppercase string in a rule stays a constant.
	if doc.CDDs[1].Body[0].Args[1] != logic.C("John") {
		t.Errorf("rule constant = %v", doc.CDDs[1].Body[0].Args[1])
	}
}

func TestParseEqualities(t *testing.T) {
	doc, err := Parse(`[cdd] p(X, Y), q(Z), X = Z -> !.`)
	if err != nil {
		t.Fatal(err)
	}
	body := doc.CDDs[0].Body
	// X and Z collapse into one variable.
	if body[0].Args[0] != body[1].Args[0] {
		t.Errorf("equality not normalized: %v vs %v", body[0].Args[0], body[1].Args[0])
	}
	// Variable = constant.
	doc, err = Parse(`[cdd] p(X, X), X = a -> !.`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.CDDs[0].Body[0].Args[0] != logic.C("a") {
		t.Errorf("var=const not substituted: %v", doc.CDDs[0].Body[0])
	}
	// Distinct constants: unsatisfiable.
	if _, err := Parse(`[cdd] p(X), a = b -> !.`); err == nil {
		t.Error("unsatisfiable equality accepted")
	}
	// Chained equalities.
	doc, err = Parse(`[cdd] p(X, Y, Z), X = Y, Y = Z -> !.`)
	if err != nil {
		t.Fatal(err)
	}
	a := doc.CDDs[0].Body[0]
	if a.Args[0] != a.Args[1] || a.Args[1] != a.Args[2] {
		t.Errorf("chained equalities: %v", a)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`p(a)`,                     // missing dot
		`p(X).`,                    // variable in fact? no — X is constant in facts; make a real error:
		`[tgd] p(X) ->`,            // missing head
		`[cdd] p(X) -> q(X).`,      // CDD head must be !
		`[xyz] p(X) -> !.`,         // unknown tag
		`p(a,).`,                   // trailing comma
		`"unterminated`,            // bad string
		`[tgd] P(X) -> q(X).`,      // uppercase predicate in rule
		`[cdd] p(X), q(Y) -> !.`,   // cartesian CDD (logic.Validate)
		`[tgd] p(X) -> q(X), Y=X.`, // equality in TGD head
		`p(a) q(b).`,               // missing separator
		`[cdd] p(X) -> ! extra.`,   // garbage after head
	}
	for _, src := range cases {
		if src == `p(X).` {
			continue // facts treat X as a constant; covered elsewhere
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted invalid input %q", src)
		}
	}
}

func TestParseBottomUnicodeHead(t *testing.T) {
	doc, err := Parse(`[cdd] p(X, X) -> ⊥.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.CDDs) != 1 {
		t.Error("unicode bottom not parsed")
	}
}

func TestParseComments(t *testing.T) {
	doc, err := Parse(`
# hash comment
% percent comment
p(a). # trailing comment
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Facts) != 1 {
		t.Errorf("facts = %d", len(doc.Facts))
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	doc, err := Parse(fig1bText)
	if err != nil {
		t.Fatal(err)
	}
	text := Serialize(doc)
	doc2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if len(doc2.Facts) != len(doc.Facts) || len(doc2.TGDs) != len(doc.TGDs) || len(doc2.CDDs) != len(doc.CDDs) {
		t.Fatal("round trip changed counts")
	}
	for i := range doc.Facts {
		if !doc.Facts[i].Equal(doc2.Facts[i]) {
			t.Errorf("fact %d: %v vs %v", i, doc.Facts[i], doc2.Facts[i])
		}
	}
	for i := range doc.TGDs {
		if doc.TGDs[i].String() != doc2.TGDs[i].String() {
			t.Errorf("tgd %d: %v vs %v", i, doc.TGDs[i], doc2.TGDs[i])
		}
	}
	for i := range doc.CDDs {
		if doc.CDDs[i].String() != doc2.CDDs[i].String() {
			t.Errorf("cdd %d: %v vs %v", i, doc.CDDs[i], doc2.CDDs[i])
		}
	}
}

func TestSerializeQuotesRuleConstants(t *testing.T) {
	// A rule constant starting uppercase must be quoted so it round-trips
	// as a constant, not a variable.
	doc := &Document{
		CDDs: []*logic.CDD{logic.MustCDD([]logic.Atom{
			logic.NewAtom("p", logic.V("X"), logic.C("John")),
			logic.NewAtom("q", logic.V("X")),
		})},
	}
	text := Serialize(doc)
	if !strings.Contains(text, `"John"`) {
		t.Errorf("rule constant not quoted:\n%s", text)
	}
	doc2, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if doc2.CDDs[0].Body[0].Args[1] != logic.C("John") {
		t.Errorf("round trip turned constant into %v", doc2.CDDs[0].Body[0].Args[1])
	}
}

func TestSerializeRoundTripWithNullsAndQuotes(t *testing.T) {
	doc := &Document{
		Facts: []logic.Atom{
			logic.NewAtom("p", logic.N("n3"), logic.C("weird value!")),
			logic.NewAtom("q", logic.C(`with"quote`)),
		},
	}
	doc2, err := Parse(Serialize(doc))
	if err != nil {
		t.Fatal(err)
	}
	for i := range doc.Facts {
		if !doc.Facts[i].Equal(doc2.Facts[i]) {
			t.Errorf("fact %d: %v vs %v", i, doc.Facts[i], doc2.Facts[i])
		}
	}
}

func TestParseZeroArity(t *testing.T) {
	doc, err := Parse(`flag().`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Facts[0].Arity() != 0 {
		t.Errorf("arity = %d", doc.Facts[0].Arity())
	}
}
