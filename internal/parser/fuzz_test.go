package parser

import "testing"

// FuzzParse exercises the parser with arbitrary inputs; run with
// `go test -fuzz=FuzzParse ./internal/parser` for continuous fuzzing. The
// seed corpus doubles as a regression test in normal `go test` runs: the
// parser must never panic, and anything it accepts must serialize and
// re-parse to the same document.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"p(a).",
		"p(a, b). q(b).",
		"hasAllergy(John, _:x1).",
		`p("quoted \"string\"").`,
		"[tgd] p(X) -> q(X, Z).",
		"[cdd] p(X, Y), q(Y) -> !.",
		"[cdd] p(X, Y), q(Z), X = Z -> !.",
		"[cdd] p(X, X) -> ⊥.",
		"# comment\np(a). % another",
		"p(ünïcode).",
		"[tgd] p(X) -> q(X), r(X).",
		"p(a", "p(a,).", "[xyz] p -> !.", "\"unterminated",
		"_:", "p(_:).", "[tgd] -> q(X).", "p(a)..",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := Parse(src)
		if err != nil || doc == nil {
			return
		}
		// Accepted input must round-trip through the serializer.
		text := Serialize(doc)
		doc2, err := Parse(text)
		if err != nil {
			t.Fatalf("serialized form unparseable: %v\ninput: %q\nserialized:\n%s", err, src, text)
		}
		if len(doc2.Facts) != len(doc.Facts) || len(doc2.TGDs) != len(doc.TGDs) || len(doc2.CDDs) != len(doc.CDDs) {
			t.Fatalf("round trip changed counts for %q", src)
		}
	})
}
