// Package parser implements the kbrepair text format for knowledge bases:
//
//	# facts are ground atoms terminated by '.'
//	prescribed(Aspirin, John).
//	hasAllergy(John, _:x1).          # labeled null
//
//	# rules carry a [tgd] or [cdd] tag; in rule bodies/heads, identifiers
//	# starting with an uppercase letter are variables (Datalog convention),
//	# everything else — including "Quoted Strings" — is a constant.
//	[tgd] isPainKillerFor(X, Y), hasPain(Z, Y) -> prescribed(X, Z).
//	[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !.
//
//	# CDD bodies may use equality atoms, normalized away at parse time:
//	[cdd] p(X, Y), q(Z), X = Z -> !.
//
// Comments run from '#' or '%' to end of line. The serializer quotes rule
// constants that would otherwise read back as variables, so Parse/Serialize
// round-trips.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted constant
	tokNull   // _:label
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokArrow  // ->
	tokBang   // ! or ⊥
	tokEquals // =
	tokTag    // [tgd] or [cdd], Text holds "tgd"/"cdd"
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "quoted string"
	case tokNull:
		return "labeled null"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokArrow:
		return "'->'"
	case tokBang:
		return "'!'"
	case tokEquals:
		return "'='"
	case tokTag:
		return "rule tag"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStartRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPartRune(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// peekRune decodes the rune at the current position.
func (l *lexer) peekRune() (rune, int) {
	if l.pos >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.pos:])
}

// advanceRune consumes one full rune.
func (l *lexer) advanceRune() {
	_, size := l.peekRune()
	for i := 0; i < size; i++ {
		l.advance()
	}
}

// scanIdent consumes an identifier starting at the current position.
func (l *lexer) scanIdent() string {
	start := l.pos
	for l.pos < len(l.src) {
		r, _ := l.peekRune()
		if !isIdentPartRune(r) {
			break
		}
		l.advanceRune()
	}
	return l.src[start:l.pos]
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#' || c == '%':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

scan:
	line, col := l.line, l.col
	c := l.peekByte()
	switch {
	case c == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case c == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case c == ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case c == '.':
		l.advance()
		return token{tokDot, ".", line, col}, nil
	case c == '=':
		l.advance()
		return token{tokEquals, "=", line, col}, nil
	case c == '!':
		l.advance()
		return token{tokBang, "!", line, col}, nil
	case strings.HasPrefix(l.src[l.pos:], "⊥"):
		for i := 0; i < len("⊥"); i++ {
			l.advance()
		}
		return token{tokBang, "⊥", line, col}, nil
	case c == '-':
		l.advance()
		if l.peekByte() != '>' {
			return token{}, l.errorf(line, col, "expected '->' after '-'")
		}
		l.advance()
		return token{tokArrow, "->", line, col}, nil
	case c == '[':
		l.advance()
		start := l.pos
		for l.pos < len(l.src) && l.peekByte() != ']' {
			l.advance()
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf(line, col, "unterminated rule tag")
		}
		tag := strings.ToLower(strings.TrimSpace(l.src[start:l.pos]))
		l.advance() // ']'
		if tag != "tgd" && tag != "cdd" {
			return token{}, l.errorf(line, col, "unknown rule tag [%s] (want [tgd] or [cdd])", tag)
		}
		return token{tokTag, tag, line, col}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(line, col, "unterminated string")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return token{}, l.errorf(line, col, "unterminated escape")
				}
				esc := l.advance()
				switch esc {
				case '"', '\\':
					sb.WriteByte(esc)
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				default:
					return token{}, l.errorf(line, col, "unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return token{tokString, sb.String(), line, col}, nil
	case c == '_' && strings.HasPrefix(l.src[l.pos:], "_:"):
		l.advance() // _
		l.advance() // :
		label := l.scanIdent()
		if label == "" {
			return token{}, l.errorf(line, col, "empty null label after '_:'")
		}
		return token{tokNull, label, line, col}, nil
	default:
		if r, _ := l.peekRune(); isIdentStartRune(r) {
			return token{tokIdent, l.scanIdent(), line, col}, nil
		}
		r, _ := l.peekRune()
		return token{}, l.errorf(line, col, "unexpected character %q", r)
	}
}
