package parser

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// Document is the parsed content of a knowledge-base file.
type Document struct {
	Facts []logic.Atom
	TGDs  []*logic.TGD
	CDDs  []*logic.CDD
}

// Store builds an indexed fact store from the document's facts, reserving
// null labels so engine-allocated fresh nulls cannot collide with the
// parsed ones.
func (d *Document) Store() (*store.Store, error) {
	s, err := store.FromAtoms(d.Facts)
	if err != nil {
		return nil, err
	}
	maxLabel := 0
	for _, a := range d.Facts {
		for _, t := range a.Args {
			if t.IsNull() {
				// Overflow-guarded: a label too large for int can never be
				// minted by FreshNull, so it needs no reservation (and a
				// wrapped parse must not corrupt the counter).
				if n, ok := store.ParseNumericNullLabel(t.Name); ok && n > maxLabel {
					maxLabel = n
				}
			}
		}
	}
	s.ReserveNulls(maxLabel)
	return s, nil
}

// Parse reads a whole knowledge base from the text format.
func Parse(src string) (*Document, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	doc := &Document{}
	for p.tok.kind != tokEOF {
		switch p.tok.kind {
		case tokTag:
			tag := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.parseRule(tag, doc); err != nil {
				return nil, err
			}
		case tokIdent, tokString:
			atom, err := p.parseAtom(factMode)
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokDot); err != nil {
				return nil, err
			}
			doc.Facts = append(doc.Facts, atom)
		default:
			return nil, p.errorf("expected fact or rule, found %s", p.tok.kind)
		}
	}
	return doc, nil
}

// mode controls how bare identifiers are interpreted: in facts everything
// is a constant; in rules the Datalog uppercase-initial convention makes
// variables.
type mode int

const (
	factMode mode = iota
	ruleMode
)

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokenKind) error {
	if p.tok.kind != kind {
		return p.errorf("expected %s, found %s %q", kind, p.tok.kind, p.tok.text)
	}
	return p.advance()
}

// parseTerm reads one term under the given mode.
func (p *parser) parseTerm(m mode) (logic.Term, error) {
	switch p.tok.kind {
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return logic.Term{}, err
		}
		if m == ruleMode && startsUpper(name) {
			return logic.V(name), nil
		}
		return logic.C(name), nil
	case tokString:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return logic.Term{}, err
		}
		return logic.C(name), nil
	case tokNull:
		if m == ruleMode {
			return logic.Term{}, p.errorf("labeled nulls are not allowed inside rules")
		}
		name := p.tok.text
		if err := p.advance(); err != nil {
			return logic.Term{}, err
		}
		return logic.N(name), nil
	default:
		return logic.Term{}, p.errorf("expected term, found %s %q", p.tok.kind, p.tok.text)
	}
}

func startsUpper(s string) bool {
	r, _ := utf8.DecodeRuneInString(s)
	return unicode.IsUpper(r)
}

// parseAtom reads pred(t1, ..., tn).
func (p *parser) parseAtom(m mode) (logic.Atom, error) {
	if p.tok.kind != tokIdent && p.tok.kind != tokString {
		return logic.Atom{}, p.errorf("expected predicate name, found %s %q", p.tok.kind, p.tok.text)
	}
	pred := p.tok.text
	if m == ruleMode && startsUpper(pred) {
		return logic.Atom{}, p.errorf("predicate %q must not start with an uppercase letter in rules", pred)
	}
	if err := p.advance(); err != nil {
		return logic.Atom{}, err
	}
	if err := p.expect(tokLParen); err != nil {
		return logic.Atom{}, err
	}
	var args []logic.Term
	if p.tok.kind != tokRParen {
		for {
			t, err := p.parseTerm(m)
			if err != nil {
				return logic.Atom{}, err
			}
			args = append(args, t)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return logic.Atom{}, err
			}
		}
	}
	if err := p.expect(tokRParen); err != nil {
		return logic.Atom{}, err
	}
	if m == factMode {
		for _, t := range args {
			if t.IsVar() {
				return logic.Atom{}, p.errorf("fact argument %s is a variable", t)
			}
		}
	}
	return logic.NewAtom(pred, args...), nil
}

// equality is a parsed `X = Y` atom awaiting normalization.
type equality struct {
	left, right logic.Term
	line, col   int
}

// parseConjunction reads atoms (and, in CDD bodies, equalities) separated
// by commas until a terminator.
func (p *parser) parseConjunction(m mode, allowEq bool) ([]logic.Atom, []equality, error) {
	var atoms []logic.Atom
	var eqs []equality
	for {
		line, col := p.tok.line, p.tok.col
		// Lookahead: term '=' term is an equality; otherwise an atom.
		// Equality left sides can only be identifiers or strings.
		if allowEq && (p.tok.kind == tokIdent || p.tok.kind == tokString) {
			// Peek by cloning lexer state is messy; instead parse the
			// identifier and decide on the next token.
			name := p.tok.text
			kind := p.tok.kind
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
			if p.tok.kind == tokEquals {
				var left logic.Term
				if kind == tokString {
					left = logic.C(name)
				} else if m == ruleMode && startsUpper(name) {
					left = logic.V(name)
				} else {
					left = logic.C(name)
				}
				if err := p.advance(); err != nil {
					return nil, nil, err
				}
				right, err := p.parseTerm(m)
				if err != nil {
					return nil, nil, err
				}
				eqs = append(eqs, equality{left: left, right: right, line: line, col: col})
			} else {
				// It was a predicate name; continue parsing the atom body.
				atom, err := p.parseAtomAfterName(name, m)
				if err != nil {
					return nil, nil, err
				}
				atoms = append(atoms, atom)
			}
		} else {
			atom, err := p.parseAtom(m)
			if err != nil {
				return nil, nil, err
			}
			atoms = append(atoms, atom)
		}
		if p.tok.kind != tokComma {
			return atoms, eqs, nil
		}
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
	}
}

// parseAtomAfterName finishes an atom whose predicate name token was
// already consumed.
func (p *parser) parseAtomAfterName(pred string, m mode) (logic.Atom, error) {
	if m == ruleMode && startsUpper(pred) {
		return logic.Atom{}, p.errorf("predicate %q must not start with an uppercase letter in rules", pred)
	}
	if err := p.expect(tokLParen); err != nil {
		return logic.Atom{}, err
	}
	var args []logic.Term
	if p.tok.kind != tokRParen {
		for {
			t, err := p.parseTerm(m)
			if err != nil {
				return logic.Atom{}, err
			}
			args = append(args, t)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return logic.Atom{}, err
			}
		}
	}
	if err := p.expect(tokRParen); err != nil {
		return logic.Atom{}, err
	}
	return logic.NewAtom(pred, args...), nil
}

// parseRule reads the remainder of a [tgd]/[cdd] statement.
func (p *parser) parseRule(tag string, doc *Document) error {
	body, eqs, err := p.parseConjunction(ruleMode, tag == "cdd")
	if err != nil {
		return err
	}
	if err := p.expect(tokArrow); err != nil {
		return err
	}
	switch tag {
	case "cdd":
		if p.tok.kind != tokBang {
			return p.errorf("CDD head must be '!' or '⊥', found %s %q", p.tok.kind, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expect(tokDot); err != nil {
			return err
		}
		body, err = normalizeEqualities(body, eqs)
		if err != nil {
			return err
		}
		cdd, err := logic.NewCDD(body)
		if err != nil {
			return err
		}
		doc.CDDs = append(doc.CDDs, cdd)
	case "tgd":
		head, headEqs, err := p.parseConjunction(ruleMode, false)
		if err != nil {
			return err
		}
		if len(headEqs) > 0 {
			return fmt.Errorf("equalities are not allowed in TGD heads")
		}
		if err := p.expect(tokDot); err != nil {
			return err
		}
		tgd, err := logic.NewTGD(body, head)
		if err != nil {
			return err
		}
		doc.TGDs = append(doc.TGDs, tgd)
	}
	return nil
}

// normalizeEqualities rewrites X = Y equalities into repeated variables /
// substituted constants, per §2 ("the body B may have equalities").
func normalizeEqualities(body []logic.Atom, eqs []equality) ([]logic.Atom, error) {
	sub := logic.NewSubst()
	resolve := func(t logic.Term) logic.Term {
		for t.IsVar() {
			b, ok := sub[t]
			if !ok {
				break
			}
			t = b
		}
		return t
	}
	for _, eq := range eqs {
		l, r := resolve(eq.left), resolve(eq.right)
		switch {
		case l == r:
			// trivial, drop
		case l.IsVar():
			sub[l] = r
		case r.IsVar():
			sub[r] = l
		default:
			return nil, fmt.Errorf("%d:%d: equality %s = %s between distinct constants makes the CDD unsatisfiable",
				eq.line, eq.col, l, r)
		}
	}
	// Apply with full resolution (chains of variable bindings).
	out := make([]logic.Atom, len(body))
	for i, a := range body {
		args := make([]logic.Term, len(a.Args))
		for j, t := range a.Args {
			args[j] = resolve(t)
		}
		out[i] = logic.NewAtom(a.Pred, args...)
	}
	return out, nil
}
