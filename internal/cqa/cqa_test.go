package cqa

import (
	"testing"

	"kbrepair/internal/core"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

func consistentKB(t testing.TB) *core.KB {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("hasPain", logic.C("John"), logic.C("Migraine")),
		logic.NewAtom("isPainKillerFor", logic.C("Nsaids"), logic.C("Migraine")),
	})
	tgds := []*logic.TGD{logic.MustTGD(
		[]logic.Atom{
			logic.NewAtom("isPainKillerFor", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasPain", logic.V("Z"), logic.V("Y")),
		},
		[]logic.Atom{logic.NewAtom("prescribed", logic.V("X"), logic.V("Z"))},
	)}
	return core.MustKB(s, tgds, nil)
}

func TestQueryValidate(t *testing.T) {
	ok := Query{
		Body: []logic.Atom{logic.NewAtom("p", logic.V("X"))},
		Answ: []logic.Term{logic.V("X")},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad1 := Query{Body: ok.Body, Answ: []logic.Term{logic.C("a")}}
	if err := bad1.Validate(); err == nil {
		t.Error("constant answer term accepted")
	}
	bad2 := Query{Body: ok.Body, Answ: []logic.Term{logic.V("Y")}}
	if err := bad2.Validate(); err == nil {
		t.Error("unbound answer variable accepted")
	}
}

func TestCertainAnswers(t *testing.T) {
	kb := consistentKB(t)
	q := Query{
		Body: []logic.Atom{logic.NewAtom("prescribed", logic.V("D"), logic.C("John"))},
		Answ: []logic.Term{logic.V("D")},
	}
	ans, err := CertainAnswers(kb, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0][0] != logic.C("Nsaids") {
		t.Errorf("answers = %v", ans)
	}
}

func TestSampledAnswersOnInconsistentKB(t *testing.T) {
	// Figure 1(a): prescribed(Aspirin, John) conflicts with the allergy.
	// hasAllergy(Mike, Penicillin) is untouched by any repair, so the query
	// "who has an allergy?" must keep Mike in the cautious answers, while
	// John's allergy (or the prescription) may be rewritten.
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")),
	})
	cdd := logic.MustCDD([]logic.Atom{
		logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
		logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
	})
	kb := core.MustKB(s, nil, []*logic.CDD{cdd})

	q := Query{
		Body: []logic.Atom{logic.NewAtom("hasAllergy", logic.V("P"), logic.V("D"))},
		Answ: []logic.Term{logic.V("P")},
	}
	res, err := SampledAnswers(kb, q, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 8 {
		t.Errorf("samples = %d", res.Samples)
	}
	cautious := make(map[string]bool)
	for _, t := range res.Cautious {
		cautious[t[0].Name] = true
	}
	if !cautious["Mike"] {
		t.Errorf("Mike missing from cautious answers: %v", res.Cautious)
	}
	// Brave ⊇ cautious, and support of every cautious tuple equals samples.
	if len(res.Brave) < len(res.Cautious) {
		t.Error("brave smaller than cautious")
	}
	for _, tu := range res.Cautious {
		if res.Support[tu.Key()] != res.Samples {
			t.Errorf("cautious tuple %s support = %d", tu, res.Support[tu.Key()])
		}
	}
	// The input KB must be untouched.
	if ok, _ := kb.IsConsistent(); ok {
		t.Error("SampledAnswers mutated the input KB")
	}
}

func TestSampledAnswersErrors(t *testing.T) {
	kb := consistentKB(t)
	q := Query{
		Body: []logic.Atom{logic.NewAtom("prescribed", logic.V("D"), logic.C("John"))},
		Answ: []logic.Term{logic.V("D")},
	}
	if _, err := SampledAnswers(kb, q, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	bad := Query{Body: q.Body, Answ: []logic.Term{logic.V("Missing")}}
	if _, err := SampledAnswers(kb, bad, 2, 1); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestTupleKeyAndString(t *testing.T) {
	a := Tuple{logic.C("x"), logic.C("y")}
	b := Tuple{logic.C("x"), logic.N("y")}
	if a.Key() == b.Key() {
		t.Error("key ignores kind")
	}
	if a.String() != "(x, y)" {
		t.Errorf("String = %q", a.String())
	}
}
