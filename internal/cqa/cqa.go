// Package cqa implements query answering over inconsistent knowledge
// bases in the spirit of the update-based consistent query answering the
// paper builds on (Wijsen 2005, [28] in the paper): a tuple is a
// *consistent answer* when it is an answer in every u-repair.
//
// Enumerating all u-repairs is intractable, so this package offers
//
//   - exact certain answers on a (consistent) KB via the chase, and
//   - an empirical approximation of consistent/possible answers over
//     inconsistent KBs by sampling u-repairs: each sample runs one
//     simulated inquiry (whose soundness guarantees a genuine u-repair
//     state), answers the query on the repaired KB, and the results are
//     intersected (cautious) or united (brave).
//
// The sampled cautious set over-approximates the true consistent answers
// (it intersects a subset of all repairs); the brave set under-approximates
// the possible answers. Both converge as the sample count grows.
package cqa

import (
	"fmt"
	"sort"
	"strings"

	"kbrepair/internal/chase"
	"kbrepair/internal/core"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/logic"
)

// Query is a conjunctive query: a body with distinguished answer
// variables.
type Query struct {
	Body []logic.Atom
	Answ []logic.Term
}

// Validate checks that the answer variables occur in the body.
func (q Query) Validate() error {
	inBody := make(map[logic.Term]bool)
	for _, v := range logic.VarsOf(q.Body) {
		inBody[v] = true
	}
	for _, v := range q.Answ {
		if !v.IsVar() {
			return fmt.Errorf("cqa: answer term %s is not a variable", v)
		}
		if !inBody[v] {
			return fmt.Errorf("cqa: answer variable %s does not occur in the body", v)
		}
	}
	return nil
}

// Tuple is one answer tuple.
type Tuple []logic.Term

// Key returns a canonical string for set operations.
func (t Tuple) Key() string {
	parts := make([]string, len(t))
	for i, x := range t {
		parts[i] = string(rune('0'+x.Kind)) + x.Name
	}
	return strings.Join(parts, "\x00")
}

// String renders the tuple as "(a, b)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, x := range t {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// CertainAnswers computes Q(F, ΣT): the all-constant certain answers of
// the query over the KB's chase. On an inconsistent KB these are the
// standard (inconsistency-blind) answers.
func CertainAnswers(kb *core.KB, q Query) ([]Tuple, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	raw, err := chase.Answers(kb.Facts, kb.TGDs, q.Body, q.Answ, kb.ChaseOpts)
	if err != nil {
		return nil, err
	}
	out := make([]Tuple, len(raw))
	for i, r := range raw {
		out[i] = Tuple(r)
	}
	sortTuples(out)
	return out, nil
}

// Result is the outcome of repair-sampled query answering.
type Result struct {
	// Cautious holds the tuples answered in every sampled repair (the
	// consistent-answer approximation).
	Cautious []Tuple
	// Brave holds the tuples answered in at least one sampled repair.
	Brave []Tuple
	// Support maps each brave tuple key to the number of supporting
	// repairs.
	Support map[string]int
	// Samples is the number of repairs drawn.
	Samples int
}

// SampledAnswers draws `samples` u-repairs of the KB via simulated
// inquiries (strategy opti-mcd, one distinct user seed per sample) and
// aggregates the query answers across them. The input KB is not modified.
func SampledAnswers(kb *core.KB, q Query, samples int, seed int64) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if samples <= 0 {
		return nil, fmt.Errorf("cqa: samples must be positive")
	}
	res := &Result{Support: make(map[string]int), Samples: samples}
	byKey := make(map[string]Tuple)
	for s := 0; s < samples; s++ {
		clone := kb.Clone()
		e := inquiry.New(clone, inquiry.OptiMCD{}, inquiry.NewSimulatedUser(seed+int64(s)), seed+int64(s), inquiry.Options{})
		runRes, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("cqa: sample %d: %w", s, err)
		}
		if !runRes.Consistent {
			return nil, fmt.Errorf("cqa: sample %d did not reach consistency", s)
		}
		answers, err := chase.Answers(clone.Facts, clone.TGDs, q.Body, q.Answ, clone.ChaseOpts)
		if err != nil {
			return nil, err
		}
		for _, a := range answers {
			t := Tuple(a)
			k := t.Key()
			if _, ok := byKey[k]; !ok {
				byKey[k] = t
			}
			res.Support[k]++
		}
	}
	for k, t := range byKey {
		res.Brave = append(res.Brave, t)
		if res.Support[k] == samples {
			res.Cautious = append(res.Cautious, t)
		}
	}
	sortTuples(res.Brave)
	sortTuples(res.Cautious)
	return res, nil
}

func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
}
