package store

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"kbrepair/internal/logic"
)

func medStore(t testing.TB) *Store {
	t.Helper()
	return MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")),
	})
}

func TestAddAndLookup(t *testing.T) {
	s := medStore(t)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	a := s.Fact(0)
	if a.Pred != "prescribed" || a.Args[0] != logic.C("Aspirin") {
		t.Errorf("Fact(0) = %v", a)
	}
	if !s.Contains(logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin"))) {
		t.Error("Contains missed existing fact")
	}
	if s.Contains(logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Aspirin"))) {
		t.Error("Contains found absent fact")
	}
	if got := s.ByPredicate("hasAllergy"); len(got) != 2 {
		t.Errorf("ByPredicate = %v", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRejectsNonGround(t *testing.T) {
	s := New()
	if _, err := s.Add(logic.NewAtom("p", logic.V("X"))); err == nil {
		t.Error("non-ground atom accepted")
	}
	// Nulls are fine.
	if _, err := s.Add(logic.NewAtom("p", logic.N("n1"))); err != nil {
		t.Errorf("null-argument fact rejected: %v", err)
	}
}

func TestDuplicateFactsAllowed(t *testing.T) {
	s := New()
	a := logic.NewAtom("p", logic.C("a"))
	id1 := s.MustAdd(a)
	id2 := s.MustAdd(a)
	if id1 == id2 {
		t.Error("duplicate got same id")
	}
	if got := s.FindExact(a); len(got) != 2 {
		t.Errorf("FindExact = %v", got)
	}
}

func TestSetValueMaintainsIndexes(t *testing.T) {
	s := medStore(t)
	p := Position{Fact: 1, Arg: 1} // hasAllergy(John, Aspirin) @ 2nd arg
	prev, err := s.SetValue(p, logic.N("n1"))
	if err != nil {
		t.Fatal(err)
	}
	if prev != logic.C("Aspirin") {
		t.Errorf("prev = %v", prev)
	}
	if s.Value(p) != logic.N("n1") {
		t.Errorf("Value = %v", s.Value(p))
	}
	if s.Contains(logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin"))) {
		t.Error("old atom still visible")
	}
	if !s.Contains(logic.NewAtom("hasAllergy", logic.C("John"), logic.N("n1"))) {
		t.Error("new atom not visible")
	}
	if len(s.Candidates("hasAllergy", 1, logic.C("Aspirin"))) != 0 {
		t.Error("stale index entry")
	}
	if len(s.Candidates("hasAllergy", 1, logic.N("n1"))) != 1 {
		t.Error("new index entry missing")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Undo restores everything.
	if _, err := s.SetValue(p, prev); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin"))) {
		t.Error("undo failed")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSetValueNoopAndErrors(t *testing.T) {
	s := medStore(t)
	p := Position{Fact: 0, Arg: 0}
	prev, err := s.SetValue(p, logic.C("Aspirin"))
	if err != nil || prev != logic.C("Aspirin") {
		t.Errorf("noop SetValue: prev=%v err=%v", prev, err)
	}
	if _, err := s.SetValue(p, logic.V("X")); err == nil {
		t.Error("variable value accepted")
	}
	if _, err := s.SetValue(Position{Fact: 0, Arg: 9}, logic.C("z")); err == nil {
		t.Error("out-of-range arg accepted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestActiveDomain(t *testing.T) {
	s := medStore(t)
	ad := s.ActiveDomain("hasAllergy", 1)
	want := []logic.Term{logic.C("Aspirin"), logic.C("Penicillin")}
	if !reflect.DeepEqual(ad, want) {
		t.Errorf("ActiveDomain = %v, want %v", ad, want)
	}
	if s.ActiveDomainSize("hasAllergy", 0) != 2 {
		t.Errorf("ActiveDomainSize = %d", s.ActiveDomainSize("hasAllergy", 0))
	}
	if !s.InActiveDomain("prescribed", 1, logic.C("John")) {
		t.Error("InActiveDomain missed John")
	}
	if s.InActiveDomain("prescribed", 1, logic.C("Mike")) {
		t.Error("InActiveDomain found absent value")
	}
	// Counting: the same value twice must survive one removal.
	s2 := MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("p", logic.C("a")),
	})
	s2.MustSetValue(Position{Fact: 0, Arg: 0}, logic.C("b"))
	if !s2.InActiveDomain("p", 0, logic.C("a")) {
		t.Error("adom count dropped to zero too early")
	}
	s2.MustSetValue(Position{Fact: 1, Arg: 0}, logic.C("b"))
	if s2.InActiveDomain("p", 0, logic.C("a")) {
		t.Error("adom kept stale value")
	}
}

func TestPositionsAndValues(t *testing.T) {
	s := medStore(t)
	ps := s.Positions()
	if len(ps) != 6 {
		t.Fatalf("Positions len = %d, want 6", len(ps))
	}
	if s.NumPositions() != 6 {
		t.Errorf("NumPositions = %d", s.NumPositions())
	}
	if s.Value(Position{Fact: 2, Arg: 0}) != logic.C("Mike") {
		t.Error("Value wrong")
	}
	if s.Arity(0) != 2 {
		t.Error("Arity wrong")
	}
}

func TestFreshNullUnique(t *testing.T) {
	s := New()
	seen := make(map[logic.Term]bool)
	for i := 0; i < 1000; i++ {
		n := s.FreshNull()
		if !n.IsNull() {
			t.Fatal("FreshNull returned non-null")
		}
		if seen[n] {
			t.Fatalf("duplicate fresh null %v", n)
		}
		seen[n] = true
	}
}

func TestReserveNulls(t *testing.T) {
	s := New()
	s.ReserveNulls(10)
	if n := s.FreshNull(); n != logic.N("n11") {
		t.Errorf("FreshNull after reserve = %v", n)
	}
	s.ReserveNulls(5) // lower reserve must not rewind
	if n := s.FreshNull(); n != logic.N("n12") {
		t.Errorf("FreshNull after lower reserve = %v", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := medStore(t)
	c := s.Clone()
	if !s.Equal(c) || !s.EqualAsSet(c) {
		t.Fatal("clone not equal")
	}
	c.MustSetValue(Position{Fact: 0, Arg: 0}, logic.C("Nsaids"))
	if s.Equal(c) {
		t.Error("Equal missed difference")
	}
	if s.Value(Position{Fact: 0, Arg: 0}) != logic.C("Aspirin") {
		t.Error("clone mutation leaked into original")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Clones continue the null sequence.
	n1 := s.FreshNull()
	n2 := c.FreshNull()
	if n1 != n2 {
		// They may be equal labels across stores; the invariant is only
		// within-store uniqueness. Either outcome is fine; just assert
		// non-empty.
		if n1.Name == "" || n2.Name == "" {
			t.Error("empty null label")
		}
	}
}

func TestEqualAsSetIgnoresOrder(t *testing.T) {
	a := MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("q", logic.C("b")),
	})
	b := MustFromAtoms([]logic.Atom{
		logic.NewAtom("q", logic.C("b")),
		logic.NewAtom("p", logic.C("a")),
	})
	if a.Equal(b) {
		t.Error("Equal should be order sensitive")
	}
	if !a.EqualAsSet(b) {
		t.Error("EqualAsSet should be order insensitive")
	}
	c := MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("p", logic.C("a")),
	})
	d := MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("q", logic.C("b")),
	})
	if c.EqualAsSet(d) {
		t.Error("EqualAsSet ignored multiplicity")
	}
}

func TestPredicatesAndString(t *testing.T) {
	s := medStore(t)
	if got := s.Predicates(); !reflect.DeepEqual(got, []string{"hasAllergy", "prescribed"}) {
		t.Errorf("Predicates = %v", got)
	}
	str := s.String()
	if !strings.Contains(str, "prescribed(Aspirin, John).") {
		t.Errorf("String = %q", str)
	}
}

// Property: a random sequence of SetValue operations keeps all indexes
// consistent, and undoing them in reverse restores the original store.
func TestRandomMutationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		consts := []logic.Term{logic.C("a"), logic.C("b"), logic.C("c"), logic.C("d")}
		for i := 0; i < 12; i++ {
			n := 1 + r.Intn(3)
			args := make([]logic.Term, n)
			for j := range args {
				args[j] = consts[r.Intn(len(consts))]
			}
			s.MustAdd(logic.NewAtom([]string{"p", "q"}[r.Intn(2)], args...))
		}
		orig := s.Clone()
		type undo struct {
			p Position
			t logic.Term
		}
		var undos []undo
		for i := 0; i < 30; i++ {
			id := FactID(r.Intn(s.Len()))
			p := Position{Fact: id, Arg: r.Intn(s.Arity(id))}
			var v logic.Term
			if r.Intn(4) == 0 {
				v = s.FreshNull()
			} else {
				v = consts[r.Intn(len(consts))]
			}
			prev := s.MustSetValue(p, v)
			undos = append(undos, undo{p, prev})
			if err := s.CheckInvariants(); err != nil {
				t.Logf("invariant broken: %v", err)
				return false
			}
		}
		for i := len(undos) - 1; i >= 0; i-- {
			s.MustSetValue(undos[i].p, undos[i].t)
		}
		return s.Equal(orig) && s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	s := medStore(t)
	// FactRef returns the live atom.
	a := s.FactRef(0)
	if a.Pred != "prescribed" {
		t.Errorf("FactRef = %v", a)
	}
	if got := s.CandidatesByPred("hasAllergy"); len(got) != 2 {
		t.Errorf("CandidatesByPred = %v", got)
	}
	if !s.OccursAnywhere(logic.C("John")) || s.OccursAnywhere(logic.C("Nobody")) {
		t.Error("OccursAnywhere wrong")
	}
	// John appears twice: prescribed@2 and hasAllergy@1.
	if s.OccurrenceCount(logic.C("John")) != 2 {
		t.Errorf("OccurrenceCount(John) = %d", s.OccurrenceCount(logic.C("John")))
	}
	if got := s.IDs(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("IDs = %v", got)
	}
	atoms := s.Atoms()
	if len(atoms) != 3 || !atoms[0].Equal(s.FactRef(0)) {
		t.Errorf("Atoms = %v", atoms)
	}
	// Atoms copies: mutating the copy must not touch the store.
	atoms[0].Args[0] = logic.C("XXX")
	if s.FactRef(0).Args[0] == logic.C("XXX") {
		t.Error("Atoms shares storage")
	}
	if s.NullSeq() != 0 {
		t.Errorf("NullSeq = %d", s.NullSeq())
	}
	s.FreshNull()
	if s.NullSeq() != 1 {
		t.Errorf("NullSeq after FreshNull = %d", s.NullSeq())
	}
}

func TestAutoReserveNumericNullLabels(t *testing.T) {
	s := New()
	s.MustAdd(logic.NewAtom("p", logic.N("n42")))
	if n := s.FreshNull(); n == logic.N("n42") {
		t.Error("fresh null collided with inserted numeric label")
	}
	// Non-numeric labels do not advance the counter.
	s2 := New()
	s2.MustAdd(logic.NewAtom("p", logic.N("nope")))
	if s2.NullSeq() != 0 {
		t.Errorf("non-numeric label advanced counter to %d", s2.NullSeq())
	}
}

// TestAutoReserveOverflowGuard is the regression test for the adomAdd parse
// wrap: a numeric label larger than MaxInt used to overflow n*10+d, making
// the auto-reserve either no-op or corrupt the counter. Such labels are
// unreachable for FreshNull (which renders an int), so the correct behavior
// is to ignore them entirely — and to keep reserving sane labels inserted
// afterwards.
func TestAutoReserveOverflowGuard(t *testing.T) {
	s := New()
	huge := "n9999999999999999999999" // 22 digits, far beyond MaxInt
	s.MustAdd(logic.NewAtom("p", logic.N(huge)))
	if s.NullSeq() != 0 {
		t.Errorf("overflowing label moved counter to %d, want 0", s.NullSeq())
	}
	if n := s.FreshNull(); n != logic.N("n1") || n.Name == huge {
		t.Errorf("FreshNull after overflowing label = %v, want n1", n)
	}
	// Sane labels still reserve after an overflowing one was seen.
	s.MustAdd(logic.NewAtom("p", logic.N("n12")))
	if n := s.FreshNull(); n != logic.N("n13") {
		t.Errorf("FreshNull after n12 = %v, want n13", n)
	}
}

func TestParseNumericNullLabel(t *testing.T) {
	cases := []struct {
		label string
		n     int
		ok    bool
	}{
		{"n7", 7, true},
		{"n9223372036854775807", math.MaxInt64, true}, // exactly MaxInt on 64-bit
		{"n9223372036854775808", 0, false},            // MaxInt64+1 overflows
		{"n9999999999999999999", 0, false},
		{"n", 0, false},
		{"n12a", 0, false},
		{"x12", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		n, ok := ParseNumericNullLabel(c.label)
		if ok != c.ok || (ok && n != c.n) {
			t.Errorf("ParseNumericNullLabel(%q) = (%d, %v), want (%d, %v)", c.label, n, ok, c.n, c.ok)
		}
	}
}

// TestNullForCoord pins the coordinate-null contract: labels are a pure
// function of the firing coordinate, consume no allocation counter, and are
// deterministically escaped when the store already holds the label.
func TestNullForCoord(t *testing.T) {
	s := New()
	n := s.NullForCoord(2, 0, 17, 1)
	if n != logic.N("n2r0t17x1") {
		t.Fatalf("NullForCoord = %v, want n2r0t17x1", n)
	}
	if s.NullForCoord(2, 0, 17, 1) != n {
		t.Error("NullForCoord not idempotent for the same coordinate")
	}
	if s.NullSeq() != 0 {
		t.Errorf("NullForCoord consumed the FreshNull counter: %d", s.NullSeq())
	}
	// Coordinate labels never look numeric, so they do not advance the
	// FreshNull auto-reserve either.
	s.MustAdd(logic.NewAtom("p", n))
	if s.NullSeq() != 0 {
		t.Errorf("coordinate label advanced the numeric counter to %d", s.NullSeq())
	}
	// An occupied label escapes deterministically: c1, then c2.
	if esc := s.NullForCoord(2, 0, 17, 1); esc != logic.N("n2r0t17x1c1") {
		t.Errorf("escape = %v, want n2r0t17x1c1", esc)
	}
	s.MustAdd(logic.NewAtom("p", logic.N("n2r0t17x1c1")))
	if esc := s.NullForCoord(2, 0, 17, 1); esc != logic.N("n2r0t17x1c2") {
		t.Errorf("second escape = %v, want n2r0t17x1c2", esc)
	}
	// Distinct coordinates stay distinct.
	if s.NullForCoord(2, 0, 17, 0) == n || s.NullForCoord(3, 0, 17, 1) == n {
		t.Error("distinct coordinates collided")
	}
}

func TestAddBatch(t *testing.T) {
	s := New()
	s.MustAdd(logic.NewAtom("p", logic.C("a")))
	ids, err := s.AddBatch([]logic.Atom{
		logic.NewAtom("q", logic.C("a"), logic.C("b")),
		logic.NewAtom("r", logic.C("b")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("AddBatch ids = %v, want [1 2]", ids)
	}
	if !s.Contains(logic.NewAtom("q", logic.C("a"), logic.C("b"))) || !s.Contains(logic.NewAtom("r", logic.C("b"))) {
		t.Error("batched atoms missing")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("invariants after AddBatch: %v", err)
	}
	// A non-ground atom anywhere in the batch rejects the whole batch.
	if _, err := s.AddBatch([]logic.Atom{
		logic.NewAtom("ok", logic.C("x")),
		logic.NewAtom("bad", logic.V("Z")),
	}); err == nil {
		t.Fatal("AddBatch accepted non-ground atom")
	}
	if s.Len() != 3 {
		t.Errorf("failed batch partially applied: len = %d, want 3", s.Len())
	}
	// Empty batch is a no-op.
	if ids, err := s.AddBatch(nil); err != nil || len(ids) != 0 {
		t.Errorf("empty batch = (%v, %v)", ids, err)
	}
}

func TestEqualUpToNullRenaming(t *testing.T) {
	a := MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("k"), logic.N("x1")),
		logic.NewAtom("q", logic.N("x1")),
	})
	b := MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("k"), logic.N("y9")),
		logic.NewAtom("q", logic.N("y9")),
	})
	if !a.EqualUpToNullRenaming(b) {
		t.Error("isomorphic stores reported different")
	}
	// Shared null split into two distinct ones: NOT isomorphic.
	c := MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("k"), logic.N("y1")),
		logic.NewAtom("q", logic.N("y2")),
	})
	if a.EqualUpToNullRenaming(c) {
		t.Error("non-injective renaming accepted")
	}
	// Two distinct nulls merged into one: also NOT isomorphic.
	if c.EqualUpToNullRenaming(a) {
		t.Error("merging renaming accepted")
	}
	// Null vs constant mismatch.
	d := MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("k"), logic.C("x1")),
		logic.NewAtom("q", logic.C("x1")),
	})
	if a.EqualUpToNullRenaming(d) {
		t.Error("null/constant confusion")
	}
	// Size / predicate mismatches.
	e := MustFromAtoms([]logic.Atom{logic.NewAtom("p", logic.C("k"), logic.N("z"))})
	if a.EqualUpToNullRenaming(e) {
		t.Error("size mismatch accepted")
	}
	// Constant mismatch.
	f := MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("OTHER"), logic.N("x1")),
		logic.NewAtom("q", logic.N("x1")),
	})
	if a.EqualUpToNullRenaming(f) {
		t.Error("constant mismatch accepted")
	}
}

func TestMustPanicsOnError(t *testing.T) {
	s := New()
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("MustAdd", func() { s.MustAdd(logic.NewAtom("p", logic.V("X"))) })
	s.MustAdd(logic.NewAtom("p", logic.C("a")))
	assertPanics("MustSetValue", func() { s.MustSetValue(Position{Fact: 0, Arg: 5}, logic.C("b")) })
	assertPanics("MustFromAtoms", func() { MustFromAtoms([]logic.Atom{logic.NewAtom("p", logic.V("X"))}) })
}
