// Package store provides the indexed set-of-facts substrate of kbrepair.
//
// A Store holds ground atoms (facts), each with a stable FactID. Update-based
// repairing (the paper's §3) rewrites argument values in place of existing
// facts and never changes fact identity: |F′| = |F| and pos(F′) = pos(F).
// Positions — the paper's (A, i) pairs — are therefore (FactID, argument
// index) pairs here.
//
// The store maintains three auxiliary structures kept in sync on every
// mutation:
//
//   - a per-predicate fact list, and a per-(predicate, argument, term) index
//     used by the homomorphism search;
//   - active domains adom(p, i) — the multiset of values occurring at
//     argument i of predicate p (Def. 3.1 draws candidate fix values from
//     these);
//   - a ground-atom key index used to answer Contains in O(1).
//
// # Concurrency
//
// A Store is safe for concurrent readers, and only readers: any number of
// goroutines may call the read-side accessors (Candidates,
// CandidatesByPred, ActiveDomain, FactRef, Value, Contains, NullForCoord, …)
// simultaneously as long as no goroutine mutates the store (Add, AddBatch,
// SetValue, FreshNull, ReserveNulls) in the same window. Writes require
// exclusive access; the caller provides that exclusion — the store has no
// internal locking, because the repair pipeline's phases are already strictly
// "parallel read, then sequential write" (parallel conflict detection, chase
// trigger collection and speculative rule firing read; fix application and
// the chase commit phase write from one goroutine between fan-outs). Metric
// increments inside read paths are atomic and do not break the contract.
package store

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"kbrepair/internal/logic"
	"kbrepair/internal/obs"
)

// Fact-churn and index-traffic instrumentation. All three sit on hot paths
// (SetValue runs once per hypothetical fix; Candidates once per join probe),
// so they are plain striped-counter increments — no gating, no timing.
var (
	mFactsAdded   = obs.NewCounter("store.facts_added")
	mValueUpdates = obs.NewCounter("store.value_updates")
	mLookups      = obs.NewCounter("store.index_lookups")
)

// FactID identifies a fact within a Store. IDs are assigned sequentially
// starting from 0 and are never re-used; they survive argument updates.
type FactID int

// Position identifies one argument slot of one fact — the paper's (A, i)
// with i kept zero-based internally (the paper counts from 1).
type Position struct {
	Fact FactID
	Arg  int
}

// String renders the position as "#fact@arg".
func (p Position) String() string { return fmt.Sprintf("#%d@%d", int(p.Fact), p.Arg) }

type indexKey struct {
	pred string
	arg  int
	term logic.Term
}

type adomKey struct {
	pred string
	arg  int
}

// Store is a mutable, indexed set of facts. The zero value is not usable;
// call New.
type Store struct {
	facts  []logic.Atom // indexed by FactID; len(facts) == number of facts
	byPred map[string][]FactID
	index  map[indexKey][]FactID
	adom   map[adomKey]map[logic.Term]int // value -> occurrence count
	vals   map[logic.Term]int             // global value -> occurrence count
	byKey  map[string][]FactID            // ground-atom key -> facts with that atom
	// nullSeq allocates fresh labeled nulls. It is monotone and shared
	// across clones' lineage by value copying at clone time: a clone starts
	// where the parent was, so nulls created after the clone in either copy
	// may collide between the two stores — but never within one store,
	// which is the invariant the algorithms need.
	nullSeq int
}

// New returns an empty store.
func New() *Store {
	return &Store{
		byPred: make(map[string][]FactID),
		index:  make(map[indexKey][]FactID),
		adom:   make(map[adomKey]map[logic.Term]int),
		vals:   make(map[logic.Term]int),
		byKey:  make(map[string][]FactID),
	}
}

// FromAtoms builds a store containing the given facts, in order. It returns
// an error if any atom is not ground.
func FromAtoms(atoms []logic.Atom) (*Store, error) {
	s := New()
	for _, a := range atoms {
		if _, err := s.Add(a); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustFromAtoms is like FromAtoms but panics on error. Intended for tests
// and hand-written examples.
func MustFromAtoms(atoms []logic.Atom) *Store {
	s, err := FromAtoms(atoms)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of facts in the store.
func (s *Store) Len() int { return len(s.facts) }

// Add inserts a ground atom and returns its new FactID. Duplicate atoms are
// allowed: the paper treats facts as atom occurrences with identity, and
// apply() can legitimately make two occurrences syntactically equal.
func (s *Store) Add(a logic.Atom) (FactID, error) {
	if !a.IsGround() {
		return 0, fmt.Errorf("store: cannot add non-ground atom %s", a)
	}
	mFactsAdded.Inc()
	id := FactID(len(s.facts))
	s.facts = append(s.facts, a.Clone())
	s.byPred[a.Pred] = append(s.byPred[a.Pred], id)
	for i, t := range a.Args {
		s.index[indexKey{a.Pred, i, t}] = append(s.index[indexKey{a.Pred, i, t}], id)
		s.adomAdd(a.Pred, i, t)
	}
	k := a.Key()
	s.byKey[k] = append(s.byKey[k], id)
	return id, nil
}

// AddBatch inserts a batch of ground atoms and returns their new FactIDs in
// order. The batch is validated up front and applied atomically: if any atom
// is non-ground, no atom is inserted. The fact array is grown once for the
// whole batch — this is the chase commit phase's append path (one batch per
// firing, the instantiated safe(H)).
func (s *Store) AddBatch(atoms []logic.Atom) ([]FactID, error) {
	for _, a := range atoms {
		if !a.IsGround() {
			return nil, fmt.Errorf("store: cannot add non-ground atom %s", a)
		}
	}
	if len(atoms) == 0 {
		return nil, nil
	}
	mFactsAdded.Add(int64(len(atoms)))
	ids := make([]FactID, len(atoms))
	if need := len(s.facts) + len(atoms); cap(s.facts) < need {
		grown := make([]logic.Atom, len(s.facts), need+need/2)
		copy(grown, s.facts)
		s.facts = grown
	}
	for i, a := range atoms {
		id := FactID(len(s.facts))
		s.facts = append(s.facts, a.Clone())
		s.byPred[a.Pred] = append(s.byPred[a.Pred], id)
		for j, t := range a.Args {
			s.index[indexKey{a.Pred, j, t}] = append(s.index[indexKey{a.Pred, j, t}], id)
			s.adomAdd(a.Pred, j, t)
		}
		s.byKey[a.Key()] = append(s.byKey[a.Key()], id)
		ids[i] = id
	}
	return ids, nil
}

// MustAdd is like Add but panics on error.
func (s *Store) MustAdd(a logic.Atom) FactID {
	id, err := s.Add(a)
	if err != nil {
		panic(err)
	}
	return id
}

// Fact returns the atom with the given id. The returned atom shares no
// storage with the store (callers may mutate it freely).
func (s *Store) Fact(id FactID) logic.Atom {
	return s.facts[id].Clone()
}

// FactRef returns the stored atom without copying. Callers must not mutate
// the result; it is invalidated by SetValue on the same fact.
func (s *Store) FactRef(id FactID) logic.Atom {
	return s.facts[id]
}

// Valid reports whether id denotes a fact of this store.
func (s *Store) Valid(id FactID) bool {
	return id >= 0 && int(id) < len(s.facts)
}

// Value returns the term at the given position (the paper's value_A^i(F)).
func (s *Store) Value(p Position) logic.Term {
	return s.facts[p.Fact].Args[p.Arg]
}

// Arity returns the arity of the fact with the given id.
func (s *Store) Arity(id FactID) int { return len(s.facts[id].Args) }

// SetValue updates the term at position p, maintaining all indexes, and
// returns the previous value so callers can undo the mutation.
func (s *Store) SetValue(p Position, t logic.Term) (prev logic.Term, err error) {
	if !t.IsGround() {
		return logic.Term{}, fmt.Errorf("store: cannot set variable %s at %s", t, p)
	}
	a := &s.facts[p.Fact]
	if p.Arg < 0 || p.Arg >= len(a.Args) {
		return logic.Term{}, fmt.Errorf("store: position %s out of range for %s", p, *a)
	}
	prev = a.Args[p.Arg]
	if prev == t {
		return prev, nil
	}
	mValueUpdates.Inc()
	oldKey := a.Key()
	s.indexRemove(indexKey{a.Pred, p.Arg, prev}, p.Fact)
	s.adomRemove(a.Pred, p.Arg, prev)
	a.Args[p.Arg] = t
	s.index[indexKey{a.Pred, p.Arg, t}] = append(s.index[indexKey{a.Pred, p.Arg, t}], p.Fact)
	s.adomAdd(a.Pred, p.Arg, t)
	s.keyIndexRemove(oldKey, p.Fact)
	nk := a.Key()
	s.byKey[nk] = append(s.byKey[nk], p.Fact)
	return prev, nil
}

// MustSetValue is like SetValue but panics on error.
func (s *Store) MustSetValue(p Position, t logic.Term) logic.Term {
	prev, err := s.SetValue(p, t)
	if err != nil {
		panic(err)
	}
	return prev
}

func (s *Store) indexRemove(k indexKey, id FactID) {
	lst := s.index[k]
	for i, x := range lst {
		if x == id {
			lst[i] = lst[len(lst)-1]
			lst = lst[:len(lst)-1]
			break
		}
	}
	if len(lst) == 0 {
		delete(s.index, k)
	} else {
		s.index[k] = lst
	}
}

func (s *Store) keyIndexRemove(key string, id FactID) {
	lst := s.byKey[key]
	for i, x := range lst {
		if x == id {
			lst[i] = lst[len(lst)-1]
			lst = lst[:len(lst)-1]
			break
		}
	}
	if len(lst) == 0 {
		delete(s.byKey, key)
	} else {
		s.byKey[key] = lst
	}
}

func (s *Store) adomAdd(pred string, arg int, t logic.Term) {
	// Auto-reserve numeric null labels so FreshNull can never collide with
	// a null inserted from outside (parsed files, hand-built stores).
	if t.Kind == logic.Null && len(t.Name) > 1 && t.Name[0] == 'n' {
		if n, ok := ParseNumericNullLabel(t.Name); ok {
			s.ReserveNulls(n)
		}
	}
	k := adomKey{pred, arg}
	m := s.adom[k]
	if m == nil {
		m = make(map[logic.Term]int)
		s.adom[k] = m
	}
	m[t]++
	s.vals[t]++
}

func (s *Store) adomRemove(pred string, arg int, t logic.Term) {
	if s.vals[t] <= 1 {
		delete(s.vals, t)
	} else {
		s.vals[t]--
	}
	k := adomKey{pred, arg}
	m := s.adom[k]
	if m == nil {
		return
	}
	if m[t] <= 1 {
		delete(m, t)
		if len(m) == 0 {
			delete(s.adom, k)
		}
	} else {
		m[t]--
	}
}

// Contains reports whether the store holds at least one occurrence of the
// given ground atom.
func (s *Store) Contains(a logic.Atom) bool {
	return len(s.byKey[a.Key()]) > 0
}

// FindExact returns the ids of all occurrences of the given ground atom.
func (s *Store) FindExact(a logic.Atom) []FactID {
	return append([]FactID(nil), s.byKey[a.Key()]...)
}

// ByPredicate returns the ids of all facts with the given predicate, in
// insertion order of the underlying structure (stable for a given history).
func (s *Store) ByPredicate(pred string) []FactID {
	return append([]FactID(nil), s.byPred[pred]...)
}

// Candidates returns fact ids with the given predicate whose argument arg
// equals t. It returns the internal slice; callers must not mutate it.
func (s *Store) Candidates(pred string, arg int, t logic.Term) []FactID {
	mLookups.Inc()
	return s.index[indexKey{pred, arg, t}]
}

// CandidatesByPred returns the internal per-predicate id slice; callers must
// not mutate it.
func (s *Store) CandidatesByPred(pred string) []FactID {
	mLookups.Inc()
	return s.byPred[pred]
}

// ActiveDomain returns the active domain adom(p, i): the distinct terms
// occurring at argument i of predicate p, sorted deterministically.
func (s *Store) ActiveDomain(pred string, arg int) []logic.Term {
	m := s.adom[adomKey{pred, arg}]
	out := make([]logic.Term, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	logic.SortTerms(out)
	return out
}

// ActiveDomainSize returns the number of distinct values at (pred, arg).
func (s *Store) ActiveDomainSize(pred string, arg int) int {
	return len(s.adom[adomKey{pred, arg}])
}

// InActiveDomain reports whether t occurs at argument arg of predicate pred.
func (s *Store) InActiveDomain(pred string, arg int, t logic.Term) bool {
	m := s.adom[adomKey{pred, arg}]
	return m[t] > 0
}

// OccursAnywhere reports whether t occurs at any position of any fact.
func (s *Store) OccursAnywhere(t logic.Term) bool {
	return s.vals[t] > 0
}

// OccurrenceCount returns the number of positions holding t.
func (s *Store) OccurrenceCount(t logic.Term) int {
	return s.vals[t]
}

// Predicates returns the predicate names present in the store, sorted.
func (s *Store) Predicates() []string {
	out := make([]string, 0, len(s.byPred))
	for p, ids := range s.byPred {
		if len(ids) > 0 {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// IDs returns all fact ids in ascending order.
func (s *Store) IDs() []FactID {
	out := make([]FactID, len(s.facts))
	for i := range out {
		out[i] = FactID(i)
	}
	return out
}

// Atoms returns a copy of all facts in id order.
func (s *Store) Atoms() []logic.Atom {
	out := make([]logic.Atom, len(s.facts))
	for i, a := range s.facts {
		out[i] = a.Clone()
	}
	return out
}

// Positions returns pos(F): every (fact, argument) position of the store,
// in deterministic order.
func (s *Store) Positions() []Position {
	var out []Position
	for i, a := range s.facts {
		for j := range a.Args {
			out = append(out, Position{Fact: FactID(i), Arg: j})
		}
	}
	return out
}

// NumPositions returns |pos(F)| without materializing the slice.
func (s *Store) NumPositions() int {
	n := 0
	for _, a := range s.facts {
		n += len(a.Args)
	}
	return n
}

// ParseNumericNullLabel parses a FreshNull-shaped label "n<digits>" and
// returns its counter value. It reports false for any other shape — and,
// critically, for digit strings that overflow int: FreshNull renders an int,
// so a label whose numeric value does not fit in one can never collide with
// a FreshNull allocation, and reserving a silently wrapped value would at
// best no-op and at worst (32-bit int) under-reserve, letting FreshNull
// later mint a label equal to an externally inserted null.
func ParseNumericNullLabel(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'n' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(name); i++ {
		c := name[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := int(c - '0')
		if n > (math.MaxInt-d)/10 {
			return 0, false
		}
		n = n*10 + d
	}
	return n, true
}

// FreshNull allocates a labeled null that has never been used by this store
// (nor by any ancestor it was cloned from).
func (s *Store) FreshNull() logic.Term {
	s.nullSeq++
	return logic.N("n" + strconv.Itoa(s.nullSeq))
}

// CoordNullLabel renders the deterministic label of the null invented at
// chase firing coordinate (round, rule index, trigger index, existential-var
// index): "n<round>r<rule>t<trig>x<ex>". The label is a function of the
// coordinate alone — not of any allocation counter — so a firing's nulls do
// not depend on which firings preceded it, which is what lets chase rule
// firing fan out across workers while staying byte-identical at every worker
// count. All characters are identifier-safe for the parser's "_:label" null
// syntax, and the shape is never purely numeric, so the FreshNull
// auto-reserve in adomAdd ignores it.
func CoordNullLabel(round, rule, trig, ex int) string {
	b := make([]byte, 0, 16)
	b = append(b, 'n')
	b = strconv.AppendInt(b, int64(round), 10)
	b = append(b, 'r')
	b = strconv.AppendInt(b, int64(rule), 10)
	b = append(b, 't')
	b = strconv.AppendInt(b, int64(trig), 10)
	b = append(b, 'x')
	b = strconv.AppendInt(b, int64(ex), 10)
	return string(b)
}

// NullForCoord returns the invented null for a chase firing coordinate,
// deterministically escaped against the store's current contents: if the
// coordinate label already occurs anywhere in the store — an externally
// inserted coordinate-shaped null, or the inventions of a previous chase
// when a chase result is chased again — successive "c1", "c2", … suffixes
// are tried until a free label is found. The method only reads the store
// (no counter is consumed), so it is safe under the concurrent-read
// contract and the result depends only on store contents, never on
// allocation order.
func (s *Store) NullForCoord(round, rule, trig, ex int) logic.Term {
	t := logic.N(CoordNullLabel(round, rule, trig, ex))
	if s.vals[t] == 0 {
		return t
	}
	for k := 1; ; k++ {
		esc := logic.N(t.Name + "c" + strconv.Itoa(k))
		if s.vals[esc] == 0 {
			return esc
		}
	}
}

// ReserveNulls bumps the fresh-null counter so that subsequently allocated
// nulls do not collide with externally created labels n1..n(k).
func (s *Store) ReserveNulls(k int) {
	if k > s.nullSeq {
		s.nullSeq = k
	}
}

// NullSeq returns the current fresh-null counter; a derived store that
// reserves this many labels will never allocate a null colliding with one
// this store has handed out.
func (s *Store) NullSeq() int { return s.nullSeq }

// Clone returns a deep copy of the store. The copy has the same FactIDs and
// the same fresh-null counter position.
func (s *Store) Clone() *Store {
	c := &Store{
		facts:   make([]logic.Atom, len(s.facts)),
		byPred:  make(map[string][]FactID, len(s.byPred)),
		index:   make(map[indexKey][]FactID, len(s.index)),
		adom:    make(map[adomKey]map[logic.Term]int, len(s.adom)),
		vals:    make(map[logic.Term]int, len(s.vals)),
		byKey:   make(map[string][]FactID, len(s.byKey)),
		nullSeq: s.nullSeq,
	}
	for t, n := range s.vals {
		c.vals[t] = n
	}
	for i, a := range s.facts {
		c.facts[i] = a.Clone()
	}
	for p, ids := range s.byPred {
		c.byPred[p] = append([]FactID(nil), ids...)
	}
	for k, ids := range s.index {
		c.index[k] = append([]FactID(nil), ids...)
	}
	for k, m := range s.adom {
		mm := make(map[logic.Term]int, len(m))
		for t, n := range m {
			mm[t] = n
		}
		c.adom[k] = mm
	}
	for k, ids := range s.byKey {
		c.byKey[k] = append([]FactID(nil), ids...)
	}
	return c
}

// Equal reports whether two stores contain exactly the same facts at the
// same ids.
func (s *Store) Equal(o *Store) bool {
	if len(s.facts) != len(o.facts) {
		return false
	}
	for i := range s.facts {
		if !s.facts[i].Equal(o.facts[i]) {
			return false
		}
	}
	return true
}

// EqualAsSet reports whether the two stores hold the same multiset of atoms,
// ignoring fact ids.
func (s *Store) EqualAsSet(o *Store) bool {
	if len(s.facts) != len(o.facts) {
		return false
	}
	counts := make(map[string]int, len(s.facts))
	for _, a := range s.facts {
		counts[a.Key()]++
	}
	for _, a := range o.facts {
		counts[a.Key()]--
		if counts[a.Key()] < 0 {
			return false
		}
	}
	return true
}

// EqualUpToNullRenaming reports whether two stores hold the same facts at
// the same ids up to a bijective renaming of labeled nulls. Two repairs that
// anonymize the same positions with differently-labeled fresh nulls are the
// same repair in the paper's sense.
func (s *Store) EqualUpToNullRenaming(o *Store) bool {
	if len(s.facts) != len(o.facts) {
		return false
	}
	fwd := make(map[logic.Term]logic.Term)
	bwd := make(map[logic.Term]logic.Term)
	for i := range s.facts {
		a, b := s.facts[i], o.facts[i]
		if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
			return false
		}
		for j := range a.Args {
			ta, tb := a.Args[j], b.Args[j]
			if ta.IsNull() != tb.IsNull() {
				return false
			}
			if !ta.IsNull() {
				if ta != tb {
					return false
				}
				continue
			}
			if m, ok := fwd[ta]; ok {
				if m != tb {
					return false
				}
			} else {
				fwd[ta] = tb
			}
			if m, ok := bwd[tb]; ok {
				if m != ta {
					return false
				}
			} else {
				bwd[tb] = ta
			}
		}
	}
	return true
}

// String renders the facts one per line in id order, in parser syntax.
func (s *Store) String() string {
	var sb strings.Builder
	for _, a := range s.facts {
		sb.WriteString(a.String())
		sb.WriteString(".\n")
	}
	return sb.String()
}

// CheckInvariants verifies internal consistency of all indexes. It is meant
// for tests and returns a descriptive error on the first violation found.
func (s *Store) CheckInvariants() error {
	// Every fact must be present in byPred, index, byKey.
	for i, a := range s.facts {
		id := FactID(i)
		if !containsID(s.byPred[a.Pred], id) {
			return fmt.Errorf("fact %d missing from byPred[%s]", id, a.Pred)
		}
		for j, t := range a.Args {
			if !containsID(s.index[indexKey{a.Pred, j, t}], id) {
				return fmt.Errorf("fact %d missing from index[%s,%d,%s]", id, a.Pred, j, t)
			}
			if s.adom[adomKey{a.Pred, j}][t] <= 0 {
				return fmt.Errorf("adom[%s,%d] missing %s", a.Pred, j, t)
			}
		}
		if !containsID(s.byKey[a.Key()], id) {
			return fmt.Errorf("fact %d missing from byKey[%s]", id, a.Key())
		}
	}
	// No stale index entries.
	for k, ids := range s.index {
		for _, id := range ids {
			if !s.Valid(id) || s.facts[id].Pred != k.pred || s.facts[id].Args[k.arg] != k.term {
				return fmt.Errorf("stale index entry %v -> %d", k, id)
			}
		}
	}
	// adom counts must equal occurrence counts.
	counts := make(map[adomKey]map[logic.Term]int)
	for _, a := range s.facts {
		for j, t := range a.Args {
			k := adomKey{a.Pred, j}
			if counts[k] == nil {
				counts[k] = make(map[logic.Term]int)
			}
			counts[k][t]++
		}
	}
	for k, m := range s.adom {
		for t, n := range m {
			if counts[k][t] != n {
				return fmt.Errorf("adom[%v][%s] = %d, want %d", k, t, n, counts[k][t])
			}
		}
	}
	for k, m := range counts {
		for t, n := range m {
			if s.adom[k][t] != n {
				return fmt.Errorf("adom[%v][%s] = %d, want %d", k, t, s.adom[k][t], n)
			}
		}
	}
	// Global value counts must equal total occurrence counts.
	valCounts := make(map[logic.Term]int)
	for _, a := range s.facts {
		for _, t := range a.Args {
			valCounts[t]++
		}
	}
	for t, n := range s.vals {
		if valCounts[t] != n {
			return fmt.Errorf("vals[%s] = %d, want %d", t, n, valCounts[t])
		}
	}
	for t, n := range valCounts {
		if s.vals[t] != n {
			return fmt.Errorf("vals[%s] = %d, want %d", t, s.vals[t], n)
		}
	}
	return nil
}

func containsID(ids []FactID, id FactID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
