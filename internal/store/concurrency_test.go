package store

import (
	"sync"
	"testing"

	"kbrepair/internal/logic"
)

// buildReadStore assembles a store with enough predicates, duplicate values
// and index entries that the read-side accessors all have work to do.
func buildReadStore(t testing.TB) *Store {
	t.Helper()
	s := New()
	consts := []logic.Term{logic.C("a"), logic.C("b"), logic.C("c"), logic.C("d")}
	for i := 0; i < 64; i++ {
		s.MustAdd(logic.NewAtom("p", consts[i%4], consts[(i/4)%4]))
		s.MustAdd(logic.NewAtom("q", consts[(i/2)%4]))
	}
	return s
}

// TestConcurrentReaders exercises the store's documented concurrency
// contract — concurrent reads are safe while no writer runs — under the
// race detector: many goroutines hammer every read-side accessor the
// parallel conflict-detection and trigger-collection paths use
// (Candidates, CandidatesByPred, ActiveDomain, FactRef, Value, Contains),
// and each checks its reads against a pre-computed expectation.
func TestConcurrentReaders(t *testing.T) {
	s := buildReadStore(t)
	wantLen := s.Len()
	wantP := len(s.ByPredicate("p"))
	wantAdom := len(s.ActiveDomain("p", 0))
	a := logic.C("a")
	wantCands := len(s.Candidates("p", 0, a))

	const readers = 8
	var wg sync.WaitGroup
	wg.Add(readers)
	for g := 0; g < readers; g++ {
		go func() {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				if got := len(s.Candidates("p", 0, a)); got != wantCands {
					t.Errorf("Candidates = %d, want %d", got, wantCands)
					return
				}
				if got := len(s.CandidatesByPred("p")); got != wantP {
					t.Errorf("CandidatesByPred = %d, want %d", got, wantP)
					return
				}
				if got := len(s.ActiveDomain("p", 0)); got != wantAdom {
					t.Errorf("ActiveDomain = %d, want %d", got, wantAdom)
					return
				}
				for id := FactID(0); int(id) < wantLen; id++ {
					ref := s.FactRef(id)
					if ref.Pred != "p" && ref.Pred != "q" {
						t.Errorf("FactRef(%d).Pred = %q", id, ref.Pred)
						return
					}
					if v := s.Value(Position{Fact: id, Arg: 0}); !v.IsConst() {
						t.Errorf("Value(%d@0) = %v, want constant", id, v)
						return
					}
					if !s.Contains(ref) {
						t.Errorf("Contains(FactRef(%d)) = false", id)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestReadersBetweenWrites interleaves rounds of exclusive writes with
// rounds of parallel reads — the pipeline's actual access pattern (fan-out
// reads, fan-in, sequential SetValue, repeat). The race detector verifies
// that the happens-before edges provided by WaitGroup synchronization are
// enough; no store-internal locking exists or is needed.
func TestReadersBetweenWrites(t *testing.T) {
	s := buildReadStore(t)
	val := []logic.Term{logic.C("x"), logic.C("y")}
	for round := 0; round < 10; round++ {
		// Exclusive write phase.
		s.MustSetValue(Position{Fact: FactID(round), Arg: 0}, val[round%2])
		s.MustAdd(logic.NewAtom("r", val[round%2]))
		// Parallel read phase.
		var wg sync.WaitGroup
		wg.Add(4)
		for g := 0; g < 4; g++ {
			go func() {
				defer wg.Done()
				for id := FactID(0); int(id) < s.Len(); id++ {
					_ = s.FactRef(id)
					_ = s.Arity(id)
				}
				_ = s.Candidates("r", 0, val[0])
				_ = s.ActiveDomainSize("p", 0)
				_ = s.OccursAnywhere(val[1])
			}()
		}
		wg.Wait()
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
