// Package synth generates the synthetic knowledge bases of the paper's
// experimental study (§6): a random vocabulary with n-ary predicates, CDDs
// parameterized by body size and join-variable ratio, TGDs linked to CDDs
// through derivation chains of configurable depth d_K, and a fact set built
// by planting CDD violations until a target inconsistency ratio is reached,
// then padded with conflict-free atoms.
//
// Generation is fully deterministic under Params.Seed.
package synth

import (
	"fmt"
	"math/rand"
	"strconv"

	"kbrepair/internal/chase"
	"kbrepair/internal/conflict"
	"kbrepair/internal/core"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// Params configure the generator. Zero values take the documented defaults.
type Params struct {
	// Seed drives all randomness.
	Seed int64
	// NumFacts is the target |F| (default 200).
	NumFacts int
	// InconsistencyRatio r_inc is the target fraction of atoms involved in
	// at least one conflict (default 0.1).
	InconsistencyRatio float64
	// NumCDDs is the number of CDDs (default 10).
	NumCDDs int
	// NumTGDs is the number of TGDs (default 0: CDD-only KB).
	NumTGDs int
	// Depth d_K is the number of TGD applications needed before a
	// chase-linked CDD violation fires (default 1 when NumTGDs > 0).
	Depth int
	// ChaseConflictFraction is the fraction of planted violations that are
	// only reachable through the chase (default 0.4 when NumTGDs > 0,
	// otherwise 0).
	ChaseConflictFraction float64
	// CDDAtomsMin/Max bound the CDD body size s (defaults 2 and 3).
	CDDAtomsMin, CDDAtomsMax int
	// JoinVarRatio v_jp is the target fraction of CDD body positions
	// holding join variables, beyond the connectivity minimum (default
	// 0.3).
	JoinVarRatio float64
	// ArityMin/Max bound predicate arities (defaults 2 and 4).
	ArityMin, ArityMax int
	// NumPredicates is the vocabulary size (default 12).
	NumPredicates int
	// OverlapProb is the probability that a planted violation grows into a
	// hub *cluster*: ClusterSize violations of the same CDD sharing one
	// atom. Clusters create the overlap structure ("avg scope") the
	// opti-mcd strategy exploits (default 0.5).
	OverlapProb float64
	// ClusterSize is the number of violations per hub cluster (default 8,
	// matching the paper's avg-scope ≈ 8–30 indicators).
	ClusterSize int
}

func (p Params) withDefaults() Params {
	if p.NumFacts == 0 {
		p.NumFacts = 200
	}
	if p.InconsistencyRatio == 0 {
		p.InconsistencyRatio = 0.1
	}
	if p.NumCDDs == 0 {
		p.NumCDDs = 10
	}
	if p.Depth == 0 && p.NumTGDs > 0 {
		p.Depth = 1
	}
	if p.ChaseConflictFraction == 0 && p.NumTGDs > 0 {
		p.ChaseConflictFraction = 0.4
	}
	if p.CDDAtomsMin == 0 {
		p.CDDAtomsMin = 2
	}
	if p.CDDAtomsMax == 0 {
		p.CDDAtomsMax = 3
	}
	if p.ArityMin == 0 {
		p.ArityMin = 2
	}
	if p.ArityMax == 0 {
		p.ArityMax = 4
	}
	if p.NumPredicates == 0 {
		p.NumPredicates = 12
	}
	if p.OverlapProb == 0 {
		p.OverlapProb = 0.5
	}
	if p.ClusterSize == 0 {
		p.ClusterSize = 8
	}
	return p
}

func (p Params) validate() error {
	if p.InconsistencyRatio < 0 || p.InconsistencyRatio > 1 {
		return fmt.Errorf("synth: inconsistency ratio %f out of [0,1]", p.InconsistencyRatio)
	}
	if p.CDDAtomsMin > p.CDDAtomsMax || p.CDDAtomsMin < 1 {
		return fmt.Errorf("synth: bad CDD body size range [%d,%d]", p.CDDAtomsMin, p.CDDAtomsMax)
	}
	if p.ArityMin > p.ArityMax || p.ArityMin < 1 {
		return fmt.Errorf("synth: bad arity range [%d,%d]", p.ArityMin, p.ArityMax)
	}
	if p.NumTGDs > 0 && p.NumTGDs < p.Depth {
		return fmt.Errorf("synth: NumTGDs=%d < Depth=%d (each chain needs Depth TGDs)", p.NumTGDs, p.Depth)
	}
	return nil
}

// Info describes the generated KB with the indicators the paper reports in
// its experiment tables.
type Info struct {
	Facts               int
	ChaseSize           int
	NaiveConflicts      int
	TotalConflicts      int
	AtomsInConflicts    int
	InconsistencyRatio  float64
	AvgAtomsPerConflict float64
	AvgAtomsPerOverlap  float64
	AvgScope            float64
	// JoinPositionPct is the fraction of CDD body positions that hold join
	// variables.
	JoinPositionPct  float64
	NumTGDs, NumCDDs int
}

// Generated bundles the KB with its metadata.
type Generated struct {
	KB   *core.KB
	Info Info
}

type generator struct {
	p   Params
	rng *rand.Rand

	preds      []string
	arity      map[string]int
	cdds       []*logic.CDD
	tgds       []*logic.TGD
	chains     []chainInfo
	st         *store.Store
	inConflict map[store.FactID]bool
	padSeq     int
	vioSeq     int
}

// chainInfo describes one TGD derivation chain ending in a CDD body
// predicate.
type chainInfo struct {
	cddIdx  int // the CDD the chain can violate
	atomIdx int // which body atom the chain derives
	srcPred string
}

// Generate builds a synthetic KB per the parameters.
func Generate(params Params) (*Generated, error) {
	p := params.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	g := &generator{
		p:          p,
		rng:        rand.New(rand.NewSource(p.Seed)),
		arity:      make(map[string]int),
		st:         store.New(),
		inConflict: make(map[store.FactID]bool),
	}
	g.buildVocabulary()
	if err := g.buildCDDs(); err != nil {
		return nil, err
	}
	g.buildTGDs()
	if err := g.plantViolations(); err != nil {
		return nil, err
	}
	g.pad()

	kb, err := core.NewKB(g.st, g.tgds, g.cdds)
	if err != nil {
		return nil, fmt.Errorf("synth: generated KB invalid: %w", err)
	}
	info, err := describe(kb)
	if err != nil {
		return nil, err
	}
	return &Generated{KB: kb, Info: info}, nil
}

// describe computes the paper's KB-structure indicators for any KB.
func describe(kb *core.KB) (Info, error) {
	naive := conflict.AllNaive(kb.Facts, kb.CDDs)
	all, _, err := conflict.All(kb.Facts, kb.TGDs, kb.CDDs, kb.ChaseOpts)
	if err != nil {
		return Info{}, err
	}
	// ChaseSize reports the full materialization Cl_ΣT(F) (conflict.All
	// chases only the CDD-relevant rules).
	full, err := chase.Run(kb.Facts, kb.TGDs, kb.ChaseOpts)
	if err != nil {
		return Info{}, err
	}
	cs := conflict.ComputeStats(all)
	info := Info{
		Facts:               kb.Facts.Len(),
		ChaseSize:           full.Store.Len(),
		NaiveConflicts:      len(naive),
		TotalConflicts:      len(all),
		AtomsInConflicts:    cs.AtomsInConflicts,
		AvgAtomsPerConflict: cs.AvgAtomsPerConflict,
		AvgAtomsPerOverlap:  cs.AvgAtomsPerOverlap,
		AvgScope:            cs.AvgScope,
		NumTGDs:             len(kb.TGDs),
		NumCDDs:             len(kb.CDDs),
	}
	if kb.Facts.Len() > 0 {
		info.InconsistencyRatio = float64(cs.AtomsInConflicts) / float64(kb.Facts.Len())
	}
	info.JoinPositionPct = joinPositionPct(kb.CDDs)
	return info, nil
}

// Describe exposes the indicator computation for externally built KBs (the
// Durum Wheat builder reuses it).
func Describe(kb *core.KB) (Info, error) { return describe(kb) }

func joinPositionPct(cdds []*logic.CDD) float64 {
	total, join := 0, 0
	for _, c := range cdds {
		jp := c.JoinPositions()
		for i, a := range c.Body {
			total += a.Arity()
			join += len(jp[i])
		}
	}
	if total == 0 {
		return 0
	}
	return float64(join) / float64(total)
}

func (g *generator) buildVocabulary() {
	for i := 0; i < g.p.NumPredicates; i++ {
		name := "p" + strconv.Itoa(i)
		g.preds = append(g.preds, name)
		g.arity[name] = g.p.ArityMin + g.rng.Intn(g.p.ArityMax-g.p.ArityMin+1)
	}
}

// buildCDDs constructs NumCDDs dependencies with connected bodies and the
// requested join-variable density.
func (g *generator) buildCDDs() error {
	varSeq := 0
	freshVar := func() logic.Term {
		varSeq++
		return logic.V("V" + strconv.Itoa(varSeq))
	}
	for i := 0; i < g.p.NumCDDs; i++ {
		var cdd *logic.CDD
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				return fmt.Errorf("synth: could not generate a non-degenerate CDD after %d attempts", attempt)
			}
			s := g.p.CDDAtomsMin + g.rng.Intn(g.p.CDDAtomsMax-g.p.CDDAtomsMin+1)
			var body []logic.Atom
			// used holds the variables actually occurring in emitted atoms
			// (tracking anything else would let the connectivity step pick
			// a "phantom" variable and emit a free-floating atom that
			// matches every fact of its predicate).
			var used []logic.Term
			for ai := 0; ai < s; ai++ {
				pred := g.preds[g.rng.Intn(len(g.preds))]
				n := g.arity[pred]
				args := make([]logic.Term, n)
				for j := range args {
					args[j] = freshVar()
				}
				if ai > 0 {
					// Connectivity: one position joins an earlier variable.
					args[g.rng.Intn(n)] = used[g.rng.Intn(len(used))]
				} else if s == 1 && n >= 2 {
					// Single-atom CDD: make it meaningful via a repeated var.
					args[1] = args[0]
				}
				// Extra join density.
				if ai > 0 {
					for j := range args {
						if g.rng.Float64() < g.p.JoinVarRatio/2 {
							args[j] = used[g.rng.Intn(len(used))]
						}
					}
				}
				used = append(used, logic.NewAtom(pred, args...).Vars()...)
				body = append(body, logic.NewAtom(pred, args...))
			}
			c, err := logic.NewCDD(body)
			if err != nil {
				continue // e.g. joins vanished; rebuild
			}
			// A body that folds onto a single anonymized fact forbids a
			// predicate outright — rejected by KB validation, so retry.
			if core.IsDegenerateCDD(c) {
				continue
			}
			cdd = c
			break
		}
		cdd.Label = "cdd" + strconv.Itoa(i)
		g.cdds = append(g.cdds, cdd)
	}
	return nil
}

// buildTGDs creates derivation chains of length Depth ending in CDD body
// predicates, plus inert noise rules for any leftover TGD budget.
func (g *generator) buildTGDs() {
	if g.p.NumTGDs == 0 {
		return
	}
	numChains := g.p.NumTGDs / g.p.Depth
	built := 0
	for c := 0; c < numChains; c++ {
		cddIdx := c % len(g.cdds)
		cdd := g.cdds[cddIdx]
		atomIdx := g.rng.Intn(len(cdd.Body))
		target := cdd.Body[atomIdx]
		n := target.Arity()
		vars := make([]logic.Term, n)
		for j := range vars {
			vars[j] = logic.V("X" + strconv.Itoa(j))
		}
		prev := fmt.Sprintf("chain%d_0", c)
		g.arity[prev] = n
		for step := 1; step < g.p.Depth; step++ {
			cur := fmt.Sprintf("chain%d_%d", c, step)
			g.arity[cur] = n
			g.tgds = append(g.tgds, &logic.TGD{
				Label: fmt.Sprintf("chain%d[%d]", c, step),
				Body:  []logic.Atom{logic.NewAtom(prev, vars...)},
				Head:  []logic.Atom{logic.NewAtom(cur, vars...)},
			})
			prev = cur
			built++
		}
		g.tgds = append(g.tgds, &logic.TGD{
			Label: fmt.Sprintf("chain%d[last]", c),
			Body:  []logic.Atom{logic.NewAtom(prev, vars...)},
			Head:  []logic.Atom{logic.NewAtom(target.Pred, vars...)},
		})
		built++
		g.chains = append(g.chains, chainInfo{
			cddIdx:  cddIdx,
			atomIdx: atomIdx,
			srcPred: fmt.Sprintf("chain%d_0", c),
		})
	}
	// Noise rules: pred-to-pred copies over fresh predicates that appear
	// in no CDD, so they can never create conflicts.
	for i := built; i < g.p.NumTGDs; i++ {
		src := fmt.Sprintf("noiseSrc%d", i)
		dst := fmt.Sprintf("noiseDst%d", i)
		g.arity[src], g.arity[dst] = 2, 2
		g.tgds = append(g.tgds, &logic.TGD{
			Label: "noise" + strconv.Itoa(i),
			Body:  []logic.Atom{logic.NewAtom(src, logic.V("X"), logic.V("Y"))},
			Head:  []logic.Atom{logic.NewAtom(dst, logic.V("X"), logic.V("Z"))},
		})
	}
}

// instantiate grounds a CDD body, extending the given partial
// substitution. Every unbound variable receives a globally unique
// constant: with shared constants, independently planted violations would
// cross-join by chance and inflate the conflict count and overlap far
// beyond the targets. Overlap is created *only* through seeds (cluster
// planting binds one body atom to the cluster's hub atom).
func (g *generator) instantiate(cdd *logic.CDD, seed logic.Subst) []logic.Atom {
	sub := logic.NewSubst()
	for v, t := range seed {
		sub[v] = t
	}
	joins := make(map[logic.Term]bool)
	for _, v := range cdd.JoinVars() {
		joins[v] = true
	}
	atoms := make([]logic.Atom, len(cdd.Body))
	for i, a := range cdd.Body {
		args := make([]logic.Term, len(a.Args))
		for j, t := range a.Args {
			if !t.IsVar() {
				args[j] = t
				continue
			}
			if b, ok := sub[t]; ok {
				args[j] = b
				continue
			}
			g.vioSeq++
			prefix := "v"
			if joins[t] {
				prefix = "j"
			}
			c := logic.C(prefix + strconv.Itoa(g.vioSeq))
			sub[t] = c
			args[j] = c
		}
		atoms[i] = logic.NewAtom(a.Pred, args...)
	}
	return atoms
}

// bindPattern unifies a body atom against a ground atom, returning the
// induced bindings; cluster members are seeded with the hub atom's
// bindings so they all share it.
func bindPattern(pattern, ground logic.Atom) logic.Subst {
	sub := logic.NewSubst()
	for j, t := range pattern.Args {
		if t.IsVar() {
			sub[t] = ground.Args[j]
		}
	}
	return sub
}

// plantViolations adds violating atom sets until the target number of
// conflicting atoms is reached.
func (g *generator) plantViolations() error {
	target := int(g.p.InconsistencyRatio * float64(g.p.NumFacts))
	guard := 0
	for len(g.inConflict) < target {
		guard++
		if guard > 50*g.p.NumFacts+1000 {
			return fmt.Errorf("synth: could not reach inconsistency ratio %.2f (reached %d/%d conflicting atoms)",
				g.p.InconsistencyRatio, len(g.inConflict), target)
		}
		viaChase := len(g.chains) > 0 && g.rng.Float64() < g.p.ChaseConflictFraction
		if viaChase {
			g.plantChaseViolation()
		} else {
			g.plantDirectViolation()
		}
		if g.st.Len() >= g.p.NumFacts {
			break
		}
	}
	return nil
}

func (g *generator) markConflict(id store.FactID) {
	g.inConflict[id] = true
}

// plantDirectViolation plants one violation of a random CDD; with
// probability OverlapProb it grows into a hub cluster of ClusterSize
// violations sharing one atom (the paper's overlapping-conflict structure,
// "avg scope").
func (g *generator) plantDirectViolation() {
	cdd := g.cdds[g.rng.Intn(len(g.cdds))]
	atoms := g.instantiate(cdd, nil)
	for _, a := range atoms {
		g.markConflict(g.st.MustAdd(a))
	}
	if len(cdd.Body) < 2 || g.rng.Float64() >= g.p.OverlapProb {
		return
	}
	// Grow a cluster around a hub atom of the first violation.
	hub := g.rng.Intn(len(cdd.Body))
	seed := bindPattern(cdd.Body[hub], atoms[hub])
	members := 1 + g.rng.Intn(g.p.ClusterSize)
	for m := 0; m < members && g.st.Len() < g.p.NumFacts; m++ {
		more := g.instantiate(cdd, seed)
		for i, a := range more {
			if i == hub {
				continue // shared with the hub atom already added
			}
			g.markConflict(g.st.MustAdd(a))
		}
	}
}

// plantChaseViolation grounds a CDD body but replaces the chain-derivable
// atom with the chain's source fact, so the violation appears only after
// Depth chase steps.
func (g *generator) plantChaseViolation() {
	chain := g.chains[g.rng.Intn(len(g.chains))]
	cdd := g.cdds[chain.cddIdx]
	atoms := g.instantiate(cdd, nil)
	for i, a := range atoms {
		if i == chain.atomIdx {
			src := logic.NewAtom(chain.srcPred, a.Args...)
			g.markConflict(g.st.MustAdd(src))
			continue
		}
		g.markConflict(g.st.MustAdd(a))
	}
}

// pad fills the fact set up to NumFacts with atoms that cannot join
// anything: every position receives a globally unique padding constant, so
// no CDD body homomorphism can involve them.
func (g *generator) pad() {
	for g.st.Len() < g.p.NumFacts {
		pred := g.preds[g.rng.Intn(len(g.preds))]
		n := g.arity[pred]
		args := make([]logic.Term, n)
		for j := range args {
			g.padSeq++
			args[j] = logic.C("pad" + strconv.Itoa(g.padSeq))
		}
		g.st.MustAdd(logic.NewAtom(pred, args...))
	}
}

// ChaseOptionsFor returns chase options sized for generated KBs (the
// default budgets are ample; this exists so callers can tighten them).
func ChaseOptionsFor(p Params) chase.Options {
	return chase.Options{}
}
