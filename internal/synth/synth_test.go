package synth

import (
	"testing"

	"kbrepair/internal/conflict"
	"kbrepair/internal/inquiry"
)

func TestGenerateDefaults(t *testing.T) {
	g, err := Generate(Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.KB.Facts.Len() != 200 {
		t.Errorf("facts = %d, want 200", g.KB.Facts.Len())
	}
	if g.Info.NumCDDs != 10 {
		t.Errorf("cdds = %d", g.Info.NumCDDs)
	}
	if g.Info.NaiveConflicts == 0 {
		t.Error("no conflicts planted")
	}
	if g.Info.InconsistencyRatio < 0.05 {
		t.Errorf("inconsistency ratio %.3f too low", g.Info.InconsistencyRatio)
	}
	if err := g.KB.Validate(); err != nil {
		t.Errorf("generated KB invalid: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Seed: 42, NumFacts: 120, InconsistencyRatio: 0.2}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.KB.Facts.Equal(b.KB.Facts) {
		t.Error("same seed produced different facts")
	}
	if a.Info != b.Info {
		t.Errorf("same seed produced different info: %+v vs %+v", a.Info, b.Info)
	}
	c, err := Generate(Params{Seed: 43, NumFacts: 120, InconsistencyRatio: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if a.KB.Facts.Equal(c.KB.Facts) {
		t.Error("different seeds produced identical facts")
	}
}

func TestGenerateHitsInconsistencyRatio(t *testing.T) {
	for _, ratio := range []float64{0.05, 0.15, 0.3} {
		g, err := Generate(Params{Seed: 7, NumFacts: 300, InconsistencyRatio: ratio})
		if err != nil {
			t.Fatalf("ratio %.2f: %v", ratio, err)
		}
		got := g.Info.InconsistencyRatio
		if got < ratio*0.8 || got > ratio*1.8+0.05 {
			t.Errorf("ratio %.2f: generated %.3f", ratio, got)
		}
	}
}

func TestGeneratePaddingIsConflictFree(t *testing.T) {
	g, err := Generate(Params{Seed: 3, NumFacts: 150, InconsistencyRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Every atom with a "pad" constant must be absent from all conflicts.
	cs := conflict.AllNaive(g.KB.Facts, g.KB.CDDs)
	padFacts := make(map[int]bool)
	for _, id := range g.KB.Facts.IDs() {
		a := g.KB.Facts.FactRef(id)
		for _, arg := range a.Args {
			if len(arg.Name) > 3 && arg.Name[:3] == "pad" {
				padFacts[int(id)] = true
			}
		}
	}
	if len(padFacts) == 0 {
		t.Fatal("no padding generated")
	}
	for _, c := range cs {
		for _, f := range c.BaseFacts {
			if padFacts[int(f)] {
				t.Errorf("padding fact %d in conflict", f)
			}
		}
	}
}

func TestGenerateWithTGDs(t *testing.T) {
	g, err := Generate(Params{
		Seed: 11, NumFacts: 150, InconsistencyRatio: 0.2,
		NumCDDs: 8, NumTGDs: 10, Depth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Info.NumTGDs != 10 {
		t.Errorf("tgds = %d", g.Info.NumTGDs)
	}
	// Chase must derive something (the chains fire).
	if g.Info.ChaseSize <= g.Info.Facts {
		t.Errorf("chase derived nothing: %d <= %d", g.Info.ChaseSize, g.Info.Facts)
	}
	// Some conflicts only appear after the chase.
	if g.Info.TotalConflicts <= g.Info.NaiveConflicts {
		t.Errorf("no chase-only conflicts: total=%d naive=%d",
			g.Info.TotalConflicts, g.Info.NaiveConflicts)
	}
}

func TestGenerateDepthChainLength(t *testing.T) {
	// With Depth=3 and enough TGD budget, some conflicts need 3 chase
	// steps: verify the deepest chain exists by checking rule labels.
	g, err := Generate(Params{
		Seed: 5, NumFacts: 100, InconsistencyRatio: 0.3,
		NumCDDs: 5, NumTGDs: 9, Depth: 3, ChaseConflictFraction: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	chainRules := 0
	for _, tg := range g.KB.TGDs {
		if len(tg.Label) >= 5 && tg.Label[:5] == "chain" {
			chainRules++
		}
	}
	if chainRules != 9 {
		t.Errorf("chain rules = %d, want 9 (3 chains × depth 3)", chainRules)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Params{
		{Seed: 1, InconsistencyRatio: 1.5},
		{Seed: 1, CDDAtomsMin: 5, CDDAtomsMax: 2},
		{Seed: 1, ArityMin: 4, ArityMax: 2},
		{Seed: 1, NumTGDs: 2, Depth: 5},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

// TestGeneratedKBIsRepairable runs a full inquiry on a generated KB: the
// end-to-end integration of generator + engine.
func TestGeneratedKBIsRepairable(t *testing.T) {
	g, err := Generate(Params{
		Seed: 21, NumFacts: 60, InconsistencyRatio: 0.2,
		NumCDDs: 5, NumTGDs: 4, Depth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := inquiry.New(g.KB, inquiry.OptiMCD{}, inquiry.NewSimulatedUser(21), 21, inquiry.Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("inquiry left generated KB inconsistent")
	}
	if res.Questions == 0 {
		t.Error("no questions asked")
	}
}

func TestJoinPositionPct(t *testing.T) {
	g, err := Generate(Params{Seed: 2, JoinVarRatio: 0.8, NumFacts: 50, InconsistencyRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Info.JoinPositionPct <= 0 || g.Info.JoinPositionPct > 1 {
		t.Errorf("join pct = %f", g.Info.JoinPositionPct)
	}
	low, err := Generate(Params{Seed: 2, JoinVarRatio: 0.01, NumFacts: 50, InconsistencyRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if low.Info.JoinPositionPct > g.Info.JoinPositionPct {
		t.Errorf("join ratio param had no effect: %f vs %f",
			low.Info.JoinPositionPct, g.Info.JoinPositionPct)
	}
}
