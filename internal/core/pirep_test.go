package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// example37 builds the KB of Example 3.7: F = {p(a,b), q(b,d)},
// ΣC = {p(X,Y), q(Y,Z) → ⊥}, empty ΣT.
func example37(t testing.TB) *KB {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a"), logic.C("b")),
		logic.NewAtom("q", logic.C("b"), logic.C("d")),
	})
	cdd := logic.MustCDD([]logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		logic.NewAtom("q", logic.V("Y"), logic.V("Z")),
	})
	return MustKB(s, nil, []*logic.CDD{cdd})
}

func TestPiRepairableExample37(t *testing.T) {
	kb := example37(t)
	// Π = ∅ → repairable.
	ok, err := PiRepairable(kb, NewPi())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Π=∅ should always be repairable")
	}
	// Π = {(p(a,b),2), (q(b,d),1)} → NOT repairable (join pinned on b).
	pi := NewPi(
		Position{Fact: 0, Arg: 1},
		Position{Fact: 1, Arg: 0},
	)
	ok, err = PiRepairable(kb, pi)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("pinned join should make KB not Π-repairable")
	}
	// Pinning only one side keeps it repairable.
	ok, err = PiRepairable(kb, NewPi(Position{Fact: 0, Arg: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("one-sided pin wrongly unrepairable")
	}
	// Naive and optimized agree.
	for _, testPi := range []Pi{NewPi(), pi, NewPi(Position{Fact: 0, Arg: 1})} {
		o1, _ := PiRepairable(kb, testPi)
		o2, _ := PiRepairableNaive(kb, testPi)
		if o1 != o2 {
			t.Errorf("opt/naive disagree on Π=%v: %v vs %v", testPi, o1, o2)
		}
	}
}

func TestPiRepairabilityFullPiIsConsistencyCheck(t *testing.T) {
	kb := example37(t)
	// Π = pos(F) on an inconsistent KB → not Π-repairable.
	pi := NewPi(kb.Facts.Positions()...)
	ok, err := PiRepairable(kb, pi)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("full Π on inconsistent KB reported repairable")
	}
	// Repair, then full Π must be repairable (= consistent).
	kb.Facts.MustSetValue(Position{Fact: 0, Arg: 1}, logic.C("z"))
	ok, err = PiRepairable(kb, NewPi(kb.Facts.Positions()...))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("full Π on consistent KB reported unrepairable")
	}
}

func TestPiRepairableWithTGDInteraction(t *testing.T) {
	// p(a) with TGD p(X) → q(X) and CDD q(X), r(X) → ⊥, plus r(a).
	// Pinning both p(a)@1 and r(a)@1 makes the KB not Π-repairable: the TGD
	// regenerates q(a) no matter what.
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("r", logic.C("a")),
	})
	kb := MustKB(s,
		[]*logic.TGD{logic.MustTGD(
			[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
			[]logic.Atom{logic.NewAtom("q", logic.V("X"))},
		)},
		[]*logic.CDD{logic.MustCDD([]logic.Atom{
			logic.NewAtom("q", logic.V("X")),
			logic.NewAtom("r", logic.V("X")),
		})},
	)
	pi := NewPi(Position{Fact: 0, Arg: 0}, Position{Fact: 1, Arg: 0})
	ok, err := PiRepairable(kb, pi)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("TGD-propagated pin reported repairable")
	}
	// Unpinning the r fact restores repairability.
	ok, err = PiRepairable(kb, NewPi(Position{Fact: 0, Arg: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("partial pin reported unrepairable")
	}
}

func TestPiHelpers(t *testing.T) {
	p1 := Position{Fact: 0, Arg: 0}
	p2 := Position{Fact: 1, Arg: 1}
	pi := NewPi(p1)
	if !pi.Has(p1) || pi.Has(p2) {
		t.Error("Has wrong")
	}
	pi2 := pi.With(p2)
	if !pi2.Has(p2) || pi.Has(p2) {
		t.Error("With not copy-on-write")
	}
	c := pi.Clone()
	c.Add(p2)
	if pi.Has(p2) {
		t.Error("Clone shares storage")
	}
}

func TestPiCheckerFastPathNull(t *testing.T) {
	kb := example37(t)
	pc := NewPiChecker(kb)
	f := Fix{Pos: Position{Fact: 0, Arg: 1}, Value: kb.Facts.FreshNull()}
	ok, err := pc.CheckWithFix(NewPi(), f)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("fresh null fix rejected")
	}
	if pc.FastHits != 1 || pc.FullChecks != 0 {
		t.Errorf("fast=%d full=%d, want 1/0", pc.FastHits, pc.FullChecks)
	}
	// A null already in the store is NOT fast-safe.
	kb.Facts.MustAdd(logic.NewAtom("p", logic.N("used"), logic.C("k")))
	f2 := Fix{Pos: Position{Fact: 0, Arg: 1}, Value: logic.N("used")}
	_, err = pc.CheckWithFix(NewPi(), f2)
	if err != nil {
		t.Fatal(err)
	}
	if pc.FullChecks != 1 {
		t.Error("reused null took the fast path")
	}
}

func TestPiCheckerFastPathConstant(t *testing.T) {
	kb := example37(t)
	pc := NewPiChecker(kb)
	// A constant that appears nowhere in Π values nor in the rules is safe.
	f := Fix{Pos: Position{Fact: 0, Arg: 1}, Value: logic.C("unicorn")}
	ok, err := pc.CheckWithFix(NewPi(), f)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || pc.FastHits != 1 {
		t.Errorf("unused constant not fast-accepted (ok=%v fast=%d)", ok, pc.FastHits)
	}
	// The same constant sitting at a Π position forces a full check, and
	// here it creates the join p(·,unicorn), q(unicorn,·): unrepairable.
	kb.Facts.MustSetValue(Position{Fact: 1, Arg: 0}, logic.C("unicorn"))
	pi := NewPi(Position{Fact: 1, Arg: 0})
	ok, err = pc.CheckWithFix(pi, f)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("joining constant accepted")
	}
	if pc.FullChecks == 0 {
		t.Error("joining constant took the fast path")
	}
}

func TestPiCheckerConstantInRulesForcesFullCheck(t *testing.T) {
	// CDD mentions constant "bad": fixing any position to "bad" cannot take
	// the fast path.
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("x")),
	})
	kb := MustKB(s, nil, []*logic.CDD{logic.MustCDD([]logic.Atom{
		logic.NewAtom("p", logic.C("bad")),
	})})
	pc := NewPiChecker(kb)
	f := Fix{Pos: Position{Fact: 0, Arg: 0}, Value: logic.C("bad")}
	ok, err := pc.CheckWithFix(NewPi(), f)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("rule-constant fix accepted although it violates the CDD")
	}
	if pc.FastHits != 0 {
		t.Error("rule constant took the fast path")
	}
}

// Property: the optimized Π-checker agrees with the ground-truth Algorithm 1
// on random single-fix checks over random small KBs.
func TestPiCheckerAgreesWithAlgorithm1(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		consts := []logic.Term{logic.C("a"), logic.C("b"), logic.C("c")}
		s := store.New()
		for i := 0; i < 6; i++ {
			s.MustAdd(logic.NewAtom("p", consts[r.Intn(3)], consts[r.Intn(3)]))
		}
		for i := 0; i < 3; i++ {
			s.MustAdd(logic.NewAtom("q", consts[r.Intn(3)]))
		}
		cdds := []*logic.CDD{
			logic.MustCDD([]logic.Atom{
				logic.NewAtom("p", logic.V("X"), logic.V("Y")),
				logic.NewAtom("q", logic.V("Y")),
			}),
			logic.MustCDD([]logic.Atom{logic.NewAtom("p", logic.V("X"), logic.V("X"))}),
		}
		var tgds []*logic.TGD
		if r.Intn(2) == 0 {
			tgds = append(tgds, logic.MustTGD(
				[]logic.Atom{logic.NewAtom("q", logic.V("X"))},
				[]logic.Atom{logic.NewAtom("p", logic.V("X"), logic.V("X"))},
			))
		}
		kb := MustKB(s, tgds, cdds)
		pc := NewPiChecker(kb)

		pi := NewPi()
		for i := 0; i < 3; i++ {
			ps := kb.Facts.Positions()
			pi.Add(ps[r.Intn(len(ps))])
		}
		ps := kb.Facts.Positions()
		pos := ps[r.Intn(len(ps))]
		var v logic.Term
		switch r.Intn(3) {
		case 0:
			v = kb.Facts.FreshNull()
		case 1:
			v = consts[r.Intn(3)]
		default:
			v = logic.C("zz")
		}
		fx := Fix{Pos: pos, Value: v}

		// The fast path presumes the Algorithm 2 loop invariant that K is
		// Π-repairable; skip generated states where it does not hold.
		if ok, err := PiRepairable(kb, pi); err != nil || !ok {
			return err == nil
		}

		got, err := pc.CheckWithFix(pi, fx)
		if err != nil {
			return false
		}
		// Ground truth: apply the fix, run Algorithm 1 with Π ∪ {pos}.
		kb2 := kb.Clone()
		kb2.Facts.MustSetValue(pos, v)
		want, err := PiRepairable(kb2, pi.With(pos))
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestNulledCopyLabelCollision is a regression test: the Algorithm 1
// instance must never allocate a fresh null whose label collides with a
// null already sitting at a Π position (or handed out as a candidate fix
// value) — a collision fabricates joins and flips the answer.
func TestNulledCopyLabelCollision(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a"), logic.N("n1")),
		logic.NewAtom("q", logic.C("c"), logic.C("d")),
	})
	cdd := logic.MustCDD([]logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		logic.NewAtom("q", logic.V("Y"), logic.V("Z")),
	})
	kb := MustKB(s, nil, []*logic.CDD{cdd})
	// Pin the _:n1 position: with a colliding fresh null at q's first
	// argument the CDD body would spuriously match.
	pi := NewPi(Position{Fact: 0, Arg: 1})
	ok, err := PiRepairable(kb, pi)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("label collision fabricated a join: Π-repairable KB reported unrepairable")
	}
	// Same through the checker's full-check path: the fix value "d" occurs
	// at no Π position but is in the store, forcing a full check.
	pc := NewPiChecker(kb)
	pc.Optimized = false
	got, err := pc.CheckWithFix(pi, Fix{Pos: Position{Fact: 1, Arg: 0}, Value: logic.C("x")})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("full check fabricated a join under pinned null")
	}
}
