package core

import (
	"fmt"

	"kbrepair/internal/logic"
)

// IsCFix reports whether P is a consistent fix set (c-fix, Def. 3.4): the
// update apply(F, P) yields a consistent KB.
func IsCFix(kb *KB, fs FixSet) (bool, error) {
	mCFixChecks.Inc()
	if err := fs.Validate(); err != nil {
		return false, err
	}
	undo, err := ApplyInPlace(kb.Facts, fs)
	if err != nil {
		return false, err
	}
	ok, cerr := kb.IsConsistent()
	if _, uerr := ApplyInPlace(kb.Facts, undo); uerr != nil {
		return false, fmt.Errorf("undo failed: %v (original error: %v)", uerr, cerr)
	}
	return ok, cerr
}

// IsRFix reports whether P is a repair fix set (r-fix, Def. 3.4): a c-fix
// none of whose proper subsets is a c-fix. The check is exponential in |P|
// by definition; it refuses sets larger than maxExhaustiveRFix.
func IsRFix(kb *KB, fs FixSet) (bool, error) {
	fs = fs.Canonical()
	if len(fs) > maxExhaustiveRFix {
		return false, fmt.Errorf("r-fix check limited to %d fixes (got %d); use IsLocallyMinimalCFix", maxExhaustiveRFix, len(fs))
	}
	ok, err := IsCFix(kb, fs)
	if err != nil || !ok {
		return false, err
	}
	n := len(fs)
	for mask := 0; mask < (1 << n); mask++ {
		if mask == (1<<n)-1 { // the full set
			continue
		}
		sub := make(FixSet, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, fs[i])
			}
		}
		subOK, err := IsCFix(kb, sub)
		if err != nil {
			return false, err
		}
		if subOK {
			return false, nil
		}
	}
	return true, nil
}

const maxExhaustiveRFix = 16

// IsLocallyMinimalCFix reports whether P is a c-fix from which no single
// fix can be removed while preserving consistency — the practical
// polynomial-time approximation of the r-fix condition.
func IsLocallyMinimalCFix(kb *KB, fs FixSet) (bool, error) {
	fs = fs.Canonical()
	ok, err := IsCFix(kb, fs)
	if err != nil || !ok {
		return false, err
	}
	for _, f := range fs {
		subOK, err := IsCFix(kb, fs.Without(f))
		if err != nil {
			return false, err
		}
		if subOK {
			return false, nil
		}
	}
	return true, nil
}

// MinimizeCFix greedily shrinks a c-fix to a locally minimal one by
// repeatedly dropping any fix whose removal preserves consistency. The
// result applied to F gives a u-repair candidate whose fix set cannot be
// shrunk one fix at a time.
func MinimizeCFix(kb *KB, fs FixSet) (FixSet, error) {
	fs = fs.Canonical()
	ok, err := IsCFix(kb, fs)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("minimize: input is not a c-fix")
	}
	changed := true
	for changed {
		changed = false
		for _, f := range fs {
			cand := fs.Without(f)
			subOK, err := IsCFix(kb, cand)
			if err != nil {
				return nil, err
			}
			if subOK {
				fs = cand
				changed = true
				break
			}
		}
	}
	return fs, nil
}

// GuaranteedCFix returns the always-existing c-fix of §3: every position is
// set to a fresh existential variable unique to it, so no constraint can
// ever be triggered. It witnesses that every KB is repairable.
func GuaranteedCFix(kb *KB) FixSet {
	var out FixSet
	for _, p := range kb.Facts.Positions() {
		out = append(out, Fix{Pos: p, Value: kb.Facts.FreshNull()})
	}
	return out
}

// UpdateRepair materializes the u-repair apply(F, P) for an r-fix (or any
// fix set); it is a convenience wrapper around Apply.
func UpdateRepair(kb *KB, fs FixSet) (*KB, error) {
	s, err := Apply(kb.Facts, fs)
	if err != nil {
		return nil, err
	}
	return &KB{Facts: s, TGDs: kb.TGDs, CDDs: kb.CDDs, ChaseOpts: kb.ChaseOpts}, nil
}

// FixValues enumerates the candidate values for a position per Def. 3.1:
// the active domain of (pred, arg) minus the current value, plus one fresh
// null uniquely attributed to the position.
func FixValues(kb *KB, pos Position) []logic.Term {
	return FixValuesWith(kb, pos, kb.Facts.FreshNull())
}

// FixValuesWith is FixValues with the position's fresh null minted by the
// caller. Unlike FixValues it only reads the store, so callers generating
// fixes for many positions can mint the nulls sequentially (FreshNull
// advances the store's null sequence — its order must not depend on worker
// scheduling) and fan the active-domain enumeration out across workers.
func FixValuesWith(kb *KB, pos Position, null logic.Term) []logic.Term {
	a := kb.Facts.FactRef(pos.Fact)
	cur := kb.Facts.Value(pos)
	dom := kb.Facts.ActiveDomain(a.Pred, pos.Arg)
	out := make([]logic.Term, 0, len(dom)+1)
	for _, t := range dom {
		if t != cur {
			out = append(out, t)
		}
	}
	out = append(out, null)
	return out
}
