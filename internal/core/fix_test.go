package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// fig1a builds the Figure 1(a) knowledge base (CDDs only).
func fig1a(t testing.TB) *KB {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),    // 0
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),    // 1
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")), // 2
	})
	cdd := logic.MustCDD([]logic.Atom{
		logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
		logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
	})
	return MustKB(s, nil, []*logic.CDD{cdd})
}

func TestFixSetValidate(t *testing.T) {
	p := Position{Fact: 1, Arg: 1}
	ok := FixSet{
		{Pos: p, Value: logic.N("x1")},
		{Pos: Position{Fact: 2, Arg: 1}, Value: logic.C("Aspirin")},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	// Example 3.2's invalid P′: same position, two values.
	bad := append(ok, Fix{Pos: p, Value: logic.C("Penicillin")})
	if err := bad.Validate(); err == nil {
		t.Error("conflicting fixes accepted")
	}
	// Duplicate identical fixes are fine.
	dup := append(ok, ok[0])
	if err := dup.Validate(); err != nil {
		t.Errorf("duplicate fix rejected: %v", err)
	}
}

func TestApplyExample32(t *testing.T) {
	kb := fig1a(t)
	// P = {(A,2,X1), (A',2,Aspirin)} with A = hasAllergy(John, Aspirin),
	// A' = hasAllergy(Mike, Penicillin).
	fs := FixSet{
		{Pos: Position{Fact: 1, Arg: 1}, Value: logic.N("x1")},
		{Pos: Position{Fact: 2, Arg: 1}, Value: logic.C("Aspirin")},
	}
	fp, err := Apply(kb.Facts, fs)
	if err != nil {
		t.Fatal(err)
	}
	want := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),
		logic.NewAtom("hasAllergy", logic.C("John"), logic.N("x1")),
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Aspirin")),
	})
	if !fp.Equal(want) {
		t.Errorf("apply result:\n%s\nwant:\n%s", fp, want)
	}
	// Original untouched; sizes preserved.
	if kb.Facts.Value(Position{Fact: 1, Arg: 1}) != logic.C("Aspirin") {
		t.Error("Apply mutated input")
	}
	if fp.Len() != kb.Facts.Len() || fp.NumPositions() != kb.Facts.NumPositions() {
		t.Error("|F'| != |F| or pos changed")
	}
}

func TestApplyInPlaceUndo(t *testing.T) {
	kb := fig1a(t)
	orig := kb.Facts.Clone()
	fs := FixSet{
		{Pos: Position{Fact: 0, Arg: 0}, Value: logic.C("Nsaids")},
		{Pos: Position{Fact: 2, Arg: 0}, Value: logic.C("John")},
	}
	undo, err := ApplyInPlace(kb.Facts, fs)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Facts.Value(Position{Fact: 0, Arg: 0}) != logic.C("Nsaids") {
		t.Error("fix not applied")
	}
	if _, err := ApplyInPlace(kb.Facts, undo); err != nil {
		t.Fatal(err)
	}
	if !kb.Facts.Equal(orig) {
		t.Error("undo did not restore store")
	}
}

func TestApplyInPlaceNoopNotInUndo(t *testing.T) {
	kb := fig1a(t)
	fs := FixSet{{Pos: Position{Fact: 0, Arg: 0}, Value: logic.C("Aspirin")}} // same value
	undo, err := ApplyInPlace(kb.Facts, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(undo) != 0 {
		t.Errorf("noop produced undo entries: %v", undo)
	}
}

func TestApplyRejectsInvalidSet(t *testing.T) {
	kb := fig1a(t)
	p := Position{Fact: 0, Arg: 0}
	bad := FixSet{{Pos: p, Value: logic.C("a")}, {Pos: p, Value: logic.C("b")}}
	if _, err := Apply(kb.Facts, bad); err == nil {
		t.Error("invalid set applied")
	}
	if _, err := ApplyInPlace(kb.Facts, bad); err == nil {
		t.Error("invalid set applied in place")
	}
}

func TestDiffExample33(t *testing.T) {
	kb := fig1a(t)
	fs := FixSet{
		{Pos: Position{Fact: 1, Arg: 1}, Value: logic.N("x1")},
		{Pos: Position{Fact: 2, Arg: 1}, Value: logic.C("Aspirin")},
	}
	fp, err := Apply(kb.Facts, fs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Diff(kb.Facts, fp)
	if err != nil {
		t.Fatal(err)
	}
	if gs, ws := got.Canonical().String(), fs.Canonical().String(); gs != ws {
		t.Errorf("Diff = %s, want %s", gs, ws)
	}
}

func TestDiffErrors(t *testing.T) {
	a := store.MustFromAtoms([]logic.Atom{logic.NewAtom("p", logic.C("x"))})
	b := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("x")),
		logic.NewAtom("p", logic.C("y")),
	})
	if _, err := Diff(a, b); err == nil {
		t.Error("size mismatch accepted")
	}
	c := store.MustFromAtoms([]logic.Atom{logic.NewAtom("q", logic.C("x"))})
	if _, err := Diff(a, c); err == nil {
		t.Error("predicate mismatch accepted")
	}
}

func TestMatchByPredicate(t *testing.T) {
	f := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("p", logic.C("b")),
		logic.NewAtom("q", logic.C("c")),
	})
	// fp permutes the p-atoms and changes one value.
	fp := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("z")),
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("q", logic.C("c")),
	})
	m, err := MatchByPredicate(f, fp)
	if err != nil {
		t.Fatal(err)
	}
	// Exact matches first: p(a)→p(a) (id 1), q(c)→q(c); p(b)→p(z).
	if m[0] != 1 || m[2] != 2 || m[1] != 0 {
		t.Errorf("match = %v", m)
	}
	diff, err := DiffMatched(f, fp, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 1 || diff[0].Value != logic.C("z") {
		t.Errorf("DiffMatched = %v", diff)
	}
	// Unmatchable store.
	bad := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("r", logic.C("a")),
		logic.NewAtom("r", logic.C("b")),
		logic.NewAtom("r", logic.C("c")),
	})
	if _, err := MatchByPredicate(f, bad); err == nil {
		t.Error("impossible match accepted")
	}
}

func TestFixSetHelpers(t *testing.T) {
	f1 := Fix{Pos: Position{Fact: 0, Arg: 0}, Value: logic.C("a")}
	f2 := Fix{Pos: Position{Fact: 1, Arg: 0}, Value: logic.C("b")}
	fs := FixSet{f2, f1, f1}
	if !fs.Contains(f1) || fs.Contains(Fix{Pos: f1.Pos, Value: logic.C("z")}) {
		t.Error("Contains wrong")
	}
	if got := fs.Without(f1); len(got) != 1 || got[0] != f2 {
		t.Errorf("Without = %v", got)
	}
	if got := fs.Canonical(); len(got) != 2 || got[0] != f1 || got[1] != f2 {
		t.Errorf("Canonical = %v", got)
	}
	if got := fs.Positions(); len(got) != 2 {
		t.Errorf("Positions = %v", got)
	}
	if fs.String() == "" {
		t.Error("empty String")
	}
	if f1.Describe(fig1a(t).Facts) == "" {
		t.Error("empty Describe")
	}
}

// Property: for any valid fix set, Diff(F, Apply(F, P)) applied back to F
// reproduces Apply(F, P) — the reconstruction round trip of §3.
func TestApplyDiffRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := store.New()
		consts := []logic.Term{logic.C("a"), logic.C("b"), logic.C("c")}
		for i := 0; i < 8; i++ {
			s.MustAdd(logic.NewAtom("p", consts[r.Intn(3)], consts[r.Intn(3)]))
		}
		var fs FixSet
		seen := make(map[Position]bool)
		for i := 0; i < 5; i++ {
			p := Position{Fact: store.FactID(r.Intn(s.Len())), Arg: r.Intn(2)}
			if seen[p] {
				continue
			}
			seen[p] = true
			var v logic.Term
			if r.Intn(3) == 0 {
				v = s.FreshNull()
			} else {
				v = consts[r.Intn(3)]
			}
			fs = append(fs, Fix{Pos: p, Value: v})
		}
		fp, err := Apply(s, fs)
		if err != nil {
			return false
		}
		d, err := Diff(s, fp)
		if err != nil {
			return false
		}
		fp2, err := Apply(s, d)
		if err != nil {
			return false
		}
		return fp2.Equal(fp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
