// Package core implements the paper's primary contribution: update-based
// repairing of knowledge bases equipped with TGDs and CDDs — positions,
// fixes, fix application and reconstruction (diff), consistent and repair
// fixes (c-fix / r-fix), u-repairs, and Π-repairability (Algorithm 1)
// together with its optimized variant Π-RepOpt (§5).
package core

import (
	"fmt"

	"kbrepair/internal/chase"
	"kbrepair/internal/conflict"
	"kbrepair/internal/homo"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// KB is a knowledge base K = (F, ΣT, ΣC): a finite set of facts, TGDs and
// CDDs. The fact store is owned by the KB; rules are immutable and shared
// freely between copies.
type KB struct {
	Facts *store.Store
	TGDs  []*logic.TGD
	CDDs  []*logic.CDD
	// ChaseOpts bounds chase runs made on behalf of this KB.
	ChaseOpts chase.Options
}

// NewKB assembles a knowledge base and validates it: all rules must be
// structurally well-formed and the TGD set weakly acyclic (the paper's
// termination condition).
func NewKB(facts *store.Store, tgds []*logic.TGD, cdds []*logic.CDD) (*KB, error) {
	kb := &KB{Facts: facts, TGDs: tgds, CDDs: cdds}
	if err := kb.Validate(); err != nil {
		return nil, err
	}
	return kb, nil
}

// MustKB is like NewKB but panics on error.
func MustKB(facts *store.Store, tgds []*logic.TGD, cdds []*logic.CDD) *KB {
	kb, err := NewKB(facts, tgds, cdds)
	if err != nil {
		panic(err)
	}
	return kb
}

// Validate checks rule well-formedness and weak acyclicity of the TGDs.
func (kb *KB) Validate() error {
	if kb.Facts == nil {
		return fmt.Errorf("kb: nil fact store")
	}
	for _, t := range kb.TGDs {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	for _, c := range kb.CDDs {
		if err := c.Validate(); err != nil {
			return err
		}
		if IsDegenerateCDD(c) {
			return fmt.Errorf("kb: CDD %s is degenerate: its body folds onto a single anonymized fact, "+
				"so it forbids a predicate outright and no u-repair can ever satisfy it", c)
		}
	}
	if rep := chase.IsWeaklyAcyclic(kb.TGDs); !rep.Acyclic {
		return fmt.Errorf("kb: TGDs not weakly acyclic (cycle: %v)", rep.Cycle)
	}
	return nil
}

// IsDegenerateCDD reports whether the CDD's body has a homomorphism into
// the fully anonymized instance holding one all-distinct-nulls fact per
// body predicate. Such a CDD is violated by *any* data over its predicates
// — even data whose every position is a unique unknown — which makes it a
// schema constraint ("this predicate must be empty") rather than a
// contradiction detector, and voids the §3 repairability guarantee. The
// paper's join-variable meaningfulness assumption is intended to exclude
// exactly these.
func IsDegenerateCDD(c *logic.CDD) bool {
	anon := store.New()
	added := make(map[string]bool)
	for _, a := range c.Body {
		if !added[a.Pred] {
			added[a.Pred] = true
			args := make([]logic.Term, a.Arity())
			for i := range args {
				args[i] = anon.FreshNull()
			}
			anon.MustAdd(logic.NewAtom(a.Pred, args...))
		}
	}
	// Compiled uncached on purpose: the shared plan cache key {c, TagBody} is
	// the one conflict scanning uses, and validation runs before any real
	// scan. Binding the cached plan's join order to this one-fact anonymized
	// store would poison the order for the store that matters.
	return homo.Compile(c.Body).Exists(anon)
}

// Clone returns a copy of the KB with an independent fact store. Rules are
// shared (they are immutable once built).
func (kb *KB) Clone() *KB {
	return &KB{
		Facts:     kb.Facts.Clone(),
		TGDs:      kb.TGDs,
		CDDs:      kb.CDDs,
		ChaseOpts: kb.ChaseOpts,
	}
}

// IsConsistent runs the optimized consistency check (CheckConsistency-Opt):
// the chase with CDDs compiled to ⊥-rules, aborted as soon as ⊥ appears.
func (kb *KB) IsConsistent() (bool, error) {
	return chase.IsConsistentOpt(kb.Facts, kb.TGDs, kb.CDDs, kb.ChaseOpts)
}

// IsConsistentUnder is IsConsistent with the check's chase span parented
// under the given trace span id.
func (kb *KB) IsConsistentUnder(parent uint64) (bool, error) {
	opts := kb.ChaseOpts
	opts.TraceParent = parent
	return chase.IsConsistentOpt(kb.Facts, kb.TGDs, kb.CDDs, opts)
}

// IsConsistentNaive runs the unoptimized check: full chase, then evaluate
// every CDD body.
func (kb *KB) IsConsistentNaive() (bool, error) {
	return chase.IsConsistentNaive(kb.Facts, kb.TGDs, kb.CDDs, kb.ChaseOpts)
}

// AllConflicts computes allconflicts(K) on the chased KB.
func (kb *KB) AllConflicts() ([]*conflict.Conflict, *chase.Result, error) {
	return conflict.All(kb.Facts, kb.TGDs, kb.CDDs, kb.ChaseOpts)
}

// AllConflictsUnder is AllConflicts with the scan's trace span parented
// under the given trace span id — the causal hook the inquiry engine uses
// to attribute detection time to the question that triggered it.
func (kb *KB) AllConflictsUnder(parent uint64) ([]*conflict.Conflict, *chase.Result, error) {
	opts := kb.ChaseOpts
	opts.TraceParent = parent
	return conflict.All(kb.Facts, kb.TGDs, kb.CDDs, opts)
}

// NaiveConflicts computes allconflicts_naive(K) on the base facts only.
func (kb *KB) NaiveConflicts() []*conflict.Conflict {
	return conflict.AllNaive(kb.Facts, kb.CDDs)
}

// RulesCompatible checks the paper's standing assumption that ΣT and ΣC
// are compatible, in the sense the repairing framework needs: the fully
// anonymized instance over the rule vocabulary — one fact per predicate
// with a distinct fresh null in every position — must be consistent. When
// it is not, some CDD is violated by TGD derivations alone (joins forced by
// frontier-variable copying or head constants), which would make every KB
// mentioning those predicates unrepairable and void the §3 repairability
// guarantee.
func (kb *KB) RulesCompatible() (bool, error) {
	rs := logic.RuleSet{TGDs: kb.TGDs, CDDs: kb.CDDs}
	preds := rs.Predicates()
	if len(preds) == 0 {
		return true, nil
	}
	anon := store.New()
	for p, arity := range preds {
		args := make([]logic.Term, arity)
		for i := range args {
			args[i] = anon.FreshNull()
		}
		anon.MustAdd(logic.NewAtom(p, args...))
	}
	return chase.IsConsistentOpt(anon, kb.TGDs, kb.CDDs, kb.ChaseOpts)
}

// Chase returns the chase Cl_ΣT(F) of the KB's facts.
func (kb *KB) Chase() (*chase.Result, error) {
	return chase.Run(kb.Facts, kb.TGDs, kb.ChaseOpts)
}
