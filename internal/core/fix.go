package core

import (
	"fmt"
	"sort"
	"strings"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// Fix is a position fix (Def. 3.1): an instruction to set position Pos to
// Value. Valid values are either members of the position's active domain
// different from the current value, or a fresh labeled null uniquely
// attributed to the position.
type Fix struct {
	Pos   store.Position
	Value logic.Term
}

// String renders the fix as "(fact#i@j := value)".
func (f Fix) String() string {
	return fmt.Sprintf("(%s := %s)", f.Pos, f.Value)
}

// Describe renders the fix against a store, in the paper's (A, i, t)
// notation with 1-based argument indexes.
func (f Fix) Describe(s *store.Store) string {
	return fmt.Sprintf("(%s, %d, %s)", s.FactRef(f.Pos.Fact), f.Pos.Arg+1, f.Value)
}

// FixSet is a set of fixes P.
type FixSet []Fix

// Validate enforces the paper's validity condition: no two fixes on the
// same position with different values (§3). Duplicate identical fixes are
// tolerated.
func (fs FixSet) Validate() error {
	seen := make(map[store.Position]logic.Term, len(fs))
	for _, f := range fs {
		if prev, ok := seen[f.Pos]; ok && prev != f.Value {
			return fmt.Errorf("invalid fix set: position %s assigned both %s and %s", f.Pos, prev, f.Value)
		}
		seen[f.Pos] = f.Value
	}
	return nil
}

// Positions returns the set of positions touched by the fixes.
func (fs FixSet) Positions() []store.Position {
	seen := make(map[store.Position]bool, len(fs))
	var out []store.Position
	for _, f := range fs {
		if !seen[f.Pos] {
			seen[f.Pos] = true
			out = append(out, f.Pos)
		}
	}
	return out
}

// Contains reports whether the set holds the exact fix.
func (fs FixSet) Contains(f Fix) bool {
	for _, g := range fs {
		if g == f {
			return true
		}
	}
	return false
}

// Without returns a copy of the set with the given fix removed.
func (fs FixSet) Without(f Fix) FixSet {
	out := make(FixSet, 0, len(fs))
	for _, g := range fs {
		if g != f {
			out = append(out, g)
		}
	}
	return out
}

// Canonical returns a sorted, deduplicated copy (for comparisons and stable
// output).
func (fs FixSet) Canonical() FixSet {
	out := append(FixSet(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			if out[i].Pos.Fact != out[j].Pos.Fact {
				return out[i].Pos.Fact < out[j].Pos.Fact
			}
			return out[i].Pos.Arg < out[j].Pos.Arg
		}
		return out[i].Value.Compare(out[j].Value) < 0
	})
	dedup := out[:0]
	for i, f := range out {
		if i == 0 || f != out[i-1] {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// String renders the set in canonical order.
func (fs FixSet) String() string {
	parts := make([]string, 0, len(fs))
	for _, f := range fs.Canonical() {
		parts = append(parts, f.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Apply computes apply(F, P): a new store with every fix applied. The input
// store is unchanged; fact ids are preserved (|F′| = |F|, pos(F′) = pos(F)).
func Apply(s *store.Store, fs FixSet) (*store.Store, error) {
	if err := fs.Validate(); err != nil {
		return nil, err
	}
	out := s.Clone()
	for _, f := range fs {
		if _, err := out.SetValue(f.Pos, f.Value); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ApplyInPlace applies the fixes directly to s and returns the inverse fix
// set that undoes them (apply the result, in any order, to restore s).
func ApplyInPlace(s *store.Store, fs FixSet) (FixSet, error) {
	if err := fs.Validate(); err != nil {
		return nil, err
	}
	undo := make(FixSet, 0, len(fs))
	for _, f := range fs {
		prev, err := s.SetValue(f.Pos, f.Value)
		if err != nil {
			// Roll back what we already changed.
			for i := len(undo) - 1; i >= 0; i-- {
				s.MustSetValue(undo[i].Pos, undo[i].Value)
			}
			return nil, err
		}
		if prev != f.Value {
			undo = append(undo, Fix{Pos: f.Pos, Value: prev})
		}
	}
	// Reverse so that re-applying in order undoes correctly even with
	// repeated positions (which Validate rules out, but be safe).
	for i, j := 0, len(undo)-1; i < j; i, j = i+1, j-1 {
		undo[i], undo[j] = undo[j], undo[i]
	}
	return undo, nil
}

// Diff reconstructs the fix set P = diff(F, F′) between a store and its
// update (§3). The two stores must have the same fact ids with the same
// predicates — which is exactly the paper's match(x) one-to-one
// correspondence, realized here by fact identity.
func Diff(f, fp *store.Store) (FixSet, error) {
	if f.Len() != fp.Len() {
		return nil, fmt.Errorf("diff: stores have different sizes (%d vs %d)", f.Len(), fp.Len())
	}
	var out FixSet
	for _, id := range f.IDs() {
		a, b := f.FactRef(id), fp.FactRef(id)
		if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
			return nil, fmt.Errorf("diff: fact %d mismatch: %s vs %s", id, a, b)
		}
		for i := range a.Args {
			if a.Args[i] != b.Args[i] {
				out = append(out, Fix{Pos: store.Position{Fact: id, Arg: i}, Value: b.Args[i]})
			}
		}
	}
	return out, nil
}

// MatchByPredicate builds a one-to-one, predicate-preserving correspondence
// between two equal-size stores (the paper's match(x)), preferring exact
// atom matches, and returns for each fact id of f the id of its partner in
// fp. It errors when no such bijection exists.
func MatchByPredicate(f, fp *store.Store) (map[store.FactID]store.FactID, error) {
	if f.Len() != fp.Len() {
		return nil, fmt.Errorf("match: stores have different sizes (%d vs %d)", f.Len(), fp.Len())
	}
	match := make(map[store.FactID]store.FactID, f.Len())
	used := make(map[store.FactID]bool, fp.Len())
	// First pass: exact atoms (these yield empty diffs, the best match).
	for _, id := range f.IDs() {
		for _, cand := range fp.FindExact(f.FactRef(id)) {
			if !used[cand] {
				match[id] = cand
				used[cand] = true
				break
			}
		}
	}
	// Second pass: any same-predicate, same-arity partner.
	for _, id := range f.IDs() {
		if _, done := match[id]; done {
			continue
		}
		a := f.FactRef(id)
		found := false
		for _, cand := range fp.ByPredicate(a.Pred) {
			if used[cand] || fp.Arity(cand) != len(a.Args) {
				continue
			}
			match[id] = cand
			used[cand] = true
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("match: no partner for fact %d (%s)", id, a)
		}
	}
	return match, nil
}

// DiffMatched computes the fix set induced by an explicit correspondence
// (as returned by MatchByPredicate): for each matched pair, positions where
// the partner differs become fixes.
func DiffMatched(f, fp *store.Store, match map[store.FactID]store.FactID) (FixSet, error) {
	var out FixSet
	for _, id := range f.IDs() {
		pid, ok := match[id]
		if !ok {
			return nil, fmt.Errorf("diff: fact %d unmatched", id)
		}
		a, b := f.FactRef(id), fp.FactRef(pid)
		if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
			return nil, fmt.Errorf("diff: matched facts %d/%d differ in predicate", id, pid)
		}
		for i := range a.Args {
			if a.Args[i] != b.Args[i] {
				out = append(out, Fix{Pos: store.Position{Fact: id, Arg: i}, Value: b.Args[i]})
			}
		}
	}
	return out, nil
}
