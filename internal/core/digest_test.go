package core

import (
	"strings"
	"testing"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

func digestKB(t *testing.T) *KB {
	t.Helper()
	facts := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("emp", logic.C("ann"), logic.C("sales")),
		logic.NewAtom("emp", logic.C("bob"), logic.C("hr")),
		logic.NewAtom("dept", logic.C("sales")),
	})
	// One CDD: no employee in "hr" — violated by bob.
	cdd := &logic.CDD{
		Label: "no_hr",
		Body:  []logic.Atom{logic.NewAtom("emp", logic.V("x"), logic.C("hr"))},
	}
	return MustKB(facts, nil, []*logic.CDD{cdd})
}

func TestDigestKB(t *testing.T) {
	d := DigestKB(digestKB(t))
	if d.Facts != 3 || d.TGDs != 0 || d.CDDs != 1 {
		t.Fatalf("digest counts = %+v", d)
	}
	if d.Predicates["emp"] != 2 || d.Predicates["dept"] != 1 {
		t.Fatalf("predicate counts = %v", d.Predicates)
	}
	if d.NaiveConflicts != 1 {
		t.Fatalf("naive conflicts = %d, want 1", d.NaiveConflicts)
	}
}

func TestDigestDiff(t *testing.T) {
	kb := digestKB(t)
	d := DigestKB(kb)
	if got := d.Diff(d); got != "" {
		t.Fatalf("self-diff = %q, want empty", got)
	}

	other := kb.Clone()
	other.Facts.MustAdd(logic.NewAtom("dept", logic.C("hr")))
	od := DigestKB(other)
	diff := d.Diff(od)
	if !strings.Contains(diff, "facts 3 vs 4") {
		t.Errorf("diff misses fact count: %q", diff)
	}
	if !strings.Contains(diff, "predicate dept 1 vs 2") {
		t.Errorf("diff misses predicate count: %q", diff)
	}
	if strings.Contains(diff, "tgds") {
		t.Errorf("diff reports unchanged field: %q", diff)
	}
}
