package core

import (
	"testing"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// fig1bCore builds the Figure 1(b) KB (CDDs + TGD).
func fig1bCore(t testing.TB) *KB {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),         // 0
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),         // 1
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")),      // 2
		logic.NewAtom("hasPain", logic.C("John"), logic.C("Migraine")),           // 3
		logic.NewAtom("isPainKillerFor", logic.C("Nsaids"), logic.C("Migraine")), // 4
		logic.NewAtom("incompatible", logic.C("Aspirin"), logic.C("Nsaids")),     // 5
	})
	tgds := []*logic.TGD{logic.MustTGD(
		[]logic.Atom{
			logic.NewAtom("isPainKillerFor", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasPain", logic.V("Z"), logic.V("Y")),
		},
		[]logic.Atom{logic.NewAtom("prescribed", logic.V("X"), logic.V("Z"))},
	)}
	cdds := []*logic.CDD{
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
		}),
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("prescribed", logic.V("X"), logic.V("Z")),
			logic.NewAtom("prescribed", logic.V("Y"), logic.V("Z")),
			logic.NewAtom("incompatible", logic.V("X"), logic.V("Y")),
		}),
	}
	return MustKB(s, tgds, cdds)
}

func TestKBValidate(t *testing.T) {
	kb := fig1bCore(t)
	if err := kb.Validate(); err != nil {
		t.Fatal(err)
	}
	// Non weakly acyclic TGD set must be rejected.
	bad := &KB{
		Facts: store.New(),
		TGDs: []*logic.TGD{logic.MustTGD(
			[]logic.Atom{logic.NewAtom("p", logic.V("X"), logic.V("Y"))},
			[]logic.Atom{logic.NewAtom("p", logic.V("Y"), logic.V("Z"))},
		)},
	}
	if err := bad.Validate(); err == nil {
		t.Error("cyclic TGDs accepted")
	}
	if err := (&KB{}).Validate(); err == nil {
		t.Error("nil store accepted")
	}
}

func TestKBConsistencyAndConflicts(t *testing.T) {
	kb := fig1bCore(t)
	ok, err := kb.IsConsistent()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Figure 1(b) KB reported consistent")
	}
	naive := kb.NaiveConflicts()
	if len(naive) != 1 {
		t.Errorf("naive conflicts = %d, want 1", len(naive))
	}
	all, _, err := kb.AllConflicts()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("all conflicts = %d, want 2", len(all))
	}
}

func TestRulesCompatible(t *testing.T) {
	kb := fig1bCore(t)
	ok, err := kb.RulesCompatible()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("compatible rules reported incompatible")
	}
	// Incompatible: TGD forces q(X) from p(X), CDD forbids p and q together.
	bad := MustKB(store.New(),
		[]*logic.TGD{logic.MustTGD(
			[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
			[]logic.Atom{logic.NewAtom("q", logic.V("X"))},
		)},
		[]*logic.CDD{logic.MustCDD([]logic.Atom{
			logic.NewAtom("p", logic.V("X")),
			logic.NewAtom("q", logic.V("X")),
		})},
	)
	ok, err = bad.RulesCompatible()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("incompatible rules reported compatible")
	}
}

func TestIsCFixExample35(t *testing.T) {
	kb := fig1a(t)
	orig := kb.Facts.Clone()
	p := FixSet{
		{Pos: Position{Fact: 1, Arg: 1}, Value: logic.N("x1")},
		{Pos: Position{Fact: 2, Arg: 1}, Value: logic.C("Aspirin")},
	}
	ok, err := IsCFix(kb, p)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("P should be a c-fix (Example 3.5)")
	}
	// P1 = P \ {(A',2,Aspirin)} is an r-fix.
	p1 := p.Without(Fix{Pos: Position{Fact: 2, Arg: 1}, Value: logic.C("Aspirin")})
	if ok, err := IsRFix(kb, p1); err != nil || !ok {
		t.Errorf("P1 r-fix = %v, %v; want true", ok, err)
	}
	// P2 = P \ {(A,2,X1)} is not even a c-fix.
	p2 := p.Without(Fix{Pos: Position{Fact: 1, Arg: 1}, Value: logic.N("x1")})
	if ok, err := IsCFix(kb, p2); err != nil || ok {
		t.Errorf("P2 c-fix = %v, %v; want false", ok, err)
	}
	// P itself is a c-fix but not an r-fix (P1 ⊂ P is a c-fix).
	if ok, err := IsRFix(kb, p); err != nil || ok {
		t.Errorf("P r-fix = %v, %v; want false", ok, err)
	}
	// All checks must leave the KB untouched.
	if !kb.Facts.Equal(orig) {
		t.Error("c-fix/r-fix checks mutated the KB")
	}
}

func TestMinimizeCFix(t *testing.T) {
	kb := fig1a(t)
	p := FixSet{
		{Pos: Position{Fact: 1, Arg: 1}, Value: logic.N("x1")},
		{Pos: Position{Fact: 2, Arg: 1}, Value: logic.C("Aspirin")},
	}
	min, err := MinimizeCFix(kb, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 1 {
		t.Fatalf("minimized to %v", min)
	}
	if ok, _ := IsLocallyMinimalCFix(kb, min); !ok {
		t.Error("minimized set not locally minimal")
	}
	// Minimizing a non-c-fix errors.
	if _, err := MinimizeCFix(kb, FixSet{}); err == nil {
		t.Error("empty set (not a c-fix here) minimized")
	}
}

func TestGuaranteedCFix(t *testing.T) {
	for _, kb := range []*KB{fig1a(t), fig1bCore(t)} {
		fs := GuaranteedCFix(kb)
		if len(fs) != kb.Facts.NumPositions() {
			t.Errorf("guaranteed c-fix touches %d positions, want %d", len(fs), kb.Facts.NumPositions())
		}
		ok, err := IsCFix(kb, fs)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Error("guaranteed c-fix is not a c-fix")
		}
	}
}

func TestUpdateRepair(t *testing.T) {
	kb := fig1a(t)
	fs := FixSet{{Pos: Position{Fact: 1, Arg: 1}, Value: logic.N("x1")}}
	repaired, err := UpdateRepair(kb, fs)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := repaired.IsConsistent()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("u-repair inconsistent")
	}
	// F3 of Example 1.3.
	if !repaired.Facts.Contains(logic.NewAtom("hasAllergy", logic.C("John"), logic.N("x1"))) {
		t.Error("u-repair content wrong")
	}
}

func TestFixValues(t *testing.T) {
	kb := fig1a(t)
	// Position (hasAllergy(John,Aspirin), 2): adom = {Aspirin, Penicillin};
	// candidates = {Penicillin} ∪ {fresh null}.
	vals := FixValues(kb, Position{Fact: 1, Arg: 1})
	if len(vals) != 2 {
		t.Fatalf("FixValues = %v", vals)
	}
	if vals[0] != logic.C("Penicillin") {
		t.Errorf("domain candidate = %v", vals[0])
	}
	if !vals[1].IsNull() {
		t.Errorf("last candidate not a null: %v", vals[1])
	}
	// The null must be fresh (unused in the store).
	if kb.Facts.OccursAnywhere(vals[1]) {
		t.Error("fresh null already in use")
	}
}

func TestIsRFixRefusesLargeSets(t *testing.T) {
	kb := fig1a(t)
	var fs FixSet
	for i := 0; i < maxExhaustiveRFix+1; i++ {
		fs = append(fs, Fix{Pos: Position{Fact: 0, Arg: 0}, Value: logic.C("v")})
	}
	// Canonical dedupes, so build genuinely distinct fixes.
	fs = nil
	for i := 0; i <= maxExhaustiveRFix; i++ {
		fs = append(fs, Fix{Pos: Position{Fact: 0, Arg: 0}, Value: logic.C(string(rune('a' + i)))})
	}
	if _, err := IsRFix(kb, fs); err == nil {
		t.Error("oversized r-fix check did not refuse")
	}
}

func TestKBClone(t *testing.T) {
	kb := fig1bCore(t)
	c := kb.Clone()
	c.Facts.MustSetValue(Position{Fact: 0, Arg: 0}, logic.C("Z"))
	if kb.Facts.Value(Position{Fact: 0, Arg: 0}) != logic.C("Aspirin") {
		t.Error("clone shares fact store")
	}
}
