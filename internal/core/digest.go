package core

import (
	"fmt"
	"sort"
	"strings"
)

// Digest is a compact structural fingerprint of a knowledge base: the
// counts a post-mortem reader needs to recognise which KB a debug bundle or
// inquiry journal belongs to, without shipping the facts themselves. Two
// KBs with different digests are certainly different; equal digests mean
// "same shape" — good enough to catch the common replay mistake of pointing
// a journal at the wrong input file.
type Digest struct {
	// Facts is the number of live facts, TGDs and CDDs the rule counts.
	Facts int `json:"facts"`
	TGDs  int `json:"tgds"`
	CDDs  int `json:"cdds"`
	// Predicates maps each predicate name to its live fact count.
	Predicates map[string]int `json:"predicates,omitempty"`
	// NaiveConflicts is the number of CDD violations on the stored facts
	// alone (no chase) — cheap to compute and very sensitive to edits.
	NaiveConflicts int `json:"naive_conflicts"`
}

// DigestKB fingerprints kb. It runs the naive conflict scan, so the cost is
// one pass over the CDDs against the stored facts — fine at session start,
// not meant for a per-question loop.
func DigestKB(kb *KB) Digest {
	d := Digest{
		Facts: kb.Facts.Len(),
		TGDs:  len(kb.TGDs),
		CDDs:  len(kb.CDDs),
	}
	preds := kb.Facts.Predicates()
	if len(preds) > 0 {
		d.Predicates = make(map[string]int, len(preds))
		for _, p := range preds {
			d.Predicates[p] = len(kb.Facts.ByPredicate(p))
		}
	}
	d.NaiveConflicts = len(kb.NaiveConflicts())
	return d
}

// Diff describes how o differs from d, one clause per mismatching field,
// in a stable order. It returns "" when the digests match — callers use it
// both as an equality test and as the error detail when they don't.
func (d Digest) Diff(o Digest) string {
	var parts []string
	add := func(what string, a, b int) {
		if a != b {
			parts = append(parts, fmt.Sprintf("%s %d vs %d", what, a, b))
		}
	}
	add("facts", d.Facts, o.Facts)
	add("tgds", d.TGDs, o.TGDs)
	add("cdds", d.CDDs, o.CDDs)
	add("naive conflicts", d.NaiveConflicts, o.NaiveConflicts)

	names := make(map[string]bool, len(d.Predicates)+len(o.Predicates))
	for p := range d.Predicates {
		names[p] = true
	}
	for p := range o.Predicates {
		names[p] = true
	}
	sorted := make([]string, 0, len(names))
	for p := range names {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	for _, p := range sorted {
		add("predicate "+p, d.Predicates[p], o.Predicates[p])
	}
	return strings.Join(parts, ", ")
}
