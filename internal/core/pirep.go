package core

import (
	"fmt"
	"sync/atomic"

	"kbrepair/internal/chase"
	"kbrepair/internal/logic"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/par"
	"kbrepair/internal/store"
)

// Π-repairability instrumentation: how question filtering splits between
// the Π-RepOpt fast path and full Algorithm 1 runs, and what the full runs
// cost. The PiChecker's own FastHits/FullChecks fields remain the
// per-session view used by the ablation tables.
var (
	mPiFast      = obs.NewCounter("core.pi_fast_hits")
	mPiFull      = obs.NewCounter("core.pi_full_checks")
	mPiCheckTime = obs.NewHistogram("core.pi_check_seconds", obs.LatencyBuckets)
	mCFixChecks  = obs.NewCounter("core.cfix_checks")
)

// Per-cause attribution families: Π-check work billed to the CDD whose
// conflict triggered the question being filtered (see PiChecker.SetCause).
var (
	attrPiFast = attr.NewCounterVec(attr.FamPiFastHits)
	attrPiFull = attr.NewCounterVec(attr.FamPiFullChecks)
	attrPiTime = attr.NewHistogramVec(attr.FamPiCheckSeconds, obs.LatencyBuckets)
)

// Position aliases store.Position; it is re-exported here because the core
// API (fixes, Π sets) speaks in positions constantly.
type Position = store.Position

// Pi is a set of immutable positions Π ⊆ pos(F).
type Pi map[Position]bool

// NewPi builds a Π set from positions.
func NewPi(ps ...Position) Pi {
	pi := make(Pi, len(ps))
	for _, p := range ps {
		pi[p] = true
	}
	return pi
}

// Clone returns a copy of the set.
func (pi Pi) Clone() Pi {
	out := make(Pi, len(pi))
	for p := range pi {
		out[p] = true
	}
	return out
}

// With returns a copy extended with p.
func (pi Pi) With(p Position) Pi {
	out := pi.Clone()
	out[p] = true
	return out
}

// Add inserts p in place.
func (pi Pi) Add(p Position) { pi[p] = true }

// Has reports membership.
func (pi Pi) Has(p Position) bool { return pi[p] }

// nulledCopy builds the Algorithm 1 instance in one pass: a store with the
// same fact ids where every position outside Π holds a fresh existential
// variable and Π positions keep their values.
func nulledCopy(facts *store.Store, pi Pi) *store.Store {
	out := store.New()
	// Never allocate a null label the source store may already contain (at
	// a Π position) or may already have handed out as a candidate fix
	// value — a label collision would fabricate joins.
	out.ReserveNulls(facts.NullSeq())
	for _, id := range facts.IDs() {
		a := facts.Fact(id)
		for i := range a.Args {
			if !pi.Has(Position{Fact: id, Arg: i}) {
				a.Args[i] = out.FreshNull()
			}
		}
		out.MustAdd(a)
	}
	return out
}

// PiRepairable implements Algorithm 1 (Π-REP): every position outside Π is
// replaced by a fresh existential variable, and the resulting KB is checked
// for consistency. K is Π-repairable iff that KB is consistent
// (Proposition 3.8). The input KB is not modified.
func PiRepairable(kb *KB, pi Pi) (bool, error) {
	return chase.IsConsistentOpt(nulledCopy(kb.Facts, pi), kb.TGDs, kb.CDDs, kb.ChaseOpts)
}

// PiRepairableNaive is Algorithm 1 with the unoptimized consistency check
// (full chase, then CDD evaluation). Kept for the ablation benchmarks.
func PiRepairableNaive(kb *KB, pi Pi) (bool, error) {
	return chase.IsConsistentNaive(nulledCopy(kb.Facts, pi), kb.TGDs, kb.CDDs, kb.ChaseOpts)
}

// PiChecker performs the repeated Π-repairability checks of question
// generation, with the Π-RepOpt fast path of §5. Create one per KB/session;
// it caches the set of constants appearing in the rules.
type PiChecker struct {
	kb        *KB
	ruleConst map[logic.Term]bool
	// Optimized disables the fast path when false (ablation).
	Optimized bool
	// FastHits / FullChecks count how often each path ran (observability
	// for the ablation benchmarks).
	FastHits   int
	FullChecks int
	// cause is the attribution ID of the CDD whose conflict caused the
	// current batch (attr.None when unknown). Atomic because checkChunk
	// reads it from worker goroutines.
	cause atomic.Int32
	// traceParent is the span id subsequent core.pi_batch spans are
	// parented under (0 for roots). Atomic for the same reason as cause:
	// set by the engine goroutine, consistent to read anywhere.
	traceParent atomic.Uint64
}

// SetCause attributes subsequent Π-check work to the given ID — the inquiry
// engine sets it to the causing conflict's CDD before each SOUNDQUESTION.
func (pc *PiChecker) SetCause(id attr.ID) { pc.cause.Store(int32(id)) }

// SetTraceParent parents subsequent Π-batch trace spans under the given
// span id — the inquiry engine points it at the question-generation span
// before each SOUNDQUESTION, mirroring SetCause.
func (pc *PiChecker) SetTraceParent(id uint64) { pc.traceParent.Store(id) }

// NewPiChecker builds a checker for the KB with the optimization enabled.
// It also warms the plan cache for every rule body against the KB's base
// store: the checker's full checks fan out across workers on per-chunk
// clone stores, and a first compile racing in a worker would bind join
// orders to whichever clone won — warming here keeps orders deterministic.
func NewPiChecker(kb *KB) *PiChecker {
	chase.PrecompilePlans(kb.Facts, kb.TGDs, kb.CDDs)
	pc := &PiChecker{kb: kb, ruleConst: make(map[logic.Term]bool), Optimized: true}
	pc.cause.Store(int32(attr.None))
	collect := func(as []logic.Atom) {
		for _, a := range as {
			for _, t := range a.Args {
				if t.IsConst() {
					pc.ruleConst[t] = true
				}
			}
		}
	}
	for _, r := range kb.TGDs {
		collect(r.Body)
		collect(r.Head)
	}
	for _, c := range kb.CDDs {
		collect(c.Body)
	}
	return pc
}

// CheckWithFix decides whether K′ = (apply(F, {f}), ΣT, ΣC) is
// Π′-repairable for Π′ = Π ∪ {f.Pos} — the filtering condition in the loop
// of Algorithm 2 (SOUNDQUESTION, line 13).
//
// Fast path (Π-RepOpt, §5, soundness-hardened per DESIGN.md §3): given that
// K is already Π-repairable, the answer is yes without running a chase when
// the fix value
//
//   - is a labeled null that occurs nowhere in the store (fresh, uniquely
//     attributed to the position — Lemma 4.3(3)); or
//   - is a constant that neither appears at any Π position nor occurs as a
//     constant in any rule. In the Π-nulled instance all remaining values
//     are unique nulls, so such a constant cannot complete any join that a
//     fresh null could not.
//
// Otherwise the full Algorithm 1 check runs on apply(F, {f}).
func (pc *PiChecker) CheckWithFix(pi Pi, f Fix) (bool, error) {
	res, err := pc.CheckBatch(pi, []Fix{f})
	if err != nil {
		return false, err
	}
	return res[0], nil
}

// CheckBatch decides Π′-repairability for a batch of single-fix updates
// sharing the same Π (the filtering loop of one SOUNDQUESTION call). The
// fast path handles most fixes sequentially; the remaining full Algorithm 1
// checks are independent of each other and fan out across the worker pool
// (one Π-nulled instance per chunk), with verdicts written by fix index so
// the result — and therefore question order — is byte-identical at every
// worker count.
func (pc *PiChecker) CheckBatch(pi Pi, fixes []Fix) ([]bool, error) {
	out := make([]bool, len(fixes))
	var fastHits, accepted int64
	var full []int
	// One span covers the whole batch: the full checks run inside worker
	// goroutines with their chases silenced (TraceQuiet), so Π time is
	// attributed here, at batch granularity, deterministically.
	var sp obs.Span
	if obs.Tracing() {
		sp = obs.StartSpanUnder(pc.traceParent.Load(), "core.pi_batch",
			obs.Int("batch", len(fixes)))
	}
	defer func() {
		flight.Record(flight.KindPiBatch, fastHits, int64(len(full)), accepted, 0)
		if sp.Live() {
			sp.End(obs.Int64("fast_hits", fastHits),
				obs.Int("full_checks", len(full)),
				obs.Int64("accepted", accepted))
		}
	}()
	cause := attr.ID(pc.cause.Load())
	for i, f := range fixes {
		if pc.Optimized && pc.fastSafe(pi, f) {
			pc.FastHits++
			mPiFast.Inc()
			fastHits++
			out[i] = true
			continue
		}
		if f.Pos.Arg < 0 || !pc.kb.Facts.Valid(f.Pos.Fact) || f.Pos.Arg >= pc.kb.Facts.Arity(f.Pos.Fact) {
			return nil, fmt.Errorf("pirep: position %s out of range", f.Pos)
		}
		full = append(full, i)
	}
	attrPiFast.Add(cause, fastHits)
	pc.FullChecks += len(full)
	mPiFull.Add(int64(len(full)))
	attrPiFull.Add(cause, int64(len(full)))
	if err := pc.runFullChecks(pi, fixes, full, out); err != nil {
		return nil, err
	}
	for _, ok := range out {
		if ok {
			accepted++
		}
	}
	return out, nil
}

// runFullChecks runs the full Algorithm 1 checks of a batch (fix indices in
// full). With one worker — or a single check — everything runs inline on
// one shared nulled instance, the sequential baseline. Otherwise the
// indices split into at most Workers() contiguous chunks, each chunk with
// its own Π-nulled instance (checks only read pc.kb and mutate their own
// copy, so they are independent). Verdicts land in out by fix index, never
// by completion order.
func (pc *PiChecker) runFullChecks(pi Pi, fixes []Fix, full []int, out []bool) error {
	if len(full) == 0 {
		return nil
	}
	w := par.Workers()
	if w > len(full) {
		w = len(full)
	}
	if w <= 1 {
		return pc.checkChunk(pi, fixes, full, out)
	}
	chunks := make([][]int, 0, w)
	for g := 0; g < w; g++ {
		lo, hi := g*len(full)/w, (g+1)*len(full)/w
		if lo < hi {
			chunks = append(chunks, full[lo:hi])
		}
	}
	errs := par.MapNamed("core.pi", len(chunks), func(g int) error {
		return pc.checkChunk(pi, fixes, chunks[g], out)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// checkChunk runs Algorithm 1 for each fix index in idxs on one shared
// Π-nulled instance, mutating only the fix position between checks.
func (pc *PiChecker) checkChunk(pi Pi, fixes []Fix, idxs []int, out []bool) error {
	nulled := nulledCopy(pc.kb.Facts, pi)
	cause := attr.ID(pc.cause.Load())
	// Chunks may run on worker goroutines: their chases stay out of the
	// trace (interleaved spans from racing workers would make the trace
	// depend on the worker count). CheckBatch's pi_batch span carries the
	// batch's time instead.
	opts := pc.kb.ChaseOpts
	opts.TraceQuiet = true
	for _, i := range idxs {
		f := fixes[i]
		// Algorithm 1 on (apply(F,{f}), Π ∪ {f.Pos}) is exactly the nulled
		// instance with the fix value at the fix position. (Π positions of
		// the nulled store keep their values; f.Pos is outside Π in every
		// SOUNDQUESTION call, and if it were inside, setting it below
		// still realizes the hypothetical update.)
		prev := nulled.MustSetValue(f.Pos, f.Value)
		tm := obs.StartTimer()
		ok, err := chase.IsConsistentOpt(nulled, pc.kb.TGDs, pc.kb.CDDs, opts)
		mPiCheckTime.Since(tm)
		attrPiTime.Since(cause, tm)
		nulled.MustSetValue(f.Pos, prev)
		if err != nil {
			return err
		}
		out[i] = ok
	}
	return nil
}

// fastSafe reports whether the fix value is provably harmless (see
// CheckWithFix).
func (pc *PiChecker) fastSafe(pi Pi, f Fix) bool {
	v := f.Value
	switch v.Kind {
	case logic.Null:
		// Safe iff the null occurs nowhere in the current store: being at
		// the fixed position itself is impossible since a fix must change
		// the value, and uniqueness makes it joinless.
		return !pc.occursInStore(v)
	case logic.Const:
		if pc.ruleConst[v] {
			return false
		}
		for p := range pi {
			if p != f.Pos && pc.kb.Facts.Value(p) == v {
				return false
			}
		}
		// The constant must also not occur at the fix's own fact-sibling
		// positions inside Π (covered above) — but it may freely occur at
		// non-Π positions, which are nulled in the hypothetical instance.
		// A single-atom CDD with a repeated variable could still be
		// triggered by v joining with itself inside one atom if another
		// position of the *same fact* is in Π with value v — covered by
		// the Π scan as well. Safe.
		return true
	default:
		return false
	}
}

func (pc *PiChecker) occursInStore(t logic.Term) bool {
	return pc.kb.Facts.OccursAnywhere(t)
}
