package par

import (
	"flag"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// withWorkers pins the pool size for the duration of a test.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := workers.Load()
	SetWorkers(n)
	t.Cleanup(func() { workers.Store(prev); gWorkers.Set(int64(Workers())) })
}

func TestWorkersDefault(t *testing.T) {
	withWorkers(t, 0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestSetWorkers(t *testing.T) {
	withWorkers(t, 0)
	if got := SetWorkers(5); got != 5 {
		t.Errorf("SetWorkers(5) = %d", got)
	}
	if got := Workers(); got != 5 {
		t.Errorf("Workers() = %d after SetWorkers(5)", got)
	}
	if got := SetWorkers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("SetWorkers(-1) = %d, want default", got)
	}
	if gWorkers.Value() != int64(Workers()) {
		t.Errorf("par.workers gauge = %d, want %d", gWorkers.Value(), Workers())
	}
}

func TestDoRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w)
		const n = 100
		var counts [n]atomic.Int32
		Do(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", w, i, c)
			}
		}
	}
}

func TestDoZeroAndNegative(t *testing.T) {
	ran := false
	Do(0, func(int) { ran = true })
	Do(-3, func(int) { ran = true })
	if ran {
		t.Error("Do ran tasks for n <= 0")
	}
}

func TestMapIsDeterministicAcrossWorkerCounts(t *testing.T) {
	sq := func(i int) int { return i * i }
	withWorkers(t, 1)
	seq := Map(64, sq)
	withWorkers(t, 8)
	parl := Map(64, sq)
	if len(seq) != len(parl) {
		t.Fatalf("length mismatch: %d vs %d", len(seq), len(parl))
	}
	for i := range seq {
		if seq[i] != parl[i] {
			t.Fatalf("slot %d: %d (workers=1) vs %d (workers=8)", i, seq[i], parl[i])
		}
	}
}

func TestDoPropagatesPanic(t *testing.T) {
	withWorkers(t, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Do(16, func(i int) {
		if i == 7 {
			panic("boom 7")
		}
	})
}

func TestDoCountsTasks(t *testing.T) {
	withWorkers(t, 2)
	before := mTasks.Value()
	Do(10, func(int) {})
	if got := mTasks.Value() - before; got != 10 {
		t.Errorf("par.tasks advanced by %d, want 10", got)
	}
}

func TestAddFlags(t *testing.T) {
	withWorkers(t, 0)
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	n := AddFlags(fs)
	if err := fs.Parse([]string{"-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	Configure(n)
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d after -workers 3", got)
	}
}

// TestDoConcurrentFanOuts exercises overlapping Do calls from multiple
// goroutines (the shape a future parallel phase-2 would produce) under the
// race detector.
func TestDoConcurrentFanOuts(t *testing.T) {
	withWorkers(t, 4)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var sum atomic.Int64
			Do(50, func(i int) { sum.Add(int64(i)) })
			if sum.Load() != 50*49/2 {
				t.Error("wrong sum")
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
