package par

import (
	"flag"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"kbrepair/internal/obs/sched"
)

// withWorkers pins the pool size for the duration of a test.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := workers.Load()
	SetWorkers(n)
	t.Cleanup(func() { workers.Store(prev); gWorkers.Set(int64(Workers())) })
}

func TestWorkersDefault(t *testing.T) {
	withWorkers(t, 0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestSetWorkers(t *testing.T) {
	withWorkers(t, 0)
	if got := SetWorkers(5); got != 5 {
		t.Errorf("SetWorkers(5) = %d", got)
	}
	if got := Workers(); got != 5 {
		t.Errorf("Workers() = %d after SetWorkers(5)", got)
	}
	if got := SetWorkers(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("SetWorkers(-1) = %d, want default", got)
	}
	if gWorkers.Value() != int64(Workers()) {
		t.Errorf("par.workers gauge = %d, want %d", gWorkers.Value(), Workers())
	}
}

func TestDoRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w)
		const n = 100
		var counts [n]atomic.Int32
		Do(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", w, i, c)
			}
		}
	}
}

func TestDoZeroAndNegative(t *testing.T) {
	ran := false
	Do(0, func(int) { ran = true })
	Do(-3, func(int) { ran = true })
	if ran {
		t.Error("Do ran tasks for n <= 0")
	}
}

func TestMapIsDeterministicAcrossWorkerCounts(t *testing.T) {
	sq := func(i int) int { return i * i }
	withWorkers(t, 1)
	seq := Map(64, sq)
	withWorkers(t, 8)
	parl := Map(64, sq)
	if len(seq) != len(parl) {
		t.Fatalf("length mismatch: %d vs %d", len(seq), len(parl))
	}
	for i := range seq {
		if seq[i] != parl[i] {
			t.Fatalf("slot %d: %d (workers=1) vs %d (workers=8)", i, seq[i], parl[i])
		}
	}
}

func TestDoPropagatesPanic(t *testing.T) {
	withWorkers(t, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Do(16, func(i int) {
		if i == 7 {
			panic("boom 7")
		}
	})
}

func TestDoCountsTasks(t *testing.T) {
	withWorkers(t, 2)
	before := mTasks.Value()
	Do(10, func(int) {})
	if got := mTasks.Value() - before; got != 10 {
		t.Errorf("par.tasks advanced by %d, want 10", got)
	}
}

func TestAddFlags(t *testing.T) {
	withWorkers(t, 0)
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	n := AddFlags(fs)
	if err := fs.Parse([]string{"-workers", "3"}); err != nil {
		t.Fatal(err)
	}
	Configure(n)
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d after -workers 3", got)
	}
}

// TestDoConcurrentFanOuts exercises overlapping Do calls from multiple
// goroutines (the shape a future parallel phase-2 would produce) under the
// race detector.
func TestDoConcurrentFanOuts(t *testing.T) {
	withWorkers(t, 4)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var sum atomic.Int64
			Do(50, func(i int) { sum.Add(int64(i)) })
			if sum.Load() != 50*49/2 {
				t.Error("wrong sum")
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

// withSched installs a fresh lane recorder for one test.
func withSched(t *testing.T) {
	t.Helper()
	sched.Enable(0)
	t.Cleanup(sched.Disable)
}

// TestDoLaneBalanceAcrossWorkerCounts checks the tentpole balance
// invariant: at every worker count, each task produces exactly one lane
// interval, every fan-out is closed, and lanes stay inside [0, workers).
func TestDoLaneBalanceAcrossWorkerCounts(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w)
		withSched(t)
		const n = 40
		DoNamed("test.balance", n, func(i int) {})
		s := sched.Capture()
		if s == nil {
			t.Fatal("sched.Capture() = nil with recording enabled")
		}
		if s.OpenFanouts != 0 || s.AbortedFanouts != 0 {
			t.Fatalf("workers=%d: open %d aborted %d, want 0/0", w, s.OpenFanouts, s.AbortedFanouts)
		}
		if s.IntervalsRetained != n {
			t.Fatalf("workers=%d: %d intervals retained, want %d", w, s.IntervalsRetained, n)
		}
		seen := make(map[int]int, n)
		effW := w
		if effW > n {
			effW = n
		}
		for _, iv := range s.Intervals {
			if iv.Label != "test.balance" {
				t.Fatalf("workers=%d: interval label %q", w, iv.Label)
			}
			if iv.Lane < 0 || iv.Lane >= effW {
				t.Fatalf("workers=%d: lane %d outside [0,%d)", w, iv.Lane, effW)
			}
			if iv.EndUS < iv.StartUS {
				t.Fatalf("workers=%d: interval ends before it starts: %+v", w, iv)
			}
			seen[iv.Task]++
		}
		for i := 0; i < n; i++ {
			if seen[i] != 1 {
				t.Fatalf("workers=%d: task %d recorded %d times, want 1", w, i, seen[i])
			}
		}
		if len(s.Labels) != 1 || s.Labels[0].Tasks != n || s.Labels[0].Fanouts != 1 {
			t.Fatalf("workers=%d: label agg = %+v", w, s.Labels)
		}
	}
}

// TestDoLaneBalanceUnderPanic checks that panic propagation never leaves a
// fan-out open. On the threaded path the per-task recover runs before the
// lane interval closes, so the books balance exactly; on the inline path
// the unwind skips the remaining tasks and the deferred End records the
// fan-out as aborted instead.
func TestDoLaneBalanceUnderPanic(t *testing.T) {
	run := func(w int) *sched.Snapshot {
		withWorkers(t, w)
		withSched(t)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panic not propagated", w)
				}
			}()
			DoNamed("test.panic", 16, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
		return sched.Capture()
	}

	s := run(8)
	if s.OpenFanouts != 0 {
		t.Fatalf("threaded: %d fan-outs left open after panic", s.OpenFanouts)
	}
	if s.AbortedFanouts != 0 || s.Labels[0].Tasks != 16 {
		t.Fatalf("threaded: aborted %d tasks %d, want 0/16 (recover closes every interval)",
			s.AbortedFanouts, s.Labels[0].Tasks)
	}

	s = run(1)
	if s.OpenFanouts != 0 {
		t.Fatalf("inline: %d fan-outs left open after panic", s.OpenFanouts)
	}
	if s.AbortedFanouts != 1 {
		t.Fatalf("inline: aborted = %d, want 1 (unwind skips remaining tasks)", s.AbortedFanouts)
	}
}

// TestDoRefreshesWorkersGauge pins the satellite fix: with -workers unset
// the par.workers gauge must track GOMAXPROCS changes made after package
// init, refreshed on each Do.
func TestDoRefreshesWorkersGauge(t *testing.T) {
	withWorkers(t, 0)
	old := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(3)
	defer func() {
		runtime.GOMAXPROCS(old)
		gWorkers.Set(int64(Workers()))
	}()
	Do(4, func(int) {})
	if got := gWorkers.Value(); got != 3 {
		t.Errorf("par.workers gauge = %d after GOMAXPROCS(3)+Do, want 3", got)
	}
}

// TestDoNamedDisabledSchedAllocs guards the inline fast path end to end:
// with recording off and one worker, a whole DoNamed fan-out allocates
// nothing.
func TestDoNamedDisabledSchedAllocs(t *testing.T) {
	sched.Disable()
	withWorkers(t, 1)
	fn := func(int) {}
	allocs := testing.AllocsPerRun(100, func() {
		DoNamed("test.alloc", 4, fn)
	})
	if allocs != 0 {
		t.Errorf("inline DoNamed with sched disabled allocates %.1f per call, want 0", allocs)
	}
}

func TestMapNamedMatchesMap(t *testing.T) {
	withWorkers(t, 4)
	withSched(t)
	got := MapNamed("test.map", 16, func(i int) int { return i * 3 })
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	s := sched.Capture()
	if len(s.Labels) != 1 || s.Labels[0].Label != "test.map" {
		t.Fatalf("labels = %+v, want test.map", s.Labels)
	}
}
