// Package par provides the worker-pool parallel execution layer of
// kbrepair. The pipeline's dominant costs — conflict detection (one
// independent homomorphism search per CDD, and per pinned-atom seed in the
// incremental tracker) and the per-round chase phases (one read-only
// trigger search per TGD, then one speculative applicability check and head
// instantiation per trigger) — fan out through Do/Map here.
//
// Design rules, enforced by the callers:
//
//   - Tasks are read-only with respect to shared state (the store's
//     concurrent-read contract; see internal/store). All mutation happens
//     after the fan-in, on the caller's goroutine.
//   - Results are merged in task-index order, never in completion order, so
//     every output is byte-identical regardless of the worker count. Map
//     makes this the default by writing each task's result to its own slot.
//
// The pool size is a process-wide setting (SetWorkers / the -workers CLI
// flag, default runtime.GOMAXPROCS(0)). Workers are spawned per Do call
// rather than kept hot: the fan-outs here are coarse (whole homomorphism
// searches), so goroutine start-up cost is noise, and an idle process holds
// no threads.
package par

import (
	"flag"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"kbrepair/internal/obs"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/obs/sched"
)

// Pool instrumentation: tasks executed, the configured pool size, and the
// time tasks spend queued before a worker picks them up (nonzero queue wait
// means the fan-out is wider than the pool — more workers would help).
var (
	mTasks     = obs.NewCounter("par.tasks")
	gWorkers   = obs.NewGauge("par.workers")
	mQueueWait = obs.NewHistogram("par.queue_wait_seconds", obs.LatencyBuckets)
)

// workers holds the configured pool size; 0 means "unset, use
// runtime.GOMAXPROCS(0)" so that changing GOMAXPROCS at runtime is
// respected until someone pins an explicit count.
var workers atomic.Int64

func init() { gWorkers.Set(int64(Workers())) }

// Workers returns the current pool size: the value of the last SetWorkers
// call, or runtime.GOMAXPROCS(0) if never set (or set to <= 0).
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers pins the pool size. n <= 0 resets to the default
// (runtime.GOMAXPROCS(0)). It returns the effective size.
func SetWorkers(n int) int {
	if n <= 0 {
		workers.Store(0)
	} else {
		workers.Store(int64(n))
	}
	w := Workers()
	gWorkers.Set(int64(w))
	return w
}

// AddFlags registers the shared -workers flag on fs, mirroring
// obs.AddFlags so all CLIs expose an identical surface. The returned value
// must be applied with Configure after fs is parsed.
func AddFlags(fs *flag.FlagSet) *int {
	n := new(int)
	fs.IntVar(n, "workers", 0,
		fmt.Sprintf("parallel worker count for conflict detection and the chase's trigger-collection and speculative-firing phases (0 = GOMAXPROCS, currently %d)", runtime.GOMAXPROCS(0)))
	return n
}

// Configure applies a parsed AddFlags value.
func Configure(n *int) { SetWorkers(*n) }

// Do runs fn(0) … fn(n-1) on up to Workers() goroutines and returns when
// all calls have finished. Tasks are handed out in index order but may
// complete in any order; callers must not depend on cross-task timing.
// With a pool size of one (or a single task) everything runs inline on the
// calling goroutine, which keeps -workers 1 a true sequential baseline.
//
// If any task panics, Do panics on the calling goroutine with the first
// panic value after all workers have stopped.
func Do(n int, fn func(i int)) { DoNamed("par.do", n, fn) }

// DoNamed is Do with a fan-out label: the phase name the sched lane
// recorder aggregates under ("chase.spec", "conflict.scan", …), which
// becomes the per-phase row of kbbench's efficiency report. The label
// changes no execution behavior — lane recording is observability-only,
// nil-cost when disabled, and its records never enter the trace stream,
// so output stays byte-identical at every worker count.
func DoNamed(label string, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	mTasks.Add(int64(n))
	w := Workers()
	// Keep the pool gauge fresh: with -workers unset the effective size
	// tracks runtime.GOMAXPROCS, which can change after package init.
	gWorkers.Set(int64(w))
	if w > n {
		w = n
	}
	fo := sched.Begin(label, n, w)
	defer fo.End() // balances Begin on every exit path, panics included
	if w <= 1 {
		for i := 0; i < n; i++ {
			t0 := fo.Start()
			fn(i)
			fo.Task(0, i, t0)
		}
		return
	}
	// Only true fan-outs are flight-recorded; inline runs would flood the
	// ring with events that carry no scheduling information.
	flight.Record(flight.KindParDispatch, int64(n), int64(w), 0, 0)
	enq := obs.StartTimer()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mQueueWait.Since(enq)
				t0 := fo.Start()
				func() {
					defer func() {
						if r := recover(); r != nil {
							if panicked.CompareAndSwap(false, true) {
								panicVal = r
							}
						}
					}()
					fn(i)
				}()
				// The lane interval closes even for a panicked task — the
				// recover above already fired — keeping busy records balanced.
				fo.Task(g, i, t0)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}

// Map runs fn over 0 … n-1 in parallel and returns the results in task
// order — the deterministic fan-out/fan-in shape every parallel stage of
// the pipeline uses.
func Map[T any](n int, fn func(i int) T) []T { return MapNamed("par.do", n, fn) }

// MapNamed is Map with a sched fan-out label; see DoNamed.
func MapNamed[T any](label string, n int, fn func(i int) T) []T {
	out := make([]T, n)
	DoNamed(label, n, func(i int) { out[i] = fn(i) })
	return out
}
