// Package deletion implements the deletion-based repairing baseline the
// paper argues against in §1: resolve inconsistency by removing whole
// facts. Every conflict must lose at least one of its base facts, so a
// deletion repair is a hitting set of the conflict hypergraph; a minimal
// repair is a minimal hitting set.
//
// The package exists to make the paper's motivating comparison executable:
// deletion repairs discard entire atoms (and all their error-free values),
// while update repairs (internal/core) change single positions and can
// keep partial information as labeled nulls. See ExampleInformationLoss in
// the tests and the examples/deletionvsupdate program.
package deletion

import (
	"fmt"
	"sort"

	"kbrepair/internal/conflict"
	"kbrepair/internal/core"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// Repair is one deletion repair: the facts removed and the surviving store.
type Repair struct {
	// Removed lists the deleted fact ids (ascending).
	Removed []store.FactID
	// Facts is the surviving fact set (re-indexed: fact ids differ from
	// the original store's).
	Facts *store.Store
}

// InformationLoss counts the argument positions discarded by the repair —
// the granularity cost of tuple-level deletion.
func (r *Repair) InformationLoss(original *store.Store) int {
	loss := 0
	for _, id := range r.Removed {
		loss += original.Arity(id)
	}
	return loss
}

// survivors materializes the store left after removing the given facts.
func survivors(s *store.Store, removed map[store.FactID]bool) (*store.Store, error) {
	out := store.New()
	out.ReserveNulls(s.NullSeq())
	for _, id := range s.IDs() {
		if !removed[id] {
			if _, err := out.Add(s.FactRef(id)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// GreedyRepair computes a deletion repair by repeatedly removing the fact
// involved in the most remaining conflicts (the classical greedy
// hitting-set heuristic, ln(n)-approximate). The KB must have its conflicts
// resolvable by deletion of base facts, which is always the case since
// removing every conflicting fact is a repair.
func GreedyRepair(kb *core.KB) (*Repair, error) {
	removed := make(map[store.FactID]bool)
	for {
		cs, _, err := currentConflicts(kb, removed)
		if err != nil {
			return nil, err
		}
		if len(cs) == 0 {
			break
		}
		counts := make(map[store.FactID]int)
		for _, c := range cs {
			for _, f := range c.BaseFacts {
				counts[f]++
			}
		}
		best, bestN := store.FactID(-1), -1
		for f, n := range counts {
			if n > bestN || (n == bestN && f < best) {
				best, bestN = f, n
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("deletion: conflicts without base facts")
		}
		removed[best] = true
	}
	return finish(kb, removed)
}

// currentConflicts evaluates the conflicts of the KB restricted to the
// facts not yet removed.
func currentConflicts(kb *core.KB, removed map[store.FactID]bool) ([]*conflict.Conflict, map[store.FactID]store.FactID, error) {
	// Build the survivor store, remembering the id mapping back to the
	// original so conflicts can be reported in original ids.
	sub := store.New()
	sub.ReserveNulls(kb.Facts.NullSeq())
	back := make(map[store.FactID]store.FactID)
	for _, id := range kb.Facts.IDs() {
		if removed[id] {
			continue
		}
		nid, err := sub.Add(kb.Facts.FactRef(id))
		if err != nil {
			return nil, nil, err
		}
		back[nid] = id
	}
	cs, _, err := conflict.All(sub, kb.TGDs, kb.CDDs, kb.ChaseOpts)
	if err != nil {
		return nil, nil, err
	}
	// Rewrite base facts to original ids.
	for _, c := range cs {
		for i, f := range c.BaseFacts {
			c.BaseFacts[i] = back[f]
		}
	}
	return cs, back, nil
}

func finish(kb *core.KB, removed map[store.FactID]bool) (*Repair, error) {
	facts, err := survivors(kb.Facts, removed)
	if err != nil {
		return nil, err
	}
	ids := make([]store.FactID, 0, len(removed))
	for id := range removed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return &Repair{Removed: ids, Facts: facts}, nil
}

// MinimalRepairs enumerates all subset-minimal deletion repairs, up to the
// given limit on candidate-set size (the problem is the minimal hitting
// set enumeration, exponential in general). It refuses KBs whose conflict
// base-fact union exceeds maxCandidates.
func MinimalRepairs(kb *core.KB, maxCandidates int) ([]*Repair, error) {
	cs, _, err := kb.AllConflicts()
	if err != nil {
		return nil, err
	}
	if len(cs) == 0 {
		facts, err := survivors(kb.Facts, nil)
		if err != nil {
			return nil, err
		}
		return []*Repair{{Facts: facts}}, nil
	}
	candSet := make(map[store.FactID]bool)
	for _, c := range cs {
		for _, f := range c.BaseFacts {
			candSet[f] = true
		}
	}
	if len(candSet) > maxCandidates {
		return nil, fmt.Errorf("deletion: %d candidate facts exceed limit %d", len(candSet), maxCandidates)
	}
	cands := make([]store.FactID, 0, len(candSet))
	for f := range candSet {
		cands = append(cands, f)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	// Enumerate subsets in increasing size; keep those that repair and are
	// not supersets of an already-found repair.
	var repairs []*Repair
	var found []map[store.FactID]bool
	n := len(cands)
	for size := 1; size <= n; size++ {
		idx := make([]int, size)
		for i := range idx {
			idx[i] = i
		}
		for {
			sel := make(map[store.FactID]bool, size)
			for _, i := range idx {
				sel[cands[i]] = true
			}
			if !supersetOfAny(sel, found) {
				ok, err := deletionRepairs(kb, sel)
				if err != nil {
					return nil, err
				}
				if ok {
					found = append(found, sel)
					r, err := finish(kb, sel)
					if err != nil {
						return nil, err
					}
					repairs = append(repairs, r)
				}
			}
			if !nextCombination(idx, n) {
				break
			}
		}
	}
	return repairs, nil
}

func supersetOfAny(sel map[store.FactID]bool, found []map[store.FactID]bool) bool {
	for _, f := range found {
		all := true
		for id := range f {
			if !sel[id] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func nextCombination(idx []int, n int) bool {
	k := len(idx)
	for i := k - 1; i >= 0; i-- {
		if idx[i] < n-k+i {
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
			return true
		}
	}
	return false
}

// deletionRepairs reports whether removing exactly the given facts yields a
// consistent KB.
func deletionRepairs(kb *core.KB, removed map[store.FactID]bool) (bool, error) {
	facts, err := survivors(kb.Facts, removed)
	if err != nil {
		return false, err
	}
	sub := &core.KB{Facts: facts, TGDs: kb.TGDs, CDDs: kb.CDDs, ChaseOpts: kb.ChaseOpts}
	return sub.IsConsistent()
}

// CompareWithUpdate quantifies the paper's §1 motivation on a concrete KB:
// it produces a greedy deletion repair and a (simulated-user) update
// repair, and reports how many argument values each one lost. Update
// repairs lose exactly one position per fix (and even then may retain the
// information as a labeled null); deletion repairs lose every position of
// every removed fact.
type Comparison struct {
	DeletionRemovedFacts  int
	DeletionLostPositions int
	UpdateChangedValues   int
	UpdateIntroducedNulls int
}

// Compare runs both repairs on clones of the KB.
func Compare(kb *core.KB, fixes core.FixSet) (*Comparison, error) {
	del, err := GreedyRepair(kb.Clone())
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{
		DeletionRemovedFacts:  len(del.Removed),
		DeletionLostPositions: del.InformationLoss(kb.Facts),
		UpdateChangedValues:   len(fixes.Canonical()),
	}
	for _, f := range fixes {
		if f.Value.Kind == logic.Null {
			cmp.UpdateIntroducedNulls++
		}
	}
	return cmp, nil
}
