package deletion

import (
	"testing"

	"kbrepair/internal/core"
	"kbrepair/internal/inquiry"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

func fig1aKB(t testing.TB) *core.KB {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),    // 0
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),    // 1
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")), // 2
	})
	cdd := logic.MustCDD([]logic.Atom{
		logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
		logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
	})
	return core.MustKB(s, nil, []*logic.CDD{cdd})
}

func TestGreedyRepair(t *testing.T) {
	kb := fig1aKB(t)
	r, err := GreedyRepair(kb)
	if err != nil {
		t.Fatal(err)
	}
	// One removal suffices: either prescribed(Aspirin,John) or
	// hasAllergy(John,Aspirin) — the F1/F2 repairs of Example 1.2.
	if len(r.Removed) != 1 {
		t.Fatalf("removed %v, want exactly one fact", r.Removed)
	}
	if r.Removed[0] != 0 && r.Removed[0] != 1 {
		t.Errorf("removed fact %d not part of the conflict", r.Removed[0])
	}
	if r.Facts.Len() != 2 {
		t.Errorf("survivors = %d", r.Facts.Len())
	}
	// A whole binary atom is lost: 2 positions.
	if r.InformationLoss(kb.Facts) != 2 {
		t.Errorf("loss = %d", r.InformationLoss(kb.Facts))
	}
	// The surviving KB is consistent.
	sub := &core.KB{Facts: r.Facts, TGDs: kb.TGDs, CDDs: kb.CDDs}
	if ok, _ := sub.IsConsistent(); !ok {
		t.Error("greedy repair left inconsistency")
	}
	// The input KB is untouched.
	if kb.Facts.Len() != 3 {
		t.Error("GreedyRepair mutated input")
	}
}

func TestGreedyRepairWithTGDs(t *testing.T) {
	// Chase-only conflict: deletion must remove a base fact feeding it.
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("r", logic.C("a")),
	})
	kb := core.MustKB(s,
		[]*logic.TGD{logic.MustTGD(
			[]logic.Atom{logic.NewAtom("p", logic.V("X"))},
			[]logic.Atom{logic.NewAtom("q", logic.V("X"))},
		)},
		[]*logic.CDD{logic.MustCDD([]logic.Atom{
			logic.NewAtom("q", logic.V("X")),
			logic.NewAtom("r", logic.V("X")),
		})},
	)
	r, err := GreedyRepair(kb)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Removed) != 1 {
		t.Fatalf("removed = %v", r.Removed)
	}
	sub := &core.KB{Facts: r.Facts, TGDs: kb.TGDs, CDDs: kb.CDDs}
	if ok, _ := sub.IsConsistent(); !ok {
		t.Error("repair inconsistent under chase")
	}
}

func TestMinimalRepairsExample12(t *testing.T) {
	kb := fig1aKB(t)
	rs, err := MinimalRepairs(kb, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Example 1.2: exactly the two repairs F1 and F2.
	if len(rs) != 2 {
		t.Fatalf("repairs = %d, want 2", len(rs))
	}
	seen := map[store.FactID]bool{}
	for _, r := range rs {
		if len(r.Removed) != 1 {
			t.Errorf("non-minimal repair %v", r.Removed)
		}
		seen[r.Removed[0]] = true
		if !r.Facts.Contains(logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin"))) {
			t.Error("repair dropped an innocent fact")
		}
	}
	if !seen[0] || !seen[1] {
		t.Errorf("repairs = %v", seen)
	}
}

func TestMinimalRepairsConsistentKB(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{logic.NewAtom("p", logic.C("a"))})
	kb := core.MustKB(s, nil, nil)
	rs, err := MinimalRepairs(kb, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || len(rs[0].Removed) != 0 {
		t.Errorf("consistent KB repairs = %v", rs)
	}
}

func TestMinimalRepairsRefusesLarge(t *testing.T) {
	kb := fig1aKB(t)
	if _, err := MinimalRepairs(kb, 1); err == nil {
		t.Error("candidate limit not enforced")
	}
}

func TestCompareInformationLoss(t *testing.T) {
	// Update repair of the same KB via inquiry, then compare.
	kb := fig1aKB(t)
	e := inquiry.New(kb.Clone(), inquiry.OptiJoin{}, inquiry.NewSimulatedUser(3), 3, inquiry.Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(kb, res.AppliedFixes)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DeletionRemovedFacts != 1 || cmp.DeletionLostPositions != 2 {
		t.Errorf("deletion side = %+v", cmp)
	}
	if cmp.UpdateChangedValues == 0 {
		t.Error("update side empty")
	}
	// The §1 argument: update repairing touches fewer positions than
	// deletion loses.
	if cmp.UpdateChangedValues > cmp.DeletionLostPositions {
		t.Errorf("update repair (%d values) lost more than deletion (%d positions)",
			cmp.UpdateChangedValues, cmp.DeletionLostPositions)
	}
}
