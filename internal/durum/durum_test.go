package durum

import (
	"testing"

	"kbrepair/internal/inquiry"
)

func TestBuildV1Characteristics(t *testing.T) {
	kb, info, err := Build(V1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Facts != 567 {
		t.Errorf("facts = %d, want 567", info.Facts)
	}
	if info.NumTGDs != 269 {
		t.Errorf("tgds = %d, want 269", info.NumTGDs)
	}
	if info.NumCDDs != 27 {
		t.Errorf("cdds = %d, want 27", info.NumCDDs)
	}
	// Published: chase ≈ 1075 atoms; accept the same order of magnitude.
	if info.ChaseSize < 800 || info.ChaseSize > 1500 {
		t.Errorf("chase size = %d, want ≈1075", info.ChaseSize)
	}
	// Published: 185 conflicts, 14%% inconsistency (79 atoms), scope ≈ 8.
	if info.TotalConflicts < 30 || info.TotalConflicts > 400 {
		t.Errorf("conflicts = %d, want ≈185", info.TotalConflicts)
	}
	if info.InconsistencyRatio < 0.05 || info.InconsistencyRatio > 0.3 {
		t.Errorf("inconsistency = %.3f, want ≈0.14", info.InconsistencyRatio)
	}
	if info.AvgScope < 2 {
		t.Errorf("avg scope = %.2f, want overlapping conflicts (≈8)", info.AvgScope)
	}
	if err := kb.Validate(); err != nil {
		t.Errorf("KB invalid: %v", err)
	}
	t.Logf("v1 info: %+v", info)
}

func TestBuildV2Characteristics(t *testing.T) {
	_, info, err := Build(V2)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumCDDs != 100 {
		t.Errorf("cdds = %d, want 100", info.NumCDDs)
	}
	if info.Facts != 567 {
		t.Errorf("facts = %d, want 567", info.Facts)
	}
	_, v1Info, err := Build(V1)
	if err != nil {
		t.Fatal(err)
	}
	// v2 discovers more conflicts than v1 on the same facts.
	if info.TotalConflicts <= v1Info.TotalConflicts {
		t.Errorf("v2 conflicts (%d) not above v1 (%d)", info.TotalConflicts, v1Info.TotalConflicts)
	}
	t.Logf("v2 info: %+v", info)
}

func TestBuildUnknownVersion(t *testing.T) {
	if _, _, err := Build(Version(9)); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestRulesCompatible(t *testing.T) {
	kb, _, err := Build(V2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := kb.RulesCompatible()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("durum rules incompatible: TGDs alone force a CDD violation")
	}
}

func TestDurumRepairable(t *testing.T) {
	if testing.Short() {
		t.Skip("full durum inquiry is slow")
	}
	kb, _, err := Build(V1)
	if err != nil {
		t.Fatal(err)
	}
	e := inquiry.New(kb, inquiry.OptiMCD{}, inquiry.NewSimulatedUser(1), 1, inquiry.Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("inquiry left durum KB inconsistent")
	}
	t.Logf("durum v1 repaired with %d questions (naive=%d total=%d)",
		res.Questions, res.InitialNaive, res.InitialTotal)
}
