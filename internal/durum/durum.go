// Package durum rebuilds a stand-in for the real-world Durum Wheat
// knowledge base used in the paper's experiments (§6, Figure 2). The
// original KB ([2] in the paper) was hand-constructed from agronomy
// documents and is not redistributable; this package programmatically
// builds a KB over a realistic durum-wheat vocabulary (soils, crop
// rotations, growth stages, field operations, pests and treatments) whose
// *published structural characteristics* are matched:
//
//	567 base atoms, ~1075 after the chase, 269 TGDs,
//	27 CDDs (v1) / 100 CDDs (v2), ≈14% inconsistency (≈79 atoms in
//	conflicts), 2–3 atoms per conflict, heavily overlapping conflicts
//	(avg scope ≈ 8).
//
// The experiments only depend on these characteristics, not on the exact
// agronomy content. The seed facts and the example rules printed in the
// paper's Figure 2 are included verbatim.
package durum

import (
	"fmt"

	"kbrepair/internal/core"
	"kbrepair/internal/logic"
	"kbrepair/internal/obs"
	"kbrepair/internal/store"
	"kbrepair/internal/synth"
)

var (
	mBuilds    = obs.NewCounter("durum.builds")
	mBuildTime = obs.NewHistogram("durum.build_seconds", obs.LatencyBuckets)
)

// Version selects the CDD set size.
type Version int

const (
	// V1 is Durum Wheat v1: 27 CDDs.
	V1 Version = 1
	// V2 is Durum Wheat v2: 100 CDDs (the same KB with 73 additional
	// finer-grained constraints).
	V2 Version = 2
)

const (
	numWheats     = 30
	numSoils      = 20
	numPests      = 20
	numTreatments = 20
	numOps        = 40
	targetFacts   = 567
	targetTGDs    = 269
)

var stages = []string{
	"germination", "tillering_begins", "tillering_ends",
	"stem_extension", "heading", "flowering", "ripening",
}

var soilTypes = []string{"clay_soil", "silt_soil", "sandy_soil", "loam_soil"}

var opTypes = []string{"fertilization", "irrigation", "tillage"}

func wheat(i int) logic.Term { return logic.C(fmt.Sprintf("wheat%d", i)) }
func soil(i int) logic.Term  { return logic.C(fmt.Sprintf("soil%d", i)) }
func pest(i int) logic.Term  { return logic.C(fmt.Sprintf("pest%d", i)) }
func treat(i int) logic.Term { return logic.C(fmt.Sprintf("treatment%d", i)) }
func op(i int) logic.Term    { return logic.C(fmt.Sprintf("op%d", i)) }
func stageID(k int) logic.Term {
	return logic.C(fmt.Sprintf("stage_%s", stages[k]))
}

// Build assembles the Durum Wheat KB for the requested version, returning
// the KB and its measured structural characteristics.
func Build(v Version) (*core.KB, synth.Info, error) {
	if v != V1 && v != V2 {
		return nil, synth.Info{}, fmt.Errorf("durum: unknown version %d", v)
	}
	mBuilds.Inc()
	tm := obs.StartTimer()
	defer mBuildTime.Since(tm)
	tgds := buildTGDs()
	cdds := buildCDDs(v)
	st := buildFacts()

	kb, err := core.NewKB(st, tgds, cdds)
	if err != nil {
		return nil, synth.Info{}, fmt.Errorf("durum: %w", err)
	}
	info, err := synth.Describe(kb)
	if err != nil {
		return nil, synth.Info{}, err
	}
	return kb, info, nil
}

// a is shorthand for atom construction.
func a(pred string, args ...logic.Term) logic.Atom { return logic.NewAtom(pred, args...) }

func v(name string) logic.Term { return logic.V(name) }

// buildTGDs assembles exactly targetTGDs rules across the domain families
// described in DESIGN.md.
func buildTGDs() []*logic.TGD {
	var out []*logic.TGD
	add := func(label string, body, head []logic.Atom) {
		out = append(out, &logic.TGD{Label: label, Body: body, Head: head})
	}

	// Family 1 — the paper's Figure 2 rotation rule: a durum wheat
	// cultivated on a soil implies the soil's precedent is soybean.
	add("rotation",
		[]logic.Atom{
			a("isCultivatedOn", v("X1"), v("X2")),
			a("durum_wheat", v("X1")),
			a("soil", v("X2")),
		},
		[]logic.Atom{
			a("hasPrecedent", v("X2"), v("X3")),
			a("soybean", v("X3")),
		})

	// Family 2 — crop taxonomy chains: 8 chains of 5 subsumption steps
	// (e.g. a durum variety is a durum, is a wheat, is a cereal, …).
	for c := 0; c < 8; c++ {
		for j := 0; j < 5; j++ {
			add(fmt.Sprintf("taxonomy%d_%d", c, j),
				[]logic.Atom{a(fmt.Sprintf("cropTax%d_%d", c, j), v("X"))},
				[]logic.Atom{a(fmt.Sprintf("cropTax%d_%d", c, j+1), v("X"))})
		}
	}

	// Family 3 — pest-driven treatment planning: a durum wheat with pest k
	// must receive some treatment effective against k.
	for k := 0; k < numPests; k++ {
		add(fmt.Sprintf("pestPlan%d", k),
			[]logic.Atom{
				a("hasPest", v("W"), pest(k)),
				a("durum_wheat", v("W")),
			},
			[]logic.Atom{
				a("plannedTreatment", v("W"), v("T")),
				a("effectiveAgainst", v("T"), pest(k)),
			})
	}

	// Family 4 — growth-stage bookkeeping: reaching a stage is recorded.
	for k := range stages {
		add(fmt.Sprintf("reached_%s", stages[k]),
			[]logic.Atom{
				a("isAtGrowingStage", v("W"), v("G")),
				a(stages[k], v("G")),
			},
			[]logic.Atom{a("reached_"+stages[k], v("W"))})
	}

	// Family 5 — per-stage phenology chains (3 steps each).
	for k := range stages {
		prev := "reached_" + stages[k]
		for j := 0; j < 3; j++ {
			cur := fmt.Sprintf("phase_%s_%d", stages[k], j)
			add(fmt.Sprintf("phenology_%s_%d", stages[k], j),
				[]logic.Atom{a(prev, v("W"))},
				[]logic.Atom{a(cur, v("W"))})
			prev = cur
		}
	}

	// Family 6 — operation bookkeeping: typed operations performed on a
	// wheat are recorded, and recorded operations open an audit entry.
	for _, t := range opTypes {
		add("record_"+t,
			[]logic.Atom{
				a("isPerformedOn", v("O"), v("W")),
				a(t, v("O")),
			},
			[]logic.Atom{a("received_"+t, v("W"))})
		add("audit_"+t,
			[]logic.Atom{a("received_"+t, v("W"))},
			[]logic.Atom{a("auditEntry_"+t, v("W"), v("E"))})
	}

	// Family 7 — pest risk propagation and alerts.
	for k := 0; k < numPests; k++ {
		add(fmt.Sprintf("risk%d", k),
			[]logic.Atom{a("hasPest", v("W"), pest(k))},
			[]logic.Atom{a(fmt.Sprintf("atRisk%d", k), v("W"))})
		add(fmt.Sprintf("alert%d", k),
			[]logic.Atom{a(fmt.Sprintf("atRisk%d", k), v("W"))},
			[]logic.Atom{a(fmt.Sprintf("pestAlert%d", k), v("W"), v("Z"))})
	}

	// Family 8 — soil typing consequences (drainage, water retention).
	for _, st := range soilTypes {
		add("drainage_"+st,
			[]logic.Atom{a(st, v("S"))},
			[]logic.Atom{a("drainageClass_"+st, v("S"))})
		add("retention_"+st,
			[]logic.Atom{a("drainageClass_"+st, v("S"))},
			[]logic.Atom{a("waterRetention_"+st, v("S"))})
	}

	// Family 9 — nitrogen enrichment from legume precedents.
	add("enrichment",
		[]logic.Atom{
			a("hasPrecedent", v("S"), v("C")),
			a("legume", v("C")),
		},
		[]logic.Atom{a("nitrogenEnriched", v("S"))})
	add("enrichment2",
		[]logic.Atom{a("nitrogenEnriched", v("S"))},
		[]logic.Atom{a("reducedFertilizerNeed", v("S"))})
	add("enrichment3",
		[]logic.Atom{a("reducedFertilizerNeed", v("S"))},
		[]logic.Atom{a("fertilizerPlan", v("S"), v("P"))})

	// Family 10 — traceability ledger: a long certification chain each
	// monitored parcel walks through (fills the rule budget to the
	// published 269 and gives the chase realistic depth).
	remaining := targetTGDs - len(out) - 1
	add("ledgerOpen",
		[]logic.Atom{a("monitoredParcel", v("W"))},
		[]logic.Atom{a("ledger0", v("W"))})
	for j := 0; j < remaining; j++ {
		add(fmt.Sprintf("ledger%d", j+1),
			[]logic.Atom{a(fmt.Sprintf("ledger%d", j), v("W"))},
			[]logic.Atom{a(fmt.Sprintf("ledger%d", j+1), v("W"))})
	}
	return out
}

// buildCDDs assembles the constraint set: 27 CDDs for v1, plus 73
// finer-grained ones for v2.
func buildCDDs(ver Version) []*logic.CDD {
	var out []*logic.CDD
	add := func(label string, body ...logic.Atom) {
		c := logic.MustCDD(body)
		c.Label = label
		out = append(out, c)
	}

	// v1 #1–3: the paper's Figure 2 example — fertilization is forbidden
	// at sensitive growth stages (tillering begin, flowering, ripening).
	for _, st := range []string{"tillering_begins", "flowering", "ripening"} {
		add("noFertAt_"+st,
			a("isAtGrowingStage", v("X"), v("Z")),
			a("isPerformedOn", v("X1"), v("X")),
			a(st, v("Z")),
			a("durum_wheat", v("X")),
			a("fertilization", v("X1")),
		)
	}
	// v1 #4: cereal-after-cereal rotation violation.
	add("noCerealPrecedent",
		a("hasPrecedent", v("S"), v("C")),
		a("sorghum", v("C")),
		a("isCultivatedOn", v("W"), v("S")),
		a("durum_wheat", v("W")),
	)
	// v1 #5: incompatible simultaneous growth stages.
	add("stageClash",
		a("isAtGrowingStage", v("W"), v("G1")),
		a("isAtGrowingStage", v("W"), v("G2")),
		a("incompatibleStages", v("G1"), v("G2")),
	)
	// v1 #6: chemically incompatible treatments on the same wheat.
	add("treatmentClash",
		a("treatedWith", v("W"), v("T1")),
		a("treatedWith", v("W"), v("T2")),
		a("incompatibleTreatments", v("T1"), v("T2")),
	)
	// v1 #7: operationally incompatible field operations on the same wheat.
	add("operationClash",
		a("isPerformedOn", v("O1"), v("W")),
		a("isPerformedOn", v("O2"), v("W")),
		a("incompatibleOps", v("O1"), v("O2")),
	)
	// v1 #8–25: per-pest banned treatments (18).
	for k := 0; k < 18; k++ {
		add(fmt.Sprintf("bannedTreatment%d", k),
			a("treatedWith", v("W"), v("T")),
			a("bannedFor", v("T"), pest(k)),
			a("hasPest", v("W"), pest(k)),
		)
	}
	// v1 #26–27: constraints over *derived* predicates — violated only
	// after the chase records stages and operations (the TGD/CDD interplay
	// the paper's KB exhibits).
	add("lateFertClash",
		a("reached_tillering_begins", v("W")),
		a("received_fertilization", v("W")),
	)
	add("floweringIrrigClash",
		a("reached_flowering", v("W")),
		a("received_irrigation", v("W")),
	)

	if ver == V1 {
		return out
	}

	// v2 adds 73 finer-grained constraints.
	// 14: irrigation/tillage forbidden at every stage…
	for _, t := range []string{"irrigation", "tillage"} {
		for k := range stages {
			add(fmt.Sprintf("no_%s_at_%s", t, stages[k]),
				a("isAtGrowingStage", v("X"), v("Z")),
				a("isPerformedOn", v("X1"), v("X")),
				a(stages[k], v("Z")),
				a(t, v("X1")),
			)
		}
	}
	// 4: fertilization forbidden at the remaining stages.
	for _, st := range []string{"germination", "tillering_ends", "stem_extension", "heading"} {
		add("noFertAt_"+st,
			a("isAtGrowingStage", v("X"), v("Z")),
			a("isPerformedOn", v("X1"), v("X")),
			a(st, v("Z")),
			a("fertilization", v("X1")),
		)
	}
	// 15: pests that must not occur on given soil types (3 soils × 5 pests).
	for si := 0; si < 3; si++ {
		for k := 0; k < 5; k++ {
			add(fmt.Sprintf("soilPest_%s_%d", soilTypes[si], k),
				a("isCultivatedOn", v("W"), v("S")),
				a(soilTypes[si], v("S")),
				a("hasPest", v("W"), pest(k)),
			)
		}
	}
	// 40: taxonomy-level precedent bans — crops of taxon c_j must not
	// precede a durum cultivation.
	n := 0
	for c := 0; c < 8 && n < 40; c++ {
		for j := 1; j <= 5 && n < 40; j++ {
			add(fmt.Sprintf("noTaxPrecedent%d_%d", c, j),
				a("hasPrecedent", v("S"), v("C")),
				a(fmt.Sprintf("cropTax%d_%d", c, j), v("C")),
				a("isCultivatedOn", v("W"), v("S")),
			)
			n++
		}
	}
	return out
}

// buildFacts assembles exactly targetFacts ground atoms, planting the
// conflict structure of the published tables: a small set of "hub" wheats
// participating in many overlapping violations (avg scope ≈ 8), for ≈14%
// of atoms involved in conflicts.
func buildFacts() *store.Store {
	st := store.New()
	addf := func(at logic.Atom) store.FactID { return st.MustAdd(at) }

	// Entities.
	for i := 0; i < numWheats; i++ {
		addf(a("durum_wheat", wheat(i)))
	}
	for i := 0; i < numSoils; i++ {
		addf(a("soil", soil(i)))
	}
	for k := range stages {
		addf(a(stages[k], stageID(k)))
	}
	for i := 0; i < numPests; i++ {
		addf(a("pest", pest(i)))
	}
	for i := 0; i < numTreatments; i++ {
		addf(a("treatment", treat(i)))
	}
	// Soil typing: each soil gets a type, round robin.
	for i := 0; i < numSoils; i++ {
		addf(a(soilTypes[i%len(soilTypes)], soil(i)))
	}
	// Cultivations: wheat i grows on soil i%numSoils (first 25 wheats).
	for i := 0; i < 25; i++ {
		addf(a("isCultivatedOn", wheat(i), soil(i%numSoils)))
	}
	// Precedents: clean soybean precedents on most soils.
	for i := 0; i < 14; i++ {
		prev := logic.C(fmt.Sprintf("soy_crop%d", i))
		addf(a("hasPrecedent", soil(i), prev))
		addf(a("soybean", prev))
		addf(a("legume", prev))
	}
	// Stage assignments: every wheat is at a safe stage by default.
	for i := 0; i < numWheats; i++ {
		addf(a("isAtGrowingStage", wheat(i), stageID(3))) // stem_extension (safe in v1)
	}
	// Operations: typed, performed on wheats.
	for i := 0; i < numOps; i++ {
		addf(a(opTypes[i%len(opTypes)], op(i)))
	}
	// Paper's Figure 2 example facts, verbatim.
	addf(a("hasPrecedent", logic.C("soil2"), logic.C("vacoparis")))
	addf(a("sorghum", logic.C("vacoparis")))
	// (soil(soil2) already present via the soil entity loop: soil indexes
	// are the same constant space.)

	// ---- Conflict planting ----
	// The published table reports 185 heavily-overlapping conflicts over
	// only 79 atoms (avg scope ≈ 8): a small set of shared "hub" atoms
	// participating in many violations. The grids below reproduce that
	// density.

	// Hub 1: wheat0 is (incorrectly recorded as) at tillering begin while
	// 5 fertilization operations target it → 5 overlapping noFertAt
	// conflicts sharing the stage atoms, plus the derived lateFertClash.
	addf(a("isAtGrowingStage", wheat(0), stageID(1))) // tillering_begins
	for i := 0; i < 5; i++ {
		addf(a("isPerformedOn", op(i*3), wheat(0))) // op(i*3) is fertilization
	}
	// Hub 2: wheat1 at flowering with 3 fertilizations and 1 irrigation
	// (the latter triggers the derived floweringIrrigClash).
	addf(a("isAtGrowingStage", wheat(1), stageID(5)))
	for i := 0; i < 3; i++ {
		addf(a("isPerformedOn", op(i*3+15), wheat(1)))
	}
	addf(a("isPerformedOn", op(16), wheat(1))) // op16 is irrigation

	// Operation-clash grid: five tillage operations, all pairwise
	// incompatible (both directions), each performed on five wheats — each
	// wheat yields 10·2 operationClash homomorphisms over shared
	// incompatibility atoms.
	clashOps := []int{2, 5, 8, 11, 14} // tillage-typed operation ids
	clashWheats := []int{2, 12, 13, 21, 22}
	for _, w := range clashWheats {
		for _, o := range clashOps {
			addf(a("isPerformedOn", op(o), wheat(w)))
		}
	}
	for i := 0; i < len(clashOps); i++ {
		for j := 0; j < len(clashOps); j++ {
			if i != j {
				addf(a("incompatibleOps", op(clashOps[i]), op(clashOps[j])))
			}
		}
	}

	// Treatment-clash grid: three mutually incompatible treatments on
	// three wheats.
	for _, w := range []int{3, 14, 23} {
		for i := 0; i < 3; i++ {
			addf(a("treatedWith", wheat(w), treat(i)))
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				addf(a("incompatibleTreatments", treat(i), treat(j)))
			}
		}
	}

	// Banned-treatment conflicts: wheats 4..6 treated with a treatment
	// banned for a pest they carry.
	for i := 4; i < 7; i++ {
		k := i - 4
		addf(a("treatedWith", wheat(i), treat(10+k)))
		addf(a("bannedFor", treat(10+k), pest(k)))
		addf(a("hasPest", wheat(i), pest(k)))
	}

	// Cereal-precedent conflict: wheat10 is cultivated on soil2, whose
	// precedent is the sorghum vacoparis (the Figure 2 facts above).
	addf(a("isCultivatedOn", wheat(10), logic.C("soil2")))

	// Stage clash: wheat11 recorded at two incompatible stages.
	addf(a("isAtGrowingStage", wheat(11), stageID(0)))
	addf(a("incompatibleStages", stageID(0), stageID(3)))

	// Benign pest records (no ban in v1).
	for i := 15; i < 20; i++ {
		addf(a("hasPest", wheat(i), pest(10+(i-15))))
	}

	// Precedents pointing at taxonomy crops: harmless under v1, but v2's
	// noTaxPrecedent constraints discover conflicts here at chase depths
	// 1–5 as the taxonomy chains derive the crop's ancestors.
	addf(a("hasPrecedent", soil(15), logic.C("crop_t0_0")))
	addf(a("isCultivatedOn", wheat(20), soil(15)))
	addf(a("hasPrecedent", soil(16), logic.C("crop_t1_0")))
	addf(a("isCultivatedOn", wheat(24), soil(16)))

	// Monitored parcels: two wheats walk the full traceability ledger,
	// giving the chase its published depth.
	addf(a("monitoredParcel", wheat(0)))
	addf(a("monitoredParcel", wheat(5)))

	// Taxonomy seeds: two crops per taxonomy chain.
	for c := 0; c < 8; c++ {
		for x := 0; x < 2; x++ {
			addf(a(fmt.Sprintf("cropTax%d_0", c), logic.C(fmt.Sprintf("crop_t%d_%d", c, x))))
		}
	}

	// ---- Padding to the published base size ----
	padSeq := 0
	for st.Len() < targetFacts {
		padSeq++
		addf(a("fieldObservation",
			logic.C(fmt.Sprintf("obs%d", padSeq)),
			logic.C(fmt.Sprintf("note%d", padSeq))))
	}
	return st
}
