package homo

import (
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// ReferenceForEachSeeded is the original map-based backtracking executor,
// retained verbatim (minus instrumentation) as the oracle for differential
// tests of the compiled plan engine. It must enumerate exactly the same
// matches in exactly the same order as Plan.ForEachSeeded; it is exported
// because the synth-workload differential test lives in an external test
// package (internal/synth depends on this package via core and chase).
//
// It is not used by any production code path and carries no counters.
func ReferenceForEachSeeded(s *store.Store, body []logic.Atom, seed logic.Subst, fn func(Match) bool) {
	if len(body) == 0 {
		sub := seed
		if sub == nil {
			sub = logic.NewSubst()
		}
		fn(Match{Subst: sub, Facts: nil})
		return
	}
	st := &refSearch{
		store: s,
		body:  body,
		sub:   logic.NewSubst(),
		facts: make([]store.FactID, len(body)),
		done:  make([]bool, len(body)),
		fn:    fn,
	}
	for v, t := range seed {
		st.sub[v] = t
	}
	st.run(0)
}

type refSearch struct {
	store   *store.Store
	body    []logic.Atom
	sub     logic.Subst
	facts   []store.FactID
	done    []bool
	fn      func(Match) bool
	stopped bool
	nodes   int64 // backtrack nodes visited (run invocations)
	probes  int64 // store index consultations
}

// run matches the remaining len(body)-depth atoms; returns after exploring
// the subtree (st.stopped set when fn asked to stop).
func (st *refSearch) run(depth int) {
	if st.stopped {
		return
	}
	st.nodes++
	if depth == len(st.body) {
		if !st.fn(Match{Subst: st.sub, Facts: st.facts}) {
			st.stopped = true
		}
		return
	}
	idx, cands := st.pickAtom()
	st.done[idx] = true
	pattern := st.body[idx]
	for _, fid := range cands {
		fact := st.store.FactRef(fid)
		bound, ok := st.bind(pattern, fact)
		if ok {
			st.facts[idx] = fid
			st.run(depth + 1)
		}
		// Undo bindings introduced by this atom.
		for _, v := range bound {
			delete(st.sub, v)
		}
		if st.stopped {
			break
		}
	}
	st.done[idx] = false
}

// pickAtom selects the unmatched atom with the fewest candidate facts under
// the current substitution and returns its index along with the candidates.
func (st *refSearch) pickAtom() (int, []store.FactID) {
	bestIdx := -1
	var bestCands []store.FactID
	bestCount := int(^uint(0) >> 1)
	for i, a := range st.body {
		if st.done[i] {
			continue
		}
		cands := st.candidates(a)
		if len(cands) < bestCount {
			bestIdx, bestCands, bestCount = i, cands, len(cands)
			if bestCount == 0 {
				break
			}
		}
	}
	return bestIdx, bestCands
}

// candidates returns the most selective index list for the pattern under the
// current substitution. The returned slice belongs to the store's index and
// must not be mutated.
func (st *refSearch) candidates(a logic.Atom) []store.FactID {
	st.probes++
	best := st.store.CandidatesByPred(a.Pred)
	for i, t := range a.Args {
		g := st.sub.Lookup(t)
		if !g.IsGround() {
			continue
		}
		st.probes++
		c := st.store.Candidates(a.Pred, i, g)
		if len(c) < len(best) {
			best = c
		}
	}
	return best
}

// bind attempts to extend the substitution so pattern maps onto fact. It
// returns the variables newly bound (for undo) and whether it succeeded.
// On failure the newly introduced bindings are already removed.
func (st *refSearch) bind(pattern, fact logic.Atom) ([]logic.Term, bool) {
	if pattern.Pred != fact.Pred || len(pattern.Args) != len(fact.Args) {
		return nil, false
	}
	var bound []logic.Term
	for i, t := range pattern.Args {
		ft := fact.Args[i]
		if t.IsVar() {
			if cur, ok := st.sub[t]; ok {
				if cur != ft {
					for _, v := range bound {
						delete(st.sub, v)
					}
					return nil, false
				}
				continue
			}
			st.sub[t] = ft
			bound = append(bound, t)
			continue
		}
		if t != ft {
			for _, v := range bound {
				delete(st.sub, v)
			}
			return nil, false
		}
	}
	return bound, true
}
