package homo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

func kbFig1(t testing.TB) *store.Store {
	t.Helper()
	return store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")),
	})
}

func TestExistsCDDBody(t *testing.T) {
	s := kbFig1(t)
	// prescribed(X, Y), hasAllergy(Y, X) — the running example's CDD body.
	body := []logic.Atom{
		logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
		logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
	}
	if !Exists(s, body) {
		t.Fatal("violated CDD body not found")
	}
	m, ok := FindFirst(s, body)
	if !ok {
		t.Fatal("FindFirst failed")
	}
	if m.Subst.Lookup(logic.V("X")) != logic.C("Aspirin") || m.Subst.Lookup(logic.V("Y")) != logic.C("John") {
		t.Errorf("unexpected hom %v", m.Subst)
	}
	if len(m.Facts) != 2 {
		t.Errorf("Facts = %v", m.Facts)
	}
}

func TestExistsFalseAfterRepair(t *testing.T) {
	s := kbFig1(t)
	// Repair F3 of Example 1.3: hasAllergy(John, X1).
	s.MustSetValue(store.Position{Fact: 1, Arg: 1}, logic.N("x1"))
	body := []logic.Atom{
		logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
		logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
	}
	if Exists(s, body) {
		t.Error("CDD body still matches after repair")
	}
}

func TestFindAllEnumerates(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a"), logic.C("b")),
		logic.NewAtom("p", logic.C("a"), logic.C("c")),
		logic.NewAtom("q", logic.C("b")),
		logic.NewAtom("q", logic.C("c")),
	})
	body := []logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		logic.NewAtom("q", logic.V("Y")),
	}
	ms := FindAll(s, body)
	if len(ms) != 2 {
		t.Fatalf("FindAll returned %d matches, want 2", len(ms))
	}
	seen := make(map[string]bool)
	for _, m := range ms {
		seen[m.Subst.Lookup(logic.V("Y")).Name] = true
	}
	if !seen["b"] || !seen["c"] {
		t.Errorf("answers = %v", seen)
	}
}

func TestRepeatedVariable(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a"), logic.C("a")),
		logic.NewAtom("p", logic.C("a"), logic.C("b")),
	})
	body := []logic.Atom{logic.NewAtom("p", logic.V("X"), logic.V("X"))}
	ms := FindAll(s, body)
	if len(ms) != 1 {
		t.Fatalf("repeated variable matches = %d, want 1", len(ms))
	}
	if ms[0].Subst.Lookup(logic.V("X")) != logic.C("a") {
		t.Errorf("binding = %v", ms[0].Subst)
	}
}

func TestConstantsInPattern(t *testing.T) {
	s := kbFig1(t)
	body := []logic.Atom{logic.NewAtom("hasAllergy", logic.C("Mike"), logic.V("Z"))}
	ms := FindAll(s, body)
	if len(ms) != 1 || ms[0].Subst.Lookup(logic.V("Z")) != logic.C("Penicillin") {
		t.Errorf("matches = %v", ms)
	}
	if Exists(s, []logic.Atom{logic.NewAtom("hasAllergy", logic.C("Nobody"), logic.V("Z"))}) {
		t.Error("matched absent constant")
	}
}

func TestNullsMatchExactly(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.N("n1")),
		logic.NewAtom("p", logic.C("n1")),
	})
	// A null pattern term matches only the null fact.
	ms := FindAll(s, []logic.Atom{logic.NewAtom("p", logic.N("n1"))})
	if len(ms) != 1 {
		t.Fatalf("null pattern matched %d facts", len(ms))
	}
	// Variables bind to nulls too.
	ms = FindAll(s, []logic.Atom{logic.NewAtom("p", logic.V("X"))})
	if len(ms) != 2 {
		t.Fatalf("variable matched %d facts, want 2", len(ms))
	}
	// Two distinct nulls never unify.
	if Exists(s, []logic.Atom{logic.NewAtom("p", logic.N("n2"))}) {
		t.Error("distinct null matched")
	}
}

func TestForEachSeeded(t *testing.T) {
	s := kbFig1(t)
	body := []logic.Atom{
		logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
		logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
	}
	// Seeding Y=Mike prevents any match.
	n := 0
	ForEachSeeded(s, body, logic.Subst{logic.V("Y"): logic.C("Mike")}, func(Match) bool {
		n++
		return true
	})
	if n != 0 {
		t.Errorf("seeded search found %d matches, want 0", n)
	}
	// Seeding Y=John finds the single one.
	ForEachSeeded(s, body, logic.Subst{logic.V("Y"): logic.C("John")}, func(m Match) bool {
		n++
		if m.Subst.Lookup(logic.V("X")) != logic.C("Aspirin") {
			t.Errorf("bad match %v", m.Subst)
		}
		return true
	})
	if n != 1 {
		t.Errorf("seeded search found %d matches, want 1", n)
	}
}

func TestEmptyBody(t *testing.T) {
	s := kbFig1(t)
	if !Exists(s, nil) {
		t.Error("empty conjunction should trivially hold")
	}
	ms := FindAll(s, nil)
	if len(ms) != 1 {
		t.Errorf("empty body matches = %d, want 1", len(ms))
	}
}

func TestEarlyStop(t *testing.T) {
	s := store.New()
	for i := 0; i < 50; i++ {
		s.MustAdd(logic.NewAtom("p", logic.C("a")))
	}
	n := 0
	ForEach(s, []logic.Atom{logic.NewAtom("p", logic.V("X"))}, func(Match) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("enumeration did not stop: %d", n)
	}
}

func TestDuplicateFactsYieldDuplicateMatches(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a")),
		logic.NewAtom("p", logic.C("a")),
	})
	ms := FindAll(s, []logic.Atom{logic.NewAtom("p", logic.V("X"))})
	if len(ms) != 2 {
		t.Errorf("matches = %d, want 2 (per fact occurrence)", len(ms))
	}
	if ms[0].Facts[0] == ms[1].Facts[0] {
		t.Error("matches point at the same fact")
	}
}

func TestAnswers(t *testing.T) {
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a"), logic.C("b")),
		logic.NewAtom("p", logic.C("c"), logic.C("b")),
		logic.NewAtom("p", logic.C("a"), logic.C("d")),
	})
	body := []logic.Atom{logic.NewAtom("p", logic.V("X"), logic.V("Y"))}
	ans := Answers(s, body, []logic.Term{logic.V("Y")})
	if len(ans) != 2 {
		t.Fatalf("answers = %v, want 2 distinct", ans)
	}
}

// Property: every match returned is a genuine homomorphism (image contained
// in the store), and the boolean evaluator agrees with the enumerator.
func TestMatchesAreHomomorphisms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := store.New()
		consts := []logic.Term{logic.C("a"), logic.C("b"), logic.C("c")}
		for i := 0; i < 15; i++ {
			s.MustAdd(logic.NewAtom(
				[]string{"p", "q"}[r.Intn(2)],
				consts[r.Intn(3)], consts[r.Intn(3)],
			))
		}
		vars := []logic.Term{logic.V("X"), logic.V("Y"), logic.V("Z")}
		body := make([]logic.Atom, 1+r.Intn(3))
		for i := range body {
			arg := func() logic.Term {
				if r.Intn(3) == 0 {
					return consts[r.Intn(3)]
				}
				return vars[r.Intn(3)]
			}
			body[i] = logic.NewAtom([]string{"p", "q"}[r.Intn(2)], arg(), arg())
		}
		ms := FindAll(s, body)
		for _, m := range ms {
			for i, a := range body {
				img := m.Subst.Apply(a)
				if !img.IsGround() {
					return false
				}
				if !s.Contains(img) {
					return false
				}
				if !s.FactRef(m.Facts[i]).Equal(img) {
					return false
				}
			}
		}
		return Exists(s, body) == (len(ms) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the index-driven search finds exactly the matches a brute-force
// cross-product search finds (compared as sets of substitution keys).
func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := store.New()
		consts := []logic.Term{logic.C("a"), logic.C("b")}
		for i := 0; i < 8; i++ {
			s.MustAdd(logic.NewAtom("p", consts[r.Intn(2)], consts[r.Intn(2)]))
		}
		vars := []logic.Term{logic.V("X"), logic.V("Y")}
		body := make([]logic.Atom, 1+r.Intn(2))
		for i := range body {
			arg := func() logic.Term {
				if r.Intn(3) == 0 {
					return consts[r.Intn(2)]
				}
				return vars[r.Intn(2)]
			}
			body[i] = logic.NewAtom("p", arg(), arg())
		}
		got := make(map[string]bool)
		for _, m := range FindAll(s, body) {
			got[m.Subst.Key()] = true
		}
		want := make(map[string]bool)
		var rec func(i int, sub logic.Subst)
		rec = func(i int, sub logic.Subst) {
			if i == len(body) {
				want[sub.Key()] = true
				return
			}
			for _, fid := range s.IDs() {
				fact := s.FactRef(fid)
				if fact.Pred != body[i].Pred {
					continue
				}
				s2 := sub.Clone()
				ok := true
				for j, t := range body[i].Args {
					g := s2.Lookup(t)
					switch {
					case g.IsVar():
						s2[t] = fact.Args[j]
					case g != fact.Args[j]:
						ok = false
					}
					if !ok {
						break
					}
				}
				if ok {
					rec(i+1, s2)
				}
			}
		}
		rec(0, logic.NewSubst())
		if len(got) != len(want) {
			return false
		}
		for k := range got {
			if !want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
