package homo

// wcoj.go: the generic-join (leapfrog-style) kernel, selected at compile
// time for cyclic bodies. Instead of enumerating atom-at-a-time — which on a
// triangle r(x,y), s(y,z), t(z,x) materializes the full binary join of two
// relations before the third prunes it — the kernel binds one variable slot
// at a time: it walks the distinct values of the smallest candidate list
// among the atoms sharing the slot, and keeps a value only if every such
// atom still has candidates under the extended bindings (the semi-join
// check). Once all slots are bound, the emit phase assigns concrete facts to
// each atom so Match.Facts stays a per-atom assignment like the other
// kernels.

// runWCOJ executes the generic join: collect the slots the seed left
// unbound, in the plan's compile-time variable order, then descend.
func (e *exec) runWCOJ() {
	e.wslots = e.wslots[:0]
	for _, sl := range e.p.vorder {
		if !e.set[sl] {
			e.wslots = append(e.wslots, sl)
		}
	}
	e.wjoin(0)
}

// wjoin binds the li-th unbound slot to each feasible value. Each call is
// one node of the search tree (mirroring the backtracking kernels' per-node
// accounting), and each level reuses a pooled distinct-value set so cached
// searches stay allocation-free in the steady state.
func (e *exec) wjoin(li int) {
	if e.stopped {
		return
	}
	e.nodes++
	if li == len(e.wslots) {
		e.wemit(0)
		return
	}
	sl := e.wslots[li]
	atoms := e.p.slotAtoms[sl]
	// Pivot: the atom with the fewest candidates under the current bindings
	// drives the value enumeration; the others only filter.
	pivot, best := -1, int(^uint(0)>>1)
	for _, ai := range atoms {
		if c := len(e.candidates(ai)); c < best {
			pivot, best = ai, c
		}
	}
	if best == 0 {
		return
	}
	arg := e.p.argOfSlot(pivot, sl)
	seen := e.wseen[li]
	clear(seen)
	for _, fid := range e.cands[pivot] {
		v := e.s.FactRef(fid).Args[arg]
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		mark := len(e.trail)
		e.bind[sl] = v
		e.set[sl] = true
		e.trail = append(e.trail, sl)
		for _, ai := range e.p.slotAtoms[sl] {
			e.fresh[ai] = false
		}
		ok := true
		for _, ai := range atoms {
			if len(e.candidates(ai)) == 0 {
				ok = false
				break
			}
		}
		if ok {
			e.wjoin(li + 1)
		}
		e.undo(mark)
		if e.stopped {
			return
		}
	}
}

// wemit enumerates, with every slot bound, the concrete facts each atom maps
// onto (candidate lists are now fully filtered; matchAtom only re-verifies
// repeated-variable and ground positions and can push nothing new).
func (e *exec) wemit(ai int) {
	if e.stopped {
		return
	}
	e.nodes++
	if ai == len(e.p.atoms) {
		e.matches++
		if e.fn == nil { // exists-only mode
			e.matched = true
			e.stopped = true
			return
		}
		if !e.fn(Match{Subst: e.materialize(), Facts: e.facts}) {
			e.stopped = true
		}
		return
	}
	for _, fid := range e.candidates(ai) {
		if e.matchAtom(ai, e.s.FactRef(fid)) {
			e.facts[ai] = fid
			e.wemit(ai + 1)
			if e.stopped {
				return
			}
		}
	}
}

// argOfSlot returns an argument position of atom ai holding slot sl. Atoms
// have a handful of arguments, so a linear scan beats a side table.
func (p *Plan) argOfSlot(ai, sl int) int {
	for j, pa := range p.atoms[ai].args {
		if pa.slot == sl {
			return j
		}
	}
	return -1
}
