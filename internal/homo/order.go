package homo

import (
	"sort"
	"strings"
	"sync"

	"kbrepair/internal/logic"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/store"
)

// Debug bundles carry the plan annotations as their plans.json section, so
// a post-mortem shows which order and kernel every body actually ran with.
func init() {
	flight.SetPlansProvider(func() any {
		infos := PlanInfos()
		if len(infos) == 0 {
			return nil
		}
		return infos
	})
}

// Mode identifies the execution kernel a plan was compiled for.
type Mode uint8

const (
	// ModeAuto lets Compile choose: the generic-join kernel for cyclic
	// bodies, the static-order backtracking kernel for everything else.
	ModeAuto Mode = iota
	// ModeStatic executes the atoms in a fixed order chosen at compile time
	// by the cost-based orderer, with one-step forward checking.
	ModeStatic
	// ModeWCOJ executes a variable-at-a-time generic join (leapfrog-style):
	// slots are bound one at a time by intersecting the candidate lists of
	// every atom mentioning the slot, which is worst-case optimal on cyclic
	// bodies where any atom-at-a-time order enumerates spurious prefixes.
	ModeWCOJ
	// ModeAdaptive is the legacy per-node least-candidates ordering. It is
	// never chosen automatically; tests and benchmarks select it explicitly
	// to compare trees against the old engine.
	ModeAdaptive
)

func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeWCOJ:
		return "wcoj"
	case ModeAdaptive:
		return "adaptive"
	default:
		return "auto"
	}
}

// CompileOpts direct plan compilation. The zero value compiles with a
// structural order and automatic kernel selection.
type CompileOpts struct {
	// Stats supplies predicate cardinalities and active-domain sizes for the
	// cost-based orderer. The order binds at compile time: pass the store the
	// plan will mostly run against. nil falls back to a structural order.
	Stats *store.Store
	// Prebound lists variables guaranteed bound by the seed before every
	// search (seed-specialized plans: the tracker's pinned-atom bindings,
	// TGD head checks seeded with frontier bindings). They count as bound
	// slots for ordering and join the cache key.
	Prebound []logic.Term
	// Mode forces a kernel; ModeAuto (the default) selects static or wcoj.
	Mode Mode
}

// spec is the cache-key fingerprint of the options: kernel mode and prebound
// variables. Stats stay out — they inform the order but two compiles of the
// same rule must share one plan, bound by whichever store compiled first
// (call sites compile at deterministic points, see chase.PrecompilePlans).
func (o CompileOpts) spec() string {
	if o.Mode == ModeAuto && len(o.Prebound) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString("m=")
	sb.WriteString(o.Mode.String())
	if len(o.Prebound) > 0 {
		sb.WriteString(";pre=")
		for i, v := range o.Prebound {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.Name)
		}
	}
	return sb.String()
}

// isCyclic reports whether the body hypergraph — atoms as hyperedges over
// variable slots — is not α-acyclic, by GYO ear removal: repeatedly remove
// an atom whose slots are either private to it or all contained in a single
// other atom; the body is acyclic iff everything can be removed. Triangles
// (r(x,y), s(y,z), t(z,x)) survive every pass and get the WCOJ kernel.
func (p *Plan) isCyclic() bool {
	n := len(p.atoms)
	if n < 3 {
		return false
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !alive[i] || !p.isEar(i, alive) {
				continue
			}
			alive[i] = false
			remaining--
			changed = true
		}
	}
	return remaining > 0
}

// isEar reports whether alive atom i is a GYO ear: every slot it shares
// with another alive atom is contained in one single alive witness atom.
func (p *Plan) isEar(i int, alive []bool) bool {
	var shared []int
	for _, s := range p.atoms[i].slots {
		for _, aj := range p.slotAtoms[s] {
			if aj != i && alive[aj] {
				shared = append(shared, s)
				break
			}
		}
	}
	if len(shared) == 0 {
		return true
	}
	// A witness must contain every shared slot; it suffices to test the
	// atoms containing the first one.
	for _, w := range p.slotAtoms[shared[0]] {
		if w == i || !alive[w] {
			continue
		}
		ok := true
		for _, s := range shared[1:] {
			if !containsInt(p.atoms[w].slots, s) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// staticOrder picks the atom visit order at compile time: greedily take the
// atom with the smallest estimated candidate count, restricted — whenever
// any candidate connects — to atoms sharing a bound slot, so the plan never
// degenerates into a cartesian product the data does not force. Ties break
// by body position, keeping the choice deterministic.
func (p *Plan) staticOrder(st *store.Store, pre []bool) []int {
	n := len(p.atoms)
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := make([]bool, len(p.vars))
	copy(bound, pre)
	for len(order) < n {
		connectedOnly := false
		for i := 0; i < n; i++ {
			if !used[i] && p.connected(i, bound) {
				connectedOnly = true
				break
			}
		}
		best, bestCost := -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if connectedOnly && !p.connected(i, bound) {
				continue
			}
			c := p.atomCost(i, st, bound)
			if best < 0 || c < bestCost {
				best, bestCost = i, c
			}
		}
		order = append(order, best)
		used[best] = true
		for _, s := range p.atoms[best].slots {
			bound[s] = true
		}
	}
	return order
}

// connected reports whether atom i touches a bound slot (or has none to
// touch — all-ground atoms are pure existence checks and may run anywhere).
func (p *Plan) connected(i int, bound []bool) bool {
	a := &p.atoms[i]
	if len(a.slots) == 0 {
		return true
	}
	for _, s := range a.slots {
		if bound[s] {
			return true
		}
	}
	return false
}

// atomCost estimates how many candidate facts atom i would enumerate if
// scheduled next. With stats it is the executor's own probe rule at compile
// time: the predicate cardinality, improved by exact candidate counts for
// ground arguments and by |pred| / adom-size selectivity for bound slots.
// Without stats a structural proxy ranks atoms by unbound slots (fewer is
// better), then ground arguments (more is better).
func (p *Plan) atomCost(i int, st *store.Store, bound []bool) int {
	a := &p.atoms[i]
	if st == nil {
		unbound := 0
		for _, s := range a.slots {
			if !bound[s] {
				unbound++
			}
		}
		ground := 0
		for _, pa := range a.args {
			if pa.slot < 0 {
				ground++
			}
		}
		return unbound*1024 - ground
	}
	base := len(st.CandidatesByPred(a.pred))
	cost := base
	for j, pa := range a.args {
		if pa.slot < 0 {
			if pa.term.IsGround() {
				if c := len(st.Candidates(a.pred, j, pa.term)); c < cost {
					cost = c
				}
			}
			continue
		}
		if bound[pa.slot] {
			if ad := st.ActiveDomainSize(a.pred, j); ad > 0 {
				est := base / ad
				if est < 1 {
					est = 1
				}
				if est < cost {
					cost = est
				}
			}
		}
	}
	return cost
}

// wcojOrder is the generic-join variable order: slots shared by the most
// atoms first (they constrain the most posting lists), ties by slot index.
func (p *Plan) wcojOrder() []int {
	ord := make([]int, len(p.vars))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool {
		ca, cb := len(p.slotAtoms[ord[a]]), len(p.slotAtoms[ord[b]])
		if ca != cb {
			return ca > cb
		}
		return ord[a] < ord[b]
	})
	return ord
}

// PlanInfo describes how one body was compiled: the kernel mode, the chosen
// order (atom renderings for static plans, variable names for wcoj plans)
// and whether store statistics informed it. The registry is keyed by the
// body's canonical string — the same key the attribution profile uses — so
// tooling can join profile rows to their plans.
type PlanInfo struct {
	Body     string   `json:"body"`
	Mode     string   `json:"mode"`
	Order    []string `json:"order,omitempty"`
	Prebound []string `json:"prebound,omitempty"`
	Stats    bool     `json:"stats"`
	Forced   bool     `json:"forced,omitempty"`
}

// OrderString renders the chosen order for tables: "a ▸ b ▸ c".
func (pi PlanInfo) OrderString() string {
	return strings.Join(pi.Order, " ▸ ")
}

var (
	planInfoMu     sync.Mutex
	planInfoByBody = map[string]PlanInfo{}
)

// recordPlanInfo notes how a body was compiled. A stats-informed compile
// replaces a structural one for the same body (KB validation compiles CDD
// bodies against a tiny anonymized store before any real scan; the profile
// should show the scan's order), otherwise the first writer wins — compile
// order at equal stats quality is deterministic, so so is the registry.
func recordPlanInfo(info PlanInfo) {
	planInfoMu.Lock()
	defer planInfoMu.Unlock()
	if old, ok := planInfoByBody[info.Body]; ok && (old.Stats || !info.Stats) {
		return
	}
	planInfoByBody[info.Body] = info
}

// PlanInfos returns every recorded plan annotation, sorted by body key.
func PlanInfos() []PlanInfo {
	planInfoMu.Lock()
	defer planInfoMu.Unlock()
	out := make([]PlanInfo, 0, len(planInfoByBody))
	for _, info := range planInfoByBody {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Body < out[j].Body })
	return out
}

// PlanInfoFor returns the annotation recorded for a body key, if any.
func PlanInfoFor(body string) (PlanInfo, bool) {
	planInfoMu.Lock()
	defer planInfoMu.Unlock()
	info, ok := planInfoByBody[body]
	return info, ok
}
