//go:build !race

package homo

const raceEnabled = false
