package homo

import (
	"fmt"
	"testing"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// triangleFixture builds a dense directed graph over k vertices and the
// cyclic triangle body r(X,Y), s(Y,Z), t(Z,X) — the canonical shape where
// atom-at-a-time enumeration explores spurious two-atom prefixes.
func triangleFixture(tb testing.TB, k int) (*store.Store, []logic.Atom) {
	tb.Helper()
	s := store.New()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			if (i+j)%2 == 0 {
				s.MustAdd(logic.NewAtom("r", logic.C(fmt.Sprintf("v%d", i)), logic.C(fmt.Sprintf("v%d", j))))
			}
			if (i*j)%3 != 1 {
				s.MustAdd(logic.NewAtom("s", logic.C(fmt.Sprintf("v%d", i)), logic.C(fmt.Sprintf("v%d", j))))
			}
			if (i+2*j)%5 != 2 {
				s.MustAdd(logic.NewAtom("t", logic.C(fmt.Sprintf("v%d", i)), logic.C(fmt.Sprintf("v%d", j))))
			}
		}
	}
	body := []logic.Atom{
		logic.NewAtom("r", logic.V("X"), logic.V("Y")),
		logic.NewAtom("s", logic.V("Y"), logic.V("Z")),
		logic.NewAtom("t", logic.V("Z"), logic.V("X")),
	}
	return s, body
}

// TestWCOJAutoSelected pins compile-time kernel selection: the cyclic
// triangle gets the generic-join kernel without being forced, while the
// acyclic chain fixture stays on the static kernel.
func TestWCOJAutoSelected(t *testing.T) {
	s, tri := triangleFixture(t, 8)
	if p := CompileWith(tri, CompileOpts{Stats: s}); p.Mode() != ModeWCOJ {
		t.Errorf("triangle body compiled to mode %s, want wcoj", p.Mode())
	}
	cs, chain := planFixture(t, 20)
	if p := CompileWith(chain, CompileOpts{Stats: cs}); p.Mode() != ModeStatic {
		t.Errorf("chain body compiled to mode %s, want static", p.Mode())
	}
}

// TestWCOJMatchesReference anchors the generic-join kernel to the reference
// executor's match set on the triangle, unseeded and seeded.
func TestWCOJMatchesReference(t *testing.T) {
	s, body := triangleFixture(t, 8)
	p := CompileWith(body, CompileOpts{Stats: s})
	if p.Mode() != ModeWCOJ {
		t.Fatalf("triangle body compiled to mode %s, want wcoj", p.Mode())
	}
	want := matchSet(collectReference(s, body, nil))
	if len(want) == 0 {
		t.Fatal("triangle fixture produced no matches; test would be vacuous")
	}
	if got := matchSet(collectPlan(p, s, nil)); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("wcoj match set differs\n got %v\nwant %v", got, want)
	}
	seed := logic.Subst{logic.V("X"): logic.C("v0")}
	wantSeeded := matchSet(collectReference(s, body, seed))
	if got := matchSet(collectPlan(p, s, seed)); fmt.Sprint(got) != fmt.Sprint(wantSeeded) {
		t.Fatalf("seeded wcoj match set differs\n got %v\nwant %v", got, wantSeeded)
	}
}

// TestWCOJRepeatedVar covers a cyclic body with a repeated variable inside
// one atom: the emit phase must re-verify the repeated position.
func TestWCOJRepeatedVar(t *testing.T) {
	s := store.New()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "a"}, {"b", "a"}, {"c", "b"}} {
		s.MustAdd(logic.NewAtom("r", logic.C(e[0]), logic.C(e[1])))
		s.MustAdd(logic.NewAtom("s", logic.C(e[0]), logic.C(e[1])))
		s.MustAdd(logic.NewAtom("t", logic.C(e[0]), logic.C(e[1])))
	}
	body := []logic.Atom{
		logic.NewAtom("r", logic.V("X"), logic.V("Y")),
		logic.NewAtom("s", logic.V("Y"), logic.V("Z")),
		logic.NewAtom("t", logic.V("Z"), logic.V("Z")),
	}
	p := CompileWith(body, CompileOpts{Mode: ModeWCOJ})
	want := matchSet(collectReference(s, body, nil))
	if got := matchSet(collectPlan(p, s, nil)); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("repeated-var wcoj match set differs\n got %v\nwant %v", got, want)
	}
}

// TestWCOJZeroAllocCached extends the tentpole's allocation guarantee to the
// generic-join kernel: a cached exists-mode search on a warm pool allocates
// nothing (the per-level distinct-value sets are pooled and cleared, not
// reallocated).
func TestWCOJZeroAllocCached(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	s, body := triangleFixture(t, 8)
	p := CompileWith(body, CompileOpts{Stats: s})
	p.Exists(s) // warm the pool
	if n := testing.AllocsPerRun(100, func() { p.Exists(s) }); n != 0 {
		t.Errorf("cached wcoj Exists allocates %v allocs/op, want 0", n)
	}
	fn := func(Match) bool { return true }
	p.ForEachSeeded(s, nil, fn)
	if n := testing.AllocsPerRun(100, func() { p.ForEachSeeded(s, nil, fn) }); n != 0 {
		t.Errorf("cached wcoj ForEach allocates %v allocs/op, want 0", n)
	}
}

// BenchmarkWCOJTriangle compares the kernels on the triangle workload in one
// run: generic join vs the legacy adaptive order.
func BenchmarkWCOJTriangle(b *testing.B) {
	s, body := triangleFixture(b, 16)
	for _, tc := range []struct {
		name string
		mode Mode
	}{{"wcoj", ModeWCOJ}, {"adaptive", ModeAdaptive}} {
		b.Run(tc.name, func(b *testing.B) {
			p := CompileWith(body, CompileOpts{Stats: s, Mode: tc.mode})
			fn := func(Match) bool { return true }
			p.ForEachSeeded(s, nil, fn)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ForEachSeeded(s, nil, fn)
			}
		})
	}
}
