// Differential property test: the compiled plan engine against the retained
// reference executor on randomized synthetic workloads. Lives in an external
// test package because internal/synth (via core and chase) depends on homo.
package homo_test

import (
	"fmt"
	"testing"

	"kbrepair/internal/homo"
	"kbrepair/internal/logic"
	"kbrepair/internal/synth"
)

// TestPlanDifferentialSynth checks, over a table of KB sizes and seeds, that
// for every rule-derived conjunction (CDD bodies, TGD bodies and heads) the
// compiled engine enumerates exactly the reference engine's match sequence —
// the same multiset in the same order with the same fact assignments — both
// unseeded and seeded with the first match's bindings.
func TestPlanDifferentialSynth(t *testing.T) {
	cases := []synth.Params{
		{Seed: 1, NumFacts: 40, InconsistencyRatio: 0.2, NumCDDs: 5},
		{Seed: 2, NumFacts: 120, InconsistencyRatio: 0.25, NumCDDs: 8, NumTGDs: 4, JoinVarRatio: 0.3},
		{Seed: 3, NumFacts: 300, InconsistencyRatio: 0.1, NumCDDs: 10, NumTGDs: 6, JoinVarRatio: 0.5},
		{Seed: 4, NumFacts: 80, InconsistencyRatio: 0.4, NumCDDs: 12, NumTGDs: 2, JoinVarRatio: 0.2},
	}
	for _, params := range cases {
		params := params
		t.Run(fmt.Sprintf("seed%d_facts%d", params.Seed, params.NumFacts), func(t *testing.T) {
			g, err := synth.Generate(params)
			if err != nil {
				t.Fatal(err)
			}
			var bodies [][]logic.Atom
			for _, c := range g.KB.CDDs {
				bodies = append(bodies, c.Body)
			}
			for _, r := range g.KB.TGDs {
				bodies = append(bodies, r.Body, r.Head)
			}
			total := 0
			for bi, body := range bodies {
				want := collect(t, body, g, true)
				got := collect(t, body, g, false)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("body %d (%v): sequences differ\n got %v\nwant %v", bi, body, got, want)
				}
				total += len(want)
				if len(want) == 0 {
					continue
				}
				// Seeded run: pin the first match's first binding.
				seed := firstBinding(t, body, g)
				wantSeeded := collectSeeded(t, body, g, seed, true)
				gotSeeded := collectSeeded(t, body, g, seed, false)
				if fmt.Sprint(gotSeeded) != fmt.Sprint(wantSeeded) {
					t.Fatalf("body %d seeded %v: sequences differ\n got %v\nwant %v", bi, seed, gotSeeded, wantSeeded)
				}
			}
			if total == 0 {
				t.Fatal("no conjunction matched anything; differential test would be vacuous")
			}
		})
	}
}

func collect(t *testing.T, body []logic.Atom, g *synth.Generated, reference bool) []string {
	t.Helper()
	return collectSeeded(t, body, g, nil, reference)
}

func collectSeeded(t *testing.T, body []logic.Atom, g *synth.Generated, seed logic.Subst, reference bool) []string {
	t.Helper()
	var out []string
	fn := func(m homo.Match) bool {
		out = append(out, m.Subst.Key()+fmt.Sprint(m.Facts))
		return true
	}
	if reference {
		homo.ReferenceForEachSeeded(g.KB.Facts, body, seed, fn)
	} else {
		homo.Compile(body).ForEachSeeded(g.KB.Facts, seed, fn)
	}
	return out
}

func firstBinding(t *testing.T, body []logic.Atom, g *synth.Generated) logic.Subst {
	t.Helper()
	seed := logic.NewSubst()
	homo.ReferenceForEachSeeded(g.KB.Facts, body, nil, func(m homo.Match) bool {
		// Pick the lexicographically smallest variable so the seed is
		// reproducible (map iteration order is randomized).
		var best logic.Term
		for v := range m.Subst {
			if best.Name == "" || v.Name < best.Name {
				best = v
			}
		}
		if best.Name != "" {
			seed[best] = m.Subst[best]
		}
		return false
	})
	return seed
}
