// Differential property test: the compiled plan engine against the retained
// reference executor on randomized synthetic workloads. Lives in an external
// test package because internal/synth (via core and chase) depends on homo.
package homo_test

import (
	"fmt"
	"sort"
	"testing"

	"kbrepair/internal/homo"
	"kbrepair/internal/logic"
	"kbrepair/internal/par"
	"kbrepair/internal/synth"
)

// workerCounts is the determinism matrix every differential case runs under:
// the sequential baseline, a small pool, and an oversubscribed pool.
var workerCounts = []int{1, 2, 8}

// TestPlanDifferentialSynth checks, over a table of KB sizes and seeds, that
// for every rule-derived conjunction (CDD bodies, TGD bodies and heads) the
// compiled engine enumerates exactly the reference engine's match set — the
// same bindings with the same fact assignments — both unseeded and seeded
// with the first match's bindings, in every compile mode and at every worker
// count. (Enumeration order is a plan property since the compile-time
// orderer; the set is the engine contract.)
func TestPlanDifferentialSynth(t *testing.T) {
	cases := []synth.Params{
		{Seed: 1, NumFacts: 40, InconsistencyRatio: 0.2, NumCDDs: 5},
		{Seed: 2, NumFacts: 120, InconsistencyRatio: 0.25, NumCDDs: 8, NumTGDs: 4, JoinVarRatio: 0.3},
		{Seed: 3, NumFacts: 300, InconsistencyRatio: 0.1, NumCDDs: 10, NumTGDs: 6, JoinVarRatio: 0.5},
		{Seed: 4, NumFacts: 80, InconsistencyRatio: 0.4, NumCDDs: 12, NumTGDs: 2, JoinVarRatio: 0.2},
	}
	defer par.SetWorkers(0)
	for _, params := range cases {
		params := params
		t.Run(fmt.Sprintf("seed%d_facts%d", params.Seed, params.NumFacts), func(t *testing.T) {
			g, err := synth.Generate(params)
			if err != nil {
				t.Fatal(err)
			}
			var bodies [][]logic.Atom
			for _, c := range g.KB.CDDs {
				bodies = append(bodies, c.Body)
			}
			for _, r := range g.KB.TGDs {
				bodies = append(bodies, r.Body, r.Head)
			}
			for _, w := range workerCounts {
				par.SetWorkers(w)
				total := 0
				for bi, body := range bodies {
					want := collect(t, body, g, true)
					total += len(want)
					for _, opts := range compileVariants(g) {
						got := collectWith(t, body, g, nil, opts)
						if fmt.Sprint(got) != fmt.Sprint(want) {
							t.Fatalf("workers=%d body %d (%v) opts %+v: match sets differ\n got %v\nwant %v",
								w, bi, body, opts, got, want)
						}
					}
					if len(want) == 0 {
						continue
					}
					// Seeded run: pin the first match's first binding.
					seed := firstBinding(t, body, g)
					wantSeeded := collectSeeded(t, body, g, seed, true)
					for _, opts := range compileVariants(g) {
						gotSeeded := collectWith(t, body, g, seed, opts)
						if fmt.Sprint(gotSeeded) != fmt.Sprint(wantSeeded) {
							t.Fatalf("workers=%d body %d seeded %v opts %+v: match sets differ\n got %v\nwant %v",
								w, bi, seed, opts, gotSeeded, wantSeeded)
						}
					}
				}
				if total == 0 {
					t.Fatal("no conjunction matched anything; differential test would be vacuous")
				}
			}
		})
	}
}

// TestPlanDifferentialRepeatedVars drives bodies with repeated variables —
// inside one atom and across atoms — through every kernel against the
// reference set.
func TestPlanDifferentialRepeatedVars(t *testing.T) {
	g, err := synth.Generate(synth.Params{Seed: 7, NumFacts: 90, InconsistencyRatio: 0.3, NumCDDs: 6, JoinVarRatio: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	preds := map[string]int{}
	for _, id := range g.KB.Facts.IDs() {
		a := g.KB.Facts.Fact(id)
		if a.Arity() >= 2 {
			preds[a.Pred] = a.Arity()
		}
	}
	var p2 string
	for p, ar := range preds {
		if ar == 2 && (p2 == "" || p < p2) {
			p2 = p
		}
	}
	if p2 == "" {
		t.Skip("no binary predicate in synth KB")
	}
	bodies := [][]logic.Atom{
		{logic.NewAtom(p2, logic.V("X"), logic.V("X"))},
		{logic.NewAtom(p2, logic.V("X"), logic.V("Y")), logic.NewAtom(p2, logic.V("Y"), logic.V("X"))},
		{logic.NewAtom(p2, logic.V("X"), logic.V("Y")), logic.NewAtom(p2, logic.V("Y"), logic.V("Z")), logic.NewAtom(p2, logic.V("Z"), logic.V("X"))},
	}
	for bi, body := range bodies {
		want := collect(t, body, g, true)
		for _, opts := range compileVariants(g) {
			got := collectWith(t, body, g, nil, opts)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("body %d (%v) opts %+v: match sets differ\n got %v\nwant %v", bi, body, opts, got, want)
			}
		}
	}
}

// compileVariants is the kernel matrix each differential body runs through:
// structural auto, stats-informed auto, and both forced kernels.
func compileVariants(g *synth.Generated) []homo.CompileOpts {
	return []homo.CompileOpts{
		{},
		{Stats: g.KB.Facts},
		{Mode: homo.ModeAdaptive},
		{Mode: homo.ModeWCOJ},
	}
}

func collect(t *testing.T, body []logic.Atom, g *synth.Generated, reference bool) []string {
	t.Helper()
	return collectSeeded(t, body, g, nil, reference)
}

func collectSeeded(t *testing.T, body []logic.Atom, g *synth.Generated, seed logic.Subst, reference bool) []string {
	t.Helper()
	if reference {
		var out []string
		homo.ReferenceForEachSeeded(g.KB.Facts, body, seed, func(m homo.Match) bool {
			out = append(out, m.Subst.Key()+fmt.Sprint(m.Facts))
			return true
		})
		sort.Strings(out)
		return out
	}
	return collectWith(t, body, g, seed, homo.CompileOpts{})
}

func collectWith(t *testing.T, body []logic.Atom, g *synth.Generated, seed logic.Subst, opts homo.CompileOpts) []string {
	t.Helper()
	var out []string
	homo.CompileWith(body, opts).ForEachSeeded(g.KB.Facts, seed, func(m homo.Match) bool {
		out = append(out, m.Subst.Key()+fmt.Sprint(m.Facts))
		return true
	})
	sort.Strings(out)
	return out
}

func firstBinding(t *testing.T, body []logic.Atom, g *synth.Generated) logic.Subst {
	t.Helper()
	seed := logic.NewSubst()
	homo.ReferenceForEachSeeded(g.KB.Facts, body, nil, func(m homo.Match) bool {
		// Pick the lexicographically smallest variable so the seed is
		// reproducible (map iteration order is randomized).
		var best logic.Term
		for v := range m.Subst {
			if best.Name == "" || v.Name < best.Name {
				best = v
			}
		}
		if best.Name != "" {
			seed[best] = m.Subst[best]
		}
		return false
	})
	return seed
}
