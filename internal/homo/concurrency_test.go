package homo

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// matchKeys renders every homomorphism of body into s as a sorted list of
// "subst|facts" strings — a canonical transcript of one search.
func matchKeys(s *store.Store, body []logic.Atom) []string {
	var out []string
	ForEach(s, body, func(m Match) bool {
		out = append(out, fmt.Sprintf("%s|%v", m.Subst.Key(), m.Facts))
		return true
	})
	sort.Strings(out)
	return out
}

// TestConcurrentSearchesAreIndependent runs many simultaneous searches
// over one shared store under the race detector. All per-search state
// (substitution, atom order, fact assignment, instrumentation tallies)
// must be goroutine-local — this is the property the parallel conflict
// detection and trigger collection fan-outs rely on.
func TestConcurrentSearchesAreIndependent(t *testing.T) {
	s := store.New()
	consts := []logic.Term{logic.C("a"), logic.C("b"), logic.C("c")}
	for i := 0; i < 27; i++ {
		s.MustAdd(logic.NewAtom("p", consts[i%3], consts[(i/3)%3]))
		s.MustAdd(logic.NewAtom("q", consts[(i/9)%3], consts[i%3]))
	}
	bodies := [][]logic.Atom{
		{
			logic.NewAtom("p", logic.V("X"), logic.V("Y")),
			logic.NewAtom("q", logic.V("Y"), logic.V("Z")),
		},
		{
			logic.NewAtom("p", logic.V("X"), logic.V("X")),
		},
		{
			logic.NewAtom("q", logic.C("a"), logic.V("Y")),
			logic.NewAtom("p", logic.V("Y"), logic.V("Z")),
		},
	}
	want := make([][]string, len(bodies))
	for i, b := range bodies {
		want[i] = matchKeys(s, b)
		if len(want[i]) == 0 {
			t.Fatalf("body %d has no matches; test would be vacuous", i)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		bi := g % len(bodies)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got := matchKeys(s, bodies[bi])
				if len(got) != len(want[bi]) {
					t.Errorf("body %d: %d matches, want %d", bi, len(got), len(want[bi]))
					return
				}
				for j := range got {
					if got[j] != want[bi][j] {
						t.Errorf("body %d: match %d = %q, want %q", bi, j, got[j], want[bi][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
