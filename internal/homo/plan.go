package homo

import (
	"sync"

	"kbrepair/internal/logic"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
	"kbrepair/internal/store"
)

// Plan-compiler instrumentation: how many conjunctions were compiled and how
// often a compiled plan was served from the rule-keyed cache. A healthy
// session compiles each rule body once and then hits the cache for the
// remaining thousands of searches.
var (
	mPlanCompiles = obs.NewCounter("homo.plan_compiles")
	mPlanHits     = obs.NewCounter("homo.plan_cache_hits")
)

// Per-body attribution families (see internal/obs/attr): every search
// flushes its cost against the plan's interned body key, so the profile can
// rank bodies by tree size and self-time.
var (
	attrSearches  = attr.NewCounterVec(attr.FamSearches)
	attrNodes     = attr.NewCounterVec(attr.FamNodes)
	attrProbes    = attr.NewCounterVec(attr.FamProbes)
	attrMatches   = attr.NewCounterVec(attr.FamMatches)
	attrNodesPer  = attr.NewHistogramVec(attr.FamNodesPerSearch, attr.SizeBuckets)
	attrProbesPer = attr.NewHistogramVec(attr.FamProbesPerSearch, attr.SizeBuckets)
	attrTime      = attr.NewHistogramVec(attr.FamSearchSeconds, obs.LatencyBuckets)
)

// bodyKey is the content-addressed attribution key of a conjunction: the
// canonical rendering of its atoms, identical across KB clones, reps and
// worker counts wherever the same body is compiled.
func bodyKey(body []logic.Atom) string {
	if len(body) == 0 {
		return "(empty)"
	}
	return logic.AtomsString(body)
}

// planArg is one argument position of a compiled atom: either a ground term
// that candidate facts must match exactly, or a variable slot into the
// executor's flat binding array.
type planArg struct {
	slot int        // variable slot; -1 for a ground term
	term logic.Term // the ground term when slot < 0
}

// planAtom is one body atom with its variables interned to integer slots.
type planAtom struct {
	pred  string
	arity int
	args  []planArg
	slots []int // distinct slots occurring in this atom
}

// Plan is a conjunction compiled for repeated execution: variables interned
// to dense integer slots, ground positions precomputed, and a per-slot
// reverse index (slotAtoms) that tells the executor which atoms' candidate
// sets are invalidated when a slot binds or unbinds. A Plan is immutable
// after Compile and safe for concurrent use; per-search mutable state lives
// in pooled exec instances.
type Plan struct {
	atoms     []planAtom
	vars      []logic.Term // slot -> variable term
	slotOf    map[logic.Term]int
	slotAtoms [][]int // slot -> indices of atoms mentioning it
	pool      sync.Pool
	// mode is the kernel resolved at compile time (static, wcoj or the
	// explicitly requested legacy adaptive).
	mode Mode
	// order is the static kernel's atom visit order; vorder is the wcoj
	// kernel's slot binding order. Only the resolved mode's field is set.
	order  []int
	vorder []int
	// aid is the interned attribution key of the body, resolved at compile
	// time (attr.None when attribution was off then — plans compiled before
	// attr.SetEnabled record nothing, which the CLIs avoid by enabling
	// attribution before any work).
	aid attr.ID
}

// Mode returns the kernel the plan was compiled for.
func (p *Plan) Mode() Mode { return p.mode }

// Compile builds an execution plan for body with default options: automatic
// kernel selection and a structural (stats-free) join order. Call sites that
// know the store the plan will run against should prefer CompileWith with
// Stats so the orderer sees real cardinalities.
func Compile(body []logic.Atom) *Plan {
	return CompileWith(body, CompileOpts{})
}

// CompileWith builds an execution plan for body. The kernel and the join
// order are fixed here, once: the cost-based orderer (order.go) picks the
// atom sequence from opts.Stats cardinalities and bound-slot connectivity,
// cyclic bodies get the generic-join kernel, and opts.Prebound slots count
// as bound from the start (seed-specialized plans).
func CompileWith(body []logic.Atom, opts CompileOpts) *Plan {
	mPlanCompiles.Inc()
	p := &Plan{
		atoms:  make([]planAtom, len(body)),
		slotOf: make(map[logic.Term]int),
		aid:    attr.None,
	}
	if attr.Enabled() {
		p.aid = attr.Intern(bodyKey(body))
	}
	for i, a := range body {
		pa := planAtom{pred: a.Pred, arity: len(a.Args), args: make([]planArg, len(a.Args))}
		for j, t := range a.Args {
			if !t.IsVar() {
				pa.args[j] = planArg{slot: -1, term: t}
				continue
			}
			s, ok := p.slotOf[t]
			if !ok {
				s = len(p.vars)
				p.slotOf[t] = s
				p.vars = append(p.vars, t)
				p.slotAtoms = append(p.slotAtoms, nil)
			}
			pa.args[j] = planArg{slot: s}
			if n := len(pa.slots); n == 0 || !containsInt(pa.slots, s) {
				pa.slots = append(pa.slots, s)
				p.slotAtoms[s] = append(p.slotAtoms[s], i)
			}
		}
		p.atoms[i] = pa
	}
	pre := make([]bool, len(p.vars))
	var preNames []string
	for _, v := range opts.Prebound {
		if sl, ok := p.slotOf[v]; ok {
			pre[sl] = true
		}
		preNames = append(preNames, v.Name)
	}
	mode := opts.Mode
	forced := mode != ModeAuto
	if mode == ModeAuto {
		if p.isCyclic() {
			mode = ModeWCOJ
		} else {
			mode = ModeStatic
		}
	}
	p.mode = mode
	var orderDesc []string
	switch mode {
	case ModeWCOJ:
		p.vorder = p.wcojOrder()
		for _, s := range p.vorder {
			orderDesc = append(orderDesc, p.vars[s].Name)
		}
	case ModeStatic:
		p.order = p.staticOrder(opts.Stats, pre)
		for _, i := range p.order {
			orderDesc = append(orderDesc, body[i].String())
		}
	}
	if len(body) > 0 {
		recordPlanInfo(PlanInfo{
			Body:     bodyKey(body),
			Mode:     mode.String(),
			Order:    orderDesc,
			Prebound: preNames,
			Stats:    opts.Stats != nil,
			Forced:   forced,
		})
	}
	p.pool.New = func() any { return newExec(p) }
	return p
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Cache tags distinguish the conjunctions compiled from one rule. Pinned
// plans (the conflict tracker's body-minus-one-atom tasks) use TagPinned+i
// for pinned atom index i.
const (
	TagBody   = 0
	TagHead   = 1
	TagPinned = 2
)

// CacheKey identifies a compiled conjunction in the process-wide plan cache.
// Owner must be a stable comparable identity for the conjunction — in
// practice the *logic.TGD or *logic.CDD pointer, which is shared across KB
// clones and lives for the session. Spec is the compile-option fingerprint
// (kernel mode + prebound variables); CachedPlanWith fills it from the
// options, so differently specialized plans of one rule never collide.
type CacheKey struct {
	Owner any
	Tag   int
	Spec  string
}

var (
	planCache sync.Map // CacheKey -> *Plan
	// planCompileMu serializes cache misses so each key compiles exactly
	// once. The old LoadOrStore race compiled a key twice when two workers
	// missed together — harmless for the plans (the loser was dropped) but
	// it made homo.plan_compiles / homo.plan_cache_hits depend on
	// scheduling, which the profile's cache-hit rate must not.
	planCompileMu sync.Mutex
)

// CachedPlan returns the compiled plan for key, compiling body on first use
// with default options. The cache is keyed by rule identity, not body
// contents: callers must pass the same body for the same key every time
// (rules are immutable, so this holds for all rule-derived conjunctions).
func CachedPlan(key CacheKey, body []logic.Atom) *Plan {
	return CachedPlanWith(key, body, CompileOpts{})
}

// CachedPlanWith is CachedPlan with explicit compile options. The options'
// mode and prebound variables join the cache key, so a rule can hold both a
// general and a seed-specialized plan; Stats do not (the first compile for a
// key binds the order — compile at a point where the store is representative,
// e.g. chase.PrecompilePlans before any parallel fan-out).
func CachedPlanWith(key CacheKey, body []logic.Atom, opts CompileOpts) *Plan {
	key.Spec = opts.spec()
	if v, ok := planCache.Load(key); ok {
		mPlanHits.Inc()
		return v.(*Plan)
	}
	planCompileMu.Lock()
	defer planCompileMu.Unlock()
	if v, ok := planCache.Load(key); ok {
		mPlanHits.Inc()
		return v.(*Plan)
	}
	p := CompileWith(body, opts)
	planCache.Store(key, p)
	return p
}

// exec is the per-search mutable state of a plan: a flat binding array
// indexed by slot, an undo trail, and a per-atom candidate-list cache with
// dirty flags. Instances are pooled per plan so a cached-plan search
// allocates nothing.
type exec struct {
	p  *Plan
	s  *store.Store
	fn func(Match) bool

	bind  []logic.Term // slot -> bound term
	set   []bool       // slot -> bound?
	trail []int        // bound slots in binding order; undo = truncate

	done  []bool
	facts []store.FactID

	// Candidate cache: cands[i] is valid while fresh[i] holds. A slot
	// binding or unbinding clears fresh for every atom mentioning the slot
	// (Plan.slotAtoms), so each index is probed once per binding change
	// rather than once per backtrack node.
	cands [][]store.FactID
	fresh []bool

	// Generic-join state (wcoj plans only): the unbound slots of this search
	// in binding order, and per-level distinct-value sets, reused across
	// searches so the steady state allocates nothing.
	wslots []int
	wseen  []map[logic.Term]struct{}

	// scratch is the Subst materialized for fn at each match; like the
	// legacy engine's live map it is only valid during the callback.
	scratch logic.Subst
	// Seed bindings for variables that have no slot (not mentioned in the
	// body, e.g. head variables in tracker seeds); appended at match time.
	extraV []logic.Term
	extraT []logic.Term

	stopped bool
	matched bool
	nodes   int64
	probes  int64
	matches int64
}

func newExec(p *Plan) *exec {
	n := len(p.atoms)
	e := &exec{
		p:       p,
		bind:    make([]logic.Term, len(p.vars)),
		set:     make([]bool, len(p.vars)),
		trail:   make([]int, 0, len(p.vars)),
		done:    make([]bool, n),
		facts:   make([]store.FactID, n),
		cands:   make([][]store.FactID, n),
		fresh:   make([]bool, n),
		scratch: logic.NewSubst(),
	}
	if p.mode == ModeWCOJ {
		e.wslots = make([]int, 0, len(p.vars))
		e.wseen = make([]map[logic.Term]struct{}, len(p.vars))
		for i := range e.wseen {
			e.wseen[i] = make(map[logic.Term]struct{})
		}
	}
	return e
}

func (e *exec) reset(s *store.Store, seed logic.Subst, fn func(Match) bool) {
	e.s, e.fn = s, fn
	for i := range e.set {
		e.set[i] = false
	}
	for i := range e.done {
		e.done[i] = false
		e.fresh[i] = false
	}
	e.trail = e.trail[:0]
	e.extraV = e.extraV[:0]
	e.extraT = e.extraT[:0]
	e.stopped, e.matched = false, false
	e.nodes, e.probes, e.matches = 0, 0, 0
	for v, t := range seed {
		if sl, ok := e.p.slotOf[v]; ok {
			e.bind[sl] = t
			e.set[sl] = true
		} else {
			e.extraV = append(e.extraV, v)
			e.extraT = append(e.extraT, t)
		}
	}
}

// release drops references into the store so pooled executors do not pin
// candidate index slices (or the store itself) between searches.
func (e *exec) release() {
	e.s, e.fn = nil, nil
	for i := range e.cands {
		e.cands[i] = nil
	}
}

// runStatic matches the atoms in the plan's compile-time order, with
// one-step forward checking: after extending the bindings it peeks at the
// next atom's candidate list — served from the per-atom cache, so the peek
// costs at most one index probe — and skips the child node outright when
// the list is empty. The adaptive kernel pays a full node to discover the
// same dead end, so at equal order quality static trees are strictly
// smaller on failing branches.
func (e *exec) runStatic(depth int) {
	if e.stopped {
		return
	}
	e.nodes++
	if depth == len(e.p.atoms) {
		e.matches++
		if e.fn == nil { // exists-only mode
			e.matched = true
			e.stopped = true
			return
		}
		if !e.fn(Match{Subst: e.materialize(), Facts: e.facts}) {
			e.stopped = true
		}
		return
	}
	idx := e.p.order[depth]
	cands := e.candidates(idx)
	last := depth+1 == len(e.p.atoms)
	for _, fid := range cands {
		fact := e.s.FactRef(fid)
		mark := len(e.trail)
		if e.matchAtom(idx, fact) {
			e.facts[idx] = fid
			if last || len(e.candidates(e.p.order[depth+1])) > 0 {
				e.runStatic(depth + 1)
			}
		}
		e.undo(mark)
		if e.stopped {
			break
		}
	}
}

// run matches the remaining len(atoms)-depth atoms — the same search tree,
// node for node, as the legacy engine's search.run. Kept as the explicitly
// selectable ModeAdaptive kernel.
func (e *exec) run(depth int) {
	if e.stopped {
		return
	}
	e.nodes++
	if depth == len(e.p.atoms) {
		e.matches++
		if e.fn == nil { // exists-only mode
			e.matched = true
			e.stopped = true
			return
		}
		if !e.fn(Match{Subst: e.materialize(), Facts: e.facts}) {
			e.stopped = true
		}
		return
	}
	idx, cands := e.pickAtom()
	e.done[idx] = true
	for _, fid := range cands {
		fact := e.s.FactRef(fid)
		mark := len(e.trail)
		if e.matchAtom(idx, fact) {
			e.facts[idx] = fid
			e.run(depth + 1)
		}
		e.undo(mark)
		if e.stopped {
			break
		}
	}
	e.done[idx] = false
}

// pickAtom selects the unmatched atom with the fewest candidates under the
// current bindings — identical selection (including tie-breaking by body
// order and the zero-candidate early break) to the legacy engine, but
// candidate lists are served from the per-atom cache when still fresh.
func (e *exec) pickAtom() (int, []store.FactID) {
	bestIdx := -1
	var bestCands []store.FactID
	bestCount := int(^uint(0) >> 1)
	for i := range e.p.atoms {
		if e.done[i] {
			continue
		}
		c := e.candidates(i)
		if len(c) < bestCount {
			bestIdx, bestCands, bestCount = i, c, len(c)
			if bestCount == 0 {
				break
			}
		}
	}
	return bestIdx, bestCands
}

// candidates returns the most selective index list for atom i, recomputing
// only when a slot of the atom changed since the last probe. The probe
// selection order (predicate index first, then argument positions left to
// right, strictly smaller wins) matches the legacy engine exactly — the
// chosen list's identity, not just its length, determines enumeration order.
func (e *exec) candidates(i int) []store.FactID {
	if e.fresh[i] {
		return e.cands[i]
	}
	a := &e.p.atoms[i]
	e.probes++
	best := e.s.CandidatesByPred(a.pred)
	for j := range a.args {
		pa := a.args[j]
		var g logic.Term
		if pa.slot < 0 {
			g = pa.term
		} else if e.set[pa.slot] {
			g = e.bind[pa.slot]
		} else {
			continue
		}
		if !g.IsGround() {
			continue
		}
		e.probes++
		c := e.s.Candidates(a.pred, j, g)
		if len(c) < len(best) {
			best = c
		}
	}
	e.cands[i] = best
	e.fresh[i] = true
	return best
}

// matchAtom extends the bindings so atom i maps onto fact, pushing newly
// bound slots onto the trail. On failure, partially pushed bindings are left
// on the trail for the caller's undo — run always undoes to its mark.
func (e *exec) matchAtom(i int, fact logic.Atom) bool {
	a := &e.p.atoms[i]
	if a.pred != fact.Pred || a.arity != len(fact.Args) {
		return false
	}
	for j, pa := range a.args {
		ft := fact.Args[j]
		if pa.slot < 0 {
			if pa.term != ft {
				return false
			}
			continue
		}
		if e.set[pa.slot] {
			if e.bind[pa.slot] != ft {
				return false
			}
			continue
		}
		e.bind[pa.slot] = ft
		e.set[pa.slot] = true
		e.trail = append(e.trail, pa.slot)
		for _, ai := range e.p.slotAtoms[pa.slot] {
			e.fresh[ai] = false
		}
	}
	return true
}

// undo unbinds every slot past mark and invalidates the affected atoms'
// candidate caches.
func (e *exec) undo(mark int) {
	for k := len(e.trail) - 1; k >= mark; k-- {
		sl := e.trail[k]
		e.set[sl] = false
		for _, ai := range e.p.slotAtoms[sl] {
			e.fresh[ai] = false
		}
	}
	e.trail = e.trail[:mark]
}

// materialize refills the scratch Subst from the binding array plus any
// non-body seed bindings. At a full match every plan slot is bound.
func (e *exec) materialize() logic.Subst {
	m := e.scratch
	clear(m)
	for i, v := range e.p.vars {
		if e.set[i] {
			m[v] = e.bind[i]
		}
	}
	for i, v := range e.extraV {
		m[v] = e.extraT[i]
	}
	return m
}

// ForEach enumerates homomorphisms from the plan's conjunction to s. The
// Match passed to fn is only valid during the call; clone it to retain it.
// Returning false from fn stops the enumeration.
func (p *Plan) ForEach(s *store.Store, fn func(Match) bool) {
	p.ForEachSeeded(s, nil, fn)
}

// ForEachSeeded is ForEach with an initial partial substitution; only
// homomorphisms extending seed are enumerated. seed may be nil.
func (p *Plan) ForEachSeeded(s *store.Store, seed logic.Subst, fn func(Match) bool) {
	p.search(s, seed, fn)
}

// Exists reports whether at least one homomorphism exists (boolean
// conjunctive query evaluation). No Subst is materialized.
func (p *Plan) Exists(s *store.Store) bool {
	return p.search(s, nil, nil)
}

// ExistsSeeded reports whether a homomorphism extending seed exists.
func (p *Plan) ExistsSeeded(s *store.Store, seed logic.Subst) bool {
	return p.search(s, seed, nil)
}

// search runs one execution of the plan; fn == nil means exists-only mode
// (stop at the first match, no Subst materialization). Returns whether a
// match was found.
func (p *Plan) search(s *store.Store, seed logic.Subst, fn func(Match) bool) bool {
	mSearches.Inc()
	tm := obs.StartTimer()
	if len(p.atoms) == 0 {
		if fn != nil {
			sub := seed
			if sub == nil {
				sub = logic.NewSubst()
			}
			fn(Match{Subst: sub, Facts: nil})
		}
		flight.Record(flight.KindHomoSearch, 0, 0, 0, 1)
		mTime.Since(tm)
		if attr.Enabled() {
			attrSearches.Add(p.aid, 1)
			attrMatches.Add(p.aid, 1)
			attrNodesPer.Observe(p.aid, 0)
			attrProbesPer.Observe(p.aid, 0)
			attrTime.Since(p.aid, tm)
		}
		return true
	}
	e := p.pool.Get().(*exec)
	e.reset(s, seed, fn)
	switch p.mode {
	case ModeWCOJ:
		e.runWCOJ()
	case ModeAdaptive:
		e.run(0)
	default:
		e.runStatic(0)
	}
	matched := e.matched || e.matches > 0
	mNodes.Add(e.nodes)
	mProbes.Add(e.probes)
	flight.Record(flight.KindHomoSearch, int64(len(p.atoms)), e.nodes, e.probes, e.matches)
	mTime.Since(tm)
	if attr.Enabled() {
		attrSearches.Add(p.aid, 1)
		attrNodes.Add(p.aid, e.nodes)
		attrProbes.Add(p.aid, e.probes)
		attrMatches.Add(p.aid, e.matches)
		attrNodesPer.Observe(p.aid, float64(e.nodes))
		attrProbesPer.Observe(p.aid, float64(e.probes))
		attrTime.Since(p.aid, tm)
	}
	e.release()
	p.pool.Put(e)
	return matched
}
