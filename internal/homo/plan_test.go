package homo

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// planFixture builds a store with enough joins to make the adaptive atom
// ordering and candidate caching do real work.
func planFixture(tb testing.TB, n int) (*store.Store, []logic.Atom) {
	tb.Helper()
	s := store.New()
	for i := 0; i < n; i++ {
		s.MustAdd(logic.NewAtom("p", logic.C(fmt.Sprintf("a%d", i)), logic.C(fmt.Sprintf("b%d", i%7))))
		s.MustAdd(logic.NewAtom("q", logic.C(fmt.Sprintf("b%d", i%7)), logic.C(fmt.Sprintf("c%d", i%5))))
		if i%3 == 0 {
			s.MustAdd(logic.NewAtom("r", logic.C(fmt.Sprintf("c%d", i%5))))
		}
	}
	body := []logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		logic.NewAtom("q", logic.V("Y"), logic.V("Z")),
		logic.NewAtom("r", logic.V("Z")),
	}
	return s, body
}

// matchSignature renders a match sequence for order-sensitive comparison.
func matchSignature(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Subst.Key() + fmt.Sprint(m.Facts)
	}
	return out
}

// matchSet renders a match sequence as a sorted set: the differential anchor
// since the compile-time orderer — enumeration order is a plan property now,
// not part of the engine contract, but the match *set* (bindings plus fact
// assignments) must be exactly the reference engine's.
func matchSet(ms []Match) []string {
	out := matchSignature(ms)
	sort.Strings(out)
	return out
}

func collectPlan(p *Plan, s *store.Store, seed logic.Subst) []Match {
	var out []Match
	p.ForEachSeeded(s, seed, func(m Match) bool {
		out = append(out, m.Clone())
		return true
	})
	return out
}

func collectReference(s *store.Store, body []logic.Atom, seed logic.Subst) []Match {
	var out []Match
	ReferenceForEachSeeded(s, body, seed, func(m Match) bool {
		out = append(out, m.Clone())
		return true
	})
	return out
}

// TestPlanMatchesReference pins the compiled engine to the reference
// executor on a joined workload: the same match set — bindings and fact
// assignments — in every compile mode.
func TestPlanMatchesReference(t *testing.T) {
	s, body := planFixture(t, 60)
	want := matchSet(collectReference(s, body, nil))
	if len(want) == 0 {
		t.Fatal("fixture produced no matches; test would be vacuous")
	}
	for _, opts := range []CompileOpts{
		{},
		{Stats: s},
		{Mode: ModeAdaptive},
		{Mode: ModeWCOJ},
	} {
		got := matchSet(collectPlan(CompileWith(body, opts), s, nil))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("opts %+v: match sets differ\n got %v\nwant %v", opts, got, want)
		}
	}
}

// TestPlanSeededMatchesReference covers seeded searches, including seed
// variables that do not occur in the body (the tracker's pinned-atom shape)
// and seed-specialized plans compiled with the seed variables prebound.
func TestPlanSeededMatchesReference(t *testing.T) {
	s, body := planFixture(t, 60)
	seed := logic.Subst{
		logic.V("Y"): logic.C("b3"),
		logic.V("W"): logic.C("elsewhere"), // not in body
	}
	want := matchSet(collectReference(s, body, seed))
	if len(want) == 0 {
		t.Fatal("seeded fixture produced no matches; test would be vacuous")
	}
	for _, opts := range []CompileOpts{
		{},
		{Stats: s},
		{Stats: s, Prebound: []logic.Term{logic.V("Y"), logic.V("W")}},
		{Mode: ModeAdaptive},
		{Mode: ModeWCOJ},
	} {
		got := matchSet(collectPlan(CompileWith(body, opts), s, seed))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("opts %+v: seeded match sets differ\n got %v\nwant %v", opts, got, want)
		}
	}
}

// TestPlanNodesNotWorseThanReference asserts the tentpole's perf criterion at
// unit granularity: the stats-informed static kernel explores no more
// backtrack nodes than the legacy adaptive reference on the same workload,
// and finds exactly as many matches.
func TestPlanNodesNotWorseThanReference(t *testing.T) {
	s, body := planFixture(t, 60)

	refMatches := 0
	ref := &refSearch{
		store: s,
		body:  body,
		sub:   logic.NewSubst(),
		facts: make([]store.FactID, len(body)),
		done:  make([]bool, len(body)),
		fn:    func(Match) bool { refMatches++; return true },
	}
	ref.run(0)

	p := CompileWith(body, CompileOpts{Stats: s})
	if p.Mode() != ModeStatic {
		t.Fatalf("acyclic body compiled to mode %s, want static", p.Mode())
	}
	planMatches := 0
	e := p.pool.Get().(*exec)
	e.reset(s, nil, func(Match) bool { planMatches++; return true })
	e.runStatic(0)

	if planMatches != refMatches {
		t.Errorf("matches: plan %d, reference %d", planMatches, refMatches)
	}
	if e.nodes > ref.nodes {
		t.Errorf("backtrack nodes: plan %d > reference %d (static order + forward checking regressed the tree)", e.nodes, ref.nodes)
	}
	t.Logf("nodes: static %d vs adaptive reference %d", e.nodes, ref.nodes)
}

// TestPlanRepeatedVarAtom covers atoms with a repeated variable, where one
// matchAtom call both binds and checks the same slot.
func TestPlanRepeatedVarAtom(t *testing.T) {
	s := store.New()
	s.MustAdd(logic.NewAtom("e", logic.C("a"), logic.C("a")))
	s.MustAdd(logic.NewAtom("e", logic.C("a"), logic.C("b")))
	s.MustAdd(logic.NewAtom("e", logic.C("c"), logic.C("c")))
	body := []logic.Atom{logic.NewAtom("e", logic.V("X"), logic.V("X"))}
	want := matchSet(collectReference(s, body, nil))
	got := matchSet(collectPlan(Compile(body), s, nil))
	if len(got) != 2 || fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("repeated-var matches differ\n got %v\nwant %v", got, want)
	}
}

// TestPlanExistsEarlyStop checks exists-only mode stops at the first match
// and reports it.
func TestPlanExistsEarlyStop(t *testing.T) {
	s, body := planFixture(t, 60)
	p := Compile(body)
	if !p.Exists(s) {
		t.Fatal("Exists = false on satisfiable body")
	}
	if !p.ExistsSeeded(s, logic.Subst{logic.V("Y"): logic.C("b3")}) {
		t.Fatal("ExistsSeeded = false on satisfiable seed")
	}
	if p.ExistsSeeded(s, logic.Subst{logic.V("Y"): logic.C("nope")}) {
		t.Fatal("ExistsSeeded = true on unsatisfiable seed")
	}
}

// TestCachedPlanIdentity: same key must return the pointer-identical plan,
// also under concurrency.
func TestCachedPlanIdentity(t *testing.T) {
	_, body := planFixture(t, 5)
	type owner struct{ _ int }
	o := &owner{}
	key := CacheKey{Owner: o, Tag: TagBody}
	first := CachedPlan(key, body)
	var wg sync.WaitGroup
	plans := make([]*Plan, 16)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plans[i] = CachedPlan(key, body)
		}(i)
	}
	wg.Wait()
	for i, p := range plans {
		if p != first {
			t.Fatalf("goroutine %d got a different plan for the same key", i)
		}
	}
}

// TestCachedPlanConcurrentSearch runs many goroutines through one shared
// cached plan — the production shape under internal/par — and checks each
// sees a complete, ordered enumeration.
func TestCachedPlanConcurrentSearch(t *testing.T) {
	s, body := planFixture(t, 40)
	type owner struct{ _ int }
	p := CachedPlan(CacheKey{Owner: &owner{}, Tag: TagBody}, body)
	want := fmt.Sprint(matchSignature(collectPlan(p, s, nil)))
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := fmt.Sprint(matchSignature(collectPlan(p, s, nil))); got != want {
				errs <- got
			}
		}()
	}
	wg.Wait()
	close(errs)
	for got := range errs {
		t.Fatalf("concurrent enumeration diverged:\n got %v\nwant %v", got, want)
	}
}

// TestAnswersKeyUnambiguous: tuples whose naive concatenation collides
// ("a"+"bc" vs "ab"+"c", and names containing the old separator) must stay
// distinct answers.
func TestAnswersKeyUnambiguous(t *testing.T) {
	s := store.New()
	s.MustAdd(logic.NewAtom("t", logic.C("a"), logic.C("bc")))
	s.MustAdd(logic.NewAtom("t", logic.C("ab"), logic.C("c")))
	s.MustAdd(logic.NewAtom("t", logic.C("a\x00b"), logic.C("c")))
	s.MustAdd(logic.NewAtom("t", logic.C("a"), logic.C("b\x00c")))
	body := []logic.Atom{logic.NewAtom("t", logic.V("X"), logic.V("Y"))}
	got := Answers(s, body, []logic.Term{logic.V("X"), logic.V("Y")})
	if len(got) != 4 {
		t.Fatalf("Answers collapsed colliding tuples: got %d answers, want 4: %v", len(got), got)
	}
	// And genuine duplicates still deduplicate.
	s2 := store.New()
	s2.MustAdd(logic.NewAtom("t", logic.C("x"), logic.C("y")))
	s2.MustAdd(logic.NewAtom("t", logic.C("x"), logic.C("z")))
	got2 := Answers(s2, body, []logic.Term{logic.V("X")})
	if len(got2) != 1 {
		t.Fatalf("Answers no longer deduplicates: got %d answers, want 1", len(got2))
	}
}

// TestPlanZeroAllocCached is the zero-allocation guarantee of the tentpole:
// a cached-plan exists-mode search on a warm pool allocates nothing.
func TestPlanZeroAllocCached(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	s, body := planFixture(t, 60)
	p := Compile(body)
	seed := logic.Subst{logic.V("Y"): logic.C("b3")}
	p.Exists(s) // warm the pool
	if n := testing.AllocsPerRun(200, func() { p.Exists(s) }); n != 0 {
		t.Errorf("cached Exists allocates %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { p.ExistsSeeded(s, seed) }); n != 0 {
		t.Errorf("cached ExistsSeeded allocates %v allocs/op, want 0", n)
	}
	// Full enumeration through a pre-allocated callback: the kernel itself
	// must not allocate per node or per match.
	fn := func(Match) bool { return true }
	p.ForEachSeeded(s, nil, fn)
	if n := testing.AllocsPerRun(200, func() { p.ForEachSeeded(s, nil, fn) }); n != 0 {
		t.Errorf("cached ForEach allocates %v allocs/op, want 0", n)
	}
}

// BenchmarkHomoForEachCold measures compile-plus-search — the ad-hoc body
// path of the package-level API.
func BenchmarkHomoForEachCold(b *testing.B) {
	s, body := planFixture(b, 200)
	fn := func(Match) bool { return true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ForEach(s, body, fn)
	}
}

// BenchmarkHomoForEachCached measures the hot loop every rule-driven search
// runs: a cached plan over a warm executor pool. Must report 0 allocs/op.
func BenchmarkHomoForEachCached(b *testing.B) {
	s, body := planFixture(b, 200)
	p := Compile(body)
	fn := func(Match) bool { return true }
	p.ForEachSeeded(s, nil, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ForEachSeeded(s, nil, fn)
	}
}

// BenchmarkHomoExistsCached is the boolean-query hot path (consistency fast
// paths, chase head checks).
func BenchmarkHomoExistsCached(b *testing.B) {
	s, body := planFixture(b, 200)
	p := Compile(body)
	p.Exists(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Exists(s)
	}
}

// BenchmarkHomoReference is the retained legacy executor on the same
// workload, for before/after comparison in one run.
func BenchmarkHomoReference(b *testing.B) {
	s, body := planFixture(b, 200)
	fn := func(Match) bool { return true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceForEachSeeded(s, body, nil, fn)
	}
}
