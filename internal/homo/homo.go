// Package homo implements homomorphism search from conjunctions of atoms to
// an indexed fact store — the evaluation engine behind CDD-body checks, TGD
// applicability and conjunctive query answering throughout kbrepair.
//
// A homomorphism h from a conjunction B to a set of facts F maps every
// variable of B to a ground term of F such that h(B) ⊆ F; constants and
// labeled nulls in B must match facts exactly.
//
// Conjunctions are compiled once into Plans (see plan.go): variables become
// dense integer slots bound through a flat array with an undo trail, and
// per-atom candidate lists are cached across backtrack nodes, invalidated
// only when one of the atom's slots changes. The kernel a plan runs is
// chosen at compile time (see order.go): acyclic bodies execute a fixed
// atom order picked by a cost-based orderer (with one-step forward
// checking), cyclic bodies — in the GYO ear-removal sense — execute a
// variable-at-a-time generic join (see wcoj.go), and the legacy per-node
// adaptive ordering survives only behind an explicit CompileOpts.Mode for
// comparison. Rule-derived conjunctions share compiled plans through
// CachedPlan, keyed by rule identity plus the compile spec; CompileOpts
// also supports seed-specialized plans whose Prebound variables count as
// bound for ordering. The package-level functions below compile on the fly
// and are kept as the convenience API for ad-hoc bodies.
//
// The engine's contract is the SET of matches: two plans for the same body
// always produce equal match sets, but enumeration order is a plan
// property and differs across kernels and orders.
package homo

import (
	"encoding/binary"

	"kbrepair/internal/logic"
	"kbrepair/internal/obs"
	"kbrepair/internal/store"
)

// Search instrumentation. Node and probe counts accumulate in the search
// state and flush to the striped counters once per search, keeping the
// per-node overhead at plain integer increments.
var (
	mSearches = obs.NewCounter("homo.searches")
	mNodes    = obs.NewCounter("homo.backtrack_nodes")
	mProbes   = obs.NewCounter("homo.index_probes")
	mTime     = obs.NewHistogram("homo.match_seconds", obs.LatencyBuckets)
)

// Match is one homomorphism: the variable bindings plus, for each body atom
// (in body order), the id of the fact it was mapped onto.
type Match struct {
	Subst logic.Subst
	Facts []store.FactID
}

// Clone returns a deep copy of the match.
func (m Match) Clone() Match {
	return Match{
		Subst: m.Subst.Clone(),
		Facts: append([]store.FactID(nil), m.Facts...),
	}
}

// Exists reports whether at least one homomorphism from body to s exists
// (boolean conjunctive query evaluation).
func Exists(s *store.Store, body []logic.Atom) bool {
	return Compile(body).Exists(s)
}

// ExistsSeeded reports whether a homomorphism extending seed exists.
func ExistsSeeded(s *store.Store, body []logic.Atom, seed logic.Subst) bool {
	return Compile(body).ExistsSeeded(s, seed)
}

// FindFirst returns one homomorphism from body to s, if any.
func FindFirst(s *store.Store, body []logic.Atom) (Match, bool) {
	var out Match
	found := false
	ForEach(s, body, func(m Match) bool {
		out = m.Clone()
		found = true
		return false
	})
	return out, found
}

// FindAll returns every homomorphism from body to s. Distinct assignments of
// body atoms to (possibly duplicate) facts are returned as distinct matches
// even when the variable bindings coincide; callers that need homomorphism-
// level identity should deduplicate on Subst.Key.
func FindAll(s *store.Store, body []logic.Atom) []Match {
	var out []Match
	ForEach(s, body, func(m Match) bool {
		out = append(out, m.Clone())
		return true
	})
	return out
}

// ForEach enumerates homomorphisms from body to s, invoking fn for each.
// The Match passed to fn is only valid during the call; clone it to retain
// it. Returning false from fn stops the enumeration.
func ForEach(s *store.Store, body []logic.Atom, fn func(Match) bool) {
	ForEachSeeded(s, body, nil, fn)
}

// ForEachSeeded is ForEach with an initial partial substitution: only
// homomorphisms extending seed are enumerated. seed may be nil.
func ForEachSeeded(s *store.Store, body []logic.Atom, seed logic.Subst, fn func(Match) bool) {
	Compile(body).ForEachSeeded(s, seed, fn)
}

// Answers evaluates a conjunctive query with distinguished variables answVars
// over s and returns the distinct answer tuples, in enumeration order. This
// is the paper's Q(F, ΣT) restricted to a plain store; query answering under
// TGDs composes this with the chase (see internal/chase.Answers).
func Answers(s *store.Store, body []logic.Atom, answVars []logic.Term) [][]logic.Term {
	var out [][]logic.Term
	seen := make(map[string]bool)
	// Dedup keys are built into one reused buffer with a self-delimiting
	// encoding (kind byte + uvarint length + name bytes per term), so a
	// tuple's key is unambiguous regardless of the bytes inside names and
	// key construction is O(tuple size) with no per-term allocations.
	var key []byte
	ForEach(s, body, func(m Match) bool {
		tuple := make([]logic.Term, len(answVars))
		key = key[:0]
		for i, v := range answVars {
			tuple[i] = m.Subst.Lookup(v)
			key = append(key, byte(tuple[i].Kind))
			key = binary.AppendUvarint(key, uint64(len(tuple[i].Name)))
			key = append(key, tuple[i].Name...)
		}
		if !seen[string(key)] {
			seen[string(key)] = true
			out = append(out, tuple)
		}
		return true
	})
	return out
}
