// Package homo implements homomorphism search from conjunctions of atoms to
// an indexed fact store — the evaluation engine behind CDD-body checks, TGD
// applicability and conjunctive query answering throughout kbrepair.
//
// A homomorphism h from a conjunction B to a set of facts F maps every
// variable of B to a ground term of F such that h(B) ⊆ F; constants and
// labeled nulls in B must match facts exactly. The search is a backtracking
// join that at every step expands the not-yet-matched atom with the fewest
// index candidates under the current partial substitution.
package homo

import (
	"kbrepair/internal/logic"
	"kbrepair/internal/obs"
	"kbrepair/internal/store"
)

// Search instrumentation. Node and probe counts accumulate in the search
// state and flush to the striped counters once per search, keeping the
// per-node overhead at plain integer increments.
var (
	mSearches = obs.NewCounter("homo.searches")
	mNodes    = obs.NewCounter("homo.backtrack_nodes")
	mProbes   = obs.NewCounter("homo.index_probes")
	mTime     = obs.NewHistogram("homo.match_seconds", obs.LatencyBuckets)
)

// Match is one homomorphism: the variable bindings plus, for each body atom
// (in body order), the id of the fact it was mapped onto.
type Match struct {
	Subst logic.Subst
	Facts []store.FactID
}

// Clone returns a deep copy of the match.
func (m Match) Clone() Match {
	return Match{
		Subst: m.Subst.Clone(),
		Facts: append([]store.FactID(nil), m.Facts...),
	}
}

// Exists reports whether at least one homomorphism from body to s exists
// (boolean conjunctive query evaluation).
func Exists(s *store.Store, body []logic.Atom) bool {
	found := false
	ForEach(s, body, func(Match) bool {
		found = true
		return false
	})
	return found
}

// ExistsSeeded reports whether a homomorphism extending seed exists.
func ExistsSeeded(s *store.Store, body []logic.Atom, seed logic.Subst) bool {
	found := false
	ForEachSeeded(s, body, seed, func(Match) bool {
		found = true
		return false
	})
	return found
}

// FindFirst returns one homomorphism from body to s, if any.
func FindFirst(s *store.Store, body []logic.Atom) (Match, bool) {
	var out Match
	found := false
	ForEach(s, body, func(m Match) bool {
		out = m.Clone()
		found = true
		return false
	})
	return out, found
}

// FindAll returns every homomorphism from body to s. Distinct assignments of
// body atoms to (possibly duplicate) facts are returned as distinct matches
// even when the variable bindings coincide; callers that need homomorphism-
// level identity should deduplicate on Subst.Key.
func FindAll(s *store.Store, body []logic.Atom) []Match {
	var out []Match
	ForEach(s, body, func(m Match) bool {
		out = append(out, m.Clone())
		return true
	})
	return out
}

// ForEach enumerates homomorphisms from body to s, invoking fn for each.
// The Match passed to fn is only valid during the call; clone it to retain
// it. Returning false from fn stops the enumeration.
func ForEach(s *store.Store, body []logic.Atom, fn func(Match) bool) {
	ForEachSeeded(s, body, nil, fn)
}

// ForEachSeeded is ForEach with an initial partial substitution: only
// homomorphisms extending seed are enumerated. seed may be nil.
func ForEachSeeded(s *store.Store, body []logic.Atom, seed logic.Subst, fn func(Match) bool) {
	mSearches.Inc()
	tm := obs.StartTimer()
	if len(body) == 0 {
		sub := seed
		if sub == nil {
			sub = logic.NewSubst()
		}
		fn(Match{Subst: sub, Facts: nil})
		mTime.Since(tm)
		return
	}
	st := &search{
		store: s,
		body:  body,
		sub:   logic.NewSubst(),
		facts: make([]store.FactID, len(body)),
		done:  make([]bool, len(body)),
		fn:    fn,
	}
	for v, t := range seed {
		st.sub[v] = t
	}
	st.run(0)
	mNodes.Add(st.nodes)
	mProbes.Add(st.probes)
	mTime.Since(tm)
}

type search struct {
	store   *store.Store
	body    []logic.Atom
	sub     logic.Subst
	facts   []store.FactID
	done    []bool
	fn      func(Match) bool
	stopped bool
	nodes   int64 // backtrack nodes visited (run invocations)
	probes  int64 // store index consultations
}

// run matches the remaining len(body)-depth atoms; returns after exploring
// the subtree (st.stopped set when fn asked to stop).
func (st *search) run(depth int) {
	if st.stopped {
		return
	}
	st.nodes++
	if depth == len(st.body) {
		if !st.fn(Match{Subst: st.sub, Facts: st.facts}) {
			st.stopped = true
		}
		return
	}
	idx, cands := st.pickAtom()
	st.done[idx] = true
	pattern := st.body[idx]
	for _, fid := range cands {
		fact := st.store.FactRef(fid)
		bound, ok := st.bind(pattern, fact)
		if ok {
			st.facts[idx] = fid
			st.run(depth + 1)
		}
		// Undo bindings introduced by this atom.
		for _, v := range bound {
			delete(st.sub, v)
		}
		if st.stopped {
			break
		}
	}
	st.done[idx] = false
}

// pickAtom selects the unmatched atom with the fewest candidate facts under
// the current substitution and returns its index along with the candidates.
func (st *search) pickAtom() (int, []store.FactID) {
	bestIdx := -1
	var bestCands []store.FactID
	bestCount := int(^uint(0) >> 1)
	for i, a := range st.body {
		if st.done[i] {
			continue
		}
		cands := st.candidates(a)
		if len(cands) < bestCount {
			bestIdx, bestCands, bestCount = i, cands, len(cands)
			if bestCount == 0 {
				break
			}
		}
	}
	return bestIdx, bestCands
}

// candidates returns the most selective index list for the pattern under the
// current substitution. The returned slice belongs to the store's index and
// must not be mutated.
func (st *search) candidates(a logic.Atom) []store.FactID {
	st.probes++
	best := st.store.CandidatesByPred(a.Pred)
	for i, t := range a.Args {
		g := st.sub.Lookup(t)
		if !g.IsGround() {
			continue
		}
		st.probes++
		c := st.store.Candidates(a.Pred, i, g)
		if len(c) < len(best) {
			best = c
		}
	}
	return best
}

// bind attempts to extend the substitution so pattern maps onto fact. It
// returns the variables newly bound (for undo) and whether it succeeded.
// On failure the newly introduced bindings are already removed.
func (st *search) bind(pattern, fact logic.Atom) ([]logic.Term, bool) {
	if pattern.Pred != fact.Pred || len(pattern.Args) != len(fact.Args) {
		return nil, false
	}
	var bound []logic.Term
	for i, t := range pattern.Args {
		ft := fact.Args[i]
		if t.IsVar() {
			if cur, ok := st.sub[t]; ok {
				if cur != ft {
					for _, v := range bound {
						delete(st.sub, v)
					}
					return nil, false
				}
				continue
			}
			st.sub[t] = ft
			bound = append(bound, t)
			continue
		}
		if t != ft {
			for _, v := range bound {
				delete(st.sub, v)
			}
			return nil, false
		}
	}
	return bound, true
}

// Answers evaluates a conjunctive query with distinguished variables answJ
// over s and returns the distinct answer tuples, in enumeration order. This
// is the paper's Q(F, ΣT) restricted to a plain store; query answering under
// TGDs composes this with the chase (see internal/chase.Answers).
func Answers(s *store.Store, body []logic.Atom, answVars []logic.Term) [][]logic.Term {
	var out [][]logic.Term
	seen := make(map[string]bool)
	ForEach(s, body, func(m Match) bool {
		tuple := make([]logic.Term, len(answVars))
		key := ""
		for i, v := range answVars {
			tuple[i] = m.Subst.Lookup(v)
			key += string(rune('0'+tuple[i].Kind)) + tuple[i].Name + "\x00"
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, tuple)
		}
		return true
	})
	return out
}
