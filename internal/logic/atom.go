package logic

import (
	"fmt"
	"strings"
)

// Atom is a predicate applied to a tuple of terms, e.g.
// prescribed(Aspirin, John). The zero value is not a valid atom.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom from a predicate name and its arguments.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of arguments of the atom.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom contains no rule variables. Facts are
// ground atoms (they may contain labeled nulls).
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Vars returns the set of variables occurring in the atom, in first
// occurrence order.
func (a Atom) Vars() []Term {
	var out []Term
	seen := make(map[Term]bool, len(a.Args))
	for _, t := range a.Args {
		if t.IsVar() && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// Equal reports whether two atoms are identical (same predicate, same
// arguments in the same order).
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the atom (the argument slice is copied).
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Key returns a canonical string identifying the atom. Two atoms have the
// same Key iff they are Equal, so Key can serve as a map key for ground-atom
// deduplication.
func (a Atom) Key() string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('/')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte(byte('0' + t.Kind))
		sb.WriteString(t.Name)
	}
	return sb.String()
}

// String renders the atom in the parser syntax, e.g. "p(a, X, _:n1)".
func (a Atom) String() string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Compare orders atoms by predicate, arity, then argument terms. Used to
// produce deterministic output.
func (a Atom) Compare(b Atom) int {
	if c := strings.Compare(a.Pred, b.Pred); c != 0 {
		return c
	}
	if len(a.Args) != len(b.Args) {
		if len(a.Args) < len(b.Args) {
			return -1
		}
		return 1
	}
	for i := range a.Args {
		if c := a.Args[i].Compare(b.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// SortAtoms sorts atoms in place in Atom.Compare order.
func SortAtoms(as []Atom) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j].Compare(as[j-1]) < 0; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// AtomsString renders a conjunction of atoms separated by ", ".
func AtomsString(as []Atom) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// VarsOf returns the variables of a conjunction of atoms in first occurrence
// order.
func VarsOf(as []Atom) []Term {
	var out []Term
	seen := make(map[Term]bool)
	for _, a := range as {
		for _, t := range a.Args {
			if t.IsVar() && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// validateGround returns an error if the atom is not ground.
func validateGround(a Atom) error {
	if !a.IsGround() {
		return fmt.Errorf("atom %s is not ground", a)
	}
	return nil
}
