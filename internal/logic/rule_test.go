package logic

import (
	"reflect"
	"strings"
	"testing"
)

func TestTGDValidate(t *testing.T) {
	ok := &TGD{
		Body: []Atom{NewAtom("isPainKillerFor", V("X"), V("Y")), NewAtom("hasPain", V("Z"), V("Y"))},
		Head: []Atom{NewAtom("prescribed", V("X"), V("Z"))},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid TGD rejected: %v", err)
	}
	if err := (&TGD{Head: ok.Head}).Validate(); err == nil {
		t.Error("empty body accepted")
	}
	if err := (&TGD{Body: ok.Body}).Validate(); err == nil {
		t.Error("empty head accepted")
	}
	withNull := &TGD{
		Body: []Atom{NewAtom("p", N("n1"))},
		Head: []Atom{NewAtom("q", V("X"))},
	}
	if err := withNull.Validate(); err == nil {
		t.Error("null inside rule accepted")
	}
}

func TestTGDFrontierAndExistential(t *testing.T) {
	// isCultivatedOn(X1,X2), durum_wheat(X1), soil(X2) -> hasPrecedent(X2,X3), soybean(X3)
	tg := MustTGD(
		[]Atom{
			NewAtom("isCultivatedOn", V("X1"), V("X2")),
			NewAtom("durum_wheat", V("X1")),
			NewAtom("soil", V("X2")),
		},
		[]Atom{
			NewAtom("hasPrecedent", V("X2"), V("X3")),
			NewAtom("soybean", V("X3")),
		},
	)
	if got, want := tg.FrontierVars(), []Term{V("X2")}; !reflect.DeepEqual(got, want) {
		t.Errorf("frontier = %v, want %v", got, want)
	}
	if got, want := tg.ExistentialVars(), []Term{V("X3")}; !reflect.DeepEqual(got, want) {
		t.Errorf("existential = %v, want %v", got, want)
	}
}

func TestTGDString(t *testing.T) {
	tg := MustTGD(
		[]Atom{NewAtom("p", V("X"))},
		[]Atom{NewAtom("q", V("X"), V("Z"))},
	)
	if got := tg.String(); got != "[tgd] p(X) -> q(X, Z)." {
		t.Errorf("String = %q", got)
	}
}

func TestCDDValidate(t *testing.T) {
	ok := MustCDD([]Atom{
		NewAtom("prescribed", V("X"), V("Y")),
		NewAtom("hasAllergy", V("Y"), V("X")),
	})
	if err := ok.Validate(); err != nil {
		t.Errorf("valid CDD rejected: %v", err)
	}
	if _, err := NewCDD(nil); err == nil {
		t.Error("empty CDD accepted")
	}
	// Multi-atom body with no join variable is the meaningless cartesian case.
	if _, err := NewCDD([]Atom{NewAtom("p", V("X")), NewAtom("q", V("Y"))}); err == nil {
		t.Error("cartesian CDD accepted")
	}
	// Single-atom CDDs are allowed (e.g. forbidden combination inside one atom).
	if _, err := NewCDD([]Atom{NewAtom("p", V("X"), V("X"))}); err != nil {
		t.Errorf("single-atom CDD rejected: %v", err)
	}
	if _, err := NewCDD([]Atom{NewAtom("p", N("n"))}); err == nil {
		t.Error("null inside CDD accepted")
	}
}

func TestCDDJoinVarsAndPositions(t *testing.T) {
	// isUrgent(X,Y,Z), isDeferredTo(X,W) -> ⊥ ; only X is a join variable.
	c := MustCDD([]Atom{
		NewAtom("isUrgent", V("X"), V("Y"), V("Z")),
		NewAtom("isDeferredTo", V("X"), V("W")),
	})
	if got, want := c.JoinVars(), []Term{V("X")}; !reflect.DeepEqual(got, want) {
		t.Errorf("JoinVars = %v, want %v", got, want)
	}
	jp := c.JoinPositions()
	if !reflect.DeepEqual(jp[0], []int{0}) || !reflect.DeepEqual(jp[1], []int{0}) {
		t.Errorf("JoinPositions = %v", jp)
	}
	// Repeated variable within a single atom is also a join.
	c2 := MustCDD([]Atom{NewAtom("p", V("X"), V("X"))})
	if got := c2.JoinVars(); len(got) != 1 || got[0] != V("X") {
		t.Errorf("JoinVars single-atom = %v", got)
	}
}

func TestCDDString(t *testing.T) {
	c := MustCDD([]Atom{
		NewAtom("prescribed", V("X"), V("Y")),
		NewAtom("hasAllergy", V("Y"), V("X")),
	})
	want := "[cdd] prescribed(X, Y), hasAllergy(Y, X) -> !."
	if got := c.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestRuleSetPredicatesCloneString(t *testing.T) {
	rs := RuleSet{
		TGDs: []*TGD{MustTGD(
			[]Atom{NewAtom("isPainKillerFor", V("X"), V("Y")), NewAtom("hasPain", V("Z"), V("Y"))},
			[]Atom{NewAtom("prescribed", V("X"), V("Z"))},
		)},
		CDDs: []*CDD{MustCDD([]Atom{
			NewAtom("prescribed", V("X"), V("Y")),
			NewAtom("hasAllergy", V("Y"), V("X")),
		})},
	}
	preds := rs.Predicates()
	for _, p := range []string{"isPainKillerFor", "hasPain", "prescribed", "hasAllergy"} {
		if preds[p] != 2 {
			t.Errorf("predicate %s arity = %d, want 2", p, preds[p])
		}
	}
	c := rs.Clone()
	c.TGDs = append(c.TGDs, c.TGDs[0])
	if len(rs.TGDs) != 1 {
		t.Error("Clone shares backing array growth")
	}
	s := rs.String()
	if !strings.Contains(s, "[tgd]") || !strings.Contains(s, "[cdd]") {
		t.Errorf("RuleSet.String = %q", s)
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTGD did not panic on invalid rule")
		}
	}()
	MustTGD(nil, nil)
}

func TestMustCDDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCDD did not panic on invalid rule")
		}
	}()
	MustCDD(nil)
}
