package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAtomBasics(t *testing.T) {
	a := NewAtom("prescribed", C("Aspirin"), C("John"))
	if a.Arity() != 2 {
		t.Errorf("arity = %d, want 2", a.Arity())
	}
	if !a.IsGround() {
		t.Error("ground atom misclassified")
	}
	if got := a.String(); got != "prescribed(Aspirin, John)" {
		t.Errorf("String = %q", got)
	}
}

func TestAtomVars(t *testing.T) {
	a := NewAtom("p", V("X"), C("a"), V("Y"), V("X"))
	vars := a.Vars()
	want := []Term{V("X"), V("Y")}
	if !reflect.DeepEqual(vars, want) {
		t.Errorf("Vars = %v, want %v", vars, want)
	}
	if a.IsGround() {
		t.Error("atom with vars reported ground")
	}
}

func TestAtomEqualCloneKey(t *testing.T) {
	a := NewAtom("p", C("a"), N("n1"))
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	if a.Key() != b.Key() {
		t.Error("clone key differs")
	}
	// mutating clone must not affect original
	b.Args[0] = C("z")
	if a.Equal(b) {
		t.Error("mutating clone affected original or Equal is broken")
	}
	if a.Args[0] != C("a") {
		t.Error("clone shares args with original")
	}
	if NewAtom("p", C("a")).Equal(NewAtom("q", C("a"))) {
		t.Error("different predicates equal")
	}
	if NewAtom("p", C("a")).Equal(NewAtom("p", C("a"), C("b"))) {
		t.Error("different arity equal")
	}
}

func TestAtomKeyDistinguishesKinds(t *testing.T) {
	a := NewAtom("p", C("x"))
	b := NewAtom("p", V("x"))
	c := NewAtom("p", N("x"))
	if a.Key() == b.Key() || b.Key() == c.Key() || a.Key() == c.Key() {
		t.Error("Key does not distinguish term kinds")
	}
}

func TestAtomKeyNoCollisionOnArgBoundaries(t *testing.T) {
	// p(ab, c) vs p(a, bc) must have distinct keys.
	a := NewAtom("p", C("ab"), C("c"))
	b := NewAtom("p", C("a"), C("bc"))
	if a.Key() == b.Key() {
		t.Errorf("key collision: %q", a.Key())
	}
}

func TestAtomCompareAndSort(t *testing.T) {
	as := []Atom{
		NewAtom("q", C("a")),
		NewAtom("p", C("b")),
		NewAtom("p", C("a")),
		NewAtom("p", C("a"), C("b")),
	}
	SortAtoms(as)
	want := []Atom{
		NewAtom("p", C("a")),
		NewAtom("p", C("b")),
		NewAtom("p", C("a"), C("b")),
		NewAtom("q", C("a")),
	}
	if !reflect.DeepEqual(as, want) {
		t.Errorf("SortAtoms = %v, want %v", as, want)
	}
}

func TestAtomsString(t *testing.T) {
	as := []Atom{NewAtom("p", C("a")), NewAtom("q", V("X"))}
	if got := AtomsString(as); got != "p(a), q(X)" {
		t.Errorf("AtomsString = %q", got)
	}
}

func TestVarsOf(t *testing.T) {
	as := []Atom{
		NewAtom("p", V("X"), C("a")),
		NewAtom("q", V("Y"), V("X")),
	}
	got := VarsOf(as)
	want := []Term{V("X"), V("Y")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("VarsOf = %v, want %v", got, want)
	}
}

func TestValidateGround(t *testing.T) {
	if err := validateGround(NewAtom("p", C("a"), N("n"))); err != nil {
		t.Errorf("ground atom rejected: %v", err)
	}
	if err := validateGround(NewAtom("p", V("X"))); err == nil {
		t.Error("non-ground atom accepted")
	}
}

func randomAtom(r *rand.Rand) Atom {
	preds := []string{"p", "q", "r"}
	n := 1 + r.Intn(3)
	args := make([]Term, n)
	for i := range args {
		args[i] = randomTerm(r)
	}
	return NewAtom(preds[r.Intn(len(preds))], args...)
}

func TestAtomKeyEqualConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomAtom(r), randomAtom(r)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
