// Package logic defines the first-order vocabulary used throughout kbrepair:
// terms (constants, universally quantified variables and labeled nulls),
// atoms, substitutions, and the two rule classes of the paper —
// tuple-generating dependencies (TGDs) and contradiction-detecting
// dependencies (CDDs).
package logic

import (
	"fmt"
	"strings"
)

// Kind distinguishes the three sorts of terms.
type Kind uint8

const (
	// Const is an ordinary constant such as Aspirin.
	Const Kind = iota
	// Var is a universally quantified rule variable such as X.
	Var
	// Null is a labeled null (existential variable) such as _:n42. Nulls
	// behave like constants when evaluating homomorphisms over a set of
	// facts: two distinct nulls never unify with each other, and a null
	// never unifies with a constant.
	Null
)

func (k Kind) String() string {
	switch k {
	case Const:
		return "const"
	case Var:
		return "var"
	case Null:
		return "null"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Term is a single argument of an atom. Terms are small comparable values:
// two Terms are equal iff they have the same Kind and Name, so they can be
// used directly as map keys.
type Term struct {
	Kind Kind
	Name string
}

// C returns the constant with the given name.
func C(name string) Term { return Term{Kind: Const, Name: name} }

// V returns the variable with the given name.
func V(name string) Term { return Term{Kind: Var, Name: name} }

// N returns the labeled null with the given label.
func N(label string) Term { return Term{Kind: Null, Name: label} }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Kind == Const }

// IsVar reports whether t is a universally quantified variable.
func (t Term) IsVar() bool { return t.Kind == Var }

// IsNull reports whether t is a labeled null.
func (t Term) IsNull() bool { return t.Kind == Null }

// IsGround reports whether t contains no rule variable, i.e. it is a
// constant or a labeled null. Facts are made of ground terms only.
func (t Term) IsGround() bool { return t.Kind != Var }

// String renders the term in the text syntax understood by the parser:
// constants verbatim, variables with a leading '?'-free uppercase convention
// preserved as written, and nulls with the "_:" prefix.
func (t Term) String() string {
	if t.Kind == Null {
		return "_:" + t.Name
	}
	return t.Name
}

// Compare orders terms first by kind, then by name. It is used to give
// deterministic iteration orders wherever map iteration would otherwise
// introduce nondeterminism.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		if t.Kind < u.Kind {
			return -1
		}
		return 1
	}
	return strings.Compare(t.Name, u.Name)
}

// SortTerms sorts terms in place with Term.Compare order.
func SortTerms(ts []Term) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Compare(ts[j-1]) < 0; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
