package logic

import (
	"fmt"
	"strings"
)

// TGD is a tuple-generating dependency (existential rule)
//
//	∀x∀y B(x,y) → ∃z H(y,z)
//
// Variables occurring in the head but not in the body are existentially
// quantified; the chase instantiates them with fresh labeled nulls
// (the paper's safe(H)).
type TGD struct {
	// Label is an optional human-readable identifier used in diagnostics.
	Label string
	Body  []Atom
	Head  []Atom
}

// NewTGD builds a TGD and validates it.
func NewTGD(body, head []Atom) (*TGD, error) {
	t := &TGD{Body: body, Head: head}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustTGD is like NewTGD but panics on invalid input. Intended for tests and
// hand-written rule sets.
func MustTGD(body, head []Atom) *TGD {
	t, err := NewTGD(body, head)
	if err != nil {
		panic(err)
	}
	return t
}

// Validate checks structural well-formedness: non-empty body and head, no
// labeled nulls inside the rule, and at least one frontier variable is not
// required (a head can be fully existential).
func (t *TGD) Validate() error {
	if len(t.Body) == 0 {
		return fmt.Errorf("tgd %s: empty body", t.Label)
	}
	if len(t.Head) == 0 {
		return fmt.Errorf("tgd %s: empty head", t.Label)
	}
	for _, a := range append(append([]Atom{}, t.Body...), t.Head...) {
		for _, arg := range a.Args {
			if arg.IsNull() {
				return fmt.Errorf("tgd %s: labeled null %s inside rule", t.Label, arg)
			}
		}
	}
	return nil
}

// FrontierVars returns the variables shared between body and head (the
// paper's y).
func (t *TGD) FrontierVars() []Term {
	bodyVars := make(map[Term]bool)
	for _, v := range VarsOf(t.Body) {
		bodyVars[v] = true
	}
	var out []Term
	for _, v := range VarsOf(t.Head) {
		if bodyVars[v] {
			out = append(out, v)
		}
	}
	return out
}

// ExistentialVars returns the head variables that do not occur in the body
// (the paper's z); the chase replaces them with fresh nulls.
func (t *TGD) ExistentialVars() []Term {
	bodyVars := make(map[Term]bool)
	for _, v := range VarsOf(t.Body) {
		bodyVars[v] = true
	}
	var out []Term
	for _, v := range VarsOf(t.Head) {
		if !bodyVars[v] {
			out = append(out, v)
		}
	}
	return out
}

// String renders the TGD in the parser syntax:
// "[tgd] b1, b2 -> h1, h2.".
func (t *TGD) String() string {
	return fmt.Sprintf("[tgd] %s -> %s.", AtomsString(t.Body), AtomsString(t.Head))
}

// CDD is a contradiction-detecting dependency
//
//	∀x B(x) → ⊥
//
// i.e. a denial constraint whose body uses only equality (expressed through
// repeated variables and constants; the parser normalizes explicit X = Y
// equalities away). Per §2 of the paper, a meaningful CDD must contain a
// join variable when it has more than one atom.
type CDD struct {
	// Label is an optional human-readable identifier used in diagnostics.
	Label string
	Body  []Atom
}

// NewCDD builds a CDD and validates it.
func NewCDD(body []Atom) (*CDD, error) {
	c := &CDD{Body: body}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustCDD is like NewCDD but panics on invalid input.
func MustCDD(body []Atom) *CDD {
	c, err := NewCDD(body)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks structural well-formedness: non-empty body, no labeled
// nulls, and — when the body has several atoms — at least one join variable
// connecting them (the paper's meaningfulness assumption; it rules out pure
// schema constraints such as p(X,Y) → ⊥ only for the multi-atom case, where
// unconnected atoms would make the CDD a cartesian-product constraint).
func (c *CDD) Validate() error {
	if len(c.Body) == 0 {
		return fmt.Errorf("cdd %s: empty body", c.Label)
	}
	for _, a := range c.Body {
		for _, arg := range a.Args {
			if arg.IsNull() {
				return fmt.Errorf("cdd %s: labeled null %s inside rule", c.Label, arg)
			}
		}
	}
	if len(c.Body) > 1 && len(c.JoinVars()) == 0 {
		return fmt.Errorf("cdd %s: multi-atom body without join variables", c.Label)
	}
	return nil
}

// JoinVars returns the variables occurring in at least two distinct atom
// occurrences of the body (or at least twice within one atom), in first
// occurrence order. These determine the join positions of §5 (opti-join).
func (c *CDD) JoinVars() []Term {
	count := make(map[Term]int)
	var order []Term
	for _, a := range c.Body {
		for _, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			if count[t] == 0 {
				order = append(order, t)
			}
			count[t]++
		}
	}
	var out []Term
	for _, v := range order {
		if count[v] >= 2 {
			out = append(out, v)
		}
	}
	return out
}

// JoinPositions reports, for each body atom index, which argument indexes
// hold a join variable. The result maps body-atom index → sorted arg indexes.
func (c *CDD) JoinPositions() map[int][]int {
	joins := make(map[Term]bool)
	for _, v := range c.JoinVars() {
		joins[v] = true
	}
	out := make(map[int][]int)
	for i, a := range c.Body {
		for j, t := range a.Args {
			if t.IsVar() && joins[t] {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// String renders the CDD in the parser syntax: "[cdd] b1, b2 -> !.".
func (c *CDD) String() string {
	return fmt.Sprintf("[cdd] %s -> !.", AtomsString(c.Body))
}

// RuleSet bundles the dependencies of a knowledge base.
type RuleSet struct {
	TGDs []*TGD
	CDDs []*CDD
}

// Clone returns a shallow copy of the rule set (rules themselves are
// immutable once built, so sharing them is safe).
func (rs RuleSet) Clone() RuleSet {
	return RuleSet{
		TGDs: append([]*TGD(nil), rs.TGDs...),
		CDDs: append([]*CDD(nil), rs.CDDs...),
	}
}

// Predicates returns the set of predicate names mentioned in the rules.
func (rs RuleSet) Predicates() map[string]int {
	out := make(map[string]int)
	add := func(as []Atom) {
		for _, a := range as {
			out[a.Pred] = a.Arity()
		}
	}
	for _, t := range rs.TGDs {
		add(t.Body)
		add(t.Head)
	}
	for _, c := range rs.CDDs {
		add(c.Body)
	}
	return out
}

// String renders the whole rule set, TGDs first, one rule per line.
func (rs RuleSet) String() string {
	var sb strings.Builder
	for _, t := range rs.TGDs {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, c := range rs.CDDs {
		sb.WriteString(c.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
