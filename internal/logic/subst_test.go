package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubstLookupApply(t *testing.T) {
	s := Subst{V("X"): C("a"), V("Y"): N("n1")}
	if s.Lookup(V("X")) != C("a") {
		t.Error("bound variable lookup failed")
	}
	if s.Lookup(V("Z")) != V("Z") {
		t.Error("unbound variable should map to itself")
	}
	if s.Lookup(C("k")) != C("k") {
		t.Error("constant should map to itself")
	}
	if s.Lookup(N("m")) != N("m") {
		t.Error("null should map to itself")
	}
	a := NewAtom("p", V("X"), V("Y"), V("Z"), C("c"))
	got := s.Apply(a)
	want := NewAtom("p", C("a"), N("n1"), V("Z"), C("c"))
	if !got.Equal(want) {
		t.Errorf("Apply = %v, want %v", got, want)
	}
	// Apply must not mutate the input atom.
	if !a.Equal(NewAtom("p", V("X"), V("Y"), V("Z"), C("c"))) {
		t.Error("Apply mutated its argument")
	}
}

func TestSubstBindIsImmutable(t *testing.T) {
	s := NewSubst()
	s2 := s.Bind(V("X"), C("a"))
	if len(s) != 0 {
		t.Error("Bind mutated receiver")
	}
	if s2.Lookup(V("X")) != C("a") {
		t.Error("Bind result lacks binding")
	}
}

func TestSubstApplyAll(t *testing.T) {
	s := Subst{V("X"): C("a")}
	as := []Atom{NewAtom("p", V("X")), NewAtom("q", V("Y"))}
	got := s.ApplyAll(as)
	if !got[0].Equal(NewAtom("p", C("a"))) || !got[1].Equal(NewAtom("q", V("Y"))) {
		t.Errorf("ApplyAll = %v", got)
	}
}

func TestSubstCloneRestrictEqual(t *testing.T) {
	s := Subst{V("X"): C("a"), V("Y"): C("b")}
	c := s.Clone()
	if !s.Equal(c) {
		t.Error("clone not equal")
	}
	c[V("X")] = C("z")
	if s[V("X")] != C("a") {
		t.Error("clone shares storage")
	}
	r := s.Restrict([]Term{V("Y"), V("Missing")})
	if len(r) != 1 || r[V("Y")] != C("b") {
		t.Errorf("Restrict = %v", r)
	}
	if s.Equal(Subst{V("X"): C("a")}) {
		t.Error("Equal ignored size")
	}
	if s.Equal(Subst{V("X"): C("a"), V("Y"): C("zzz")}) {
		t.Error("Equal ignored value")
	}
}

func TestSubstKeyString(t *testing.T) {
	s := Subst{V("Y"): C("b"), V("X"): C("a")}
	if s.Key() != (Subst{V("X"): C("a"), V("Y"): C("b")}).Key() {
		t.Error("Key not order independent")
	}
	if got := s.String(); got != "{X=a, Y=b}" {
		t.Errorf("String = %q", got)
	}
	// Keys must distinguish kinds of bound values.
	s1 := Subst{V("X"): C("a")}
	s2 := Subst{V("X"): N("a")}
	if s1.Key() == s2.Key() {
		t.Error("Key does not distinguish bound-value kinds")
	}
}

func TestSubstKeyEqualConsistency(t *testing.T) {
	gen := func(r *rand.Rand) Subst {
		s := NewSubst()
		vars := []Term{V("X"), V("Y"), V("Z")}
		for _, v := range vars {
			if r.Intn(2) == 0 {
				s[v] = randomTerm(r)
			}
		}
		return s
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// Property: Apply is compositional with Lookup on each argument.
func TestSubstApplyPointwise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Subst{V("X"): randomTerm(r), V("Y"): randomTerm(r)}
		a := randomAtom(r)
		img := s.Apply(a)
		for i := range a.Args {
			if img.Args[i] != s.Lookup(a.Args[i]) {
				return false
			}
		}
		return img.Pred == a.Pred
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
