package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	c := C("Aspirin")
	if !c.IsConst() || c.IsVar() || c.IsNull() || !c.IsGround() {
		t.Errorf("C(Aspirin) classified wrong: %+v", c)
	}
	v := V("X")
	if !v.IsVar() || v.IsConst() || v.IsNull() || v.IsGround() {
		t.Errorf("V(X) classified wrong: %+v", v)
	}
	n := N("n1")
	if !n.IsNull() || n.IsConst() || n.IsVar() || !n.IsGround() {
		t.Errorf("N(n1) classified wrong: %+v", n)
	}
}

func TestTermEquality(t *testing.T) {
	if C("a") != C("a") {
		t.Error("identical constants must be ==")
	}
	if C("a") == V("a") {
		t.Error("constant and variable with same name must differ")
	}
	if C("a") == N("a") {
		t.Error("constant and null with same name must differ")
	}
	if V("a") == N("a") {
		t.Error("variable and null with same name must differ")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{C("Aspirin"), "Aspirin"},
		{V("X"), "X"},
		{N("n3"), "_:n3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if Const.String() != "const" || Var.String() != "var" || Null.String() != "null" {
		t.Error("Kind.String mismatch")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}

func TestTermCompare(t *testing.T) {
	if C("a").Compare(C("b")) >= 0 {
		t.Error("a should sort before b")
	}
	if C("a").Compare(C("a")) != 0 {
		t.Error("equal terms should compare 0")
	}
	if C("z").Compare(V("a")) >= 0 {
		t.Error("constants should sort before variables")
	}
	if V("z").Compare(N("a")) >= 0 {
		t.Error("variables should sort before nulls")
	}
}

// randomTerm produces arbitrary terms for property tests.
func randomTerm(r *rand.Rand) Term {
	kinds := []Kind{Const, Var, Null}
	names := []string{"a", "b", "c", "X", "Y", "n1", "n2", "Aspirin"}
	return Term{Kind: kinds[r.Intn(len(kinds))], Name: names[r.Intn(len(names))]}
}

func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b, c := randomTerm(r), randomTerm(r), randomTerm(r)
		// antisymmetry
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated for %v %v", a, b)
		}
		// reflexivity
		if a.Compare(a) != 0 {
			t.Fatalf("reflexivity violated for %v", a)
		}
		// transitivity (only the ≤ direction)
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated for %v %v %v", a, b, c)
		}
		// consistency with equality
		if (a.Compare(b) == 0) != (a == b) {
			t.Fatalf("compare/equality mismatch for %v %v", a, b)
		}
	}
}

func TestSortTerms(t *testing.T) {
	ts := []Term{N("z"), C("b"), V("m"), C("a")}
	SortTerms(ts)
	want := []Term{C("a"), C("b"), V("m"), N("z")}
	if !reflect.DeepEqual(ts, want) {
		t.Errorf("SortTerms = %v, want %v", ts, want)
	}
}

func TestSortTermsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ts := make([]Term, int(n)%20)
		for i := range ts {
			ts[i] = randomTerm(r)
		}
		SortTerms(ts)
		for i := 1; i < len(ts); i++ {
			if ts[i-1].Compare(ts[i]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
