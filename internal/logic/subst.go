package logic

import (
	"sort"
	"strings"
)

// Subst is a substitution mapping rule variables to terms. A homomorphism
// from a conjunction of atoms B to a set of facts F is a Subst h such that
// h(B) ⊆ F, where constants and nulls are mapped to themselves.
type Subst map[Term]Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return make(Subst) }

// Bind returns a copy of s extended with v ↦ t. It does not mutate s, which
// makes it convenient (if slightly allocation-heavy) for functional code;
// the homomorphism search uses in-place bindings with undo instead.
func (s Subst) Bind(v, t Term) Subst {
	out := make(Subst, len(s)+1)
	for k, val := range s {
		out[k] = val
	}
	out[v] = t
	return out
}

// Lookup resolves a term under the substitution: variables map to their
// binding (or themselves if unbound); constants and nulls map to themselves.
func (s Subst) Lookup(t Term) Term {
	if t.IsVar() {
		if b, ok := s[t]; ok {
			return b
		}
	}
	return t
}

// Apply returns the image of the atom under the substitution.
func (s Subst) Apply(a Atom) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Lookup(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// ApplyAll returns the image of a conjunction of atoms under the
// substitution.
func (s Subst) ApplyAll(as []Atom) []Atom {
	out := make([]Atom, len(as))
	for i, a := range as {
		out[i] = s.Apply(a)
	}
	return out
}

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Restrict returns the restriction of s to the given variables.
func (s Subst) Restrict(vars []Term) Subst {
	out := make(Subst, len(vars))
	for _, v := range vars {
		if b, ok := s[v]; ok {
			out[v] = b
		}
	}
	return out
}

// Equal reports whether two substitutions contain exactly the same bindings.
func (s Subst) Equal(t Subst) bool {
	if len(s) != len(t) {
		return false
	}
	for k, v := range s {
		if tv, ok := t[k]; !ok || tv != v {
			return false
		}
	}
	return true
}

// Key returns a canonical string for the substitution, suitable for
// deduplicating homomorphisms.
func (s Subst) Key() string {
	keys := make([]Term, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k.Name)
		sb.WriteByte('=')
		v := s[k]
		sb.WriteByte(byte('0' + v.Kind))
		sb.WriteString(v.Name)
		sb.WriteByte(';')
	}
	return sb.String()
}

// String renders the substitution as "{X=a, Y=b}" with deterministic key
// order.
func (s Subst) String() string {
	keys := make([]Term, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(k.Name)
		sb.WriteByte('=')
		sb.WriteString(s[k].String())
	}
	sb.WriteByte('}')
	return sb.String()
}
