package inquiry

import (
	"strings"
	"testing"
)

// TestJournalHeaderReplay records a session with the digest header and
// replays it against a fresh copy of the same KB: CheckKB must pass and the
// replay must reproduce the repair.
func TestJournalHeaderReplay(t *testing.T) {
	kb := fig1bKB(t)
	fresh := kb.Clone()

	rec := NewRecordingSession(NewSimulatedUser(4), "opti-join", 4, kb)
	e := New(kb, OptiJoin{}, rec, 2, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	j := rec.Journal()
	if j.Seed != 4 || j.Digest == nil {
		t.Fatalf("header not recorded: seed=%d digest=%v", j.Seed, j.Digest)
	}
	if j.Digest.Facts != fresh.Facts.Len() {
		t.Fatalf("digest facts = %d, want %d (must describe the input KB, not the repaired one)",
			j.Digest.Facts, fresh.Facts.Len())
	}

	checked, err := j.CheckKB(fresh)
	if err != nil || !checked {
		t.Fatalf("CheckKB(same KB) = %v, %v; want checked, nil", checked, err)
	}
	e2 := New(fresh, OptiJoin{}, NewReplayUser(j), 2, Options{})
	res2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Questions != res.Questions || !res2.Consistent {
		t.Fatalf("replay diverged: %d questions consistent=%v, recorded %d",
			res2.Questions, res2.Consistent, res.Questions)
	}
}

// TestJournalHeaderMismatch: pointing a journal at a differently shaped KB
// must fail fast with the digest diff, before any fix is applied.
func TestJournalHeaderMismatch(t *testing.T) {
	kb := fig1bKB(t)
	rec := NewRecordingSession(NewSimulatedUser(4), "random", 4, kb)
	j := rec.Journal()

	other := fig1bKB(t)
	other.Facts.MustAdd(other.Facts.FactRef(0)) // same predicate, one more fact
	checked, err := j.CheckKB(other)
	if !checked {
		t.Fatal("digest present but CheckKB reported unchecked")
	}
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("CheckKB(mismatched KB) = %v, want a mismatch error", err)
	}
	if !strings.Contains(err.Error(), "facts") {
		t.Errorf("mismatch error does not name the differing field: %v", err)
	}
}

// TestJournalHeaderless: journals recorded before the header existed load
// and replay, with the check reported as skipped.
func TestJournalHeaderless(t *testing.T) {
	data := []byte(`{"strategy": "random", "entries": []}`)
	j, err := UnmarshalJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := j.CheckKB(fig1bKB(t))
	if err != nil {
		t.Fatalf("headerless journal rejected: %v", err)
	}
	if checked {
		t.Fatal("headerless journal reported as digest-checked")
	}
}
