package inquiry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"kbrepair/internal/core"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/flight"
)

// TestDebugzDuringRepair scrapes /debugz from inside the user callback —
// mid-question, the moment a stuck session would be probed — and asserts
// the served bundle carries the flight events of the session so far, the
// provider-supplied KB digest and the journal-so-far.
func TestDebugzDuringRepair(t *testing.T) {
	flight.Enable(1024)
	t.Cleanup(flight.Disable)
	srv := httptest.NewServer(obs.DebugMux())
	defer srv.Close()

	kb := fig1bKB(t)
	digest := core.DigestKB(kb)
	flight.SetDigestProvider(func() any { return digest })
	t.Cleanup(func() { flight.SetDigestProvider(nil) })

	rec := NewRecordingSession(NewSimulatedUser(3), "random", 3, kb)
	flight.SetJournalProvider(func() any { return rec.Snapshot() })
	t.Cleanup(func() { flight.SetJournalProvider(nil) })

	var mid *flight.Bundle
	user := FuncUser(func(kb *core.KB, q Question) (core.Fix, error) {
		if mid == nil {
			resp, err := http.Get(srv.URL + "/debugz?reason=test")
			if err != nil {
				t.Errorf("GET /debugz: %v", err)
				return rec.Choose(kb, q)
			}
			defer resp.Body.Close()
			var b flight.Bundle
			if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
				t.Errorf("debugz mid-repair is not a bundle: %v", err)
				return rec.Choose(kb, q)
			}
			mid = &b
		}
		return rec.Choose(kb, q)
	})

	e := New(kb, Random{}, user, 1, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("repair did not converge")
	}
	if mid == nil {
		t.Fatal("user callback never scraped /debugz — KB was not inconsistent?")
	}

	if mid.Reason != "http:test" {
		t.Errorf("bundle reason = %q, want http:test", mid.Reason)
	}
	kinds := make(map[string]int)
	for _, raw := range mid.Events {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatalf("bundle event is not JSON: %v\n%s", err, raw)
		}
		kinds[ev.Kind]++
	}
	for _, want := range []string{"inquiry.session_start", "inquiry.question", "conflict.scan"} {
		if kinds[want] == 0 {
			t.Errorf("mid-repair bundle has no %s event (kinds: %v)", want, kinds)
		}
	}
	var d core.Digest
	if err := json.Unmarshal(mid.KBDigest, &d); err != nil {
		t.Fatalf("bundle KB digest unreadable: %v (%s)", err, mid.KBDigest)
	}
	if d.Facts != digest.Facts || d.CDDs != digest.CDDs {
		t.Errorf("bundle digest = %+v, want %+v", d, digest)
	}
	var j Journal
	if err := json.Unmarshal(mid.Journal, &j); err != nil {
		t.Fatalf("bundle journal unreadable: %v (%s)", err, mid.Journal)
	}
	if j.Strategy != "random" || j.Seed != 3 || j.Digest == nil {
		t.Errorf("bundle journal header = strategy=%q seed=%d digest=%v", j.Strategy, j.Seed, j.Digest)
	}
	if mid.Goroutines == "" {
		t.Error("bundle has no goroutine stacks")
	}
}
