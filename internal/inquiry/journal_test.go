package inquiry

import (
	"path/filepath"
	"testing"

	"kbrepair/internal/core"
	"kbrepair/internal/logic"
)

func TestJournalRecordAndReplay(t *testing.T) {
	kb := fig1bKB(t)
	rec := NewRecordingUser(NewSimulatedUser(4), "opti-join")
	e := New(kb, OptiJoin{}, rec, 4, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Journal().Entries) != res.Questions {
		t.Fatalf("journal entries = %d, questions = %d", len(rec.Journal().Entries), res.Questions)
	}

	// Round-trip through JSON.
	data, err := rec.Journal().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := UnmarshalJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Strategy != "opti-join" || len(j2.Entries) != len(rec.Journal().Entries) {
		t.Fatal("journal round trip lost data")
	}

	// Replay on a fresh copy reproduces the repair (up to null labels).
	kb2 := fig1bKB(t)
	replay := NewReplayUser(j2)
	e2 := New(kb2, OptiJoin{}, replay, 4, Options{})
	res2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Consistent {
		t.Fatal("replay inconsistent")
	}
	if res2.Questions != res.Questions {
		t.Errorf("replay asked %d questions, original %d", res2.Questions, res.Questions)
	}
	if !kb2.Facts.EqualUpToNullRenaming(kb.Facts) {
		t.Errorf("replay diverged:\n%s\nvs\n%s", kb2.Facts, kb.Facts)
	}
	if replay.Remaining() != 0 {
		t.Errorf("replay left %d unconsumed entries", replay.Remaining())
	}
}

func TestJournalSaveLoad(t *testing.T) {
	kb := fig1aKB(t)
	rec := NewRecordingUser(NewSimulatedUser(2), "random")
	e := New(kb, Random{}, rec, 2, Options{})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.json")
	if err := SaveJournal(rec.Journal(), path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != len(rec.Journal().Entries) {
		t.Error("save/load changed entry count")
	}
	if _, err := LoadJournal(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing journal loaded")
	}
}

func TestReplayUserErrors(t *testing.T) {
	f := core.Fix{Pos: core.Position{Fact: 0, Arg: 0}, Value: logic.C("a")}
	q := Question{Fixes: core.FixSet{f}}

	// Exhausted journal.
	empty := NewReplayUser(&Journal{})
	if _, err := empty.Choose(nil, q); err == nil {
		t.Error("exhausted replay answered")
	}
	// Recorded fix not offered.
	j := &Journal{Entries: []JournalEntry{{
		Offered: []JournalFix{{Fact: 5, Arg: 1, Kind: "const", Value: "zzz"}},
		Chosen:  0,
	}}}
	r := NewReplayUser(j)
	if _, err := r.Choose(nil, q); err == nil {
		t.Error("mismatched replay answered")
	}
	// Invalid chosen index.
	j2 := &Journal{Entries: []JournalEntry{{Chosen: 3}}}
	if _, err := NewReplayUser(j2).Choose(nil, q); err == nil {
		t.Error("invalid chosen index accepted")
	}
	// Unknown term kind.
	bad := JournalFix{Kind: "weird"}
	if _, err := bad.Fix(); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestUnmarshalJournalBadJSON(t *testing.T) {
	if _, err := UnmarshalJournal([]byte("{nope")); err == nil {
		t.Error("bad JSON accepted")
	}
}
