// Package inquiry implements the user-intervention layer of the paper:
// sound questions (Algorithm 2/5), the inquiry dialogue (Algorithm 3), the
// optimized two-phase strategy inquiry (Algorithm 4), the four questioning
// strategies of §5 (random, opti-join, opti-prop, opti-mcd), and the user
// models (oracle, simulated random user, function-backed user).
package inquiry

import (
	"fmt"
	"strings"

	"kbrepair/internal/conflict"
	"kbrepair/internal/core"
	"kbrepair/internal/logic"
	"kbrepair/internal/par"
)

// Question is a sound question φ = {f1, …, fn}: a set of fixes such that
// choosing any one of them keeps the knowledge base Π′-repairable
// (Def. 4.1).
type Question struct {
	// Conflict is the conflict the question was generated from.
	Conflict *conflict.Conflict
	// Fixes are the candidate fixes offered to the user.
	Fixes core.FixSet
	// Phase is 1 for naive-conflict questions and 2 for chase-discovered
	// questions (Algorithm 4).
	Phase int
}

// Empty reports whether the question offers no fix.
func (q Question) Empty() bool { return len(q.Fixes) == 0 }

// Contains reports whether the fix is one of the offered answers.
func (q Question) Contains(f core.Fix) bool { return q.Fixes.Contains(f) }

// Describe renders the question for a human, one fix per line, in the
// paper's (A, i, t) notation.
func (q Question) Describe(kb *core.KB) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Which fix is true? (%d candidates)\n", len(q.Fixes))
	for i, f := range q.Fixes {
		fmt.Fprintf(&sb, "  [%d] %s\n", i+1, f.Describe(kb.Facts))
	}
	return sb.String()
}

// SoundQuestion implements Algorithms 2/5: it generates, for each candidate
// position outside Π, every fix drawn from the active domain plus one fresh
// existential variable, and filters out any fix that would render the
// knowledge base not Π′-repairable (checked through the optimized
// Π-RepOpt). Given that K is Π-repairable and positions come from a live
// conflict, the result is non-empty (Lemma 4.3).
func SoundQuestion(kb *core.KB, pc *core.PiChecker, pi core.Pi, positions []core.Position, maxValues int) (core.FixSet, error) {
	seen := make(map[core.Position]bool)
	eligible := make([]core.Position, 0, len(positions))
	for _, pos := range positions {
		if pi.Has(pos) || seen[pos] {
			continue
		}
		seen[pos] = true
		eligible = append(eligible, pos)
	}
	// Each position's fresh null is minted here, sequentially in position
	// order: FreshNull advances the store's null sequence, so minting inside
	// the fan-out below would tie null labels to worker scheduling. The
	// active-domain enumeration per position is read-only and fans out; the
	// per-position fix lists merge in position order, so the candidate list —
	// and therefore the question — is identical at every worker count.
	nulls := make([]logic.Term, len(eligible))
	for i := range eligible {
		nulls[i] = kb.Facts.FreshNull()
	}
	perPos := par.MapNamed("inquiry.fixgen", len(eligible), func(i int) core.FixSet {
		pos := eligible[i]
		vals := core.FixValuesWith(kb, pos, nulls[i])
		if maxValues > 0 && len(vals) > maxValues {
			// Keep the fresh null (last) and the first maxValues-1 domain
			// values; the null guarantees answerability.
			vals = append(vals[:maxValues-1:maxValues-1], vals[len(vals)-1])
		}
		fs := make(core.FixSet, 0, len(vals))
		for _, v := range vals {
			fs = append(fs, core.Fix{Pos: pos, Value: v})
		}
		return fs
	})
	var cands core.FixSet
	for _, fs := range perPos {
		cands = append(cands, fs...)
	}
	sound, err := pc.CheckBatch(pi, cands)
	if err != nil {
		return nil, err
	}
	var out core.FixSet
	for i, ok := range sound {
		if ok {
			out = append(out, cands[i])
		}
	}
	return out, nil
}
