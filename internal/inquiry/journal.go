package inquiry

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"kbrepair/internal/core"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// Journal records an inquiry session — every question with its offered
// fixes and the user's choice — so a repair can be audited or replayed
// verbatim on a fresh copy of the knowledge base. Sessions serialize to
// JSON.
//
// Seed and Digest form the session header. A journal is only meaningful
// against the exact KB it was recorded on (fact ids and offered-fix order
// are positional), so replay checks the header digest against the loaded KB
// and fails fast on mismatch rather than diverging mid-replay. Journals
// recorded before the header existed have a nil Digest and load with a
// warning instead (see CheckKB).
type Journal struct {
	Strategy string `json:"strategy"`
	// Seed is the RNG seed of the recorded session; replays of seed-driven
	// strategies must rerun with the same seed to see the same questions.
	Seed int64 `json:"seed,omitempty"`
	// Digest fingerprints the KB the session was recorded on; nil in
	// journals from before the header existed.
	Digest  *core.Digest   `json:"kb_digest,omitempty"`
	Entries []JournalEntry `json:"entries"`
}

// CheckKB verifies the journal was recorded against (a KB shaped like) kb.
// It returns checked=false when the journal predates the header and has no
// digest — the caller should warn and proceed — and an error when the
// digest exists and does not match.
func (j *Journal) CheckKB(kb *core.KB) (checked bool, err error) {
	if j.Digest == nil {
		return false, nil
	}
	if diff := j.Digest.Diff(core.DigestKB(kb)); diff != "" {
		return true, fmt.Errorf("journal: KB does not match the recorded session (%s)", diff)
	}
	return true, nil
}

// JournalEntry is one question/answer exchange.
type JournalEntry struct {
	Phase int `json:"phase"`
	// Offered are the fixes of the question, in order.
	Offered []JournalFix `json:"offered"`
	// Chosen is the index into Offered of the user's answer.
	Chosen int `json:"chosen"`
}

// JournalFix is the JSON form of a fix.
type JournalFix struct {
	Fact  int    `json:"fact"`
	Arg   int    `json:"arg"`
	Kind  string `json:"kind"` // "const" or "null"
	Value string `json:"value"`
}

func toJournalFix(f core.Fix) JournalFix {
	kind := "const"
	if f.Value.IsNull() {
		kind = "null"
	}
	return JournalFix{
		Fact:  int(f.Pos.Fact),
		Arg:   f.Pos.Arg,
		Kind:  kind,
		Value: f.Value.Name,
	}
}

// Fix converts the entry back to a core fix.
func (jf JournalFix) Fix() (core.Fix, error) {
	var v logic.Term
	switch jf.Kind {
	case "const":
		v = logic.C(jf.Value)
	case "null":
		v = logic.N(jf.Value)
	default:
		return core.Fix{}, fmt.Errorf("journal: unknown term kind %q", jf.Kind)
	}
	return core.Fix{
		Pos:   core.Position{Fact: store.FactID(jf.Fact), Arg: jf.Arg},
		Value: v,
	}, nil
}

// Marshal renders the journal as indented JSON.
func (j *Journal) Marshal() ([]byte, error) {
	return json.MarshalIndent(j, "", "  ")
}

// UnmarshalJournal parses a journal from JSON.
func UnmarshalJournal(data []byte) (*Journal, error) {
	var j Journal
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &j, nil
}

// SaveJournal writes the journal to a file.
func SaveJournal(j *Journal, path string) error {
	data, err := j.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadJournal reads a journal from a file.
func LoadJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalJournal(data)
}

// RecordingUser wraps any user and appends every exchange to a journal.
// The journal is mutated under a mutex so Snapshot may be called from
// another goroutine mid-session — the debug-bundle dumper captures the
// journal-so-far from a signal handler while the session is still asking.
type RecordingUser struct {
	User User

	mu      sync.Mutex
	journal *Journal
}

// NewRecordingUser wraps a user with a fresh journal.
func NewRecordingUser(u User, strategy string) *RecordingUser {
	return &RecordingUser{User: u, journal: &Journal{Strategy: strategy}}
}

// NewRecordingSession is NewRecordingUser plus the session header: the RNG
// seed and a digest of the KB the session starts from. Record before the
// first question mutates the store, or the digest will describe a
// half-repaired KB.
func NewRecordingSession(u User, strategy string, seed int64, kb *core.KB) *RecordingUser {
	d := core.DigestKB(kb)
	return &RecordingUser{User: u, journal: &Journal{Strategy: strategy, Seed: seed, Digest: &d}}
}

// Snapshot returns a deep copy of the journal as recorded so far; safe to
// call concurrently with an in-flight session.
func (r *RecordingUser) Snapshot() *Journal {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := *r.journal
	cp.Entries = append([]JournalEntry(nil), r.journal.Entries...)
	return &cp
}

// Journal returns the live journal. Only read it after the session is done;
// use Snapshot while one is running.
func (r *RecordingUser) Journal() *Journal { return r.journal }

// Choose implements User.
func (r *RecordingUser) Choose(kb *core.KB, q Question) (core.Fix, error) {
	f, err := r.User.Choose(kb, q)
	if err != nil {
		return f, err
	}
	entry := JournalEntry{Phase: q.Phase, Chosen: -1}
	for i, offered := range q.Fixes {
		entry.Offered = append(entry.Offered, toJournalFix(offered))
		if offered == f {
			entry.Chosen = i
		}
	}
	if entry.Chosen < 0 {
		return f, fmt.Errorf("journal: user chose a fix outside the question")
	}
	r.mu.Lock()
	r.journal.Entries = append(r.journal.Entries, entry)
	r.mu.Unlock()
	return f, nil
}

// ReplayUser answers questions from a recorded journal. The replay is
// strict by default: each question must offer the recorded chosen fix
// (fresh-null fixes are matched by position, since null labels differ
// between sessions).
type ReplayUser struct {
	Journal *Journal
	next    int
}

// NewReplayUser builds a replaying user.
func NewReplayUser(j *Journal) *ReplayUser { return &ReplayUser{Journal: j} }

// Remaining returns the number of unconsumed entries.
func (r *ReplayUser) Remaining() int { return len(r.Journal.Entries) - r.next }

// Choose implements User.
func (r *ReplayUser) Choose(_ *core.KB, q Question) (core.Fix, error) {
	if r.next >= len(r.Journal.Entries) {
		return core.Fix{}, fmt.Errorf("journal: replay exhausted after %d entries", r.next)
	}
	entry := r.Journal.Entries[r.next]
	r.next++
	if entry.Chosen < 0 || entry.Chosen >= len(entry.Offered) {
		return core.Fix{}, fmt.Errorf("journal: entry %d has invalid chosen index", r.next-1)
	}
	want, err := entry.Offered[entry.Chosen].Fix()
	if err != nil {
		return core.Fix{}, err
	}
	for _, f := range q.Fixes {
		if f == want {
			return f, nil
		}
		// Null labels are session-local: match null answers by position.
		if want.Value.IsNull() && f.Value.IsNull() && f.Pos == want.Pos {
			return f, nil
		}
	}
	return core.Fix{}, fmt.Errorf("journal: entry %d's fix %s not offered by the question", r.next-1, want)
}
