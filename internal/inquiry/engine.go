package inquiry

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"kbrepair/internal/conflict"
	"kbrepair/internal/core"
	"kbrepair/internal/obs"
	"kbrepair/internal/obs/attr"
	"kbrepair/internal/obs/flight"
)

// Dialogue instrumentation. The per-question delay histogram carries the
// same quantity as Round.Delay / stats.Summarize over Result.Delays(), so a
// metrics snapshot can be reconciled against the experiment tables.
var (
	mInqRuns   = obs.NewCounter("inquiry.runs")
	mQuestions = obs.NewCounter("inquiry.questions")
	mPhase1    = obs.NewCounter("inquiry.phase1_rounds")
	mPhase2    = obs.NewCounter("inquiry.phase2_rounds")
	hDelay     = obs.NewHistogram("inquiry.question_delay_seconds", obs.LatencyBuckets)

	// Live-progress gauges read back by /statusz and the time-series
	// sampler. They describe the current (most recent) run; each Run resets
	// them, so a dashboard watching a kbbench session sees per-run curves.
	gPhase     = obs.NewGauge(obs.StatusPhase)
	gConflicts = obs.NewGauge(obs.StatusConflictsRemaining)
	gAsked     = obs.NewGauge(obs.StatusQuestionsAsked)
)

// Per-CDD attribution families: questions and their computation delay,
// billed to the CDD of the conflict being resolved.
var (
	attrQuestions = attr.NewCounterVec(attr.FamQuestions)
	attrQDelay    = attr.NewHistogramVec(attr.FamQuestionDelay, obs.LatencyBuckets)
)

// statusBegin resets the live-progress gauges for a fresh run.
func statusBegin() {
	gPhase.Set(0)
	gConflicts.Set(0)
	gAsked.Set(0)
}

// statusRound publishes the state of the round about to be asked, and
// marks a time-series row so per-round progress curves line up with
// questions rather than wall-clock ticks.
func statusRound(phase int, conflicts, asked int) {
	gPhase.Set(int64(phase))
	gConflicts.Set(int64(conflicts))
	gAsked.Set(int64(asked))
	if obs.SamplerActive() {
		obs.SampleNow("question")
	}
}

// statusEnd publishes the terminal state (phase 3 = done).
func statusEnd(conflicts int) {
	gPhase.Set(3)
	gConflicts.Set(int64(conflicts))
}

// Options tune an inquiry run.
type Options struct {
	// MaxQuestions caps the dialogue length as a safety net. 0 means
	// 4×|pos(F)| (the theoretical maximum is |pos(F)|; the slack absorbs
	// propagation releases).
	MaxQuestions int
	// MaxValuesPerPosition caps the number of candidate values offered per
	// position (0 = unlimited, the paper's semantics). The fresh
	// existential variable is always kept.
	MaxValuesPerPosition int
	// TrackConflictSeries records the total number of (chase-level)
	// conflicts after every answer — the convergence series of Figure 4.
	// It costs one chase per question.
	TrackConflictSeries bool
	// DisablePiRepOpt turns off the Π-RepOpt fast path (ablation).
	DisablePiRepOpt bool
	// DisableIncremental recomputes naive conflicts from scratch after
	// each answer instead of using UpdateConflicts (ablation).
	DisableIncremental bool
}

// Round records one question/answer exchange.
type Round struct {
	// Phase is 1 (naive conflicts) or 2 (chase-discovered conflicts).
	Phase int
	// QuestionSize is the number of fixes offered.
	QuestionSize int
	// Answer is the fix the user chose.
	Answer core.Fix
	// ConflictsBefore is the size of the conflict set the question was
	// drawn from (naive conflicts in phase 1, chase conflicts in phase 2).
	ConflictsBefore int
	// SeriesConflicts is the total conflict count after the answer, when
	// Options.TrackConflictSeries is set (-1 otherwise).
	SeriesConflicts int
	// Delay is the time spent computing this question — the paper's
	// delay-time metric (conflict recomputation + question generation).
	Delay time.Duration
}

// Result summarizes a finished inquiry.
type Result struct {
	// Strategy is the name of the strategy used.
	Strategy string
	// Questions is the number of questions asked.
	Questions int
	// Rounds holds the per-question log.
	Rounds []Round
	// InitialNaive is |allconflicts_naive(K)| at the start.
	InitialNaive int
	// InitialTotal is |allconflicts(K)| (chase-level) at the start.
	InitialTotal int
	// Consistent reports the final consistency check.
	Consistent bool
	// Duration is the wall-clock time of the whole run.
	Duration time.Duration
	// AppliedFixes are the user-chosen fixes, in order.
	AppliedFixes core.FixSet
	// FastHits and FullChecks report how the Π-repairability checks split
	// between the Π-RepOpt fast path and full Algorithm 1 runs.
	FastHits, FullChecks int
}

// AvgDelay returns the mean question-generation delay.
func (r *Result) AvgDelay() time.Duration {
	if len(r.Rounds) == 0 {
		return 0
	}
	var total time.Duration
	for _, rd := range r.Rounds {
		total += rd.Delay
	}
	return total / time.Duration(len(r.Rounds))
}

// Delays returns the per-question delays.
func (r *Result) Delays() []time.Duration {
	out := make([]time.Duration, len(r.Rounds))
	for i, rd := range r.Rounds {
		out[i] = rd.Delay
	}
	return out
}

// ConflictSeries returns the conflict counts after each question (requires
// Options.TrackConflictSeries).
func (r *Result) ConflictSeries() []int {
	out := make([]int, len(r.Rounds))
	for i, rd := range r.Rounds {
		out[i] = rd.SeriesConflicts
	}
	return out
}

// Engine drives an inquiry dialogue over a knowledge base. The engine
// mutates the KB's fact store in place; clone the KB first to preserve the
// original.
type Engine struct {
	KB       *core.KB
	Strategy Strategy
	User     User
	Rng      *rand.Rand
	// Pi is the set of immutable positions Π; it grows as questions are
	// answered (and through opti-prop propagation).
	Pi   core.Pi
	Opts Options

	pc         *core.PiChecker
	propagated core.Pi
}

// New builds an engine. A nil strategy defaults to Random; a nil user is an
// error at Run time.
func New(kb *core.KB, strat Strategy, user User, seed int64, opts Options) *Engine {
	if strat == nil {
		strat = Random{}
	}
	e := &Engine{
		KB:         kb,
		Strategy:   strat,
		User:       user,
		Rng:        rand.New(rand.NewSource(seed)),
		Pi:         core.NewPi(),
		Opts:       opts,
		propagated: core.NewPi(),
	}
	e.pc = core.NewPiChecker(kb)
	e.pc.Optimized = !opts.DisablePiRepOpt
	return e
}

// propagate pins a position as immutable on behalf of opti-prop; the pin is
// recorded so it can be released if it ever blocks question generation.
func (e *Engine) propagate(p core.Position) {
	e.Pi.Add(p)
	e.propagated.Add(p)
}

// releasePropagated undoes all propagation pins.
func (e *Engine) releasePropagated() int {
	n := len(e.propagated)
	for p := range e.propagated {
		delete(e.Pi, p)
	}
	e.propagated = core.NewPi()
	return n
}

func (e *Engine) maxQuestions() int {
	if e.Opts.MaxQuestions > 0 {
		return e.Opts.MaxQuestions
	}
	n := 4 * e.KB.Facts.NumPositions()
	if n < 64 {
		n = 64
	}
	return n
}

// ErrUnanswerable is returned when no sound question can be generated for a
// live conflict — which Lemma 4.3 rules out while the Π-repairability
// invariant holds, so seeing it indicates the invariant was broken (e.g. by
// external mutation of the KB mid-inquiry).
var ErrUnanswerable = errors.New("inquiry: no sound question for a live conflict")

// ask generates a sound question for the conflict (via the strategy),
// presents it to the user, applies the chosen fix and updates Π. It returns
// the offered positions and the round record.
//
// qsp is this question's trace span (inert when tracing is off); ask hangs
// its phases under it — inquiry.sound_question for strategy position
// selection plus SOUNDQUESTION (whose Π-batches parent themselves under it
// via the checker's trace parent), inquiry.user_answer for the time the
// user holds the question. The caller ends qsp after the post-answer
// conflict maintenance, so the span's full duration also covers tracker
// updates / re-scans, and the waterfall's unattributed remainder is
// genuine engine overhead.
func (e *Engine) ask(cs []*conflict.Conflict, x *conflict.Conflict, phase int, qsp obs.Span) ([]core.Position, Round, error) {
	t0 := obs.Now()
	// Attribute the Π-checks this question will run — and the question
	// itself — to the CDD whose conflict is being resolved.
	qid := attr.None
	if attr.Enabled() {
		qid = conflict.AttrID(x.CDD)
		e.pc.SetCause(qid)
	}
	ssp := qsp.Child("inquiry.sound_question")
	e.pc.SetTraceParent(ssp.ID())
	positions := e.Strategy.Positions(e, cs, x)
	fixes, err := SoundQuestion(e.KB, e.pc, e.Pi, positions, e.Opts.MaxValuesPerPosition)
	if err != nil {
		ssp.End()
		return nil, Round{}, err
	}
	if len(fixes) == 0 {
		// Propagated pins may have starved the question; release and retry
		// on the conflict's full position set.
		if e.releasePropagated() > 0 {
			positions = x.Positions(e.KB.Facts)
			fixes, err = SoundQuestion(e.KB, e.pc, e.Pi, positions, e.Opts.MaxValuesPerPosition)
			if err != nil {
				ssp.End()
				return nil, Round{}, err
			}
		}
	}
	if len(fixes) == 0 {
		ssp.End()
		return nil, Round{}, fmt.Errorf("%w: conflict %s", ErrUnanswerable, x)
	}
	if ssp.Live() {
		ssp.End(obs.Int("positions", len(positions)), obs.Int("fixes", len(fixes)))
	}
	q := Question{Conflict: x, Fixes: fixes, Phase: phase}
	// Measured on the tracer clock: the value lands in the question span's
	// delay_us attribute, which must be deterministic under an injected clock.
	delay := obs.Now().Sub(t0)
	mQuestions.Inc()
	gAsked.Add(1)
	hDelay.Observe(delay.Seconds())
	attrQuestions.Add(qid, 1)
	attrQDelay.Observe(qid, delay.Seconds())
	if phase == 1 {
		mPhase1.Inc()
	} else {
		mPhase2.Inc()
	}
	flight.Record(flight.KindQuestion, int64(phase), int64(len(fixes)), int64(len(cs)), delay.Microseconds())
	flight.ObserveQuestion(phase, len(cs), delay)
	usp := qsp.Child("inquiry.user_answer")
	f, err := e.User.Choose(e.KB, q)
	if err != nil {
		usp.End()
		return nil, Round{}, fmt.Errorf("user failed on question with %d fixes: %w", len(fixes), err)
	}
	usp.End()
	if !q.Contains(f) {
		return nil, Round{}, fmt.Errorf("user chose %s, which is not in the question", f)
	}
	if _, err := e.KB.Facts.SetValue(f.Pos, f.Value); err != nil {
		return nil, Round{}, err
	}
	e.Pi.Add(f.Pos)
	recordAnswer(f)
	return positions, Round{
		Phase:           phase,
		QuestionSize:    len(fixes),
		Answer:          f,
		ConflictsBefore: len(cs),
		SeriesConflicts: -1,
		Delay:           delay,
	}, nil
}

// endQuestion closes a question span with the round's summary attributes.
// The components hung under the span plus its unattributed remainder sum
// to its duration by construction (children are closed before the parent,
// all on this goroutine).
func endQuestion(qsp obs.Span, qIdx int, rd Round) {
	if !qsp.Live() {
		return
	}
	qsp.End(obs.Int("q", qIdx),
		obs.Int("phase", rd.Phase),
		obs.Int("conflicts", rd.ConflictsBefore),
		obs.Int("fixes", rd.QuestionSize),
		obs.Int64("delay_us", rd.Delay.Microseconds()))
}

// recordAnswer flight-records a chosen fix. The value is only stringified
// when a recorder is active: the disabled path must not allocate.
func recordAnswer(f core.Fix) {
	if !flight.Active() {
		return
	}
	var isNull int64
	if f.Value.IsNull() {
		isNull = 1
	}
	flight.RecordNote(flight.KindAnswer, int64(f.Pos.Fact), int64(f.Pos.Arg), isNull, f.Value.String())
}

// sessionStart resets the anomaly watchdogs and flight-records the opening
// state of an inquiry session.
func sessionStart(strategy string, facts, naive, total int) {
	flight.SessionBegin()
	if flight.Active() {
		flight.RecordNote(flight.KindSessionStart, int64(facts), int64(naive), int64(total), strategy)
	}
}

// Run executes the two-phase strategy inquiry (Algorithm 4): phase one
// resolves naive conflicts with incremental maintenance; phase two resolves
// conflicts discovered through the chase until the KB is consistent. It
// returns the per-question log and summary metrics.
func (e *Engine) Run() (*Result, error) {
	if e.User == nil {
		return nil, errors.New("inquiry: nil user")
	}
	mInqRuns.Inc()
	statusBegin()
	start := time.Now()
	res := &Result{Strategy: e.Strategy.Name(), InitialTotal: -1}

	// One root span per run; everything the run does hangs under it. Ended
	// exactly once — eagerly with summary attributes on success, by the
	// deferred call on error paths.
	var rootSp obs.Span
	if obs.Tracing() {
		rootSp = obs.StartSpan("inquiry.run",
			obs.Str("strategy", res.Strategy), obs.Int("facts", e.KB.Facts.Len()))
	}
	rootDone := false
	endRoot := func(extra ...obs.Attr) {
		if !rootDone {
			rootDone = true
			rootSp.End(extra...)
		}
	}
	defer endRoot()

	initSp := rootSp.Child("inquiry.init")
	tracker := conflict.NewTrackerUnder(initSp.ID(), e.KB.Facts, e.KB.CDDs)
	res.InitialNaive = tracker.Len()
	if initial, _, err := e.KB.AllConflictsUnder(initSp.ID()); err == nil {
		res.InitialTotal = len(initial)
	} else {
		initSp.End()
		return nil, err
	}
	if initSp.Live() {
		initSp.End(obs.Int("naive", res.InitialNaive), obs.Int("total", res.InitialTotal))
	}
	sessionStart(res.Strategy, e.KB.Facts.Len(), res.InitialNaive, res.InitialTotal)

	record := func(rd Round, f core.Fix, parent uint64) error {
		if e.Opts.TrackConflictSeries {
			cs, _, err := e.KB.AllConflictsUnder(parent)
			if err != nil {
				return err
			}
			rd.SeriesConflicts = len(cs)
		}
		res.Rounds = append(res.Rounds, rd)
		res.AppliedFixes = append(res.AppliedFixes, f)
		if len(res.Rounds) > e.maxQuestions() {
			return fmt.Errorf("inquiry: exceeded %d questions", e.maxQuestions())
		}
		return nil
	}

	// Phase one: naive conflicts.
	for tracker.Len() > 0 {
		cs := tracker.Conflicts()
		statusRound(1, len(cs), len(res.Rounds))
		qsp := rootSp.Child("inquiry.question")
		psp := qsp.Child("inquiry.pick_conflict")
		x := e.Strategy.PickConflict(e, cs)
		psp.End()
		offered, rd, err := e.ask(cs, x, 1, qsp)
		if err != nil {
			qsp.End()
			return res, err
		}
		if e.Opts.DisableIncremental {
			tracker = conflict.NewTrackerUnder(qsp.ID(), e.KB.Facts, e.KB.CDDs)
		} else {
			tracker.UpdateUnder(qsp.ID(), rd.Answer.Pos.Fact)
		}
		e.Strategy.AfterAnswer(e, tracker.Conflicts(), x, offered, rd.Answer)
		if err := record(rd, rd.Answer, qsp.ID()); err != nil {
			qsp.End()
			return res, err
		}
		endQuestion(qsp, len(res.Rounds), rd)
	}

	// Phase two: conflicts that only appear through the chase. Without
	// TGDs the naive conflicts were all conflicts and this loop exits
	// immediately after one (cheap) check. The post-answer re-scan (needed
	// anyway for AfterAnswer's "involved in other conflicts" test) doubles
	// as the next iteration's conflict set: nothing mutates the KB between
	// the end of one iteration and the top of the next, so reusing it both
	// saves a full chase+scan per question and attributes every scan to the
	// question that made it necessary.
	cs, _, err := e.KB.AllConflictsUnder(rootSp.ID())
	if err != nil {
		return res, err
	}
	for len(cs) > 0 {
		statusRound(2, len(cs), len(res.Rounds))
		qsp := rootSp.Child("inquiry.question")
		psp := qsp.Child("inquiry.pick_conflict")
		x := e.Strategy.PickConflict(e, cs)
		psp.End()
		offered, rd, err := e.ask(cs, x, 2, qsp)
		if err != nil {
			qsp.End()
			return res, err
		}
		after, _, err := e.KB.AllConflictsUnder(qsp.ID())
		if err != nil {
			qsp.End()
			return res, err
		}
		e.Strategy.AfterAnswer(e, after, x, offered, rd.Answer)
		if err := record(rd, rd.Answer, qsp.ID()); err != nil {
			qsp.End()
			return res, err
		}
		endQuestion(qsp, len(res.Rounds), rd)
		cs = after
	}

	fsp := rootSp.Child("inquiry.final_check")
	ok, err := e.KB.IsConsistentUnder(fsp.ID())
	if err != nil {
		fsp.End()
		return res, err
	}
	if fsp.Live() {
		fsp.End(obs.Bool("consistent", ok))
	}
	statusEnd(0)
	res.Consistent = ok
	res.Questions = len(res.Rounds)
	res.Duration = time.Since(start)
	res.FastHits, res.FullChecks = e.pc.FastHits, e.pc.FullChecks
	endRoot(obs.Int("questions", res.Questions), obs.Bool("consistent", ok))
	return res, nil
}

// RunBasic executes the plain inquiry of Algorithm 3: recompute
// allconflicts(K) (chase-level) each round, pick a conflict, ask a sound
// question over all of its positions, apply the answer, repeat. It ignores
// the engine's strategy except for conflict picking randomness; questions
// always cover the full position set of the conflict, which is what the
// oracle soundness result (Prop. 4.8) is stated for.
func (e *Engine) RunBasic() (*Result, error) {
	if e.User == nil {
		return nil, errors.New("inquiry: nil user")
	}
	mInqRuns.Inc()
	statusBegin()
	start := time.Now()
	res := &Result{Strategy: "basic"}

	var rootSp obs.Span
	if obs.Tracing() {
		rootSp = obs.StartSpan("inquiry.run",
			obs.Str("strategy", res.Strategy), obs.Int("facts", e.KB.Facts.Len()))
	}
	rootDone := false
	endRoot := func(extra ...obs.Attr) {
		if !rootDone {
			rootDone = true
			rootSp.End(extra...)
		}
	}
	defer endRoot()

	initSp := rootSp.Child("inquiry.init")
	res.InitialNaive = len(conflict.AllNaiveUnder(initSp.ID(), e.KB.Facts, e.KB.CDDs))
	if initial, _, err := e.KB.AllConflictsUnder(initSp.ID()); err == nil {
		res.InitialTotal = len(initial)
	} else {
		initSp.End()
		return nil, err
	}
	if initSp.Live() {
		initSp.End(obs.Int("naive", res.InitialNaive), obs.Int("total", res.InitialTotal))
	}
	sessionStart(res.Strategy, e.KB.Facts.Len(), res.InitialNaive, res.InitialTotal)

	// As in Run's phase two, each iteration ends with the re-scan the next
	// iteration needs, attributed to the question just answered; only the
	// first scan hangs directly under the root.
	cs, _, err := e.KB.AllConflictsUnder(rootSp.ID())
	if err != nil {
		return res, err
	}
	for len(cs) > 0 {
		statusRound(1, len(cs), len(res.Rounds))
		qsp := rootSp.Child("inquiry.question")
		t0 := obs.Now()
		psp := qsp.Child("inquiry.pick_conflict")
		x := pickRandom(cs, e.Rng)
		psp.End()
		qid := attr.None
		if attr.Enabled() {
			qid = conflict.AttrID(x.CDD)
			e.pc.SetCause(qid)
		}
		ssp := qsp.Child("inquiry.sound_question")
		e.pc.SetTraceParent(ssp.ID())
		positions := x.Positions(e.KB.Facts)
		fixes, err := SoundQuestion(e.KB, e.pc, e.Pi, positions, e.Opts.MaxValuesPerPosition)
		if err != nil {
			ssp.End()
			qsp.End()
			return res, err
		}
		if len(fixes) == 0 {
			ssp.End()
			qsp.End()
			return res, fmt.Errorf("%w: conflict %s", ErrUnanswerable, x)
		}
		if ssp.Live() {
			ssp.End(obs.Int("positions", len(positions)), obs.Int("fixes", len(fixes)))
		}
		q := Question{Conflict: x, Fixes: fixes, Phase: 1}
		delay := obs.Now().Sub(t0)
		mQuestions.Inc()
		gAsked.Add(1)
		mPhase1.Inc()
		hDelay.Observe(delay.Seconds())
		attrQuestions.Add(qid, 1)
		attrQDelay.Observe(qid, delay.Seconds())
		flight.Record(flight.KindQuestion, 1, int64(len(fixes)), int64(len(cs)), delay.Microseconds())
		flight.ObserveQuestion(1, len(cs), delay)
		usp := qsp.Child("inquiry.user_answer")
		f, err := e.User.Choose(e.KB, q)
		if err != nil {
			usp.End()
			qsp.End()
			return res, err
		}
		usp.End()
		if !q.Contains(f) {
			qsp.End()
			return res, fmt.Errorf("user chose %s, which is not in the question", f)
		}
		if _, err := e.KB.Facts.SetValue(f.Pos, f.Value); err != nil {
			qsp.End()
			return res, err
		}
		e.Pi.Add(f.Pos)
		recordAnswer(f)
		rd := Round{
			Phase:           1,
			QuestionSize:    len(fixes),
			Answer:          f,
			ConflictsBefore: len(cs),
			SeriesConflicts: -1,
			Delay:           delay,
		}
		res.Rounds = append(res.Rounds, rd)
		res.AppliedFixes = append(res.AppliedFixes, f)
		if len(res.Rounds) > e.maxQuestions() {
			qsp.End()
			return res, fmt.Errorf("inquiry: exceeded %d questions", e.maxQuestions())
		}
		after, _, err := e.KB.AllConflictsUnder(qsp.ID())
		if err != nil {
			qsp.End()
			return res, err
		}
		endQuestion(qsp, len(res.Rounds), rd)
		cs = after
	}
	fsp := rootSp.Child("inquiry.final_check")
	ok, err := e.KB.IsConsistentUnder(fsp.ID())
	if err != nil {
		fsp.End()
		return res, err
	}
	if fsp.Live() {
		fsp.End(obs.Bool("consistent", ok))
	}
	statusEnd(0)
	res.Consistent = ok
	res.Questions = len(res.Rounds)
	res.Duration = time.Since(start)
	res.FastHits, res.FullChecks = e.pc.FastHits, e.pc.FullChecks
	endRoot(obs.Int("questions", res.Questions), obs.Bool("consistent", ok))
	return res, nil
}
