package inquiry

import (
	"math/rand"
	"testing"

	"kbrepair/internal/core"
	"kbrepair/internal/logic"
	"kbrepair/internal/store"
)

// fig1aKB builds the Figure 1(a) KB (CDDs only).
func fig1aKB(t testing.TB) *core.KB {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),    // 0
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),    // 1
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")), // 2
	})
	cdd := logic.MustCDD([]logic.Atom{
		logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
		logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
	})
	return core.MustKB(s, nil, []*logic.CDD{cdd})
}

// fig1bKB builds the Figure 1(b) KB (CDDs + TGD).
func fig1bKB(t testing.TB) *core.KB {
	t.Helper()
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),         // 0
		logic.NewAtom("hasAllergy", logic.C("John"), logic.C("Aspirin")),         // 1
		logic.NewAtom("hasAllergy", logic.C("Mike"), logic.C("Penicillin")),      // 2
		logic.NewAtom("hasPain", logic.C("John"), logic.C("Migraine")),           // 3
		logic.NewAtom("isPainKillerFor", logic.C("Nsaids"), logic.C("Migraine")), // 4
		logic.NewAtom("incompatible", logic.C("Aspirin"), logic.C("Nsaids")),     // 5
	})
	tgds := []*logic.TGD{logic.MustTGD(
		[]logic.Atom{
			logic.NewAtom("isPainKillerFor", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasPain", logic.V("Z"), logic.V("Y")),
		},
		[]logic.Atom{logic.NewAtom("prescribed", logic.V("X"), logic.V("Z"))},
	)}
	cdds := []*logic.CDD{
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("prescribed", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasAllergy", logic.V("Y"), logic.V("X")),
		}),
		logic.MustCDD([]logic.Atom{
			logic.NewAtom("prescribed", logic.V("X"), logic.V("Z")),
			logic.NewAtom("prescribed", logic.V("Y"), logic.V("Z")),
			logic.NewAtom("incompatible", logic.V("X"), logic.V("Y")),
		}),
	}
	return core.MustKB(s, tgds, cdds)
}

func TestSoundQuestionExample42(t *testing.T) {
	kb := fig1aKB(t)
	pc := core.NewPiChecker(kb)
	pi := core.NewPi()
	// Positions of the conflict atoms prescribed(Aspirin,John) and
	// hasAllergy(John,Aspirin).
	positions := []core.Position{
		{Fact: 0, Arg: 0}, {Fact: 0, Arg: 1},
		{Fact: 1, Arg: 0}, {Fact: 1, Arg: 1},
	}
	fixes, err := SoundQuestion(kb, pc, pi, positions, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Example 4.2 expects, per position: the domain values different from
	// the current one that survive the soundness filter, plus a fresh null.
	// adom(prescribed,1) = {Aspirin}: only the null survives at (0,0).
	// adom(prescribed,2) = {John}: only the null at (0,1).
	// adom(hasAllergy,1) = {John, Mike}: Mike + null at (1,0).
	// adom(hasAllergy,2) = {Aspirin, Penicillin}: Penicillin + null at (1,1).
	byPos := make(map[core.Position]int)
	for _, f := range fixes {
		byPos[f.Pos]++
		if !f.Value.IsNull() {
			switch f.Pos {
			case (core.Position{Fact: 1, Arg: 0}):
				if f.Value != logic.C("Mike") {
					t.Errorf("unexpected value %v at (1,0)", f.Value)
				}
			case (core.Position{Fact: 1, Arg: 1}):
				if f.Value != logic.C("Penicillin") {
					t.Errorf("unexpected value %v at (1,1)", f.Value)
				}
			default:
				t.Errorf("unexpected constant fix %v", f)
			}
		}
	}
	want := map[core.Position]int{
		{Fact: 0, Arg: 0}: 1,
		{Fact: 0, Arg: 1}: 1,
		{Fact: 1, Arg: 0}: 2,
		{Fact: 1, Arg: 1}: 2,
	}
	for p, n := range want {
		if byPos[p] != n {
			t.Errorf("position %v: %d fixes, want %d (all: %v)", p, byPos[p], n, fixes)
		}
	}
}

func TestSoundQuestionSkipsPiPositions(t *testing.T) {
	kb := fig1aKB(t)
	pc := core.NewPiChecker(kb)
	pi := core.NewPi(core.Position{Fact: 0, Arg: 0})
	fixes, err := SoundQuestion(kb, pc, pi, []core.Position{{Fact: 0, Arg: 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes) != 0 {
		t.Errorf("Π position got fixes: %v", fixes)
	}
}

func TestSoundQuestionFiltersUnsoundFixes(t *testing.T) {
	// Example 3.7 shape: p(a,b), q(b,d) with CDD p(X,Y), q(Y,Z) → ⊥.
	// With Π pinning q's join position to b, the fix (p(a,b),2,b) — a
	// no-op — is excluded by Def 3.1 (t must differ), but consider the fix
	// on q(b,d)@1 to value "a" while p(a,b)@2 is pinned... Construct the
	// situation where a domain value is filtered: pin p@2=b in Π; then fix
	// candidates for q@1 include the value b (from adom(q,1)={b}? no, it
	// equals the current value). Use a richer store to get a genuinely
	// filtered value.
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a"), logic.C("b")),
		logic.NewAtom("q", logic.C("x"), logic.C("d")),
		logic.NewAtom("q", logic.C("b"), logic.C("e")),
	})
	cdd := logic.MustCDD([]logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		logic.NewAtom("q", logic.V("Y"), logic.V("Z")),
	})
	kb := core.MustKB(s, nil, []*logic.CDD{cdd})
	pc := core.NewPiChecker(kb)
	// Pin p(a,b) entirely: the only repairs change q-atoms.
	pi := core.NewPi(core.Position{Fact: 0, Arg: 0}, core.Position{Fact: 0, Arg: 1})
	// Candidate fixes for q(x,d)@1: adom(q,1)={x,b} → candidate value b,
	// plus a null. Setting it to b would join with pinned p(·,b): unsound,
	// must be filtered.
	fixes, err := SoundQuestion(kb, pc, pi, []core.Position{{Fact: 1, Arg: 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fixes {
		if f.Value == logic.C("b") {
			t.Errorf("unsound fix %v offered", f)
		}
	}
	if len(fixes) != 1 || !fixes[0].Value.IsNull() {
		t.Errorf("fixes = %v, want only the fresh null", fixes)
	}
}

func TestSoundQuestionMaxValues(t *testing.T) {
	s := store.New()
	for _, c := range []string{"a", "b", "c", "d", "e", "f"} {
		s.MustAdd(logic.NewAtom("p", logic.C(c), logic.C("k")))
	}
	s.MustAdd(logic.NewAtom("q", logic.C("k")))
	cdd := logic.MustCDD([]logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		logic.NewAtom("q", logic.V("Y")),
	})
	kb := core.MustKB(s, nil, []*logic.CDD{cdd})
	pc := core.NewPiChecker(kb)
	fixes, err := SoundQuestion(kb, pc, core.NewPi(), []core.Position{{Fact: 0, Arg: 0}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixes) > 3 {
		t.Errorf("cap ignored: %d fixes", len(fixes))
	}
	hasNull := false
	for _, f := range fixes {
		if f.Value.IsNull() {
			hasNull = true
		}
	}
	if !hasNull {
		t.Error("cap dropped the fresh null")
	}
}

func TestQuestionHelpers(t *testing.T) {
	kb := fig1aKB(t)
	f := core.Fix{Pos: core.Position{Fact: 0, Arg: 0}, Value: logic.C("z")}
	q := Question{Fixes: core.FixSet{f}}
	if q.Empty() {
		t.Error("non-empty question Empty")
	}
	if !q.Contains(f) {
		t.Error("Contains wrong")
	}
	if q.Describe(kb) == "" {
		t.Error("empty Describe")
	}
	if !(Question{}).Empty() {
		t.Error("empty question not Empty")
	}
}

// TestInquirySoundnessAndTermination is Proposition 4.4: for every dialogue
// with any (simulated) user, the inquiry terminates with a consistent KB.
func TestInquirySoundnessAndTermination(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, strat := range AllStrategies() {
			kb := fig1bKB(t)
			e := New(kb, strat, NewSimulatedUser(seed), seed, Options{})
			res, err := e.Run()
			if err != nil {
				t.Fatalf("strategy %s seed %d: %v", strat.Name(), seed, err)
			}
			if !res.Consistent {
				t.Errorf("strategy %s seed %d: final KB inconsistent", strat.Name(), seed)
			}
			if res.Questions == 0 {
				t.Errorf("strategy %s seed %d: no questions asked on inconsistent KB", strat.Name(), seed)
			}
			if res.Questions > kb.Facts.NumPositions() {
				t.Errorf("strategy %s seed %d: %d questions > |pos(F)| = %d",
					strat.Name(), seed, res.Questions, kb.Facts.NumPositions())
			}
		}
	}
}

// TestOracleSoundness is Proposition 4.8: an inquiry with an oracle ends in
// exactly the oracle's repair (up to renaming of labeled nulls).
func TestOracleSoundness(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		kb := fig1aKB(t)
		// Oracle repair: John's allergy becomes unknown (F3 of Ex. 1.3).
		target := kb.Facts.Clone()
		target.MustSetValue(core.Position{Fact: 1, Arg: 1}, target.FreshNull())
		oracle := NewOracle(target, seed)
		e := New(kb, Random{}, oracle, seed, Options{})
		res, err := e.RunBasic()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Consistent {
			t.Fatalf("seed %d: inconsistent result", seed)
		}
		if !kb.Facts.EqualUpToNullRenaming(target) {
			t.Errorf("seed %d: result differs from oracle repair:\n%s\nvs target:\n%s",
				seed, kb.Facts, target)
		}
		if len(oracle.RemainingDiff(kb)) != 0 {
			t.Errorf("seed %d: oracle diff not exhausted", seed)
		}
	}
}

// TestOracleSoundnessWithTGDs runs Prop 4.8 on the Figure 1(b) KB with an
// oracle repair in the spirit of Example 4.9.
func TestOracleSoundnessWithTGDs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		kb := fig1bKB(t)
		// Oracle repair in the spirit of Example 4.9: the allergy belongs
		// to Mike, and the incompatibility's first drug becomes unknown.
		// (Def. 3.1 requires fix values to come from the per-position
		// active domain or be fresh nulls; both fixes below qualify, and
		// dropping either leaves a violation, so the diff is an r-fix.)
		target := kb.Facts.Clone()
		target.MustSetValue(core.Position{Fact: 1, Arg: 0}, logic.C("Mike"))
		target.MustSetValue(core.Position{Fact: 5, Arg: 0}, target.FreshNull())
		// Sanity: the target must be a consistent KB.
		tkb := &core.KB{Facts: target.Clone(), TGDs: kb.TGDs, CDDs: kb.CDDs}
		if ok, err := tkb.IsConsistent(); err != nil || !ok {
			t.Fatalf("oracle target inconsistent: ok=%v err=%v", ok, err)
		}
		oracle := NewOracle(target, seed)
		e := New(kb, Random{}, oracle, seed, Options{})
		res, err := e.RunBasic()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Consistent {
			t.Fatalf("seed %d: inconsistent result", seed)
		}
		if !kb.Facts.EqualUpToNullRenaming(target) {
			t.Errorf("seed %d: result differs from oracle repair:\n%svs target:\n%s",
				seed, kb.Facts, target)
		}
	}
}

// TestOracleAnswersEveryQuestion is Lemma 4.7 in executable form: during a
// basic inquiry with an oracle, every generated question contains at least
// one fix of the oracle's diff (otherwise Choose errors, failing the test).
func TestOracleAnswersEveryQuestion(t *testing.T) {
	kb := fig1bKB(t)
	target := kb.Facts.Clone()
	target.MustSetValue(core.Position{Fact: 0, Arg: 0}, target.FreshNull())
	target.MustSetValue(core.Position{Fact: 1, Arg: 1}, target.FreshNull())
	tkb := &core.KB{Facts: target.Clone(), TGDs: kb.TGDs, CDDs: kb.CDDs}
	if ok, _ := tkb.IsConsistent(); !ok {
		t.Fatal("target not consistent")
	}
	oracle := NewOracle(target, 1)
	e := New(kb, Random{}, oracle, 1, Options{})
	if _, err := e.RunBasic(); err != nil {
		t.Fatalf("oracle failed to answer: %v", err)
	}
}

func TestTwoPhaseEngineOnCDDOnlyKB(t *testing.T) {
	kb := fig1aKB(t)
	e := New(kb, OptiJoin{}, NewSimulatedUser(3), 3, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Error("inconsistent result")
	}
	for _, rd := range res.Rounds {
		if rd.Phase != 1 {
			t.Error("CDD-only KB should never enter phase 2")
		}
	}
	if res.InitialNaive != 1 || res.InitialTotal != 1 {
		t.Errorf("initial conflicts: naive=%d total=%d", res.InitialNaive, res.InitialTotal)
	}
}

func TestTwoPhaseEngineUsesPhase2(t *testing.T) {
	// A KB whose only conflict appears through the chase: phase 1 asks
	// nothing, phase 2 resolves it.
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("prescribed", logic.C("Aspirin"), logic.C("John")),
		logic.NewAtom("hasPain", logic.C("John"), logic.C("Migraine")),
		logic.NewAtom("isPainKillerFor", logic.C("Nsaids"), logic.C("Migraine")),
		logic.NewAtom("incompatible", logic.C("Aspirin"), logic.C("Nsaids")),
	})
	tgds := []*logic.TGD{logic.MustTGD(
		[]logic.Atom{
			logic.NewAtom("isPainKillerFor", logic.V("X"), logic.V("Y")),
			logic.NewAtom("hasPain", logic.V("Z"), logic.V("Y")),
		},
		[]logic.Atom{logic.NewAtom("prescribed", logic.V("X"), logic.V("Z"))},
	)}
	cdds := []*logic.CDD{logic.MustCDD([]logic.Atom{
		logic.NewAtom("prescribed", logic.V("X"), logic.V("Z")),
		logic.NewAtom("prescribed", logic.V("Y"), logic.V("Z")),
		logic.NewAtom("incompatible", logic.V("X"), logic.V("Y")),
	})}
	kb := core.MustKB(s, tgds, cdds)
	e := New(kb, Random{}, NewSimulatedUser(5), 5, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("inconsistent result")
	}
	if res.InitialNaive != 0 {
		t.Errorf("InitialNaive = %d, want 0", res.InitialNaive)
	}
	sawPhase2 := false
	for _, rd := range res.Rounds {
		if rd.Phase == 2 {
			sawPhase2 = true
		}
	}
	if !sawPhase2 {
		t.Error("phase 2 never ran despite chase-only conflict")
	}
}

func TestConflictSeriesTracking(t *testing.T) {
	kb := fig1bKB(t)
	e := New(kb, OptiMCD{}, NewSimulatedUser(7), 7, Options{TrackConflictSeries: true})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	series := res.ConflictSeries()
	if len(series) != res.Questions {
		t.Fatalf("series length %d != questions %d", len(series), res.Questions)
	}
	if series[len(series)-1] != 0 {
		t.Errorf("final series value = %d, want 0", series[len(series)-1])
	}
	for _, v := range series {
		if v < 0 {
			t.Error("series not populated")
		}
	}
}

func TestStrategyByName(t *testing.T) {
	for _, name := range StrategyNames {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, s.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestSimulatedUserUniform(t *testing.T) {
	u := NewSimulatedUser(1)
	q := Question{Fixes: core.FixSet{
		{Pos: core.Position{Fact: 0, Arg: 0}, Value: logic.C("a")},
		{Pos: core.Position{Fact: 0, Arg: 1}, Value: logic.C("b")},
	}}
	seen := make(map[core.Fix]int)
	for i := 0; i < 200; i++ {
		f, err := u.Choose(nil, q)
		if err != nil {
			t.Fatal(err)
		}
		seen[f]++
	}
	if len(seen) != 2 {
		t.Errorf("uniform user never chose one option: %v", seen)
	}
	if _, err := u.Choose(nil, Question{}); err == nil {
		t.Error("empty question answered")
	}
}

func TestFuncUser(t *testing.T) {
	want := core.Fix{Pos: core.Position{Fact: 1, Arg: 0}, Value: logic.C("x")}
	u := FuncUser(func(_ *core.KB, q Question) (core.Fix, error) { return q.Fixes[0], nil })
	got, err := u.Choose(nil, Question{Fixes: core.FixSet{want}})
	if err != nil || got != want {
		t.Errorf("FuncUser = %v, %v", got, err)
	}
}

func TestOracleMatchesNullEquivalence(t *testing.T) {
	kb := fig1aKB(t)
	target := kb.Facts.Clone()
	target.MustSetValue(core.Position{Fact: 1, Arg: 1}, logic.N("oracleNull"))
	oracle := NewOracle(target, 0)
	// A fresh-null fix at the same position matches.
	fNull := core.Fix{Pos: core.Position{Fact: 1, Arg: 1}, Value: logic.N("questionNull")}
	if !oracle.Matches(kb, fNull) {
		t.Error("null-for-null fix not matched")
	}
	// A constant fix at that position does not match a null target.
	fConst := core.Fix{Pos: core.Position{Fact: 1, Arg: 1}, Value: logic.C("Penicillin")}
	if oracle.Matches(kb, fConst) {
		t.Error("constant fix matched null target")
	}
	// A fix at an already-agreeing position is not in the diff.
	fSame := core.Fix{Pos: core.Position{Fact: 0, Arg: 0}, Value: logic.C("whatever")}
	if oracle.Matches(kb, fSame) {
		t.Error("agreeing position matched")
	}
}

func TestAblationModesStillSound(t *testing.T) {
	for _, opts := range []Options{
		{DisablePiRepOpt: true},
		{DisableIncremental: true},
		{DisablePiRepOpt: true, DisableIncremental: true},
	} {
		kb := fig1bKB(t)
		e := New(kb, OptiJoin{}, NewSimulatedUser(11), 11, opts)
		res, err := e.Run()
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if !res.Consistent {
			t.Errorf("opts %+v: inconsistent", opts)
		}
		if opts.DisablePiRepOpt && res.FastHits != 0 {
			t.Errorf("fast path used despite DisablePiRepOpt")
		}
	}
}

func TestRngDeterminism(t *testing.T) {
	run := func() *Result {
		kb := fig1bKB(t)
		e := New(kb, Random{}, NewSimulatedUser(42), 42, Options{})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Questions != b.Questions {
		t.Errorf("non-deterministic question counts: %d vs %d", a.Questions, b.Questions)
	}
	if a.AppliedFixes.String() != b.AppliedFixes.String() {
		t.Error("non-deterministic fixes")
	}
}

func TestEngineNilUser(t *testing.T) {
	kb := fig1aKB(t)
	e := New(kb, nil, nil, 0, Options{})
	if _, err := e.Run(); err == nil {
		t.Error("nil user accepted by Run")
	}
	if _, err := e.RunBasic(); err == nil {
		t.Error("nil user accepted by RunBasic")
	}
}

func TestOptiPropPropagation(t *testing.T) {
	// Two independent conflicts; answering the first should propagate pins
	// on the first conflict's other offered positions (they are in no other
	// conflict).
	s := store.MustFromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.C("a"), logic.C("b")),
		logic.NewAtom("q", logic.C("b"), logic.C("c")),
		logic.NewAtom("p", logic.C("x"), logic.C("y")),
		logic.NewAtom("q", logic.C("y"), logic.C("z")),
	})
	cdd := logic.MustCDD([]logic.Atom{
		logic.NewAtom("p", logic.V("X"), logic.V("Y")),
		logic.NewAtom("q", logic.V("Y"), logic.V("Z")),
	})
	kb := core.MustKB(s, nil, []*logic.CDD{cdd})
	e := New(kb, OptiProp{}, NewSimulatedUser(2), 2, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("inconsistent")
	}
	// With propagation, Π contains more positions than just the answered
	// ones.
	if len(e.Pi) <= res.Questions {
		t.Errorf("no propagation happened: |Π| = %d, questions = %d", len(e.Pi), res.Questions)
	}
}

func TestRunBasicStressRandomKBs(t *testing.T) {
	// Random small KBs with CDDs: every inquiry must terminate consistent.
	consts := []logic.Term{logic.C("a"), logic.C("b"), logic.C("c")}
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := store.New()
		for i := 0; i < 8; i++ {
			s.MustAdd(logic.NewAtom("p", consts[r.Intn(3)], consts[r.Intn(3)]))
		}
		for i := 0; i < 4; i++ {
			s.MustAdd(logic.NewAtom("q", consts[r.Intn(3)]))
		}
		cdds := []*logic.CDD{
			logic.MustCDD([]logic.Atom{
				logic.NewAtom("p", logic.V("X"), logic.V("Y")),
				logic.NewAtom("q", logic.V("Y")),
			}),
			logic.MustCDD([]logic.Atom{logic.NewAtom("p", logic.V("X"), logic.V("X"))}),
		}
		kb := core.MustKB(s, nil, cdds)
		e := New(kb, OptiMCD{}, NewSimulatedUser(seed), seed, Options{})
		res, err := e.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Consistent {
			t.Errorf("seed %d: inconsistent", seed)
		}
	}
}

func TestResultDelayHelpers(t *testing.T) {
	empty := &Result{}
	if empty.AvgDelay() != 0 {
		t.Error("empty AvgDelay")
	}
	kb := fig1aKB(t)
	e := New(kb, Random{}, NewSimulatedUser(1), 1, Options{})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	delays := res.Delays()
	if len(delays) != res.Questions {
		t.Errorf("Delays len = %d, questions = %d", len(delays), res.Questions)
	}
	if res.AvgDelay() < 0 {
		t.Error("negative AvgDelay")
	}
}

func TestReleasePropagated(t *testing.T) {
	kb := fig1aKB(t)
	e := New(kb, OptiProp{}, NewSimulatedUser(1), 1, Options{})
	p1 := core.Position{Fact: 2, Arg: 0}
	p2 := core.Position{Fact: 2, Arg: 1}
	e.propagate(p1)
	e.propagate(p2)
	if !e.Pi.Has(p1) || !e.Pi.Has(p2) {
		t.Fatal("propagate did not pin")
	}
	n := e.releasePropagated()
	if n != 2 {
		t.Errorf("released %d, want 2", n)
	}
	if e.Pi.Has(p1) || e.Pi.Has(p2) {
		t.Error("release did not unpin")
	}
	// Releasing again is a no-op.
	if e.releasePropagated() != 0 {
		t.Error("double release")
	}
}

func TestPickRandomNilCases(t *testing.T) {
	if pickRandom(nil, nil) != nil {
		t.Error("empty conflicts should pick nil")
	}
}

func TestMaxQuestionsOverride(t *testing.T) {
	kb := fig1aKB(t)
	e := New(kb, Random{}, NewSimulatedUser(1), 1, Options{MaxQuestions: 3})
	if e.maxQuestions() != 3 {
		t.Error("override ignored")
	}
	e2 := New(kb, Random{}, NewSimulatedUser(1), 1, Options{})
	if e2.maxQuestions() < kb.Facts.NumPositions() {
		t.Error("default max too small")
	}
}
