package inquiry

import (
	"math/rand"

	"kbrepair/internal/conflict"
	"kbrepair/internal/core"
	"kbrepair/internal/logic"
)

// This file implements the user-modeling extensions sketched in the
// paper's conclusion (§7): "formalization of user modeling to represent
// several classes of users (from domain experts to non-experts), and
// learning from provided user choices in the questioning strategies".

// NoisyOracle wraps an Oracle with an error rate: with probability
// ErrorRate it answers a uniformly random fix instead of one from its
// repair. It models a domain expert who occasionally slips, and lets the
// robustness of the inquiry be measured (soundness still guarantees a
// consistent outcome; only closeness to the intended repair degrades).
type NoisyOracle struct {
	Oracle    *Oracle
	ErrorRate float64
	Rng       *rand.Rand
	// Mistakes counts the noisy answers given.
	Mistakes int
}

// NewNoisyOracle builds a noisy oracle.
func NewNoisyOracle(oracle *Oracle, errorRate float64, seed int64) *NoisyOracle {
	return &NoisyOracle{Oracle: oracle, ErrorRate: errorRate, Rng: rand.New(rand.NewSource(seed))}
}

// Choose implements User.
func (u *NoisyOracle) Choose(kb *core.KB, q Question) (core.Fix, error) {
	if u.Rng.Float64() < u.ErrorRate {
		u.Mistakes++
		return q.Fixes[u.Rng.Intn(len(q.Fixes))], nil
	}
	f, err := u.Oracle.Choose(kb, q)
	if err != nil {
		// After a mistake the oracle's diff may not intersect the question
		// (its intended repair became unreachable at some positions); fall
		// back to a random answer rather than aborting the dialogue.
		u.Mistakes++
		return q.Fixes[u.Rng.Intn(len(q.Fixes))], nil
	}
	return f, nil
}

// CautiousUser models a non-expert who prefers to say "I don't know":
// it picks a fresh existential variable with probability NullBias, and a
// uniformly random domain value otherwise. NullBias 1 is the maximally
// conservative user (every fix anonymizes a value); NullBias 0 is a
// confident user who always commits to a concrete value when one exists.
type CautiousUser struct {
	NullBias float64
	Rng      *rand.Rand
}

// NewCautiousUser builds a cautious user.
func NewCautiousUser(nullBias float64, seed int64) *CautiousUser {
	return &CautiousUser{NullBias: nullBias, Rng: rand.New(rand.NewSource(seed))}
}

// Choose implements User.
func (u *CautiousUser) Choose(_ *core.KB, q Question) (core.Fix, error) {
	if q.Empty() {
		return core.Fix{}, ErrNoAnswer
	}
	var nulls, consts core.FixSet
	for _, f := range q.Fixes {
		if f.Value.Kind == logic.Null {
			nulls = append(nulls, f)
		} else {
			consts = append(consts, f)
		}
	}
	pick := func(fs core.FixSet) core.Fix { return fs[u.Rng.Intn(len(fs))] }
	if len(consts) == 0 {
		return pick(nulls), nil
	}
	if len(nulls) == 0 {
		return pick(consts), nil
	}
	if u.Rng.Float64() < u.NullBias {
		return pick(nulls), nil
	}
	return pick(consts), nil
}

// AdaptiveStrategy realizes "learning from provided user choices": it
// behaves like opti-mcd but weights each position's hypergraph degree by a
// learned per-predicate score. Whenever the user fixes a position of
// predicate p, the score of p grows — the strategy learns which predicates
// the user considers error-prone and steers subsequent questions there
// first.
type AdaptiveStrategy struct {
	weights map[string]float64
}

// NewAdaptiveStrategy builds the learning strategy.
func NewAdaptiveStrategy() *AdaptiveStrategy {
	return &AdaptiveStrategy{weights: make(map[string]float64)}
}

// Name implements Strategy.
func (s *AdaptiveStrategy) Name() string { return "adaptive" }

func (s *AdaptiveStrategy) weight(pred string) float64 {
	if w, ok := s.weights[pred]; ok {
		return w
	}
	return 1
}

// bestWeighted returns the position with the highest degree×weight score
// outside Π.
func (s *AdaptiveStrategy) bestWeighted(e *Engine, cs []*conflict.Conflict) (core.Position, bool) {
	ranks := conflict.PositionRanks(cs, e.KB.Facts)
	best := -1.0
	var bestPos core.Position
	found := false
	for p, r := range ranks {
		if e.Pi.Has(p) {
			continue
		}
		score := float64(r) * s.weight(e.KB.Facts.FactRef(p.Fact).Pred)
		if score > best || (score == best && (p.Fact < bestPos.Fact || (p.Fact == bestPos.Fact && p.Arg < bestPos.Arg))) {
			best, bestPos, found = score, p, true
		}
	}
	return bestPos, found
}

// PickConflict implements Strategy: the conflict containing the best
// weighted position.
func (s *AdaptiveStrategy) PickConflict(e *Engine, cs []*conflict.Conflict) *conflict.Conflict {
	if p, ok := s.bestWeighted(e, cs); ok {
		for _, c := range cs {
			if c.InvolvesFact(p.Fact) {
				return c
			}
		}
	}
	return pickRandom(cs, e.Rng)
}

// Positions implements Strategy: the single best weighted position.
func (s *AdaptiveStrategy) Positions(e *Engine, cs []*conflict.Conflict, x *conflict.Conflict) []core.Position {
	if p, ok := s.bestWeighted(e, cs); ok {
		return []core.Position{p}
	}
	return x.Positions(e.KB.Facts)
}

// AfterAnswer implements Strategy: reinforce the predicate the user just
// fixed.
func (s *AdaptiveStrategy) AfterAnswer(e *Engine, _ []*conflict.Conflict, _ *conflict.Conflict, _ []core.Position, chosen core.Fix) {
	pred := e.KB.Facts.FactRef(chosen.Pos.Fact).Pred
	s.weights[pred] = s.weight(pred) + 0.5
}
