package inquiry

import (
	"fmt"
	"math/rand"
	"sort"

	"kbrepair/internal/conflict"
	"kbrepair/internal/core"
)

// Strategy is one of the §5 questioning strategies. A strategy decides
// which conflict to attack, which positions to offer fixes on
// (RETRIEVE-POSITIONS), and may adjust the immutable-position set after an
// answer (opti-prop's propagation).
type Strategy interface {
	// Name returns the paper's strategy name.
	Name() string
	// PickConflict chooses the conflict the next question targets.
	PickConflict(e *Engine, cs []*conflict.Conflict) *conflict.Conflict
	// Positions retrieves candidate positions for the chosen conflict; cs
	// is the full current conflict set (opti-mcd ranks across it).
	Positions(e *Engine, cs []*conflict.Conflict, x *conflict.Conflict) []core.Position
	// AfterAnswer runs after the chosen fix has been applied and its
	// position added to Π.
	AfterAnswer(e *Engine, cs []*conflict.Conflict, x *conflict.Conflict, offered []core.Position, chosen core.Fix)
}

// StrategyNames lists the four strategies in the paper's order.
var StrategyNames = []string{"random", "opti-join", "opti-prop", "opti-mcd"}

// ByName returns a fresh strategy instance by its paper name.
func ByName(name string) (Strategy, error) {
	switch name {
	case "random":
		return Random{}, nil
	case "opti-join":
		return OptiJoin{}, nil
	case "opti-prop":
		return OptiProp{}, nil
	case "opti-mcd":
		return OptiMCD{}, nil
	default:
		return nil, fmt.Errorf("unknown strategy %q (want one of %v)", name, StrategyNames)
	}
}

// AllStrategies returns one instance of each strategy, in the paper's order.
func AllStrategies() []Strategy {
	return []Strategy{Random{}, OptiJoin{}, OptiProp{}, OptiMCD{}}
}

func pickRandom(cs []*conflict.Conflict, rng *rand.Rand) *conflict.Conflict {
	if len(cs) == 0 {
		return nil
	}
	if rng == nil {
		return cs[0]
	}
	return cs[rng.Intn(len(cs))]
}

// Random is the baseline strategy: a random conflict, all of its positions.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// PickConflict implements Strategy.
func (Random) PickConflict(e *Engine, cs []*conflict.Conflict) *conflict.Conflict {
	return pickRandom(cs, e.Rng)
}

// Positions implements Strategy: every position of every atom of the
// conflict (its base support, for chase conflicts).
func (Random) Positions(e *Engine, _ []*conflict.Conflict, x *conflict.Conflict) []core.Position {
	return x.Positions(e.KB.Facts)
}

// AfterAnswer implements Strategy (no-op).
func (Random) AfterAnswer(*Engine, []*conflict.Conflict, *conflict.Conflict, []core.Position, core.Fix) {
}

// OptiJoin restricts questions to join positions: changing a non-join
// position can never break the witnessing homomorphism, so asking about it
// is wasted effort (§5).
type OptiJoin struct{}

// Name implements Strategy.
func (OptiJoin) Name() string { return "opti-join" }

// PickConflict implements Strategy.
func (OptiJoin) PickConflict(e *Engine, cs []*conflict.Conflict) *conflict.Conflict {
	return pickRandom(cs, e.Rng)
}

// Positions implements Strategy: the join positions of a direct conflict;
// for chase-level conflicts (whose atoms are derived) it falls back to all
// contributing base positions, as in GenerateQuestion-Chase.
func (OptiJoin) Positions(e *Engine, _ []*conflict.Conflict, x *conflict.Conflict) []core.Position {
	if jp := x.JoinPositions(e.KB.Facts); len(jp) > 0 {
		return jp
	}
	return x.Positions(e.KB.Facts)
}

// AfterAnswer implements Strategy (no-op).
func (OptiJoin) AfterAnswer(*Engine, []*conflict.Conflict, *conflict.Conflict, []core.Position, core.Fix) {
}

// OptiProp is opti-join plus propagation: when the user picks one fix out
// of a question, the other offered positions are implicitly endorsed as
// correct and become immutable — unless they participate in another
// conflict (§5).
type OptiProp struct{}

// Name implements Strategy.
func (OptiProp) Name() string { return "opti-prop" }

// PickConflict implements Strategy.
func (OptiProp) PickConflict(e *Engine, cs []*conflict.Conflict) *conflict.Conflict {
	return pickRandom(cs, e.Rng)
}

// Positions implements Strategy (same as opti-join).
func (OptiProp) Positions(e *Engine, cs []*conflict.Conflict, x *conflict.Conflict) []core.Position {
	return OptiJoin{}.Positions(e, cs, x)
}

// AfterAnswer implements Strategy: propagate immutability to the other
// offered positions not involved in any other conflict.
func (OptiProp) AfterAnswer(e *Engine, cs []*conflict.Conflict, x *conflict.Conflict, offered []core.Position, chosen core.Fix) {
	for _, p := range offered {
		if p == chosen.Pos || e.Pi.Has(p) {
			continue
		}
		inOther := false
		for _, c := range cs {
			if c == x || c.Key() == x.Key() {
				continue
			}
			if c.InvolvesFact(p.Fact) {
				inOther = true
				break
			}
		}
		if !inOther {
			e.propagate(p)
		}
	}
}

// OptiMCD questions the Maximally ContaineD position: the vertex of maximum
// degree in the conflict hypergraph, i.e. the position occurring in the
// most conflicts. One question can thereby resolve many overlapping
// conflicts at once (§5).
type OptiMCD struct{}

// Name implements Strategy.
func (OptiMCD) Name() string { return "opti-mcd" }

// PickConflict implements Strategy: the conflict containing the best
// position (the position choice happens in Positions; any containing
// conflict works, so pick the first).
func (OptiMCD) PickConflict(e *Engine, cs []*conflict.Conflict) *conflict.Conflict {
	p, ok := e.bestRankedPosition(cs)
	if !ok {
		return pickRandom(cs, e.Rng)
	}
	for _, c := range cs {
		if c.InvolvesFact(p.Fact) {
			return c
		}
	}
	return pickRandom(cs, e.Rng)
}

// Positions implements Strategy: the single maximum-rank position outside
// Π (ties broken randomly); falls back to the conflict's positions when no
// ranked position remains.
func (OptiMCD) Positions(e *Engine, cs []*conflict.Conflict, x *conflict.Conflict) []core.Position {
	if p, ok := e.bestRankedPosition(cs); ok {
		return []core.Position{p}
	}
	return x.Positions(e.KB.Facts)
}

// AfterAnswer implements Strategy (no-op).
func (OptiMCD) AfterAnswer(*Engine, []*conflict.Conflict, *conflict.Conflict, []core.Position, core.Fix) {
}

// bestRankedPosition returns the position with the highest conflict count
// (hypergraph degree) among positions outside Π, breaking ties uniformly at
// random with the engine's RNG.
func (e *Engine) bestRankedPosition(cs []*conflict.Conflict) (core.Position, bool) {
	ranks := conflict.PositionRanks(cs, e.KB.Facts)
	best := -1
	var ties []core.Position
	for p, r := range ranks {
		if e.Pi.Has(p) {
			continue
		}
		if r > best {
			best = r
			ties = ties[:0]
			ties = append(ties, p)
		} else if r == best {
			ties = append(ties, p)
		}
	}
	if len(ties) == 0 {
		return core.Position{}, false
	}
	// Sort before any random pick: ties were collected in map order, and a
	// seeded choice is only reproducible over a deterministic slice.
	sort.Slice(ties, func(i, j int) bool {
		if ties[i].Fact != ties[j].Fact {
			return ties[i].Fact < ties[j].Fact
		}
		return ties[i].Arg < ties[j].Arg
	})
	if len(ties) == 1 || e.Rng == nil {
		return ties[0], true
	}
	return ties[e.Rng.Intn(len(ties))], true
}
